"""Legacy setup shim.

This environment has setuptools but no ``wheel`` package, so PEP-517
editable installs (which build an editable wheel) fail.  Keeping a
``setup.py`` and omitting ``[build-system]`` from ``pyproject.toml``
lets ``pip install -e .`` fall back to ``setup.py develop``, which works
offline.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
