"""Microbenchmarks of the hot kernels (real wall-clock timing).

Unlike the table/figure benches (which reproduce the paper's modeled
results), these time the actual Python kernels with pytest-benchmark so
performance regressions in the implementation are visible.
"""

import pytest

from repro.counting import count_kcliques
from repro.counting.structures import STRUCTURES
from repro.datasets import load
from repro.ordering import (
    approx_core_ordering,
    core_ordering,
    degree_ordering,
    directionalize,
)


@pytest.fixture(scope="module")
def skitter():
    return load("skitter")


@pytest.fixture(scope="module")
def skitter_dag(skitter):
    return directionalize(skitter, core_ordering(skitter))


def test_kernel_core_ordering(benchmark, skitter):
    benchmark(core_ordering, skitter)


def test_kernel_degree_ordering(benchmark, skitter):
    benchmark(degree_ordering, skitter)


def test_kernel_approx_core_ordering(benchmark, skitter):
    benchmark(approx_core_ordering, skitter, -0.5)


def test_kernel_directionalize(benchmark, skitter):
    ordering = core_ordering(skitter)
    benchmark(directionalize, skitter, ordering)


@pytest.mark.parametrize("structure", ["dense", "sparse", "remap"])
def test_kernel_subgraph_build(benchmark, skitter, skitter_dag, structure):
    import numpy as np

    struct = STRUCTURES[structure](skitter, skitter_dag)
    hub = int(np.argmax(skitter_dag.degrees))
    benchmark(struct.build, hub)


@pytest.mark.parametrize("structure", ["dense", "sparse", "remap"])
def test_kernel_counting_k8(benchmark, skitter, structure):
    ordering = core_ordering(skitter)
    result = benchmark.pedantic(
        count_kcliques, args=(skitter, 8, ordering),
        kwargs={"structure": structure}, rounds=2, iterations=1,
    )
    assert result.count > 0
