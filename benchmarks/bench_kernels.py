"""Microbenchmarks of the hot kernels (real wall-clock timing).

Unlike the table/figure benches (which reproduce the paper's modeled
results), these time the actual Python kernels so performance
regressions in the implementation are visible.  Two entry points:

* ``pytest benchmarks/bench_kernels.py`` — pytest-benchmark timings of
  ordering, structure-build, counting, and both bitset-kernel backends;
* ``python benchmarks/bench_kernels.py [--smoke]`` — a standalone
  old-vs-new kernel comparison on a dense-structure root.  It times the
  fused ``count_rows`` (intersect + popcount), ``pivot_select``, and
  the per-row ``intersect_count`` sweep for the big-int and word-array
  backends, writes a ``BENCH_kernels.json`` artifact, and exits nonzero
  if the word-array backend misses its speedup gate (>= 2x on the
  intersect/popcount microbench in full mode; never slower than big-int
  in ``--smoke`` mode, which CI runs on every push).
"""

import argparse
import sys

import numpy as np
import pytest

from repro.bench.harness import Table, fmt_rate, time_samples, write_json_artifact
from repro.bench.platform import add_store_args, store_and_check
from repro.counting import count_kcliques
from repro.counting.structures import STRUCTURES, DenseStructure
from repro.graph.generators import erdos_renyi
from repro.kernels import KERNELS
from repro.ordering import (
    approx_core_ordering,
    core_ordering,
    degree_ordering,
    directionalize,
)

# ----------------------------------------------------------------------
# pytest-benchmark suite (excluded from tier-1; run via benchmarks/)
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def skitter():
    from repro.datasets import load

    return load("skitter")


@pytest.fixture(scope="module")
def skitter_dag(skitter):
    return directionalize(skitter, core_ordering(skitter))


def test_kernel_core_ordering(benchmark, skitter):
    benchmark(core_ordering, skitter)


def test_kernel_degree_ordering(benchmark, skitter):
    benchmark(degree_ordering, skitter)


def test_kernel_approx_core_ordering(benchmark, skitter):
    benchmark(approx_core_ordering, skitter, -0.5)


def test_kernel_directionalize(benchmark, skitter):
    ordering = core_ordering(skitter)
    benchmark(directionalize, skitter, ordering)


@pytest.mark.parametrize("structure", ["dense", "sparse", "remap"])
def test_kernel_subgraph_build(benchmark, skitter, skitter_dag, structure):
    struct = STRUCTURES[structure](skitter, skitter_dag)
    hub = int(np.argmax(skitter_dag.degrees))
    benchmark(struct.build, hub)


@pytest.mark.parametrize("structure", ["dense", "sparse", "remap"])
def test_kernel_counting_k8(benchmark, skitter, structure):
    ordering = core_ordering(skitter)
    result = benchmark.pedantic(
        count_kcliques, args=(skitter, 8, ordering),
        kwargs={"structure": structure}, rounds=2, iterations=1,
    )
    assert result.count > 0


@pytest.fixture(scope="module")
def hub_root(bench_seed):
    """A large-degree dense-structure root, built per backend."""
    g = erdos_renyi(900, 0.6, seed=bench_seed)
    dag = directionalize(g, core_ordering(g))
    hub = int(np.argmax(dag.degrees))
    return {
        backend: DenseStructure(g, dag, kernel=backend).build(hub)
        for backend in KERNELS
    }


@pytest.mark.parametrize("backend", sorted(KERNELS))
def test_kernel_count_rows(benchmark, hub_root, backend):
    ctx = hub_root[backend]
    P = (1 << ctx.d) - 1
    benchmark(ctx.kernel.count_rows, ctx.rows, P)


@pytest.mark.parametrize("backend", sorted(KERNELS))
def test_kernel_pivot_select(benchmark, hub_root, backend):
    ctx = hub_root[backend]
    P = (1 << ctx.d) - 1
    benchmark(ctx.kernel.pivot_select, ctx.rows, P, ctx.d)


@pytest.mark.parametrize("backend", sorted(KERNELS))
def test_kernel_counting_wordarray_vs_bigint(benchmark, backend,
                                             bench_seed):
    g = erdos_renyi(300, 0.25, seed=bench_seed + 4)
    ordering = core_ordering(g)
    result = benchmark.pedantic(
        count_kcliques, args=(g, 6, ordering),
        kwargs={"kernel": backend}, rounds=2, iterations=1,
    )
    assert result.count > 0


# ----------------------------------------------------------------------
# standalone old-vs-new comparison (the CI smoke gate)
# ----------------------------------------------------------------------

#: Full-mode acceptance: word-array >= 2x on intersect/popcount.
FULL_GATE = 2.0
#: Smoke-mode acceptance: word-array must never be slower than big-int
#: on the fused kernels it exists to accelerate.
SMOKE_GATE = 1.0

#: Gate threshold for the batched ``intersect_count_sweep`` kernel in
#: both modes: the word-array backend must at minimum match big-int
#: (it popcounts all rows in one vector pass; the big-int ``&`` per row
#: is shared work either way).
SWEEP_GATE = 1.0

#: The ops the gate applies to — the fused batch kernels, plus the
#: batched per-row sweep (gated separately at :data:`SWEEP_GATE`).
GATED_OPS = ("intersect_popcount", "pivot_select", "intersect_count_sweep")


def _op_gate(op: str, gate: float) -> float:
    """Required speedup for ``op`` under mode threshold ``gate``."""
    return SWEEP_GATE if op == "intersect_count_sweep" else gate


def _bench_ops(ctx, *, number, repeats):
    """Per-repeat timing samples of the kernel ops on one built root."""
    kern, rows, d = ctx.kernel, ctx.rows, ctx.d
    P = (1 << d) - 1
    ops = {
        "intersect_popcount": lambda: kern.count_rows(rows, P),
        "pivot_select": lambda: kern.pivot_select(rows, P, d),
        "intersect_count_sweep": lambda: kern.intersect_count_sweep(rows, P),
    }
    return {
        name: time_samples(fn, number=number, repeats=repeats)
        for name, fn in ops.items()
    }


def _work_metrics(seed):
    """Exact work counters for the record: a deterministic small count
    on both backends, whose engine/kernel totals depend only on the
    seed (any drift is an algorithmic change, not timing noise)."""
    from repro import obs

    g = erdos_renyi(120, 0.3, seed=seed)
    ordering = core_ordering(g)
    with obs.collecting() as registry:
        for backend in sorted(KERNELS):
            count_kcliques(g, 4, ordering, kernel=backend)
    return registry


def run_kernel_bench(*, n, p, seed, number, repeats, gate, out_path,
                     store_args=None):
    """Old-vs-new kernel comparison on a dense-structure hub root.

    Returns the payload dict (also written to ``out_path``); the
    ``gate`` entry records whether the word-array backend met the
    required speedup on the fused intersect/popcount kernels.  The
    invocation is also appended to the run store and checked against
    the promoted baseline (``payload["store_result"]``, never written
    to the legacy artifact).
    """
    g = erdos_renyi(n, p, seed=seed)
    dag = directionalize(g, core_ordering(g))
    hub = int(np.argmax(dag.degrees))

    timings = {}
    d = words = 0
    for backend in sorted(KERNELS):
        ctx = DenseStructure(g, dag, kernel=backend).build(hub)
        d = ctx.d
        words = (d + 63) // 64
        timings[backend] = _bench_ops(ctx, number=number, repeats=repeats)

    table = Table(
        title=f"bitset kernels, dense root d={d} ({words} words)",
        columns=["op", "bigint", "wordarray", "speedup", "wa words/s"],
    )
    ops_payload = {}
    for op in timings["bigint"]:
        bi = min(timings["bigint"][op])
        wa = min(timings["wordarray"][op])
        speedup = bi / wa
        words_per_s = d * words / wa
        ops_payload[op] = {
            "bigint_s": bi,
            "wordarray_s": wa,
            "speedup": round(speedup, 3),
            "wordarray_words_per_s": words_per_s,
            "gated": op in GATED_OPS,
            "gate_threshold": _op_gate(op, gate) if op in GATED_OPS else None,
        }
        table.add(op, f"{bi * 1e6:.1f}us", f"{wa * 1e6:.1f}us",
                  f"{speedup:.2f}x", fmt_rate(words_per_s))

    gate_pass = all(
        ops_payload[op]["speedup"] >= _op_gate(op, gate) for op in GATED_OPS
    )
    table.note(f"gate: fused kernels >= {gate:.1f}x, sweep >= "
               f"{SWEEP_GATE:.1f}x -> {'PASS' if gate_pass else 'FAIL'}")
    table.show()

    payload = {
        "bench": "kernels",
        "config": {"n": n, "p": p, "seed": seed,
                   "number": number, "repeats": repeats},
        "root": {"d": d, "words": words},
        "ops": ops_payload,
        "gate": {"threshold": gate, "sweep_threshold": SWEEP_GATE,
                 "ops": list(GATED_OPS), "pass": gate_pass},
    }
    artifact = write_json_artifact(out_path, payload)
    print(f"wrote {artifact}")

    # Run-store migration: append this invocation (per-repeat samples,
    # exact work counters, legacy gate verdict) and compare against the
    # promoted stored baseline.  The fixed thresholds above survive as
    # hard floors; the store comparison is the statistical gate.
    samples = {
        f"{backend}.{op}": timings[backend][op]
        for backend in timings for op in timings[backend]
    }
    _, comparison, store_rc = store_and_check(
        "kernels", payload, samples, seed=seed, args=store_args,
        registry=_work_metrics(seed),
    )
    payload["store_result"] = {
        "regressed": bool(comparison.regressed) if comparison else False,
        "exit": store_rc,
    }
    return payload


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="old-vs-new bitset kernel comparison")
    ap.add_argument("--smoke", action="store_true",
                    help="small graph, few repeats, >=1x gate (CI)")
    ap.add_argument("--out", default="BENCH_kernels.json",
                    help="JSON artifact path (default: %(default)s)")
    ap.add_argument("--n", type=int, default=None,
                    help="graph size (default: 1200 full, 500 smoke)")
    ap.add_argument("--p", type=float, default=None,
                    help="edge probability (default: 0.6 full, 0.5 smoke)")
    ap.add_argument("--seed", type=int, default=7)
    add_store_args(ap)
    args = ap.parse_args(argv)

    if args.smoke:
        cfg = dict(n=args.n or 500, p=args.p or 0.5, seed=args.seed,
                   number=10, repeats=3, gate=SMOKE_GATE)
    else:
        cfg = dict(n=args.n or 1200, p=args.p or 0.6, seed=args.seed,
                   number=20, repeats=5, gate=FULL_GATE)

    payload = run_kernel_bench(out_path=args.out, store_args=args, **cfg)
    if not payload["gate"]["pass"]:
        print("FAIL: word-array kernels missed the speedup gate",
              file=sys.stderr)
        return 1
    return payload["store_result"]["exit"]


if __name__ == "__main__":
    raise SystemExit(main())
