"""Microbenchmarks of the hot kernels (real wall-clock timing).

Unlike the table/figure benches (which reproduce the paper's modeled
results), these time the actual Python kernels so performance
regressions in the implementation are visible.  Two entry points:

* ``pytest benchmarks/bench_kernels.py`` — pytest-benchmark timings of
  ordering, structure-build, counting, and every available
  bitset-kernel backend (backends that are registered but unavailable
  here — e.g. ``numba`` without the ``[jit]`` extra — skip cleanly);
* ``python benchmarks/bench_kernels.py [--smoke]`` — a standalone
  old-vs-new kernel comparison on a dense-structure root.  It times

  - the fused ``count_rows`` (intersect + popcount) in its tier-1
    single-mask form, and
  - ``pivot_select`` / ``intersect_count_sweep`` in their tier-2
    *frontier* forms — one batched call over a 32-mask frontier of
    seeded dense candidate masks, the shape the frontier recursion
    spine actually issues —

  plus an end-to-end SCT ``count_kcliques`` run per backend, writes a
  ``BENCH_kernels.json`` artifact, and exits nonzero on a missed gate:
  the word-array backend must beat big-int by ``FRONTIER_GATE`` (8x
  hard floor; ~10-20x measured) on both frontier ops, by
  ``FULL_GATE``/``SMOKE_GATE`` on intersect/popcount, and must stay
  above the ``E2E_GATE`` floor end-to-end.  The end-to-end floor is a
  *parity* guard, not a speedup claim: on CPython, big-int bitsets are
  already word-parallel C and the SCT tree concentrates its work in
  small-``pc`` subtrees, so the hybrid frontier spine lands at ~0.9-1x
  wall-clock (the floor catches regressions of the frontier spine
  itself — a broken hybrid cutoff measured ~0.5x).
"""

import argparse
import sys

import numpy as np
import pytest

from repro.bench.harness import Table, fmt_rate, time_samples, write_json_artifact
from repro.bench.platform import add_store_args, store_and_check
from repro.counting import count_kcliques
from repro.counting.structures import STRUCTURES, DenseStructure
from repro.graph.generators import erdos_renyi
from repro.kernels import KERNELS, available_kernels
from repro.ordering import (
    approx_core_ordering,
    core_ordering,
    degree_ordering,
    directionalize,
)

# ----------------------------------------------------------------------
# pytest-benchmark suite (excluded from tier-1; run via benchmarks/)
# ----------------------------------------------------------------------


def _require_backend(backend: str) -> None:
    """Skip (not fail) when a registered backend is unavailable here."""
    if backend not in available_kernels():
        pytest.skip(f"kernel backend {backend!r} unavailable")


@pytest.fixture(scope="module")
def skitter():
    from repro.datasets import load

    return load("skitter")


@pytest.fixture(scope="module")
def skitter_dag(skitter):
    return directionalize(skitter, core_ordering(skitter))


def test_kernel_core_ordering(benchmark, skitter):
    benchmark(core_ordering, skitter)


def test_kernel_degree_ordering(benchmark, skitter):
    benchmark(degree_ordering, skitter)


def test_kernel_approx_core_ordering(benchmark, skitter):
    benchmark(approx_core_ordering, skitter, -0.5)


def test_kernel_directionalize(benchmark, skitter):
    ordering = core_ordering(skitter)
    benchmark(directionalize, skitter, ordering)


@pytest.mark.parametrize("structure", ["dense", "sparse", "remap"])
def test_kernel_subgraph_build(benchmark, skitter, skitter_dag, structure):
    struct = STRUCTURES[structure](skitter, skitter_dag)
    hub = int(np.argmax(skitter_dag.degrees))
    benchmark(struct.build, hub)


@pytest.mark.parametrize("structure", ["dense", "sparse", "remap"])
def test_kernel_counting_k8(benchmark, skitter, structure):
    ordering = core_ordering(skitter)
    result = benchmark.pedantic(
        count_kcliques, args=(skitter, 8, ordering),
        kwargs={"structure": structure}, rounds=2, iterations=1,
    )
    assert result.count > 0


@pytest.fixture(scope="module")
def hub_root(bench_seed):
    """A large-degree dense-structure root, built per available backend."""
    g = erdos_renyi(900, 0.6, seed=bench_seed)
    dag = directionalize(g, core_ordering(g))
    hub = int(np.argmax(dag.degrees))
    return {
        backend: DenseStructure(g, dag, kernel=backend).build(hub)
        for backend in available_kernels()
    }


@pytest.mark.parametrize("backend", sorted(KERNELS))
def test_kernel_count_rows(benchmark, hub_root, backend):
    _require_backend(backend)
    ctx = hub_root[backend]
    P = (1 << ctx.d) - 1
    benchmark(ctx.kernel.count_rows, ctx.rows, P)


@pytest.mark.parametrize("backend", sorted(KERNELS))
def test_kernel_pivot_select(benchmark, hub_root, backend):
    _require_backend(backend)
    ctx = hub_root[backend]
    P = (1 << ctx.d) - 1
    benchmark(ctx.kernel.pivot_select, ctx.rows, P, ctx.d)


@pytest.mark.parametrize("backend", sorted(KERNELS))
def test_kernel_pivot_select_sweep(benchmark, hub_root, backend, bench_seed):
    _require_backend(backend)
    ctx = hub_root[backend]
    kern, rows = ctx.kernel, ctx.rows
    mask_ints, pcs = _frontier_masks(ctx.d, bench_seed)
    native = [kern.to_native(rows, m) for m in mask_ints]
    benchmark(kern.pivot_select_sweep, rows, native, pcs)


@pytest.mark.parametrize("backend", sorted(KERNELS))
def test_kernel_counting_wordarray_vs_bigint(benchmark, backend,
                                             bench_seed):
    _require_backend(backend)
    g = erdos_renyi(300, 0.25, seed=bench_seed + 4)
    ordering = core_ordering(g)
    result = benchmark.pedantic(
        count_kcliques, args=(g, 6, ordering),
        kwargs={"kernel": backend}, rounds=2, iterations=1,
    )
    assert result.count > 0


# ----------------------------------------------------------------------
# standalone old-vs-new comparison (the CI smoke gate)
# ----------------------------------------------------------------------

#: Full-mode acceptance: word-array >= 2x on intersect/popcount.
FULL_GATE = 2.0
#: Smoke-mode acceptance: word-array must never be slower than big-int
#: on the fused kernels it exists to accelerate.
SMOKE_GATE = 1.0

#: Hard floor for the tier-2 frontier forms of ``pivot_select`` and
#: ``intersect_count_sweep`` in *both* modes: batching a whole frontier
#: into one word-tile op measures ~10-20x over the scalar big-int scan
#: on the dense gate root; 8x is the frozen floor with headroom for
#: machine noise (raised from the pre-batching 1.0x floors).
FRONTIER_GATE = 8.0

#: End-to-end floor: a full SCT count on the word-array frontier spine
#: must stay within ~1.7x of big-int wall-clock.  Measured ~0.9-1.0x
#: (see module docstring — this is a parity/regression guard; the
#: pre-hybrid frontier spine measured ~0.5x and would fail it).
E2E_GATE = 0.6

#: The ops timed in tier-2 frontier form (one batched call over a
#: :data:`FRONTIER_F`-mask frontier), gated at :data:`FRONTIER_GATE`.
FRONTIER_OPS = ("pivot_select", "intersect_count_sweep")

#: The ops the gate applies to.
GATED_OPS = ("intersect_popcount",) + FRONTIER_OPS

#: Frontier shape for the batched-op benchmarks: 32 candidate masks at
#: ~0.9 density over the hub root — a dense upper-level frontier, the
#: regime the tier-2 kernels exist for.
FRONTIER_F = 32
FRONTIER_DENSITY = 0.9


def _op_gate(op: str, gate: float) -> float:
    """Required speedup for ``op`` under mode threshold ``gate``."""
    return FRONTIER_GATE if op in FRONTIER_OPS else gate


def _frontier_masks(d: int, seed: int) -> tuple[list[int], list[int]]:
    """Seeded dense candidate-mask frontier: big-int masks + popcounts."""
    rng = np.random.default_rng(seed ^ 0xF0)
    bits = rng.random((FRONTIER_F, d)) < FRONTIER_DENSITY
    mask_ints = [
        int.from_bytes(
            np.packbits(row, bitorder="little").tobytes(), "little"
        )
        for row in bits
    ]
    return mask_ints, [m.bit_count() for m in mask_ints]


def _bench_ops(ctx, mask_ints, pcs, *, number, repeats):
    """Per-repeat timing samples of the kernel ops on one built root.

    ``intersect_popcount`` times the tier-1 single-mask ``count_rows``;
    the :data:`FRONTIER_OPS` time the tier-2 batched forms over the
    shared mask frontier.  Native-mask conversion happens *outside* the
    timed region — the recursion holds native masks across calls, so
    conversion is not part of the steady-state cost being measured.
    """
    kern, rows, d = ctx.kernel, ctx.rows, ctx.d
    P = (1 << d) - 1
    native = [kern.to_native(rows, m) for m in mask_ints]
    ops = {
        "intersect_popcount": lambda: kern.count_rows(rows, P),
        "pivot_select": lambda: kern.pivot_select_sweep(rows, native, pcs),
        "intersect_count_sweep":
            lambda: kern.intersect_count_sweep(rows, native),
    }
    return {
        name: time_samples(fn, number=number, repeats=repeats)
        for name, fn in ops.items()
    }


def _bench_e2e(backends, *, n, p, k, seed, repeats):
    """End-to-end ``count_kcliques`` wall-clock per backend.

    Returns ``(samples, count)``; counts are asserted identical across
    backends (the bit-identical contract, enforced even in a bench)."""
    import time

    g = erdos_renyi(n, p, seed=seed)
    ordering = core_ordering(g)
    samples = {}
    count = None
    for backend in backends:
        reps = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            result = count_kcliques(g, k, ordering, kernel=backend)
            reps.append(time.perf_counter() - t0)
            if count is None:
                count = result.count
            elif result.count != count:
                raise AssertionError(
                    f"backend {backend!r} count {result.count} != {count}"
                )
        samples[backend] = reps
    return samples, count


def _work_metrics(seed):
    """Exact work counters for the record: a deterministic small count
    on every available backend, whose engine/kernel totals depend only
    on the seed (any drift is an algorithmic change, not timing
    noise)."""
    from repro import obs

    g = erdos_renyi(120, 0.3, seed=seed)
    ordering = core_ordering(g)
    with obs.collecting() as registry:
        for backend in available_kernels():
            count_kcliques(g, 4, ordering, kernel=backend)
    return registry


def run_kernel_bench(*, n, p, seed, number, repeats, gate, e2e, out_path,
                     store_args=None):
    """Old-vs-new kernel comparison on a dense-structure hub root.

    Returns the payload dict (also written to ``out_path``); the
    ``gate`` entry records whether the word-array backend met the
    required speedups on the fused/frontier kernels and the end-to-end
    floor.  ``e2e`` is the ``(n, p, k)`` config of the end-to-end SCT
    count.  The invocation is also appended to the run store and
    checked against the promoted baseline (``payload["store_result"]``,
    never written to the legacy artifact).
    """
    backends = list(available_kernels())
    g = erdos_renyi(n, p, seed=seed)
    dag = directionalize(g, core_ordering(g))
    hub = int(np.argmax(dag.degrees))

    timings = {}
    d = words = 0
    mask_ints = pcs = None
    for backend in backends:
        ctx = DenseStructure(g, dag, kernel=backend).build(hub)
        if mask_ints is None:
            d = ctx.d
            words = (d + 63) // 64
            mask_ints, pcs = _frontier_masks(d, seed)
        timings[backend] = _bench_ops(
            ctx, mask_ints, pcs, number=number, repeats=repeats
        )

    table = Table(
        title=(f"bitset kernels, dense root d={d} ({words} words), "
               f"frontier F={FRONTIER_F}"),
        columns=["op", "bigint", "wordarray", "speedup", "wa words/s"],
    )
    ops_payload = {}
    for op in timings["bigint"]:
        bi = min(timings["bigint"][op])
        wa = min(timings["wordarray"][op])
        speedup = bi / wa
        scale = FRONTIER_F if op in FRONTIER_OPS else 1
        words_per_s = scale * d * words / wa
        ops_payload[op] = {
            "form": "frontier" if op in FRONTIER_OPS else "single",
            "speedup": round(speedup, 3),
            "wordarray_words_per_s": words_per_s,
            "gated": op in GATED_OPS,
            "gate_threshold": _op_gate(op, gate) if op in GATED_OPS else None,
        }
        for backend in backends:
            ops_payload[op][f"{backend}_s"] = min(timings[backend][op])
        table.add(op, f"{bi * 1e6:.1f}us", f"{wa * 1e6:.1f}us",
                  f"{speedup:.2f}x", fmt_rate(words_per_s))

    e2e_n, e2e_p, e2e_k = e2e
    e2e_samples, e2e_count = _bench_e2e(
        backends, n=e2e_n, p=e2e_p, k=e2e_k, seed=seed,
        repeats=max(3, repeats - 1),
    )
    e2e_bi = min(e2e_samples["bigint"])
    e2e_wa = min(e2e_samples["wordarray"])
    e2e_speedup = e2e_bi / e2e_wa
    e2e_payload = {
        "config": {"n": e2e_n, "p": e2e_p, "k": e2e_k},
        "count": str(e2e_count),
        "speedup": round(e2e_speedup, 3),
        "gate_threshold": E2E_GATE,
    }
    for backend in backends:
        e2e_payload[f"{backend}_s"] = min(e2e_samples[backend])
    table.add("sct_count_e2e", f"{e2e_bi:.3f}s", f"{e2e_wa:.3f}s",
              f"{e2e_speedup:.2f}x", "-")

    gate_pass = all(
        ops_payload[op]["speedup"] >= _op_gate(op, gate) for op in GATED_OPS
    ) and e2e_speedup >= E2E_GATE
    table.note(
        f"gate: intersect/popcount >= {gate:.1f}x, frontier ops >= "
        f"{FRONTIER_GATE:.1f}x, end-to-end >= {E2E_GATE:.1f}x -> "
        f"{'PASS' if gate_pass else 'FAIL'}"
    )
    table.show()

    payload = {
        "bench": "kernels",
        "config": {"n": n, "p": p, "seed": seed,
                   "number": number, "repeats": repeats,
                   "frontier_f": FRONTIER_F,
                   "frontier_density": FRONTIER_DENSITY},
        "backends": backends,
        "root": {"d": d, "words": words},
        "ops": ops_payload,
        "end_to_end": e2e_payload,
        "gate": {"threshold": gate, "frontier_threshold": FRONTIER_GATE,
                 "e2e_threshold": E2E_GATE,
                 "ops": list(GATED_OPS), "pass": gate_pass},
    }
    artifact = write_json_artifact(out_path, payload)
    print(f"wrote {artifact}")

    # Run-store migration: append this invocation (per-repeat samples,
    # exact work counters, legacy gate verdict) and compare against the
    # promoted stored baseline.  The fixed thresholds above survive as
    # hard floors; the store comparison is the statistical gate.
    samples = {
        f"{backend}.{op}": timings[backend][op]
        for backend in timings for op in timings[backend]
    }
    for backend in backends:
        samples[f"{backend}.sct_count_e2e"] = e2e_samples[backend]
    _, comparison, store_rc = store_and_check(
        "kernels", payload, samples, seed=seed, args=store_args,
        registry=_work_metrics(seed),
    )
    payload["store_result"] = {
        "regressed": bool(comparison.regressed) if comparison else False,
        "exit": store_rc,
    }
    return payload


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="old-vs-new bitset kernel comparison")
    ap.add_argument("--smoke", action="store_true",
                    help="small graph, few repeats, relaxed gate (CI)")
    ap.add_argument("--out", default="BENCH_kernels.json",
                    help="JSON artifact path (default: %(default)s)")
    ap.add_argument("--n", type=int, default=None,
                    help="graph size (default: 1200 full, 500 smoke)")
    ap.add_argument("--p", type=float, default=None,
                    help="edge probability (default: 0.6 full, 0.5 smoke)")
    ap.add_argument("--seed", type=int, default=7)
    add_store_args(ap)
    args = ap.parse_args(argv)

    if args.smoke:
        cfg = dict(n=args.n or 500, p=args.p or 0.5, seed=args.seed,
                   number=10, repeats=3, gate=SMOKE_GATE,
                   e2e=(200, 0.4, 7))
    else:
        cfg = dict(n=args.n or 1200, p=args.p or 0.6, seed=args.seed,
                   number=20, repeats=5, gate=FULL_GATE,
                   e2e=(300, 0.4, 7))

    payload = run_kernel_bench(out_path=args.out, store_args=args, **cfg)
    if not payload["gate"]["pass"]:
        print("FAIL: word-array kernels missed the speedup gate",
              file=sys.stderr)
        return 1
    return payload["store_result"]["exit"]


if __name__ == "__main__":
    raise SystemExit(main())
