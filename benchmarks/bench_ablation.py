"""Ablation benches for the design choices DESIGN.md calls out.

1. **Pivoting**: the SCT engine vs plain enumeration — pivoting's tree
   is (nearly) k-invariant while enumeration explodes (the algorithmic
   heart of the paper).
2. **Early termination** (Sec. V-A): reach-pruning shrinks the tree for
   small targets at zero cost to correctness.
3. **First-level-only remap** (Sec. IV/V-B): the remap structure pays
   the hash cost once per root; the sparse structure pays 1.2x on every
   lookup.
"""

from repro.bench.harness import Table
from repro.counting import SCTEngine, count_kcliques, count_kcliques_enumeration
from repro.counting.arbcount import EnumerationBudgetExceeded
from repro.datasets import load
from repro.ordering import core_ordering


def test_ablation_pivoting_vs_enumeration(benchmark):
    g = load("skitter")
    o = core_ordering(g)

    def run():
        rows = []
        for k in (4, 6, 8, 10):
            piv = count_kcliques(g, k, o)
            try:
                enum = count_kcliques_enumeration(g, k, o, max_nodes=2_000_000)
                enum_calls = enum.counters.function_calls
                assert enum.count == piv.count
            except EnumerationBudgetExceeded:
                enum_calls = None
            rows.append((k, piv.counters.function_calls, enum_calls))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    t = Table("Ablation - pivoting vs enumeration tree size (skitter)",
              ["k", "SCT calls", "enumeration calls"])
    for k, p, e in rows:
        t.add(k, p, e if e is not None else ">budget")
    print()
    t.show()
    piv_growth = rows[-1][1] / rows[0][1]
    assert piv_growth < 3, "pivoting tree should be nearly k-invariant"
    assert rows[0][2] is not None and rows[0][2] < 10 * rows[0][1]
    last_enum = rows[-1][2]
    assert last_enum is None or last_enum > 5 * rows[-1][1], (
        "enumeration should explode by k=10"
    )


def test_ablation_early_termination(benchmark):
    g = load("livejournal")
    engine = SCTEngine(g, core_ordering(g))

    def run():
        on = engine.count(6)
        off = engine.count(6, early_termination=False)
        assert on.count == off.count
        return on.counters.function_calls, off.counters.function_calls

    calls_on, calls_off = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nAblation - early termination: {calls_off:,} -> {calls_on:,} "
          f"calls ({calls_off / calls_on:.1f}x reduction at k=6)")
    assert calls_on < calls_off


def test_ablation_remap_lookup_cost(benchmark):
    """Remap's one-time hash pass vs sparse's per-lookup hash cost."""
    g = load("orkut")
    o = core_ordering(g)

    def run():
        remap = count_kcliques(g, 8, o, structure="remap")
        sparse = count_kcliques(g, 8, o, structure="sparse")
        assert remap.count == sparse.count
        return remap.counters, sparse.counters

    remap_c, sparse_c = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nAblation - weighted lookups: remap {remap_c.index_lookups:,.0f} "
          f"vs sparse {sparse_c.index_lookups:,.0f} "
          f"(sparse pays the paper's 1.2x hash penalty per access; "
          f"remap pays one pass per root: build {remap_c.build_words:,.0f} "
          f"vs {sparse_c.build_words:,.0f} words)")
    assert sparse_c.index_lookups > remap_c.index_lookups
    assert remap_c.build_words > sparse_c.build_words
