"""Incremental-update benchmark: small-batch ``apply_edits`` vs rebuild.

:meth:`~repro.counting.forest.SCTForest.apply_edits` exists so that a
long-lived forest tracking an edge stream pays pivot recursion only for
the dirty roots of each batch instead of re-running the full build.
This bench times exactly that trade on every (graph, kernel backend)
combination:

* **apply** — a small batch (one insert + one delete) applied to a
  clone of the resident forest (the clone is made *outside* the timed
  region; ``apply_edits`` mutates in place);
* **rebuild** — ``SCTForest.build`` over the post-edit graph under the
  same maintained rank, i.e. what a stream consumer would pay without
  the incremental path.

Exactness is checked before any timing is trusted: the patched clone
must be bit-identical to the rebuilt forest (leaf arrays, offsets and
work/memory vectors), and its ``count_all`` must agree across backends
(the bigint run is the oracle).  The gate requires the incremental
apply to be **>= 5x** faster than the rebuild on every combination.

The bench graphs are deliberately *sparse*: the dirty-root rule marks
every lower-ranked neighbour of an edited endpoint, so on dense graphs
a single edit can dirty a constant fraction of all roots and the
incremental path degenerates toward a rebuild by design (that regime
is what the ``reorder``/``auto`` policies are for).  Sparse graphs are
also the realistic streaming regime.

Usage::

    python benchmarks/bench_dynamic.py [--smoke] [--out BENCH_dynamic.json]
"""

import argparse
import sys
import time

import numpy as np

from repro.bench.harness import Table, fmt_seconds, time_samples, write_json_artifact
from repro.bench.platform import add_store_args, store_and_check
from repro.counting.forest import SCTForest
from repro.datasets import load
from repro.graph.generators import chung_lu, erdos_renyi, power_law_degrees
from repro.kernels import available_kernels
from repro.ordering import core_ordering

#: The gated workload: one absent-pair insert + one present-edge delete.
EDITS_PER_BATCH = 2

#: Acceptance: small-batch apply_edits >= 5x faster than a full rebuild,
#: on every (graph, backend) combination, with bit-identical forests.
GATE = 5.0

STRUCTURE = "remap"


def _bench_graphs(smoke: bool, seed: int):
    """(name, graph) pairs; sparse synthetic corpus + one analog.

    Every synthetic graph derives from the explicit ``seed`` so a
    stored record names exactly the workload it measured.  Smoke keeps
    the two synthetic graphs (they are already CI-sized) and drops the
    analog; shrinking further would thin the gate margin, not the
    runtime (see module docstring on sparsity).
    """
    synthetic = [
        ("er-1200", erdos_renyi(1200, 0.008, seed=seed)),
        ("cl-900", chung_lu(power_law_degrees(900, 2.4, 3.0, seed=seed + 1),
                            seed=seed + 1)),
    ]
    if smoke:
        return synthetic
    return synthetic + [("dblp", load("dblp"))]


def _make_batch(g, seed):
    """One absent-pair insert + one present-edge delete, from ``seed``."""
    rng = np.random.default_rng(seed)
    n = g.num_vertices
    while True:
        u, v = (int(x) for x in rng.integers(0, n, 2))
        if u != v and not g.has_edge(u, v):
            break
    edges = g.edge_array()
    du, dv = (int(x) for x in edges[int(rng.integers(0, len(edges)))])
    return [("+", u, v), ("-", du, dv)]


def _same_forest(a, b):
    """Bit-identity of everything the build would have produced."""
    return (
        np.array_equal(a.roots, b.roots)
        and np.array_equal(a.held_n, b.held_n)
        and np.array_equal(a.pivot_n, b.pivot_n)
        and np.array_equal(a.held_members, b.held_members)
        and np.array_equal(a.pivot_members, b.pivot_members)
        and np.array_equal(a.held_off, b.held_off)
        and np.array_equal(a.pivot_off, b.pivot_off)
        and np.array_equal(a.per_root_work, b.per_root_work)
        and np.array_equal(a.per_root_memory, b.per_root_memory)
    )


def _time_apply(forest, batch, *, number, repeats):
    """Like :func:`time_samples` but with the clone outside the timer:
    ``apply_edits`` mutates the forest, so every call needs a fresh
    copy whose cost is not the incremental path's to pay."""
    samples = []
    for _ in range(repeats):
        total = 0.0
        for _ in range(number):
            clone = forest.copy()
            t0 = time.perf_counter()
            clone.apply_edits(batch)
            total += time.perf_counter() - t0
        samples.append(total / number)
    return samples


def _work_metrics(seed):
    """Exact work counters for the record: one deterministic small
    build + edit batch under observation."""
    from repro import obs

    g = erdos_renyi(200, 0.03, seed=seed)
    ordering = core_ordering(g)
    with obs.collecting() as registry:
        forest = SCTForest.build(g, ordering, STRUCTURE, "bigint")
        forest.apply_edits(_make_batch(g, seed + 1))
    return registry


def run_dynamic_bench(*, smoke, number, repeats, out_path, seed=11,
                      graphs=None, store_args=None):
    """Time small-batch apply vs rebuild; returns the payload."""
    if graphs is None:
        graphs = _bench_graphs(smoke, seed)
    kernels = available_kernels()
    table = Table(
        title=f"incremental apply_edits vs full rebuild "
              f"({EDITS_PER_BATCH}-edit batch)",
        columns=["graph", "kernel", "dirty", "apply", "rebuild", "speedup"],
    )
    results = []
    gate_pass = True
    exact = True
    reference_counts: dict[str, dict] = {}
    store_samples: dict[str, list[float]] = {}

    for gname, g in graphs:
        ordering = core_ordering(g)
        batch = _make_batch(g, seed + 17)
        for backend in kernels:
            forest = SCTForest.build(g, ordering, STRUCTURE, backend)
            # Correctness first: the patched clone must be
            # bit-identical to a rebuild over the post-edit graph, and
            # its counts identical across backends.
            clone = forest.copy()
            report = clone.apply_edits(batch)
            rebuilt = SCTForest.build(report.graph, clone.rank, STRUCTURE,
                                      backend)
            ok = _same_forest(clone, rebuilt)
            counts = clone.count_all()
            ref = reference_counts.setdefault(gname, counts)
            ok = ok and ref == counts
            exact = exact and ok

            apply_samples = _time_apply(forest, batch, number=number,
                                        repeats=repeats)
            rebuild_samples = time_samples(
                lambda: SCTForest.build(report.graph, clone.rank, STRUCTURE,
                                        backend),
                number=number, repeats=repeats,
            )
            apply_s = min(apply_samples)
            rebuild_s = min(rebuild_samples)
            store_samples[f"{gname}.{backend}.apply_s"] = apply_samples
            store_samples[f"{gname}.{backend}.rebuild_s"] = rebuild_samples
            speedup = rebuild_s / apply_s
            combo_pass = speedup >= GATE and ok
            gate_pass = gate_pass and combo_pass
            results.append({
                "graph": gname,
                "kernel": backend,
                "num_leaves": clone.num_leaves,
                "dirty_roots": int(report.dirty_roots.size),
                "total_roots": report.graph.num_vertices,
                "apply_s": apply_s,
                "rebuild_s": rebuild_s,
                "speedup": round(speedup, 2),
                "exact": ok,
                "pass": combo_pass,
            })
            table.add(
                gname, backend,
                f"{report.dirty_roots.size}/{report.graph.num_vertices}",
                fmt_seconds(apply_s), fmt_seconds(rebuild_s),
                f"{speedup:.0f}x",
            )

    table.note(
        f"gate: incremental apply >= {GATE:.0f}x faster than rebuild "
        f"with a bit-identical forest -> {'PASS' if gate_pass else 'FAIL'}"
    )
    table.note(
        "dirty: roots re-run by the pivot recursion / total roots "
        "(the rebuild re-runs all of them)"
    )
    table.show()

    payload = {
        "bench": "dynamic",
        "config": {
            "smoke": smoke,
            "edits_per_batch": EDITS_PER_BATCH,
            "structure": STRUCTURE,
            "number": number,
            "repeats": repeats,
            "seed": seed,
        },
        "results": results,
        "gate": {
            "threshold": GATE,
            "exact": exact,
            "pass": gate_pass,
        },
    }
    artifact = write_json_artifact(out_path, payload)
    print(f"wrote {artifact}")

    # Run store: apply/rebuild samples per (graph, backend); the >= 5x
    # threshold stays as the hard floor, the stored baseline does
    # regression detection on the raw times.
    _, comparison, store_rc = store_and_check(
        "dynamic", payload, store_samples, seed=seed, args=store_args,
        registry=_work_metrics(seed),
    )
    payload["store_result"] = {
        "regressed": bool(comparison.regressed) if comparison else False,
        "exit": store_rc,
    }
    return payload


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="incremental apply_edits speedup benchmark")
    ap.add_argument("--smoke", action="store_true",
                    help="synthetic graphs only, few repeats (CI)")
    ap.add_argument("--out", default="BENCH_dynamic.json",
                    help="JSON artifact path (default: %(default)s)")
    ap.add_argument("--seed", type=int, default=11,
                    help="base RNG seed for the synthetic bench graphs")
    add_store_args(ap)
    args = ap.parse_args(argv)

    cfg = (dict(smoke=True, number=1, repeats=2) if args.smoke
           else dict(smoke=False, number=1, repeats=3))
    payload = run_dynamic_bench(out_path=args.out, seed=args.seed,
                                store_args=args, **cfg)
    if not payload["gate"]["exact"]:
        print("FAIL: patched forest diverged from a full rebuild",
              file=sys.stderr)
        return 1
    if not payload["gate"]["pass"]:
        print(f"FAIL: incremental apply missed the >={GATE:.0f}x "
              "speedup gate", file=sys.stderr)
        return 1
    return payload["store_result"]["exit"]


if __name__ == "__main__":
    raise SystemExit(main())
