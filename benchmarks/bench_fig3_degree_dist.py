"""Fig. 3: DAG out-degree distributions under core vs degree ordering."""

from conftest import report

from repro.bench.experiments import fig3_degree_distributions


def test_fig3_degree_distributions(benchmark):
    result = benchmark.pedantic(
        fig3_degree_distributions, rounds=1, iterations=1
    )
    report(result)
