"""Observability overhead benchmark (real wall-clock timing).

The observability layer's contract is that **disabled is free**: every
hook the engines call when metrics are off costs one boolean check per
run or per root, never per recursion node.  This bench holds that
contract to a number.  Two entry points:

* ``pytest benchmarks/bench_obs.py`` — the no-op fast-path unit tests
  (``span()`` hands out the shared singleton, a disabled registry
  records nothing);
* ``python benchmarks/bench_obs.py [--smoke]`` — times a k=3..10
  counting sweep three ways: with the obs hooks monkeypatched out
  entirely (the "layer does not exist" baseline), with the shipped
  disabled hooks (what every user runs), and with metrics enabled (for
  the record; not gated).  Writes ``BENCH_obs.json`` and exits nonzero
  if the disabled-hook overhead exceeds the <5% gate.
"""

import argparse
import sys
import time

from repro import obs
from repro.bench.harness import Table, fmt_seconds, write_json_artifact
from repro.bench.platform import add_store_args, store_and_check
from repro.counting import count_kcliques
from repro.graph.generators import erdos_renyi
from repro.obs import NOOP_METRIC, NOOP_SPAN, MetricsRegistry
from repro.ordering import core_ordering

#: Acceptance: the shipped disabled hooks may cost at most this much
#: over a build with no observability layer at all.
OVERHEAD_GATE_PCT = 5.0

KS = tuple(range(3, 11))


# ----------------------------------------------------------------------
# pytest suite: the no-op fast path, pinned as unit tests
# ----------------------------------------------------------------------
def test_noop_span_fast_path():
    """Disabled ``span()`` returns the shared singleton — no per-span
    allocation, no records, no clock reads."""
    assert not obs.enabled()
    s = obs.span("anything", engine="sct", k=8)
    assert s is NOOP_SPAN
    assert obs.span("other") is s
    with s as inner:
        inner.event("ignored")
    assert obs.get_tracer().records == []


def test_disabled_registry_noop_metric_fast_path():
    reg = MetricsRegistry(enabled=False)
    assert reg.counter("kernel_calls_total", kernel="bigint") is NOOP_METRIC
    reg.counter("x").inc(10**18)
    assert len(reg) == 0


def test_disabled_hooks_record_nothing():
    obs.degradation("sampling")
    obs.checkpoint_write()
    obs.note_memory(1 << 30)
    assert len(obs.get_registry()) == 0
    assert obs.get_tracer().records == []
    assert obs.get_profiler().phases == {}


# ----------------------------------------------------------------------
# standalone overhead gate (CI smoke)
# ----------------------------------------------------------------------
class _StubSpan:
    """What "no observability layer" would cost: a bare context."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        pass

    def event(self, name, **attrs):
        pass


_STUB = _StubSpan()

#: The obs attributes the engines touch on the hot (per-run / per-root)
#: path; the baseline replaces them with minimal stand-ins.
_HOOKS = {
    "span": lambda name, **attrs: _STUB,
    "phase": lambda name: _STUB,
    "event": lambda name, **attrs: None,
    "note_memory": lambda peak: None,
    "record_run": lambda counters, **kw: None,
    "record_counters": lambda counters, **kw: None,
    "record_ordering": lambda ordering: None,
    "degradation": lambda rung, **attrs: None,
    "checkpoint_write": lambda **kw: None,
    "instrument_kernel": lambda kernel: kernel,
}


def _with_stripped_hooks(fn):
    """Run ``fn`` with the obs hooks monkeypatched out entirely."""
    saved = {name: getattr(obs, name) for name in _HOOKS}
    for name, stub in _HOOKS.items():
        setattr(obs, name, stub)
    try:
        return fn()
    finally:
        for name, hook in saved.items():
            setattr(obs, name, hook)


def _time_interleaved(variants, *, number, repeats):
    """Per-repeat seconds per call for each variant, with the repeats
    *interleaved* (A B C, A B C, ...) rather than sequential.

    Sequential timing is the standard microbench shape but it
    attributes slow phases of a noisy machine to whichever variant ran
    through them; interleaving exposes every variant to the same noise,
    so both the minima and the per-repeat *pairs* (repeat i of variant
    A vs repeat i of variant B — what the run store keeps as overhead
    ratios) are comparable.
    """
    samples = {name: [] for name in variants}
    for _ in range(repeats):
        for name, fn in variants.items():
            t0 = time.perf_counter()
            for _ in range(number):
                fn()
            samples[name].append((time.perf_counter() - t0) / number)
    return samples


def run_obs_bench(*, n, p, seed, number, repeats, out_path,
                  store_args=None):
    """Time the k-sweep stripped vs. disabled vs. enabled.

    Returns the payload dict (also written to ``out_path``); the
    ``gate`` entry records whether the shipped disabled hooks stayed
    under :data:`OVERHEAD_GATE_PCT` percent overhead on the whole
    sweep.
    """
    g = erdos_renyi(n, p, seed=seed)
    ordering = core_ordering(g)

    def sweep():
        total = 0
        for k in KS:
            total += count_kcliques(g, k, ordering).count
        return total

    def stripped_sweep():
        return _with_stripped_hooks(sweep)

    def enabled_sweep():
        with obs.collecting():
            return sweep()

    assert not obs.enabled(), "bench must start from the shipped default"
    # Warm once (ordering caches, allocator) so no arm pays setup, and
    # pin the contract the timing rests on: observation never changes
    # counts.
    checksum = sweep()
    assert stripped_sweep() == checksum
    assert enabled_sweep() == checksum

    samples = _time_interleaved(
        {
            "stripped": stripped_sweep,
            "disabled": sweep,
            "enabled": enabled_sweep,
        },
        number=number, repeats=repeats,
    )
    t_stripped = min(samples["stripped"])
    t_disabled = min(samples["disabled"])
    t_enabled = min(samples["enabled"])

    overhead_pct = (t_disabled / t_stripped - 1.0) * 100.0
    enabled_pct = (t_enabled / t_stripped - 1.0) * 100.0
    gate_pass = overhead_pct < OVERHEAD_GATE_PCT

    table = Table(
        title=f"observability overhead, k={KS[0]}..{KS[-1]} sweep "
              f"(n={n}, p={p})",
        columns=["variant", "sweep(s)", "vs stripped"],
    )
    table.add("hooks stripped", fmt_seconds(t_stripped), "1.000x")
    table.add("disabled (shipped)", fmt_seconds(t_disabled),
              f"{t_disabled / t_stripped:.3f}x")
    table.add("metrics enabled", fmt_seconds(t_enabled),
              f"{t_enabled / t_stripped:.3f}x")
    table.note(
        f"gate: disabled overhead {overhead_pct:+.2f}% < "
        f"{OVERHEAD_GATE_PCT:.0f}% -> {'PASS' if gate_pass else 'FAIL'}"
    )
    table.note("enabled-path cost is informational (opt-in, not gated)")
    table.show()

    payload = {
        "bench": "obs",
        "config": {"n": n, "p": p, "seed": seed, "ks": list(KS),
                   "number": number, "repeats": repeats},
        "sweep_seconds": {
            "stripped": t_stripped,
            "disabled": t_disabled,
            "enabled": t_enabled,
        },
        "overhead_pct": {
            "disabled": round(overhead_pct, 3),
            "enabled": round(enabled_pct, 3),
        },
        "gate": {"threshold_pct": OVERHEAD_GATE_PCT, "pass": gate_pass},
    }
    artifact = write_json_artifact(out_path, payload)
    print(f"wrote {artifact}")

    # Run-store migration: the stored metric of record is the *paired*
    # per-repeat overhead ratio (disabled_i / stripped_i — interleaving
    # makes repeat i comparable across variants), plus the raw variant
    # samples; exact work counters come from one instrumented sweep.
    store_samples = {
        "stripped_s": samples["stripped"],
        "disabled_s": samples["disabled"],
        "enabled_s": samples["enabled"],
        "overhead_ratio": [
            d / s for d, s in zip(samples["disabled"], samples["stripped"])
        ],
    }
    with obs.collecting() as registry:
        sweep()
    _, comparison, store_rc = store_and_check(
        "obs", payload, store_samples, seed=seed, args=store_args,
        registry=registry,
    )
    payload["store_result"] = {
        "regressed": bool(comparison.regressed) if comparison else False,
        "exit": store_rc,
    }
    return payload


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="disabled-observability overhead gate")
    ap.add_argument("--smoke", action="store_true",
                    help="small graph, few repeats (CI)")
    ap.add_argument("--out", default="BENCH_obs.json",
                    help="JSON artifact path (default: %(default)s)")
    ap.add_argument("--n", type=int, default=None,
                    help="graph size (default: 150 full, 70 smoke)")
    ap.add_argument("--p", type=float, default=None,
                    help="edge probability (default: 0.3)")
    ap.add_argument("--seed", type=int, default=7)
    add_store_args(ap)
    args = ap.parse_args(argv)

    if args.smoke:
        cfg = dict(n=args.n or 70, p=args.p or 0.3, seed=args.seed,
                   number=2, repeats=7)
    else:
        cfg = dict(n=args.n or 150, p=args.p or 0.3, seed=args.seed,
                   number=3, repeats=9)

    payload = run_obs_bench(out_path=args.out, store_args=args, **cfg)
    if not payload["gate"]["pass"]:
        print("FAIL: disabled observability hooks exceeded the "
              f"{OVERHEAD_GATE_PCT:.0f}% overhead gate", file=sys.stderr)
        return 1
    return payload["store_result"]["exit"]


if __name__ == "__main__":
    raise SystemExit(main())
