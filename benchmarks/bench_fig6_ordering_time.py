"""Fig. 6: ordering-time speedup over the sequential core ordering."""

from conftest import report

from repro.bench.experiments import fig6_ordering_time


def test_fig6_ordering_time(benchmark):
    result = benchmark.pedantic(fig6_ordering_time, rounds=1, iterations=1)
    report(result)
