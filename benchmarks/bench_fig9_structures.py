"""Fig. 9: dense / sparse / remap subgraph-structure comparison."""

from conftest import report

from repro.bench.experiments import fig9_structures


def test_fig9_structures(benchmark):
    result = benchmark.pedantic(fig9_structures, rounds=1, iterations=1)
    report(result)
