"""Table I: the input-graph suite (analog vs paper columns)."""

from conftest import report

from repro.bench.experiments import table1_graph_suite


def test_table1_graph_suite(benchmark):
    result = benchmark.pedantic(table1_graph_suite, rounds=1, iterations=1)
    report(result)
