"""Fig. 11: self-relative parallel scaling, 1-64 modeled threads,
three subgraph structures."""

from conftest import report

from repro.bench.experiments import fig11_scaling


def test_fig11_scaling(benchmark):
    result = benchmark.pedantic(fig11_scaling, rounds=1, iterations=1)
    report(result)
