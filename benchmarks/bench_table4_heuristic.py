"""Table IV: order-selecting heuristic inputs and decisions."""

from conftest import report

from repro.bench.experiments import table4_heuristic


def test_table4_heuristic(benchmark):
    result = benchmark.pedantic(table4_heuristic, rounds=1, iterations=1)
    report(result)
