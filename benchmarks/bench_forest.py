"""Materialized-forest benchmark: query folds vs repeated recursion.

The :class:`~repro.counting.forest.SCTForest` exists so that a workload
asking several questions of one graph — a k = 3..10 sweep plus a
per-vertex query is the canonical example — pays the pivot recursion
once instead of once per question.  This bench times exactly that
workload both ways on every (graph, kernel backend) combination:

* **direct** — one ``SCTEngine.count(k)`` run per k plus one
  ``per_vertex_counts`` run, i.e. nine full traversals;
* **forest** — the same queries answered from an already-built forest
  (array folds; the one-time build cost is measured and reported
  separately, with the break-even query count, but is *not* part of
  the gated query time — the forest's contract is amortization).

Every count is checked bit-identical between the two paths and across
backends before any timing is trusted.  The gate requires the
forest-served workload to be **>= 5x** faster than the repeated direct
runs on every combination; CI runs ``--smoke`` on every push and fails
on a gate miss or any count mismatch.

Usage::

    python benchmarks/bench_forest.py [--smoke] [--out BENCH_forest.json]
"""

import argparse
import sys
import time

from repro.bench.harness import Table, fmt_seconds, time_samples, write_json_artifact
from repro.bench.platform import add_store_args, store_and_check
from repro.counting.forest import build_forest
from repro.counting.pervertex import per_vertex_counts
from repro.counting.sct import SCTEngine
from repro.datasets import load
from repro.graph.generators import chung_lu, erdos_renyi, power_law_degrees
from repro.kernels import KERNELS
from repro.ordering import core_ordering, directionalize

#: The gated workload: one count per k in this sweep + one per-vertex
#: query at PV_K.
K_SWEEP = tuple(range(3, 11))
PV_K = 5

#: Acceptance: forest-served queries >= 5x faster than repeated direct
#: engine runs, on every (graph, backend) combination.
GATE = 5.0


def _bench_graphs(smoke: bool, seed: int):
    """(name, graph) pairs; small synthetic corpus + one analog.

    Every synthetic graph derives from the explicit ``seed`` so a
    stored record names exactly the workload it measured.
    """
    if smoke:
        return [
            ("er-120", erdos_renyi(120, 0.3, seed=seed)),
            ("cl-150", chung_lu(power_law_degrees(150, 2.3, 40,
                                                  seed=seed + 1),
                                seed=seed + 1)),
        ]
    return [
        ("er-300", erdos_renyi(300, 0.25, seed=seed)),
        ("cl-400", chung_lu(power_law_degrees(400, 2.3, 60, seed=seed + 1),
                            seed=seed + 1)),
        ("dblp", load("dblp")),
    ]


def _direct_workload(graph, dag, kernel):
    """The repeated-engine path: k-sweep + per-vertex, re-recursing."""
    engine = SCTEngine(graph, dag, kernel=kernel)
    counts = {k: engine.count(k).count for k in K_SWEEP}
    per = per_vertex_counts(graph, PV_K, dag, kernel=kernel)
    return counts, per


def _forest_workload(forest):
    """The same queries, served from the materialized leaves."""
    counts = {k: forest.count(k) for k in K_SWEEP}
    per = forest.per_vertex(PV_K)
    return counts, per


def _work_metrics(seed):
    """Exact work counters for the record: one deterministic small
    forest build + query pass under observation."""
    from repro import obs

    g = erdos_renyi(90, 0.3, seed=seed)
    dag = directionalize(g, core_ordering(g))
    with obs.collecting() as registry:
        forest = build_forest(g, dag)
        forest.count(PV_K)
        forest.per_vertex(PV_K)
    return registry


def run_forest_bench(*, smoke, number, repeats, out_path, seed=11,
                     graphs=None, store_args=None):
    """Time the sweep workload direct-vs-forest; returns the payload."""
    if graphs is None:
        graphs = _bench_graphs(smoke, seed)
    table = Table(
        title=f"forest vs repeated recursion (k={K_SWEEP[0]}..{K_SWEEP[-1]} "
              f"sweep + per-vertex k={PV_K})",
        columns=["graph", "kernel", "direct", "queries", "speedup",
                 "build", "break-even"],
    )
    results = []
    gate_pass = True
    counts_match = True
    reference_counts: dict[str, dict] = {}
    store_samples: dict[str, list[float]] = {}

    for gname, g in graphs:
        dag = directionalize(g, core_ordering(g))
        for backend in sorted(KERNELS):
            # Correctness first: both paths, bit-identical, and
            # identical across backends (the bigint run is the oracle).
            d_counts, d_per = _direct_workload(g, dag, backend)
            t_build0 = time.perf_counter()
            forest = build_forest(g, dag, kernel=backend)
            build_s = time.perf_counter() - t_build0
            f_counts, f_per = _forest_workload(forest)
            ok = f_counts == d_counts and f_per == d_per
            ref = reference_counts.setdefault(gname, d_counts)
            ok = ok and ref == d_counts
            counts_match = counts_match and ok

            direct_samples = time_samples(
                lambda: _direct_workload(g, dag, backend),
                number=number, repeats=repeats,
            )
            query_samples = time_samples(
                lambda: _forest_workload(forest),
                number=max(number, 10), repeats=repeats,
            )
            direct_s = min(direct_samples)
            query_s = min(query_samples)
            store_samples[f"{gname}.{backend}.direct_s"] = direct_samples
            store_samples[f"{gname}.{backend}.query_s"] = query_samples
            speedup = direct_s / query_s
            # Queries-to-break-even: after this many workload
            # repetitions the build has paid for itself.
            saved_per_query = direct_s - query_s
            breakeven = (
                build_s / saved_per_query if saved_per_query > 0 else
                float("inf")
            )
            combo_pass = speedup >= GATE and ok
            gate_pass = gate_pass and combo_pass
            results.append({
                "graph": gname,
                "kernel": backend,
                "num_leaves": forest.num_leaves,
                "forest_bytes": forest.nbytes,
                "direct_s": direct_s,
                "forest_query_s": query_s,
                "forest_build_s": build_s,
                "speedup": round(speedup, 2),
                "breakeven_workloads": round(breakeven, 3),
                "counts_match": ok,
                "pass": combo_pass,
            })
            table.add(
                gname, backend, fmt_seconds(direct_s), fmt_seconds(query_s),
                f"{speedup:.0f}x", fmt_seconds(build_s),
                f"{breakeven:.2f}",
            )

    table.note(
        f"gate: forest-served queries >= {GATE:.0f}x faster with "
        f"bit-identical counts -> {'PASS' if gate_pass else 'FAIL'}"
    )
    table.note(
        "break-even: workload repetitions after which the one-time "
        "build has paid for itself (build is excluded from the gated "
        "query time)"
    )
    table.show()

    payload = {
        "bench": "forest",
        "config": {
            "smoke": smoke,
            "k_sweep": list(K_SWEEP),
            "per_vertex_k": PV_K,
            "number": number,
            "repeats": repeats,
            "seed": seed,
        },
        "results": results,
        "gate": {
            "threshold": GATE,
            "counts_match": counts_match,
            "pass": gate_pass,
        },
    }
    artifact = write_json_artifact(out_path, payload)
    print(f"wrote {artifact}")

    # Run-store migration: direct/query samples per (graph, backend);
    # the >= 5x threshold stays as the hard floor, the stored baseline
    # does regression detection on the raw query times.
    _, comparison, store_rc = store_and_check(
        "forest", payload, store_samples, seed=seed, args=store_args,
        registry=_work_metrics(seed),
    )
    payload["store_result"] = {
        "regressed": bool(comparison.regressed) if comparison else False,
        "exit": store_rc,
    }
    return payload


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="materialized-forest query speedup benchmark")
    ap.add_argument("--smoke", action="store_true",
                    help="small graphs, few repeats (CI)")
    ap.add_argument("--out", default="BENCH_forest.json",
                    help="JSON artifact path (default: %(default)s)")
    ap.add_argument("--seed", type=int, default=11,
                    help="base RNG seed for the synthetic bench graphs")
    add_store_args(ap)
    args = ap.parse_args(argv)

    cfg = (dict(smoke=True, number=1, repeats=2) if args.smoke
           else dict(smoke=False, number=1, repeats=3))
    payload = run_forest_bench(out_path=args.out, seed=args.seed,
                               store_args=args, **cfg)
    if not payload["gate"]["counts_match"]:
        print("FAIL: forest-served counts diverged from the direct "
              "engines", file=sys.stderr)
        return 1
    if not payload["gate"]["pass"]:
        print("FAIL: forest-served queries missed the "
              f">={GATE:.0f}x speedup gate", file=sys.stderr)
        return 1
    return payload["store_result"]["exit"]


if __name__ == "__main__":
    raise SystemExit(main())
