"""Fig. 10: total time vs clique size for approx-core / degree /
heuristic-selected orderings."""

from conftest import report

from repro.bench.experiments import fig10_heuristic_vs_k


def test_fig10_heuristic_vs_k(benchmark):
    result = benchmark.pedantic(fig10_heuristic_vs_k, rounds=1, iterations=1)
    report(result)
