"""Table V / Fig. 12: Pivoter, Arb-Count, GPU-Pivot, PivotScale across
clique sizes k = 6..13."""

from conftest import report

from repro.bench.experiments import table5_comparison


def test_table5_comparison(benchmark):
    result = benchmark.pedantic(table5_comparison, rounds=1, iterations=1)
    report(result)
