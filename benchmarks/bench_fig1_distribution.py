"""Fig. 1: k-clique frequency distributions (peak near k_max / 2)."""

from conftest import report

from repro.bench.experiments import fig1_distribution


def test_fig1_distribution(benchmark):
    result = benchmark.pedantic(fig1_distribution, rounds=1, iterations=1)
    report(result)
