"""Table III: sequential core vs parallel degree ordering, end to end."""

from conftest import report

from repro.bench.experiments import table3_orderings


def test_table3_orderings(benchmark):
    result = benchmark.pedantic(table3_orderings, rounds=1, iterations=1)
    report(result)
