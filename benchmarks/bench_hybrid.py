"""The Sec. VI-H hybrid: enumeration below k=8, pivoting above.

Regenerates the crossover picture behind the paper's closing
recommendation: for every k the hybrid should track the cheaper of the
two pure algorithms.
"""

from repro.bench.harness import Table, fmt_seconds
from repro.core import PivotScaleConfig
from repro.core.hybrid import count_cliques_hybrid
from repro.datasets import get_spec, load


def test_hybrid_crossover(benchmark):
    name = "skitter"
    g = load(name)
    spec = get_spec(name)
    cfg = PivotScaleConfig(effective_num_vertices=spec.effective_num_vertices)

    def run():
        rows = []
        for k in (3, 4, 5, 6, 8, 10, 12):
            enum = count_cliques_hybrid(g, k, switch_k=99, config=cfg)
            piv = count_cliques_hybrid(g, k, switch_k=1, config=cfg)
            hyb = count_cliques_hybrid(g, k, config=cfg)
            assert enum.count == piv.count == hyb.count
            rows.append((k, enum.model_seconds, piv.model_seconds,
                         hyb.model_seconds, hyb.algorithm))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    t = Table(
        f"hybrid algorithm on {name} (model seconds)",
        ["k", "enumeration", "pivoting", "hybrid", "hybrid picks"],
    )
    for k, e, p, h, alg in rows:
        t.add(k, fmt_seconds(e), fmt_seconds(p), fmt_seconds(h), alg)
    print()
    t.show()
    # The hybrid tracks the winner within 2x everywhere.  (On the
    # scaled analog the true crossover is k ~ 6, a bit earlier than the
    # paper's k = 8 switch point — pivoting is even stronger here, so
    # the fixed heuristic briefly rides the slower branch at k = 6-7.)
    for k, e, p, h, _ in rows:
        assert h <= min(e, p) * 2.0, f"hybrid should track the winner at k={k}"
    # Enumeration must eventually lose badly (the reason to switch).
    assert rows[-1][1] > 3 * rows[-1][2]
