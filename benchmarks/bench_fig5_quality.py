"""Fig. 5: normalized max out-degree of every ordering (eps sweep)."""

from conftest import report

from repro.bench.experiments import fig5_ordering_quality


def test_fig5_ordering_quality(benchmark):
    result = benchmark.pedantic(fig5_ordering_quality, rounds=1, iterations=1)
    report(result)
