"""CI smoke driver for the resilience acceptance criteria.

Runs, against the DBLP analog, the two behaviors the robustness work
guarantees (see docs/robustness.md):

1. a fault-injected all-k run, interrupted mid-run and resumed from
   its checkpoint, lands on bit-identical counts, work counters and
   per-root arrays — on both kernel backends;
2. a run whose node budget is exhausted with ``degrade`` enabled
   returns a result flagged ``approximate`` with the exactly-counted
   roots folded in, instead of raising.

Exits nonzero on any violation.  Usage::

    PYTHONPATH=src python benchmarks/resilience_smoke.py
"""

from __future__ import annotations

import tempfile
import warnings
from pathlib import Path

import numpy as np

from repro.core import PivotScaleConfig, count_cliques
from repro.counting.sct import SCTEngine
from repro.datasets import load
from repro.errors import DegradedResultWarning, RunInterrupted
from repro.ordering import core_ordering
from repro.runtime import FaultPlan, FaultSpec, RunController


def check_resume_bit_identical(g, kernel: str, at_op: int) -> None:
    order = core_ordering(g)
    base = SCTEngine(g, order, kernel=kernel).count_all()
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "smoke.ck.json"
        ctl = RunController(
            checkpoint_path=path,
            faults=FaultPlan(FaultSpec("interrupt", at_op=at_op)),
        )
        try:
            SCTEngine(g, order, kernel=kernel).count_all(controller=ctl)
        except RunInterrupted:
            pass
        else:
            raise AssertionError("injected interrupt did not fire")
        assert ctl.spent.roots_done == at_op - 1

        resumed = RunController(checkpoint_path=path, resume=True)
        r = SCTEngine(g, order, kernel=kernel).count_all(controller=resumed)

    assert r.all_counts == base.all_counts, "resumed counts differ"
    assert r.counters.as_dict() == base.counters.as_dict(), (
        "resumed work counters differ"
    )
    assert np.array_equal(r.per_root_work, base.per_root_work)
    assert np.array_equal(r.per_root_memory, base.per_root_memory)
    assert resumed.spent.nodes == base.counters.function_calls
    print(
        f"  [{kernel}] interrupted at root {at_op}, resumed "
        f"{g.num_vertices - at_op + 1} roots -> bit-identical "
        f"(k_max={len(base.all_counts) - 1}, "
        f"nodes={base.counters.function_calls:,.0f})"
    )


def check_degrade_flagged(g, k: int, max_nodes: int) -> None:
    cfg = PivotScaleConfig(max_nodes=max_nodes, degrade=True)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DegradedResultWarning)
        r = count_cliques(g, k, cfg)
    assert r.approximate, "degraded result not flagged approximate"
    assert r.degraded_from == "exact"
    assert r.budget_spent is not None and r.budget_spent.nodes > max_nodes
    assert isinstance(r.count, float) and r.count >= 0.0
    exact = count_cliques(g, k).count
    print(
        f"  k={k}, max_nodes={max_nodes:,}: ~{r.count:,.0f} "
        f"(exact {exact:,}) after {r.budget_spent.roots_done} exact roots, "
        f"degraded from {r.degraded_from!r}"
    )


def main() -> None:
    g = load("dblp")
    print(f"dblp analog: n={g.num_vertices}, m={g.num_edges}")

    print("interrupt -> resume round-trip:")
    for kernel in ("bigint", "wordarray"):
        check_resume_bit_identical(g, kernel, at_op=g.num_vertices // 2)

    print("budget exhaustion -> flagged approximate:")
    check_degrade_flagged(g, k=6, max_nodes=2000)

    print("resilience smoke OK")


if __name__ == "__main__":
    main()
