"""Fig. 8: total-time speedup over the core ordering (k = 8)."""

from conftest import report

from repro.bench.experiments import fig8_total_time


def test_fig8_total_time(benchmark):
    result = benchmark.pedantic(fig8_total_time, rounds=1, iterations=1)
    report(result)
