"""Process-memory comparison (paper Sec. VI-D prose).

The paper measures max RSS at 64 threads: dense needs 811.67 MB (DBLP)
to 265.69 GB (Friendster); the compact structures reduce that by
6.63-40.24x (geomean 17.39x).  This bench evaluates the analytic memory
model at the paper-scale graph sizes.
"""

from repro.bench.harness import Table, geometric_mean
from repro.bench.paper_data import TABLE1, TABLE3
from repro.perfmodel.memory import memory_reduction, process_memory_bytes


def test_memory_model(benchmark):
    def run():
        rows = []
        for name, (v, e, _, _) in TABLE1.items():
            maxout = TABLE3[name]["core"][3]
            kw = dict(num_vertices=v * 1e6, num_edges=e * 1e6,
                      threads=64, max_out_degree=maxout)
            dense = process_memory_bytes(structure="dense", **kw)
            remap = process_memory_bytes(structure="remap", **kw)
            rows.append((name, dense, remap, dense / remap))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    t = Table(
        "modeled process memory at 64 threads (paper Sec. VI-D)",
        ["graph", "dense (GB)", "remap (GB)", "reduction"],
    )
    for name, dense, remap, red in rows:
        t.add(name, f"{dense / 1e9:.2f}", f"{remap / 1e9:.3f}", f"{red:.1f}x")
    gm = geometric_mean([r for *_, r in rows])
    t.note(f"geomean reduction {gm:.2f}x (paper: 17.39x, range 6.63-40.24x)")
    print()
    t.show()
    assert all(2.0 < red < 60.0 for *_, red in rows)
    assert 5.0 < gm < 30.0
    dblp = rows[0][1]
    friendster = rows[-1][1]
    assert 0.2e9 < dblp < 3e9, "DBLP dense ~ paper's 811.67 MB scale"
    assert 80e9 < friendster < 800e9, "Friendster dense ~ paper's 265.69 GB"
