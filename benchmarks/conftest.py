"""Shared helpers for the benchmark harness.

Each ``bench_*.py`` regenerates one paper table/figure: it runs the
canonical experiment from :mod:`repro.bench.experiments`, prints the
reproduced rows next to the paper's numbers, asserts the shape checks,
and times a representative kernel with pytest-benchmark.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--bench-seed", type=int, default=7,
        help="base RNG seed for synthetic benchmark graphs (every "
             "bench derives its graphs from this, so a run is "
             "reproducible from its recorded seed alone)",
    )


@pytest.fixture(scope="session")
def bench_seed(request) -> int:
    """The explicit base seed every synthetic bench graph derives from."""
    return request.config.getoption("--bench-seed")


def report(result) -> None:
    """Print an experiment's tables + shape-check verdicts and fail the
    bench if a shape check regressed."""
    print()
    result.show()
    failures = [d for d, ok in result.shape_checks if not ok]
    assert not failures, f"shape checks failed: {failures}"


@pytest.fixture(scope="session")
def suite_graphs():
    """Pre-build all dataset analogs once per session."""
    from repro.datasets import dataset_names, load

    return {name: load(name) for name in dataset_names()}
