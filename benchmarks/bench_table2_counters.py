"""Table II: counting-phase counters, degree normalized to core."""

from conftest import report

from repro.bench.experiments import table2_counters


def test_table2_counters(benchmark):
    result = benchmark.pedantic(table2_counters, rounds=1, iterations=1)
    report(result)
