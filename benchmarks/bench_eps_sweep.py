"""The Sec. VI-C epsilon sweep for the parallel core approximation.

"We consider many values of eps but report only the most representative
ones": this bench sweeps eps densely on one clique-bearing analog and
prints quality (max out-degree), rounds, and modeled times — verifying
the monotone quality/parallelism trade-off the parameter is for, and
that the paper's chosen eps = -0.5 sits at the quality end without the
exact core ordering's sequential cost.
"""

from repro.bench.harness import Table, fmt_seconds
from repro.counting import count_kcliques
from repro.datasets import get_spec, load
from repro.ordering import approx_core_ordering, core_ordering, max_out_degree
from repro.parallel import simulate_counting, simulate_ordering

EPS_VALUES = (-0.9, -0.7, -0.5, -0.25, 0.0, 0.1, 0.5, 2.0, 50_000.0)


def test_eps_sweep(benchmark):
    name = "skitter"
    g = load(name)
    spec = get_spec(name)
    scale = spec.effective_num_vertices / g.num_vertices

    def run():
        core = core_ordering(g)
        core_q = max_out_degree(g, core)
        rows = [("core(exact)", core_q, 0,
                 simulate_ordering(core.cost, threads=1,
                                   work_scale=scale).seconds)]
        for eps in EPS_VALUES:
            o = approx_core_ordering(g, eps)
            rows.append((
                f"eps={eps:g}", max_out_degree(g, o), o.cost.num_rounds,
                simulate_ordering(o.cost, threads=64,
                                  work_scale=scale).seconds,
            ))
        return core_q, rows

    core_q, rows = benchmark.pedantic(run, rounds=1, iterations=1)
    t = Table("eps sweep (Sec. VI-C)", ["ordering", "max out-deg",
                                        "rounds", "order time (s)"])
    for label, q, r, s in rows:
        t.add(label, q, r or "-", fmt_seconds(s))
    print()
    t.show()

    quality = [q for _, q, _, _ in rows[1:]]
    rounds = [r for _, _, r, _ in rows[1:]]
    # Quality degrades (weakly) as eps grows; rounds shrink (weakly).
    assert all(a <= b + 1 for a, b in zip(quality, quality[1:]))
    assert all(a >= b for a, b in zip(rounds, rounds[1:]))
    # eps = -0.5 matches exact core quality (the paper's finding).
    eps_m05_quality = dict((lbl, q) for lbl, q, _, _ in rows)["eps=-0.5"]
    assert eps_m05_quality <= core_q * 1.15 + 1
    # ... at a fraction of the sequential ordering time.
    t_core = rows[0][3]
    t_m05 = dict((lbl, (q, r, s)) for lbl, q, r, s in rows)["eps=-0.5"][2]
    assert t_m05 < t_core
