"""Per-thread execution timelines (the paper's Sec. IV CV measurement).

The paper "measure[s] the time required for each thread during the
entire counting phase while executing with 64 threads" and finds a
coefficient of variation of 0.03 — load balance is a minor factor.
This bench replays that measurement on the simulated executor with the
real per-root work of each analog, across the schedulers the paper
sweeps, and demonstrates the edge-splitting remedy for the one analog
where vertex-parallelism genuinely struggles (LiveJournal's
concentrated pocket).
"""

from repro.bench.harness import Table
from repro.counting import count_kcliques
from repro.datasets import dataset_names, load
from repro.ordering import core_ordering, directionalize
from repro.parallel.partition import edge_split_tasks
from repro.parallel.sched import CyclicScheduler, DynamicScheduler, StaticScheduler
from repro.parallel.trace import simulate_timeline


def test_thread_time_cv(benchmark):
    def run():
        rows = []
        for name in dataset_names():
            if name == "livejournal":
                continue  # handled separately below
            g = load(name)
            r = count_kcliques(g, 8, core_ordering(g))
            cvs = {}
            for sched in (StaticScheduler(), CyclicScheduler(),
                          DynamicScheduler()):
                tl = simulate_timeline(r.per_root_work, 64, sched)
                cvs[sched.name] = tl.cv
            rows.append((name, cvs))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    t = Table(
        "thread-load CV at 64 threads (paper: 0.03 with dynamic)",
        ["graph", "static", "cyclic", "dynamic"],
    )
    for name, cvs in rows:
        t.add(name, f"{cvs['static']:.3f}", f"{cvs['cyclic']:.3f}",
              f"{cvs['dynamic']:.3f}")
    print()
    t.show()
    cv_by_name = dict(rows)
    for name, cvs in rows:
        assert cvs["dynamic"] <= cvs["static"] + 1e-9, name
        # Dynamic scheduling keeps threads near-balanced on every
        # analog with enough parallel work.
        if name != "dblp":
            assert cvs["dynamic"] < 0.25, (name, cvs["dynamic"])
    # DBLP reproduces the paper's "small graph with insufficient
    # parallelism" case (its Fig. 11 plateau): one 38-clique root
    # dominates, so even dynamic scheduling cannot balance it.
    assert cv_by_name["dblp"]["dynamic"] > 0.25


def test_livejournal_edge_split_timeline(benchmark):
    """The pocket-concentrated analog needs the GPU-Pivot-style edge
    decomposition for balance; vertex tasks alone bottleneck."""
    g = load("livejournal")
    o = core_ordering(g)
    dag = directionalize(g, o)

    def run():
        r = count_kcliques(g, 8, o)
        sched = DynamicScheduler()
        vt = simulate_timeline(r.per_root_work, 64, sched)
        split = edge_split_tasks(r.per_root_work, dag.degrees)
        et = simulate_timeline(split.work, 64, sched)
        return vt, et

    vt, et = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nvertex tasks: CV {vt.cv:.2f}, utilization "
          f"{vt.utilization:.0%}; edge-split: CV {et.cv:.2f}, "
          f"utilization {et.utilization:.0%}")
    assert et.makespan < vt.makespan
    assert et.utilization > vt.utilization
