"""Real process-parallel runtime benchmark (wall-clock, gated).

Times the shared-memory process pool against the serial SCT engine on
the same graph and ordering, with a persistent pool so pool startup is
excluded and what remains is what the runtime adds: chunk planning,
task pickling, shared-memory attach, and result folding.

Two gates, written to ``BENCH_parallel.json``:

* **overhead** (always on): at ``--processes 2`` the parallel wall time
  must stay within ``OVERHEAD_GATE`` (25%) of serial.  On a single
  core the pool cannot be faster — two workers time-slice the same
  total work — so this bounds the scheduling tax instead.
* **speedup** (auto-enabled only when ``os.cpu_count() > 1``): with
  real cores available the pool must actually beat serial
  (``SPEEDUP_GATE``, a deliberately lenient 1.05x — CI runners are
  noisy and share cores).

Also verifies the parallel count is bit-identical to serial before
timing anything; a wrong answer fails faster than a slow one.

Usage::

    python benchmarks/bench_parallel.py           # full mode
    python benchmarks/bench_parallel.py --smoke   # CI: smaller graph
"""

import argparse
import os
import sys

from repro import obs
from repro.bench.harness import Table, fmt_seconds, time_samples, write_json_artifact
from repro.bench.platform import add_store_args, store_and_check
from repro.counting.sct import SCTEngine
from repro.graph.generators import erdos_renyi
from repro.ordering import core_ordering, directionalize
from repro.parallel import ParallelRuntime, count_kcliques_processes

#: Parallel wall at procs=2 must stay within this fraction over serial.
OVERHEAD_GATE = 0.25
#: Required speedup at procs=2 when the host has real cores to use.
SPEEDUP_GATE = 1.05


def run_parallel_bench(*, n, p, k, seed, processes, chunks_per_process,
                       repeats, out_path, store_args=None):
    g = erdos_renyi(n, p, seed=seed)
    o = core_ordering(g)
    dag = directionalize(g, o)
    engine = SCTEngine(g, dag)

    # correctness first: a fast wrong answer is still wrong (and the
    # instrumented run doubles as the record's exact-work fingerprint)
    with obs.collecting() as registry:
        serial_result = engine.count(k)
    with ParallelRuntime(processes) as rt:
        par_result = count_kcliques_processes(
            g, k, dag, processes=processes, runtime=rt,
            chunks_per_process=chunks_per_process,
        )
        assert par_result.count == serial_result.count, (
            f"parallel {par_result.count} != serial {serial_result.count}"
        )
        serial_samples = time_samples(
            lambda: engine.count(k), number=1, repeats=repeats)
        par_samples = time_samples(
            lambda: count_kcliques_processes(
                g, k, dag, processes=processes, runtime=rt,
                chunks_per_process=chunks_per_process,
            ),
            number=1, repeats=repeats,
        )
    serial_s = min(serial_samples)
    par_s = min(par_samples)

    overhead = par_s / serial_s - 1.0
    speedup = serial_s / par_s
    cores = os.cpu_count() or 1
    speedup_gated = cores > 1
    overhead_pass = overhead <= OVERHEAD_GATE
    speedup_pass = (not speedup_gated) or speedup >= SPEEDUP_GATE
    gate_pass = overhead_pass and speedup_pass

    t = Table(
        title=f"process pool vs serial SCT (n={n}, p={p}, k={k}, "
              f"{processes} procs, {cores} cores)",
        columns=["variant", "wall", "vs serial"],
    )
    t.add("serial", fmt_seconds(serial_s), "1.00x")
    t.add(f"pool({processes})", fmt_seconds(par_s), f"{speedup:.2f}x")
    t.note(
        f"overhead {overhead * 100:+.1f}% (gate <= {OVERHEAD_GATE * 100:.0f}%)"
        + (f", speedup gate >= {SPEEDUP_GATE:.2f}x" if speedup_gated
           else ", speedup gate off (single core)")
        + f" -> {'PASS' if gate_pass else 'FAIL'}"
    )
    t.show()

    payload = {
        "bench": "parallel",
        "config": {
            "n": n, "p": p, "k": k, "seed": seed,
            "processes": processes,
            "chunks_per_process": chunks_per_process,
            "repeats": repeats, "cpu_count": cores,
        },
        "count": serial_result.count,
        "serial_s": serial_s,
        "parallel_s": par_s,
        "overhead": round(overhead, 4),
        "speedup": round(speedup, 4),
        "gate": {
            "overhead_threshold": OVERHEAD_GATE,
            "overhead_pass": overhead_pass,
            "speedup_threshold": SPEEDUP_GATE,
            "speedup_gated": speedup_gated,
            "speedup_pass": speedup_pass,
            "pass": gate_pass,
        },
    }
    artifact = write_json_artifact(out_path, payload)
    print(f"wrote {artifact}")

    # Run-store migration: raw serial/parallel samples plus the paired
    # per-repeat overhead ratio; the fixed 25%/1.05x thresholds above
    # stay as hard floors, statistics against the stored baseline do
    # the regression detection.
    store_samples = {
        "serial_s": serial_samples,
        "parallel_s": par_samples,
        "overhead_ratio": [
            q / s for q, s in zip(par_samples, serial_samples)
        ],
    }
    _, comparison, store_rc = store_and_check(
        "parallel", payload, store_samples, seed=seed, args=store_args,
        registry=registry,
    )
    payload["store_result"] = {
        "regressed": bool(comparison.regressed) if comparison else False,
        "exit": store_rc,
    }
    return payload


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="process-parallel runtime overhead/speedup gate")
    ap.add_argument("--smoke", action="store_true",
                    help="smaller graph, fewer repeats (CI)")
    ap.add_argument("--out", default="BENCH_parallel.json",
                    help="JSON artifact path (default: %(default)s)")
    ap.add_argument("--processes", type=int, default=2,
                    help="worker processes to gate (default: 2)")
    ap.add_argument("--par-chunks", type=int, default=4)
    ap.add_argument("--k", type=int, default=7,
                    help="clique size (default: %(default)s)")
    ap.add_argument("--seed", type=int, default=13)
    add_store_args(ap)
    args = ap.parse_args(argv)

    # Sized so serial wall is a few hundred ms: long enough that the
    # per-run fixed costs (publish, attach, task pickling) sit well
    # inside the overhead gate, short enough for CI.
    if args.smoke:
        cfg = dict(n=300, p=0.3, k=args.k, repeats=2)
    else:
        cfg = dict(n=400, p=0.25, k=args.k, repeats=3)

    payload = run_parallel_bench(
        seed=args.seed, processes=args.processes,
        chunks_per_process=args.par_chunks, out_path=args.out,
        store_args=args, **cfg,
    )
    if not payload["gate"]["pass"]:
        print("FAIL: parallel runtime missed its gate", file=sys.stderr)
        return 1
    return payload["store_result"]["exit"]


if __name__ == "__main__":
    raise SystemExit(main())
