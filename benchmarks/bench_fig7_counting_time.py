"""Fig. 7: counting-time speedup over the core ordering (k = 8)."""

from conftest import report

from repro.bench.experiments import fig7_counting_time


def test_fig7_counting_time(benchmark):
    result = benchmark.pedantic(fig7_counting_time, rounds=1, iterations=1)
    report(result)
