"""Out-of-core shard runtime benchmark (correctness-gated, stored).

Exercises the crash-safe shard runtime end to end and times its
overhead against the in-memory serial engine on the same graph:

* **exactness gate** (hard): the sharded count — watermark far below
  the working set, so the run genuinely spills — must equal serial,
  and so must a run with *each* injected I/O fault kind (partial
  write, corrupt read, ENOSPC) absorbed by quarantine + retry, and a
  resume after a kill at a shard boundary;
* **overhead gate** (hard): the sharded wall time must stay within
  ``SLOWDOWN_GATE``x serial — spilling costs real I/O (on smoke-sized
  graphs it can exceed the counting itself), but planning + slicing +
  checksumming must never turn into a pathological multiple;
* **statistical gate**: raw samples land in the PR 6 run store via
  ``store_and_check``, which compares against the stored baseline.

Usage::

    python benchmarks/bench_shard.py           # full mode
    python benchmarks/bench_shard.py --smoke   # CI: smaller graph
"""

import argparse
import shutil
import sys
import tempfile

from repro import obs
from repro.bench.harness import Table, fmt_seconds, time_samples, write_json_artifact
from repro.bench.platform import add_store_args, store_and_check
from repro.counting.sct import SCTEngine
from repro.errors import RunInterrupted
from repro.graph.generators import erdos_renyi
from repro.ordering import core_ordering, directionalize
from repro.runtime import FaultPlan, FaultSpec, RunController
from repro.shard import count_sharded, plan_shards

#: Sharded wall must stay within this multiple of the serial engine.
SLOWDOWN_GATE = 4.0
#: Watermark divisor: shard_bytes = total estimate / this, forcing a
#: multi-shard plan without degenerating to one shard per root.
SPILL_FACTOR = 12

FAULT_KINDS = ("io_partial_write", "io_corrupt_read", "io_enospc")


def _sharded(g, dag, k, spill_dir, shard_bytes, **kw):
    return count_sharded(
        g, dag, k=k, shard_bytes=shard_bytes, spill_dir=spill_dir, **kw
    )


def run_shard_bench(*, n, p, k, seed, repeats, out_path, store_args=None):
    g = erdos_renyi(n, p, seed=seed)
    dag = directionalize(g, core_ordering(g))
    engine = SCTEngine(g, dag)

    with obs.collecting() as registry:
        serial_result = engine.count(k)

    from repro.shard.planner import estimate_root_bytes

    shard_bytes = max(512, int(estimate_root_bytes(g, dag).sum()) // SPILL_FACTOR)
    work = tempfile.mkdtemp(prefix="bench_shard_")
    try:
        plan = plan_shards(g, dag, shard_bytes=shard_bytes)

        # -------- correctness gates (a fast wrong answer is still wrong)
        res = _sharded(g, dag, k, f"{work}/clean", shard_bytes)
        exact = res.count == serial_result.count
        fault_exact = {}
        for kind in FAULT_KINDS:
            r = _sharded(
                g, dag, k, f"{work}/{kind}", shard_bytes,
                faults=FaultPlan(FaultSpec(kind, at_op=3)),
            )
            fault_exact[kind] = (
                r.count == serial_result.count and r.degraded_from is None
            )
        # kill at a mid-run shard boundary, then resume
        kill_at = max(2, plan.num_shards // 2)
        try:
            _sharded(
                g, dag, k, f"{work}/resume", shard_bytes,
                controller=RunController(
                    faults=FaultPlan(FaultSpec("interrupt", at_op=kill_at)),
                ),
            )
            resume_exact = False  # the kill must actually happen
        except RunInterrupted:
            r = _sharded(g, dag, k, f"{work}/resume", shard_bytes, resume=True)
            resume_exact = r.count == serial_result.count
        correct = exact and resume_exact and all(fault_exact.values())

        # -------- timing
        serial_samples = time_samples(
            lambda: engine.count(k), number=1, repeats=repeats)
        run = [0]

        def timed_shard():
            run[0] += 1
            d = f"{work}/t{run[0]}"
            try:
                _sharded(g, dag, k, d, shard_bytes)
            finally:
                shutil.rmtree(d, ignore_errors=True)

        shard_samples = time_samples(timed_shard, number=1, repeats=repeats)
    finally:
        shutil.rmtree(work, ignore_errors=True)

    serial_s = min(serial_samples)
    shard_s = min(shard_samples)
    slowdown = shard_s / serial_s
    overhead_pass = slowdown <= SLOWDOWN_GATE
    gate_pass = correct and overhead_pass

    t = Table(
        title=f"sharded vs in-memory SCT (n={n}, p={p}, k={k}, "
              f"{plan.num_shards} shards)",
        columns=["variant", "wall", "vs serial"],
    )
    t.add("serial", fmt_seconds(serial_s), "1.00x")
    t.add(f"sharded({plan.num_shards})", fmt_seconds(shard_s),
          f"{serial_s / shard_s:.2f}x")
    t.note(
        f"exact={exact} resume={resume_exact} "
        + " ".join(f"{kind}={ok}" for kind, ok in fault_exact.items())
        + f"; slowdown {slowdown:.2f}x (gate <= {SLOWDOWN_GATE:.1f}x) "
          f"-> {'PASS' if gate_pass else 'FAIL'}"
    )
    t.show()

    payload = {
        "bench": "shard",
        "config": {
            "n": n, "p": p, "k": k, "seed": seed,
            "shard_bytes": shard_bytes, "num_shards": plan.num_shards,
            "repeats": repeats,
        },
        "count": serial_result.count,
        "serial_s": serial_s,
        "sharded_s": shard_s,
        "slowdown": round(slowdown, 4),
        "gate": {
            "exact": exact,
            "resume_exact": resume_exact,
            "fault_exact": fault_exact,
            "slowdown_threshold": SLOWDOWN_GATE,
            "overhead_pass": overhead_pass,
            "pass": gate_pass,
        },
    }
    artifact = write_json_artifact(out_path, payload)
    print(f"wrote {artifact}")

    store_samples = {
        "serial_s": serial_samples,
        "sharded_s": shard_samples,
        "overhead_ratio": [
            q / s for q, s in zip(shard_samples, serial_samples)
        ],
    }
    _, comparison, store_rc = store_and_check(
        "shard", payload, store_samples, seed=seed, args=store_args,
        registry=registry,
    )
    payload["store_result"] = {
        "regressed": bool(comparison.regressed) if comparison else False,
        "exit": store_rc,
    }
    return payload


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="out-of-core shard runtime exactness/overhead gate")
    ap.add_argument("--smoke", action="store_true",
                    help="smaller graph, fewer repeats (CI)")
    ap.add_argument("--out", default="BENCH_shard.json",
                    help="JSON artifact path (default: %(default)s)")
    ap.add_argument("--k", type=int, default=6,
                    help="clique size (default: %(default)s)")
    ap.add_argument("--seed", type=int, default=17)
    add_store_args(ap)
    args = ap.parse_args(argv)

    if args.smoke:
        cfg = dict(n=200, p=0.25, k=min(args.k, 5), repeats=2)
    else:
        cfg = dict(n=350, p=0.22, k=args.k, repeats=3)

    payload = run_shard_bench(
        seed=args.seed, out_path=args.out, store_args=args, **cfg,
    )
    if not payload["gate"]["pass"]:
        print("FAIL: shard runtime missed its gate", file=sys.stderr)
        return 1
    return payload["store_result"]["exit"]


if __name__ == "__main__":
    raise SystemExit(main())
