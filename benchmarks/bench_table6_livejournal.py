"""Table VI / Fig. 13: the clique-rich LiveJournal workload."""

from conftest import report

from repro.bench.experiments import table6_livejournal


def test_table6_livejournal(benchmark):
    result = benchmark.pedantic(table6_livejournal, rounds=1, iterations=1)
    report(result)
