"""Schedulers: conservation, balance, and the paper's sweep behavior."""

import numpy as np
import pytest

from repro.errors import ParallelModelError
from repro.parallel.sched import (
    Assignment,
    CyclicScheduler,
    DynamicScheduler,
    StaticScheduler,
)

SCHEDULERS = [StaticScheduler, CyclicScheduler, DynamicScheduler]


@pytest.fixture
def skewed_work():
    """Power-law task sizes like real per-root counting work."""
    rng = np.random.default_rng(0)
    return rng.pareto(1.5, size=500) + 0.1


@pytest.mark.parametrize("cls", SCHEDULERS)
def test_work_conservation(cls, skewed_work):
    a = cls().assign(skewed_work, 8)
    assert a.total == pytest.approx(skewed_work.sum())


@pytest.mark.parametrize("cls", SCHEDULERS)
def test_makespan_at_least_mean(cls, skewed_work):
    a = cls().assign(skewed_work, 8)
    assert a.makespan >= skewed_work.sum() / 8 - 1e-9


@pytest.mark.parametrize("cls", SCHEDULERS)
def test_single_thread_gets_everything(cls, skewed_work):
    a = cls().assign(skewed_work, 1)
    assert a.makespan == pytest.approx(skewed_work.sum())
    assert a.cv == 0.0


@pytest.mark.parametrize("cls", SCHEDULERS)
def test_more_threads_than_tasks(cls):
    a = cls().assign(np.array([1.0, 2.0]), 8)
    assert a.total == pytest.approx(3.0)
    assert a.makespan >= 2.0


def test_dynamic_beats_static_on_skew(skewed_work):
    d = DynamicScheduler().assign(skewed_work, 16)
    s = StaticScheduler().assign(skewed_work, 16)
    assert d.makespan <= s.makespan + 1e-9


def test_dynamic_near_perfect_balance(skewed_work):
    a = DynamicScheduler().assign(skewed_work, 16)
    # Greedy list scheduling: makespan <= mean + max task.
    assert a.makespan <= skewed_work.sum() / 16 + skewed_work.max() + 1e-9


def test_dynamic_cv_small_on_mild_skew():
    """The paper measures thread-time CV 0.03 at 64 threads."""
    rng = np.random.default_rng(1)
    work = rng.lognormal(0.0, 1.0, size=5000)
    a = DynamicScheduler().assign(work, 64)
    assert a.cv < 0.05


def test_cyclic_declusters_adjacent_hubs():
    work = np.zeros(100)
    work[:10] = 100.0  # hubs clustered at the front
    static = StaticScheduler().assign(work, 10)
    cyclic = CyclicScheduler().assign(work, 10)
    assert cyclic.makespan < static.makespan


def test_chunked_dynamic():
    work = np.ones(100)
    a = DynamicScheduler(chunk=10).assign(work, 4)
    assert a.total == pytest.approx(100.0)
    assert a.makespan <= 30.0


def test_assignment_properties():
    a = Assignment(loads=np.array([3.0, 1.0]))
    assert a.makespan == 3.0
    assert a.cv == pytest.approx(0.5)
    assert a.efficiency == pytest.approx(4.0 / 6.0)
    empty = Assignment(loads=np.array([]))
    assert empty.makespan == 0.0
    assert empty.cv == 0.0 and empty.efficiency == 1.0


def test_validation():
    with pytest.raises(ParallelModelError):
        StaticScheduler(chunk=0)
    with pytest.raises(ParallelModelError):
        StaticScheduler().assign(np.array([1.0]), 0)
    with pytest.raises(ParallelModelError):
        StaticScheduler().assign(np.array([-1.0]), 2)
    with pytest.raises(ParallelModelError):
        StaticScheduler().assign(np.ones((2, 2)), 2)


def test_empty_work():
    for cls in SCHEDULERS:
        a = cls().assign(np.array([]), 4)
        assert a.makespan == 0.0
