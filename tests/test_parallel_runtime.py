"""Differential + integration suite for the process-parallel runtime.

The SCT total is a sum of independent per-root partial sums, so the
parallel backend must be *bit-identical* to the serial engine — not
statistically close.  This suite checks that over the shared 40-graph
corpus on both kernel backends and both start methods, and exercises
the runtime's integration contracts: controller budgets and
checkpoint/resume at chunk granularity, the worker-crash degradation
rung (deterministic fault injection), per-worker metrics merging, and
the one-task-per-chunk dispatch that keeps scheduling dynamic.
"""

import numpy as np
import pytest

from tests.corpus import GRAPHS, IDS, ordering
from repro import obs
from repro.counting.forest import build_forest
from repro.counting.pervertex import per_vertex_counts
from repro.counting.sct import SCTEngine
from repro.errors import (
    NodeBudgetExceededError,
    ParallelModelError,
    WorkerCrashError,
)
from repro.graph.generators import erdos_renyi
from repro.ordering import core_ordering
from repro.parallel import (
    ParallelRuntime,
    build_forest_processes,
    count_all_sizes_processes,
    count_kcliques_processes,
    per_vertex_counts_processes,
    plan_chunks,
)
from repro.parallel.shm import attach_graph_pair, publish_graph_pair
from repro.runtime import Budget, RunController

SUBSET = [0, 7, 16, 23, 29, 37]  # one or two per generator family


@pytest.fixture(scope="module")
def rt_fork():
    """One persistent fork pool shared by the whole module (pool
    startup would otherwise dominate 40 tiny graphs)."""
    with ParallelRuntime(2, start_method="fork") as rt:
        yield rt


@pytest.fixture(scope="module")
def rt_spawn():
    with ParallelRuntime(2, start_method="spawn") as rt:
        yield rt


# ----------------------------------------------------------------------
# corpus differential: parallel == serial, bit for bit
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name,g", GRAPHS, ids=IDS)
def test_corpus_fork_matches_serial(name, g, rt_fork):
    o = ordering(name, g)
    for kernel in ("bigint", "wordarray"):
        serial = SCTEngine(g, o, kernel=kernel).count(3)
        got = count_kcliques_processes(
            g, 3, o, processes=2, kernel=kernel, runtime=rt_fork
        )
        assert got.count == serial.count
        assert got.counters.function_calls == serial.counters.function_calls
        assert np.array_equal(got.per_root_work, serial.per_root_work)
    serial_all = SCTEngine(g, o).count_all()
    got_all = count_all_sizes_processes(g, o, processes=2, runtime=rt_fork)
    assert got_all.all_counts == serial_all.all_counts


def test_corpus_spawn_matches_serial(rt_spawn):
    # spawn re-imports the worker module from scratch — the start
    # method real deployments use on macOS/Windows.  One persistent
    # pool over the full corpus keeps this affordable.
    for name, g in GRAPHS:
        o = ordering(name, g)
        serial = SCTEngine(g, o).count(3).count
        got = count_kcliques_processes(
            g, 3, o, processes=2, runtime=rt_spawn
        ).count
        assert got == serial, name


@pytest.mark.slow
@pytest.mark.parametrize("procs", (1, 2, 4))
def test_process_count_sweep(procs):
    for idx in SUBSET[:3]:
        name, g = GRAPHS[idx]
        o = ordering(name, g)
        serial = SCTEngine(g, o).count(4).count
        assert count_kcliques_processes(
            g, 4, o, processes=procs
        ).count == serial, name


def test_per_vertex_matches_serial(rt_fork):
    for idx in SUBSET:
        name, g = GRAPHS[idx]
        o = ordering(name, g)
        assert per_vertex_counts_processes(
            g, 3, o, processes=2, runtime=rt_fork
        ) == per_vertex_counts(g, 3, o), name


def test_forest_matches_serial(rt_fork):
    for idx in SUBSET[:3]:
        name, g = GRAPHS[idx]
        o = ordering(name, g)
        f_s = build_forest(g, o)
        f_p = build_forest_processes(g, o, processes=2, runtime=rt_fork)
        assert np.array_equal(f_s.roots, f_p.roots), name
        assert np.array_equal(f_s.held_n, f_p.held_n), name
        assert np.array_equal(f_s.pivot_n, f_p.pivot_n), name
        assert np.array_equal(f_s.held_members, f_p.held_members), name
        assert np.array_equal(f_s.pivot_members, f_p.pivot_members), name
        assert f_s.count_all() == f_p.count_all(), name


# ----------------------------------------------------------------------
# obs integration: merged worker counters == serial counters
# ----------------------------------------------------------------------
def test_worker_metrics_sum_to_serial(rt_fork):
    name, g = GRAPHS[2]
    o = ordering(name, g)
    with obs.collecting() as reg_s:
        SCTEngine(g, o).count(3)
    with obs.collecting() as reg_p:
        count_kcliques_processes(g, 3, o, processes=2, runtime=rt_fork)
    for metric in ("engine_nodes_visited_total", "kernel_calls_total",
                   "engine_roots_total"):
        assert reg_p.total(metric) == reg_s.total(metric), metric


# ----------------------------------------------------------------------
# runtime/controller integration
# ----------------------------------------------------------------------
def test_budget_enforced_at_chunk_granularity():
    name, g = GRAPHS[2]
    o = ordering(name, g)
    ctl = RunController(Budget(max_nodes=1))
    with pytest.raises(NodeBudgetExceededError):
        count_kcliques_processes(g, 3, o, processes=2, controller=ctl)


def test_checkpoint_resume_bit_identical(tmp_path):
    name, g = GRAPHS[2]
    o = ordering(name, g)
    serial = SCTEngine(g, o).count(3)
    ckpt = str(tmp_path / "par.ckpt")
    ctl = RunController(
        Budget(max_nodes=serial.counters.function_calls // 2),
        checkpoint_path=ckpt,
    )
    with pytest.raises(NodeBudgetExceededError):
        count_kcliques_processes(g, 3, o, processes=2, controller=ctl)
    resumed = RunController(checkpoint_path=ckpt, resume=True)
    got = count_kcliques_processes(g, 3, o, processes=2, controller=resumed)
    assert got.count == serial.count
    assert got.counters.function_calls == serial.counters.function_calls
    assert np.array_equal(got.per_root_work, serial.per_root_work)
    assert resumed.spent.roots_done == g.num_vertices


def test_worker_crash_raises_without_degrade(rt_fork):
    name, g = GRAPHS[2]
    o = ordering(name, g)
    with pytest.raises(WorkerCrashError):
        count_kcliques_processes(
            g, 3, o, processes=2, runtime=rt_fork, fault_chunks={0}
        )


def test_worker_crash_degrades_to_exact_retry(rt_fork):
    name, g = GRAPHS[2]
    o = ordering(name, g)
    serial = SCTEngine(g, o).count(3)
    got = count_kcliques_processes(
        g, 3, o, processes=2, runtime=rt_fork, degrade=True,
        fault_chunks={0, 1},
    )
    # The retry rung re-runs the dead chunks in-process on the bigint
    # reference backend: the count stays exact, only the flag records
    # that workers died.
    assert got.count == serial.count
    assert got.counters.function_calls == serial.counters.function_calls
    assert got.degraded_from == "worker"


# ----------------------------------------------------------------------
# dispatch regression: every chunk must be its own pool task
# ----------------------------------------------------------------------
def test_each_chunk_is_its_own_task(monkeypatch):
    # Regression for the old ``pool.map(fn, chunks)`` dispatch: map's
    # default chunksize heuristic re-batches consecutive chunks onto
    # one worker, silently undoing chunks_per_process oversubscription.
    import multiprocessing.pool as mpool

    captured = {}
    orig = mpool.Pool.imap_unordered

    def spy(self, func, iterable, chunksize=1):
        tasks = list(iterable)
        captured["chunksize"] = chunksize
        captured["num_tasks"] = len(tasks)
        return orig(self, func, tasks, chunksize)

    monkeypatch.setattr(mpool.Pool, "imap_unordered", spy)
    g = erdos_renyi(40, 0.2, seed=7)
    o = core_ordering(g)
    serial = SCTEngine(g, o).count(3).count
    got = count_kcliques_processes(
        g, 3, o, processes=2, chunks_per_process=5
    )
    assert got.count == serial
    assert captured["chunksize"] == 1
    assert captured["num_tasks"] == 10  # processes * chunks_per_process


# ----------------------------------------------------------------------
# chunk planner properties
# ----------------------------------------------------------------------
def test_plan_chunks_covers_each_root_exactly_once():
    rng = np.random.default_rng(11)
    for n, procs, cpp in ((1, 2, 4), (5, 2, 4), (37, 3, 4), (200, 4, 7)):
        degrees = rng.integers(0, 50, size=n)
        chunks = plan_chunks(degrees, procs, cpp)
        assert all(c.size > 0 for c in chunks)
        assert len(chunks) == min(n, procs * cpp)
        flat = np.sort(np.concatenate(chunks))
        assert np.array_equal(flat, np.arange(n))


def test_plan_chunks_spreads_heavy_head():
    # Guided self-scheduling: with a sharply skewed degree sequence the
    # heaviest root must not share its chunk with the whole tail.
    degrees = np.array([100] + [1] * 63)
    chunks = plan_chunks(degrees, 2, 4)
    heavy = next(c for c in chunks if 0 in c)
    assert heavy.size < len(degrees) // 2


def test_plan_chunks_empty_and_validation():
    assert plan_chunks(np.zeros(0, dtype=np.int64), 2, 4) == []
    with pytest.raises(ParallelModelError):
        plan_chunks(np.ones(4), 0, 4)
    with pytest.raises(ParallelModelError):
        plan_chunks(np.ones(4), 2, 0)


# ----------------------------------------------------------------------
# shared-memory round trip
# ----------------------------------------------------------------------
def test_shared_graph_pair_round_trip():
    from repro.ordering.directionalize import directionalize

    g = erdos_renyi(30, 0.2, seed=3)
    dag = directionalize(g, core_ordering(g))
    with publish_graph_pair(g, dag) as shared:
        g2, dag2, shm = attach_graph_pair(shared.spec)
        try:
            assert np.array_equal(g2.indptr, g.indptr)
            assert np.array_equal(g2.indices, g.indices)
            assert np.array_equal(dag2.indptr, dag.indptr)
            assert np.array_equal(dag2.indices, dag.indices)
            assert dag2.directed and not g2.directed
        finally:
            del g2, dag2
            shm.close()


# ----------------------------------------------------------------------
# bounded worker-crash retries (the rung before degradation)
# ----------------------------------------------------------------------
def test_transient_crash_recovered_by_retry(rt_fork):
    """A chunk that crashes once and succeeds on resubmission keeps the
    result exact and *unflagged* — no degradation rung, one retry
    metered."""
    name, g = GRAPHS[2]
    o = ordering(name, g)
    serial = SCTEngine(g, o).count(3)
    with obs.collecting() as reg:
        got = count_kcliques_processes(
            g, 3, o, processes=2, runtime=rt_fork,
            fault_chunks={0: 1},  # transient: crash the 1st attempt only
        )
        retries = reg.counter("runtime_worker_retries").value
    assert got.count == serial.count
    assert got.counters.function_calls == serial.counters.function_calls
    assert np.array_equal(got.per_root_work, serial.per_root_work)
    assert got.degraded_from is None
    assert retries == 1


def test_retries_exhausted_then_degrade(rt_fork):
    """fail_count > retries: the pool gives up and the in-process
    degradation rung takes over (exact, flagged)."""
    name, g = GRAPHS[2]
    o = ordering(name, g)
    serial = SCTEngine(g, o).count(3)
    got = count_kcliques_processes(
        g, 3, o, processes=2, runtime=rt_fork, degrade=True,
        fault_chunks={0: 5}, worker_retries=2,
    )
    assert got.count == serial.count
    assert got.degraded_from == "worker"


def test_zero_retries_restores_old_behavior(rt_fork):
    name, g = GRAPHS[2]
    o = ordering(name, g)
    with pytest.raises(WorkerCrashError, match="after 1 attempts"):
        count_kcliques_processes(
            g, 3, o, processes=2, runtime=rt_fork,
            fault_chunks={0: 1}, worker_retries=0,
        )


def test_retry_backoff_deterministic(rt_fork, monkeypatch):
    from repro.parallel import runtime as prt

    def run(seed):
        delays = []
        monkeypatch.setattr(prt, "_sleep", delays.append)
        name, g = GRAPHS[2]
        o = ordering(name, g)
        count_kcliques_processes(
            g, 3, o, processes=2, runtime=rt_fork,
            fault_chunks={0: 2}, worker_retries=2,
            retry_backoff=0.01, retry_seed=seed,
        )
        return delays

    first, again, reseeded = run(9), run(9), run(10)
    assert len(first) == 2
    assert all(d > 0 for d in first)
    assert first == again
    assert reseeded != first


def test_allk_transient_crash_recovered(rt_fork):
    name, g = GRAPHS[2]
    o = ordering(name, g)
    serial = SCTEngine(g, o).count_all()
    got = count_all_sizes_processes(
        g, o, processes=2, runtime=rt_fork, fault_chunks={1: 1},
    )
    assert got.all_counts == serial.all_counts
    assert got.degraded_from is None
