"""End-to-end PivotScale pipeline (repro.core)."""

import math

import pytest

from repro import (
    CliqueCountResult,
    PivotScaleConfig,
    count_cliques,
    count_cliques_all_sizes,
)
from repro.counting.pivoter import run_pivoter
from repro.errors import CountingError, ParallelModelError
from repro.graph.generators import complete_graph, erdos_renyi
from repro.ordering import core_ordering, directionalize


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(70, 0.2, seed=61)


def test_basic_count(graph):
    r = count_cliques(graph, 4)
    from repro.counting import brute_force_count

    assert r.count == count_cliques(graph, 4, PivotScaleConfig(ordering="core")).count
    assert isinstance(r, CliqueCountResult)
    assert r.k == 4


def test_doctest_example():
    assert count_cliques(complete_graph(6), 3).count == 20


def test_heuristic_decision_attached(graph):
    r = count_cliques(graph, 3)
    assert r.decision is not None
    assert r.ordering.name in ("degree", "approx_core(eps=-0.5)")


def test_forced_ordering_no_decision(graph):
    for name in ("core", "degree", "approx_core", "kcore", "centrality"):
        r = count_cliques(graph, 3, PivotScaleConfig(ordering=name))
        assert r.decision is None
        assert r.count == count_cliques(graph, 3).count


def test_phase_breakdown(graph):
    r = count_cliques(graph, 3)
    p = r.phases
    assert p.total_seconds == pytest.approx(
        p.heuristic_seconds + p.ordering_seconds + p.counting_seconds
    )
    assert r.total_model_seconds > 0
    assert r.wall_seconds > 0


def test_all_sizes_pipeline(graph):
    r = count_cliques_all_sizes(graph)
    assert r.count is None
    assert r.all_counts[1] == graph.num_vertices
    assert r.all_counts[2] == graph.num_edges


def test_all_sizes_max_k(graph):
    r = count_cliques_all_sizes(graph, max_k=3)
    assert len(r.all_counts) <= 4


def test_structure_choices_agree(graph):
    counts = {
        s: count_cliques(graph, 4, PivotScaleConfig(structure=s)).count
        for s in ("dense", "sparse", "remap")
    }
    assert len(set(counts.values())) == 1


def test_max_out_degree_reported(graph):
    r = count_cliques(graph, 3, PivotScaleConfig(ordering="core"))
    dag = directionalize(graph, core_ordering(graph))
    assert r.max_out_degree == dag.max_degree


def test_config_validation():
    with pytest.raises(CountingError):
        PivotScaleConfig(structure="btree")
    with pytest.raises(CountingError):
        PivotScaleConfig(ordering="magic")
    with pytest.raises(ParallelModelError):
        PivotScaleConfig(threads=0)


def test_invalid_k(graph):
    with pytest.raises(CountingError):
        count_cliques(graph, 0)


def test_directed_input_rejected(graph):
    dag = directionalize(graph, core_ordering(graph))
    with pytest.raises(CountingError):
        count_cliques(dag, 3)


def test_threads_affect_model_time(graph):
    t1 = count_cliques(graph, 4, PivotScaleConfig(threads=1))
    t64 = count_cliques(graph, 4, PivotScaleConfig(threads=64))
    assert t64.phases.counting_seconds < t1.phases.counting_seconds
    assert t1.count == t64.count


def test_pivoter_baseline_matches(graph):
    pv = run_pivoter(graph, 4)
    assert pv.result.count == count_cliques(graph, 4).count
    assert pv.result.structure == "dense"
    assert pv.ordering.name == "core"
    assert 0 < pv.serial_fraction < 1


def test_effective_num_vertices_changes_model_only(graph):
    small = count_cliques(graph, 3, PivotScaleConfig(structure="dense"))
    big = count_cliques(
        graph,
        3,
        PivotScaleConfig(structure="dense", effective_num_vertices=50e6),
    )
    assert small.count == big.count
    assert big.phases.counting_seconds >= small.phases.counting_seconds
