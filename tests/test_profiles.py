"""Per-vertex clique profiles (all sizes in one pass)."""

import math

import pytest

from repro.counting import count_all_sizes, count_kcliques, per_vertex_counts
from repro.counting.profiles import per_vertex_profiles
from repro.errors import CountingError
from repro.graph.generators import complete_graph, erdos_renyi, star_graph
from repro.ordering import core_ordering, directionalize


def test_matches_single_k_pervertex():
    g = erdos_renyi(25, 0.4, seed=21)
    o = core_ordering(g)
    prof = per_vertex_profiles(g, o)
    for k in (2, 3, 4):
        per_k = per_vertex_counts(g, k, o)
        for v in range(g.num_vertices):
            got = prof[v][k] if k < len(prof[v]) else 0
            assert got == per_k[v]


def test_column_sum_identity():
    g = erdos_renyi(30, 0.35, seed=22)
    o = core_ordering(g)
    prof = per_vertex_profiles(g, o)
    dist = count_all_sizes(g, o).all_counts
    for s in range(1, len(prof[0])):
        col = sum(row[s] for row in prof)
        total = dist[s] if s < len(dist) else 0
        assert col == s * total


def test_complete_graph_profile():
    g = complete_graph(6)
    prof = per_vertex_profiles(g, core_ordering(g))
    for v in range(6):
        for s in range(1, 7):
            assert prof[v][s] == math.comb(5, s - 1)


def test_star_profile():
    g = star_graph(4)
    prof = per_vertex_profiles(g, core_ordering(g))
    assert prof[0][2] == 4  # hub in 4 edges
    assert prof[1][2] == 1
    assert len(prof[0]) == 3  # trimmed past size 2


def test_max_k_truncation():
    g = complete_graph(8)
    prof = per_vertex_profiles(g, core_ordering(g), max_k=3)
    assert len(prof[0]) == 4
    assert prof[0][3] == math.comb(7, 2)


def test_rows_equal_width():
    g = erdos_renyi(20, 0.3, seed=23)
    prof = per_vertex_profiles(g, core_ordering(g))
    widths = {len(r) for r in prof}
    assert len(widths) == 1


def test_structures_agree():
    g = erdos_renyi(18, 0.4, seed=24)
    o = core_ordering(g)
    ref = per_vertex_profiles(g, o)
    assert per_vertex_profiles(g, o, structure="dense") == ref
    assert per_vertex_profiles(g, o, structure="sparse") == ref


def test_validation():
    g = complete_graph(4)
    dag = directionalize(g, core_ordering(g))
    with pytest.raises(CountingError):
        per_vertex_profiles(dag, core_ordering(g))
    with pytest.raises(CountingError):
        per_vertex_profiles(g, g)
    with pytest.raises(CountingError):
        per_vertex_profiles(g, core_ordering(g), max_k=0)
