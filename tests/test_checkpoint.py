"""Checkpoint/resume: a resumed all-k run is bit-identical to an
uninterrupted one, across both kernel backends and multi-interrupt
chains."""

import json

import numpy as np
import pytest

from repro.counting.sct import SCTEngine
from repro.errors import CheckpointError, RunInterrupted
from repro.graph.generators import erdos_renyi
from repro.ordering import core_ordering
from repro.runtime import (
    FaultPlan,
    FaultSpec,
    RunController,
    graph_fingerprint,
    load_checkpoint,
    save_checkpoint,
)
from repro.runtime.budget import BudgetSpent


@pytest.fixture
def g():
    return erdos_renyi(50, 0.25, seed=23)


def _engine(g, kernel):
    return SCTEngine(g, core_ordering(g), kernel=kernel)


def _assert_identical(a, b):
    """Bit-identical CountResults: counts, counters, per-root arrays."""
    assert a.count == b.count
    assert a.all_counts == b.all_counts
    assert a.counters.as_dict() == b.counters.as_dict()
    assert np.array_equal(a.per_root_work, b.per_root_work)
    assert np.array_equal(a.per_root_memory, b.per_root_memory)


# ------------------------------------------------------- file round-trip
def test_checkpoint_roundtrip(tmp_path):
    path = tmp_path / "ck.json"
    desc = {"engine": "sct", "k": 5}
    spent = BudgetSpent(nodes=10, seconds=1.0, peak_memory_bytes=3, roots_done=2)
    save_checkpoint(path, desc, spent, {"next_root": 2, "total": 7})
    payload = load_checkpoint(path, desc)
    assert payload["state"]["total"] == 7
    assert payload["spent"] == spent
    assert not payload["complete"]


def test_checkpoint_descriptor_mismatch(tmp_path):
    path = tmp_path / "ck.json"
    save_checkpoint(path, {"engine": "sct", "k": 5}, BudgetSpent(), {})
    with pytest.raises(CheckpointError, match="k"):
        load_checkpoint(path, {"engine": "sct", "k": 6})


def test_checkpoint_bad_version(tmp_path):
    path = tmp_path / "ck.json"
    save_checkpoint(path, {}, BudgetSpent(), {})
    payload = json.loads(path.read_text())
    payload["version"] = 999
    path.write_text(json.dumps(payload))
    with pytest.raises(CheckpointError, match="version"):
        load_checkpoint(path)


def test_checkpoint_atomic_no_tmp_left(tmp_path):
    path = tmp_path / "ck.json"
    save_checkpoint(path, {}, BudgetSpent(), {"x": 1})
    leftovers = [p for p in tmp_path.iterdir() if p.name != "ck.json"]
    assert leftovers == []


def test_graph_fingerprint_distinguishes(g):
    other = erdos_renyi(50, 0.25, seed=24)
    assert graph_fingerprint(g) != graph_fingerprint(other)
    assert graph_fingerprint(g) == graph_fingerprint(g)


def test_resume_against_wrong_graph_fails(tmp_path, g):
    path = tmp_path / "ck.json"
    ctl = RunController(
        checkpoint_path=path,
        faults=FaultPlan(FaultSpec("interrupt", at_op=10)),
    )
    with pytest.raises(RunInterrupted):
        _engine(g, "bigint").count_all(controller=ctl)
    other = erdos_renyi(50, 0.25, seed=24)
    with pytest.raises(CheckpointError):
        _engine(other, "bigint").count_all(
            controller=RunController(checkpoint_path=path, resume=True)
        )


# ------------------------------------------------ interrupt -> resume
@pytest.mark.parametrize("kernel", ["bigint", "wordarray"])
@pytest.mark.parametrize("at_op", [1, 7, 25, 49])
def test_allk_resume_bit_identical(tmp_path, g, kernel, at_op):
    """Interrupt an all-k run at several points; the resumed run's
    counts, counters AND per-root work arrays match an uninterrupted
    run exactly."""
    base = _engine(g, kernel).count_all()
    path = tmp_path / "ck.json"
    ctl = RunController(
        checkpoint_path=path,
        faults=FaultPlan(FaultSpec("interrupt", at_op=at_op)),
    )
    with pytest.raises(RunInterrupted):
        _engine(g, kernel).count_all(controller=ctl)
    assert ctl.spent.roots_done == at_op - 1

    resumed_ctl = RunController(checkpoint_path=path, resume=True)
    r = _engine(g, kernel).count_all(controller=resumed_ctl)
    _assert_identical(r, base)
    # The final checkpoint is marked complete.
    assert load_checkpoint(path)["complete"]
    # Work accounting spans both attempts without double counting.
    total_roots = ctl.spent.roots_done + (
        resumed_ctl.spent.roots_done - ctl.spent.roots_done
    )
    assert resumed_ctl.spent.roots_done == g.num_vertices
    assert total_roots == g.num_vertices
    assert resumed_ctl.spent.nodes == base.counters.function_calls


@pytest.mark.parametrize("kernel", ["bigint", "wordarray"])
def test_fixed_k_resume_bit_identical(tmp_path, g, kernel):
    base = _engine(g, kernel).count(5)
    path = tmp_path / "ck.json"
    ctl = RunController(
        checkpoint_path=path,
        faults=FaultPlan(FaultSpec("interrupt", at_op=20)),
    )
    with pytest.raises(RunInterrupted):
        _engine(g, kernel).count(5, controller=ctl)
    r = _engine(g, kernel).count(
        5, controller=RunController(checkpoint_path=path, resume=True)
    )
    _assert_identical(r, base)


def test_multi_interrupt_chain(tmp_path, g):
    """Kill the run three times at different points; each resume picks
    up the chain and the final result is still bit-identical."""
    base = _engine(g, "bigint").count_all()
    path = tmp_path / "ck.json"
    ops = [5, 9, 3]  # ops are counted per attempt, from each resume point
    resume = False
    r = None
    for at_op in ops + [None]:
        faults = (
            FaultPlan(FaultSpec("interrupt", at_op=at_op))
            if at_op is not None
            else None
        )
        ctl = RunController(
            checkpoint_path=path, resume=resume, faults=faults
        )
        if at_op is not None:
            with pytest.raises(RunInterrupted):
                _engine(g, "bigint").count_all(controller=ctl)
        else:
            r = _engine(g, "bigint").count_all(controller=ctl)
        resume = True
    _assert_identical(r, base)


def test_resume_across_kernel_backends(tmp_path, g):
    """Counters are backend-invariant, so a run interrupted on
    wordarray may legitimately resume on bigint bit-identically —
    the checkpoint descriptor pins the kernel, so this goes through a
    descriptor override, not silently."""
    base = _engine(g, "bigint").count_all()
    path = tmp_path / "ck.json"
    ctl = RunController(
        checkpoint_path=path,
        faults=FaultPlan(FaultSpec("interrupt", at_op=20)),
    )
    with pytest.raises(RunInterrupted):
        _engine(g, "wordarray").count_all(controller=ctl)
    # Same backend resumes fine; a different backend is refused.
    with pytest.raises(CheckpointError, match="kernel"):
        _engine(g, "bigint").count_all(
            controller=RunController(checkpoint_path=path, resume=True)
        )
    r = _engine(g, "wordarray").count_all(
        controller=RunController(checkpoint_path=path, resume=True)
    )
    _assert_identical(r, base)


def test_periodic_autosave(tmp_path, g):
    """Without faults, the checkpoint is refreshed every
    checkpoint_every roots and finalized on success."""
    path = tmp_path / "ck.json"
    ctl = RunController(checkpoint_path=path, checkpoint_every=8)
    _engine(g, "bigint").count_all(controller=ctl)
    payload = load_checkpoint(path)
    assert payload["complete"]
    assert payload["state"]["next_root"] == g.num_vertices


def test_resume_from_complete_checkpoint_is_noop(tmp_path, g):
    """Resuming a finished run does no further root work."""
    path = tmp_path / "ck.json"
    _engine(g, "bigint").count_all(
        controller=RunController(checkpoint_path=path)
    )
    base = _engine(g, "bigint").count_all()
    ctl = RunController(checkpoint_path=path, resume=True)
    r = _engine(g, "bigint").count_all(controller=ctl)
    _assert_identical(r, base)
    assert ctl.spent.nodes == base.counters.function_calls


# ------------------------------------------------- content checksums
def test_checkpoint_carries_verified_checksum(tmp_path, g):
    path = tmp_path / "ck.json"
    _engine(g, "bigint").count_all(
        controller=RunController(checkpoint_path=path)
    )
    payload = json.loads(path.read_text())
    assert "checksum" in payload
    load_checkpoint(path)  # verifies cleanly


def test_tampered_checkpoint_refused(tmp_path, g):
    """Any post-write bit flip — here a partial-sum tamper — fails the
    checksum before the descriptor is even looked at."""
    path = tmp_path / "ck.json"
    _engine(g, "bigint").count_all(
        controller=RunController(checkpoint_path=path)
    )
    payload = json.loads(path.read_text())
    payload["state"]["total"] = 12345
    path.write_text(json.dumps(payload))
    with pytest.raises(CheckpointError, match="checksum mismatch"):
        load_checkpoint(path)


def test_truncated_checkpoint_refused(tmp_path, g):
    path = tmp_path / "ck.json"
    _engine(g, "bigint").count_all(
        controller=RunController(checkpoint_path=path)
    )
    raw = path.read_bytes()
    path.write_bytes(raw[: len(raw) // 2])
    with pytest.raises(CheckpointError, match="corrupt checkpoint"):
        load_checkpoint(path)


def test_pre_checksum_checkpoint_still_loads(tmp_path, g):
    """Checkpoints written before the checksum existed lack the key —
    they must keep loading (forward compatibility)."""
    path = tmp_path / "ck.json"
    _engine(g, "bigint").count_all(
        controller=RunController(checkpoint_path=path)
    )
    payload = json.loads(path.read_text())
    del payload["checksum"]
    path.write_text(json.dumps(payload))
    loaded = load_checkpoint(path)
    assert loaded["complete"]


def test_injected_enospc_on_save_is_checkpoint_error(tmp_path, g):
    from repro.runtime.budget import BudgetSpent as _Spent

    faults = FaultPlan(FaultSpec("io_enospc", at_op=1))
    with pytest.raises(CheckpointError, match="cannot write"):
        save_checkpoint(
            tmp_path / "ck.json", {"engine": "sct"}, BudgetSpent(),
            {"next_root": 0}, faults=faults,
        )


def test_injected_torn_checkpoint_write_detected_on_load(tmp_path, g):
    faults = FaultPlan(FaultSpec("io_partial_write", at_op=1))
    path = tmp_path / "ck.json"
    save_checkpoint(
        path, {"engine": "sct"}, BudgetSpent(), {"next_root": 3},
        faults=faults,
    )
    with pytest.raises(CheckpointError, match="corrupt checkpoint"):
        load_checkpoint(path)
