"""k-clique core decomposition (clique peeling)."""

import math

import numpy as np
import pytest

from repro.apps.cliquecore import kclique_core_numbers, kclique_core_subgraph
from repro.errors import CountingError
from repro.graph.build import from_edge_list
from repro.graph.generators import complete_graph, erdos_renyi, path_graph, star_graph
from repro.ordering import core_numbers


def _brute_core(g, k):
    """Reference peel with full recount each step."""
    from itertools import combinations

    adj = [set(map(int, g.neighbors(v))) for v in range(g.num_vertices)]
    alive = set(range(g.num_vertices))

    def cnt(v):
        nb = sorted(adj[v] & alive)
        return sum(
            1 for sub in combinations(nb, k - 1)
            if all(b in adj[a] for a, b in combinations(sub, 2))
        )

    core = [0] * g.num_vertices
    run = 0
    while alive:
        v = min(alive, key=cnt)
        run = max(run, cnt(v))
        core[v] = run
        alive.discard(v)
    return core


def test_k2_reduces_to_classic_cores():
    for seed in range(3):
        g = erdos_renyi(35, 0.15, seed=seed)
        assert kclique_core_numbers(g, 2) == core_numbers(g).tolist()


@pytest.mark.parametrize("seed", range(3))
def test_triangle_cores_match_reference(seed):
    g = erdos_renyi(16, 0.45, seed=seed)
    assert kclique_core_numbers(g, 3) == _brute_core(g, 3)


def test_k4_cores_match_reference():
    g = erdos_renyi(14, 0.55, seed=9)
    assert kclique_core_numbers(g, 4) == _brute_core(g, 4)


def test_complete_graph():
    g = complete_graph(7)
    core = kclique_core_numbers(g, 3)
    assert core == [math.comb(6, 2)] * 7


def test_no_cliques_all_zero():
    assert kclique_core_numbers(path_graph(6), 3) == [0] * 6
    assert kclique_core_numbers(star_graph(5), 3) == [0] * 6


def test_core_subgraph_finds_dense_part():
    # K6 plus a pendant path: the 6-clique is the max triangle core.
    edges = [(a, b) for a in range(6) for b in range(a + 1, 6)]
    edges += [(5, 6), (6, 7)]
    g = from_edge_list(edges)
    members, top = kclique_core_subgraph(g, 3)
    assert set(members.tolist()) == set(range(6))
    assert top == math.comb(5, 2)


def test_validation():
    with pytest.raises(CountingError):
        kclique_core_numbers(complete_graph(4), 1)
