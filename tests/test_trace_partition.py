"""Execution timelines and task partitioning."""

import numpy as np
import pytest

from repro.errors import ParallelModelError
from repro.parallel.partition import edge_split_tasks, vertex_tasks
from repro.parallel.sched import CyclicScheduler, DynamicScheduler, StaticScheduler
from repro.parallel.trace import simulate_timeline


@pytest.fixture
def work():
    rng = np.random.default_rng(3)
    return rng.lognormal(0, 1, size=300)


@pytest.mark.parametrize(
    "sched", [StaticScheduler(), CyclicScheduler(), DynamicScheduler()],
    ids=["static", "cyclic", "dynamic"],
)
def test_timeline_conservation(sched, work):
    tl = simulate_timeline(work, 8, sched)
    assert tl.busy_times().sum() == pytest.approx(work.sum())
    assert tl.threads == 8


def test_timeline_matches_scheduler_makespan(work):
    for sched in (StaticScheduler(), CyclicScheduler(), DynamicScheduler()):
        tl = simulate_timeline(work, 16, sched)
        a = sched.assign(work, 16)
        assert tl.makespan == pytest.approx(a.makespan)
        assert tl.cv == pytest.approx(a.cv)


def test_timeline_spans_do_not_overlap_per_thread(work):
    tl = simulate_timeline(work, 4, DynamicScheduler(chunk=5))
    per_thread: dict[int, list] = {}
    for s in tl.spans:
        per_thread.setdefault(s.thread, []).append(s)
    for spans in per_thread.values():
        spans.sort(key=lambda s: s.start)
        for a, b in zip(spans, spans[1:]):
            assert a.end <= b.start + 1e-9


def test_timeline_utilization_bounds(work):
    tl = simulate_timeline(work, 8, DynamicScheduler())
    assert 0.0 < tl.utilization <= 1.0


def test_timeline_cv_small_on_balanced_load():
    work = np.ones(6400)
    tl = simulate_timeline(work, 64, DynamicScheduler())
    assert tl.cv < 0.01  # the paper's CV 0.03 regime


def test_timeline_svg_well_formed(work):
    import xml.dom.minidom as minidom

    tl = simulate_timeline(work, 4, DynamicScheduler())
    minidom.parseString(tl.to_svg())


def test_timeline_validation(work):
    with pytest.raises(ParallelModelError):
        simulate_timeline(work, 0, DynamicScheduler())
    with pytest.raises(ParallelModelError):
        simulate_timeline(np.ones((2, 2)), 2, DynamicScheduler())


def test_empty_timeline():
    tl = simulate_timeline(np.array([]), 4, DynamicScheduler())
    assert tl.makespan == 0.0
    assert tl.cv == 0.0
    assert tl.utilization == 1.0


# ------------------------------------------------------------- partition
def test_vertex_tasks_identity(work):
    p = vertex_tasks(work)
    assert p.num_tasks == work.size
    assert np.array_equal(p.root_of, np.arange(work.size))


def test_edge_split_reduces_max_fraction():
    work = np.array([1000.0] + [1.0] * 99)
    degs = np.array([50] + [3] * 99)
    before = vertex_tasks(work)
    after = edge_split_tasks(work, degs, threshold_fraction=0.05)
    assert after.max_task_fraction < before.max_task_fraction
    assert after.work.sum() == pytest.approx(work.sum())
    # The heavy root became 50 tasks.
    assert (after.root_of == 0).sum() == 50


def test_edge_split_leaves_light_roots_alone():
    work = np.ones(10)
    degs = np.full(10, 5)
    p = edge_split_tasks(work, degs, threshold_fraction=0.5)
    assert p.num_tasks == 10


@pytest.mark.slow
def test_edge_split_improves_livejournal_makespan():
    """The GPU-Pivot-style split tames the analog's pocket root."""
    from repro.counting import count_kcliques
    from repro.datasets import load
    from repro.ordering import core_ordering, directionalize

    g = load("livejournal")
    o = core_ordering(g)
    r = count_kcliques(g, 8, o)
    dag = directionalize(g, o)
    sched = DynamicScheduler()
    before = sched.assign(vertex_tasks(r.per_root_work).work, 64).makespan
    split = edge_split_tasks(r.per_root_work, dag.degrees)
    after = sched.assign(split.work, 64).makespan
    assert after < before


def test_edge_split_validation():
    with pytest.raises(ParallelModelError):
        edge_split_tasks(np.ones(3), np.ones(2))
    with pytest.raises(ParallelModelError):
        edge_split_tasks(np.ones(3), np.ones(3), threshold_fraction=0.0)
    p = edge_split_tasks(np.zeros(3), np.ones(3))
    assert p.num_tasks == 3
