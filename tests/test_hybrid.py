"""The hybrid enumeration/pivoting counter (paper Sec. VI-H)."""

import pytest

from repro.core import PivotScaleConfig, count_cliques
from repro.core.hybrid import DEFAULT_SWITCH_K, count_cliques_hybrid
from repro.errors import CountingError
from repro.graph.generators import erdos_renyi


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(60, 0.3, seed=71)


def test_switch_point_routes_algorithms(graph):
    small = count_cliques_hybrid(graph, 4)
    assert small.algorithm == "enumeration"
    big = count_cliques_hybrid(graph, DEFAULT_SWITCH_K)
    assert big.algorithm == "pivoting"


def test_counts_match_exact(graph):
    for k in (3, 5, 8, 9):
        h = count_cliques_hybrid(graph, k)
        assert h.count == count_cliques(graph, k).count


def test_custom_switch(graph):
    r = count_cliques_hybrid(graph, 5, switch_k=3)
    assert r.algorithm == "pivoting"
    r = count_cliques_hybrid(graph, 5, switch_k=6)
    assert r.algorithm == "enumeration"


def test_model_seconds_positive(graph):
    for k in (4, 8):
        assert count_cliques_hybrid(graph, k).model_seconds > 0


def test_config_forwarded(graph):
    cfg = PivotScaleConfig(structure="sparse", threads=8)
    r = count_cliques_hybrid(graph, 4, config=cfg)
    assert r.counting.structure == "sparse"


def test_validation(graph):
    with pytest.raises(CountingError):
        count_cliques_hybrid(graph, 0)
    with pytest.raises(CountingError):
        count_cliques_hybrid(graph, 3, switch_k=0)


def test_hybrid_picks_cheaper_regime(graph):
    """At small k the enumeration path should be modeled no slower
    than pivoting would be (the reason the hybrid exists)."""
    enum = count_cliques_hybrid(graph, 3)
    piv = count_cliques_hybrid(graph, 3, switch_k=1)
    assert enum.model_seconds <= piv.model_seconds * 1.5
