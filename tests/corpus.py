"""The shared 40-graph differential corpus.

Forty small seeded graphs spanning the three generator families
(R-MAT, Chung-Lu, planted-clique overlays) that every differential
suite runs over: the cross-engine suite in ``test_differential.py``
and the materialized-forest suite in ``test_forest.py``.  Ground
truth (brute force) and core orderings are cached lazily per graph so
the suites share the expensive parts.
"""

from __future__ import annotations

from repro.counting import brute_force_count
from repro.graph.generators import (
    chung_lu,
    erdos_renyi,
    overlay,
    planted_cliques,
    power_law_degrees,
    rmat,
)
from repro.ordering import core_ordering


def make_graphs():
    """~40 small seeded graphs spanning the three generator families."""
    graphs = []
    # R-MAT: skewed, community-structured (Graph500 parameters).
    for i in range(14):
        scale = 4 + (i % 2)  # 16 or 32 vertices
        g = rmat(scale, edge_factor=2.0 + (i % 3), seed=1000 + i)
        graphs.append((f"rmat-s{scale}-{i}", g))
    # Chung-Lu: power-law degree tails.
    for i in range(13):
        n = 20 + i
        w = power_law_degrees(n, exponent=2.2 + 0.05 * i, min_degree=2.0,
                              seed=2000 + i)
        graphs.append((f"chunglu-n{n}-{i}", chung_lu(w, seed=3000 + i)))
    # Planted cliques over a sparse background: dense pockets.
    for i in range(13):
        n = 18 + i
        sizes = [5 + (i % 3), 4]
        plant = planted_cliques(n, sizes, seed=4000 + i,
                                overlap=0.5 if i % 2 else 0.0)
        bg = erdos_renyi(n, 0.08, seed=5000 + i)
        graphs.append((f"planted-n{n}-{i}", overlay(n, plant, bg)))
    return graphs


GRAPHS = make_graphs()
IDS = [name for name, _ in GRAPHS]

# Lazy per-graph caches (ground truth is expensive; compute once and
# share across every suite that imports this module).
_TRUTH: dict[str, dict[int, int]] = {}
_ORDERINGS: dict[str, object] = {}


def ordering(name, g):
    if name not in _ORDERINGS:
        _ORDERINGS[name] = core_ordering(g)
    return _ORDERINGS[name]


def truth(name, g, k):
    per = _TRUTH.setdefault(name, {})
    if k not in per:
        per[k] = brute_force_count(g, k)
    return per[k]
