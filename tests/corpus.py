"""The shared 40-graph differential corpus.

Forty small seeded graphs spanning the three generator families
(R-MAT, Chung-Lu, planted-clique overlays) that every differential
suite runs over: the cross-engine suite in ``test_differential.py``,
the materialized-forest suite in ``test_forest.py``, and the
incremental edit-stream suite in ``test_dynamic.py``.  Ground truth
(brute force) and core orderings are cached lazily per graph so the
suites share the expensive parts.

:func:`edit_stream` adds **versioned edit-sequence fixtures**: per
graph, a deterministic stream of insert/delete batches (mixed batch
sizes, duplicate records, guaranteed no-ops, one empty batch) derived
from committed seeds — so later PRs (service layer, distributed
shards) replay byte-for-byte the same streams this PR's differential
harness was held to.  Bump :data:`EDIT_STREAM_VERSION` (and add a new
seed entry) to change the streams; never mutate an existing version.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.counting import brute_force_count
from repro.graph.generators import (
    chung_lu,
    erdos_renyi,
    overlay,
    planted_cliques,
    power_law_degrees,
    rmat,
)
from repro.ordering import core_ordering


def make_graphs():
    """~40 small seeded graphs spanning the three generator families."""
    graphs = []
    # R-MAT: skewed, community-structured (Graph500 parameters).
    for i in range(14):
        scale = 4 + (i % 2)  # 16 or 32 vertices
        g = rmat(scale, edge_factor=2.0 + (i % 3), seed=1000 + i)
        graphs.append((f"rmat-s{scale}-{i}", g))
    # Chung-Lu: power-law degree tails.
    for i in range(13):
        n = 20 + i
        w = power_law_degrees(n, exponent=2.2 + 0.05 * i, min_degree=2.0,
                              seed=2000 + i)
        graphs.append((f"chunglu-n{n}-{i}", chung_lu(w, seed=3000 + i)))
    # Planted cliques over a sparse background: dense pockets.
    for i in range(13):
        n = 18 + i
        sizes = [5 + (i % 3), 4]
        plant = planted_cliques(n, sizes, seed=4000 + i,
                                overlap=0.5 if i % 2 else 0.0)
        bg = erdos_renyi(n, 0.08, seed=5000 + i)
        graphs.append((f"planted-n{n}-{i}", overlay(n, plant, bg)))
    return graphs


GRAPHS = make_graphs()
IDS = [name for name, _ in GRAPHS]

# Lazy per-graph caches (ground truth is expensive; compute once and
# share across every suite that imports this module).
_TRUTH: dict[str, dict[int, int]] = {}
_ORDERINGS: dict[str, object] = {}


def ordering(name, g):
    if name not in _ORDERINGS:
        _ORDERINGS[name] = core_ordering(g)
    return _ORDERINGS[name]


def truth(name, g, k):
    per = _TRUTH.setdefault(name, {})
    if k not in per:
        per[k] = brute_force_count(g, k)
    return per[k]


# ----------------------------------------------------------------------
# versioned edit-sequence fixtures (see module docstring)
# ----------------------------------------------------------------------
EDIT_STREAM_VERSION = 1

#: Committed per-version base seeds.  The per-graph stream seed is
#: ``base ^ crc32(name)`` — stable across Python processes (never use
#: the builtin ``hash``, it is salted per interpreter run).
_EDIT_STREAM_SEEDS = {1: 0x5C7ED17}


def edit_stream(name, g, *, version=EDIT_STREAM_VERSION, batches=6,
                max_batch=8):
    """The committed edit stream for corpus graph ``(name, g)``.

    Returns a list of ``batches`` batches, each an in-order list of
    ``("+"|"-", u, v)`` records.  Deterministic in ``(name, version,
    batches, max_batch)`` alone.  By construction the stream exercises
    the full edit model: inserts of absent and *present* edges
    (no-ops), deletes of present and *absent* edges (no-ops),
    duplicate records inside one batch, occasional brand-new vertex
    ids (growth), and one guaranteed empty batch.
    """
    base = _EDIT_STREAM_SEEDS[version]
    rng = np.random.default_rng((base ^ zlib.crc32(name.encode())) & 0xFFFFFFFF)
    n = g.num_vertices
    # Track presence so deletes can target real edges as the stream
    # compounds across batches.
    present = {(int(u), int(v)) for u, v in g.edge_array()}
    hi = n  # growth frontier
    empty_at = int(rng.integers(0, batches))
    stream = []
    for b in range(batches):
        if b == empty_at:
            stream.append([])
            continue
        batch = []
        for _ in range(int(rng.integers(1, max_batch + 1))):
            roll = rng.random()
            if roll < 0.45 or not present:
                # insert; ~1 in 6 of these targets a fresh vertex id
                if rng.random() < 0.17:
                    u, v = hi, int(rng.integers(0, hi))
                    hi += 1
                else:
                    u, v = (int(x) for x in rng.integers(0, hi, 2))
                    if u == v:
                        v = (u + 1) % hi
                op = "+"
            elif roll < 0.80:
                # delete a currently-present edge
                u, v = sorted(present)[int(rng.integers(0, len(present)))]
                op = "-"
            else:
                # deliberate no-op: delete an absent pair
                u, v = (int(x) for x in rng.integers(0, hi, 2))
                if u == v:
                    v = (u + 1) % hi
                op = "-"
                if (min(u, v), max(u, v)) in present:
                    op = "+"  # present: a no-op insert instead
            batch.append((op, u, v))
            if rng.random() < 0.15:  # duplicate record in-batch
                batch.append((op, u, v))
            key = (min(u, v), max(u, v))
            if op == "+":
                present.add(key)
            else:
                present.discard(key)
        stream.append(batch)
    return stream


def edit_stream_digest(name, g, **kwargs):
    """Stable digest of a graph's stream — pins the fixture bytes so an
    accidental generator change fails loudly (``test_dynamic.py``)."""
    payload = repr(edit_stream(name, g, **kwargs)).encode()
    return format(zlib.crc32(payload), "08x")
