"""Directionalization: acyclicity, edge preservation, quality metric."""

import numpy as np
import pytest

from repro.errors import OrderingError
from repro.graph.generators import complete_graph, erdos_renyi, empty_graph
from repro.ordering import (
    core_ordering,
    degree_ordering,
    directionalize,
    max_out_degree,
)
from repro.ordering.base import Ordering


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(80, 0.15, seed=21)


def test_edge_count_preserved(graph):
    dag = directionalize(graph, core_ordering(graph))
    assert dag.num_edges == graph.num_edges
    assert dag.directed


def test_acyclic(graph):
    import networkx as nx

    dag = directionalize(graph, degree_ordering(graph))
    nxg = nx.DiGraph()
    nxg.add_nodes_from(range(dag.num_vertices))
    nxg.add_edges_from(dag.edges())
    assert nx.is_directed_acyclic_graph(nxg)


def test_edges_point_up_rank(graph):
    o = core_ordering(graph)
    dag = directionalize(graph, o)
    for u, v in dag.edges():
        assert o.rank[u] < o.rank[v]


def test_accepts_raw_rank_array(graph):
    o = degree_ordering(graph)
    assert directionalize(graph, o) == directionalize(graph, o.rank)


def test_max_out_degree_matches_dag(graph):
    for o in (core_ordering(graph), degree_ordering(graph)):
        dag = directionalize(graph, o)
        assert max_out_degree(graph, o) == dag.max_degree


def test_rejects_directed_input(graph):
    dag = directionalize(graph, core_ordering(graph))
    with pytest.raises(OrderingError):
        directionalize(dag, core_ordering(graph))
    with pytest.raises(OrderingError):
        max_out_degree(dag, core_ordering(graph))


def test_rejects_wrong_size_rank(graph):
    with pytest.raises(OrderingError):
        directionalize(graph, np.arange(graph.num_vertices - 1))


def test_identity_rank_on_complete_graph():
    g = complete_graph(5)
    dag = directionalize(g, np.arange(5))
    # vertex 0 points to everyone, vertex 4 to no one.
    assert dag.degree(0) == 4
    assert dag.degree(4) == 0


def test_empty_graph():
    g = empty_graph(3)
    dag = directionalize(g, np.arange(3))
    assert dag.num_edges == 0
    assert max_out_degree(g, np.arange(3)) == 0


def test_rows_remain_sorted(graph):
    dag = directionalize(graph, core_ordering(graph))
    for u in range(dag.num_vertices):
        row = dag.neighbors(u)
        assert (np.diff(row) > 0).all() if row.size > 1 else True
