"""SVG plotting primitives and figure renderers."""

import xml.dom.minidom as minidom

import pytest

from repro.bench.svgplot import GroupedBarChart, LineChart, Series


def _valid(svg: str) -> None:
    dom = minidom.parseString(svg)
    assert dom.documentElement.tagName == "svg"


def test_line_chart_basic():
    c = LineChart("t", [1, 2, 3], x_label="x", y_label="y")
    c.add(Series("a", [1.0, 2.0, 3.0]))
    svg = c.render()
    _valid(svg)
    assert "polyline" in svg
    assert ">a<" in svg  # legend entry


def test_line_chart_missing_values():
    c = LineChart("t", [1, 2, 3])
    c.add(Series("a", [1.0, None, 3.0]))
    _valid(c.render())


def test_line_chart_log_axes():
    c = LineChart("t", [1, 2, 4, 8], x_log=True, y_log=True)
    c.add(Series("a", [0.001, 0.1, 10.0, 1000.0]))
    svg = c.render()
    _valid(svg)
    assert "1e" in svg or "1000" in svg  # log ticks labeled


def test_line_chart_categorical_x():
    c = LineChart("t", ["alpha", "beta"])
    c.add(Series("a", [1.0, 2.0]))
    svg = c.render()
    _valid(svg)
    assert "alpha" in svg


def test_line_chart_single_point():
    c = LineChart("t", [5])
    c.add(Series("a", [2.0]))
    _valid(c.render())


def test_line_chart_validation():
    c = LineChart("t", [1, 2])
    with pytest.raises(ValueError):
        c.add(Series("a", [1.0]))
    with pytest.raises(ValueError):
        c.render()  # no series
    c.add(Series("a", [None, None]))
    with pytest.raises(ValueError):
        c.render()  # all values missing


def test_bar_chart_basic():
    c = GroupedBarChart("bars", ["x", "y"], y_label="v", baseline=1.0)
    c.add(Series("s1", [0.5, 2.0]))
    c.add(Series("s2", [1.5, None]))
    svg = c.render()
    _valid(svg)
    assert svg.count("<rect") >= 4  # background + 3 bars
    assert "stroke-dasharray" in svg  # the baseline


def test_bar_chart_validation():
    c = GroupedBarChart("bars", ["x"])
    with pytest.raises(ValueError):
        c.add(Series("s", [1.0, 2.0]))
    with pytest.raises(ValueError):
        c.render()


def test_write_files(tmp_path):
    c = LineChart("t", [1, 2])
    c.add(Series("a", [1.0, 2.0]))
    path = tmp_path / "c.svg"
    c.write(path)
    _valid(path.read_text())


def test_escaping():
    c = LineChart("a < b & c", ["<x>"])
    c.add(Series("s<1>", [1.0]))
    svg = c.render()
    _valid(svg)
    assert "a &lt; b &amp; c" in svg


def test_figure_renderers_smoke(tmp_path):
    """Each figure renderer produces well-formed SVG from small runs."""
    from repro.bench import experiments as E
    from repro.bench import figures as F

    out = str(tmp_path)
    paths = []
    paths += F.render_fig1(E.fig1_distribution(names=("dblp",)), out)
    paths += F.render_fig3(E.fig3_degree_distributions(), out)
    paths += F.render_fig5(E.fig5_ordering_quality(names=("dblp",)), out)
    paths += F.render_fig6(E.fig6_ordering_time(names=("dblp",)), out)
    paths += F.render_fig10(
        E.fig10_heuristic_vs_k(names=("dblp",), ks=(4, 6)), out
    )
    paths += F.render_fig11(
        E.fig11_scaling(names=("baidu",), ks=(6,), threads=(1, 8, 64)), out
    )
    for p in paths:
        _valid(open(p, encoding="utf-8").read())
