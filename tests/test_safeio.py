"""The crash-safe I/O layer: atomic writes, checksums, quarantine, and
the injected I/O fault family (partial write, corrupt read, ENOSPC)."""

import errno
import json

import pytest

from repro.errors import IOIntegrityError
from repro.runtime import FaultPlan, FaultSpec
from repro.shard import safeio


# ------------------------------------------------------------ clean path
def test_atomic_write_roundtrip(tmp_path):
    path = tmp_path / "artifact.bin"
    data = b"payload" * 100
    checksum = safeio.atomic_write_bytes(path, data)
    assert path.read_bytes() == data
    assert checksum == safeio.checksum_bytes(data)
    assert checksum == safeio.checksum_file(path)
    safeio.verify_file(path, checksum)  # no raise
    # No .tmp debris.
    assert [p.name for p in tmp_path.iterdir()] == ["artifact.bin"]


def test_atomic_write_replaces_existing(tmp_path):
    path = tmp_path / "artifact.bin"
    safeio.atomic_write_bytes(path, b"old")
    safeio.atomic_write_bytes(path, b"new contents")
    assert path.read_bytes() == b"new contents"


def test_append_text_accumulates(tmp_path):
    path = tmp_path / "ledger.jsonl"
    safeio.append_text(path, "line one\n")
    safeio.append_text(path, "line two\n")
    assert path.read_text().splitlines() == ["line one", "line two"]


def test_verify_mismatch_names_path_and_checksums(tmp_path):
    path = tmp_path / "artifact.bin"
    safeio.atomic_write_bytes(path, b"good")
    bad = safeio.checksum_bytes(b"other")
    with pytest.raises(IOIntegrityError, match="checksum mismatch") as ei:
        safeio.verify_file(path, bad)
    assert str(path) in str(ei.value)
    assert bad in str(ei.value)
    assert ei.value.path == str(path)


def test_verify_missing_file_is_integrity_error(tmp_path):
    with pytest.raises(IOIntegrityError, match="cannot read"):
        safeio.verify_file(tmp_path / "gone.bin", "0" * 16)


def test_quarantine_renames_and_never_raises(tmp_path):
    path = tmp_path / "artifact.bin"
    path.write_bytes(b"corrupt")
    target = safeio.quarantine(path)
    assert target == str(path) + safeio.CORRUPT_SUFFIX
    assert not path.exists()
    assert (tmp_path / "artifact.bin.corrupt").read_bytes() == b"corrupt"
    # Quarantining a vanished file is a no-op, not an error.
    assert safeio.quarantine(path).endswith(".corrupt")


# --------------------------------------------------------- fault family
def test_partial_write_is_torn_but_renamed(tmp_path):
    """The writer believes it succeeded: the rename lands, the intended
    checksum comes back — only read-verification exposes the tear."""
    path = tmp_path / "artifact.bin"
    data = b"x" * 64
    faults = FaultPlan(FaultSpec("io_partial_write", at_op=1))
    checksum = safeio.atomic_write_bytes(path, data, faults=faults)
    assert checksum == safeio.checksum_bytes(data)  # intended checksum
    assert path.read_bytes() == data[:32]  # torn on disk
    with pytest.raises(IOIntegrityError, match="torn or corrupt"):
        safeio.verify_file(path, checksum)


def test_enospc_raises_before_any_bytes_land(tmp_path):
    path = tmp_path / "artifact.bin"
    faults = FaultPlan(FaultSpec("io_enospc", at_op=1))
    with pytest.raises(OSError) as ei:
        safeio.atomic_write_bytes(path, b"data", faults=faults)
    assert ei.value.errno == errno.ENOSPC
    assert not path.exists()
    assert list(tmp_path.iterdir()) == []  # no tmp debris either


def test_corrupt_read_poisons_one_verification(tmp_path):
    path = tmp_path / "artifact.bin"
    checksum = safeio.atomic_write_bytes(path, b"intact bytes")
    faults = FaultPlan(FaultSpec("io_corrupt_read", at_op=1))
    with pytest.raises(IOIntegrityError):
        safeio.verify_file(path, checksum, faults=faults)
    # Single-shot: the next verification of the same intact file passes.
    safeio.verify_file(path, checksum, faults=faults)


def test_write_faults_index_write_ops_only(tmp_path):
    """at_op counts safeio write operations; reads advance a separate
    counter, so interleaved verifies don't shift the schedule."""
    faults = FaultPlan(FaultSpec("io_enospc", at_op=3))
    p1, p2, p3 = (tmp_path / f"a{i}.bin" for i in range(3))
    c1 = safeio.atomic_write_bytes(p1, b"one", faults=faults)  # write 1
    safeio.verify_file(p1, c1, faults=faults)  # read 1 (no effect)
    safeio.atomic_write_bytes(p2, b"two", faults=faults)  # write 2
    with pytest.raises(OSError):
        safeio.atomic_write_bytes(p3, b"three", faults=faults)  # write 3


def test_repeat_fault_fires_persistently(tmp_path):
    faults = FaultPlan(FaultSpec("io_enospc", at_op=2, repeat=True))
    safeio.atomic_write_bytes(tmp_path / "ok.bin", b"fine", faults=faults)
    for i in range(3):
        with pytest.raises(OSError):
            safeio.atomic_write_bytes(
                tmp_path / f"fail{i}.bin", b"nope", faults=faults
            )


def test_io_faults_do_not_fire_from_tick():
    """Root-boundary tick() must skip the I/O family entirely."""
    faults = FaultPlan(FaultSpec("io_enospc", at_op=1))
    for _ in range(5):
        faults.tick(lambda: 0.0)  # would raise if the spec fired
    with pytest.raises(OSError):
        safeio.atomic_write_bytes("/dev/null", b"", faults=faults)


def test_fault_spec_repeat_validation():
    from repro.errors import CountingError

    with pytest.raises(CountingError, match="repeat"):
        FaultSpec("interrupt", at_op=1, repeat=True)


def test_append_partial_write_truncates_tail(tmp_path):
    path = tmp_path / "ledger.jsonl"
    safeio.append_text(path, "intact line\n")
    line = json.dumps({"type": "done", "shard": 1}) + "\n"
    faults = FaultPlan(FaultSpec("io_partial_write", at_op=1))
    safeio.append_text(path, line, faults=faults)
    raw = path.read_bytes()
    assert raw.startswith(b"intact line\n")
    assert raw[len(b"intact line\n"):] == line.encode()[: len(line) // 2]
