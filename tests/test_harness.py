"""Bench harness formatting helpers."""

import pytest

from repro.bench.harness import Table, fmt_count, fmt_seconds, geometric_mean


def test_geometric_mean():
    assert geometric_mean([2, 8]) == pytest.approx(4.0)
    assert geometric_mean([]) == 0.0
    assert geometric_mean([0.0, 4.0]) == pytest.approx(4.0)  # zeros skipped


def test_fmt_seconds_ranges():
    assert fmt_seconds(None) == "-"
    assert fmt_seconds(1234.5) == "1,234"
    assert fmt_seconds(12.34) == "12.3"
    assert fmt_seconds(0.1234) == "0.12"
    assert fmt_seconds(0.00012) == "0.0001"


def test_fmt_count():
    assert fmt_count(None) == "-"
    assert fmt_count(1234567) == "1,234,567"


def test_table_render_and_rows():
    t = Table("demo", ["a", "b"])
    t.add(1, "x")
    t.add(22, "yy")
    t.note("a note")
    out = t.render()
    assert "demo" in out and "a note" in out
    assert "22" in out


def test_table_rejects_bad_row():
    t = Table("demo", ["a", "b"])
    with pytest.raises(ValueError):
        t.add(1)


def test_table_show_prints(capsys):
    t = Table("demo", ["col"])
    t.add("v")
    t.show()
    assert "demo" in capsys.readouterr().out
