"""The Sec. III-E order-selecting heuristic."""

import pytest

from repro.graph.generators import erdos_renyi, star_graph
from repro.ordering import (
    HeuristicConfig,
    OrderingChoice,
    compute_ordering,
    select_ordering,
)


def test_small_graph_always_degree():
    # Below the size gate the heuristic picks degree regardless of
    # assortativity (the paper's DBLP case).
    g = erdos_renyi(100, 0.3, seed=1)
    d = select_ordering(g)
    assert d.choice is OrderingChoice.DEGREE
    assert not d.large_enough
    assert "size threshold" in d.reason


def test_large_assortative_graph_picks_core():
    g = erdos_renyi(200, 0.3, seed=2)
    d = select_ordering(g, effective_num_vertices=5e6)
    # Dense ER: hub and its best neighbor share many neighbors.
    assert d.common_signal
    assert d.choice is OrderingChoice.APPROX_CORE
    assert "core approximation" in d.reason


def test_large_disassortative_graph_picks_degree():
    g = star_graph(300)
    d = select_ordering(g, effective_num_vertices=5e6)
    assert d.choice is OrderingChoice.DEGREE
    assert not d.a_signal and not d.common_signal
    assert "no assortativity" in d.reason


def test_a_signal_threshold():
    g = erdos_renyi(200, 0.3, seed=3)
    # With a tiny effective |V|, a/|V| is large -> signal fires.
    loose = HeuristicConfig(common_fraction_threshold=2.0, min_vertices=10)
    d = select_ordering(g, loose, effective_num_vertices=200)
    assert d.a_signal
    assert d.choice is OrderingChoice.APPROX_CORE


def test_config_thresholds_respected():
    g = erdos_renyi(200, 0.3, seed=4)
    strict = HeuristicConfig(
        a_over_v_threshold=10.0, common_fraction_threshold=1.1, min_vertices=10
    )
    d = select_ordering(g, strict, effective_num_vertices=1e9)
    assert d.choice is OrderingChoice.DEGREE


def test_compute_ordering_from_decision():
    g = erdos_renyi(60, 0.2, seed=5)
    d = select_ordering(g)
    o = compute_ordering(g, d)
    assert o.name == "degree"


def test_compute_ordering_from_choice_enum():
    g = erdos_renyi(60, 0.2, seed=5)
    o = compute_ordering(g, OrderingChoice.APPROX_CORE)
    assert o.name.startswith("approx_core")


def test_compute_ordering_uses_config_eps():
    g = erdos_renyi(60, 0.2, seed=5)
    cfg = HeuristicConfig(eps=0.1)
    o = compute_ordering(g, OrderingChoice.APPROX_CORE, cfg)
    assert "0.1" in o.name
