"""Edge-array/adjacency builders: normalization and error handling."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.build import (
    from_adjacency,
    from_edge_array,
    from_edge_list,
    induced_subgraph,
)
from repro.graph.generators import complete_graph


def test_self_loops_dropped():
    g = from_edge_array(np.array([[0, 0], [0, 1], [2, 2]]))
    assert g.num_edges == 1
    assert not g.has_edge(2, 2)


def test_duplicate_edges_collapse():
    g = from_edge_array(np.array([[0, 1], [1, 0], [0, 1], [0, 1]]))
    assert g.num_edges == 1


def test_symmetrization():
    g = from_edge_array(np.array([[0, 1]]))
    assert g.has_edge(0, 1) and g.has_edge(1, 0)


def test_num_vertices_override():
    g = from_edge_array(np.array([[0, 1]]), num_vertices=10)
    assert g.num_vertices == 10
    assert g.degree(9) == 0


def test_num_vertices_too_small_rejected():
    with pytest.raises(GraphFormatError):
        from_edge_array(np.array([[0, 5]]), num_vertices=3)


def test_negative_ids_rejected():
    with pytest.raises(GraphFormatError):
        from_edge_array(np.array([[-1, 2]]))


def test_bad_shape_rejected():
    with pytest.raises(GraphFormatError):
        from_edge_array(np.array([[0, 1, 2]]))


def test_empty_edge_array():
    g = from_edge_array(np.empty((0, 2), dtype=np.int64))
    assert g.num_vertices == 0
    g = from_edge_array(np.empty((0, 2), dtype=np.int64), num_vertices=4)
    assert g.num_vertices == 4


def test_from_edge_list_empty():
    g = from_edge_list([], num_vertices=3)
    assert g.num_vertices == 3 and g.num_edges == 0


def test_from_adjacency_one_direction_suffices():
    g = from_adjacency([[1, 2], [], []])
    assert g.has_edge(1, 0) and g.has_edge(2, 0)
    assert g.num_vertices == 3


def test_from_adjacency_matches_edge_list():
    a = from_adjacency([[1], [2], [0]])
    b = from_edge_list([(0, 1), (1, 2), (2, 0)])
    assert a == b


def test_induced_subgraph_complete():
    g = complete_graph(6)
    sub = induced_subgraph(g, np.array([1, 3, 5]))
    assert sub.num_vertices == 3
    assert sub.num_edges == 3  # K3


def test_induced_subgraph_relabeling_order():
    g = from_edge_list([(0, 1), (1, 2), (2, 3)])
    sub = induced_subgraph(g, np.array([2, 1]))
    # vertex 2 -> 0, vertex 1 -> 1; edge (1,2) survives as (1,0).
    assert sub.num_vertices == 2
    assert sub.has_edge(0, 1)


def test_induced_subgraph_duplicates_rejected():
    g = complete_graph(4)
    with pytest.raises(GraphFormatError):
        induced_subgraph(g, np.array([0, 0, 1]))


def test_induced_subgraph_empty_selection():
    g = complete_graph(4)
    sub = induced_subgraph(g, np.array([], dtype=np.int64))
    assert sub.num_vertices == 0
