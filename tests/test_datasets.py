"""The eight Table-I analogs: determinism, fingerprints, heuristics."""

import pytest

from repro.datasets import REGISTRY, dataset_names, get_spec, load
from repro.errors import DatasetError
from repro.ordering import select_ordering

EXPECTED_KMAX = {
    # paper k_max scaled to about a third (LiveJournal's is unreported).
    "dblp": 38,
    "skitter": 22,
    "baidu": 10,
    "wikitalk": 9,
    "orkut": 17,
    "webedu": 150,
    "friendster": 43,
}


def test_registry_has_paper_suite():
    assert dataset_names() == [
        "dblp", "skitter", "baidu", "wikitalk",
        "orkut", "livejournal", "webedu", "friendster",
    ]


def test_get_spec_unknown():
    with pytest.raises(DatasetError, match="unknown dataset"):
        get_spec("twitter")


def test_load_caches():
    assert load("dblp") is load("dblp")


def test_specs_carry_paper_columns():
    spec = get_spec("orkut")
    assert spec.paper_vertices_m == 3.1
    assert spec.paper_avg_degree == 37.8
    assert spec.best_ordering == "core"
    assert get_spec("livejournal").paper_kmax is None
    assert get_spec("livejournal").clique_rich


@pytest.mark.parametrize("name", dataset_names())
def test_analogs_build_and_are_modest(name):
    g = load(name)
    assert 1000 <= g.num_vertices <= 20_000
    assert g.num_edges > g.num_vertices  # connected-ish, non-trivial


@pytest.mark.parametrize("name", dataset_names())
def test_analogs_deterministic(name):
    spec = get_spec(name)
    assert spec.builder() == spec.builder()


@pytest.mark.parametrize("name", dataset_names())
def test_heuristic_matches_table4(name):
    """Table IV ground truth: the heuristic decision for every analog
    matches the paper's best ordering."""
    spec = get_spec(name)
    d = select_ordering(
        load(name), effective_num_vertices=spec.effective_num_vertices
    )
    want = "approx_core" if spec.best_ordering == "core" else "degree"
    assert d.choice.value == want


@pytest.mark.slow
@pytest.mark.parametrize("name", sorted(EXPECTED_KMAX))
def test_kmax_matches_scaled_paper_value(name):
    from repro.counting.allk import max_clique_size

    assert max_clique_size(load(name)) == EXPECTED_KMAX[name]


@pytest.mark.slow
def test_livejournal_work_grows_with_k():
    """The Fig. 13 fingerprint: recursive calls grow steeply with k."""
    from repro.counting import count_kcliques
    from repro.ordering import core_ordering

    g = load("livejournal")
    o = core_ordering(g)
    calls = {
        k: count_kcliques(g, k, o).counters.function_calls for k in (6, 11)
    }
    assert calls[11] > 5 * calls[6]
