"""The enumeration (Arb-Count style) baseline."""

import math

import pytest

from repro.counting import brute_force_count, count_kcliques, count_kcliques_enumeration
from repro.counting.arbcount import EnumerationBudgetExceeded
from repro.errors import CountingError
from repro.graph.generators import complete_graph, erdos_renyi, star_graph
from repro.ordering import core_ordering, degree_ordering, directionalize


def test_matches_brute_force(small_suite):
    for g in small_suite:
        o = degree_ordering(g)
        for k in range(1, 7):
            assert (
                count_kcliques_enumeration(g, k, o).count
                == brute_force_count(g, k)
            )


def test_matches_pivoting_on_medium(medium_random):
    g = medium_random
    o = core_ordering(g)
    for k in (3, 4, 5):
        assert (
            count_kcliques_enumeration(g, k, o).count
            == count_kcliques(g, k, o).count
        )


def test_k1_k2_fast_paths():
    g = erdos_renyi(25, 0.2, seed=3)
    o = degree_ordering(g)
    assert count_kcliques_enumeration(g, 1, o).count == 25
    assert count_kcliques_enumeration(g, 2, o).count == g.num_edges


def test_complete_graph():
    g = complete_graph(12)
    o = core_ordering(g)
    assert count_kcliques_enumeration(g, 6, o).count == math.comb(12, 6)


def test_star_no_triangles():
    g = star_graph(8)
    assert count_kcliques_enumeration(g, 3, degree_ordering(g)).count == 0


def test_budget_exceeded():
    g = complete_graph(16)
    with pytest.raises(EnumerationBudgetExceeded):
        count_kcliques_enumeration(g, 8, core_ordering(g), max_nodes=5)


def test_budget_sufficient_no_raise():
    g = complete_graph(8)
    r = count_kcliques_enumeration(g, 4, core_ordering(g), max_nodes=10**7)
    assert r.count == math.comb(8, 4)


def test_work_grows_with_k():
    """The Fig. 12 shape: enumeration work explodes with clique size,
    unlike pivoting whose tree is k-insensitive."""
    g = erdos_renyi(50, 0.7, seed=4)
    o = core_ordering(g)
    w = [
        count_kcliques_enumeration(g, k, o).counters.work
        for k in (4, 6, 8)
    ]
    assert w[0] < w[1] < w[2]
    piv = [count_kcliques(g, k, o).counters.work for k in (4, 6, 8)]
    assert w[2] / w[0] > 3 * (piv[2] / piv[0])


def test_invalid_k():
    g = complete_graph(4)
    with pytest.raises(CountingError):
        count_kcliques_enumeration(g, 0, core_ordering(g))


def test_directed_input_rejected():
    g = complete_graph(4)
    dag = directionalize(g, core_ordering(g))
    with pytest.raises(CountingError):
        count_kcliques_enumeration(dag, 3, core_ordering(g))
    with pytest.raises(CountingError):
        count_kcliques_enumeration(g, 3, g)


def test_accepts_dag():
    g = erdos_renyi(20, 0.4, seed=5)
    o = core_ordering(g)
    dag = directionalize(g, o)
    assert (
        count_kcliques_enumeration(g, 3, dag).count
        == count_kcliques_enumeration(g, 3, o).count
    )
