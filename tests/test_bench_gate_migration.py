"""Gate-migration contract for the four store-backed benches.

Each ``benchmarks/bench_{kernels,forest,obs,parallel}.py`` must now do
both halves of the migration:

* append a well-formed :class:`~repro.bench.platform.store.RunRecord`
  (seed in config, non-empty per-repeat samples, exact work counters)
  to the run store, and
* keep its legacy ``BENCH_*.json`` artifact structurally compatible for
  one deprecation cycle — no key removals (additive keys are fine), and
  never leak the in-memory ``store_result`` into the file.

Runs here use tiny graphs; the hard-floor verdicts are irrelevant (the
functions return their payload either way), only the record/artifact
structure is under test.
"""

import importlib.util
import json
import sys
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.bench.platform.store import RunStore

BENCH_DIR = Path(__file__).resolve().parents[1] / "benchmarks"


def load_bench(name):
    spec = importlib.util.spec_from_file_location(
        f"test_migration_bench_{name}", BENCH_DIR / f"bench_{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def store_args(tmp_path):
    """What ``add_store_args`` would parse: store on, stat gate off
    (a tiny-graph test run must never fail on somebody's baseline)."""
    return SimpleNamespace(store_dir=str(tmp_path / "runs"),
                           no_store=False, no_stat_gate=True)


def run_tiny(name, tmp_path, seed):
    """One tiny invocation of bench ``name``; returns the payload."""
    module = load_bench(name)
    tmp_path.mkdir(parents=True, exist_ok=True)
    out = tmp_path / f"BENCH_{name}.json"
    sa = store_args(tmp_path)
    if name == "kernels":
        return module.run_kernel_bench(
            n=80, p=0.3, seed=seed, number=1, repeats=2, gate=0.0,
            e2e=(40, 0.3, 4), out_path=out, store_args=sa)
    if name == "obs":
        return module.run_obs_bench(
            n=50, p=0.3, seed=seed, number=1, repeats=2,
            out_path=out, store_args=sa)
    if name == "parallel":
        return module.run_parallel_bench(
            n=80, p=0.3, k=4, seed=seed, processes=2,
            chunks_per_process=2, repeats=2, out_path=out, store_args=sa)
    if name == "forest":
        from repro.graph.generators import erdos_renyi
        return module.run_forest_bench(
            smoke=True, number=1, repeats=2, out_path=out, seed=seed,
            graphs=[("er-60", erdos_renyi(60, 0.3, seed=seed))],
            store_args=sa)
    raise AssertionError(name)


#: The legacy artifact's frozen structure: these keys may not disappear
#: until the deprecation cycle ends.  Additive keys are allowed.
FROZEN_TOP_KEYS = {
    "kernels": {"bench", "config", "root", "ops", "gate"},
    "obs": {"bench", "config", "sweep_seconds", "overhead_pct", "gate"},
    "parallel": {"bench", "config", "count", "serial_s", "parallel_s",
                 "overhead", "speedup", "gate"},
    "forest": {"bench", "config", "results", "gate"},
}

FROZEN_NESTED = {
    "kernels": ("ops", {"bigint_s", "wordarray_s", "speedup",
                        "wordarray_words_per_s", "gated",
                        "gate_threshold"}),
    "forest": ("results", {"graph", "kernel", "num_leaves",
                           "forest_bytes", "direct_s", "forest_query_s",
                           "forest_build_s", "speedup",
                           "breakeven_workloads", "counts_match",
                           "pass"}),
}

SEEDS = {"kernels": 7, "obs": 7, "parallel": 13, "forest": 11}


@pytest.mark.slow
@pytest.mark.parametrize("name", sorted(SEEDS))
class TestGateMigration:
    def test_invocation_writes_record_and_compatible_artifact(
            self, name, tmp_path):
        seed = SEEDS[name]
        payload = run_tiny(name, tmp_path, seed)

        # --- run-store half of the contract ---------------------------
        store = RunStore(tmp_path / "runs")
        assert store.benches() == [name]
        (rec,) = store.read(name)
        assert rec.bench == name
        assert rec.seed == seed                 # seed in every record
        assert rec.samples                      # non-empty sample dict
        for metric, values in rec.samples.items():
            # One sample per repeat; the kernels bench's end-to-end
            # metric uses its own (higher) repeat count so the
            # statistical gate has enough samples per side.
            if metric.endswith(".sct_count_e2e"):
                assert len(values) >= 2, (metric, values)
            else:
                assert len(values) == 2, (metric, values)
        assert rec.metrics                      # exact work counters
        assert all(v > 0 for v in rec.metrics.values())
        assert rec.gate == payload["gate"]
        assert rec.machine["cpu_count"] >= 1

        # --- legacy-artifact half of the contract ---------------------
        artifact = json.loads(
            (tmp_path / f"BENCH_{name}.json").read_text())
        missing = FROZEN_TOP_KEYS[name] - set(artifact)
        assert not missing, f"legacy keys removed from BENCH_{name}.json: " \
                            f"{sorted(missing)}"
        assert artifact["bench"] == name
        assert artifact["config"]["seed"] == seed
        # store_result is in-memory only, never in the artifact file
        assert "store_result" not in artifact
        assert "store_result" in payload
        if name in FROZEN_NESTED:
            key, frozen = FROZEN_NESTED[name]
            entries = artifact[key]
            if isinstance(entries, dict):
                entries = list(entries.values())
            assert entries
            for entry in entries:
                assert not frozen - set(entry)

    def test_exact_work_metrics_are_seed_deterministic(
            self, name, tmp_path):
        # Two same-seed invocations must report identical work counters
        # — any drift is an algorithmic change, not timing noise.
        seed = SEEDS[name]
        run_tiny(name, tmp_path / "a", seed)
        run_tiny(name, tmp_path / "b", seed)
        (rec_a,) = RunStore(tmp_path / "a" / "runs").read(name)
        (rec_b,) = RunStore(tmp_path / "b" / "runs").read(name)
        assert rec_a.metrics == rec_b.metrics
        assert rec_a.config == rec_b.config

    def test_no_store_flag_skips_the_store(self, name, tmp_path):
        module = load_bench(name)  # noqa: F841 - import check only
        sa = store_args(tmp_path)
        sa.no_store = True
        seed = SEEDS[name]
        out = tmp_path / f"BENCH_{name}.json"
        if name == "kernels":
            payload = module.run_kernel_bench(
                n=80, p=0.3, seed=seed, number=1, repeats=2, gate=0.0,
                e2e=(40, 0.3, 4), out_path=out, store_args=sa)
        elif name == "obs":
            payload = module.run_obs_bench(
                n=50, p=0.3, seed=seed, number=1, repeats=2,
                out_path=out, store_args=sa)
        elif name == "parallel":
            payload = module.run_parallel_bench(
                n=80, p=0.3, k=4, seed=seed, processes=2,
                chunks_per_process=2, repeats=2, out_path=out,
                store_args=sa)
        else:
            from repro.graph.generators import erdos_renyi
            payload = module.run_forest_bench(
                smoke=True, number=1, repeats=2, out_path=out, seed=seed,
                graphs=[("er-60", erdos_renyi(60, 0.3, seed=seed))],
                store_args=sa)
        assert RunStore(tmp_path / "runs").benches() == []
        assert payload["store_result"] == {"regressed": False, "exit": 0}
        assert out.exists()


def test_bench_cli_run_uses_the_scripts(tmp_path, capsys):
    """``repro bench run`` drives the real bench_*.py via the adapter
    flags (smoke scale would be slow here; just check discovery fails
    loudly for unknown names)."""
    from repro.cli import main as cli_main
    rc = cli_main(["bench", "--store-dir", str(tmp_path / "runs"),
                   "run", "nosuch", "--bench-dir", str(BENCH_DIR)])
    assert rc == 2
    err = capsys.readouterr().err
    assert "nosuch" in err


def test_bench_dir_discovery_rejects_missing_dir(tmp_path):
    from repro.bench.platform.cli import _find_bench_dir
    with pytest.raises(FileNotFoundError):
        _find_bench_dir(str(tmp_path / "nowhere"))
    assert _find_bench_dir(str(BENCH_DIR)) == BENCH_DIR
