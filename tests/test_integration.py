"""Cross-module integration tests on the dataset analogs.

Each test wires several subsystems together the way a downstream user
would, and checks cross-implementation consistency invariants.
"""

import math

import pytest

from repro import PivotScaleConfig, count_cliques
from repro.core.hybrid import count_cliques_hybrid
from repro.counting import (
    count_all_sizes,
    count_kcliques,
    count_kcliques_enumeration,
    count_maximal_cliques,
    maximum_clique,
    per_vertex_counts,
)
from repro.counting.listing import list_kcliques
from repro.datasets import dataset_names, get_spec, load
from repro.ordering import core_ordering, select_ordering
from repro.parallel import count_kcliques_processes

SMALL = ("dblp", "skitter", "baidu", "wikitalk")


@pytest.mark.parametrize("name", SMALL)
def test_pipeline_matches_raw_engine(name):
    g = load(name)
    spec = get_spec(name)
    cfg = PivotScaleConfig(effective_num_vertices=spec.effective_num_vertices)
    r = count_cliques(g, 5, cfg)
    raw = count_kcliques(g, 5, core_ordering(g)).count
    assert r.count == raw


@pytest.mark.parametrize("name", SMALL)
def test_enumeration_agrees_with_pivoting(name):
    g = load(name)
    o = core_ordering(g)
    assert (
        count_kcliques_enumeration(g, 4, o).count
        == count_kcliques(g, 4, o).count
    )


@pytest.mark.parametrize("name", SMALL)
def test_hybrid_agrees(name):
    g = load(name)
    for k in (3, 8):
        assert count_cliques_hybrid(g, k).count == count_cliques(g, k).count


@pytest.mark.parametrize("name", ("dblp", "baidu"))
def test_process_pool_agrees(name):
    g = load(name)
    o = core_ordering(g)
    assert count_kcliques_processes(g, 4, o, processes=2).count == (
        count_kcliques(g, 4, o).count
    )


@pytest.mark.parametrize("name", ("skitter", "wikitalk"))
def test_maximum_clique_consistent_with_distribution(name):
    g = load(name)
    dist = count_all_sizes(g, core_ordering(g)).all_counts
    kmax = len(dist) - 1
    assert len(maximum_clique(g)) == kmax
    assert dist[kmax] >= 1


def test_maximal_count_upper_bounds_leaves():
    g = load("baidu")
    # Every maximal clique corresponds to at least one SCT leaf.
    r = count_all_sizes(g, core_ordering(g))
    assert count_maximal_cliques(g) <= r.counters.leaves


@pytest.mark.parametrize("name", ("dblp", "baidu"))
def test_per_vertex_identity_at_scale(name):
    g = load(name)
    o = core_ordering(g)
    k = 4
    per = per_vertex_counts(g, k, o)
    assert sum(per) == k * count_kcliques(g, k, o).count


def test_listing_matches_count_on_dataset():
    g = load("wikitalk")
    o = core_ordering(g)
    assert len(list(list_kcliques(g, 4, o))) == count_kcliques(g, 4, o).count


def test_all_datasets_full_pipeline_smoke():
    for name in dataset_names():
        g = load(name)
        spec = get_spec(name)
        cfg = PivotScaleConfig(
            effective_num_vertices=spec.effective_num_vertices
        )
        r = count_cliques(g, 4, cfg)
        assert r.count >= 0
        assert r.total_model_seconds > 0
        d = select_ordering(
            g, effective_num_vertices=spec.effective_num_vertices
        )
        assert d.choice.value in ("approx_core", "degree")


def test_structures_and_orderings_cross_product():
    g = load("dblp")
    counts = set()
    from repro.ordering import (
        approx_core_ordering,
        degree_ordering,
        kcore_ordering,
    )

    for o in (core_ordering(g), degree_ordering(g),
              approx_core_ordering(g, -0.5), kcore_ordering(g)):
        for s in ("dense", "sparse", "remap"):
            counts.add(count_kcliques(g, 5, o, structure=s).count)
    assert len(counts) == 1
