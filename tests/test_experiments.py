"""Smoke tests for the experiment harness (reduced-scale runs).

The full-scale reproductions live under ``benchmarks/``; here each
experiment runs on a small subset so ``pytest tests/`` exercises every
harness code path and its shape checks.
"""

import pytest

from repro.bench import experiments as E

FAST = ("dblp", "skitter")


def _assert_result(res, min_checks=1):
    assert res.tables and res.tables[0].rows
    assert len(res.shape_checks) >= min_checks
    failed = [d for d, ok in res.shape_checks if not ok]
    assert not failed, failed


def test_table1():
    _assert_result(E.table1_graph_suite(names=FAST))


def test_fig1():
    _assert_result(E.fig1_distribution(names=("dblp",)))


def test_fig3():
    _assert_result(E.fig3_degree_distributions("skitter"))


def test_table2():
    _assert_result(E.table2_counters(names=FAST, k=6))


def test_table3():
    _assert_result(E.table3_orderings(names=FAST, k=6))


def test_fig5():
    _assert_result(E.fig5_ordering_quality(names=FAST))


def test_fig6():
    _assert_result(E.fig6_ordering_time(names=FAST))


def test_fig7():
    _assert_result(E.fig7_counting_time(names=FAST, k=6))


def test_fig8():
    _assert_result(E.fig8_total_time(names=FAST, k=6))


def test_table4():
    _assert_result(E.table4_heuristic(names=FAST))


def test_fig9():
    _assert_result(E.fig9_structures(names=("skitter",), k=6))


def test_fig10():
    _assert_result(E.fig10_heuristic_vs_k(names=("skitter",), ks=(4, 6)))


def test_fig11():
    _assert_result(
        E.fig11_scaling(names=("baidu",), ks=(6,), threads=(1, 32, 64))
    )


@pytest.mark.slow
def test_table5():
    _assert_result(E.table5_comparison(names=("skitter",), ks=(6, 8)))


@pytest.mark.slow
def test_table6():
    _assert_result(E.table6_livejournal(ks=(6, 11)))


def test_experiment_result_api():
    res = E.ExperimentResult("x", [], {})
    res.check("ok", True)
    assert res.all_checks_pass
    res.check("bad", False)
    assert not res.all_checks_pass
