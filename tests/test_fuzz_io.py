"""Failure injection and fuzzing for the I/O layer.

Malformed input must raise :class:`GraphFormatError` (never a bare
``ValueError``/``IndexError``/crash), and every successfully parsed
graph must satisfy the CSR invariants.
"""

import io

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GraphFormatError, ReproError
from repro.graph.io import load_npz, read_edge_list, read_metis
from repro.graph.csr import CSRGraph


# ------------------------------------------------------- edge-list fuzz
@settings(max_examples=150, deadline=None)
@given(text=st.text(alphabet="0123456789 \t\n#%-ab.", max_size=200))
def test_edge_list_fuzz_never_crashes(text):
    try:
        g = read_edge_list(io.StringIO(text))
    except ReproError:
        return  # clean, typed rejection
    # Parsed: invariants must hold (constructor re-validates).
    CSRGraph(g.indptr, g.indices)


@settings(max_examples=100, deadline=None)
@given(
    pairs=st.lists(
        st.tuples(st.integers(0, 30), st.integers(0, 30)), max_size=60
    )
)
def test_edge_list_roundtrip_fuzz(tmp_path_factory, pairs):
    from repro.graph.build import from_edge_list
    from repro.graph.io import write_edge_list

    g = from_edge_list(pairs)
    if g.num_vertices == 0:
        return
    path = tmp_path_factory.mktemp("fuzz") / "g.el"
    write_edge_list(g, path)
    assert read_edge_list(path, num_vertices=g.num_vertices) == g


# ----------------------------------------------------------- metis fuzz
@settings(max_examples=150, deadline=None)
@given(text=st.text(alphabet="0123456789 \n%x", max_size=150))
def test_metis_fuzz_never_crashes(text):
    try:
        g = read_metis(io.StringIO(text))
    except ReproError:
        return
    CSRGraph(g.indptr, g.indices)


# ---------------------------------------------------------- npz failure
def test_npz_wrong_contents(tmp_path):
    path = tmp_path / "bad.npz"
    np.savez_compressed(path, foo=np.array([1]))
    with pytest.raises(GraphFormatError):
        load_npz(path)


def test_npz_truncated_file(tmp_path):
    path = tmp_path / "trunc.npz"
    from repro.graph.generators import complete_graph
    from repro.graph.io import save_npz

    save_npz(complete_graph(5), path)
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])
    with pytest.raises(Exception):
        load_npz(path)


def test_npz_inconsistent_arrays(tmp_path):
    path = tmp_path / "bad2.npz"
    np.savez_compressed(
        path,
        indptr=np.array([0, 5]),  # claims 5 entries
        indices=np.array([0]),
        directed=np.array(False),
    )
    with pytest.raises(GraphFormatError):
        CSRGraph(**{
            "indptr": np.load(path)["indptr"],
            "indices": np.load(path)["indices"],
        })
