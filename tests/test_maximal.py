"""Maximal-clique enumeration (Bron-Kerbosch with pivoting)."""

import pytest

from repro.counting.maximal import (
    count_maximal_cliques,
    maximal_cliques,
    maximum_clique,
)
from repro.errors import CountingError
from repro.graph.build import from_edge_list
from repro.graph.generators import (
    complete_graph,
    empty_graph,
    erdos_renyi,
    path_graph,
    star_graph,
    turan_graph,
)
from repro.ordering import core_ordering, degree_ordering, directionalize


def _nx_maximal(g):
    import networkx as nx

    nxg = nx.Graph()
    nxg.add_nodes_from(range(g.num_vertices))
    nxg.add_edges_from(g.edges())
    return sorted(sorted(c) for c in nx.find_cliques(nxg))


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("p", [0.2, 0.45])
def test_matches_networkx(seed, p):
    g = erdos_renyi(25, p, seed=seed)
    assert sorted(maximal_cliques(g)) == _nx_maximal(g)


def test_complete_graph_single_maximal():
    g = complete_graph(8)
    assert count_maximal_cliques(g) == 1
    assert maximum_clique(g) == list(range(8))


def test_star_maximal_edges():
    g = star_graph(5)
    assert count_maximal_cliques(g) == 5
    assert len(maximum_clique(g)) == 2


def test_path_maximal():
    g = path_graph(5)
    assert count_maximal_cliques(g) == 4


def test_isolated_vertices_are_maximal():
    assert sorted(maximal_cliques(empty_graph(3))) == [[0], [1], [2]]


def test_turan_count():
    # T(n, r) with equal parts s: maximal cliques = s^r.
    g = turan_graph(9, 3)
    assert count_maximal_cliques(g) == 27


def test_cliques_are_distinct_and_maximal():
    g = erdos_renyi(30, 0.3, seed=42)
    adj = g.adjacency_sets()
    seen = set()
    for c in maximal_cliques(g):
        key = tuple(c)
        assert key not in seen
        seen.add(key)
        # clique property
        for i, u in enumerate(c):
            for v in c[i + 1 :]:
                assert v in adj[u]
        # maximality
        members = set(c)
        for w in range(g.num_vertices):
            if w not in members:
                assert not members <= adj[w]


def test_accepts_custom_ordering():
    g = erdos_renyi(20, 0.4, seed=3)
    a = sorted(maximal_cliques(g, core_ordering(g)))
    b = sorted(maximal_cliques(g, degree_ordering(g)))
    assert a == b


def test_rejects_directed():
    g = complete_graph(4)
    dag = directionalize(g, core_ordering(g))
    with pytest.raises(CountingError):
        list(maximal_cliques(dag))


def test_pendant_triangle():
    g = from_edge_list([(0, 1), (1, 2), (0, 2), (0, 3)])
    cliques = sorted(maximal_cliques(g))
    assert cliques == [[0, 1, 2], [0, 3]]
