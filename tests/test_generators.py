"""Generators: closed forms, determinism, parameter validation."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.generators import (
    chung_lu,
    complete_graph,
    complete_multipartite,
    cycle_graph,
    empty_graph,
    erdos_renyi,
    overlay,
    path_graph,
    planted_cliques,
    power_law_degrees,
    rmat,
    star_graph,
    turan_graph,
    attach_assortative_hub,
)
from repro.graph.generators.planted import clique_edges


# ---------------------------------------------------------------- classic
def test_complete_graph_edges():
    assert complete_graph(7).num_edges == 21


def test_complete_graph_zero_and_one():
    assert complete_graph(0).num_vertices == 0
    assert complete_graph(1).num_edges == 0


def test_path_and_cycle():
    assert path_graph(5).num_edges == 4
    assert cycle_graph(5).num_edges == 5
    with pytest.raises(GraphFormatError):
        cycle_graph(2)


def test_star():
    g = star_graph(7)
    assert g.num_vertices == 8
    assert g.degree(0) == 7


def test_turan_is_clique_free():
    from repro.counting import brute_force_count

    t = turan_graph(10, 3)
    assert brute_force_count(t, 4) == 0
    assert brute_force_count(t, 3) > 0


def test_multipartite_part_isolation():
    g = complete_multipartite([2, 3])
    assert not g.has_edge(0, 1)  # same part
    assert g.has_edge(0, 2)


def test_multipartite_edge_count():
    # K_{2,3}: 6 edges.
    assert complete_multipartite([2, 3]).num_edges == 6


def test_erdos_renyi_bounds_and_determinism():
    a = erdos_renyi(50, 0.2, seed=5)
    b = erdos_renyi(50, 0.2, seed=5)
    c = erdos_renyi(50, 0.2, seed=6)
    assert a == b
    assert a != c
    with pytest.raises(GraphFormatError):
        erdos_renyi(10, 1.5)
    assert erdos_renyi(10, 0.0).num_edges == 0
    assert erdos_renyi(6, 1.0) == complete_graph(6)


# ------------------------------------------------------------------ rmat
def test_rmat_size_and_determinism():
    g = rmat(7, 4.0, seed=1)
    assert g.num_vertices == 128
    assert g == rmat(7, 4.0, seed=1)


def test_rmat_invalid_probs():
    with pytest.raises(GraphFormatError):
        rmat(4, 4.0, a=0.9, b=0.9, c=0.9)
    with pytest.raises(GraphFormatError):
        rmat(-1)


def test_rmat_skew():
    g = rmat(9, 8.0, seed=2)
    # R-MAT produces a heavy tail: max degree far above average.
    assert g.max_degree > 4 * g.average_degree


# -------------------------------------------------------------- chung-lu
def test_power_law_degrees_range():
    w = power_law_degrees(1000, 2.5, 2.0, 50.0, seed=0)
    assert w.min() >= 2.0 and w.max() <= 50.0


def test_power_law_validation():
    with pytest.raises(GraphFormatError):
        power_law_degrees(10, 0.9)
    with pytest.raises(GraphFormatError):
        power_law_degrees(10, 2.5, 5.0, 1.0)
    with pytest.raises(GraphFormatError):
        power_law_degrees(-1, 2.5)


def test_chung_lu_matches_weights_roughly():
    w = np.full(400, 10.0)
    g = chung_lu(w, seed=7)
    assert 3.0 < g.average_degree < 12.0


def test_chung_lu_validation():
    with pytest.raises(GraphFormatError):
        chung_lu(np.array([-1.0, 2.0]))
    with pytest.raises(GraphFormatError):
        chung_lu(np.zeros((2, 2)))
    assert chung_lu(np.zeros(5)).num_edges == 0


# --------------------------------------------------------------- planted
def test_clique_edges_count():
    assert clique_edges(np.array([3, 5, 9])).shape == (3, 2)


def test_planted_cliques_present():
    from repro.graph.build import from_edge_array
    from repro.counting import brute_force_count

    edges = planted_cliques(30, [5], seed=1)
    g = from_edge_array(edges, num_vertices=30)
    assert brute_force_count(g, 5) == 1


def test_planted_cliques_disjoint_without_overlap():
    edges = planted_cliques(100, [5, 5], seed=2, overlap=0.0)
    from repro.graph.build import from_edge_array

    g = from_edge_array(edges, num_vertices=100)
    assert g.num_edges == 20  # two disjoint K5s


def test_planted_cliques_overlap_shares_vertices():
    edges = planted_cliques(100, [8, 8], seed=3, overlap=1.0)
    used = np.unique(edges)
    assert used.size < 16  # full overlap reuses members


def test_planted_cliques_validation():
    with pytest.raises(GraphFormatError):
        planted_cliques(10, [0])
    with pytest.raises(GraphFormatError):
        planted_cliques(10, [5], overlap=2.0)
    with pytest.raises(GraphFormatError):
        planted_cliques(3, [5])


def test_planted_cliques_pool_restriction():
    pool = np.arange(10, dtype=np.int64)
    edges = planted_cliques(100, [6, 6], seed=4, overlap=0.0, pool=pool)
    assert np.unique(edges).max() < 10


# ---------------------------------------------------------------- overlay
def test_overlay_union():
    a = np.array([[0, 1]])
    b = np.array([[1, 2], [0, 1]])
    g = overlay(3, a, b)
    assert g.num_edges == 2


def test_overlay_accepts_graphs():
    g = overlay(4, complete_graph(3), np.array([[2, 3]]))
    assert g.num_edges == 4


def test_overlay_empty():
    assert overlay(3).num_edges == 0


def test_overlay_bad_shape():
    with pytest.raises(GraphFormatError):
        overlay(3, np.array([[1, 2, 3]]))


# ------------------------------------------------------------------- hub
def test_attach_assortative_hub_connects_top_two():
    g = erdos_renyi(50, 0.1, seed=8)
    order = np.argsort(g.degrees)[::-1]
    out = attach_assortative_hub(g, assortative=True, common_targets=0.5, seed=1)
    hub, second = int(order[0]), int(order[1])
    assert out.has_edge(hub, second)


def test_attach_disassortative_hub_adds_leaves():
    g = erdos_renyi(50, 0.1, seed=8)
    out = attach_assortative_hub(g, assortative=False, hub_extra=20, seed=1)
    assert out.num_vertices == 70
    # new leaves have degree 1
    assert all(out.degree(v) == 1 for v in range(50, 70))


def test_attach_hub_tiny_graph_noop():
    g = empty_graph(1)
    assert attach_assortative_hub(g, assortative=True) is g
