"""Property-based tests (hypothesis) for the core invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.counting import (
    brute_force_all_sizes,
    brute_force_count,
    count_all_sizes,
    count_kcliques,
    count_kcliques_enumeration,
    per_vertex_counts,
)
from repro.counting.binomial import binomial
from repro.graph.build import from_edge_array
from repro.ordering import (
    approx_core_ordering,
    core_ordering,
    degree_ordering,
    directionalize,
    max_out_degree,
)
from repro.parallel.sched import DynamicScheduler, StaticScheduler


# ------------------------------------------------------------ strategies
@st.composite
def small_graphs(draw, max_n=10):
    n = draw(st.integers(min_value=1, max_value=max_n))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(st.lists(st.sampled_from(possible), max_size=len(possible))
                 ) if possible else []
    arr = np.array(edges, dtype=np.int64).reshape(-1, 2)
    return from_edge_array(arr, num_vertices=n)


@st.composite
def orderings_of(draw, g):
    which = draw(st.integers(0, 2))
    if which == 0:
        return core_ordering(g)
    if which == 1:
        return degree_ordering(g)
    return approx_core_ordering(g, draw(st.sampled_from([-0.5, 0.1, 10.0])))


# ------------------------------------------------------------- counting
@settings(max_examples=60, deadline=None)
@given(data=st.data(), g=small_graphs(), k=st.integers(1, 6))
def test_sct_matches_brute_force(data, g, k):
    o = data.draw(orderings_of(g))
    assert count_kcliques(g, k, o).count == brute_force_count(g, k)


@settings(max_examples=40, deadline=None)
@given(g=small_graphs(), k=st.integers(1, 5))
def test_enumeration_matches_pivoting(g, k):
    o = degree_ordering(g)
    assert (
        count_kcliques_enumeration(g, k, o).count
        == count_kcliques(g, k, o).count
    )


@settings(max_examples=40, deadline=None)
@given(g=small_graphs())
def test_all_k_matches_brute_force(g):
    assert count_all_sizes(g, core_ordering(g)).all_counts == (
        brute_force_all_sizes(g)
    )


@settings(max_examples=40, deadline=None)
@given(g=small_graphs(), k=st.integers(1, 5))
def test_per_vertex_sum_identity(g, k):
    o = core_ordering(g)
    per = per_vertex_counts(g, k, o)
    assert sum(per) == k * count_kcliques(g, k, o).count


@settings(max_examples=30, deadline=None)
@given(g=small_graphs(), k=st.integers(2, 6))
def test_structures_agree(g, k):
    o = core_ordering(g)
    a = count_kcliques(g, k, o, structure="dense").count
    b = count_kcliques(g, k, o, structure="sparse").count
    c = count_kcliques(g, k, o, structure="remap").count
    assert a == b == c


@settings(max_examples=30, deadline=None)
@given(g=small_graphs())
def test_counts_monotone_structure(g):
    """More edges never decrease a clique count (on the same n)."""
    counts = count_all_sizes(g, core_ordering(g)).all_counts
    # sanity identities instead: counts[1] = n, counts[2] = m
    assert counts[1] == g.num_vertices
    if len(counts) > 2:
        assert counts[2] == g.num_edges


# ------------------------------------------------------------- ordering
@settings(max_examples=50, deadline=None)
@given(data=st.data(), g=small_graphs())
def test_orderings_are_permutations(data, g):
    o = data.draw(orderings_of(g))
    assert np.array_equal(np.sort(o.rank), np.arange(g.num_vertices))


@settings(max_examples=50, deadline=None)
@given(data=st.data(), g=small_graphs())
def test_directionalize_preserves_edges_and_acyclicity(data, g):
    o = data.draw(orderings_of(g))
    dag = directionalize(g, o)
    assert dag.num_edges == g.num_edges
    # rank increases along every edge => acyclic.
    for u, v in dag.edges():
        assert o.rank[u] < o.rank[v]


@settings(max_examples=50, deadline=None)
@given(data=st.data(), g=small_graphs())
def test_core_ordering_minimal_quality(data, g):
    o = data.draw(orderings_of(g))
    assert max_out_degree(g, core_ordering(g)) <= max_out_degree(g, o)


# ------------------------------------------------------------- binomial
@settings(max_examples=100, deadline=None)
@given(n=st.integers(0, 60), k=st.integers(-5, 65))
def test_binomial_matches_math(n, k):
    import math

    expected = math.comb(n, k) if 0 <= k <= n else 0
    assert binomial(n, k) == expected


# ------------------------------------------------------------ scheduler
@settings(max_examples=50, deadline=None)
@given(
    work=st.lists(st.floats(0.0, 1e6, allow_nan=False), max_size=200),
    threads=st.integers(1, 64),
    chunk=st.integers(1, 8),
)
def test_scheduler_conservation(work, threads, chunk):
    arr = np.array(work, dtype=np.float64)
    for cls in (StaticScheduler, DynamicScheduler):
        a = cls(chunk=chunk).assign(arr, threads)
        assert abs(a.total - arr.sum()) < 1e-6 * max(1.0, arr.sum())
        assert a.makespan >= arr.sum() / threads - 1e-9
