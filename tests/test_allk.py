"""Clique-size distribution helpers (Fig. 1 / Table I support)."""

import math

from repro.counting.allk import clique_size_distribution, max_clique_size
from repro.graph.build import from_edge_list
from repro.graph.generators import complete_graph, erdos_renyi, star_graph
from repro.ordering import degree_ordering


def test_distribution_complete_graph():
    dist = clique_size_distribution(complete_graph(7))
    assert dist == [0] + [math.comb(7, k) for k in range(1, 8)]


def test_max_clique_size_matches_networkx():
    import networkx as nx

    g = erdos_renyi(40, 0.35, seed=17)
    nxg = nx.Graph()
    nxg.add_nodes_from(range(40))
    nxg.add_edges_from(g.edges())
    expected = max(len(c) for c in nx.find_cliques(nxg))
    assert max_clique_size(g) == expected


def test_distribution_peak_of_planted_clique():
    """A graph dominated by one big clique peaks at ~ k_max / 2 —
    the paper's Fig. 1 observation."""
    edges = [(u, v) for u in range(20) for v in range(u + 1, 20)]
    edges += [(19 + i, 20 + i) for i in range(30)]  # sparse tail
    g = from_edge_list(edges)
    dist = clique_size_distribution(g)
    peak = max(range(len(dist)), key=lambda k: dist[k])
    assert peak == 10  # C(20, k) maximized at k = 10


def test_accepts_explicit_ordering():
    g = star_graph(5)
    assert max_clique_size(g, degree_ordering(g)) == 2
