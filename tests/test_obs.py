"""Invariant suite for the observability layer.

Three families of guarantees, held over the shared 40-graph corpus and
both kernel backends:

1. **Observation is free of side effects** — counts, counters and
   per-root arrays are bit-identical with metrics on vs. off, on both
   kernels, for every engine (SCT, enumeration, Pivoter config, hybrid,
   forest).
2. **The registry speaks the engines' exact integers** — every
   canonical metric equals the private tally it replaced:
   ``engine_nodes_visited_total`` == recursion ``function_calls`` ==
   the controller's ``spent.nodes`` on clean runs; kernel call counts
   are backend-invariant; forest cache hits + misses == ``get_forest``
   calls; ordering/stats migrations reproduce their old values.
3. **The plumbing itself** — registry label identity, no-op singletons
   on the disabled path, profiler accumulation, bench-harness bridges.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from tests.corpus import GRAPHS, IDS, ordering, truth
from repro import obs
from repro.bench.harness import (
    metrics_summary_lines,
    run_with_metrics,
    write_json_artifact,
)
from repro.core import count_cliques
from repro.core.hybrid import count_cliques_hybrid
from repro.counting import count_kcliques
from repro.counting.arbcount import count_kcliques_enumeration
from repro.counting.counters import Counters
from repro.counting.forest import build_forest, get_forest
from repro.counting.pivoter import run_pivoter
from repro.graph.generators import erdos_renyi
from repro.graph.stats import count_triangles, heuristic_inputs
from repro.kernels import KERNELS, available_kernels, resolve_kernel
from repro.obs import (
    COUNTER_METRICS,
    InstrumentedKernel,
    MetricsRegistry,
    NOOP_METRIC,
    Profiler,
)
from repro.ordering import core_ordering, degree_ordering
from repro.runtime import Budget, FaultPlan, FaultSpec, RunController

#: Every runnable registered backend (numba auto-enrolls when the
#: [jit] extra is importable).
KERNEL_NAMES = tuple(available_kernels())

# The kernel API surface the instrumented wrapper counts.
KERNEL_OPS = (
    "alloc_rows", "set_row", "load_rows", "intersect", "intersect_count",
    "count_rows", "pivot_select", "intersect_count_sweep",
    "pivot_select_sweep", "expand_children",
)

#: Ops whose counts depend only on the engine's root setup / query
#: shape, never on which recursion spine (scalar vs frontier) ran —
#: these must match across *all* backends.
PATH_INVARIANT_OPS = ("alloc_rows", "set_row", "load_rows", "count_rows")


def _kernel_calls(reg: MetricsRegistry, kernel: str) -> dict[str, int]:
    return {
        op: reg.value("kernel_calls_total", kernel=kernel, op=op)
        for op in KERNEL_OPS
    }


def _assert_identical(a, b):
    assert a.count == b.count
    assert a.all_counts == b.all_counts
    assert a.counters.as_dict() == b.counters.as_dict()
    assert np.array_equal(a.per_root_work, b.per_root_work)
    assert np.array_equal(a.per_root_memory, b.per_root_memory)


# ======================================================================
# 1. observation changes nothing — every engine, both kernels
# ======================================================================
@pytest.mark.parametrize("name,g", GRAPHS, ids=IDS)
@pytest.mark.parametrize("kernel", KERNEL_NAMES)
def test_sct_counts_bit_identical_obs_on_off(name, g, kernel):
    o = ordering(name, g)
    base = count_kcliques(g, 4, o, kernel=kernel)
    with obs.collecting() as reg:
        observed = count_kcliques(g, 4, o, kernel=kernel)
    _assert_identical(base, observed)
    assert base.count == truth(name, g, 4)
    # ...and the registry speaks the same exact integers.
    assert (
        reg.total("engine_nodes_visited_total")
        == base.counters.function_calls
    )


@pytest.mark.parametrize(
    "name,g", GRAPHS[::5], ids=IDS[::5]
)
@pytest.mark.parametrize("kernel", KERNEL_NAMES)
def test_enumeration_counts_bit_identical_obs_on_off(name, g, kernel):
    o = ordering(name, g)
    base = count_kcliques_enumeration(g, 4, o, kernel=kernel)
    with obs.collecting() as reg:
        observed = count_kcliques_enumeration(g, 4, o, kernel=kernel)
    _assert_identical(base, observed)
    assert reg.value(
        "engine_nodes_visited_total", engine="enumeration",
        structure="remap", kernel=kernel,
    ) == base.counters.function_calls


def test_pipeline_counts_bit_identical_obs_on_off():
    name, g = GRAPHS[1]
    base = count_cliques(g, 4)
    with obs.collecting(trace=True, profile=True):
        observed = count_cliques(g, 4)
    assert observed.count == base.count == truth(name, g, 4)
    assert (
        observed.counting.counters.as_dict()
        == base.counting.counters.as_dict()
    )


def test_hybrid_counts_bit_identical_obs_on_off():
    name, g = GRAPHS[2]
    base = count_cliques_hybrid(g, 3)
    with obs.collecting(trace=True):
        observed = count_cliques_hybrid(g, 3)
    assert observed.count == base.count == truth(name, g, 3)


def test_pivoter_counts_bit_identical_obs_on_off():
    name, g = GRAPHS[3]
    base = run_pivoter(g, 4)
    with obs.collecting(profile=True):
        observed = run_pivoter(g, 4)
    assert (
        observed.result.count == base.result.count == truth(name, g, 4)
    )
    assert (
        observed.result.counters.as_dict()
        == base.result.counters.as_dict()
    )


def test_forest_counts_bit_identical_obs_on_off():
    name, g = GRAPHS[4]
    o = ordering(name, g)
    base = build_forest(g, o)
    with obs.collecting():
        observed = build_forest(g, o)
    assert observed.count_all() == base.count_all()
    assert observed.count(3) == truth(name, g, 3)


# ======================================================================
# 2a. kernel call counts are class-invariant (same DAG, same spine)
# ======================================================================
@pytest.mark.parametrize("name,g", GRAPHS, ids=IDS)
def test_kernel_call_counts_identical_across_backends(name, g):
    # Backends sharing a recursion spine (scalar vs frontier — see
    # BitsetKernel.frontier) must report identical per-op call counts;
    # across spines the call totals legitimately change *shape*, but
    # the root-setup ops stay invariant (the per-root work counters
    # themselves are held exactly equal by test_differential).
    o = ordering(name, g)
    calls = {}
    for kernel in KERNEL_NAMES:
        with obs.collecting() as reg:
            count_kcliques(g, 4, o, kernel=kernel)
        calls[kernel] = _kernel_calls(reg, kernel)
    by_class: dict[bool, list[str]] = {}
    for kernel in KERNEL_NAMES:
        by_class.setdefault(KERNELS[kernel].frontier, []).append(kernel)
    for members in by_class.values():
        for other in members[1:]:
            assert calls[members[0]] == calls[other], (members[0], other)
    ref = KERNEL_NAMES[0]
    for kernel in KERNEL_NAMES[1:]:
        for op in PATH_INVARIANT_OPS:
            assert calls[ref][op] == calls[kernel][op], (kernel, op)
    # The engine did touch the kernel contract on any non-trivial graph.
    for kernel in KERNEL_NAMES:
        assert sum(calls[kernel].values()) > 0


def test_kernel_call_counts_enumeration_backend_invariant():
    # The enumeration engine only uses the scalar single-row ops, so
    # its call counts stay identical across every backend regardless
    # of frontier capability.
    name, g = GRAPHS[7]
    o = ordering(name, g)
    calls = {}
    for kernel in KERNEL_NAMES:
        with obs.collecting() as reg:
            count_kcliques_enumeration(g, 4, o, kernel=kernel)
        calls[kernel] = _kernel_calls(reg, kernel)
    for kernel in KERNEL_NAMES[1:]:
        assert calls[KERNEL_NAMES[0]] == calls[kernel]


# ======================================================================
# 2b. registry totals == controller budget meter (clean runs)
# ======================================================================
@pytest.mark.parametrize("name,g", GRAPHS[::4], ids=IDS[::4])
def test_nodes_visited_matches_controller_spent(name, g):
    o = ordering(name, g)
    with obs.collecting() as reg:
        ctl = RunController()
        r = count_kcliques(g, 4, o, controller=ctl)
    nodes = reg.total("engine_nodes_visited_total")
    assert nodes == r.counters.function_calls
    assert nodes == ctl.spent.nodes
    # guard() mirrored the meter into the runtime gauges on exit.
    assert reg.value("runtime_nodes_spent") == ctl.spent.nodes
    assert reg.value("runtime_roots_done") == ctl.spent.roots_done
    assert (
        reg.value("runtime_peak_memory_bytes")
        == ctl.spent.peak_memory_bytes
    )


def test_roots_total_matches_controller_roots_done():
    name, g = GRAPHS[5]
    with obs.collecting() as reg:
        ctl = RunController()
        count_kcliques(g, 4, ordering(name, g), controller=ctl)
    assert reg.total("engine_roots_total") == ctl.spent.roots_done


def test_checkpoint_writes_counted(tmp_path):
    name, g = GRAPHS[6]
    with obs.collecting() as reg:
        ctl = RunController(
            checkpoint_path=tmp_path / "ck.json", checkpoint_every=4
        )
        count_kcliques(g, 4, ordering(name, g), controller=ctl)
    complete = reg.value("runtime_checkpoint_writes_total", kind="complete")
    progress = reg.value("runtime_checkpoint_writes_total", kind="progress")
    assert complete == 1  # the guard's final save
    assert progress == g.num_vertices // 4  # one autosave per 4 roots


def test_degradation_event_counted_on_kernel_fallback():
    g = erdos_renyi(40, 0.3, seed=11)
    with obs.collecting() as reg:
        ctl = RunController(
            degrade=True,
            faults=FaultPlan(FaultSpec("kernel", at_op=2)),
        )
        r = count_kcliques(g, 4, core_ordering(g), kernel="wordarray",
                           controller=ctl)
    assert r.degraded_from == "wordarray"
    assert reg.value("runtime_degradations_total", rung="kernel_fallback") == 1


def test_budget_abort_still_publishes_partial_totals():
    g = erdos_renyi(40, 0.3, seed=11)
    o = core_ordering(g)
    with obs.collecting() as reg:
        ctl = RunController(Budget(max_nodes=50))
        with pytest.raises(Exception):
            count_kcliques(g, 4, o, controller=ctl)
    # The engine's `finally` published what was actually done before the
    # abort; the controller additionally charged the overflowing root,
    # so its meter is >= the engine's published total.
    published = reg.total("engine_nodes_visited_total")
    assert 0 < published <= ctl.spent.nodes


# ======================================================================
# 2c. forest cache and query accounting
# ======================================================================
def test_forest_cache_hits_plus_misses_equals_calls():
    g = erdos_renyi(30, 0.3, seed=97531)  # unique seed: cold cache
    o = core_ordering(g)
    with obs.collecting() as reg:
        calls = 0
        get_forest(g, o); calls += 1          # miss (cold)
        get_forest(g, o); calls += 1          # hit
        get_forest(g, o); calls += 1          # hit
        get_forest(g, o, cache=False); calls += 1  # forced miss
        hits = reg.value("forest_cache_hits_total")
        misses = reg.value("forest_cache_misses_total")
    assert hits + misses == calls
    assert hits == 2
    assert misses == 2


def test_forest_query_counters_per_query():
    name, g = GRAPHS[8]
    o = ordering(name, g)
    forest = build_forest(g, o)
    with obs.collecting() as reg:
        forest.count(3)
        forest.count(4)
        forest.count_all()
        forest.max_clique_size()
        forest.per_vertex(3)
        forest.per_edge(3)
    # per_vertex internally cross-checks through count(k), so the
    # "count" cell sees the two direct queries plus that internal one.
    assert reg.value("forest_queries_total", query="count") == 3
    assert reg.value("forest_queries_total", query="count_all") == 1
    assert reg.value("forest_queries_total", query="max_clique_size") == 1
    assert reg.value("forest_queries_total", query="per_vertex") == 1
    assert reg.value("forest_queries_total", query="per_edge") == 1


def test_forest_build_records_model_gauges():
    name, g = GRAPHS[9]
    with obs.collecting() as reg:
        forest = build_forest(g, ordering(name, g))
    assert reg.value("forest_leaves") == forest.num_leaves
    assert reg.value("forest_model_bytes") > 0
    assert reg.total("engine_runs_total") == 1


# ======================================================================
# 2d. ordering / stats tallies migrated onto the registry
# ======================================================================
@pytest.mark.parametrize("factory,name", [
    (core_ordering, "core"),
    (degree_ordering, "degree"),
])
def test_ordering_metrics_match_cost(factory, name):
    _, g = GRAPHS[10]
    with obs.collecting() as reg:
        o = factory(g)
    assert reg.value("ordering_computed_total", ordering=o.name) == 1
    assert (
        reg.value("ordering_rounds_total", ordering=o.name)
        == o.cost.num_rounds
    )
    assert (
        reg.value("ordering_work_units_total", ordering=o.name)
        == o.cost.total_work
    )
    assert (
        reg.value("ordering_num_vertices", ordering=o.name)
        == o.num_vertices
    )


def test_ordering_unchanged_by_observation():
    _, g = GRAPHS[11]
    base = core_ordering(g)
    with obs.collecting():
        observed = core_ordering(g)
    assert np.array_equal(base.rank, observed.rank)
    assert base.cost == observed.cost


def test_stats_heuristic_metrics_and_invariance():
    _, g = GRAPHS[12]
    base = heuristic_inputs(g)
    with obs.collecting() as reg:
        observed = heuristic_inputs(g)
        heuristic_inputs(g)
    assert observed == base
    assert reg.value("stats_heuristic_evals_total") == 2
    assert reg.value("stats_heuristic_work_total") > 0


def test_stats_triangle_metrics_match_truth():
    name, g = GRAPHS[13]
    with obs.collecting() as reg:
        total = count_triangles(g)
    assert total == truth(name, g, 3)
    assert reg.value("stats_triangles_found_total") == total
    assert reg.value("stats_triangle_scans_total") == g.num_edges


# ======================================================================
# 3. the plumbing: registry semantics
# ======================================================================
def test_counter_label_order_insensitive():
    reg = MetricsRegistry()
    reg.counter("x_total", a="1", b="2").inc(3)
    reg.counter("x_total", b="2", a="1").inc(4)
    assert reg.value("x_total", a="1", b="2") == 7
    assert len(reg) == 1


def test_total_sums_across_labels():
    reg = MetricsRegistry()
    reg.counter("x_total", k="a").inc(5)
    reg.counter("x_total", k="b").inc(7)
    reg.counter("y_total").inc(100)
    assert reg.total("x_total") == 12
    assert reg.value("x_total", k="a") == 5
    assert reg.value("x_total", k="missing") == 0


def test_counter_big_integers_stay_exact():
    reg = MetricsRegistry()
    big = (1 << 70) + 1
    reg.counter("x_total").inc(big)
    reg.counter("x_total").inc(1)
    assert reg.value("x_total") == big + 1  # no float rounding


def test_gauge_set_and_max():
    reg = MetricsRegistry()
    gauge = reg.gauge("g")
    gauge.set(10)
    gauge.max(5)
    assert reg.value("g") == 10
    gauge.max(20)
    assert reg.value("g") == 20


def test_histogram_buckets_and_moments():
    reg = MetricsRegistry()
    h = reg.histogram("h")
    for v in (0, 1, 2, 3, 100):
        h.observe(v)
    assert h.count == 5
    assert h.sum == 106
    assert h.min == 0 and h.max == 100
    assert h.mean == pytest.approx(106 / 5)
    assert sum(h.buckets.values()) == 5


def test_disabled_registry_hands_out_noop():
    reg = MetricsRegistry(enabled=False)
    assert reg.counter("x") is NOOP_METRIC
    assert reg.gauge("x") is NOOP_METRIC
    assert reg.histogram("x") is NOOP_METRIC
    reg.counter("x").inc(5)
    assert len(reg) == 0
    assert reg.value("x") == 0


def test_registry_reset_keeps_enabled_flag():
    reg = MetricsRegistry()
    reg.counter("x").inc()
    reg.reset()
    assert len(reg) == 0
    assert reg.enabled


def test_record_counters_catalog_mapping():
    reg = MetricsRegistry()
    c = Counters(function_calls=7, leaves=3, set_op_words=10.5,
                 index_lookups=2.4, subgraph_builds=2, build_words=5.0,
                 early_terminations=1, max_depth=4,
                 peak_subgraph_bytes=128)
    reg.record_counters(c, engine="sct")
    d = c.as_dict()
    for field, metric in COUNTER_METRICS.items():
        assert reg.value(metric, engine="sct") == d[field]
    assert reg.value("engine_max_depth", engine="sct") == 4
    assert reg.value("engine_peak_subgraph_bytes", engine="sct") == 128
    assert reg.value("engine_runs_total", engine="sct") == 1
    assert reg.value("engine_work_units_total", engine="sct") == c.work


def test_counters_publish_method_routes_to_registry():
    with obs.collecting() as reg:
        Counters(function_calls=9).publish(engine="test")
    assert reg.value("engine_nodes_visited_total", engine="test") == 9


def test_as_dict_and_write_json_roundtrip(tmp_path):
    reg = MetricsRegistry()
    reg.counter("x_total", k="a").inc(3)
    reg.gauge("g").set(7)
    reg.histogram("h").observe(2)
    path = tmp_path / "metrics.json"
    reg.write_json(path)
    loaded = json.loads(path.read_text())
    assert loaded == json.loads(json.dumps(reg.as_dict()))
    assert loaded["counters"][0] == {
        "name": "x_total", "labels": {"k": "a"}, "value": 3,
    }
    assert loaded["gauges"][0]["value"] == 7
    assert loaded["histograms"][0]["count"] == 1


# ======================================================================
# 3b. global state and scoping
# ======================================================================
def test_global_default_is_disabled():
    assert not obs.enabled()
    assert not obs.get_tracer().enabled
    assert not obs.get_profiler().enabled


def test_collecting_scopes_and_restores():
    before = obs.get_registry()
    with obs.collecting() as reg:
        assert obs.get_registry() is reg
        assert obs.enabled()
    assert obs.get_registry() is before
    assert not obs.enabled()


def test_collecting_restores_on_exception():
    before = obs.get_registry()
    with pytest.raises(RuntimeError):
        with obs.collecting():
            raise RuntimeError("boom")
    assert obs.get_registry() is before
    assert not obs.enabled()


def test_enable_disable_global():
    obs.enable(trace=True, profile=True)
    try:
        assert obs.enabled()
        assert obs.get_tracer().enabled
        assert obs.get_profiler().enabled
    finally:
        obs.disable()
    assert not obs.enabled()
    assert not obs.get_tracer().enabled
    assert not obs.get_profiler().enabled
    obs.get_registry().reset()
    obs.get_tracer().reset()
    obs.get_profiler().reset()


def test_hooks_are_noops_when_disabled():
    obs.record_run(Counters(function_calls=3), engine="x", structure="y",
                   kernel="z", roots=1)
    obs.degradation("sampling")
    obs.checkpoint_write(complete=True)
    obs.record_ordering(core_ordering(GRAPHS[0][1]))
    assert len(obs.get_registry()) == 0
    assert obs.get_tracer().records == []


# ======================================================================
# 3c. kernel instrumentation seam
# ======================================================================
def test_resolve_kernel_is_raw_when_disabled():
    k = resolve_kernel("wordarray")
    assert not isinstance(k, InstrumentedKernel)
    assert k.name == "wordarray"


def test_resolve_kernel_wraps_when_enabled():
    with obs.collecting():
        k = resolve_kernel("wordarray")
        assert isinstance(k, InstrumentedKernel)
        assert k.name == "wordarray"  # degradation checks still work
        # idempotent: wrapping a wrapper is identity
        assert obs.instrument_kernel(k) is k


def test_instrumented_kernel_counts_and_delegates():
    reg = MetricsRegistry()
    k = InstrumentedKernel(KERNELS["bigint"](), reg)
    rows = k.alloc_rows(4)
    k.set_row(rows, 0, np.array([1, 2], dtype=np.int64))
    k.set_row(rows, 1, np.array([0], dtype=np.int64))
    k.intersect(rows, 0, 0b1111)
    k.intersect_count(rows, 1, 0b1111)
    k.count_rows(rows, 0b1111)
    k.pivot_select(rows, 0b11, 2)
    assert reg.value("kernel_calls_total", kernel="bigint", op="alloc_rows") == 1
    assert reg.value("kernel_calls_total", kernel="bigint", op="set_row") == 2
    assert reg.value("kernel_calls_total", kernel="bigint", op="intersect") == 1
    assert reg.value("kernel_calls_total", kernel="bigint", op="intersect_count") == 1
    assert reg.value("kernel_calls_total", kernel="bigint", op="count_rows") == 1
    assert reg.value("kernel_calls_total", kernel="bigint", op="pivot_select") == 1
    # uncounted accessors still delegate
    assert k.num_rows(rows) == 4
    assert k.row_int(rows, 0) == 0b110


# ======================================================================
# 3d. profiler
# ======================================================================
def test_profiler_accumulates_same_name_phases():
    prof = Profiler(enabled=True)
    for _ in range(3):
        with prof.phase("counting"):
            pass
    assert prof.phases["counting"].calls == 3
    assert prof.phases["counting"].wall_seconds >= 0.0


def test_profiler_note_memory_updates_active_phases():
    prof = Profiler(enabled=True)
    with prof.phase("outer"):
        with prof.phase("inner"):
            prof.note_memory(512)
        prof.note_memory(128)
    assert prof.phases["inner"].peak_memory_bytes == 512
    assert prof.phases["outer"].peak_memory_bytes == 512


def test_profiler_disabled_records_nothing():
    prof = Profiler(enabled=False)
    with prof.phase("counting"):
        prof.note_memory(1024)
    assert prof.phases == {}


def test_profile_end_to_end_counting_phase():
    name, g = GRAPHS[14]
    with obs.collecting(profile=True):
        count_kcliques(g, 4, ordering(name, g))
        prof = obs.get_profiler()
        assert prof.phases["counting"].calls == 1
        assert prof.phases["counting"].peak_memory_bytes > 0
        lines = prof.summary_lines()
    assert any("counting" in line for line in lines)


# ======================================================================
# 3e. bench-harness bridges
# ======================================================================
def test_run_with_metrics_returns_detached_registry():
    name, g = GRAPHS[15]
    o = ordering(name, g)
    r, reg = run_with_metrics(count_kcliques, g, 4, o)
    assert r.count == truth(name, g, 4)
    assert reg.total("engine_nodes_visited_total") == r.counters.function_calls
    assert not obs.enabled()  # global default untouched
    assert obs.get_registry() is not reg


def test_metrics_summary_lines_mention_canonical_names():
    name, g = GRAPHS[16]
    _, reg = run_with_metrics(count_kcliques, g, 4, ordering(name, g))
    lines = metrics_summary_lines(reg)
    assert any("engine_nodes_visited_total" in line for line in lines)
    assert any("kernel_calls_total" in line for line in lines)


def test_write_json_artifact_embeds_registry(tmp_path):
    name, g = GRAPHS[17]
    _, reg = run_with_metrics(count_kcliques, g, 4, ordering(name, g))
    path = write_json_artifact(
        tmp_path / "bench.json", {"result": 1}, registry=reg
    )
    loaded = json.loads(path.read_text())
    assert loaded["metrics"] == json.loads(json.dumps(reg.as_dict()))
    assert loaded["result"] == 1
