"""Command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.graph.generators import complete_graph
from repro.graph.io import write_edge_list


def test_datasets_command(capsys):
    assert main(["datasets"]) == 0
    out = capsys.readouterr().out
    assert "livejournal" in out and "Friendster" in out


def test_count_dataset(capsys):
    assert main(["count", "--dataset", "baidu", "-k", "4"]) == 0
    out = capsys.readouterr().out
    assert "4-cliques:" in out
    assert "ordering:" in out


def test_count_edge_list(tmp_path, capsys):
    path = tmp_path / "k6.el"
    write_edge_list(complete_graph(6), path)
    assert main(["count", "--edge-list", str(path), "-k", "3"]) == 0
    assert "3-cliques: 20" in capsys.readouterr().out


def test_count_per_vertex(tmp_path, capsys):
    path = tmp_path / "k5.el"
    write_edge_list(complete_graph(5), path)
    assert main(["count", "--edge-list", str(path), "-k", "3",
                 "--per-vertex"]) == 0
    assert "top per-vertex counts" in capsys.readouterr().out


def test_count_forced_ordering(tmp_path, capsys):
    path = tmp_path / "k5.el"
    write_edge_list(complete_graph(5), path)
    assert main(["count", "--edge-list", str(path), "-k", "2",
                 "--ordering", "core", "--structure", "dense"]) == 0
    assert "3-cliques" not in capsys.readouterr().out


def test_dist_command(tmp_path, capsys):
    path = tmp_path / "k5.el"
    write_edge_list(complete_graph(5), path)
    assert main(["dist", "--edge-list", str(path), "--max-k", "3"]) == 0
    out = capsys.readouterr().out
    assert "k=  2: 10" in out
    assert "k=  3: 10" in out


def test_count_forest_build_then_use(tmp_path, capsys):
    path = tmp_path / "k6.el"
    forest = tmp_path / "k6.forest.npz"
    write_edge_list(complete_graph(6), path)
    assert main(["count", "--edge-list", str(path), "-k", "3",
                 "--per-vertex", "--forest", "build",
                 "--forest-path", str(forest)]) == 0
    built = capsys.readouterr().out
    assert "3-cliques: 20" in built
    assert forest.exists()
    assert main(["count", "--edge-list", str(path), "-k", "3",
                 "--per-vertex", "--forest", "use",
                 "--forest-path", str(forest)]) == 0
    used = capsys.readouterr().out
    assert "3-cliques: 20" in used
    # The loaded forest serves the same per-vertex attribution.
    assert used[used.index("top per-vertex"):] == \
        built[built.index("top per-vertex"):]


def test_dist_forest_build(tmp_path, capsys):
    path = tmp_path / "k5.el"
    write_edge_list(complete_graph(5), path)
    assert main(["dist", "--edge-list", str(path), "--max-k", "3",
                 "--forest", "build"]) == 0
    out = capsys.readouterr().out
    assert "k=  2: 10" in out
    assert "k=  3: 10" in out


def test_orderings_command(tmp_path, capsys):
    path = tmp_path / "g.el"
    write_edge_list(complete_graph(8), path)
    assert main(["orderings", "--edge-list", str(path), "-k", "3"]) == 0
    out = capsys.readouterr().out
    assert "barenboim-elkin" in out and "goodrich-pszona" in out


def test_unknown_dataset_is_clean_error(capsys):
    assert main(["count", "--dataset", "twitter", "-k", "3"]) == 2
    assert "error:" in capsys.readouterr().err


def test_bad_k_is_clean_error(tmp_path, capsys):
    path = tmp_path / "g.el"
    write_edge_list(complete_graph(3), path)
    assert main(["count", "--edge-list", str(path), "-k", "0"]) == 2
    assert "error:" in capsys.readouterr().err


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
