"""Ordering base types: rank construction, validation, cost profiles."""

import numpy as np
import pytest

from repro.errors import OrderingError
from repro.ordering.base import Ordering, ParallelCost, rank_from_keys


def test_rank_from_keys_single_key():
    rank = rank_from_keys(np.array([5, 1, 3]))
    assert rank.tolist() == [2, 0, 1]


def test_rank_from_keys_tiebreak_by_id():
    rank = rank_from_keys(np.array([1, 1, 1]))
    assert rank.tolist() == [0, 1, 2]


def test_rank_from_keys_secondary_key():
    primary = np.array([1, 1, 0])
    secondary = np.array([9, 2, 5])
    rank = rank_from_keys(primary, secondary)
    # vertex 2 first (primary 0), then vertex 1 (secondary 2), then 0.
    assert rank.tolist() == [2, 1, 0]


def test_rank_from_keys_validation():
    with pytest.raises(OrderingError):
        rank_from_keys()
    with pytest.raises(OrderingError):
        rank_from_keys(np.array([1, 2]), np.array([1]))


def test_ordering_requires_permutation():
    with pytest.raises(OrderingError):
        Ordering(name="bad", rank=np.array([0, 0, 1]))


def test_ordering_order_inverse():
    o = Ordering(name="x", rank=np.array([2, 0, 1]))
    assert o.order().tolist() == [1, 2, 0]
    assert o.num_vertices == 3


def test_ordering_rank_read_only():
    o = Ordering(name="x", rank=np.array([0, 1]))
    with pytest.raises(ValueError):
        o.rank[0] = 5


def test_empty_ordering():
    o = Ordering(name="empty", rank=np.array([], dtype=np.int64))
    assert o.num_vertices == 0


def test_parallel_cost_totals():
    c = ParallelCost(rounds=(10.0, 20.0), sequential=5.0)
    assert c.total_work == 35.0
    assert c.num_rounds == 2
    assert ParallelCost().total_work == 0.0
