# ok line then a negative id
0 1
1 2
2 -7
