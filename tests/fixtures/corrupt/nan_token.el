0 1
nan 2
