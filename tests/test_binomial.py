"""Binomial table: identities and range behavior."""

import math

import pytest

from repro.counting.binomial import BinomialTable, binomial, binomial_row


def test_matches_math_comb():
    for n in range(0, 40):
        for k in range(0, n + 1):
            assert binomial(n, k) == math.comb(n, k)


def test_out_of_range_is_zero():
    assert binomial(5, 6) == 0
    assert binomial(5, -1) == 0
    assert binomial(-1, 0) == 0


def test_row_contents():
    assert binomial_row(4) == (1, 4, 6, 4, 1)
    assert binomial_row(0) == (1,)


def test_row_sums_are_powers_of_two():
    for n in range(0, 25):
        assert sum(binomial_row(n)) == 2**n


def test_symmetry():
    for n in range(0, 30):
        row = binomial_row(n)
        assert row == tuple(reversed(row))


def test_pascal_identity():
    for n in range(1, 30):
        for k in range(1, n):
            assert binomial(n, k) == binomial(n - 1, k - 1) + binomial(n - 1, k)


def test_large_values_exact():
    # Exact big-int arithmetic far past 64-bit.
    assert binomial(200, 100) == math.comb(200, 100)


def test_fresh_table_row_validation():
    t = BinomialTable()
    with pytest.raises(ValueError):
        t.row(-1)
    assert t.choose(3, 2) == 3
