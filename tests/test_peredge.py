"""Per-edge k-clique counts."""

import math
from itertools import combinations

import pytest

from repro.counting import count_kcliques
from repro.counting.peredge import per_edge_counts
from repro.errors import CountingError
from repro.graph.generators import complete_graph, erdos_renyi, star_graph
from repro.ordering import core_ordering, directionalize


def _brute(g, k):
    adj = g.adjacency_sets()
    per = {}
    for sub in combinations(range(g.num_vertices), k):
        if all(b in adj[a] for a, b in combinations(sub, 2)):
            for a, b in combinations(sub, 2):
                per[(a, b)] = per.get((a, b), 0) + 1
    return per


@pytest.mark.parametrize("seed", range(4))
def test_matches_brute_force(seed):
    g = erdos_renyi(13, 0.5, seed=seed)
    o = core_ordering(g)
    for k in (2, 3, 4, 5):
        assert per_edge_counts(g, k, o) == _brute(g, k)


def test_sum_identity():
    g = erdos_renyi(25, 0.35, seed=9)
    o = core_ordering(g)
    for k in (3, 4):
        per = per_edge_counts(g, k, o)
        total = count_kcliques(g, k, o).count
        assert sum(per.values()) == math.comb(k, 2) * total


def test_k2_every_edge_once():
    g = erdos_renyi(15, 0.4, seed=2)
    per = per_edge_counts(g, 2, core_ordering(g))
    assert len(per) == g.num_edges
    assert set(per.values()) == {1}


def test_complete_graph_uniform():
    g = complete_graph(6)
    per = per_edge_counts(g, 4, core_ordering(g))
    assert set(per.values()) == {math.comb(4, 2)}


def test_star_no_triangles():
    g = star_graph(5)
    assert per_edge_counts(g, 3, core_ordering(g)) == {}


def test_keys_normalized():
    g = complete_graph(4)
    per = per_edge_counts(g, 3, core_ordering(g))
    assert all(u < v for u, v in per)


def test_structures_agree():
    g = erdos_renyi(18, 0.4, seed=4)
    o = core_ordering(g)
    ref = per_edge_counts(g, 3, o)
    for s in ("dense", "sparse"):
        assert per_edge_counts(g, 3, o, structure=s) == ref


def test_validation():
    g = complete_graph(4)
    with pytest.raises(CountingError):
        per_edge_counts(g, 1, core_ordering(g))
    dag = directionalize(g, core_ordering(g))
    with pytest.raises(CountingError):
        per_edge_counts(dag, 3, core_ordering(g))
    with pytest.raises(CountingError):
        per_edge_counts(g, 3, g)
