"""The five ordering algorithms: quality, structure, and edge cases."""

import numpy as np
import pytest

from repro.errors import OrderingError
from repro.graph.generators import (
    complete_graph,
    empty_graph,
    erdos_renyi,
    path_graph,
    rmat,
    star_graph,
)
from repro.ordering import (
    approx_core_ordering,
    centrality_ordering,
    core_numbers,
    core_ordering,
    degree_ordering,
    kcore_ordering,
    max_out_degree,
)
from repro.ordering.centrality import eigenvector_scores
from repro.ordering.kcore import kcore_decomposition


@pytest.fixture(scope="module")
def skew_graph():
    return rmat(9, 8.0, seed=11)


# ------------------------------------------------------------------ core
def test_core_numbers_match_networkx(skew_graph):
    import networkx as nx

    nxg = nx.Graph()
    nxg.add_nodes_from(range(skew_graph.num_vertices))
    nxg.add_edges_from(skew_graph.edges())
    expected = nx.core_number(nxg)
    got = core_numbers(skew_graph)
    assert all(got[v] == expected[v] for v in range(skew_graph.num_vertices))


def test_core_ordering_achieves_degeneracy(skew_graph):
    degeneracy = int(core_numbers(skew_graph).max())
    assert max_out_degree(skew_graph, core_ordering(skew_graph)) == degeneracy


def test_core_ordering_minimal_among_all(skew_graph):
    """The core ordering provably minimizes the max out-degree."""
    core_q = max_out_degree(skew_graph, core_ordering(skew_graph))
    for ordering in (
        degree_ordering(skew_graph),
        approx_core_ordering(skew_graph, -0.5),
        kcore_ordering(skew_graph),
        centrality_ordering(skew_graph),
    ):
        assert max_out_degree(skew_graph, ordering) >= core_q


def test_core_ordering_cost_is_sequential(skew_graph):
    cost = core_ordering(skew_graph).cost
    assert cost.sequential > 0
    assert cost.num_rounds == 0


def test_core_on_complete_graph():
    g = complete_graph(6)
    assert core_numbers(g).tolist() == [5] * 6
    assert max_out_degree(g, core_ordering(g)) == 5


def test_core_on_star():
    g = star_graph(7)
    assert core_numbers(g).max() == 1
    assert max_out_degree(g, core_ordering(g)) == 1


def test_core_on_empty():
    g = empty_graph(4)
    o = core_ordering(g)
    assert o.num_vertices == 4
    assert max_out_degree(g, o) == 0


def test_core_on_zero_vertices():
    g = empty_graph(0)
    assert core_ordering(g).num_vertices == 0


# ---------------------------------------------------------------- degree
def test_degree_ordering_ranks_by_degree(skew_graph):
    o = degree_ordering(skew_graph)
    order = o.order()
    degs = skew_graph.degrees[order]
    assert (np.diff(degs) >= 0).all()


def test_degree_ordering_one_round(skew_graph):
    assert degree_ordering(skew_graph).cost.num_rounds == 1


# ----------------------------------------------------------- approx core
def test_approx_core_low_eps_matches_core_quality(skew_graph):
    core_q = max_out_degree(skew_graph, core_ordering(skew_graph))
    approx_q = max_out_degree(skew_graph, approx_core_ordering(skew_graph, -0.5))
    # The paper finds eps = -0.5 typically matches the core ordering.
    assert approx_q <= int(core_q * 1.15) + 1


def test_approx_core_huge_eps_equals_degree(skew_graph):
    """eps -> inf removes everything in round one: the degree ordering."""
    approx = approx_core_ordering(skew_graph, 50_000.0)
    degree = degree_ordering(skew_graph)
    assert approx.cost.num_rounds == 1
    assert np.array_equal(approx.rank, degree.rank)


def test_approx_core_round_count_monotone_in_eps(skew_graph):
    rounds = [
        approx_core_ordering(skew_graph, eps).cost.num_rounds
        for eps in (-0.5, 0.1, 1.0)
    ]
    assert rounds[0] >= rounds[1] >= rounds[2]


def test_approx_core_regular_graph_fallback():
    # Complete graph: all degrees equal; threshold (1-0.5)*delta selects
    # nobody, so the min-degree fallback must fire and still terminate.
    g = complete_graph(8)
    o = approx_core_ordering(g, -0.5)
    assert o.num_vertices == 8
    assert max_out_degree(g, o) == 7


def test_approx_core_eps_validation():
    with pytest.raises(OrderingError):
        approx_core_ordering(complete_graph(3), -1.0)


def test_approx_core_levels_monotone_with_rank(skew_graph):
    o = approx_core_ordering(skew_graph, -0.3)
    order = o.order()
    levels = o.levels[order]
    assert (np.diff(levels) >= 0).all()


def test_approx_core_empty_graph():
    o = approx_core_ordering(empty_graph(3), -0.5)
    assert o.num_vertices == 3
    assert o.cost.num_rounds == 1  # everything removed at once


# ---------------------------------------------------------------- k-core
def test_kcore_decomposition_matches_core_numbers(skew_graph):
    core, rounds = kcore_decomposition(skew_graph)
    assert np.array_equal(core, core_numbers(skew_graph))
    assert len(rounds) >= 1


def test_kcore_ordering_quality_at_least_approx(skew_graph):
    """The paper observes parallel k-core is consistently worse than the
    low-eps approximation (fewer distinct levels)."""
    kq = max_out_degree(skew_graph, kcore_ordering(skew_graph))
    aq = max_out_degree(skew_graph, approx_core_ordering(skew_graph, -0.5))
    assert kq >= aq


def test_kcore_on_path():
    g = path_graph(5)
    core, _ = kcore_decomposition(g)
    assert core.max() == 1


# ------------------------------------------------------------ centrality
def test_eigenvector_scores_star_center_highest():
    g = star_graph(6)
    scores = eigenvector_scores(g)
    assert scores[0] == scores.max()


def test_eigenvector_scores_normalized():
    g = erdos_renyi(40, 0.2, seed=12)
    s = eigenvector_scores(g, iterations=5)
    assert s.max() == pytest.approx(1.0)
    assert s.min() >= 0.0


def test_centrality_iterations_validation():
    with pytest.raises(OrderingError):
        centrality_ordering(complete_graph(3), iterations=0)


def test_centrality_quality_between_core_and_degree(skew_graph):
    """Fig. 5: EC quality lies between core and degree orderings."""
    cq = max_out_degree(skew_graph, core_ordering(skew_graph))
    dq = max_out_degree(skew_graph, degree_ordering(skew_graph))
    eq = max_out_degree(skew_graph, centrality_ordering(skew_graph))
    assert cq <= eq <= max(dq, eq)  # never better than core
    assert eq <= dq + max(2, dq // 5)  # close to or better than degree


def test_centrality_rounds_count():
    g = erdos_renyi(30, 0.2, seed=13)
    o = centrality_ordering(g, iterations=3)
    assert o.cost.num_rounds == 4  # 3 SpMV rounds + 1 sort round


# ------------------------------------------------------------ all orderings
@pytest.mark.parametrize(
    "factory",
    [
        core_ordering,
        degree_ordering,
        lambda g: approx_core_ordering(g, -0.5),
        kcore_ordering,
        centrality_ordering,
    ],
    ids=["core", "degree", "approx", "kcore", "centrality"],
)
def test_all_orderings_are_permutations(factory, skew_graph):
    o = factory(skew_graph)
    assert np.array_equal(np.sort(o.rank), np.arange(skew_graph.num_vertices))
