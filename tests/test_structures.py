"""The three subgraph structures: identical topology, distinct models."""

import numpy as np
import pytest

from repro.counting.structures import (
    STRUCTURES,
    DenseStructure,
    RemapStructure,
    SparseStructure,
)
from repro.counting.structures.base import build_local_rows
from repro.graph.generators import complete_graph, erdos_renyi
from repro.ordering import core_ordering, directionalize


@pytest.fixture(scope="module")
def pair():
    g = erdos_renyi(50, 0.25, seed=31)
    dag = directionalize(g, core_ordering(g))
    return g, dag


def test_registry_names():
    assert set(STRUCTURES) == {"dense", "sparse", "remap"}
    for name, cls in STRUCTURES.items():
        assert cls.name == name


def test_build_local_rows_symmetrized():
    g = complete_graph(4)
    dag = directionalize(g, np.arange(4))
    out = dag.neighbors(0)  # {1, 2, 3}
    rows, words = build_local_rows(g, out)
    # Induced subgraph of K4's out-neighborhood is K3: each row has the
    # other two bits set.
    assert [r.bit_count() for r in rows] == [2, 2, 2]
    assert words > 0


def test_rows_symmetric_within_subgraph(pair):
    g, dag = pair
    out = dag.neighbors(int(np.argmax(dag.degrees)))
    rows, _ = build_local_rows(g, out)
    d = out.size
    for i in range(d):
        for j in range(d):
            assert ((rows[i] >> j) & 1) == ((rows[j] >> i) & 1)
    for i in range(d):
        assert (rows[i] >> i) & 1 == 0  # no self loops


def test_all_structures_same_rows(pair):
    g, dag = pair
    structs = [cls(g, dag) for cls in STRUCTURES.values()]
    for v in range(g.num_vertices):
        ctxs = [s.build(v) for s in structs]
        d = ctxs[0].d
        assert all(c.d == d for c in ctxs)
        for i in range(d):
            ref = ctxs[0].row(i)
            assert all(c.row(i) == ref for c in ctxs[1:])


def test_dense_slot_reuse(pair):
    g, dag = pair
    dense = DenseStructure(g, dag)
    c1 = dense.build(0)
    rows1 = [c1.row(i) for i in range(c1.d)]
    dense.build(1)  # rebuild for another root
    c3 = dense.build(0)  # and back
    assert [c3.row(i) for i in range(c3.d)] == rows1


def test_memory_model_ordering(pair):
    g, dag = pair
    v = int(np.argmax(dag.degrees))
    dense = DenseStructure(g, dag).build(v)
    sparse = SparseStructure(g, dag).build(v)
    remap = RemapStructure(g, dag).build(v)
    assert dense.memory_bytes > sparse.memory_bytes > remap.memory_bytes
    # The dense index alone is |V| pointers.
    assert dense.memory_bytes >= 8 * g.num_vertices


def test_lookup_weights(pair):
    g, dag = pair
    assert DenseStructure(g, dag).build(0).lookup_weight == 1.0
    assert SparseStructure(g, dag).build(0).lookup_weight == 1.2
    assert RemapStructure(g, dag).build(0).lookup_weight == 1.0


def test_structure_requires_graph_dag_pair(pair):
    g, dag = pair
    with pytest.raises(ValueError):
        RemapStructure(g, g)
    with pytest.raises(ValueError):
        RemapStructure(dag, dag)
    g2 = erdos_renyi(10, 0.3, seed=1)
    with pytest.raises(ValueError):
        RemapStructure(g2, dag)


def test_zero_outdegree_root(pair):
    g, dag = pair
    sinks = [v for v in range(g.num_vertices) if dag.degree(v) == 0]
    assert sinks, "core ordering guarantees at least one sink"
    ctx = RemapStructure(g, dag).build(sinks[0])
    assert ctx.d == 0


def test_bitset_bytes_model(pair):
    g, dag = pair
    s = RemapStructure(g, dag)
    assert s.bitset_bytes(0) == 0
    assert s.bitset_bytes(64) == 64 * 8
    assert s.bitset_bytes(65) == 65 * 2 * 8


# ----------------------------------------------------------------------
# kernel-backend plumbing and the dense stale-slot regression
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kernel", ["bigint", "wordarray"])
def test_structures_same_rows_across_kernels(pair, kernel):
    g, dag = pair
    for cls in STRUCTURES.values():
        base = cls(g, dag)  # default bigint
        alt = cls(g, dag, kernel=kernel)
        for v in range(0, g.num_vertices, 7):
            cb = base.build(v)
            ca = alt.build(v)
            assert ca.d == cb.d
            assert ca.kernel.name == kernel
            for i in range(cb.d):
                assert ca.row(i) == cb.row(i), (cls.name, v, i)


@pytest.mark.parametrize("kernel", ["bigint", "wordarray"])
def test_dense_no_stale_adjacency_between_roots(pair, kernel):
    """Regression: back-to-back builds must not leak adjacency.

    The dense structure reuses one |V|-sized slot array across roots;
    a reset bug (stale ``_touched`` bookkeeping) would let root A's
    rows alias into root B's subgraph.  Compare every back-to-back
    build against a fresh structure that cannot have stale state.
    """
    g, dag = pair
    shared = DenseStructure(g, dag, kernel=kernel)
    roots = sorted(range(g.num_vertices),
                   key=lambda v: -dag.degree(v))[:6]
    for v in roots + list(reversed(roots)):  # revisit roots back-to-back
        got = shared.build(v)
        fresh = DenseStructure(g, dag, kernel=kernel).build(v)
        assert got.d == fresh.d
        for i in range(got.d):
            assert got.row(i) == fresh.row(i), (v, i)


@pytest.mark.parametrize("kernel", ["bigint", "wordarray"])
def test_dense_exception_mid_build_leaves_clean_slots(pair, kernel, monkeypatch):
    """A failed induction must leave the slot index clean: the next
    build starts from zeroed slots and an empty touched list."""
    import repro.counting.structures.dense as dense_mod

    g, dag = pair
    dense = DenseStructure(g, dag, kernel=kernel)
    hub = int(np.argmax(dag.degrees))
    dense.build(hub)  # populate slots with a large root

    real = dense_mod.build_local_rows

    def boom(*args, **kwargs):
        raise MemoryError("induced failure mid-build")

    monkeypatch.setattr(dense_mod, "build_local_rows", boom)
    with pytest.raises(MemoryError):
        dense.build(hub)
    monkeypatch.setattr(dense_mod, "build_local_rows", real)

    # The failed build reset everything it had touched; no stale
    # adjacency from the first build may survive.
    assert dense._touched == []
    assert all(s == 0 for s in dense._slots)
    ref = DenseStructure(g, dag, kernel=kernel).build(hub)
    got = dense.build(hub)
    assert [got.row(i) for i in range(got.d)] == [
        ref.row(i) for i in range(ref.d)
    ]
