"""The three subgraph structures: identical topology, distinct models."""

import numpy as np
import pytest

from repro.counting.structures import (
    STRUCTURES,
    DenseStructure,
    RemapStructure,
    SparseStructure,
)
from repro.counting.structures.base import build_local_rows
from repro.graph.generators import complete_graph, erdos_renyi
from repro.ordering import core_ordering, directionalize


@pytest.fixture(scope="module")
def pair():
    g = erdos_renyi(50, 0.25, seed=31)
    dag = directionalize(g, core_ordering(g))
    return g, dag


def test_registry_names():
    assert set(STRUCTURES) == {"dense", "sparse", "remap"}
    for name, cls in STRUCTURES.items():
        assert cls.name == name


def test_build_local_rows_symmetrized():
    g = complete_graph(4)
    dag = directionalize(g, np.arange(4))
    out = dag.neighbors(0)  # {1, 2, 3}
    rows, words = build_local_rows(g, out)
    # Induced subgraph of K4's out-neighborhood is K3: each row has the
    # other two bits set.
    assert [r.bit_count() for r in rows] == [2, 2, 2]
    assert words > 0


def test_rows_symmetric_within_subgraph(pair):
    g, dag = pair
    out = dag.neighbors(int(np.argmax(dag.degrees)))
    rows, _ = build_local_rows(g, out)
    d = out.size
    for i in range(d):
        for j in range(d):
            assert ((rows[i] >> j) & 1) == ((rows[j] >> i) & 1)
    for i in range(d):
        assert (rows[i] >> i) & 1 == 0  # no self loops


def test_all_structures_same_rows(pair):
    g, dag = pair
    structs = [cls(g, dag) for cls in STRUCTURES.values()]
    for v in range(g.num_vertices):
        ctxs = [s.build(v) for s in structs]
        d = ctxs[0].d
        assert all(c.d == d for c in ctxs)
        for i in range(d):
            ref = ctxs[0].row(i)
            assert all(c.row(i) == ref for c in ctxs[1:])


def test_dense_slot_reuse(pair):
    g, dag = pair
    dense = DenseStructure(g, dag)
    c1 = dense.build(0)
    rows1 = [c1.row(i) for i in range(c1.d)]
    dense.build(1)  # rebuild for another root
    c3 = dense.build(0)  # and back
    assert [c3.row(i) for i in range(c3.d)] == rows1


def test_memory_model_ordering(pair):
    g, dag = pair
    v = int(np.argmax(dag.degrees))
    dense = DenseStructure(g, dag).build(v)
    sparse = SparseStructure(g, dag).build(v)
    remap = RemapStructure(g, dag).build(v)
    assert dense.memory_bytes > sparse.memory_bytes > remap.memory_bytes
    # The dense index alone is |V| pointers.
    assert dense.memory_bytes >= 8 * g.num_vertices


def test_lookup_weights(pair):
    g, dag = pair
    assert DenseStructure(g, dag).build(0).lookup_weight == 1.0
    assert SparseStructure(g, dag).build(0).lookup_weight == 1.2
    assert RemapStructure(g, dag).build(0).lookup_weight == 1.0


def test_structure_requires_graph_dag_pair(pair):
    g, dag = pair
    with pytest.raises(ValueError):
        RemapStructure(g, g)
    with pytest.raises(ValueError):
        RemapStructure(dag, dag)
    g2 = erdos_renyi(10, 0.3, seed=1)
    with pytest.raises(ValueError):
        RemapStructure(g2, dag)


def test_zero_outdegree_root(pair):
    g, dag = pair
    sinks = [v for v in range(g.num_vertices) if dag.degree(v) == 0]
    assert sinks, "core ordering guarantees at least one sink"
    ctx = RemapStructure(g, dag).build(sinks[0])
    assert ctx.d == 0


def test_bitset_bytes_model(pair):
    g, dag = pair
    s = RemapStructure(g, dag)
    assert s.bitset_bytes(0) == 0
    assert s.bitset_bytes(64) == 64 * 8
    assert s.bitset_bytes(65) == 65 * 2 * 8
