"""Graph statistics: histograms, assortativity, heuristic inputs,
triangles."""

import numpy as np
import pytest

from repro.graph.build import from_edge_list
from repro.graph.generators import (
    complete_graph,
    empty_graph,
    erdos_renyi,
    path_graph,
    star_graph,
)
from repro.graph.stats import (
    assortativity,
    common_neighbor_fraction,
    count_triangles,
    degree_histogram,
    heuristic_inputs,
)
from repro.counting.reference import brute_force_count


def test_degree_histogram_complete():
    h = degree_histogram(complete_graph(5))
    assert h[4] == 5
    assert h.sum() == 5


def test_degree_histogram_star():
    h = degree_histogram(star_graph(6))
    assert h[1] == 6 and h[6] == 1


def test_degree_histogram_empty():
    h = degree_histogram(empty_graph(0))
    assert h.tolist() == [0]


def test_assortativity_star_negative():
    # Stars are maximally disassortative.
    assert assortativity(star_graph(10)) < -0.9


def test_assortativity_regular_graph_degenerate():
    # All degrees equal -> zero variance -> defined as 0.
    assert assortativity(complete_graph(6)) == 0.0


def test_assortativity_no_edges():
    assert assortativity(empty_graph(4)) == 0.0


def test_assortativity_bounded():
    g = erdos_renyi(80, 0.1, seed=9)
    r = assortativity(g)
    assert -1.0 <= r <= 1.0


def test_common_neighbor_fraction_triangle():
    g = from_edge_list([(0, 1), (1, 2), (0, 2), (0, 3), (1, 3)])
    # N(0) = {1,2,3}, N(1) = {0,2,3}; common = {2,3}; min degree = 3.
    assert common_neighbor_fraction(g, 0, 1) == pytest.approx(2 / 3)


def test_common_neighbor_fraction_no_overlap():
    g = path_graph(4)
    assert common_neighbor_fraction(g, 0, 1) == 0.0


def test_heuristic_inputs_star():
    hi = heuristic_inputs(star_graph(8))
    assert hi.hub == 0
    assert hi.hub_degree == 8
    assert hi.a == 1  # every neighbor is a leaf
    assert hi.common_fraction == 0.0


def test_heuristic_inputs_effective_scaling():
    g = star_graph(8)
    hi = heuristic_inputs(g, effective_num_vertices=1e6)
    assert hi.num_vertices == 1e6
    assert hi.a_over_v == pytest.approx(1 / 1e6)


def test_heuristic_inputs_empty():
    hi = heuristic_inputs(empty_graph(3))
    assert hi.a == 0 and hi.a_over_v == 0.0


def test_triangles_match_brute_force():
    for seed in range(4):
        g = erdos_renyi(14, 0.4, seed=seed)
        assert count_triangles(g) == brute_force_count(g, 3)


def test_triangles_closed_forms():
    assert count_triangles(complete_graph(6)) == 20
    assert count_triangles(star_graph(9)) == 0
    assert count_triangles(path_graph(10)) == 0
    assert count_triangles(empty_graph(0)) == 0
