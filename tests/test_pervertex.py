"""Per-vertex k-clique counts (the Sec. VIII extension)."""

import pytest

from repro.counting import count_kcliques, per_vertex_counts
from repro.counting.reference import brute_force_per_vertex
from repro.errors import CountingError
from repro.graph.generators import complete_graph, erdos_renyi, star_graph
from repro.ordering import core_ordering, directionalize


def test_matches_brute_force(small_suite):
    for g in small_suite:
        o = core_ordering(g)
        for k in (2, 3, 4):
            assert per_vertex_counts(g, k, o) == brute_force_per_vertex(g, k)


def test_sum_is_k_times_total():
    for seed in range(3):
        g = erdos_renyi(25, 0.35, seed=seed)
        o = core_ordering(g)
        for k in (3, 4, 5):
            per = per_vertex_counts(g, k, o)
            total = count_kcliques(g, k, o).count
            assert sum(per) == k * total


def test_complete_graph_uniform():
    import math

    g = complete_graph(7)
    per = per_vertex_counts(g, 4, core_ordering(g))
    assert per == [math.comb(6, 3)] * 7


def test_star_edges():
    g = star_graph(5)
    per = per_vertex_counts(g, 2, core_ordering(g))
    assert per[0] == 5
    assert per[1:] == [1] * 5


def test_structures_agree():
    g = erdos_renyi(20, 0.4, seed=9)
    o = core_ordering(g)
    ref = per_vertex_counts(g, 3, o, structure="remap")
    assert per_vertex_counts(g, 3, o, structure="dense") == ref
    assert per_vertex_counts(g, 3, o, structure="sparse") == ref


def test_invalid_inputs():
    g = complete_graph(4)
    with pytest.raises(CountingError):
        per_vertex_counts(g, 0, core_ordering(g))
    dag = directionalize(g, core_ordering(g))
    with pytest.raises(CountingError):
        per_vertex_counts(dag, 2, core_ordering(g))
    with pytest.raises(CountingError):
        per_vertex_counts(g, 2, g)
