"""Stress / cross-implementation consistency tests on mid-size graphs.

Slower than the unit suites (hundreds of vertices, many engines), but
still seconds each.  These catch disagreements that only appear beyond
brute-force scale.
"""

import pytest

from repro.counting import (
    count_all_sizes,
    count_kcliques,
    count_kcliques_enumeration,
    count_maximal_cliques,
    networkx_count,
)
from repro.graph.generators import chung_lu, erdos_renyi, power_law_degrees, rmat
from repro.ordering import (
    approx_core_ordering,
    barenboim_elkin_ordering,
    centrality_ordering,
    core_ordering,
    degree_ordering,
    goodrich_pszona_ordering,
    kcore_ordering,
)

GENERATORS = {
    "er-dense": lambda: erdos_renyi(120, 0.35, seed=100),
    "er-sparse": lambda: erdos_renyi(300, 0.05, seed=101),
    "rmat": lambda: rmat(8, 10.0, seed=102),
    "chung-lu": lambda: chung_lu(
        power_law_degrees(250, 2.2, 3.0, seed=103), seed=104
    ),
}

ALL_ORDERINGS = [
    core_ordering,
    degree_ordering,
    lambda g: approx_core_ordering(g, -0.5),
    lambda g: approx_core_ordering(g, 0.1),
    kcore_ordering,
    centrality_ordering,
    barenboim_elkin_ordering,
    goodrich_pszona_ordering,
]


@pytest.mark.slow
@pytest.mark.parametrize("gen", list(GENERATORS), ids=list(GENERATORS))
def test_k4_invariant_across_all_orderings(gen):
    g = GENERATORS[gen]()
    counts = {count_kcliques(g, 4, o(g)).count for o in ALL_ORDERINGS}
    assert len(counts) == 1


@pytest.mark.slow
@pytest.mark.parametrize("gen", list(GENERATORS), ids=list(GENERATORS))
def test_pivoting_vs_enumeration_vs_networkx(gen):
    g = GENERATORS[gen]()
    o = core_ordering(g)
    for k in (3, 5):
        sct = count_kcliques(g, k, o).count
        assert count_kcliques_enumeration(g, k, o).count == sct
        assert networkx_count(g, k) == sct


@pytest.mark.slow
@pytest.mark.parametrize("gen", list(GENERATORS), ids=list(GENERATORS))
def test_all_k_consistency(gen):
    g = GENERATORS[gen]()
    o = core_ordering(g)
    dist = count_all_sizes(g, o).all_counts
    assert dist[1] == g.num_vertices
    assert dist[2] == g.num_edges
    for k in (3, 4, 5):
        if k < len(dist):
            assert dist[k] == count_kcliques(g, k, o).count


@pytest.mark.slow
def test_maximal_count_vs_networkx_on_dense():
    import networkx as nx

    g = erdos_renyi(80, 0.4, seed=105)
    nxg = nx.Graph()
    nxg.add_nodes_from(range(80))
    nxg.add_edges_from(g.edges())
    assert count_maximal_cliques(g) == sum(1 for _ in nx.find_cliques(nxg))


@pytest.mark.slow
def test_structures_identical_counters_modulo_weights():
    """dense vs remap differ only in build/memory accounting; their tree
    statistics must be identical."""
    g = rmat(8, 10.0, seed=106)
    o = core_ordering(g)
    dense = count_kcliques(g, 6, o, structure="dense")
    remap = count_kcliques(g, 6, o, structure="remap")
    assert dense.counters.function_calls == remap.counters.function_calls
    assert dense.counters.leaves == remap.counters.leaves
    assert dense.counters.set_op_words == remap.counters.set_op_words
    # sparse weighs lookups 1.2x
    sparse = count_kcliques(g, 6, o, structure="sparse")
    assert sparse.counters.index_lookups == pytest.approx(
        1.2 * remap.counters.index_lookups
    )
