"""Property-based tests: word-array kernels == big-int semantics.

The big-int backend is the semantic oracle; every operation of every
registered backend must round-trip against it bit-for-bit — including
the pivot argmax tie-breaks and the perfect-pivot early exit that make
the engines' :class:`~repro.counting.counters.Counters`
backend-invariant.  Widths deliberately straddle the 64-bit word
boundary (empty rows, 1-bit rows, 63/64/65, multi-word).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CountingError
from repro.kernels import (
    DEFAULT_KERNEL,
    KERNELS,
    BigIntKernel,
    WordArrayKernel,
    resolve_kernel,
)

WIDTHS = [0, 1, 2, 7, 63, 64, 65, 100, 128, 130, 200]


# ------------------------------------------------------------ strategies
@st.composite
def rows_and_mask(draw):
    """(d, row masks without self-bits, a candidate mask)."""
    d = draw(st.sampled_from([1, 2, 5, 17, 63, 64, 65, 90, 130]))
    masks = [
        draw(st.integers(min_value=0, max_value=(1 << d) - 1)) & ~(1 << i)
        for i in range(d)
    ]
    P = draw(st.integers(min_value=0, max_value=(1 << d) - 1))
    return d, masks, P


def _pair(d, masks):
    bi, wa = BigIntKernel(), WordArrayKernel()
    return (bi, bi.rows_from_ints(masks, d)), (wa, wa.rows_from_ints(masks, d))


# ------------------------------------------------------------ registry
def test_registry_and_resolve():
    assert set(KERNELS) == {"bigint", "wordarray"}
    assert DEFAULT_KERNEL == "bigint"
    for name, cls in KERNELS.items():
        assert cls.name == name
        assert resolve_kernel(name).name == name
    inst = WordArrayKernel()
    assert resolve_kernel(inst) is inst
    assert resolve_kernel(None).name == "bigint"
    with pytest.raises(CountingError):
        resolve_kernel("avx512")


def test_resolve_returns_fresh_instances():
    # Backends hold scratch buffers; sharing instances across engines
    # would alias row storage.
    assert resolve_kernel("wordarray") is not resolve_kernel("wordarray")


# ------------------------------------------------------------ round-trips
@pytest.mark.parametrize("d", WIDTHS)
def test_row_int_round_trip(d):
    rng = np.random.default_rng(d)
    masks = [
        int(rng.integers(0, 2**63)) % (1 << d) & ~(1 << i) if d else 0
        for i in range(d)
    ]
    for kern in (BigIntKernel(), WordArrayKernel()):
        rows = kern.rows_from_ints(masks, d)
        assert kern.num_rows(rows) == d
        for i in range(d):
            assert kern.row_int(rows, i) == masks[i]
            assert kern.row_accessor(rows)(i) == masks[i]


@pytest.mark.parametrize("d", [1, 63, 64, 65, 130])
def test_empty_rows(d):
    for kern in (BigIntKernel(), WordArrayKernel()):
        rows = kern.alloc_rows(d)
        for i in range(d):
            assert kern.row_int(rows, i) == 0
        assert list(kern.count_rows(rows, (1 << d) - 1)) == [0] * d
        # set then clear a row
        kern.set_row(rows, 0, np.array([d - 1], dtype=np.int64))
        assert kern.row_int(rows, 0) == 1 << (d - 1)
        kern.set_row(rows, 0, np.array([], dtype=np.int64))
        assert kern.row_int(rows, 0) == 0


def test_zero_width_rows():
    for kern in (BigIntKernel(), WordArrayKernel()):
        rows = kern.alloc_rows(0)
        assert kern.num_rows(rows) == 0
        assert list(kern.count_rows(rows, 0)) == []


# ------------------------------------------------------------ op parity
@settings(max_examples=120, deadline=None)
@given(rows_and_mask())
def test_intersect_ops_match_bigint(data):
    d, masks, P = data
    (bi, rb), (wa, rw) = _pair(d, masks)
    assert list(bi.count_rows(rb, P)) == list(wa.count_rows(rw, P))
    for i in range(d):
        expect = masks[i] & P
        assert bi.intersect(rb, i, P) == expect
        assert wa.intersect(rw, i, P) == expect
        assert bi.intersect_count(rb, i, P) == (expect, expect.bit_count())
        assert wa.intersect_count(rw, i, P) == (expect, expect.bit_count())


@settings(max_examples=120, deadline=None)
@given(rows_and_mask())
def test_pivot_select_matches_bigint(data):
    d, masks, P = data
    pc = P.bit_count()
    if pc == 0:
        return
    (bi, rb), (wa, rw) = _pair(d, masks)
    assert bi.pivot_select(rb, P, pc) == wa.pivot_select(rw, P, pc)


def test_pivot_select_tie_break_is_lowest_id():
    # Two candidates with identical counts: the scalar scan keeps the
    # first maximum (ascending local id); the vectorized argmax must
    # break the tie identically.
    d = 70  # crosses a word boundary
    full = (1 << d) - 1
    masks = [full & ~(1 << i) for i in range(d)]  # complete graph K_d
    for kern in (BigIntKernel(), WordArrayKernel()):
        rows = kern.rows_from_ints(masks, d)
        best, best_row, best_cnt, edge_sum = kern.pivot_select(rows, full, d)
        assert best == 0  # every vertex ties; lowest id wins
        assert best_cnt == d - 1  # perfect pivot
        assert best_row == full & ~1
        assert edge_sum == d - 1  # scan stops at the first (perfect) row


def test_pivot_select_perfect_pivot_early_exit_accounting():
    # Row 2 is the first perfect pivot; the scan must charge rows 0-2
    # only, on both backends.
    d = 66
    sub = (1 << 5) - 1  # P = {0..4}
    masks = [0] * d
    masks[0] = 0b00010  # |row0 ∩ P| = 1
    masks[1] = 0b00101  # |row1 ∩ P| = 2
    masks[2] = 0b11011  # |row2 ∩ P| = 4 == pc-1 -> stop
    masks[3] = sub & ~(1 << 3)  # would also be perfect, never scanned
    masks[4] = 1 << 65  # out-of-P high word, never scanned
    for kern in (BigIntKernel(), WordArrayKernel()):
        rows = kern.rows_from_ints(masks, d)
        best, best_row, best_cnt, edge_sum = kern.pivot_select(rows, sub, 5)
        assert best == 2
        assert best_cnt == 4
        assert best_row == masks[2]
        assert edge_sum == 1 + 2 + 4


def test_pivot_select_respects_mask_outside_bits():
    # Bits of a row outside P must not leak into counts or best_row.
    d = 130
    masks = [((1 << d) - 1) & ~(1 << i) for i in range(d)]
    P = (1 << 3) | (1 << 64) | (1 << 129)
    for kern in (BigIntKernel(), WordArrayKernel()):
        rows = kern.rows_from_ints(masks, d)
        best, best_row, best_cnt, edge_sum = kern.pivot_select(rows, P, 3)
        assert best == 3
        assert best_cnt == 2  # the other two candidates
        assert best_row == P & ~(1 << 3)


def test_wordarray_buffer_reuse_does_not_corrupt_new_roots():
    # The word-array backend reuses one preallocated buffer across
    # alloc_rows calls; a later (smaller) allocation must start zeroed.
    kern = WordArrayKernel()
    big = kern.alloc_rows(130)
    for i in range(130):
        kern.set_row(big, i, np.arange(i + 1, dtype=np.int64))
    small = kern.alloc_rows(70)
    for i in range(70):
        assert kern.row_int(small, i) == 0
