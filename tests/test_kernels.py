"""Property-based tests: every backend == big-int semantics.

The big-int backend is the semantic oracle; every operation of every
registered backend must round-trip against it bit-for-bit — including
the pivot argmax tie-breaks and the perfect-pivot early exit that make
the engines' :class:`~repro.counting.counters.Counters`
backend-invariant.  The tier-2 frontier kernels
(``pivot_select_sweep`` / ``expand_children`` / the batched
``intersect_count_sweep``) are held to the scalar scan the same way,
on both their adaptive small-frontier scalar paths and their word-tile
vector paths.  Widths deliberately straddle the 64-bit word boundary
(empty rows, 1-bit rows, 63/64/65, multi-word).

Backends enroll through :func:`repro.kernels.available_kernels`, so the
numba backend is exercised exactly when the ``[jit]`` extra is
installed — its absence is a fallback, never a failure (the nopython
cores still run here as plain Python and are tested below either way).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CountingError, KernelUnavailableError
from repro.kernels import (
    DEFAULT_KERNEL,
    KERNEL_ENV,
    KERNELS,
    BigIntKernel,
    NumbaKernel,
    WordArrayKernel,
    available_kernels,
    kernel_availability,
    resolve_kernel,
)
from repro.kernels.jit import (
    _expand_core,
    _pivot_sweep_core,
    _popcount64,
    _sweep_core,
    numba_unavailable_reason,
)
from repro.kernels.wordarray import (
    _EXPAND_SCALAR_CHILDREN,
    _SWEEP_SCALAR_AREA,
)

WIDTHS = [0, 1, 2, 7, 63, 64, 65, 100, 128, 130, 200]

#: Every backend that can actually run here (numba auto-enrolls with
#: the ``[jit]`` extra); the differential suite uses the same roster.
AVAILABLE = tuple(available_kernels())
#: Backends checked against the big-int oracle.
OTHERS = tuple(n for n in AVAILABLE if n != "bigint")


def _kern(name):
    return KERNELS[name]()


def _all_kernels():
    return [_kern(name) for name in AVAILABLE]


# ------------------------------------------------------------ strategies
@st.composite
def rows_and_mask(draw):
    """(d, row masks without self-bits, a candidate mask)."""
    d = draw(st.sampled_from([1, 2, 5, 17, 63, 64, 65, 90, 130]))
    masks = [
        draw(st.integers(min_value=0, max_value=(1 << d) - 1)) & ~(1 << i)
        for i in range(d)
    ]
    P = draw(st.integers(min_value=0, max_value=(1 << d) - 1))
    return d, masks, P


@st.composite
def rows_and_frontier(draw):
    """(d, row masks, a frontier of non-empty candidate masks)."""
    d = draw(st.sampled_from([1, 2, 5, 17, 63, 64, 65, 90, 130]))
    masks = [
        draw(st.integers(min_value=0, max_value=(1 << d) - 1)) & ~(1 << i)
        for i in range(d)
    ]
    F = draw(st.integers(min_value=1, max_value=5))
    Ps = [
        draw(st.integers(min_value=1, max_value=(1 << d) - 1))
        for _ in range(F)
    ]
    return d, masks, Ps


def _pair(d, masks, other="wordarray"):
    bi, ot = BigIntKernel(), _kern(other)
    return (bi, bi.rows_from_ints(masks, d)), (ot, ot.rows_from_ints(masks, d))


def _dense_case(d, F, seed, density=0.9):
    """Seeded dense rows + frontier masks (drives the vector paths)."""
    rng = np.random.default_rng(seed)
    masks = []
    for i in range(d):
        bits = np.flatnonzero(rng.random(d) < density)
        m = 0
        for b in bits:
            m |= 1 << int(b)
        masks.append(m & ~(1 << i))
    Ps = []
    for _ in range(F):
        bits = np.flatnonzero(rng.random(d) < density)
        P = 0
        for b in bits:
            P |= 1 << int(b)
        Ps.append(P or 1)
    return masks, Ps


# ------------------------------------------------------------ registry
def test_registry_and_resolve(monkeypatch):
    # Neutralize any ambient backend override (the CI numba job runs
    # this whole suite under REPRO_KERNEL=numba).
    monkeypatch.delenv(KERNEL_ENV, raising=False)
    assert set(KERNELS) == {"bigint", "wordarray", "numba"}
    assert DEFAULT_KERNEL == "bigint"
    for name in AVAILABLE:
        cls = KERNELS[name]
        assert cls.name == name
        assert resolve_kernel(name).name == name
    inst = WordArrayKernel()
    assert resolve_kernel(inst) is inst
    assert resolve_kernel(None).name == "bigint"
    with pytest.raises(CountingError, match="registered backends"):
        resolve_kernel("avx512")
    # The unknown-kernel error names both the registry and what can
    # actually run here, so a typo is diagnosable from the message.
    with pytest.raises(CountingError, match="available here"):
        resolve_kernel("avx512")


def test_env_var_overrides_default(monkeypatch):
    monkeypatch.setenv(KERNEL_ENV, "wordarray")
    assert resolve_kernel(None).name == "wordarray"
    monkeypatch.setenv(KERNEL_ENV, "")
    assert resolve_kernel(None).name == DEFAULT_KERNEL
    monkeypatch.delenv(KERNEL_ENV, raising=False)
    assert resolve_kernel(None).name == DEFAULT_KERNEL


def test_availability_reports_why():
    avail = kernel_availability()
    assert set(avail) == set(KERNELS)
    assert avail["bigint"] is None
    assert avail["wordarray"] is None
    assert avail["numba"] == numba_unavailable_reason()
    assert set(AVAILABLE) == {n for n, why in avail.items() if why is None}


def test_numba_backend_contract():
    reason = numba_unavailable_reason()
    if reason is None:
        assert "numba" in AVAILABLE
        assert resolve_kernel("numba").name == "numba"
        assert NumbaKernel().frontier is True
    else:
        assert "numba" not in AVAILABLE
        with pytest.raises(KernelUnavailableError) as ei:
            NumbaKernel()
        assert ei.value.backend == "numba"
        assert reason in str(ei.value)
        # Configs written for JIT-capable hosts still run: resolving
        # falls back to wordarray with a warning naming the reason.
        with pytest.warns(RuntimeWarning, match="numba"):
            kern = resolve_kernel("numba")
        assert kern.name == "wordarray"


def test_resolve_returns_fresh_instances():
    # Backends hold scratch buffers; sharing instances across engines
    # would alias row storage.
    assert resolve_kernel("wordarray") is not resolve_kernel("wordarray")


# ------------------------------------------------------------ round-trips
@pytest.mark.parametrize("d", WIDTHS)
def test_row_int_round_trip(d):
    rng = np.random.default_rng(d)
    masks = [
        int(rng.integers(0, 2**63)) % (1 << d) & ~(1 << i) if d else 0
        for i in range(d)
    ]
    for kern in _all_kernels():
        rows = kern.rows_from_ints(masks, d)
        assert kern.num_rows(rows) == d
        for i in range(d):
            assert kern.row_int(rows, i) == masks[i]
            assert kern.row_accessor(rows)(i) == masks[i]


@pytest.mark.parametrize("d", WIDTHS)
def test_load_rows_matches_set_row(d):
    # The bulk CSR loader must land the exact rows the per-row path
    # does — including rebuilding any cached mirrors.
    rng = np.random.default_rng(1000 + d)
    masks = [
        int(rng.integers(0, 2**63)) % (1 << d) & ~(1 << i) if d else 0
        for i in range(d)
    ]
    bits = [np.flatnonzero([(m >> b) & 1 for b in range(d)]) for m in masks]
    indptr = np.zeros(d + 1, dtype=np.int64)
    if d:
        indptr[1:] = np.cumsum([len(b) for b in bits])
    indices = (
        np.concatenate(bits).astype(np.int64)
        if d and indptr[-1]
        else np.zeros(0, dtype=np.int64)
    )
    for kern in _all_kernels():
        rows = kern.alloc_rows(d)
        kern.load_rows(rows, indptr, indices)
        for i in range(d):
            assert kern.row_int(rows, i) == masks[i]
        # Loading over dirty storage must fully overwrite, not OR in.
        if d:
            kern.set_row(rows, 0, np.arange(d, dtype=np.int64))
            kern.load_rows(rows, indptr, indices)
            assert kern.row_int(rows, 0) == masks[0]


@pytest.mark.parametrize("d", [1, 63, 64, 65, 130])
def test_empty_rows(d):
    for kern in _all_kernels():
        rows = kern.alloc_rows(d)
        for i in range(d):
            assert kern.row_int(rows, i) == 0
        assert list(kern.count_rows(rows, (1 << d) - 1)) == [0] * d
        # set then clear a row
        kern.set_row(rows, 0, np.array([d - 1], dtype=np.int64))
        assert kern.row_int(rows, 0) == 1 << (d - 1)
        kern.set_row(rows, 0, np.array([], dtype=np.int64))
        assert kern.row_int(rows, 0) == 0


def test_zero_width_rows():
    for kern in _all_kernels():
        rows = kern.alloc_rows(0)
        assert kern.num_rows(rows) == 0
        assert list(kern.count_rows(rows, 0)) == []


def test_mask_native_round_trip():
    # Native masks are the frontier recursion's currency; the boundary
    # conversions must be exact in both directions.
    d = 130
    masks, Ps = _dense_case(d, 4, seed=3)
    for kern in _all_kernels():
        rows = kern.rows_from_ints(masks, d)
        for P in Ps:
            native = kern.to_native(rows, P)
            assert kern.mask_int(rows, native) == P
            assert kern.mask_int(rows, kern.to_native(rows, 0)) == 0


# ------------------------------------------------------------ op parity
@pytest.mark.parametrize("other", OTHERS)
@settings(max_examples=120, deadline=None)
@given(data=rows_and_mask())
def test_intersect_ops_match_bigint(other, data):
    d, masks, P = data
    (bi, rb), (ot, rw) = _pair(d, masks, other)
    assert list(bi.count_rows(rb, P)) == list(ot.count_rows(rw, P))
    for i in range(d):
        expect = masks[i] & P
        assert bi.intersect(rb, i, P) == expect
        assert ot.intersect(rw, i, P) == expect
        assert bi.intersect_count(rb, i, P) == (expect, expect.bit_count())
        assert ot.intersect_count(rw, i, P) == (expect, expect.bit_count())


@pytest.mark.parametrize("other", OTHERS)
@settings(max_examples=120, deadline=None)
@given(data=rows_and_mask())
def test_pivot_select_matches_bigint(other, data):
    d, masks, P = data
    pc = P.bit_count()
    if pc == 0:
        return
    (bi, rb), (ot, rw) = _pair(d, masks, other)
    assert bi.pivot_select(rb, P, pc) == ot.pivot_select(rw, P, pc)


def test_pivot_select_tie_break_is_lowest_id():
    # Two candidates with identical counts: the scalar scan keeps the
    # first maximum (ascending local id); the vectorized argmax must
    # break the tie identically.
    d = 70  # crosses a word boundary
    full = (1 << d) - 1
    masks = [full & ~(1 << i) for i in range(d)]  # complete graph K_d
    for kern in _all_kernels():
        rows = kern.rows_from_ints(masks, d)
        best, best_row, best_cnt, edge_sum = kern.pivot_select(rows, full, d)
        assert best == 0  # every vertex ties; lowest id wins
        assert best_cnt == d - 1  # perfect pivot
        assert best_row == full & ~1
        assert edge_sum == d - 1  # scan stops at the first (perfect) row


def test_pivot_select_perfect_pivot_early_exit_accounting():
    # Row 2 is the first perfect pivot; the scan must charge rows 0-2
    # only, on both backends.
    d = 66
    sub = (1 << 5) - 1  # P = {0..4}
    masks = [0] * d
    masks[0] = 0b00010  # |row0 ∩ P| = 1
    masks[1] = 0b00101  # |row1 ∩ P| = 2
    masks[2] = 0b11011  # |row2 ∩ P| = 4 == pc-1 -> stop
    masks[3] = sub & ~(1 << 3)  # would also be perfect, never scanned
    masks[4] = 1 << 65  # out-of-P high word, never scanned
    for kern in _all_kernels():
        rows = kern.rows_from_ints(masks, d)
        best, best_row, best_cnt, edge_sum = kern.pivot_select(rows, sub, 5)
        assert best == 2
        assert best_cnt == 4
        assert best_row == masks[2]
        assert edge_sum == 1 + 2 + 4


def test_pivot_select_respects_mask_outside_bits():
    # Bits of a row outside P must not leak into counts or best_row.
    d = 130
    masks = [((1 << d) - 1) & ~(1 << i) for i in range(d)]
    P = (1 << 3) | (1 << 64) | (1 << 129)
    for kern in _all_kernels():
        rows = kern.rows_from_ints(masks, d)
        best, best_row, best_cnt, edge_sum = kern.pivot_select(rows, P, 3)
        assert best == 3
        assert best_cnt == 2  # the other two candidates
        assert best_row == P & ~(1 << 3)


# ------------------------------------------------------ frontier kernels
def _scalar_sweep_reference(masks, Ps):
    """The scalar oracle for pivot_select_sweep: one big-int
    pivot_select per frontier mask."""
    bi = BigIntKernel()
    rb = bi.rows_from_ints(masks, len(masks))
    return [bi.pivot_select(rb, P, P.bit_count()) for P in Ps]


def _check_sweep(kern, masks, Ps):
    d = len(masks)
    rows = kern.rows_from_ints(masks, d)
    pcs = [P.bit_count() for P in Ps]
    native = [kern.to_native(rows, P) for P in Ps]
    bests, brows, bcnts, edges = kern.pivot_select_sweep(rows, native, pcs)
    expect = _scalar_sweep_reference(masks, Ps)
    for j, (eb, ebr, ebc, ees) in enumerate(expect):
        assert bests[j] == eb, (kern.name, j)
        assert kern.mask_int(rows, brows[j]) == ebr, (kern.name, j)
        assert bcnts[j] == ebc, (kern.name, j)
        assert edges[j] == ees, (kern.name, j)


def _check_expand(kern, masks, P):
    """Expand under the big-int oracle's pivot choice and compare the
    whole (ws, children, ccs) expansion to the scalar branch loop."""
    d = len(masks)
    bi = BigIntKernel()
    rb = bi.rows_from_ints(masks, d)
    pc = P.bit_count()
    best, best_row, _, _ = bi.pivot_select(rb, P, pc)
    if best < 0:
        return 0
    e_ws, e_children, e_ccs = BigIntKernel.expand_children(
        bi, rb, P, best, best_row
    )
    rows = kern.rows_from_ints(masks, d)
    ws, children, ccs = kern.expand_children(
        rows, kern.to_native(rows, P), best, kern.to_native(rows, best_row)
    )
    assert ws == e_ws, kern.name
    assert [kern.mask_int(rows, c) for c in children] == e_children, kern.name
    assert ccs == e_ccs, kern.name
    return len(ws)


@pytest.mark.parametrize("other", OTHERS)
@settings(max_examples=100, deadline=None)
@given(data=rows_and_frontier())
def test_pivot_select_sweep_matches_scalar(other, data):
    d, masks, Ps = data
    _check_sweep(_kern(other), masks, Ps)


@pytest.mark.parametrize("other", OTHERS)
@settings(max_examples=100, deadline=None)
@given(data=rows_and_mask())
def test_expand_children_matches_scalar(other, data):
    d, masks, P = data
    if P.bit_count() == 0:
        return
    _check_expand(_kern(other), masks, P)


@pytest.mark.parametrize("other", OTHERS)
@pytest.mark.parametrize("seed", [11, 12, 13])
def test_frontier_vector_paths_match_scalar(other, seed):
    # Dense 130-wide cases push the adaptive kernels onto their
    # word-tile vector paths (F * d over the sweep area, child count
    # over the expand threshold) — the paths hypothesis's small cases
    # rarely reach.
    d, F = 130, 20
    assert F * d >= _SWEEP_SCALAR_AREA
    masks, Ps = _dense_case(d, F, seed=seed, density=0.45)
    kern = _kern(other)
    _check_sweep(kern, masks, Ps)
    expanded = max(_check_expand(kern, masks, P) for P in Ps)
    assert expanded >= _EXPAND_SCALAR_CHILDREN


@pytest.mark.parametrize("other", OTHERS)
def test_frontier_sweep_entries_match(other):
    # The batched intersect_count_sweep form: every (mask, row) entry
    # read back through sweep_entry equals the direct big-int compute,
    # on every backend regardless of batch representation.
    d = 96
    masks, Ps = _dense_case(d, 6, seed=5, density=0.5)
    for kern in (BigIntKernel(), _kern(other)):
        rows = kern.rows_from_ints(masks, d)
        batch = kern.intersect_count_sweep(
            rows, [kern.to_native(rows, P) for P in Ps]
        )
        for j, P in enumerate(Ps):
            for i in range(d):
                expect = masks[i] & P
                assert kern.sweep_entry(rows, batch, j, i) == (
                    expect,
                    expect.bit_count(),
                ), (kern.name, j, i)


def test_pivot_sweep_empty_frontier():
    for kern in _all_kernels():
        rows = kern.rows_from_ints([0b10, 0b01], 2)
        assert kern.pivot_select_sweep(rows, [], []) == ([], [], [], [])


def test_expand_children_no_branches():
    # A perfect pivot leaves no branch vertices: cand == 0.
    d = 5
    full = (1 << d) - 1
    masks = [full & ~(1 << i) for i in range(d)]
    for kern in _all_kernels():
        rows = kern.rows_from_ints(masks, d)
        best, best_row, _, _ = kern.pivot_select(rows, full, d)
        ws, children, ccs = kern.expand_children(
            rows, kern.to_native(rows, full), best,
            kern.to_native(rows, best_row),
        )
        assert (ws, list(children), ccs) == ([], [], [])


# ------------------------------------------------------------ jit cores
# The nopython cores stay plain-Python callable when numba is missing,
# so their semantics are checkable in every environment — the compiled
# and interpreted paths share this exact code.
def test_jit_popcount64():
    rng = np.random.default_rng(9)
    for x in [0, 1, 2**63, 2**64 - 1, *rng.integers(0, 2**63, 20).tolist()]:
        assert int(_popcount64(np.uint64(x))) == int(x).bit_count()


def _word_rows(masks, d):
    wa = WordArrayKernel()
    rows = wa.rows_from_ints(masks, d)
    return wa, rows


def test_jit_pivot_sweep_core_matches_scalar():
    d = 130
    masks, Ps = _dense_case(d, 12, seed=21, density=0.55)
    wa, rows = _word_rows(masks, d)
    M = np.stack([wa.to_native(rows, P) for P in Ps])
    pcs = np.asarray([P.bit_count() for P in Ps], dtype=np.int64)
    pos, best_rows, cnts, edges = _pivot_sweep_core(rows.mat, M, pcs)
    for j, (eb, ebr, ebc, ees) in enumerate(_scalar_sweep_reference(masks, Ps)):
        assert int(pos[j]) == eb
        assert int.from_bytes(best_rows[j].tobytes(), "little") == ebr
        assert int(cnts[j]) == ebc
        assert int(edges[j]) == ees


def test_jit_expand_core_matches_scalar():
    d = 130
    masks, Ps = _dense_case(d, 4, seed=22, density=0.5)
    bi = BigIntKernel()
    rb = bi.rows_from_ints(masks, d)
    wa, rows = _word_rows(masks, d)
    for P in Ps:
        best, best_row, _, _ = bi.pivot_select(rb, P, P.bit_count())
        e_ws, e_children, e_ccs = BigIntKernel.expand_children(
            bi, rb, P, best, best_row
        )
        P0 = P & ~(1 << best)
        cand = P0 & ~best_row
        if cand == 0:
            continue
        ws_a = wa._mask_bits(rows, cand)
        P0w = np.frombuffer(
            P0.to_bytes(rows.nbytes_row, "little"), dtype=np.uint64
        ).copy()
        children, ccs = _expand_core(rows.mat, P0w, ws_a)
        assert [int(w) for w in ws_a] == e_ws
        assert [
            int.from_bytes(c.tobytes(), "little") for c in children
        ] == e_children
        assert [int(c) for c in ccs] == e_ccs


def test_jit_sweep_core_matches_direct():
    d = 70
    masks, Ps = _dense_case(d, 5, seed=23, density=0.5)
    wa, rows = _word_rows(masks, d)
    M = np.stack([wa.to_native(rows, P) for P in Ps])
    inter, counts = _sweep_core(rows.mat, M)
    for j, P in enumerate(Ps):
        for i in range(d):
            expect = masks[i] & P
            assert int.from_bytes(inter[j, i].tobytes(), "little") == expect
            assert int(counts[j, i]) == expect.bit_count()


# ------------------------------------------------------------ buffers
def test_wordarray_buffer_reuse_does_not_corrupt_new_roots():
    # The word-array backend reuses one preallocated buffer across
    # alloc_rows calls; a later (smaller) allocation must start zeroed.
    kern = WordArrayKernel()
    big = kern.alloc_rows(130)
    for i in range(130):
        kern.set_row(big, i, np.arange(i + 1, dtype=np.int64))
    small = kern.alloc_rows(70)
    for i in range(70):
        assert kern.row_int(small, i) == 0
