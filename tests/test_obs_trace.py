"""Trace wire-format round-trips, malformed-line fuzzing, and the
timeline adapter.

The JSON-lines span format must (1) round-trip bit-faithfully through
``parse_trace_lines`` / ``render_spans``, (2) reject every malformed
line with a line-numbered :class:`~repro.errors.TraceFormatError` —
never a bare ``KeyError``/``TypeError`` — mirroring the graph loader's
``GraphFormatError`` discipline, and (3) accept the simulated machine's
Gantt timelines through :mod:`repro.obs.adapter`, so both trace kinds
render through one report path.
"""

from __future__ import annotations

import io
import itertools
import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from tests.corpus import GRAPHS
from repro import obs
from repro.core import count_cliques
from repro.errors import ReproError, TraceFormatError
from repro.obs import (
    NOOP_SPAN,
    SpanNode,
    Tracer,
    parse_trace_file,
    parse_trace_lines,
    render_spans,
    timeline_to_records,
    timeline_to_spans,
)
from repro.parallel import DynamicScheduler, StaticScheduler
from repro.parallel.trace import simulate_timeline


def _tick_clock():
    """Deterministic monotonic clock: 1.0, 2.0, 3.0, ..."""
    counter = itertools.count(1)
    return lambda: float(next(counter))


# ======================================================================
# the disabled fast path
# ======================================================================
def test_disabled_tracer_hands_out_noop_singleton():
    tr = Tracer(enabled=False)
    s = tr.span("anything", attr=1)
    assert s is NOOP_SPAN
    assert tr.span("other") is s  # shared — no allocation per span
    assert tr.records == []


def test_noop_span_is_reentrant_and_silent():
    with NOOP_SPAN as a:
        with NOOP_SPAN as b:
            assert a is b is NOOP_SPAN
            b.event("ignored", x=1)


def test_disabled_tracer_event_records_nothing():
    tr = Tracer(enabled=False)
    tr.event("degradation", rung="sampling")
    assert tr.records == []


def test_obs_span_returns_noop_when_disabled():
    assert obs.span("x") is NOOP_SPAN


# ======================================================================
# emission semantics
# ======================================================================
def test_span_nesting_assigns_parents():
    tr = Tracer(clock=_tick_clock())
    with tr.span("root"):
        with tr.span("child"):
            with tr.span("grandchild"):
                pass
        with tr.span("sibling"):
            pass
    by_name = {r["name"]: r for r in tr.records}
    assert by_name["root"]["parent"] is None
    assert by_name["child"]["parent"] == by_name["root"]["id"]
    assert by_name["grandchild"]["parent"] == by_name["child"]["id"]
    assert by_name["sibling"]["parent"] == by_name["root"]["id"]


def test_spans_emitted_at_exit_children_before_parents():
    tr = Tracer(clock=_tick_clock())
    with tr.span("outer"):
        with tr.span("inner"):
            pass
    assert [r["name"] for r in tr.records] == ["inner", "outer"]


def test_event_attaches_to_innermost_span():
    tr = Tracer(clock=_tick_clock())
    with tr.span("outer"):
        with tr.span("inner") as inner:
            tr.event("via-tracer", n=1)
            inner.event("via-span", n=2)
    events = [r for r in tr.records if r["type"] == "event"]
    assert all(e["span"] == inner.span_id for e in events)


def test_span_records_error_attribute_on_exception():
    tr = Tracer(clock=_tick_clock())
    with pytest.raises(ValueError):
        with tr.span("failing"):
            raise ValueError("boom")
    (rec,) = tr.records
    assert rec["attrs"]["error"] == "ValueError"


def test_sink_streams_one_json_object_per_line():
    sink = io.StringIO()
    tr = Tracer(sink=sink, clock=_tick_clock())
    with tr.span("a", k=4):
        tr.event("e")
    lines = sink.getvalue().splitlines()
    assert len(lines) == 2
    for line in lines:
        json.loads(line)  # every line is standalone JSON


def test_tracer_reset_clears_state():
    tr = Tracer(clock=_tick_clock())
    with tr.span("a"):
        pass
    tr.reset()
    assert tr.records == []
    with tr.span("b") as s:
        assert s.span_id == 1  # ids restart


# ======================================================================
# parse round-trips
# ======================================================================
def test_dump_lines_roundtrip_rebuilds_tree():
    tr = Tracer(clock=_tick_clock())
    with tr.span("root", engine="sct"):
        with tr.span("child-a"):
            tr.event("degradation", rung="kernel_fallback")
        with tr.span("child-b"):
            pass
    (root,) = parse_trace_lines(tr.dump_lines())
    assert root.name == "root"
    assert root.attrs == {"engine": "sct"}
    assert [c.name for c in root.children] == ["child-a", "child-b"]
    assert root.children[0].events[0]["name"] == "degradation"
    assert root.duration == root.t1 - root.t0 > 0


def test_children_sorted_by_start_time():
    lines = [
        json.dumps({"type": "span", "id": 3, "parent": 1, "name": "late",
                    "t0": 5.0, "t1": 6.0}),
        json.dumps({"type": "span", "id": 2, "parent": 1, "name": "early",
                    "t0": 1.0, "t1": 2.0}),
        json.dumps({"type": "span", "id": 1, "parent": None, "name": "root",
                    "t0": 0.0, "t1": 7.0}),
    ]
    (root,) = parse_trace_lines(lines)
    assert [c.name for c in root.children] == ["early", "late"]


def test_span_with_missing_parent_becomes_root():
    lines = [
        json.dumps({"type": "span", "id": 9, "parent": 404,
                    "name": "orphan", "t0": 0.0, "t1": 1.0}),
    ]
    (root,) = parse_trace_lines(lines)
    assert root.name == "orphan"


def test_event_for_unclosed_span_is_dropped():
    # A truncated trace: the event's span record never made it out.
    lines = [
        json.dumps({"type": "event", "span": 7, "name": "checkpoint",
                    "attrs": {}, "t": 1.0}),
        json.dumps({"type": "span", "id": 1, "parent": None, "name": "a",
                    "t0": 0.0, "t1": 2.0}),
    ]
    (root,) = parse_trace_lines(lines)
    assert root.events == []


def test_parentless_event_is_dropped():
    lines = [
        json.dumps({"type": "event", "span": None, "name": "stray",
                    "attrs": {}, "t": 0.5}),
    ]
    assert parse_trace_lines(lines) == []


def test_blank_lines_are_skipped():
    lines = ["", "  ",
             json.dumps({"type": "span", "id": 1, "parent": None,
                         "name": "a", "t0": 0.0, "t1": 1.0}),
             ""]
    assert len(parse_trace_lines(lines)) == 1


def test_parse_trace_file_roundtrip(tmp_path):
    sink_path = tmp_path / "trace.jsonl"
    with open(sink_path, "w", encoding="utf-8") as sink:
        tr = Tracer(sink=sink, clock=_tick_clock())
        with tr.span("root"):
            with tr.span("child"):
                pass
    (root,) = parse_trace_file(sink_path)
    assert root.name == "root"
    assert root.children[0].name == "child"


def test_render_spans_tree_and_event_lines():
    tr = Tracer(clock=_tick_clock())
    with tr.span("root", engine="sct"):
        with tr.span("child"):
            tr.event("degradation", rung="sampling")
    text = render_spans(parse_trace_lines(tr.dump_lines()))
    lines = text.splitlines()
    assert lines[0].startswith("root ")
    assert "engine=sct" in lines[0]
    assert lines[1].startswith("  child")
    assert lines[2].strip() == "! degradation rung=sampling"


# ======================================================================
# malformed lines — typed, line-numbered rejection
# ======================================================================
@pytest.mark.parametrize("bad,fragment", [
    ("{not json", "line 1"),
    ('"a bare string"', "line 1"),
    ('[1, 2, 3]', "line 1"),
    ('{"type": "mystery"}', "line 1"),
    ('{"type": "span"}', "line 1"),
    ('{"type": "span", "id": 1, "name": "a", "t0": "zero", "t1": 1}',
     "line 1"),
    ('{"type": "span", "id": 1, "name": 5, "t0": 0, "t1": 1}', "line 1"),
    ('{"type": "span", "id": 1, "name": "a", "t0": 0, "t1": 1, '
     '"attrs": [1]}', "line 1"),
    ('{"type": "span", "id": 1, "parent": "x", "name": "a", "t0": 0, '
     '"t1": 1}', "line 1"),
    ('{"type": "event", "span": 1, "name": 7, "attrs": {}}', "line 1"),
    ('{"type": "event", "span": "x", "name": "e", "attrs": {}}', "line 1"),
    ('{"type": "event", "span": 1, "name": "e", "attrs": 3}', "line 1"),
])
def test_malformed_line_raises_trace_format_error(bad, fragment):
    with pytest.raises(TraceFormatError, match=fragment):
        parse_trace_lines([bad])


def test_duplicate_span_id_rejected_with_line_number():
    good = json.dumps({"type": "span", "id": 1, "parent": None,
                       "name": "a", "t0": 0.0, "t1": 1.0})
    with pytest.raises(TraceFormatError, match="line 2"):
        parse_trace_lines([good, good])


def test_error_line_number_is_one_based_and_counts_blanks():
    lines = ["", json.dumps({"type": "span", "id": 1, "parent": None,
                             "name": "a", "t0": 0.0, "t1": 1.0}),
             "{broken"]
    with pytest.raises(TraceFormatError, match="line 3"):
        parse_trace_lines(lines)


def test_trace_format_error_is_a_repro_error():
    assert issubclass(TraceFormatError, ReproError)


@settings(max_examples=200, deadline=None)
@given(text=st.text(alphabet='{}[]":,0123456789abct espan\n', max_size=200))
def test_trace_fuzz_never_crashes(text):
    """Arbitrary garbage either parses or raises TraceFormatError —
    never a bare KeyError/TypeError/ValueError."""
    try:
        roots = parse_trace_lines(text.splitlines())
    except TraceFormatError:
        return
    for root in roots:
        assert isinstance(root, SpanNode)


@settings(max_examples=100, deadline=None)
@given(cut=st.integers(0, 400), data=st.data())
def test_truncated_valid_trace_fuzz(cut, data):
    """Any prefix-truncation of a valid trace (the crash-forensics
    case) parses or is rejected cleanly, and parsed spans only lose
    ancestors — names stay a subset of the original."""
    tr = Tracer(clock=_tick_clock())
    with tr.span("root"):
        for i in range(3):
            with tr.span(f"child-{i}"):
                tr.event("e", i=i)
    full = "\n".join(tr.dump_lines())
    prefix = full[: min(cut, len(full))]
    try:
        roots = parse_trace_lines(prefix.splitlines())
    except TraceFormatError:
        return
    names = {"root", "child-0", "child-1", "child-2"}

    def walk(node):
        assert node.name in names
        for c in node.children:
            walk(c)

    for r in roots:
        walk(r)


# ======================================================================
# the timeline adapter — one report path for both trace kinds
# ======================================================================
def _timeline():
    work = np.array([3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0])
    return simulate_timeline(work, threads=3, scheduler=DynamicScheduler())


def test_timeline_to_spans_one_root_per_thread():
    tl = _timeline()
    roots = timeline_to_spans(tl)
    assert [r.name for r in roots] == [f"thread-{t}" for t in range(3)]
    busy = tl.busy_times()
    for t, root in enumerate(roots):
        assert root.attrs["thread"] == t
        # Conservation: the chunk spans hold exactly the thread's work.
        assert sum(c.duration for c in root.children) == pytest.approx(
            busy[t]
        )
        assert all(c.name == "chunk" for c in root.children)


def test_timeline_records_children_emitted_before_parents():
    records = timeline_to_records(_timeline())
    seen: set[int] = set()
    for rec in records:
        if rec["parent"] is not None:
            assert rec["parent"] not in seen  # parent not yet emitted
        seen.add(rec["id"])


def test_timeline_records_roundtrip_through_parser():
    tl = _timeline()
    lines = [json.dumps(r) for r in timeline_to_records(tl)]
    roots = parse_trace_lines(lines)
    direct = timeline_to_spans(tl)
    assert [r.name for r in roots] == [r.name for r in direct]
    for parsed, built in zip(roots, direct):
        assert len(parsed.children) == len(built.children)
        assert parsed.t1 == built.t1
    rendered = render_spans(roots)
    assert "thread-0" in rendered and "chunk" in rendered


def test_timeline_methods_delegate_to_adapter():
    tl = simulate_timeline(
        np.array([2.0, 2.0]), threads=2, scheduler=StaticScheduler()
    )
    assert [r.name for r in tl.to_spans()] == ["thread-0", "thread-1"]
    parsed = parse_trace_lines(json.dumps(r) for r in tl.to_span_records())
    assert len(parsed) == 2


# ======================================================================
# engine traces end to end
# ======================================================================
def test_pipeline_trace_shape():
    _, g = GRAPHS[0]
    with obs.collecting(trace=True):
        count_cliques(g, 4)
        lines = obs.get_tracer().dump_lines()
    (root,) = parse_trace_lines(lines)
    assert root.name == "pivotscale.run"
    child_names = [c.name for c in root.children]
    assert "pivotscale.ordering" in child_names
    assert "sct.count" in child_names
    sct = root.children[child_names.index("sct.count")]
    assert sct.attrs["engine"] == "sct"
    assert sct.attrs["kernel"] in ("bigint", "wordarray")
    assert "graph" in sct.attrs  # fingerprint present when tracing
    rendered = render_spans([root])
    assert rendered.splitlines()[0].startswith("pivotscale.run")


def test_trace_spans_absent_without_trace_flag():
    _, g = GRAPHS[0]
    with obs.collecting():  # metrics only
        count_cliques(g, 4)
        assert obs.get_tracer().records == []
