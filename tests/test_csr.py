"""CSRGraph construction, validation, and query behavior."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.csr import CSRGraph
from repro.graph.build import from_edge_list
from repro.graph.generators import complete_graph, empty_graph, path_graph


def test_empty_graph_properties():
    g = empty_graph(5)
    assert g.num_vertices == 5
    assert g.num_edges == 0
    assert g.max_degree == 0
    assert g.average_degree == 0.0
    assert list(g.edges()) == []


def test_zero_vertex_graph():
    g = empty_graph(0)
    assert g.num_vertices == 0
    assert g.num_edges == 0
    assert g.average_degree == 0.0


def test_basic_queries(k4):
    assert k4.num_vertices == 4
    assert k4.num_edges == 6
    assert k4.num_directed_edges == 12
    assert k4.max_degree == 3
    assert k4.degree(0) == 3
    assert list(k4.neighbors(0)) == [1, 2, 3]
    assert k4.has_edge(0, 3)
    assert not k4.has_edge(0, 0)


def test_has_edge_missing(triangle_plus_pendant):
    g = triangle_plus_pendant
    assert g.has_edge(0, 3)
    assert not g.has_edge(1, 3)
    assert not g.has_edge(2, 3)


def test_edges_yields_each_once(k4):
    edges = list(k4.edges())
    assert len(edges) == 6
    assert all(u < v for u, v in edges)
    assert len(set(edges)) == 6


def test_edge_array_matches_edges(k4):
    arr = k4.edge_array()
    assert sorted(map(tuple, arr.tolist())) == sorted(k4.edges())


def test_adjacency_sets(triangle_plus_pendant):
    adj = triangle_plus_pendant.adjacency_sets()
    assert adj[0] == {1, 2, 3}
    assert adj[3] == {0}


def test_degrees_read_only(k4):
    with pytest.raises(ValueError):
        k4.degrees[0] = 99
    with pytest.raises(ValueError):
        k4.indices[0] = 99


def test_equality_and_hash():
    a = complete_graph(4)
    b = complete_graph(4)
    c = path_graph(4)
    assert a == b
    assert hash(a) == hash(b)
    assert a != c
    assert a != "not a graph"


def test_repr_mentions_sizes(k4):
    text = repr(k4)
    assert "|V|=4" in text and "|E|=6" in text


def test_validation_rejects_bad_indptr():
    with pytest.raises(GraphFormatError):
        CSRGraph(np.array([1, 2]), np.array([0, 1]))
    with pytest.raises(GraphFormatError):
        CSRGraph(np.array([0, 5]), np.array([0]))


def test_validation_rejects_out_of_range_neighbor():
    with pytest.raises(GraphFormatError):
        CSRGraph(np.array([0, 1, 2]), np.array([2, 0]))


def test_validation_rejects_self_loop():
    with pytest.raises(GraphFormatError):
        CSRGraph(np.array([0, 1, 1]), np.array([0]))


def test_validation_rejects_unsorted_row():
    with pytest.raises(GraphFormatError):
        CSRGraph(np.array([0, 2, 2, 4]), np.array([2, 1, 0, 0]))


def test_validation_rejects_duplicate_neighbor():
    with pytest.raises(GraphFormatError):
        CSRGraph(np.array([0, 2, 3, 3]), np.array([1, 1, 0]))


def test_validation_rejects_asymmetry():
    # 0 -> 1 without 1 -> 0 in an undirected graph.
    with pytest.raises(GraphFormatError):
        CSRGraph(np.array([0, 1, 1]), np.array([1]))


def test_directed_graph_allows_asymmetry():
    g = CSRGraph(np.array([0, 1, 1]), np.array([1]), directed=True)
    assert g.directed
    assert g.num_edges == 1
    assert list(g.edges()) == [(0, 1)]


def test_non_1d_arrays_rejected():
    with pytest.raises(GraphFormatError):
        CSRGraph(np.zeros((2, 2)), np.array([0]))


def test_decreasing_indptr_rejected():
    with pytest.raises(GraphFormatError):
        CSRGraph(np.array([0, 2, 1, 3]), np.array([1, 2, 0]), directed=True)


def test_average_degree(k4):
    assert k4.average_degree == pytest.approx(3.0)


def test_from_edge_list_roundtrip():
    g = from_edge_list([(0, 1), (1, 2)])
    assert g.num_vertices == 3
    assert g.num_edges == 2
    assert list(g.neighbors(1)) == [0, 2]
