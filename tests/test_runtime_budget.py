"""Budgets and the run controller: limits, meters, error hierarchy."""

import pytest

from repro.core import PivotScaleConfig, count_cliques
from repro.counting.arbcount import (
    EnumerationBudgetExceeded,
    count_kcliques_enumeration,
)
from repro.counting.pervertex import per_vertex_counts
from repro.counting.peredge import per_edge_counts
from repro.counting.sct import SCTEngine
from repro.errors import (
    BudgetExceededError,
    CountingError,
    DeadlineExceededError,
    MemoryBudgetExceededError,
    NodeBudgetExceededError,
    ReproError,
)
from repro.graph.generators import erdos_renyi
from repro.ordering import core_ordering, degree_ordering
from repro.runtime import Budget, BudgetSpent, ManualClock, RunController


@pytest.fixture
def g():
    return erdos_renyi(50, 0.25, seed=7)


# ---------------------------------------------------------------- Budget
def test_budget_defaults_unlimited():
    b = Budget()
    assert b.unlimited
    assert not Budget(max_nodes=10).unlimited


@pytest.mark.parametrize(
    "kwargs",
    [
        {"deadline_seconds": 0.0},
        {"deadline_seconds": -1.0},
        {"max_nodes": 0},
        {"max_memory_bytes": -5},
    ],
)
def test_budget_rejects_nonpositive_limits(kwargs):
    with pytest.raises(CountingError):
        Budget(**kwargs)


def test_budget_spent_roundtrip():
    s = BudgetSpent(nodes=7, seconds=1.5, peak_memory_bytes=64, roots_done=3)
    assert BudgetSpent.from_dict(s.as_dict()) == s
    c = s.copy()
    c.nodes += 1
    assert s.nodes == 7


# ----------------------------------------------------- error hierarchy
def test_budget_error_hierarchy():
    for cls in (
        DeadlineExceededError,
        NodeBudgetExceededError,
        MemoryBudgetExceededError,
    ):
        assert issubclass(cls, BudgetExceededError)
    assert issubclass(BudgetExceededError, ReproError)
    # Back-compat alias: arbcount's old budget error is the new one.
    assert EnumerationBudgetExceeded is NodeBudgetExceededError


# ------------------------------------------------------------ controller
def test_node_budget_enforced(g):
    ctl = RunController(Budget(max_nodes=50))
    eng = SCTEngine(g, core_ordering(g))
    with pytest.raises(NodeBudgetExceededError) as ei:
        eng.count(4, controller=ctl)
    assert ei.value.spent is not None
    assert ei.value.spent.nodes > 50
    # Progress was metered up to the abort.
    assert ctl.spent.roots_done > 0


def test_deadline_enforced_without_sleeping():
    clock = ManualClock()
    ctl = RunController(Budget(deadline_seconds=10.0), clock=clock)
    ctl.begin({"engine": "test"})
    clock.advance(9.0)
    ctl.check_deadline()  # still inside the budget
    clock.advance(2.0)
    with pytest.raises(DeadlineExceededError) as ei:
        ctl.check_deadline()
    assert ei.value.spent.seconds == pytest.approx(11.0)


def test_memory_watermark_enforced(g):
    ctl = RunController(Budget(max_memory_bytes=1))
    eng = SCTEngine(g, core_ordering(g))
    with pytest.raises(MemoryBudgetExceededError) as ei:
        eng.count(4, controller=ctl)
    assert ei.value.spent.peak_memory_bytes > 1


def test_remaining_nodes_countdown():
    ctl = RunController(Budget(max_nodes=100))
    assert ctl.remaining_nodes() == 100
    ctl.charge_nodes(40)
    assert ctl.remaining_nodes() == 60
    assert RunController().remaining_nodes() is None


def test_resume_requires_checkpoint_path():
    with pytest.raises(CountingError):
        RunController(resume=True)


def test_spent_snapshot_includes_elapsed():
    clock = ManualClock()
    ctl = RunController(clock=clock)
    ctl.begin({"engine": "test"})
    clock.advance(2.5)
    assert ctl.spent_snapshot().seconds == pytest.approx(2.5)


# ------------------------------------------------- engines under budget
def test_enumeration_max_nodes_still_works(g):
    """The legacy max_nodes knob raises the unified error type."""
    with pytest.raises(NodeBudgetExceededError):
        count_kcliques_enumeration(g, 4, degree_ordering(g), max_nodes=5)


def test_enumeration_controller_and_max_nodes_compose(g):
    # Controller budget tighter than max_nodes: controller wins.
    ctl = RunController(Budget(max_nodes=10))
    with pytest.raises(NodeBudgetExceededError) as ei:
        count_kcliques_enumeration(
            g, 4, degree_ordering(g), max_nodes=10_000, controller=ctl
        )
    assert ei.value.spent is not None


def test_per_vertex_budget(g):
    ctl = RunController(Budget(max_nodes=20))
    with pytest.raises(NodeBudgetExceededError):
        per_vertex_counts(g, 3, core_ordering(g), controller=ctl)


def test_per_edge_budget(g):
    ctl = RunController(Budget(max_nodes=20))
    with pytest.raises(NodeBudgetExceededError):
        per_edge_counts(g, 3, core_ordering(g), controller=ctl)


def test_unbudgeted_run_unchanged(g):
    """Supervised (unlimited) and unsupervised runs agree exactly."""
    eng = SCTEngine(g, core_ordering(g))
    base = eng.count(4)
    ctl = RunController()
    again = SCTEngine(g, core_ordering(g)).count(4, controller=ctl)
    assert again.count == base.count
    assert again.counters.as_dict() == base.counters.as_dict()
    assert ctl.spent.roots_done == g.num_vertices


# ------------------------------------------------------- config plumbing
def test_config_builds_no_controller_by_default():
    cfg = PivotScaleConfig()
    assert not cfg.wants_controller
    assert cfg.make_controller() is None


def test_config_budget_validation():
    with pytest.raises(CountingError):
        PivotScaleConfig(max_nodes=-1)
    with pytest.raises(CountingError):
        PivotScaleConfig(resume=True)


def test_pipeline_respects_config_budget(g):
    cfg = PivotScaleConfig(max_nodes=30)
    with pytest.raises(NodeBudgetExceededError):
        count_cliques(g, 4, cfg)


def test_pipeline_reports_budget_spent(g):
    cfg = PivotScaleConfig(max_nodes=10**9)
    r = count_cliques(g, 4, cfg)
    assert not r.approximate
    assert r.budget_spent is not None
    assert r.budget_spent.roots_done == g.num_vertices
    assert r.budget_spent.nodes == r.counting.counters.function_calls
