"""Instrumentation counters: merging and derived quantities."""

from repro.counting.counters import Counters


def test_defaults_zero():
    c = Counters()
    assert c.work == 0.0
    assert c.function_calls == 0


def test_work_composition():
    c = Counters(set_op_words=10.0, index_lookups=5.0, build_words=2.0)
    assert c.work == 17.0


def test_merge_sums_and_maxes():
    a = Counters(function_calls=3, max_depth=4, peak_subgraph_bytes=100,
                 set_op_words=1.0)
    b = Counters(function_calls=2, max_depth=7, peak_subgraph_bytes=50,
                 set_op_words=2.0)
    a.merge(b)
    assert a.function_calls == 5
    assert a.max_depth == 7
    assert a.peak_subgraph_bytes == 100
    assert a.set_op_words == 3.0


def test_as_dict_keys():
    d = Counters().as_dict()
    assert "work" in d and "function_calls" in d and "peak_subgraph_bytes" in d
