"""Process-memory model (Sec. VI-D)."""

import pytest

from repro.bench.harness import geometric_mean
from repro.bench.paper_data import TABLE1, TABLE3
from repro.errors import ParallelModelError
from repro.perfmodel.memory import memory_reduction, process_memory_bytes


def test_dense_grows_with_threads():
    kw = dict(num_vertices=1e6, num_edges=1e7, structure="dense",
              max_out_degree=100)
    m1 = process_memory_bytes(threads=1, **kw)
    m64 = process_memory_bytes(threads=64, **kw)
    assert m64 > 10 * m1 / 2  # thread-local indexes dominate


def test_remap_nearly_thread_invariant():
    kw = dict(num_vertices=1e6, num_edges=1e7, structure="remap",
              max_out_degree=100)
    m1 = process_memory_bytes(threads=1, **kw)
    m64 = process_memory_bytes(threads=64, **kw)
    assert m64 < 1.1 * m1  # the graph dominates


def test_reduction_band_matches_paper():
    """The paper reports 6.63-40.24x reduction, geomean 17.39x."""
    reductions = []
    for name, (v, e, _, _) in TABLE1.items():
        maxout = TABLE3[name]["core"][3]
        reductions.append(
            memory_reduction(
                num_vertices=v * 1e6, num_edges=e * 1e6, threads=64,
                max_out_degree=maxout,
            )
        )
    gm = geometric_mean(reductions)
    assert all(2.0 < r < 60.0 for r in reductions)
    assert 5.0 < gm < 30.0


def test_paper_endpoints_order_of_magnitude():
    """Paper: DBLP dense 811.67 MB, Friendster dense 265.69 GB."""
    dblp = process_memory_bytes(
        num_vertices=0.3e6, num_edges=1.1e6, structure="dense",
        threads=64, max_out_degree=113,
    )
    friendster = process_memory_bytes(
        num_vertices=65.6e6, num_edges=1806.1e6, structure="dense",
        threads=64, max_out_degree=304,
    )
    assert 0.2e9 < dblp < 3e9
    assert 80e9 < friendster < 800e9


def test_validation():
    with pytest.raises(ParallelModelError):
        process_memory_bytes(
            num_vertices=10, num_edges=10, structure="dense",
            threads=0, max_out_degree=3,
        )
    with pytest.raises(ParallelModelError):
        process_memory_bytes(
            num_vertices=10, num_edges=10, structure="btree",
            threads=2, max_out_degree=3,
        )
