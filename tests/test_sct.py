"""The SCT pivot recursion: correctness against oracles and closed forms."""

import math

import numpy as np
import pytest

from repro.counting import (
    CountResult,
    SCTEngine,
    brute_force_all_sizes,
    brute_force_count,
    count_all_sizes,
    count_kcliques,
)
from repro.errors import CountingError
from repro.graph.build import from_edge_list
from repro.graph.generators import (
    complete_graph,
    complete_multipartite,
    cycle_graph,
    empty_graph,
    erdos_renyi,
    path_graph,
    star_graph,
    turan_graph,
)
from repro.ordering import core_ordering, degree_ordering, directionalize


# ----------------------------------------------------------- closed forms
def test_complete_graph_counts():
    g = complete_graph(10)
    o = core_ordering(g)
    for k in range(1, 11):
        assert count_kcliques(g, k, o).count == math.comb(10, k)


def test_k1_is_vertex_count():
    g = erdos_renyi(30, 0.2, seed=1)
    assert count_kcliques(g, 1, core_ordering(g)).count == 30


def test_k2_is_edge_count():
    g = erdos_renyi(30, 0.2, seed=2)
    assert count_kcliques(g, 2, core_ordering(g)).count == g.num_edges


def test_k_larger_than_graph():
    g = complete_graph(4)
    assert count_kcliques(g, 5, core_ordering(g)).count == 0


def test_turan_graph_zero():
    t = turan_graph(12, 4)
    assert count_kcliques(t, 5, core_ordering(t)).count == 0


def test_multipartite_elementary_symmetric():
    # k-cliques of a complete multipartite graph = e_k(part sizes).
    sizes = [2, 3, 4]
    g = complete_multipartite(sizes)
    o = core_ordering(g)
    # e_1 = 9, e_2 = 2*3+2*4+3*4 = 26, e_3 = 24.
    assert count_kcliques(g, 1, o).count == 9
    assert count_kcliques(g, 2, o).count == 26
    assert count_kcliques(g, 3, o).count == 24
    assert count_kcliques(g, 4, o).count == 0


def test_star_and_path_no_triangles():
    for g in (star_graph(6), path_graph(7), cycle_graph(8)):
        assert count_kcliques(g, 3, core_ordering(g)).count == 0


def test_empty_graph():
    g = empty_graph(5)
    o = core_ordering(g)
    assert count_kcliques(g, 1, o).count == 5
    assert count_kcliques(g, 2, o).count == 0


def test_zero_vertex_graph():
    g = empty_graph(0)
    assert count_kcliques(g, 1, core_ordering(g)).count == 0


# ------------------------------------------------------------ brute force
@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("p", [0.25, 0.55])
def test_random_graphs_match_brute_force(seed, p):
    g = erdos_renyi(13, p, seed=seed)
    o = core_ordering(g)
    for k in range(1, 10):
        assert count_kcliques(g, k, o).count == brute_force_count(g, k)


def test_all_structures_agree(small_suite):
    for g in small_suite:
        o = core_ordering(g)
        for k in (2, 3, 4):
            counts = {
                s: count_kcliques(g, k, o, structure=s).count
                for s in ("dense", "sparse", "remap")
            }
            assert len(set(counts.values())) == 1, counts


def test_all_orderings_agree():
    g = erdos_renyi(40, 0.3, seed=7)
    ref = count_kcliques(g, 4, core_ordering(g)).count
    assert count_kcliques(g, 4, degree_ordering(g)).count == ref
    rng = np.random.default_rng(0)
    from repro.ordering.base import Ordering

    rand = Ordering(name="random", rank=rng.permutation(40))
    assert count_kcliques(g, 4, rand).count == ref


# ----------------------------------------------------------------- all-k
def test_all_k_matches_brute_force(small_suite):
    for g in small_suite:
        got = count_all_sizes(g, core_ordering(g)).all_counts
        assert got == brute_force_all_sizes(g)


def test_all_k_consistent_with_single_k():
    g = erdos_renyi(35, 0.3, seed=8)
    o = core_ordering(g)
    dist = count_all_sizes(g, o).all_counts
    for k in range(1, len(dist)):
        assert count_kcliques(g, k, o).count == dist[k]


def test_all_k_max_k_truncation():
    g = complete_graph(8)
    r = count_all_sizes(g, core_ordering(g), max_k=3)
    assert len(r.all_counts) == 4
    assert r.all_counts[3] == math.comb(8, 3)


def test_max_clique_size_property():
    g = complete_graph(6)
    r = count_all_sizes(g, core_ordering(g))
    assert r.max_clique_size == 6
    r2 = count_kcliques(g, 3, core_ordering(g))
    with pytest.raises(CountingError):
        _ = r2.max_clique_size


# ------------------------------------------------------------- API shape
def test_engine_accepts_dag_directly():
    g = erdos_renyi(25, 0.3, seed=9)
    o = core_ordering(g)
    dag = directionalize(g, o)
    assert SCTEngine(g, dag).count(3).count == count_kcliques(g, 3, o).count


def test_engine_accepts_rank_array():
    g = erdos_renyi(25, 0.3, seed=9)
    o = core_ordering(g)
    assert (
        SCTEngine(g, o.rank).count(3).count
        == count_kcliques(g, 3, o).count
    )


def test_invalid_k():
    g = complete_graph(4)
    with pytest.raises(CountingError):
        count_kcliques(g, 0, core_ordering(g))


def test_directed_input_rejected():
    g = complete_graph(4)
    dag = directionalize(g, core_ordering(g))
    with pytest.raises(CountingError):
        SCTEngine(dag, core_ordering(g))
    with pytest.raises(CountingError):
        SCTEngine(g, g)  # second undirected graph is not a DAG


def test_unknown_structure():
    g = complete_graph(4)
    with pytest.raises(CountingError, match="unknown structure"):
        SCTEngine(g, core_ordering(g), structure="btree")


def test_result_metadata():
    g = erdos_renyi(20, 0.3, seed=10)
    r = count_kcliques(g, 3, core_ordering(g), structure="sparse")
    assert isinstance(r, CountResult)
    assert r.k == 3
    assert r.structure == "sparse"
    assert r.per_root_work.shape == (20,)
    assert r.counters.function_calls >= 20  # at least one call per root
    assert r.counters.subgraph_builds == 20


def test_per_root_work_sums_to_total():
    g = erdos_renyi(20, 0.3, seed=11)
    r = count_kcliques(g, 4, core_ordering(g))
    assert r.per_root_work.sum() == pytest.approx(r.counters.work)


def test_early_termination_fires():
    # With k far above reach, nearly everything prunes.
    g = erdos_renyi(30, 0.2, seed=12)
    r = count_kcliques(g, 10, core_ordering(g))
    assert r.count == 0
    assert r.counters.early_terminations > 0


def test_max_depth_bounded_by_largest_clique():
    g = complete_graph(9)
    r = count_all_sizes(g, core_ordering(g))
    assert r.counters.max_depth == 9


def test_disconnected_graph():
    # Two disjoint K4s.
    edges = [(a, b) for a in range(4) for b in range(a + 1, 4)]
    edges += [(a + 4, b + 4) for a in range(4) for b in range(a + 1, 4)]
    g = from_edge_list(edges)
    assert count_kcliques(g, 4, core_ordering(g)).count == 2
    assert count_kcliques(g, 3, core_ordering(g)).count == 8
