"""Edge-list and npz serialization round trips."""

import io
from pathlib import Path

import pytest

from repro.errors import GraphFormatError
from repro.graph.generators import erdos_renyi, complete_graph
from repro.graph.io import load_npz, read_edge_list, save_npz, write_edge_list
from repro.ordering import core_ordering, directionalize

CORRUPT = Path(__file__).parent / "fixtures" / "corrupt"


def test_edge_list_roundtrip(tmp_path):
    g = erdos_renyi(40, 0.15, seed=3)
    path = tmp_path / "graph.el"
    write_edge_list(g, path)
    back = read_edge_list(path)
    assert back == g


def test_read_edge_list_from_stream():
    g = read_edge_list(io.StringIO("# comment\n% konect header\n0 1\n1 2\n"))
    assert g.num_vertices == 3
    assert g.num_edges == 2


def test_read_edge_list_ignores_extra_fields():
    g = read_edge_list(io.StringIO("0 1 42 1999\n"))
    assert g.num_edges == 1


def test_read_edge_list_blank_lines():
    g = read_edge_list(io.StringIO("\n0 1\n\n"))
    assert g.num_edges == 1


def test_read_edge_list_bad_line():
    with pytest.raises(GraphFormatError, match="expected"):
        read_edge_list(io.StringIO("0\n"))


def test_read_edge_list_non_integer():
    with pytest.raises(GraphFormatError, match="non-integer"):
        read_edge_list(io.StringIO("a b\n"))


def test_read_edge_list_num_vertices():
    g = read_edge_list(io.StringIO("0 1\n"), num_vertices=5)
    assert g.num_vertices == 5


def test_read_edge_list_negative_id():
    with pytest.raises(GraphFormatError, match="line 2: negative"):
        read_edge_list(io.StringIO("0 1\n1 -2\n"))


def test_read_edge_list_overflow_id():
    with pytest.raises(GraphFormatError, match="line 1: .*int64"):
        read_edge_list(io.StringIO(f"0 {2**80}\n"))


def test_read_edge_list_nan_token():
    with pytest.raises(GraphFormatError, match="line 1: non-integer"):
        read_edge_list(io.StringIO("nan 1\n"))


@pytest.mark.parametrize(
    "fixture, match",
    [
        ("negative_id.el", "line 4: negative"),
        ("nan_token.el", "line 2: non-integer"),
        ("float_token.el", "line 2: non-integer"),
        ("overflow_id.el", "line 2: .*int64"),
        ("missing_field.el", "line 2: expected"),
    ],
)
def test_read_edge_list_corrupt_fixtures(fixture, match):
    """Every corrupt fixture fails with GraphFormatError naming the
    offending line — never an uncaught ValueError/OverflowError."""
    with pytest.raises(GraphFormatError, match=match):
        read_edge_list(CORRUPT / fixture)


def test_npz_roundtrip(tmp_path):
    g = erdos_renyi(30, 0.2, seed=4)
    path = tmp_path / "graph.npz"
    save_npz(g, path)
    assert load_npz(path) == g


def test_npz_roundtrip_dag(tmp_path):
    g = complete_graph(5)
    dag = directionalize(g, core_ordering(g))
    path = tmp_path / "dag.npz"
    save_npz(dag, path)
    back = load_npz(path)
    assert back.directed
    assert back == dag


def test_npz_missing_key(tmp_path):
    import numpy as np

    path = tmp_path / "bad.npz"
    np.savez_compressed(path, indptr=np.array([0]))
    with pytest.raises(GraphFormatError):
        load_npz(path)


def test_metis_roundtrip(tmp_path):
    from repro.graph.io import read_metis, write_metis

    g = erdos_renyi(40, 0.15, seed=6)
    path = tmp_path / "g.metis"
    write_metis(g, path)
    assert read_metis(path) == g


def test_metis_comments_and_stream():
    import io as _io

    from repro.graph.io import read_metis

    g = read_metis(_io.StringIO("% comment\n3 2\n2 3\n1\n1\n"))
    assert g.num_vertices == 3
    assert g.num_edges == 2


def test_metis_errors():
    import io as _io

    from repro.graph.io import read_metis

    with pytest.raises(GraphFormatError, match="empty"):
        read_metis(_io.StringIO("% only comments\n"))
    with pytest.raises(GraphFormatError, match="header"):
        read_metis(_io.StringIO("3\n"))
    with pytest.raises(GraphFormatError, match="adjacency lines"):
        read_metis(_io.StringIO("3 1\n2\n1\n"))
    with pytest.raises(GraphFormatError, match="out of range"):
        read_metis(_io.StringIO("2 1\n5\n1\n"))
    with pytest.raises(GraphFormatError, match="claims"):
        read_metis(_io.StringIO("3 9\n2\n1 3\n2\n"))
    with pytest.raises(GraphFormatError, match="non-integer"):
        read_metis(_io.StringIO("2 1\nx\n1\n"))


def test_metis_rejects_dag(tmp_path):
    from repro.graph.io import write_metis

    g = erdos_renyi(10, 0.3, seed=7)
    dag = directionalize(g, core_ordering(g))
    with pytest.raises(GraphFormatError):
        write_metis(dag, tmp_path / "d.metis")
