"""Property-based tests for the extension modules."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.counting import count_kcliques
from repro.counting.listing import list_kcliques
from repro.counting.maximal import maximal_cliques
from repro.counting.peredge import per_edge_counts
from repro.counting.profiles import per_vertex_profiles
from repro.graph.build import from_edge_array
from repro.graph.traversal import bfs_distances, connected_components
from repro.ordering import core_ordering


@st.composite
def small_graphs(draw, max_n=10):
    n = draw(st.integers(min_value=1, max_value=max_n))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible), max_size=len(possible))
    ) if possible else []
    arr = np.array(edges, dtype=np.int64).reshape(-1, 2)
    return from_edge_array(arr, num_vertices=n)


@settings(max_examples=40, deadline=None)
@given(g=small_graphs())
def test_maximal_cliques_are_maximal_and_distinct(g):
    adj = g.adjacency_sets()
    seen = set()
    for c in maximal_cliques(g):
        key = tuple(c)
        assert key not in seen
        seen.add(key)
        members = set(c)
        for u in c:
            assert members - {u} <= adj[u]
        for w in range(g.num_vertices):
            if w not in members:
                assert not members <= adj[w]
    # Every vertex belongs to at least one maximal clique.
    covered = set().union(*map(set, seen)) if seen else set()
    assert covered == set(range(g.num_vertices))


@settings(max_examples=40, deadline=None)
@given(g=small_graphs(), k=st.integers(1, 5))
def test_listing_count_identity(g, k):
    o = core_ordering(g)
    cliques = list(list_kcliques(g, k, o))
    assert len(cliques) == len(set(cliques))
    assert len(cliques) == count_kcliques(g, k, o).count


@settings(max_examples=30, deadline=None)
@given(g=small_graphs(), k=st.integers(2, 5))
def test_per_edge_sum_identity(g, k):
    import math

    o = core_ordering(g)
    per = per_edge_counts(g, k, o)
    total = count_kcliques(g, k, o).count
    assert sum(per.values()) == math.comb(k, 2) * total
    # every counted edge really is an edge
    for u, v in per:
        assert g.has_edge(u, v)


@settings(max_examples=30, deadline=None)
@given(g=small_graphs())
def test_profiles_column_identity(g):
    o = core_ordering(g)
    prof = per_vertex_profiles(g, o)
    width = len(prof[0]) if prof else 0
    for s in range(1, width):
        col = sum(row[s] for row in prof)
        assert col == s * count_kcliques(g, s, o).count


@settings(max_examples=40, deadline=None)
@given(g=small_graphs(), data=st.data())
def test_bfs_triangle_inequality(g, data):
    src = data.draw(st.integers(0, g.num_vertices - 1))
    dist = bfs_distances(g, src)
    assert dist[src] == 0
    for u, v in g.edges():
        if dist[u] >= 0 and dist[v] >= 0:
            assert abs(dist[u] - dist[v]) <= 1
        else:
            # reachability is edge-closed
            assert dist[u] == dist[v] == -1


@settings(max_examples=40, deadline=None)
@given(g=small_graphs())
def test_components_are_edge_closed(g):
    labels = connected_components(g)
    for u, v in g.edges():
        assert labels[u] == labels[v]
    # labels are contiguous 0..c-1
    uniq = sorted(set(labels.tolist()))
    assert uniq == list(range(len(uniq)))
