"""Incremental-forest differential edit-sequence suite.

The contract under test: :meth:`SCTForest.apply_edits` patched in
place must be **bit-identical** to a from-scratch rebuild under the
same vertex order — every leaf array, the per-root work/memory model
vectors, the descriptor fingerprints, and every query answered from
them (count_all / per-vertex / per-edge) — over the committed
versioned edit streams of the shared 40-graph corpus, on both
always-available kernel backends.  480 randomized batches (40 graphs
x 2 kernels x 6 batches, mixed sizes with duplicates, no-ops, growth
and one empty batch per stream) ride through that assertion.

On top of the differential net: Hypothesis properties (insert-then-
delete round-trip, order-insensitivity for dirty-disjoint batches,
empty batch is a no-op on arrays and counters), the stale-cache
regressions (in-process LRU re-keying after edits; fingerprints under
forced graph mutation), controller budgets/checkpoint-resume at
dirty-root granularity, kernel-fault degradation, policy selection,
config plumbing, the ``stream`` CLI, and persistence after edits.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PivotScaleConfig
from repro.counting import brute_force_count
from repro.counting.dynamic import (
    EditReport,
    apply_edits,
    dag_rank,
    dirty_roots,
    edit_graph,
    edits_digest,
    extend_rank,
    iter_batches,
    normalize_edits,
    parse_edit_line,
    read_edit_file,
)
from repro.counting.forest import (
    SCTForest,
    build_forest,
    clear_forest_cache,
    get_forest,
    load_forest,
)
from repro.errors import (
    BudgetExceededError,
    CheckpointError,
    CountingError,
    RunInterrupted,
)
from repro.graph.build import from_edge_array
from repro.graph.csr import CSRGraph
from repro.graph.generators import erdos_renyi
from repro.ordering import core_ordering
from repro.ordering.directionalize import directionalize
from repro.runtime import FaultPlan, FaultSpec, RunController
from repro.runtime.budget import Budget
from repro.runtime.checkpoint import graph_fingerprint

from tests.corpus import (
    EDIT_STREAM_VERSION,
    GRAPHS,
    IDS,
    edit_stream,
    edit_stream_digest,
)
from tests.corpus import ordering as corpus_ordering

# The two always-available backends (numba is an optional extra whose
# resolve falls back to wordarray; exercising it here would double-run
# wordarray under a warning).
BACKENDS = ("bigint", "wordarray")


def _assert_same_forest(a: SCTForest, b: SCTForest) -> None:
    """Bit-identical *state*: arrays, model vectors, descriptor.

    ``counters`` are deliberately excluded — the patched forest's
    counters are cumulative instrumentation (build + every
    recomputation), not a pure function of the final graph.
    """
    assert a.num_vertices == b.num_vertices
    assert a.num_leaves == b.num_leaves
    assert np.array_equal(a.held_n, b.held_n)
    assert np.array_equal(a.pivot_n, b.pivot_n)
    assert np.array_equal(a.roots, b.roots)
    assert np.array_equal(a.held_off, b.held_off)
    assert np.array_equal(a.pivot_off, b.pivot_off)
    assert a.has_members == b.has_members
    if a.has_members:
        assert np.array_equal(a.held_members, b.held_members)
        assert np.array_equal(a.pivot_members, b.pivot_members)
    assert np.array_equal(a.per_root_work, b.per_root_work)
    assert np.array_equal(a.per_root_memory, b.per_root_memory)
    assert a.descriptor == b.descriptor


@pytest.fixture
def g():
    return erdos_renyi(26, 0.22, seed=77)


# ----------------------------------------------------------------------
# The differential net: committed streams, corpus-wide, both backends
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kernel", BACKENDS)
@pytest.mark.parametrize("name,graph", GRAPHS, ids=IDS)
def test_apply_edits_bit_identical_to_rebuild(name, graph, kernel):
    forest = SCTForest.build(graph, corpus_ordering(name, graph),
                             "remap", kernel)
    for batch in edit_stream(name, graph):
        report = forest.apply_edits(batch)
        rebuilt = SCTForest.build(report.graph, forest.rank,
                                  "remap", kernel)
        _assert_same_forest(forest, rebuilt)
        assert forest.count_all() == rebuilt.count_all()
    # Ground the final state absolutely, not just against the rebuild.
    final = forest.graph
    if kernel == "bigint":
        for k in (3, 4):
            assert forest.count(k) == brute_force_count(final, k)
    rebuilt = SCTForest.build(final, forest.rank, "remap", kernel)
    assert forest.per_vertex(4) == rebuilt.per_vertex(4)
    assert forest.per_edge(3) == rebuilt.per_edge(3)


def test_edit_stream_fixtures_are_pinned():
    """The committed streams are versioned: regenerating them must be
    byte-for-byte stable across processes and platforms.  If this
    fails you changed the generator — bump EDIT_STREAM_VERSION and add
    a new seed instead of mutating version 1."""
    assert EDIT_STREAM_VERSION == 1
    pinned = {
        "rmat-s4-0": "518181bb",
        "rmat-s5-1": "5a597b48",
        "chunglu-n20-0": "30b86090",
        "planted-n18-0": "b516bfc4",
    }
    by_name = dict(GRAPHS)
    for name, want in pinned.items():
        got = edit_stream_digest(name, by_name[name])
        assert got == want, (name, got)
    # Structural guarantees every stream must carry.
    for name, graph in GRAPHS[:8]:
        stream = edit_stream(name, graph)
        assert len(stream) == 6
        assert any(len(b) == 0 for b in stream)
        assert stream == edit_stream(name, graph)


# ----------------------------------------------------------------------
# Hypothesis properties
# ----------------------------------------------------------------------
def _hyp_graph():
    return erdos_renyi(18, 0.25, seed=5)


_HYP_G = _hyp_graph()
_HYP_BASE = SCTForest.build(_HYP_G, core_ordering(_HYP_G), "remap",
                            "bigint")
_ABSENT = [
    (u, v)
    for u in range(_HYP_G.num_vertices)
    for v in range(u + 1, _HYP_G.num_vertices)
    if not _HYP_G.has_edge(u, v)
]
_PRESENT = [tuple(map(int, e)) for e in _HYP_G.edge_array()]


@settings(max_examples=25, deadline=None)
@given(st.lists(st.sampled_from(_ABSENT), min_size=1, max_size=5,
                unique=True))
def test_insert_delete_round_trips_to_original(pairs):
    forest = _HYP_BASE.copy()
    fp0 = forest.descriptor["graph_fingerprint"]
    forest.apply_edits([("+", u, v) for u, v in pairs])
    assert forest.descriptor["graph_fingerprint"] != fp0
    forest.apply_edits([("-", u, v) for u, v in pairs])
    assert forest.descriptor["graph_fingerprint"] == fp0
    _assert_same_forest(forest, _HYP_BASE)


@settings(max_examples=25, deadline=None)
@given(
    st.sampled_from(_ABSENT),
    st.sampled_from(_PRESENT),
)
def test_dirty_disjoint_batches_commute(add_pair, del_pair):
    """Two batches whose dirty-root sets are disjoint land on the same
    forest in either application order."""
    e1 = [("+", *add_pair)]
    e2 = [("-", *del_pair)]
    rank = _HYP_BASE.rank
    g1 = edit_graph(_HYP_G, [add_pair])
    d1 = set(dirty_roots(_HYP_G, g1, rank, [add_pair]).tolist())
    g2 = edit_graph(_HYP_G, [], [del_pair])
    d2 = set(dirty_roots(_HYP_G, g2, rank, [], [del_pair]).tolist())
    if d1 & d2:
        return  # only the root-disjoint case promises commutation
    ab = _HYP_BASE.copy()
    ab.apply_edits(e1)
    ab.apply_edits(e2)
    ba = _HYP_BASE.copy()
    ba.apply_edits(e2)
    ba.apply_edits(e1)
    _assert_same_forest(ab, ba)


@settings(max_examples=20, deadline=None)
@given(st.lists(st.sampled_from(_PRESENT), min_size=0, max_size=4))
def test_noop_batches_leave_arrays_and_counters_alone(pairs):
    """An empty batch — or one whose records are all already satisfied
    (inserting present edges) — changes nothing: arrays, counters,
    descriptor, cumulative-edit budget."""
    forest = _HYP_BASE.copy()
    held = forest.held_n.copy()
    counters = forest.counters.as_dict()
    descriptor = dict(forest.descriptor)
    report = forest.apply_edits([("+", u, v) for u, v in pairs])
    assert report.applied == 0
    assert report.skipped == len(pairs)
    assert report.roots_recomputed == 0
    assert np.array_equal(forest.held_n, held)
    assert forest.counters.as_dict() == counters
    assert forest.descriptor == descriptor
    assert forest._edits_since_reorder == 0


# ----------------------------------------------------------------------
# Edit model unit coverage
# ----------------------------------------------------------------------
def test_normalize_edits_last_op_wins_and_skips(g):
    u, v = map(int, g.edge_array()[0])
    au, av = next(
        (a, b)
        for a in range(g.num_vertices)
        for b in range(a + 1, g.num_vertices)
        if not g.has_edge(a, b)
    )
    adds, dels, skipped = normalize_edits(
        g,
        [
            ("+", au, av), ("+", av, au),      # dup, unordered
            ("-", u, v), ("+", u, v),          # cancels to present no-op
            ("+", u, v),                       # inserting present edge
            ("-", au + 100, av),               # deleting beyond |V|
        ],
    )
    assert adds == [(au, av)]
    assert dels == []
    assert skipped == 5


def test_normalize_rejects_malformed_edits(g):
    with pytest.raises(CountingError):
        normalize_edits(g, [("*", 0, 1)])
    with pytest.raises(CountingError):
        normalize_edits(g, [("+", 3, 3)])
    with pytest.raises(CountingError):
        normalize_edits(g, [("+", -1, 2)])
    with pytest.raises(CountingError):
        normalize_edits(g, [("+", 1)])


def test_edit_graph_grows_and_refuses_bad_deletes(g):
    n = g.num_vertices
    grown = edit_graph(g, [(n + 1, 0)])
    assert grown.num_vertices == n + 2
    assert grown.has_edge(n + 1, 0) and grown.degree(n) == 0
    absent = next(
        (a, b)
        for a in range(g.num_vertices)
        for b in range(a + 1, g.num_vertices)
        if not g.has_edge(a, b)
    )
    with pytest.raises(CountingError):
        edit_graph(g, [], [absent])
    with pytest.raises(CountingError):
        edit_graph(directionalize(g, core_ordering(g)), [(0, 5)])


def test_extend_rank_appends_new_vertices_in_id_order():
    rank = np.array([2, 0, 1])
    out = extend_rank(rank, 5)
    assert out.tolist() == [2, 0, 1, 3, 4]
    assert extend_rank(rank, 3) is rank or np.array_equal(
        extend_rank(rank, 3), rank
    )
    with pytest.raises(CountingError):
        extend_rank(rank, 2)


def test_dag_rank_reproduces_the_dag(g):
    o = core_ordering(g)
    dag = directionalize(g, o)
    rank = dag_rank(dag)
    assert directionalize(g, rank) == dag


def test_dirty_roots_covers_growth_and_both_sides(g):
    rank = np.asarray(core_ordering(g).rank)
    n = g.num_vertices
    new = edit_graph(g, [(n, 0)])
    dirty = dirty_roots(g, new, extend_rank(rank, n + 1), [(n, 0)])
    assert n in dirty.tolist()  # grown vertex always dirty
    # The lower-ranked endpoint of a deleted edge is dirty even though
    # the edge is gone from the new graph.
    u, v = map(int, g.edge_array()[0])
    gone = edit_graph(g, [], [(u, v)])
    dirty = dirty_roots(g, gone, rank, [], [(u, v)])
    low = u if rank[u] < rank[v] else v
    assert low in dirty.tolist()


def test_edits_digest_is_order_stable():
    a = edits_digest([(0, 1), (2, 3)], [(4, 5)])
    assert a == edits_digest([(0, 1), (2, 3)], [(4, 5)])
    assert a != edits_digest([(0, 1)], [(4, 5)])


def test_iter_batches_shapes():
    edits = [("+", 0, i) for i in range(1, 8)]
    assert [len(b) for b in iter_batches(edits, 3)] == [3, 3, 1]
    assert [len(b) for b in iter_batches(edits, None)] == [7]
    assert list(iter_batches([], 3)) == []
    with pytest.raises(CountingError):
        list(iter_batches(edits, 0))


# ----------------------------------------------------------------------
# Regression: the cache can never serve a stale forest
# ----------------------------------------------------------------------
def test_cache_rekeyed_after_edits(g):
    """apply_edits patches the cached object in place; the pre-edit
    graph must get a fresh build afterwards, and the post-edit graph
    must be served the patched object."""
    clear_forest_cache()
    o = core_ordering(g)
    forest = get_forest(g, o, "remap", "bigint")
    baseline = forest.count_all()
    report = forest.apply_edits([("+", 0, 1), ("+", 0, 2), ("+", 1, 2)])
    assert report.applied >= 1
    served = get_forest(g, o, "remap", "bigint")
    assert served is not forest
    assert served.count_all() == baseline
    again = get_forest(report.graph, forest.rank, "remap", "bigint")
    assert again is forest
    clear_forest_cache()


def test_mutated_graph_never_served_stale_fingerprint():
    """Fingerprints are memoized on the write-locked arrays; a forced
    in-place mutation (the only way to mutate a CSRGraph) must change
    the fingerprint and therefore the cache key."""
    # 4-cycle: 0-1-2-3-0
    g1 = from_edge_array(np.array([[0, 1], [1, 2], [2, 3], [0, 3]]))
    fp1 = g1.fingerprint()
    assert fp1 == graph_fingerprint(g1)
    assert g1.fingerprint() == fp1  # memo hit, same value
    clear_forest_cache()
    forest = get_forest(g1, core_ordering(g1), "remap", "bigint")
    assert forest.count(2) == 4
    # Degree-preserving in-place relabel: 4-cycle -> the other 4-cycle
    # (0-2-1-3-0).  Same indptr, every row still sorted and symmetric.
    g1.indices.setflags(write=True)
    g1.indices[:] = [2, 3, 2, 3, 0, 1, 0, 1]
    assert g1.fingerprint() != fp1  # writeable guard drops the memo
    served = get_forest(g1, core_ordering(g1), "remap", "bigint")
    assert served is not forest
    assert served.count(2) == 4
    g1.indices.setflags(write=False)
    clear_forest_cache()


def test_fingerprint_memo_matches_checkpoint_fingerprint(g):
    dag = directionalize(g, core_ordering(g))
    for graph in (g, dag):
        assert graph.fingerprint() == graph_fingerprint(graph)
    # Memoized second call returns the identical string object.
    assert g.fingerprint() is g.fingerprint()


def test_saved_forest_refuses_pre_edit_graph(tmp_path, g):
    forest = build_forest(g, core_ordering(g))
    forest.apply_edits([("+", 0, 1), ("+", 1, 3), ("+", 0, 3)])
    path = tmp_path / "edited.npz"
    forest.save(path)
    loaded = load_forest(path, forest.graph)
    assert loaded.count_all() == forest.count_all()
    with pytest.raises(CheckpointError):
        load_forest(path, g)  # stale: the pre-edit graph


# ----------------------------------------------------------------------
# Controller cooperation at dirty-root granularity
# ----------------------------------------------------------------------
_BIG_BATCH = [("+", i, (i + 5) % 26) for i in range(20)]


def test_budget_abort_is_all_or_nothing(tmp_path, g):
    forest = build_forest(g, core_ordering(g))
    before_arrays = forest.held_n.copy()
    before_desc = dict(forest.descriptor)
    ctl = RunController(Budget(max_nodes=1),
                        checkpoint_path=tmp_path / "ck.json",
                        checkpoint_every=1)
    with pytest.raises(BudgetExceededError):
        forest.apply_edits(_BIG_BATCH, controller=ctl)
    assert np.array_equal(forest.held_n, before_arrays)
    assert forest.descriptor == before_desc
    assert forest._edits_since_reorder == 0


@pytest.mark.parametrize("at_op", [1, 3])
def test_interrupted_edit_batch_resumes_bit_identical(tmp_path, g, at_op):
    path = tmp_path / "edits.ckpt"
    forest = build_forest(g, core_ordering(g))
    oracle = forest.copy()
    ctl = RunController(
        checkpoint_path=path,
        faults=FaultPlan(FaultSpec("interrupt", at_op=at_op)),
    )
    with pytest.raises(RunInterrupted):
        forest.apply_edits(_BIG_BATCH, controller=ctl)
    report = forest.apply_edits(
        _BIG_BATCH,
        controller=RunController(checkpoint_path=path, resume=True),
    )
    assert report.roots_recomputed == report.dirty_roots.size
    direct = oracle.apply_edits(_BIG_BATCH)
    assert direct.applied == report.applied
    _assert_same_forest(forest, oracle)
    rebuilt = SCTForest.build(report.graph, forest.rank, "remap", "bigint")
    _assert_same_forest(forest, rebuilt)


def test_kernel_fault_falls_back_to_bigint(g):
    forest = build_forest(g, core_ordering(g), kernel="wordarray")
    ctl = RunController(
        degrade=True, faults=FaultPlan(FaultSpec("kernel", at_op=2))
    )
    report = forest.apply_edits(_BIG_BATCH[:8], controller=ctl)
    assert forest.descriptor["kernel"] == "bigint"
    assert forest.degraded_from == "wordarray"
    rebuilt = SCTForest.build(report.graph, forest.rank, "remap", "bigint")
    assert forest.count_all() == rebuilt.count_all()
    assert np.array_equal(forest.held_n, rebuilt.held_n)


# ----------------------------------------------------------------------
# Policies
# ----------------------------------------------------------------------
def test_reorder_policy_matches_fresh_core_build(g):
    forest = build_forest(g, core_ordering(g))
    batch = [("+", 0, 9), ("+", 2, 11)]
    report = forest.apply_edits(batch, policy="reorder")
    assert report.reordered
    assert report.roots_recomputed == report.graph.num_vertices
    fresh = SCTForest.build(report.graph, core_ordering(report.graph),
                            "remap", "bigint")
    assert np.array_equal(forest.held_n, fresh.held_n)
    assert forest.count_all() == fresh.count_all()
    assert forest._edits_since_reorder == 0


def test_auto_policy_flips_at_the_ratio(g):
    forest = build_forest(g, core_ordering(g))
    small = forest.apply_edits([("+", 0, 9)], policy="auto")
    assert small.policy == "patch" and not small.reordered
    edges = [tuple(map(int, e)) for e in forest.graph.edge_array()]
    big = [("-", u, v) for u, v in edges[: len(edges) // 2]]
    flipped = forest.apply_edits(big, policy="auto", reorder_ratio=0.25)
    assert flipped.policy == "reorder" and flipped.reordered


def test_unknown_policy_rejected(g):
    forest = build_forest(g, core_ordering(g))
    with pytest.raises(CountingError):
        forest.apply_edits([("+", 0, 9)], policy="bogus")
    with pytest.raises(CountingError):
        forest.apply_edits([("+", 0, 9)], reorder_ratio=0.0)


def test_loaded_forest_needs_explicit_inputs(tmp_path, g):
    o = core_ordering(g)
    built = build_forest(g, o)
    path = tmp_path / "f.npz"
    built.save(path)
    loaded = load_forest(path)
    with pytest.raises(CountingError):
        loaded.apply_edits([("+", 0, 9)])
    report = loaded.apply_edits([("+", 0, 9)], graph=g, ordering=o)
    assert report.applied in (0, 1)
    rebuilt = SCTForest.build(report.graph, loaded.rank, "remap", "bigint")
    _assert_same_forest(loaded, rebuilt)


def test_edits_against_wrong_graph_refused(g):
    forest = build_forest(g, core_ordering(g))
    other = erdos_renyi(26, 0.22, seed=78)
    with pytest.raises(CountingError):
        forest.apply_edits([("+", 0, 9)], graph=other,
                           ordering=core_ordering(other))


# ----------------------------------------------------------------------
# Observability
# ----------------------------------------------------------------------
def test_edit_counters_recorded(g):
    from repro import obs

    forest = build_forest(g, core_ordering(g))
    with obs.collecting() as reg:
        report = forest.apply_edits([("+", 0, 9), ("+", 2, 11)])
        applied = reg.value("forest_edits_applied_total")
        dirty = reg.value("forest_roots_dirty_total")
        recomputed = reg.value("forest_roots_recomputed_total")
    assert applied == report.applied
    assert dirty == report.dirty_roots.size
    assert recomputed == report.roots_recomputed


def test_disabled_obs_costs_nothing_extra(g):
    from repro import obs

    assert not obs.get_registry().enabled
    forest = build_forest(g, core_ordering(g))
    forest.apply_edits([("+", 0, 9)])  # must not raise, must not record
    assert not obs.get_registry().enabled


# ----------------------------------------------------------------------
# Config + CLI plumbing
# ----------------------------------------------------------------------
def test_config_dynamic_knobs():
    assert PivotScaleConfig(dynamic="patch").dynamic == "patch"
    assert PivotScaleConfig().dynamic is None
    with pytest.raises(CountingError):
        PivotScaleConfig(dynamic="bogus")
    with pytest.raises(CountingError):
        PivotScaleConfig(reorder_ratio=0.0)


def test_edit_file_parsing(tmp_path):
    path = tmp_path / "edits.txt"
    path.write_text(
        "# comment\n"
        "+ 0 1\n"
        "\n"
        "- 2 3   # trailing comment\n"
        "+ 4 5\n"
    )
    assert read_edit_file(path) == [("+", 0, 1), ("-", 2, 3), ("+", 4, 5)]
    assert parse_edit_line("   ") is None
    with pytest.raises(CountingError):
        parse_edit_line("~ 1 2", 7)
    with pytest.raises(CountingError):
        parse_edit_line("+ one 2", 7)
    with pytest.raises(CountingError):
        parse_edit_line("+ 1", 7)


def test_cli_stream_counts_each_batch(tmp_path, capsys):
    from repro.cli import main

    g = erdos_renyi(20, 0.2, seed=3)
    el = tmp_path / "g.el"
    el.write_text(
        "\n".join(f"{u} {v}" for u, v in g.edges()) + "\n"
    )
    edits = tmp_path / "edits.txt"
    edits.write_text("+ 0 1\n+ 0 2\n+ 1 2\n- 0 1\n")
    rc = main([
        "stream", "--edge-list", str(el), "--edits", str(edits),
        "-k", "3", "--batch-size", "2",
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert out.count("3-cliques:") == 3  # initial + 2 batches
    assert "batch 1:" in out and "batch 2:" in out
    assert "dirty" in out
    # The final reported count matches a from-scratch ground truth.
    final = edit_graph(g, [(0, 2), (1, 2)], [(0, 1)] if g.has_edge(0, 1)
                       else [])
    want = brute_force_count(final, 3)
    assert f"3-cliques: {want:,}" in out.splitlines()[-1]


def test_report_dataclass_shape(g):
    forest = build_forest(g, core_ordering(g))
    report = forest.apply_edits([])
    assert isinstance(report, EditReport)
    assert report.applied == 0 and report.policy == "patch"
    assert report.leaves_before == report.leaves_after == forest.num_leaves
