"""Graph health reports."""

import pytest

from repro.graph.build import from_edge_list
from repro.graph.generators import complete_graph, empty_graph, erdos_renyi
from repro.graph.validate import validate_graph


def test_basic_report():
    g = complete_graph(6)
    r = validate_graph(g)
    assert r.num_vertices == 6
    assert r.num_edges == 15
    assert r.degeneracy == 5
    assert r.num_components == 1
    assert r.largest_component_fraction == 1.0
    assert not r.warnings


def test_empty_graph_report():
    r = validate_graph(empty_graph(0))
    assert r.num_vertices == 0
    assert r.summary() == "" or isinstance(r.summary(), str)


def test_isolated_vertex_warning():
    g = from_edge_list([(0, 1)], num_vertices=10)
    r = validate_graph(g)
    assert r.isolated_vertices == 8
    assert any("isolated" in w for w in r.warnings)


def test_fragmented_graph_warning():
    # Many tiny components, none dominant.
    edges = [(2 * i, 2 * i + 1) for i in range(10)]
    g = from_edge_list(edges)
    r = validate_graph(g)
    assert r.num_components == 10
    assert any("dominant" in w for w in r.warnings)


def test_summary_contains_key_numbers():
    g = erdos_renyi(40, 0.2, seed=41)
    text = validate_graph(g).summary()
    assert "degeneracy" in text
    assert "components" in text
    assert "assortativity" in text


def test_cli_validate(capsys):
    from repro.cli import main

    assert main(["validate", "--dataset", "dblp"]) == 0
    assert "degeneracy" in capsys.readouterr().out
