"""networkx / scipy converters."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.convert import (
    from_networkx,
    from_scipy_sparse,
    to_networkx,
    to_scipy_sparse,
)
from repro.graph.generators import complete_graph, erdos_renyi
from repro.ordering import core_ordering, directionalize


def test_networkx_roundtrip():
    g = erdos_renyi(30, 0.2, seed=31)
    assert from_networkx(to_networkx(g)) == g


def test_networkx_dag_export():
    g = complete_graph(5)
    dag = directionalize(g, core_ordering(g))
    nxg = to_networkx(dag)
    assert nxg.is_directed()
    assert nxg.number_of_edges() == 10


def test_from_networkx_rejects_directed():
    import networkx as nx

    with pytest.raises(GraphFormatError):
        from_networkx(nx.DiGraph([(0, 1)]))


def test_from_networkx_rejects_bad_labels():
    import networkx as nx

    nxg = nx.Graph()
    nxg.add_edge("a", "b")
    with pytest.raises(GraphFormatError):
        from_networkx(nxg)


def test_scipy_roundtrip():
    g = erdos_renyi(25, 0.25, seed=32)
    assert from_scipy_sparse(to_scipy_sparse(g)) == g


def test_scipy_matrix_shape():
    g = complete_graph(4)
    mat = to_scipy_sparse(g)
    assert mat.shape == (4, 4)
    assert mat.nnz == 12  # both directions stored


def test_from_scipy_symmetrizes_and_cleans():
    from scipy.sparse import coo_array

    # Asymmetric pattern with a self loop.
    mat = coo_array(
        (np.ones(3), (np.array([0, 1, 2]), np.array([1, 1, 0]))),
        shape=(3, 3),
    )
    g = from_scipy_sparse(mat)
    assert g.num_edges == 2  # (0,1) and (0,2); loop (1,1) dropped
    assert g.has_edge(1, 0)


def test_from_scipy_rejects_non_square():
    from scipy.sparse import csr_array

    with pytest.raises(GraphFormatError):
        from_scipy_sparse(csr_array((2, 3)))


def test_counting_via_networkx_import():
    """End to end: import a networkx graph, count with PivotScale."""
    import networkx as nx

    from repro import count_cliques

    nxg = nx.karate_club_graph()
    g = from_networkx(nxg)
    r = count_cliques(g, 3)
    # Known value: Zachary's karate club has 45 triangles.
    assert r.count == 45
