"""Simulated parallel execution: phase times and scaling curves."""

import pytest

from repro.counting import count_kcliques
from repro.graph.generators import rmat
from repro.ordering import approx_core_ordering, core_ordering, degree_ordering
from repro.parallel import (
    DynamicScheduler,
    StaticScheduler,
    scaling_curve,
    simulate_counting,
    simulate_ordering,
)


@pytest.fixture(scope="module")
def run():
    g = rmat(9, 8.0, seed=41)
    return g, count_kcliques(g, 6, core_ordering(g))


def test_counting_time_decreases_with_threads(run):
    _, res = run
    t1 = simulate_counting(res, threads=1).seconds
    t64 = simulate_counting(res, threads=64).seconds
    assert t64 < t1
    assert t1 / t64 > 8  # real speedup even on a modest graph


def test_scaling_curve_keys(run):
    _, res = run
    curve = scaling_curve(res, [1, 2, 4])
    assert set(curve) == {1, 2, 4}
    assert curve[1].seconds >= curve[4].seconds


def test_remap_scales_better_than_dense_at_paper_scale(run):
    g, _ = run
    o = core_ordering(g)
    res_remap = count_kcliques(g, 6, o, structure="remap")
    res_dense = count_kcliques(g, 6, o, structure="dense")

    def speedup(res):
        kw = dict(effective_num_vertices=10e6, max_out_degree=300)
        return (
            simulate_counting(res, threads=1, **kw).seconds
            / simulate_counting(res, threads=64, **kw).seconds
        )

    assert speedup(res_dense) < speedup(res_remap)


def test_serial_fraction_limits_speedup(run):
    _, res = run
    t1 = simulate_counting(res, threads=1).seconds
    t64 = simulate_counting(res, threads=64, serial_fraction=0.27).seconds
    # Amdahl: max speedup ~ 1/0.27 ~ 3.7 (the naive-Pivoter behavior).
    assert 2.0 < t1 / t64 < 4.5


def test_scheduler_choice_affects_makespan(run):
    _, res = run
    dyn = simulate_counting(res, threads=32, scheduler=DynamicScheduler())
    sta = simulate_counting(res, threads=32, scheduler=StaticScheduler())
    assert dyn.assignment.makespan <= sta.assignment.makespan + 1e-9
    assert dyn.cv >= 0.0


def test_ordering_simulation_degree_fastest():
    # At paper scale (work_scale extrapolates the analog to millions of
    # vertices) the barrier costs amortize.
    g = rmat(9, 8.0, seed=42)
    scale = 1e6 / g.num_vertices
    t_core = simulate_ordering(
        core_ordering(g).cost, threads=64, work_scale=scale
    ).seconds
    t_deg = simulate_ordering(
        degree_ordering(g).cost, threads=64, work_scale=scale
    ).seconds
    t_approx = simulate_ordering(
        approx_core_ordering(g, -0.5).cost, threads=64, work_scale=scale
    ).seconds
    assert t_deg < t_approx  # degree is always the fastest ordering
    assert t_approx < t_core  # parallel approximation beats sequential core


def test_approx_core_ordering_speedup_over_core():
    """Fig. 6 headline: the eps=-0.5 approximation is ~10x faster than
    the sequential core ordering on larger graphs."""
    g = rmat(11, 8.0, seed=43)
    scale = 2e6 / g.num_vertices
    t_core = simulate_ordering(
        core_ordering(g).cost, threads=64, work_scale=scale
    ).seconds
    t_approx = simulate_ordering(
        approx_core_ordering(g, -0.5).cost, threads=64, work_scale=scale
    ).seconds
    assert t_core / t_approx > 3


def test_small_scale_barriers_dominate():
    """Without rescaling, a tiny graph's approx-core ordering is all
    barrier overhead — slower than just peeling sequentially."""
    g = rmat(9, 8.0, seed=42)
    t_core = simulate_ordering(core_ordering(g).cost, threads=64).seconds
    t_approx = simulate_ordering(
        approx_core_ordering(g, -0.5).cost, threads=64
    ).seconds
    assert t_approx > t_core


def test_phase_time_cv_property(run):
    _, res = run
    pt = simulate_counting(res, threads=8)
    assert pt.cv == pt.assignment.cv
    ot = simulate_ordering(core_ordering(rmat(6, 4.0, seed=1)).cost, threads=8)
    assert ot.cv == 0.0
