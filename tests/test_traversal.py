"""BFS and connected components."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.build import from_edge_list
from repro.graph.generators import complete_graph, empty_graph, erdos_renyi, path_graph
from repro.graph.traversal import bfs_distances, connected_components, largest_component


def test_bfs_path_graph():
    g = path_graph(5)
    assert bfs_distances(g, 0).tolist() == [0, 1, 2, 3, 4]
    assert bfs_distances(g, 2).tolist() == [2, 1, 0, 1, 2]


def test_bfs_unreachable():
    g = empty_graph(4)
    d = bfs_distances(g, 1)
    assert d.tolist() == [-1, 0, -1, -1]


def test_bfs_source_validation():
    with pytest.raises(GraphFormatError):
        bfs_distances(empty_graph(3), 3)


def test_bfs_matches_networkx():
    import networkx as nx

    g = erdos_renyi(50, 0.08, seed=11)
    nxg = nx.Graph()
    nxg.add_nodes_from(range(50))
    nxg.add_edges_from(g.edges())
    expected = nx.single_source_shortest_path_length(nxg, 7)
    d = bfs_distances(g, 7)
    for v in range(50):
        assert d[v] == expected.get(v, -1)


def test_components_two_cliques():
    edges = [(a, b) for a in range(4) for b in range(a + 1, 4)]
    edges += [(a + 4, b + 4) for a in range(3) for b in range(a + 1, 3)]
    g = from_edge_list(edges, num_vertices=8)
    labels = connected_components(g)
    assert len(set(labels.tolist())) == 3  # K4, K3, isolated vertex 7
    assert labels[0] == labels[3]
    assert labels[4] == labels[6]
    assert labels[0] != labels[4] != labels[7]


def test_components_complete():
    labels = connected_components(complete_graph(6))
    assert (labels == 0).all()


def test_largest_component():
    edges = [(0, 1), (1, 2), (3, 4)]
    g = from_edge_list(edges, num_vertices=6)
    assert largest_component(g).tolist() == [0, 1, 2]
    assert largest_component(empty_graph(0)).size == 0


def test_datasets_dominated_by_giant_component():
    """The analogs should look like their originals: one giant CC."""
    from repro.datasets import load

    g = load("skitter")
    assert largest_component(g).size > 0.8 * g.num_vertices
