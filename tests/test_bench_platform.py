"""Benchmark run-store platform: store, stats, report, baseline, CLI.

The acceptance criterion from the issue is exercised directly in
:class:`TestDetectRegression`: across >= 20 synthetic trials the
statistical layer flags a planted 2x slowdown every time and never
flags i.i.d. noise at the report-layer defaults.
"""

import json

import numpy as np
import pytest

from repro.bench.platform.baseline import BaselineRegistry
from repro.bench.platform.report import ExperimentReport
from repro.bench.platform.stat_tests import (
    MIN_SAMPLES,
    a12,
    bootstrap_median_ratio_ci,
    detect_regression,
    mann_whitney_u,
    rankdata,
)
from repro.bench.platform.store import (
    SCHEMA_VERSION,
    RunRecord,
    RunStore,
    machine_fingerprint,
    new_run_id,
)
from repro.cli import main as cli_main
from repro.errors import StoreFormatError


def make_record(bench="kernels", *, seed=7, samples=None, run_id=None,
                timestamp=1000.0, git_hash="abc123", machine=None,
                metrics=None):
    return RunRecord(
        bench=bench,
        run_id=run_id or new_run_id(bench),
        timestamp=timestamp,
        config={"seed": seed, "smoke": True},
        samples=samples or {"wall_s": [0.01, 0.011, 0.012]},
        metrics=metrics or {},
        gate={"pass": True},
        git_hash=git_hash,
        machine=machine or machine_fingerprint(),
    )


# ----------------------------------------------------------------------
# store round-trip + schema discipline
# ----------------------------------------------------------------------
class TestRunStore:
    def test_append_read_round_trip(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        rec = make_record()
        path = store.append(rec)
        assert path == tmp_path / "runs" / "kernels.jsonl"
        (got,) = store.read("kernels")
        assert got == rec
        assert got.seed == 7
        assert got.schema == SCHEMA_VERSION

    def test_append_preserves_order(self, tmp_path):
        store = RunStore(tmp_path)
        ids = []
        for ts in (1.0, 2.0, 3.0):
            rec = make_record(timestamp=ts)
            ids.append(rec.run_id)
            store.append(rec)
        assert [r.run_id for r in store.read("kernels")] == ids
        assert store.latest("kernels").run_id == ids[-1]
        assert store.get("kernels", ids[0]).run_id == ids[0]

    def test_benches_lists_history_files(self, tmp_path):
        store = RunStore(tmp_path)
        assert store.benches() == []
        store.append(make_record("obs"))
        store.append(make_record("forest"))
        assert store.benches() == ["forest", "obs"]

    def test_missing_history_reads_empty(self, tmp_path):
        store = RunStore(tmp_path)
        assert store.read("kernels") == []
        assert store.latest("kernels") is None

    def test_rejects_pathy_bench_names(self, tmp_path):
        store = RunStore(tmp_path)
        for bad in ("", "a/b", "../evil", ".hidden"):
            with pytest.raises(StoreFormatError):
                store.path_for(bad)

    def test_v0_schema_upgrades_on_read(self, tmp_path):
        # Pre-release records stored samples under "timings" and had
        # no machine fingerprint; the reader upgrades them in place.
        store = RunStore(tmp_path)
        v0 = {
            "schema": 0,
            "bench": "kernels",
            "run_id": "kernels-0-old",
            "timestamp": 10.0,
            "config": {"seed": 3},
            "timings": {"wall_s": [0.5, 0.6, 0.7]},
        }
        path = store.path_for("kernels")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(v0) + "\n")
        (rec,) = store.read("kernels")
        assert rec.schema == SCHEMA_VERSION
        assert rec.samples == {"wall_s": [0.5, 0.6, 0.7]}
        assert rec.machine == {}

    def test_newer_schema_is_a_format_error(self, tmp_path):
        store = RunStore(tmp_path)
        rec = make_record()
        obj = rec.to_json()
        obj["schema"] = 99
        path = store.path_for("kernels")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(obj) + "\n")
        with pytest.raises(StoreFormatError, match="newer than this reader"):
            store.read("kernels")

    def test_corrupt_line_names_file_and_line(self, tmp_path):
        # GraphFormatError discipline: the parse site, not a KeyError
        # three layers down.
        store = RunStore(tmp_path)
        store.append(make_record())
        path = store.path_for("kernels")
        with open(path, "a") as fh:
            fh.write("{not json\n")
        with pytest.raises(StoreFormatError) as exc:
            store.read("kernels")
        assert "line 2" in str(exc.value)
        assert str(path) in str(exc.value)

    def test_missing_field_names_file_and_line(self, tmp_path):
        store = RunStore(tmp_path)
        obj = make_record().to_json()
        del obj["samples"]
        path = store.path_for("kernels")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(obj) + "\n")
        with pytest.raises(StoreFormatError, match=r"line 1.*samples"):
            store.read("kernels")

    def test_refuses_record_without_seed(self, tmp_path):
        # Determinism contract: no seed, no stored measurement.
        store = RunStore(tmp_path)
        rec = RunRecord(
            bench="kernels", run_id="x", timestamp=1.0,
            config={"smoke": True},
            samples={"wall_s": [0.1, 0.2, 0.3]},
        )
        with pytest.raises(StoreFormatError, match="seed"):
            store.append(rec)

    def test_refuses_non_finite_samples(self, tmp_path):
        store = RunStore(tmp_path)
        rec = make_record(samples={"wall_s": [0.1, float("nan")]})
        with pytest.raises(StoreFormatError, match="non-finite"):
            store.append(rec)
        rec = make_record(samples={"wall_s": []})
        with pytest.raises(StoreFormatError, match="non-empty"):
            store.append(rec)

    def test_run_ids_are_unique(self):
        ids = {new_run_id("kernels") for _ in range(64)}
        assert len(ids) == 64
        assert all(i.startswith("kernels-") for i in ids)


# ----------------------------------------------------------------------
# statistics
# ----------------------------------------------------------------------
class TestStatPrimitives:
    def test_rankdata_ties_share_average_rank(self):
        assert rankdata([10.0, 20.0, 20.0, 30.0]).tolist() == \
            [1.0, 2.5, 2.5, 4.0]

    def test_mann_whitney_matches_published_example(self):
        # Cross-checked against scipy.stats.mannwhitneyu
        # (method="asymptotic", use_continuity=True).
        a = [19, 22, 16, 29, 24]
        b = [20, 11, 17, 12]
        res = mann_whitney_u(a, b, alternative="two-sided")
        assert res.u == pytest.approx(17.0)
        assert res.p_value == pytest.approx(0.1113, abs=1e-3)

    def test_mann_whitney_one_sided_detects_shift(self):
        slow = [2.0, 2.1, 2.2, 1.9, 2.05, 2.15]
        fast = [1.0, 1.1, 1.2, 0.9, 1.05, 1.15]
        assert mann_whitney_u(slow, fast,
                              alternative="greater").p_value < 0.01
        assert mann_whitney_u(fast, slow,
                              alternative="greater").p_value > 0.95

    def test_mann_whitney_identical_samples_is_inconclusive(self):
        res = mann_whitney_u([1.0] * 5, [1.0] * 5, alternative="greater")
        assert res.p_value == 1.0

    def test_a12_bounds_and_symmetry(self):
        hi, lo = [2.0, 3.0, 4.0], [0.5, 1.0, 1.5]
        assert a12(hi, lo) == 1.0
        assert a12(lo, hi) == 0.0
        assert a12(hi, hi) == 0.5

    def test_bootstrap_is_deterministic_and_brackets_ratio(self):
        rng = np.random.default_rng(1)
        base = (1.0 + 0.03 * rng.standard_normal(10)).tolist()
        cur = (2.0 + 0.06 * rng.standard_normal(10)).tolist()
        ci1 = bootstrap_median_ratio_ci(base, cur, seed=5)
        ci2 = bootstrap_median_ratio_ci(base, cur, seed=5)
        assert ci1 == ci2
        lo, hi = ci1
        assert lo < 2.0 < hi or (1.8 < lo and hi < 2.2)
        assert lo > 1.5


class TestDetectRegression:
    """The issue's acceptance criterion, at the report-layer defaults
    (alpha=0.05, min_effect=1.10) over >= 20 deterministic trials."""

    ALPHA = 0.05
    MIN_EFFECT = 1.10
    TRIALS = 25
    N = 9         # samples per side — a CI window of 3 runs x 3 repeats
    NOISE = 0.05  # 5% relative jitter

    def _samples(self, rng, scale):
        return (scale * (1.0 + self.NOISE * rng.standard_normal(self.N))) \
            .clip(min=1e-9).tolist()

    def test_flags_planted_2x_slowdown_every_trial(self):
        for trial in range(self.TRIALS):
            rng = np.random.default_rng(1000 + trial)
            base = self._samples(rng, 1.0)
            cur = self._samples(rng, 2.0)
            v = detect_regression(base, cur, alpha=self.ALPHA,
                                  min_effect=self.MIN_EFFECT, seed=trial)
            assert v.regressed, f"missed planted 2x in trial {trial}: " \
                                f"{v.describe()}"
            assert v.median_ratio > 1.5
            assert v.effect_a12 > 0.9

    def test_no_false_positive_on_iid_noise(self):
        for trial in range(self.TRIALS):
            rng = np.random.default_rng(5000 + trial)
            base = self._samples(rng, 1.0)
            cur = self._samples(rng, 1.0)
            v = detect_regression(base, cur, alpha=self.ALPHA,
                                  min_effect=self.MIN_EFFECT, seed=trial)
            assert not v.regressed, f"false positive in trial {trial}: " \
                                    f"{v.describe()}"

    def test_speedup_is_never_a_regression(self):
        rng = np.random.default_rng(0)
        base = self._samples(rng, 2.0)
        cur = self._samples(rng, 1.0)
        v = detect_regression(base, cur)
        assert not v.regressed
        assert v.median_ratio < 0.7

    def test_insufficient_samples_never_flags(self):
        few = [1.0] * (MIN_SAMPLES - 1)
        v = detect_regression(few, [99.0, 99.0, 99.0])
        assert not v.regressed
        assert v.median_ratio is None
        assert "insufficient" in v.note
        assert "insufficient" in v.describe()

    def test_tiny_but_significant_shift_respects_effect_floor(self):
        # 2% slower with near-zero noise: maximally significant, but
        # below the practical floor -> not a regression.
        base = [1.0 + 1e-4 * i for i in range(9)]
        cur = [1.02 + 1e-4 * i for i in range(9)]
        v = detect_regression(base, cur, min_effect=1.10)
        assert v.p_value < 0.01
        assert not v.regressed


# ----------------------------------------------------------------------
# report: laziness + gate semantics
# ----------------------------------------------------------------------
class CountingStore(RunStore):
    """RunStore that counts history-file reads, for the laziness test."""

    def __init__(self, root):
        super().__init__(root)
        self.reads = {}

    def read(self, bench):
        self.reads[bench] = self.reads.get(bench, 0) + 1
        return super().read(bench)


class TestExperimentReport:
    def _seeded_store(self, tmp_path, *, slow_factor=1.0):
        """Baseline run at t=100 (promoted) + 3 current runs after."""
        store = CountingStore(tmp_path / "runs")
        baseline = make_record(
            timestamp=100.0,
            samples={"wall_s": [1.0, 1.02, 0.98, 1.01, 0.99, 1.03]},
        )
        store.append(baseline)
        BaselineRegistry.for_store(store).promote(baseline)
        for i in range(3):
            store.append(make_record(
                timestamp=200.0 + i,
                samples={"wall_s": [slow_factor * v
                                    for v in (1.0, 1.01, 0.99)]},
            ))
        return store

    def test_history_file_read_at_most_once_per_report(self, tmp_path):
        store = self._seeded_store(tmp_path)
        report = ExperimentReport(store)
        assert store.reads == {}  # constructing a report costs nothing
        report.regressions("kernels")
        report.time_series("kernels", "wall_s")
        report.metrics("kernels")
        _ = report.all_regressions
        assert store.reads == {"kernels": 1}

    def test_confirmed_regression_on_slow_current(self, tmp_path):
        store = self._seeded_store(tmp_path, slow_factor=2.0)
        cmp_ = ExperimentReport(store).regressions("kernels")
        assert cmp_.machine_match
        assert cmp_.regressed
        assert cmp_.verdicts["wall_s"].regressed
        assert len(cmp_.current_ids) == 3

    def test_no_regression_on_steady_current(self, tmp_path):
        store = self._seeded_store(tmp_path, slow_factor=1.0)
        cmp_ = ExperimentReport(store).regressions("kernels")
        assert not cmp_.regressed
        assert not cmp_.verdicts["wall_s"].regressed

    def test_cross_machine_is_advisory_only(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        other = dict(machine_fingerprint(), cpu_count=999,
                     platform="other-os")
        baseline = make_record(
            timestamp=100.0, machine=other,
            samples={"wall_s": [1.0, 1.02, 0.98, 1.01, 0.99, 1.03]},
        )
        store.append(baseline)
        BaselineRegistry.for_store(store).promote(baseline)
        for i in range(3):
            store.append(make_record(
                timestamp=200.0 + i,
                samples={"wall_s": [2.0, 2.02, 1.98]},
            ))
        cmp_ = ExperimentReport(store).regressions("kernels")
        assert not cmp_.machine_match
        assert not cmp_.regressed          # never confirmed cross-machine
        assert cmp_.advisory_regressions == ["wall_s"]
        assert any("ADVISORY" in ln for ln in cmp_.describe_lines())

    def test_same_commit_reruns_before_promotion_pool_into_baseline(
            self, tmp_path):
        store = RunStore(tmp_path / "runs")
        for ts in (50.0, 60.0):
            store.append(make_record(
                timestamp=ts, samples={"wall_s": [1.0, 1.01, 0.99]}))
        baseline = make_record(
            timestamp=100.0, samples={"wall_s": [1.0, 1.02, 0.98]})
        store.append(baseline)
        BaselineRegistry.for_store(store).promote(baseline)
        report = ExperimentReport(store)
        pool, ids = report._baseline_pool("kernels", baseline)
        assert len(ids) == 3               # both earlier runs pooled in
        assert len(pool["wall_s"]) == 9
        # ...and with no runs after promotion there is nothing current.
        cmp_ = report.regressions("kernels")
        assert cmp_.current_ids == ()
        assert "no runs newer" in cmp_.note

    def test_same_commit_rerun_after_promotion_stays_current(
            self, tmp_path):
        # The pool must not swallow future same-commit runs, or a
        # regression on the same commit could never be seen.
        store = self._seeded_store(tmp_path, slow_factor=2.0)
        cmp_ = ExperimentReport(store).regressions("kernels")
        assert cmp_.regressed

    def test_no_baseline_means_recording_only(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        store.append(make_record())
        cmp_ = ExperimentReport(store).regressions("kernels")
        assert not cmp_.regressed
        assert "recording only" in cmp_.note

    def test_missing_baseline_record_is_reported(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        ghost = make_record(run_id="kernels-0-ghost")
        BaselineRegistry.for_store(store).promote(ghost)
        store.append(make_record())
        cmp_ = ExperimentReport(store).regressions("kernels")
        assert not cmp_.regressed
        assert "missing from" in cmp_.note

    def test_compare_runs_pairwise(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        a = make_record(timestamp=1.0,
                        samples={"wall_s": [1.0, 1.01, 0.99]})
        b = make_record(timestamp=2.0,
                        samples={"wall_s": [2.0, 2.01, 1.99]})
        store.append(a)
        store.append(b)
        verdicts = ExperimentReport(store).compare_runs(
            "kernels", a.run_id, b.run_id)
        assert verdicts["wall_s"].median_ratio == pytest.approx(2.0,
                                                                rel=0.05)
        with pytest.raises(KeyError, match="nope"):
            ExperimentReport(store).compare_runs("kernels", a.run_id,
                                                 "nope")


# ----------------------------------------------------------------------
# baseline registry
# ----------------------------------------------------------------------
class TestBaselineRegistry:
    def test_promote_and_get(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        registry = BaselineRegistry.for_store(store)
        assert registry.get("kernels") is None
        rec = make_record()
        entry = registry.promote(rec)
        assert entry["run_id"] == rec.run_id
        assert registry.get("kernels") == rec.run_id
        # second promote replaces
        rec2 = make_record()
        registry.promote(rec2)
        assert registry.get("kernels") == rec2.run_id

    def test_corrupt_registry_is_a_format_error(self, tmp_path):
        path = tmp_path / "baselines.json"
        path.write_text("{broken\n")
        with pytest.raises(StoreFormatError, match="invalid JSON"):
            BaselineRegistry(path).load()
        path.write_text('{"kernels": {"git_hash": "x"}}\n')
        with pytest.raises(StoreFormatError, match="run_id"):
            BaselineRegistry(path).load()


# ----------------------------------------------------------------------
# CLI: promote / compare / history through the real entry point
# ----------------------------------------------------------------------
class TestBenchCLI:
    def _store_with_runs(self, tmp_path, *, slow_factor=1.0):
        store = RunStore(tmp_path / "runs")
        baseline = make_record(
            timestamp=100.0,
            samples={"wall_s": [1.0, 1.02, 0.98, 1.01, 0.99, 1.03]},
        )
        store.append(baseline)
        for i in range(3):
            store.append(make_record(
                timestamp=200.0 + i,
                samples={"wall_s": [slow_factor * v
                                    for v in (1.0, 1.01, 0.99)]},
            ))
        return store, baseline

    def _cli(self, tmp_path, *argv):
        return cli_main(["bench", "--store-dir",
                         str(tmp_path / "runs"), *argv])

    def test_promote_then_compare_clean(self, tmp_path, capsys):
        store, baseline = self._store_with_runs(tmp_path)
        rc = self._cli(tmp_path, "baseline", "promote", "kernels",
                       "--run-id", baseline.run_id)
        assert rc == 0
        assert BaselineRegistry.for_store(store).get("kernels") == \
            baseline.run_id
        rc = self._cli(tmp_path, "compare", "--strict")
        out = capsys.readouterr().out
        assert rc == 0
        assert "no confirmed regressions" in out

    def test_compare_strict_fails_on_regression(self, tmp_path, capsys):
        _, baseline = self._store_with_runs(tmp_path, slow_factor=2.0)
        assert self._cli(tmp_path, "baseline", "promote", "kernels",
                         "--run-id", baseline.run_id) == 0
        rc = self._cli(tmp_path, "compare", "--strict")
        captured = capsys.readouterr()
        assert rc == 1
        assert "REGRESSED" in captured.out
        assert "confirmed regressions: kernels" in captured.err
        # without --strict the same regression is reported but exit 0
        assert self._cli(tmp_path, "compare") == 0

    def test_promote_latest_and_if_missing(self, tmp_path, capsys):
        store, _ = self._store_with_runs(tmp_path)
        assert self._cli(tmp_path, "baseline", "promote", "all") == 0
        promoted = BaselineRegistry.for_store(store).get("kernels")
        assert promoted == store.latest("kernels").run_id
        assert self._cli(tmp_path, "baseline", "promote", "all",
                         "--if-missing") == 0
        assert "skipping" in capsys.readouterr().out
        assert BaselineRegistry.for_store(store).get("kernels") == promoted

    def test_promote_unknown_run_fails(self, tmp_path):
        self._store_with_runs(tmp_path)
        assert self._cli(tmp_path, "baseline", "promote", "kernels",
                         "--run-id", "kernels-0-nope") == 2

    def test_baseline_show_and_history(self, tmp_path, capsys):
        _, baseline = self._store_with_runs(tmp_path)
        self._cli(tmp_path, "baseline", "promote", "kernels",
                  "--run-id", baseline.run_id)
        capsys.readouterr()
        assert self._cli(tmp_path, "baseline", "show") == 0
        assert baseline.run_id in capsys.readouterr().out
        assert self._cli(tmp_path, "history", "kernels") == 0
        out = capsys.readouterr().out
        assert "kernels.wall_s:" in out
        assert out.count("git=") == 4
        assert self._cli(tmp_path, "history", "nosuch") == 2

    def test_corrupt_store_surfaces_line_numbered_error(self, tmp_path,
                                                        capsys):
        store, _ = self._store_with_runs(tmp_path)
        with open(store.path_for("kernels"), "a") as fh:
            fh.write("garbage\n")
        rc = self._cli(tmp_path, "compare")
        captured = capsys.readouterr()
        assert rc == 2   # ReproError path in the main CLI
        assert "line 5" in captured.err
