"""Real process-based parallel counting — entry-point contracts."""

import pytest

from repro.counting import count_kcliques
from repro.errors import CountingError, ParallelModelError
from repro.graph.generators import complete_graph, empty_graph, erdos_renyi
from repro.ordering import core_ordering, directionalize
from repro.parallel import count_kcliques_processes


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(60, 0.25, seed=51)


def test_single_process_matches_serial(graph):
    o = core_ordering(graph)
    serial = count_kcliques(graph, 4, o).count
    assert count_kcliques_processes(graph, 4, o, processes=1).count == serial


def test_single_process_returns_full_result(graph):
    # Regression: the old fast path returned ``result.count or 0`` — a
    # bare int that dropped counters/metadata and masked None as 0.
    o = core_ordering(graph)
    serial = count_kcliques(graph, 4, o)
    got = count_kcliques_processes(graph, 4, o, processes=1)
    assert got.count == serial.count
    assert got.counters.function_calls == serial.counters.function_calls
    assert got.approximate is False
    assert got.degraded_from is None
    assert got.k == 4


def test_two_processes_match_serial(graph):
    o = core_ordering(graph)
    serial = count_kcliques(graph, 4, o).count
    assert count_kcliques_processes(graph, 4, o, processes=2).count == serial


def test_accepts_dag(graph):
    o = core_ordering(graph)
    dag = directionalize(graph, o)
    assert count_kcliques_processes(graph, 3, dag, processes=2).count == (
        count_kcliques(graph, 3, o).count
    )


def test_chunking_does_not_change_result(graph):
    o = core_ordering(graph)
    serial = count_kcliques(graph, 3, o).count
    got = count_kcliques_processes(
        graph, 3, o, processes=2, chunks_per_process=7
    )
    assert got.count == serial


def test_empty_graph():
    g = empty_graph(0)
    r = count_kcliques_processes(g, 3, core_ordering(g), processes=2)
    assert r.count == 0


def test_validation():
    g = complete_graph(4)
    o = core_ordering(g)
    with pytest.raises(CountingError):
        count_kcliques_processes(g, 0, o)
    with pytest.raises(ParallelModelError):
        count_kcliques_processes(g, 3, o, processes=0)
    with pytest.raises(ParallelModelError):
        count_kcliques_processes(g, 3, o, processes=2, chunks_per_process=0)
    with pytest.raises(CountingError):
        count_kcliques_processes(g, 3, o, processes=1, structure="btree")
