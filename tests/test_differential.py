"""Cross-engine differential suite — the kernel layer's correctness net.

Forty seeded random graphs (R-MAT, Chung-Lu, planted-clique overlays)
are counted by every engine {SCT, Pivoter baseline, Arb-Count
enumeration} over every subgraph structure {dense, sparse, remap} and
every bitset-kernel backend registered *and runnable here* (bigint,
wordarray, and numba when the ``[jit]`` extra is installed — an
unavailable optional backend is a skip, not a failure), for target-k
and all-k runs.  Every combination must return *exactly* the same
counts, anchored to the brute-force reference at k = 3 and 4; and the
instrumentation :class:`~repro.counting.counters.Counters` must be
bit-identical across backends, because the performance model may never
be able to tell which backend produced a run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.counting import (
    count_all_sizes,
    count_kcliques,
    count_kcliques_enumeration,
)
from repro.counting.pivoter import run_pivoter
from repro.kernels import KERNELS, available_kernels

from tests.corpus import GRAPHS as _GRAPHS
from tests.corpus import IDS as _IDS
from tests.corpus import ordering as _ordering
from tests.corpus import truth as _truth

STRUCTURES_ALL = ("dense", "sparse", "remap")
#: Every *runnable* registered backend auto-enrolls (numba included
#: when importable); see test_registry_covers_backends for the check
#: that nothing silently drops out of the registry itself.
BACKENDS = tuple(available_kernels())


def test_registry_covers_backends():
    assert set(BACKENDS) <= set(KERNELS)
    assert {"bigint", "wordarray"} <= set(BACKENDS)
    assert "numba" in KERNELS  # registered even when not importable


def test_suite_shape():
    assert len(_GRAPHS) == 40
    # The suite must exercise both sub-word and multi-word subgraphs.
    assert any(g.num_vertices > 16 for _, g in _GRAPHS)
    assert all(g.num_vertices <= 32 for _, g in _GRAPHS)


@pytest.mark.parametrize("name,g", _GRAPHS, ids=_IDS)
def test_sct_all_structures_all_backends(name, g):
    o = _ordering(name, g)
    for k in (3, 4):
        expect = _truth(name, g, k)
        for structure in STRUCTURES_ALL:
            for backend in BACKENDS:
                r = count_kcliques(g, k, o, structure=structure,
                                   kernel=backend)
                assert r.count == expect, (
                    f"{name}: SCT {structure}/{backend} k={k} "
                    f"got {r.count}, brute force {expect}"
                )
                assert r.kernel == backend
                assert r.structure == structure


@pytest.mark.parametrize("name,g", _GRAPHS, ids=_IDS)
def test_arbcount_all_structures_all_backends(name, g):
    o = _ordering(name, g)
    for k, structures in ((3, ("remap",)), (4, STRUCTURES_ALL)):
        expect = _truth(name, g, k)
        for structure in structures:
            for backend in BACKENDS:
                r = count_kcliques_enumeration(g, k, o, structure=structure,
                                               kernel=backend)
                assert r.count == expect, (
                    f"{name}: arbcount {structure}/{backend} k={k} "
                    f"got {r.count}, brute force {expect}"
                )


@pytest.mark.parametrize("name,g", _GRAPHS, ids=_IDS)
def test_pivoter_baseline_both_backends(name, g):
    expect = _truth(name, g, 4)
    for backend in BACKENDS:
        run = run_pivoter(g, 4, kernel=backend)
        assert run.result.count == expect, f"{name}: pivoter/{backend}"
        assert run.result.structure == "dense"


@pytest.mark.parametrize("name,g", _GRAPHS, ids=_IDS)
def test_all_k_identical_across_combos(name, g):
    o = _ordering(name, g)
    reference = None
    for structure in STRUCTURES_ALL:
        for backend in BACKENDS:
            counts = count_all_sizes(g, o, structure=structure,
                                     kernel=backend).all_counts
            if reference is None:
                reference = counts
            else:
                assert counts == reference, (
                    f"{name}: all-k {structure}/{backend} diverged"
                )
    # Anchors: vertices, edges, and the brute-forced sizes.
    assert reference[1] == g.num_vertices
    assert reference[2] == g.num_edges
    for k in (3, 4):
        got = reference[k] if k < len(reference) else 0
        assert got == _truth(name, g, k)
    # Target-k and all-k must agree at every counted size.
    for k in range(1, len(reference)):
        assert reference[k] == count_kcliques(g, k, o).count


# ----------------------------------------------------------------------
# Counters consistency: the perf model must be backend-invariant
# (identical lookups, build_words, set-op words, tree shape).
# ----------------------------------------------------------------------
_COUNTER_GRAPHS = _GRAPHS[::5]  # every fifth graph, all three families


@pytest.mark.parametrize("name,g", _COUNTER_GRAPHS,
                         ids=[n for n, _ in _COUNTER_GRAPHS])
@pytest.mark.parametrize("structure", STRUCTURES_ALL)
def test_counters_backend_invariant(name, g, structure):
    o = _ordering(name, g)

    def runs(backend):
        return (
            count_kcliques(g, 4, o, structure=structure, kernel=backend),
            count_all_sizes(g, o, structure=structure, kernel=backend),
            count_kcliques_enumeration(g, 4, o, structure=structure,
                                       kernel=backend),
        )

    for ref, other in zip(runs("bigint"), runs("wordarray")):
        assert ref.counters.as_dict() == other.counters.as_dict(), (
            f"{name}/{structure}: counters differ between backends "
            f"(k={ref.k})"
        )
        assert np.array_equal(ref.per_root_work, other.per_root_work)
        assert np.array_equal(ref.per_root_memory, other.per_root_memory)
