"""Materialized-forest differential + property suite.

A :class:`~repro.counting.forest.SCTForest` built once must answer
every counting query **bit-identically** to the direct engines: total
counts, the all-k distribution, per-vertex and per-edge attribution —
across the shared 40-graph corpus, on both kernel backends, and for a
checkpoint-resumed build.  On top of the differential net, property
tests pin the uniform clique sampler (real cliques, seeded
determinism, leaf-weight proportions on a planted two-clique graph),
the degradation ladder (member spill vs hard memory failure), the
in-process cache, and the ``.npz`` persistence round-trip.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np
import pytest

from repro.counting import (
    count_all_sizes,
    count_kcliques,
    per_edge_counts,
    per_vertex_counts,
    per_vertex_profiles,
)
from repro.counting.allk import clique_size_distribution, max_clique_size
from repro.counting.forest import (
    SCTForest,
    build_forest,
    clear_forest_cache,
    get_forest,
    load_forest,
)
from repro.counting.sct import SCTEngine
from repro.errors import (
    CheckpointError,
    CountingError,
    MemoryBudgetExceededError,
    RunInterrupted,
)
from repro.graph.build import from_edge_list
from repro.graph.generators import erdos_renyi, path_graph
from repro.kernels import KERNELS
from repro.ordering import core_ordering
from repro.runtime import FaultPlan, FaultSpec, RunController
from repro.runtime.budget import Budget

from tests.corpus import GRAPHS, IDS
from tests.corpus import ordering as corpus_ordering
from tests.corpus import truth as corpus_truth

BACKENDS = tuple(sorted(KERNELS))  # ("bigint", "wordarray")


@pytest.fixture
def g():
    return erdos_renyi(50, 0.25, seed=23)


def _assert_forests_identical(a: SCTForest, b: SCTForest) -> None:
    """Bit-identical forests: every array, counter and the descriptor."""
    assert a.num_vertices == b.num_vertices
    assert np.array_equal(a.held_n, b.held_n)
    assert np.array_equal(a.pivot_n, b.pivot_n)
    assert np.array_equal(a.roots, b.roots)
    assert a.has_members == b.has_members
    if a.has_members:
        assert np.array_equal(a.held_members, b.held_members)
        assert np.array_equal(a.pivot_members, b.pivot_members)
    assert np.array_equal(a.per_root_work, b.per_root_work)
    assert np.array_equal(a.per_root_memory, b.per_root_memory)
    assert a.counters.as_dict() == b.counters.as_dict()
    assert a.descriptor == b.descriptor
    assert a.count_all() == b.count_all()


# ----------------------------------------------------------------------
# Differential net: forest-served queries == direct engines, corpus-wide
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name,g", GRAPHS, ids=IDS)
def test_forest_matches_direct_engines(name, g):
    o = corpus_ordering(name, g)
    reference_allk = None
    for backend in BACKENDS:
        forest = build_forest(g, o, kernel=backend)
        allk = count_all_sizes(g, o, kernel=backend).all_counts
        assert forest.count_all() == allk, (
            f"{name}/{backend}: forest all-k diverged"
        )
        if reference_allk is None:
            reference_allk = allk
        else:
            assert allk == reference_allk, f"{name}: backends diverged"
        assert forest.max_clique_size() == len(allk) - 1
        for k in (3, 4):
            expect = corpus_truth(name, g, k)
            assert forest.count(k) == expect, (
                f"{name}/{backend}: forest count({k}) != brute force"
            )
            assert forest.count(k) == count_kcliques(
                g, k, o, kernel=backend
            ).count
        assert forest.per_vertex(3) == per_vertex_counts(
            g, 3, o, kernel=backend
        ), f"{name}/{backend}: per-vertex diverged"
        assert forest.per_edge(3) == per_edge_counts(
            g, 3, o, kernel=backend
        ), f"{name}/{backend}: per-edge diverged"


_COUNTER_GRAPHS = GRAPHS[::5]


@pytest.mark.parametrize("name,g", _COUNTER_GRAPHS,
                         ids=[n for n, _ in _COUNTER_GRAPHS])
def test_forest_counters_backend_invariant(name, g):
    """The build's instrumentation must not betray the backend."""
    o = corpus_ordering(name, g)
    ref = build_forest(g, o, kernel="bigint")
    other = build_forest(g, o, kernel="wordarray")
    assert ref.counters.as_dict() == other.counters.as_dict()
    assert np.array_equal(ref.per_root_work, other.per_root_work)
    assert np.array_equal(ref.per_root_memory, other.per_root_memory)
    assert np.array_equal(ref.held_n, other.held_n)
    assert np.array_equal(ref.pivot_n, other.pivot_n)


def test_forest_per_vertex_sum_invariant(g):
    """Per-vertex counts sum to k x (total k-cliques)."""
    forest = build_forest(g, core_ordering(g))
    for k in (3, 4, 5):
        assert sum(forest.per_vertex(k)) == k * forest.count(k)
        assert sum(forest.per_edge(k).values()) == (
            k * (k - 1) // 2 * forest.count(k)
        )


def test_forest_profiles_and_wrapper_paths(g):
    """The ``forest=`` short-circuits in the query wrappers serve the
    same answers as the direct recursion."""
    o = core_ordering(g)
    forest = build_forest(g, o)
    assert per_vertex_counts(g, 4, o, forest=forest) == \
        per_vertex_counts(g, 4, o)
    assert per_edge_counts(g, 3, o, forest=forest) == \
        per_edge_counts(g, 3, o)
    assert per_vertex_profiles(g, o, forest=forest) == \
        per_vertex_profiles(g, o)
    assert clique_size_distribution(g, o, forest=forest) == \
        clique_size_distribution(g, o)
    assert max_clique_size(g, o, forest=forest) == max_clique_size(g, o)


def test_engine_forest_accessor(g):
    """``SCTEngine.forest()`` serves the engine's own counts."""
    engine = SCTEngine(g, core_ordering(g))
    forest = engine.forest(cache=False)
    for k in (3, 5):
        assert forest.count(k) == engine.count(k).count
    assert forest.descriptor["kernel"] == engine.kernel.name
    assert forest.descriptor["structure"] == engine.structure.name


# ----------------------------------------------------------------------
# Checkpoint/resume: an interrupted build resumes bit-identically
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kernel", ["bigint", "wordarray"])
@pytest.mark.parametrize("at_op", [1, 7, 25])
def test_forest_build_resume_bit_identical(tmp_path, g, kernel, at_op):
    base = build_forest(g, core_ordering(g), kernel=kernel)
    path = tmp_path / "ck.json"
    ctl = RunController(
        checkpoint_path=path,
        faults=FaultPlan(FaultSpec("interrupt", at_op=at_op)),
    )
    with pytest.raises(RunInterrupted):
        build_forest(g, core_ordering(g), kernel=kernel, controller=ctl)
    resumed = build_forest(
        g, core_ordering(g), kernel=kernel,
        controller=RunController(checkpoint_path=path, resume=True),
    )
    _assert_forests_identical(resumed, base)
    # The resumed forest still answers every query correctly.
    assert resumed.per_vertex(4) == base.per_vertex(4)


def test_forest_multi_interrupt_chain(tmp_path, g):
    base = build_forest(g, core_ordering(g))
    path = tmp_path / "ck.json"
    resume = False
    forest = None
    for at_op in (5, 9, 3, None):
        faults = (
            FaultPlan(FaultSpec("interrupt", at_op=at_op))
            if at_op is not None else None
        )
        ctl = RunController(checkpoint_path=path, resume=resume,
                            faults=faults)
        if at_op is not None:
            with pytest.raises(RunInterrupted):
                build_forest(g, core_ordering(g), controller=ctl)
        else:
            forest = build_forest(g, core_ordering(g), controller=ctl)
        resume = True
    _assert_forests_identical(forest, base)


# ----------------------------------------------------------------------
# Degradation ladder: member spill vs hard memory failure
# ----------------------------------------------------------------------
def _member_spill_budget(forest: SCTForest) -> int:
    """A watermark the counts-only model fits under but the full
    member-recording model does not (derived, not hard-coded)."""
    leaf_bytes = 12 * forest.num_leaves
    member_bytes = 4 * (forest.held_members.size
                        + forest.pivot_members.size)
    peak = forest.counters.peak_subgraph_bytes
    budget = leaf_bytes + member_bytes - 1
    assert budget >= max(peak, leaf_bytes), (
        "graph too small to separate the spill rungs"
    )
    return budget


def test_memory_budget_hard_raise_without_degrade(g):
    full = build_forest(g, core_ordering(g))
    budget = _member_spill_budget(full)
    ctl = RunController(Budget(max_memory_bytes=budget))
    with pytest.raises(MemoryBudgetExceededError):
        build_forest(g, core_ordering(g), controller=ctl)


def test_memory_budget_spills_members_with_degrade(g):
    full = build_forest(g, core_ordering(g))
    budget = _member_spill_budget(full)
    ctl = RunController(Budget(max_memory_bytes=budget), degrade=True)
    spilled = build_forest(g, core_ordering(g), controller=ctl)
    assert spilled.degraded_from == "members"
    assert not spilled.has_members
    # Counting stays exact; attribution honestly refuses.
    assert spilled.count_all() == full.count_all()
    assert spilled.max_clique_size() == full.max_clique_size()
    with pytest.raises(CountingError, match="member"):
        spilled.per_vertex(3)
    with pytest.raises(CountingError, match="member"):
        spilled.per_edge(3)


def test_subgraph_footprint_beyond_budget_raises_even_degraded(g):
    """Spilling member arrays cannot fix a watermark below the per-root
    subgraph footprint itself — that must still raise."""
    full = build_forest(g, core_ordering(g))
    tiny = max(1, full.counters.peak_subgraph_bytes // 2)
    ctl = RunController(Budget(max_memory_bytes=tiny), degrade=True)
    with pytest.raises(MemoryBudgetExceededError):
        build_forest(g, core_ordering(g), controller=ctl)


def test_members_false_is_counts_only(g):
    forest = build_forest(g, core_ordering(g), members=False)
    full = build_forest(g, core_ordering(g))
    assert not forest.has_members
    assert forest.degraded_from is None  # asked for, not degraded to
    assert forest.count_all() == full.count_all()
    with pytest.raises(CountingError, match="member"):
        forest.per_vertex(3)
    with pytest.raises(CountingError, match="member"):
        forest.sample_cliques(3, 1, rng=0)


# ----------------------------------------------------------------------
# Persistence + cache
# ----------------------------------------------------------------------
def test_save_load_roundtrip(tmp_path, g):
    forest = build_forest(g, core_ordering(g))
    path = tmp_path / "forest.npz"
    forest.save(path)
    loaded = load_forest(path, g)
    _assert_forests_identical(loaded, forest)
    assert loaded.per_edge(3) == forest.per_edge(3)
    # No .tmp debris from the atomic write.
    assert [p.name for p in tmp_path.iterdir()] == ["forest.npz"]


def test_load_refuses_wrong_graph(tmp_path, g):
    forest = build_forest(g, core_ordering(g))
    path = tmp_path / "forest.npz"
    forest.save(path)
    other = erdos_renyi(50, 0.25, seed=24)
    with pytest.raises(CheckpointError, match="graph_fingerprint"):
        load_forest(path, other)


def test_load_refuses_corrupt_file(tmp_path):
    path = tmp_path / "forest.npz"
    path.write_bytes(b"not a forest")
    with pytest.raises(CheckpointError):
        load_forest(path)


def test_get_forest_cache_identity(g):
    clear_forest_cache()
    o = core_ordering(g)
    a = get_forest(g, o)
    assert get_forest(g, o) is a
    # A different kernel is a different cache entry.
    b = get_forest(g, o, kernel="wordarray")
    assert b is not a
    clear_forest_cache()
    assert get_forest(g, o) is not a
    clear_forest_cache()


# ----------------------------------------------------------------------
# sample_cliques: real cliques, determinism, leaf-weight proportions
# ----------------------------------------------------------------------
def test_sample_cliques_are_real_cliques(g):
    forest = build_forest(g, core_ordering(g))
    adj = g.adjacency_sets()
    for k in (3, 4, 5):
        for clique in forest.sample_cliques(k, 50, rng=7):
            assert len(clique) == k
            assert len(set(clique)) == k
            assert clique == tuple(sorted(clique))
            for u, v in combinations(clique, 2):
                assert v in adj[u], f"sampled non-edge ({u}, {v})"


def test_sample_cliques_seeded_determinism(g):
    forest = build_forest(g, core_ordering(g))
    a = forest.sample_cliques(4, 100, rng=42)
    b = forest.sample_cliques(4, 100, rng=42)
    assert a == b
    c = forest.sample_cliques(4, 100, rng=np.random.default_rng(42))
    assert c == a


def test_sample_cliques_uniform_proportions():
    """Disjoint K6 + K4: of the 24 triangles, 20 live in the K6, so a
    uniform sampler must put ~5/6 of its draws there."""
    edges = list(combinations(range(6), 2)) + \
        list(combinations(range(6, 10), 2))
    g = from_edge_list(edges)
    forest = build_forest(g, core_ordering(g))
    assert forest.count(3) == 20 + 4
    n = 3000
    samples = forest.sample_cliques(3, n, rng=1234)
    in_k6 = sum(1 for c in samples if max(c) < 6)
    expected = 20 / 24
    # ~6 sigma of the binomial, deterministic under the seeded rng.
    assert abs(in_k6 / n - expected) < 0.04
    # Every individual triangle should appear (support coverage).
    assert len(set(samples)) == 24


def test_sample_cliques_errors():
    g = path_graph(6)  # no triangles
    forest = build_forest(g, core_ordering(g))
    with pytest.raises(CountingError, match="no 3-cliques"):
        forest.sample_cliques(3, 10, rng=0)
    with pytest.raises(CountingError):
        forest.sample_cliques(0, 10, rng=0)
    with pytest.raises(CountingError):
        forest.sample_cliques(3, -1, rng=0)


# ----------------------------------------------------------------------
# hardened .npz loading: quarantine, typed errors, rebuild fallback
# ----------------------------------------------------------------------
def test_truncated_forest_quarantined_with_typed_error(tmp_path, g):
    """The byte-truncation regression: a torn .npz raises
    ForestFormatError naming the path, and the corpse is quarantined
    as .corrupt instead of staying under the real name."""
    from repro.counting.forest import load_or_rebuild_forest
    from repro.errors import ForestFormatError

    path = tmp_path / "forest.npz"
    build_forest(g, core_ordering(g)).save(path)
    raw = path.read_bytes()
    path.write_bytes(raw[: len(raw) // 2])
    with pytest.raises(ForestFormatError, match="corrupt forest") as ei:
        load_forest(path)
    assert str(path) in str(ei.value)
    assert not path.exists()
    assert (tmp_path / "forest.npz.corrupt").exists()
    # ForestFormatError subclasses CheckpointError, so existing
    # callers catching the broad type keep working.
    assert isinstance(ei.value, CheckpointError)


def test_missing_forest_is_not_quarantined(tmp_path):
    from repro.errors import ForestFormatError

    with pytest.raises(CheckpointError, match="cannot read") as ei:
        load_forest(tmp_path / "absent.npz")
    assert not isinstance(ei.value, ForestFormatError)
    assert list(tmp_path.iterdir()) == []


def test_load_or_rebuild_heals_corrupt_artifact(tmp_path, g):
    from repro.counting.forest import clear_forest_cache, load_or_rebuild_forest
    from repro.errors import DegradedResultWarning

    clear_forest_cache()
    path = tmp_path / "forest.npz"
    original = build_forest(g, core_ordering(g))
    original.save(path)
    path.write_bytes(path.read_bytes()[:100])
    with pytest.warns(DegradedResultWarning, match="rebuilding forest"):
        forest, rebuilt = load_or_rebuild_forest(path, g)
    assert rebuilt
    assert forest.count(3) == original.count(3)
    assert forest.count_all() == original.count_all()
    # The artifact was healed in place: the next load is clean.
    healed, rebuilt2 = load_or_rebuild_forest(path, g)
    assert not rebuilt2
    assert healed.count(3) == original.count(3)


def test_load_or_rebuild_does_not_mask_missing_file(tmp_path, g):
    from repro.counting.forest import load_or_rebuild_forest

    with pytest.raises(CheckpointError, match="cannot read"):
        load_or_rebuild_forest(tmp_path / "absent.npz", g)


def test_forest_save_routes_through_safeio_faults(tmp_path, g):
    forest = build_forest(g, core_ordering(g))
    faults = FaultPlan(FaultSpec("io_enospc", at_op=1))
    with pytest.raises(CheckpointError, match="cannot write"):
        forest.save(tmp_path / "forest.npz", faults=faults)
    assert list(tmp_path.iterdir()) == []


def test_cli_forest_use_rebuilds_from_corrupt_file(tmp_path, g, capsys):
    from repro.cli import main
    from repro.counting.forest import clear_forest_cache
    from repro.graph.io import write_edge_list

    clear_forest_cache()
    edges = tmp_path / "g.txt"
    write_edge_list(g, edges)
    path = tmp_path / "forest.npz"
    build_forest(g, core_ordering(g)).save(path)
    expected = SCTEngine(g, core_ordering(g)).count(3)
    path.write_bytes(path.read_bytes()[:80])
    import warnings as _warnings

    with _warnings.catch_warnings():
        _warnings.simplefilter("ignore")
        code = main(["count", "--edge-list", str(edges), "-k", "3",
                     "--forest", "use", "--forest-path", str(path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "rebuilt; corrupt file quarantined" in out
    assert f"3-cliques: {expected.count:,}" in out
