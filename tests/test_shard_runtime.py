"""The crash-safe out-of-core shard runtime.

The contract under test, per docs/sharding.md:

* **exactness** — a sharded run with the watermark far below the
  working set is bit-identical to the in-memory engines (counts,
  per-root arrays, integer counters) on both kernel backends;
* **crash safety** — a run killed at *any* shard boundary (the kill
  matrix) or mid-spill resumes from the ledger to the same result;
* **fault tolerance** — every injected single I/O fault is absorbed by
  quarantine + bounded retry (exact result, unflagged); a persistent
  fault exhausts the retries and either degrades explicitly
  (``degraded_from="shard"``, still exact via the in-memory fallback)
  or raises :class:`~repro.errors.ShardError` — never a wrong count.
"""

import json

import numpy as np
import pytest

from repro import obs
from repro.counting.sct import SCTEngine
from repro.errors import (
    CheckpointError,
    CountingError,
    RunInterrupted,
    ShardError,
)
from repro.graph.generators import erdos_renyi, rmat
from repro.ordering import core_ordering
from repro.ordering.directionalize import directionalize
from repro.runtime import FaultPlan, FaultSpec, RunController
from repro.shard import ShardLedger, count_sharded, plan_shards
from repro.shard.ledger import LEDGER_NAME

from .corpus import GRAPHS, IDS, ordering, truth

# A watermark far below every corpus graph's working set, so each run
# genuinely spills many shards.
TINY_MB = 512 / (1 << 20)  # 512 bytes
KERNELS = ("bigint", "wordarray")


@pytest.fixture
def g():
    return rmat(6, edge_factor=6.0, seed=7)


@pytest.fixture
def dag(g):
    return directionalize(g, core_ordering(g))


def _assert_matches_serial(res, ref):
    """Sharded vs in-memory: exact counts and per-root arrays; integer
    counters exact (float counters may differ in the last ulp from
    fold-order association, same as the process pool)."""
    assert res.count == ref.count
    assert res.all_counts == ref.all_counts
    assert np.array_equal(res.per_root_work, ref.per_root_work)
    assert np.array_equal(res.per_root_memory, ref.per_root_memory)
    a, b = res.counters.as_dict(), ref.counters.as_dict()
    assert a.keys() == b.keys()
    for key in a:
        assert a[key] == pytest.approx(b[key], rel=1e-12), key


# ---------------------------------------------------------------- planner
def test_plan_is_exhaustive_ordered_partition(g, dag):
    plan = plan_shards(g, dag, shard_bytes=512)
    assert plan.num_shards > 1
    assert plan.shards[0].lo == 0
    assert plan.shards[-1].hi == g.num_vertices
    for i, s in enumerate(plan.shards):
        assert s.index == i
        assert s.lo < s.hi
        if i:
            assert s.lo == plan.shards[i - 1].hi


def test_plan_respects_watermark_except_singletons(g, dag):
    from repro.shard.planner import estimate_root_bytes

    budget = 2048
    costs = estimate_root_bytes(g, dag)
    for s in plan_shards(g, dag, shard_bytes=budget).shards:
        if s.num_roots > 1:
            assert s.est_bytes <= budget
        else:  # a single oversized root still gets a shard
            assert s.est_bytes == int(costs[s.lo])


def test_plan_fingerprint_keys_inputs(g, dag):
    a = plan_shards(g, dag, shard_bytes=512)
    b = plan_shards(g, dag, shard_bytes=512)
    c = plan_shards(g, dag, shard_bytes=1024)
    assert a.fingerprint == b.fingerprint
    assert a.fingerprint != c.fingerprint


def test_plan_validation(g, dag):
    with pytest.raises(CountingError, match="shard_bytes"):
        plan_shards(g, dag, shard_bytes=0)


# ----------------------------------------------------- differential sweep
@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize(
    "name,graph", GRAPHS[::8], ids=IDS[::8]
)
def test_sharded_matches_serial_and_truth(tmp_path, name, graph, kernel):
    dag = directionalize(graph, ordering(name, graph))
    ref = SCTEngine(graph, dag, "remap", kernel=kernel).count(4)
    res = count_sharded(
        graph, dag, k=4, kernel=kernel,
        shard_mb=TINY_MB, spill_dir=tmp_path / "spill",
    )
    _assert_matches_serial(res, ref)
    assert res.count == truth(name, graph, 4)
    assert res.kernel == kernel
    assert res.degraded_from is None


@pytest.mark.parametrize("kernel", KERNELS)
def test_sharded_allk_matches_serial(tmp_path, g, dag, kernel):
    ref = SCTEngine(g, dag, "remap", kernel=kernel).count_all()
    res = count_sharded(
        g, dag, kernel=kernel, shard_mb=TINY_MB, spill_dir=tmp_path / "s"
    )
    _assert_matches_serial(res, ref)


def test_sharded_accepts_ordering_and_shard_bytes(tmp_path, g):
    ref = SCTEngine(g, core_ordering(g)).count(4)
    res = count_sharded(
        g, core_ordering(g), k=4, shard_bytes=512,
        spill_dir=tmp_path / "s",
    )
    _assert_matches_serial(res, ref)


def test_sharded_empty_graph(tmp_path):
    g = erdos_renyi(0, 0.0, seed=1)
    dag = directionalize(g, core_ordering(g))
    assert count_sharded(
        g, dag, k=3, shard_mb=1, spill_dir=tmp_path / "a"
    ).count == 0
    assert count_sharded(
        g, dag, shard_mb=1, spill_dir=tmp_path / "b"
    ).all_counts == [0]


def test_sharded_pool_path_matches_serial(tmp_path, g, dag):
    ref = SCTEngine(g, dag, "remap").count(4)
    res = count_sharded(
        g, dag, k=4, shard_mb=TINY_MB, spill_dir=tmp_path / "s",
        processes=2,
    )
    assert res.count == ref.count
    assert np.array_equal(res.per_root_work, ref.per_root_work)


def test_executor_validation(tmp_path, g, dag):
    with pytest.raises(CountingError, match="exactly one"):
        count_sharded(g, dag, k=3, spill_dir=tmp_path)
    with pytest.raises(CountingError, match="exactly one"):
        count_sharded(
            g, dag, k=3, shard_mb=1, shard_bytes=512, spill_dir=tmp_path
        )
    with pytest.raises(CountingError, match="k must be >= 1"):
        count_sharded(g, dag, k=0, shard_mb=1, spill_dir=tmp_path)
    with pytest.raises(CountingError, match="max_retries"):
        count_sharded(
            g, dag, k=3, shard_mb=1, spill_dir=tmp_path, max_retries=-1
        )


# ------------------------------------------------------------ kill matrix
def _interrupted_then_resumed(tmp_path, g, dag, kernel, at_op, k=4):
    """Kill at shard boundary ``at_op``, then resume; return the final
    result (asserting the kill actually happened)."""
    spill = tmp_path / "spill"
    ctl = RunController(faults=FaultPlan(FaultSpec("interrupt", at_op=at_op)))
    with pytest.raises(RunInterrupted):
        count_sharded(
            g, dag, k=k, kernel=kernel, shard_mb=TINY_MB, spill_dir=spill,
            controller=ctl,
        )
    return count_sharded(
        g, dag, k=k, kernel=kernel, shard_mb=TINY_MB, spill_dir=spill,
        resume=True,
    )


@pytest.mark.parametrize("kernel", KERNELS)
def test_kill_matrix_every_shard_boundary(tmp_path, g, dag, kernel):
    """Interrupt at every shard boundary; each resume is bit-identical
    to the uninterrupted run — the satellite-4 kill matrix."""
    plan = plan_shards(g, dag, shard_bytes=int(TINY_MB * (1 << 20)))
    assert plan.num_shards >= 4
    ref = SCTEngine(g, dag, "remap", kernel=kernel).count(4)
    for boundary in range(1, plan.num_shards + 1):
        res = _interrupted_then_resumed(
            tmp_path / f"b{boundary}", g, dag, kernel, boundary
        )
        _assert_matches_serial(res, ref)


def test_kill_matrix_allk_chain(tmp_path, g, dag):
    """Two consecutive kills on one ledger, all-k — resume of a resume."""
    spill = tmp_path / "spill"
    ref = SCTEngine(g, dag, "remap").count_all()
    for at_op in (2, 3):
        ctl = RunController(
            faults=FaultPlan(FaultSpec("interrupt", at_op=at_op)),
        )
        with pytest.raises(RunInterrupted):
            count_sharded(
                g, dag, shard_mb=TINY_MB, spill_dir=spill,
                controller=ctl, resume=at_op != 2,
            )
    res = count_sharded(g, dag, shard_mb=TINY_MB, spill_dir=spill, resume=True)
    _assert_matches_serial(res, ref)


def test_resume_of_complete_run_recounts_nothing(tmp_path, g, dag):
    spill = tmp_path / "spill"
    ref = count_sharded(g, dag, k=4, shard_mb=TINY_MB, spill_dir=spill)
    before = (spill / LEDGER_NAME).read_bytes()
    res = count_sharded(
        g, dag, k=4, shard_mb=TINY_MB, spill_dir=spill, resume=True
    )
    assert res.count == ref.count
    assert np.array_equal(res.per_root_work, ref.per_root_work)
    # Pure fold from the ledger: nothing new was appended.
    assert (spill / LEDGER_NAME).read_bytes() == before


def test_mid_spill_tear_then_resume(tmp_path, g, dag):
    """A torn spill write with retries disabled fails loudly (never a
    wrong count); the next invocation resumes and lands exactly."""
    spill = tmp_path / "spill"
    ref = SCTEngine(g, dag, "remap").count(4)
    faults = FaultPlan(FaultSpec("io_partial_write", at_op=4))
    with pytest.raises(ShardError, match="failed after 1 attempts"):
        count_sharded(
            g, dag, k=4, shard_mb=TINY_MB, spill_dir=spill,
            faults=faults, max_retries=0,
        )
    # The torn artifact was quarantined, not left under its real name.
    assert list(spill.glob("*.corrupt"))
    res = count_sharded(
        g, dag, k=4, shard_mb=TINY_MB, spill_dir=spill, resume=True
    )
    _assert_matches_serial(res, ref)


# ------------------------------------------------------- fault absorption
@pytest.mark.parametrize("kind,at_op", [
    # Write ops: 1 = ledger header, then per shard 4 spill files + 2
    # ledger appends; read ops: 4 verifies per shard.  These indices
    # target spill files of the first two shards.
    ("io_partial_write", 2),
    ("io_partial_write", 8),
    ("io_corrupt_read", 1),
    ("io_corrupt_read", 5),
    ("io_enospc", 3),
    ("io_enospc", 9),
])
def test_single_io_fault_absorbed_exactly(tmp_path, g, dag, kind, at_op):
    """Any single injected I/O fault → quarantine/retry → exact result,
    unflagged.  The ISSUE's headline acceptance criterion."""
    ref = SCTEngine(g, dag, "remap").count(4)
    faults = FaultPlan(FaultSpec(kind, at_op=at_op))
    with obs.collecting() as reg:
        res = count_sharded(
            g, dag, k=4, shard_mb=TINY_MB, spill_dir=tmp_path / "s",
            faults=faults,
        )
        retried = reg.counter("shard_retries").value
        spilled = reg.counter("shard_spilled_bytes").value
    _assert_matches_serial(res, ref)
    assert res.degraded_from is None
    assert retried >= 1
    assert spilled > 0


def test_corrupt_read_quarantines_and_respills(tmp_path, g, dag):
    faults = FaultPlan(FaultSpec("io_corrupt_read", at_op=1))
    spill = tmp_path / "s"
    with obs.collecting() as reg:
        count_sharded(
            g, dag, k=4, shard_mb=TINY_MB, spill_dir=spill, faults=faults
        )
        assert reg.counter("shard_quarantined").value == 1
    corpses = list(spill.glob("*.corrupt"))
    assert len(corpses) == 1


def test_persistent_fault_degrades_exactly(tmp_path, g, dag):
    """Retries exhausted + degrade → the in-memory fallback rung: the
    count is still exact but flagged ``degraded_from="shard"``."""
    ref = SCTEngine(g, dag, "remap").count(4)
    faults = FaultPlan(FaultSpec("io_enospc", at_op=4, repeat=True))
    with obs.collecting() as reg:
        res = count_sharded(
            g, dag, k=4, shard_mb=TINY_MB, spill_dir=tmp_path / "s",
            faults=faults, degrade=True, max_retries=2,
        )
        rungs = reg.counter(
            "runtime_degradations_total", rung="shard_fallback"
        ).value
    assert res.count == ref.count
    assert res.degraded_from == "shard"
    assert rungs >= 1


def test_torn_ledger_append_is_durability_only(tmp_path, g, dag):
    """A fault on a *ledger append* (write op 7 = shard 0's done
    record) never perturbs the run's result — only durability: the
    resume recounts whatever the torn tail lost."""
    spill = tmp_path / "spill"
    ref = SCTEngine(g, dag, "remap").count(4)
    res = count_sharded(
        g, dag, k=4, shard_mb=TINY_MB, spill_dir=spill,
        faults=FaultPlan(FaultSpec("io_partial_write", at_op=7)),
    )
    _assert_matches_serial(res, ref)
    again = count_sharded(
        g, dag, k=4, shard_mb=TINY_MB, spill_dir=spill, resume=True
    )
    _assert_matches_serial(again, ref)


def test_ledger_creation_failure_is_typed(tmp_path, g, dag):
    faults = FaultPlan(FaultSpec("io_enospc", at_op=1))
    with pytest.raises(CheckpointError, match="cannot create shard ledger"):
        count_sharded(
            g, dag, k=4, shard_mb=TINY_MB, spill_dir=tmp_path / "s",
            faults=faults,
        )


def test_persistent_fault_without_degrade_raises(tmp_path, g, dag):
    faults = FaultPlan(FaultSpec("io_enospc", at_op=4, repeat=True))
    with pytest.raises(ShardError, match="failed after 3 attempts"):
        count_sharded(
            g, dag, k=4, shard_mb=TINY_MB, spill_dir=tmp_path / "s",
            faults=faults, max_retries=2,
        )


def test_retry_backoff_is_seeded_and_sleeps(tmp_path, g, dag, monkeypatch):
    from repro.shard import executor

    delays: list[float] = []
    monkeypatch.setattr(executor, "_sleep", delays.append)
    faults = FaultPlan(FaultSpec("io_enospc", at_op=2, repeat=True))
    with pytest.raises(ShardError):
        count_sharded(
            g, dag, k=4, shard_mb=TINY_MB, spill_dir=tmp_path / "a",
            faults=faults, max_retries=3, retry_backoff=0.01, retry_seed=5,
        )
    assert len(delays) == 3
    assert all(d > 0 for d in delays)
    assert delays[1] > delays[0] * 0.5  # exponential base dominates jitter
    delays2: list[float] = []
    monkeypatch.setattr(executor, "_sleep", delays2.append)
    faults = FaultPlan(FaultSpec("io_enospc", at_op=2, repeat=True))
    with pytest.raises(ShardError):
        count_sharded(
            g, dag, k=4, shard_mb=TINY_MB, spill_dir=tmp_path / "b",
            faults=faults, max_retries=3, retry_backoff=0.01, retry_seed=5,
        )
    assert delays2 == delays  # same seed -> same jitter stream


# ------------------------------------------------------------------ ledger
def test_ledger_refuses_descriptor_mismatch(tmp_path, g, dag):
    spill = tmp_path / "spill"
    count_sharded(g, dag, k=4, shard_mb=TINY_MB, spill_dir=spill)
    with pytest.raises(CheckpointError, match="k="):
        count_sharded(
            g, dag, k=5, shard_mb=TINY_MB, spill_dir=spill, resume=True
        )


def test_ledger_truncates_torn_tail(tmp_path):
    path = tmp_path / LEDGER_NAME
    descriptor = {"engine": "sct-shard", "k": 4}
    led = ShardLedger.open(path, descriptor)
    led.record_done(0, {"count": 7})
    led.record_done(1, {"count": 9})
    intact = path.read_bytes()
    # Simulate a kill mid-append: half a record at the tail.
    path.write_bytes(intact + b'{"type": "done", "shard": 2, "st')
    replayed = ShardLedger.open(path, descriptor, resume=True)
    assert set(replayed.done) == {0, 1}
    assert path.read_bytes() == intact  # tail truncated on replay
    # And the next append starts on a clean line boundary.
    replayed.record_done(2, {"count": 11})
    third = ShardLedger.open(path, descriptor, resume=True)
    assert set(third.done) == {0, 1, 2}


def test_ledger_rejects_tampered_line(tmp_path):
    path = tmp_path / LEDGER_NAME
    descriptor = {"engine": "sct-shard"}
    led = ShardLedger.open(path, descriptor)
    led.record_done(0, {"count": 7})
    led.record_done(1, {"count": 9})
    lines = path.read_bytes().splitlines(keepends=True)
    lines[1] = lines[1].replace(b'"count": 7', b'"count": 8')
    path.write_bytes(b"".join(lines))
    replayed = ShardLedger.open(path, descriptor, resume=True)
    # Replay stops at the tampered line; everything after is discarded.
    assert replayed.done == {}


def test_ledger_missing_header_refused(tmp_path):
    path = tmp_path / LEDGER_NAME
    path.write_text('{"type": "done", "shard": 0}\n')
    with pytest.raises(CheckpointError, match="header"):
        ShardLedger.open(path, {"engine": "sct-shard"}, resume=True)


def test_latest_spill_record_wins(tmp_path):
    path = tmp_path / LEDGER_NAME
    led = ShardLedger.open(path, {"engine": "sct-shard"})
    led.record_spill(0, {"graph_indptr": {"checksum": "aaaa", "bytes": 1}})
    led.record_spill(0, {"graph_indptr": {"checksum": "bbbb", "bytes": 2}})
    replayed = ShardLedger.open(path, {"engine": "sct-shard"}, resume=True)
    assert replayed.spilled[0]["graph_indptr"]["checksum"] == "bbbb"


# ----------------------------------------------------- config + pipeline
def test_config_validates_shard_knobs(tmp_path):
    from repro.core import PivotScaleConfig

    with pytest.raises(CountingError, match="spill_dir"):
        PivotScaleConfig(shard_mb=1.0)
    with pytest.raises(CountingError, match="shard_mb must be"):
        PivotScaleConfig(shard_mb=0.0, spill_dir=str(tmp_path))
    with pytest.raises(CountingError, match="shard_retries"):
        PivotScaleConfig(
            shard_mb=1.0, spill_dir=str(tmp_path), shard_retries=-1
        )
    # resume without a checkpoint is legal in shard mode (the ledger
    # is the resume mechanism)...
    PivotScaleConfig(shard_mb=1.0, spill_dir=str(tmp_path), resume=True)
    # ...but still refused without either mechanism.
    with pytest.raises(CountingError, match="resume"):
        PivotScaleConfig(resume=True)


def test_pipeline_sharded_matches_in_memory(tmp_path, g):
    from repro.core import PivotScaleConfig, count_cliques

    ref = count_cliques(g, 4, PivotScaleConfig(ordering="core"))
    res = count_cliques(g, 4, PivotScaleConfig(
        ordering="core", shard_mb=TINY_MB, spill_dir=str(tmp_path / "s"),
    ))
    assert res.count == ref.count
    assert res.degraded_from is None


def test_cli_sharded_count_and_resume(tmp_path, g, dag, capsys):
    from repro.cli import main
    from repro.graph.io import write_edge_list

    edges = tmp_path / "g.txt"
    write_edge_list(g, edges)
    spill = tmp_path / "spill"
    ref = SCTEngine(g, core_ordering(g)).count(4)
    argv = ["count", "--edge-list", str(edges), "-k", "4",
            "--ordering", "core", "--shard-mb", str(TINY_MB),
            "--spill-dir", str(spill)]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert f"4-cliques: {ref.count:,}" in out
    assert main(argv + ["--resume"]) == 0
    assert f"4-cliques: {ref.count:,}" in capsys.readouterr().out


def test_cli_sharded_dist(tmp_path, g, capsys):
    from repro.cli import main
    from repro.graph.io import write_edge_list

    edges = tmp_path / "g.txt"
    write_edge_list(g, edges)
    ref = SCTEngine(g, core_ordering(g)).count_all()
    assert main(["dist", "--edge-list", str(edges),
                 "--shard-mb", str(TINY_MB),
                 "--spill-dir", str(tmp_path / "spill")]) == 0
    out = capsys.readouterr().out
    assert f"k=  3: {ref.all_counts[3]:,}" in out


# ------------------------------------------------------- budget metering
def test_budgets_metered_at_shard_granularity(tmp_path, g, dag):
    from repro.errors import NodeBudgetExceededError
    from repro.runtime.budget import Budget

    serial = SCTEngine(g, dag, "remap").count(4)
    spill = tmp_path / "spill"
    ctl = RunController(Budget(max_nodes=int(
        serial.counters.function_calls // 2
    )))
    with pytest.raises(NodeBudgetExceededError):
        count_sharded(
            g, dag, k=4, shard_mb=TINY_MB, spill_dir=spill, controller=ctl
        )
    assert ctl.spent.roots_done > 0  # completed shards were metered
    # The ledger kept the completed shards: resuming under a fresh
    # (per-invocation) budget finishes and matches.
    res = count_sharded(
        g, dag, k=4, shard_mb=TINY_MB, spill_dir=spill, resume=True,
        controller=RunController(Budget(max_nodes=int(
            serial.counters.function_calls
        ))),
    )
    assert res.count == serial.count
