"""Approximate counting by sampling: unbiasedness and convergence."""

import math

import pytest

from repro.counting import count_kcliques
from repro.counting.sampling import sample_count_color, sample_count_vertex
from repro.errors import CountingError
from repro.graph.generators import complete_graph, erdos_renyi
from repro.ordering import core_ordering


def test_p_one_is_exact():
    g = erdos_renyi(25, 0.4, seed=1)
    exact = count_kcliques(g, 4, core_ordering(g)).count
    est = sample_count_vertex(g, 4, 1.0, repeats=1)
    assert est.estimate == exact
    assert est.std_error == 0.0


def test_one_color_is_exact():
    g = erdos_renyi(25, 0.4, seed=2)
    exact = count_kcliques(g, 4, core_ordering(g)).count
    est = sample_count_color(g, 4, 1, repeats=1)
    assert est.estimate == exact


def test_vertex_sampling_converges():
    g = complete_graph(30)
    exact = math.comb(30, 4)
    est = sample_count_vertex(g, 4, 0.7, repeats=24, seed=3)
    assert est.estimate == pytest.approx(exact, rel=0.25)
    assert est.std_error > 0


def test_color_sampling_converges():
    g = complete_graph(30)
    exact = math.comb(30, 3)
    est = sample_count_color(g, 3, 2, repeats=24, seed=4)
    assert est.estimate == pytest.approx(exact, rel=0.3)


def test_vertex_sampling_unbiased_statistically():
    """Mean over many repeats lands within 3 standard errors."""
    g = erdos_renyi(40, 0.4, seed=5)
    exact = count_kcliques(g, 3, core_ordering(g)).count
    est = sample_count_vertex(g, 3, 0.6, repeats=40, seed=6)
    assert abs(est.estimate - exact) <= max(3 * est.std_error, 0.2 * exact)


def test_metadata():
    g = complete_graph(10)
    est = sample_count_vertex(g, 3, 0.5, repeats=4, seed=0)
    assert est.method == "vertex-sampling"
    assert est.repeats == 4 and est.k == 3
    est2 = sample_count_color(g, 3, 3, repeats=2, seed=0)
    assert est2.method == "color-sparsification"


def test_validation():
    g = complete_graph(6)
    with pytest.raises(CountingError):
        sample_count_vertex(g, 0, 0.5)
    with pytest.raises(CountingError):
        sample_count_vertex(g, 3, 0.0)
    with pytest.raises(CountingError):
        sample_count_vertex(g, 3, 1.5)
    with pytest.raises(CountingError):
        sample_count_vertex(g, 3, 0.5, repeats=0)
    with pytest.raises(CountingError):
        sample_count_color(g, 3, 0)
