"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.generators import (
    complete_graph,
    erdos_renyi,
    path_graph,
    star_graph,
)


@pytest.fixture
def k4() -> CSRGraph:
    return complete_graph(4)


@pytest.fixture
def triangle_plus_pendant() -> CSRGraph:
    """Triangle 0-1-2 with pendant vertex 3 attached to 0."""
    from repro.graph.build import from_edge_list

    return from_edge_list([(0, 1), (1, 2), (0, 2), (0, 3)])


@pytest.fixture
def medium_random() -> CSRGraph:
    """A deterministic mid-size random graph for integration tests."""
    return erdos_renyi(60, 0.2, seed=42)


@pytest.fixture
def small_suite() -> list[CSRGraph]:
    """Diverse small graphs used by cross-implementation checks."""
    return [
        complete_graph(1),
        complete_graph(2),
        complete_graph(7),
        path_graph(6),
        star_graph(5),
        erdos_renyi(12, 0.3, seed=0),
        erdos_renyi(12, 0.6, seed=1),
        erdos_renyi(15, 0.45, seed=2),
    ]


def pytest_configure(config):
    config.addinivalue_line("markers", "slow: long-running integration test")
