"""Barenboim-Elkin and Goodrich-Pszona arboricity orderings."""

import numpy as np
import pytest

from repro.counting import count_kcliques
from repro.errors import OrderingError
from repro.graph.generators import complete_graph, empty_graph, rmat
from repro.ordering import core_ordering, max_out_degree
from repro.ordering.arborder import (
    barenboim_elkin_ordering,
    goodrich_pszona_ordering,
)


@pytest.fixture(scope="module")
def skew():
    return rmat(9, 8.0, seed=91)


@pytest.mark.parametrize(
    "factory", [barenboim_elkin_ordering, goodrich_pszona_ordering],
    ids=["BE", "GP"],
)
def test_is_permutation(factory, skew):
    o = factory(skew)
    assert np.array_equal(np.sort(o.rank), np.arange(skew.num_vertices))


@pytest.mark.parametrize(
    "factory", [barenboim_elkin_ordering, goodrich_pszona_ordering],
    ids=["BE", "GP"],
)
def test_quality_within_constant_of_core(factory, skew):
    """Both guarantee O(arboricity) out-degree; empirically within a
    small constant of the degeneracy."""
    core_q = max_out_degree(skew, core_ordering(skew))
    q = max_out_degree(skew, factory(skew))
    assert core_q <= q <= 4 * core_q + 4


@pytest.mark.parametrize(
    "factory", [barenboim_elkin_ordering, goodrich_pszona_ordering],
    ids=["BE", "GP"],
)
def test_counting_agrees(factory, skew):
    ref = count_kcliques(skew, 4, core_ordering(skew)).count
    assert count_kcliques(skew, 4, factory(skew)).count == ref


def test_logarithmic_round_counts(skew):
    n = skew.num_vertices
    be = barenboim_elkin_ordering(skew)
    gp = goodrich_pszona_ordering(skew)
    bound = 14 * int(np.log2(n) + 1)
    assert be.cost.num_rounds <= bound
    assert gp.cost.num_rounds <= bound


def test_complete_graph_fallback():
    # Regular graph: BE threshold (2+eps) * d/2 >= d selects everyone.
    g = complete_graph(8)
    o = barenboim_elkin_ordering(g)
    assert o.cost.num_rounds == 1
    assert max_out_degree(g, o) == 7


def test_gp_fraction_bounds():
    g = complete_graph(8)
    o = goodrich_pszona_ordering(g, eps=1.0)  # remove half per round
    assert 1 <= o.cost.num_rounds <= 5


def test_empty_graph():
    for factory in (barenboim_elkin_ordering, goodrich_pszona_ordering):
        assert factory(empty_graph(5)).num_vertices == 5


def test_eps_validation():
    g = complete_graph(4)
    with pytest.raises(OrderingError):
        barenboim_elkin_ordering(g, eps=-0.1)
    with pytest.raises(OrderingError):
        goodrich_pszona_ordering(g, eps=0.0)
