"""Deterministic fault injection and every rung of the degradation
ladder: kernel fallback, memory faults, clock jumps, interrupts, and
budget-exhaustion root sampling."""

import warnings

import pytest

from repro.cli import main as cli_main
from repro.core import PivotScaleConfig, count_cliques
from repro.core.hybrid import count_cliques_hybrid
from repro.counting.sct import SCTEngine
from repro.errors import (
    CountingError,
    DeadlineExceededError,
    DegradedResultWarning,
    KernelFaultError,
    MemoryBudgetExceededError,
    RunInterrupted,
)
from repro.graph.generators import erdos_renyi
from repro.graph.io import write_edge_list
from repro.kernels import KERNELS
from repro.ordering import core_ordering
from repro.runtime import (
    Budget,
    FaultPlan,
    FaultSpec,
    FaultyKernel,
    ManualClock,
    RunController,
)


@pytest.fixture
def g():
    return erdos_renyi(40, 0.3, seed=11)


# ----------------------------------------------------------- fault specs
def test_fault_spec_validation():
    with pytest.raises(CountingError):
        FaultSpec("nonsense", at_op=1)
    with pytest.raises(CountingError):
        FaultSpec("memory", at_op=0)
    with pytest.raises(CountingError):
        FaultSpec("clock_jump", at_op=1)  # needs jump_seconds > 0


def test_fault_plan_fires_each_spec_once():
    plan = FaultPlan(FaultSpec("memory", at_op=2))
    plan.tick()
    with pytest.raises(MemoryError):
        plan.tick()
    plan.tick()  # does not re-fire
    assert plan.ops == 3


def test_clock_jump_advances_injected_clock():
    clock = ManualClock()
    plan = FaultPlan(FaultSpec("clock_jump", at_op=1, jump_seconds=30.0))
    plan.tick(clock)
    assert clock() == pytest.approx(30.0)


# -------------------------------------------------- engine-level faults
def test_memory_fault_becomes_budget_error(g):
    ctl = RunController(faults=FaultPlan(FaultSpec("memory", at_op=3)))
    eng = SCTEngine(g, core_ordering(g))
    with pytest.raises(MemoryBudgetExceededError) as ei:
        eng.count(4, controller=ctl)
    assert ei.value.spent.roots_done == 2  # two roots folded before op 3


def test_clock_jump_trips_deadline(g):
    clock = ManualClock()
    ctl = RunController(
        Budget(deadline_seconds=60.0),
        faults=FaultPlan(FaultSpec("clock_jump", at_op=5, jump_seconds=120.0)),
        clock=clock,
    )
    eng = SCTEngine(g, core_ordering(g))
    with pytest.raises(DeadlineExceededError):
        eng.count(4, controller=ctl)
    assert ctl.spent.roots_done == 4


def test_interrupt_propagates(g):
    ctl = RunController(faults=FaultPlan(FaultSpec("interrupt", at_op=2)))
    with pytest.raises(RunInterrupted):
        SCTEngine(g, core_ordering(g)).count(4, controller=ctl)


def test_kernel_fault_without_degrade_raises(g):
    ctl = RunController(faults=FaultPlan(FaultSpec("kernel", at_op=2)))
    with pytest.raises(KernelFaultError):
        SCTEngine(g, core_ordering(g)).count(4, controller=ctl)


# -------------------------------------- rung 1: kernel -> bigint fallback
def test_faulty_kernel_fallback_identical_counts(g):
    """A wordarray kernel fault mid-run falls back to bigint and the
    final counts AND counters match the unfaulted run exactly."""
    base = SCTEngine(g, core_ordering(g), kernel="bigint").count(4)
    faulty = FaultyKernel(KERNELS["wordarray"](), fail_after=200)
    eng = SCTEngine(g, core_ordering(g), kernel=faulty)
    ctl = RunController(degrade=True)
    r = eng.count(4, controller=ctl)
    assert faulty.calls >= 200  # the fault actually fired
    assert r.degraded_from == "wordarray"
    assert r.kernel == "bigint"
    assert not r.approximate  # fallback stays exact
    assert r.count == base.count
    assert r.counters.as_dict() == base.counters.as_dict()


def test_faulty_kernel_fallback_all_k(g):
    base = SCTEngine(g, core_ordering(g), kernel="bigint").count_all()
    faulty = FaultyKernel(KERNELS["wordarray"](), fail_after=150)
    eng = SCTEngine(g, core_ordering(g), kernel=faulty)
    r = eng.count_all(controller=RunController(degrade=True))
    assert r.degraded_from == "wordarray"
    assert r.all_counts == base.all_counts


def test_bigint_kernel_fault_not_swallowed(g):
    """The ladder has no rung below the reference backend."""
    faulty = FaultyKernel(KERNELS["bigint"](), fail_after=100)
    eng = SCTEngine(g, core_ordering(g), kernel=faulty)
    with pytest.raises(KernelFaultError):
        eng.count(4, controller=RunController(degrade=True))


# --------------------------------- rung 2: budget -> sampling (flagged)
def test_degrade_to_sampling_flagged(g):
    cfg = PivotScaleConfig(max_nodes=60, degrade=True)
    with pytest.warns(DegradedResultWarning):
        r = count_cliques(g, 4, cfg)
    assert r.approximate
    assert r.degraded_from == "exact"
    assert r.budget_spent is not None and r.budget_spent.nodes > 60
    exact = count_cliques(g, 4).count
    # Exactly-counted roots are folded in; the estimate is unbiased,
    # not exact — sanity-bound it rather than equality-check it.
    assert r.count >= 0
    assert isinstance(r.count, float)
    assert exact > 0


def test_degrade_folds_exact_progress(g):
    """With p=1 sampling over the remainder, degrade reproduces the
    exact total: partial exact + exhaustive 'sampling' of the rest."""
    from repro.runtime.degrade import degrade_to_sampling

    eng = SCTEngine(g, core_ordering(g))
    ctl = RunController(Budget(max_nodes=80), degrade=True)
    from repro.errors import NodeBudgetExceededError

    with pytest.raises(NodeBudgetExceededError):
        eng.count(4, controller=ctl)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DegradedResultWarning)
        r = degrade_to_sampling(
            eng, k=4, state=ctl.state(), p=1.0, repeats=1
        )
    assert r.approximate
    assert r.count == float(count_cliques(g, 4).count)


def test_degrade_all_k_with_p1(g):
    from repro.errors import BudgetExceededError
    from repro.runtime.degrade import degrade_to_sampling

    base = SCTEngine(g, core_ordering(g)).count_all()
    eng = SCTEngine(g, core_ordering(g))
    ctl = RunController(Budget(max_nodes=80), degrade=True)
    with pytest.raises(BudgetExceededError):
        eng.count_all(controller=ctl)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DegradedResultWarning)
        r = degrade_to_sampling(
            eng, k=None, state=ctl.state(), p=1.0, repeats=1
        )
    assert r.approximate
    assert [float(c) for c in base.all_counts] == r.all_counts[: len(base.all_counts)]


# ----------------------------- rung 3: hybrid enumeration -> pivoting
def test_hybrid_retries_pivoting_on_enum_budget(g):
    cfg = PivotScaleConfig(max_nodes=40, degrade=True)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DegradedResultWarning)
        r = count_cliques_hybrid(g, 4, switch_k=8, config=cfg)
    # Enumeration blew the 40-node budget; the hybrid fell through to
    # the pivoting pipeline (which may itself have degraded further).
    assert r.algorithm == "pivoting"
    assert r.degraded_from is not None
    assert r.degraded_from.startswith("enumeration")


def test_hybrid_no_degrade_raises(g):
    from repro.errors import NodeBudgetExceededError

    cfg = PivotScaleConfig(max_nodes=40)
    with pytest.raises(NodeBudgetExceededError):
        count_cliques_hybrid(g, 4, switch_k=8, config=cfg)


# ----------------------------------------------------------------- CLI
def test_cli_budget_exit_code(tmp_path, g, capsys):
    path = tmp_path / "g.el"
    write_edge_list(g, path)
    code = cli_main(
        ["count", "--edge-list", str(path), "-k", "4", "--max-nodes", "10"]
    )
    assert code == 3
    assert "budget exhausted" in capsys.readouterr().err


def test_cli_degrade_flag(tmp_path, g, capsys):
    path = tmp_path / "g.el"
    write_edge_list(g, path)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DegradedResultWarning)
        code = cli_main(
            ["count", "--edge-list", str(path), "-k", "4",
             "--max-nodes", "10", "--degrade"]
        )
    assert code == 0
    out = capsys.readouterr().out
    assert "approximate" in out
    assert "budget spent" in out
