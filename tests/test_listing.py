"""k-clique listing."""

from itertools import combinations

import pytest

from repro.counting import count_kcliques
from repro.counting.listing import list_kcliques
from repro.errors import CountingError
from repro.graph.generators import complete_graph, erdos_renyi, star_graph
from repro.ordering import core_ordering, degree_ordering, directionalize


def _brute(g, k):
    adj = g.adjacency_sets()
    return sorted(
        s for s in combinations(range(g.num_vertices), k)
        if all(b in adj[a] for a, b in combinations(s, 2))
    )


@pytest.mark.parametrize("seed", range(4))
def test_matches_brute_force(seed):
    g = erdos_renyi(14, 0.5, seed=seed)
    for k in range(1, 6):
        assert sorted(list_kcliques(g, k)) == _brute(g, k)


def test_count_consistency():
    g = erdos_renyi(30, 0.3, seed=7)
    o = core_ordering(g)
    for k in (3, 4):
        assert len(list(list_kcliques(g, k, o))) == (
            count_kcliques(g, k, o).count
        )


def test_k1_and_k2():
    g = star_graph(4)
    assert sorted(list_kcliques(g, 1)) == [(v,) for v in range(5)]
    assert sorted(list_kcliques(g, 2)) == [(0, v) for v in range(1, 5)]


def test_tuples_sorted_and_unique():
    g = erdos_renyi(20, 0.4, seed=8)
    seen = set()
    for c in list_kcliques(g, 3):
        assert c == tuple(sorted(c))
        assert c not in seen
        seen.add(c)


def test_limit():
    g = complete_graph(10)
    assert len(list(list_kcliques(g, 4, limit=7))) == 7
    assert list(list_kcliques(g, 4, limit=0)) == []
    assert len(list(list_kcliques(g, 1, limit=3))) == 3
    assert len(list(list_kcliques(g, 2, limit=3))) == 3


def test_ordering_invariance():
    g = erdos_renyi(18, 0.45, seed=9)
    a = sorted(list_kcliques(g, 4, core_ordering(g)))
    b = sorted(list_kcliques(g, 4, degree_ordering(g)))
    assert a == b


def test_validation():
    g = complete_graph(4)
    with pytest.raises(CountingError):
        list(list_kcliques(g, 0))
    with pytest.raises(CountingError):
        list(list_kcliques(g, 3, limit=-1))
    dag = directionalize(g, core_ordering(g))
    with pytest.raises(CountingError):
        list(list_kcliques(dag, 3))
