"""Machine specs, cache model, cost model, GPU model."""

import pytest

from repro.counting.counters import Counters
from repro.errors import ParallelModelError
from repro.parallel.machine import EPYC_9554, GPU_A100, GPU_V100, GPUSpec, MachineSpec
from repro.perfmodel.cache import CacheModel, structure_index_bytes
from repro.perfmodel.cost import CostModel
from repro.perfmodel.gpu import gpu_pivot_time


# ---------------------------------------------------------------- machine
def test_epyc_defaults_match_paper():
    assert EPYC_9554.cores == 64
    assert EPYC_9554.freq_ghz == pytest.approx(3.1)
    assert EPYC_9554.llc_bytes == 256 * 1024 * 1024


def test_machine_validation():
    with pytest.raises(ParallelModelError):
        MachineSpec(name="bad", cores=0)
    with pytest.raises(ParallelModelError):
        MachineSpec(name="bad", freq_ghz=0)
    with pytest.raises(ParallelModelError):
        GPUSpec(name="bad", warps=0, warp_rate_gops=1.0)


def test_seconds_for():
    m = MachineSpec(name="m", freq_ghz=1.0)
    assert m.seconds_for(1e9, 1.0) == pytest.approx(1.0)


# ------------------------------------------------------------------ cache
def test_miss_probability_zero_when_fits():
    c = CacheModel(llc_bytes=1024)
    assert c.miss_probability(100, 4) == 0.0


def test_miss_probability_monotone_in_threads():
    c = CacheModel(llc_bytes=1000)
    probs = [c.miss_probability(100, t) for t in (1, 10, 20, 40, 80)]
    assert all(a <= b for a, b in zip(probs, probs[1:]))
    assert probs[-1] > 0.8


def test_miss_probability_validation():
    with pytest.raises(ParallelModelError):
        CacheModel(llc_bytes=100).miss_probability(10, 0)


def test_resident_fraction_complement():
    c = CacheModel(llc_bytes=1000)
    assert c.resident_fraction(100, 20) == pytest.approx(
        1 - c.miss_probability(100, 20)
    )


def test_structure_index_bytes_ordering():
    nv, d = 1e6, 100
    dense = structure_index_bytes("dense", nv, d)
    sparse = structure_index_bytes("sparse", nv, d)
    remap = structure_index_bytes("remap", nv, d)
    assert dense > sparse > remap
    assert dense >= 8 * nv


def test_structure_index_bytes_unknown():
    with pytest.raises(ParallelModelError):
        structure_index_bytes("btree", 1e6, 10)


# ------------------------------------------------------------------- cost
def _counters(work=1e6):
    return Counters(
        function_calls=1000,
        set_op_words=work * 0.6,
        index_lookups=work * 0.3,
        build_words=work * 0.1,
    )


def test_estimate_counting_scales_down_with_threads():
    model = CostModel(EPYC_9554)
    secs = [
        model.estimate_counting(
            _counters(),
            threads=t,
            structure="remap",
            max_out_degree=100,
            effective_num_vertices=1e6,
        ).seconds
        for t in (1, 2, 4, 8, 16, 32, 64)
    ]
    assert all(a > b for a, b in zip(secs, secs[1:]))
    # remap: near-linear scaling
    assert secs[0] / secs[-1] > 40


def test_dense_structure_scales_worse_at_high_threads():
    model = CostModel(EPYC_9554)

    def speedup(structure):
        s = [
            model.estimate_counting(
                _counters(),
                threads=t,
                structure=structure,
                max_out_degree=300,
                effective_num_vertices=10e6,
            ).seconds
            for t in (1, 64)
        ]
        return s[0] / s[1]

    assert speedup("dense") < speedup("remap")


def test_serial_fraction_amdahl():
    model = CostModel(EPYC_9554)
    kwargs = dict(
        structure="remap", max_out_degree=50, effective_num_vertices=1e5
    )
    full = model.estimate_counting(_counters(), threads=64, **kwargs).seconds
    serial = model.estimate_counting(
        _counters(), threads=64, serial_fraction=1.0, **kwargs
    ).seconds
    one = model.estimate_counting(_counters(), threads=1, **kwargs).seconds
    assert serial == pytest.approx(one)
    assert full < serial


def test_estimate_counting_validation():
    model = CostModel(EPYC_9554)
    kwargs = dict(
        structure="remap", max_out_degree=50, effective_num_vertices=1e5
    )
    with pytest.raises(ParallelModelError):
        model.estimate_counting(_counters(), threads=0, **kwargs)
    with pytest.raises(ParallelModelError):
        model.estimate_counting(
            _counters(), threads=2, serial_fraction=1.5, **kwargs
        )
    with pytest.raises(ParallelModelError):
        model.estimate_counting(
            _counters(), threads=4, makespan_work=1.0, **kwargs
        )


def test_mpki_and_ipc_reported():
    model = CostModel(EPYC_9554)
    est = model.estimate_counting(
        _counters(),
        threads=64,
        structure="dense",
        max_out_degree=300,
        effective_num_vertices=10e6,
    )
    assert est.mpki > 0
    assert 0 < est.ipc <= 1 / EPYC_9554.base_cpi
    assert est.bound in ("compute", "memory")


def test_estimate_rounds_barrier_cost():
    model = CostModel(EPYC_9554)
    few = model.estimate_rounds((1e6,), 0.0, threads=64)
    many = model.estimate_rounds(tuple([1e6 / 100] * 100), 0.0, threads=64)
    # Same work, more barriers -> slower.
    assert many.seconds > few.seconds


def test_estimate_rounds_sequential_dominates():
    model = CostModel(EPYC_9554)
    seq = model.estimate_rounds((), 1e6, threads=64)
    par = model.estimate_rounds((1e6,), 0.0, threads=64)
    assert seq.seconds > par.seconds


def test_estimate_rounds_single_thread_no_barriers():
    model = CostModel(EPYC_9554)
    est = model.estimate_rounds((100.0, 100.0), 0.0, threads=1)
    est64 = model.estimate_rounds((100.0, 100.0), 0.0, threads=64)
    assert est.seconds > 0
    with pytest.raises(ParallelModelError):
        model.estimate_rounds((1.0,), 0.0, threads=0)


# -------------------------------------------------------------------- gpu
def test_gpu_a100_faster_than_v100():
    c = _counters()
    v = gpu_pivot_time(c, GPU_V100, max_out_degree=100)
    a = gpu_pivot_time(c, GPU_A100, max_out_degree=100)
    assert a < v


def test_gpu_time_monotone_in_work():
    small = gpu_pivot_time(_counters(1e5), GPU_V100, max_out_degree=100)
    big = gpu_pivot_time(_counters(1e8), GPU_V100, max_out_degree=100)
    assert big > small


def test_gpu_launch_overhead_floor():
    c = Counters()
    assert gpu_pivot_time(c, GPU_V100, max_out_degree=1) >= (
        GPU_V100.launch_overhead_s
    )
