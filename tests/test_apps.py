"""Applications: clique-percolation communities, densest subgraph."""

from fractions import Fraction

import numpy as np
import pytest

from repro.apps import (
    k_clique_communities,
    kclique_densest_subgraph,
    kclique_density,
)
from repro.errors import CountingError
from repro.graph.build import from_edge_list
from repro.graph.generators import (
    chung_lu,
    complete_graph,
    erdos_renyi,
    overlay,
    path_graph,
    planted_cliques,
    power_law_degrees,
)


# ----------------------------------------------------------------- CPM
def _nx_cpm(g, k):
    import networkx as nx

    nxg = nx.Graph()
    nxg.add_nodes_from(range(g.num_vertices))
    nxg.add_edges_from(g.edges())
    return sorted(sorted(c) for c in nx.community.k_clique_communities(nxg, k))


@pytest.mark.parametrize("seed", range(3))
@pytest.mark.parametrize("k", [3, 4])
def test_cpm_matches_networkx(seed, k):
    g = erdos_renyi(22, 0.4, seed=seed)
    got = sorted(sorted(c) for c in k_clique_communities(g, k))
    assert got == _nx_cpm(g, k)


def test_cpm_two_overlapping_triangles():
    # Triangles 0-1-2 and 1-2-3 share an edge: one 3-clique community.
    g = from_edge_list([(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])
    comms = k_clique_communities(g, 3)
    assert comms == [{0, 1, 2, 3}]


def test_cpm_disjoint_triangles():
    g = from_edge_list([(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5)])
    comms = k_clique_communities(g, 3)
    assert sorted(sorted(c) for c in comms) == [[0, 1, 2], [3, 4, 5]]


def test_cpm_no_cliques():
    assert k_clique_communities(path_graph(5), 3) == []


def test_cpm_sorted_by_size():
    g = from_edge_list(
        [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3),  # 4-vertex community
         (5, 6), (5, 7), (6, 7)]                  # triangle
    )
    comms = k_clique_communities(g, 3)
    assert [len(c) for c in comms] == [4, 3]


def test_cpm_validation():
    with pytest.raises(CountingError):
        k_clique_communities(complete_graph(4), 1)


# --------------------------------------------------------------- densest
def test_density_complete_graph():
    g = complete_graph(6)
    d = kclique_density(g, np.arange(6), 3)
    assert d == Fraction(20, 6)


def test_density_empty_selection():
    g = complete_graph(4)
    assert kclique_density(g, np.array([], dtype=np.int64), 3) == 0


def test_densest_recovers_planted_clique():
    n = 250
    bg = chung_lu(power_law_degrees(n, 2.8, 1.5, seed=11), seed=12).edge_array()
    pc = planted_cliques(n, [12], seed=13)
    g = overlay(n, bg, pc)
    res = kclique_densest_subgraph(g, 3, recompute_every=4)
    planted = set(np.unique(pc).tolist())
    assert len(planted & set(res.vertices)) >= 11
    assert res.density >= Fraction(1)


def test_densest_on_pure_clique():
    g = complete_graph(8)
    res = kclique_densest_subgraph(g, 3)
    assert set(res.vertices) == set(range(8))
    assert res.density == Fraction(56, 8)
    assert res.clique_count == 56


def test_densest_density_is_exact_fraction():
    g = erdos_renyi(40, 0.3, seed=14)
    res = kclique_densest_subgraph(g, 3, recompute_every=5)
    assert res.density == kclique_density(
        g, np.array(res.vertices, dtype=np.int64), 3
    )


def test_densest_validation():
    g = complete_graph(5)
    with pytest.raises(CountingError):
        kclique_densest_subgraph(g, 1)
    with pytest.raises(CountingError):
        kclique_densest_subgraph(g, 3, recompute_every=0)


def test_densest_forest_path_matches_direct():
    """The default forest-served peeling returns exactly the same
    subgraph as re-recursing every iteration."""
    for seed in (14, 15):
        g = erdos_renyi(40, 0.3, seed=seed)
        via_forest = kclique_densest_subgraph(g, 3, use_forest=True)
        direct = kclique_densest_subgraph(g, 3, use_forest=False)
        assert via_forest.vertices == direct.vertices
        assert via_forest.density == direct.density
        assert via_forest.clique_count == direct.clique_count
