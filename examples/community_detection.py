#!/usr/bin/env python3
"""Community detection and dense-subgraph discovery with cliques.

The paper's introduction motivates clique counting with community
detection ([1]-[4]); this example runs both canonical consumers of the
clique machinery on a synthetic collaboration network with planted
communities:

* clique-percolation communities (Palla et al.) via
  :func:`repro.apps.k_clique_communities`, and
* the k-clique densest subgraph via greedy peeling
  (:func:`repro.apps.kclique_densest_subgraph`).

Run:  python examples/community_detection.py
"""

import numpy as np

from repro.apps import k_clique_communities, kclique_densest_subgraph
from repro.graph.generators import (
    chung_lu,
    overlay,
    planted_cliques,
    power_law_degrees,
)


def build_collaboration_network(n: int = 600, seed: int = 42):
    """Sparse background + planted research groups of varied size."""
    weights = power_law_degrees(n, 2.7, 1.6, seed=seed)
    background = chung_lu(weights, seed=seed + 1).edge_array()
    groups = planted_cliques(
        n, [14, 9, 8, 7, 6, 6, 5], seed=seed + 2, overlap=0.15
    )
    return overlay(n, background, groups), groups


def main() -> None:
    g, planted = build_collaboration_network()
    print(f"collaboration network: {g}\n")

    print("=== clique-percolation communities (k = 4) ===")
    communities = k_clique_communities(g, 4)
    print(f"found {len(communities)} communities")
    for i, comm in enumerate(communities[:8]):
        members = sorted(comm)
        head = ", ".join(map(str, members[:10]))
        more = f", ... (+{len(members) - 10})" if len(members) > 10 else ""
        print(f"  community {i}: {len(members):3d} members  [{head}{more}]")

    planted_members = set(np.unique(planted).tolist())
    covered = set().union(*communities) if communities else set()
    recall = len(planted_members & covered) / len(planted_members)
    print(f"\nplanted-group member recall: {recall:.0%} "
          f"({len(planted_members)} planted members)")

    print("\n=== 3-clique densest subgraph (greedy peeling) ===")
    res = kclique_densest_subgraph(g, 3, recompute_every=8)
    print(f"densest subgraph: {len(res.vertices)} vertices, "
          f"{res.clique_count:,} triangles, "
          f"density {float(res.density):.2f} triangles/vertex")
    biggest_group = communities[0] if communities else set()
    overlap = len(set(res.vertices) & biggest_group)
    print(f"overlap with the largest CPM community: "
          f"{overlap}/{len(res.vertices)} vertices — both methods "
          "converge on the strongest planted group")


if __name__ == "__main__":
    main()
