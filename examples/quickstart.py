#!/usr/bin/env python3
"""Quickstart: count k-cliques with PivotScale.

Walks the paper's Fig. 2 worked example (an 8-vertex graph, its
degree-ordered DAG, and vertex 0's induced subgraph), then runs the
full pipeline — heuristic, ordering, counting — on a synthetic social
network.

Run:  python examples/quickstart.py
"""

from repro import PivotScaleConfig, count_cliques, count_cliques_all_sizes
from repro.graph.build import from_edge_list
from repro.graph.generators import chung_lu, power_law_degrees
from repro.ordering import degree_ordering, directionalize


def fig2_worked_example() -> None:
    """The paper's Fig. 2: directionalize with a degree ordering."""
    print("=== Fig. 2 worked example ===")
    g = from_edge_list(
        [(0, 1), (0, 2), (0, 3), (0, 4), (1, 2), (1, 4), (2, 3), (2, 4),
         (3, 4), (4, 5), (5, 6), (5, 7), (6, 7)]
    )
    print(f"input graph: {g}")
    ordering = degree_ordering(g)
    dag = directionalize(g, ordering)
    print(f"degree-ordered DAG: {dag}")
    for v in range(g.num_vertices):
        print(f"  {v}: out-neighbors {[int(u) for u in dag.neighbors(v)]}")
    sub = [int(u) for u in dag.neighbors(0)]
    print(f"subgraph induced by vertex 0 covers {sub} "
          "(the highlighted region in the paper)")
    result = count_cliques(g, 3)
    print(f"triangles: {result.count}")
    result4 = count_cliques(g, 4)
    print(f"4-cliques: {result4.count}")
    print()


def synthetic_social_network() -> None:
    """End-to-end pipeline on a power-law graph."""
    print("=== PivotScale pipeline on a synthetic social network ===")
    weights = power_law_degrees(5000, exponent=2.3, min_degree=3.0, seed=7)
    g = chung_lu(weights, seed=8)
    print(f"graph: {g}")

    result = count_cliques(g, k=5)
    d = result.decision
    print(f"heuristic inputs: a/|V| = {d.inputs.a_over_v:.5f}, "
          f"common fraction = {d.inputs.common_fraction:.2f}")
    print(f"heuristic choice: {d.choice.value} ({d.reason})")
    print(f"ordering used: {result.ordering.name} "
          f"(max out-degree {result.max_out_degree})")
    print(f"5-cliques: {result.count:,}")
    print(f"modeled 64-thread time: {result.total_model_seconds * 1e3:.2f} ms "
          f"(ordering {result.phases.ordering_seconds * 1e6:.0f} us, "
          f"counting {result.phases.counting_seconds * 1e6:.0f} us)")
    print(f"real single-core wall time: {result.wall_seconds:.2f} s")
    print()

    # The all-k variant: every clique size in one pass (paper Sec. V-A).
    dist = count_cliques_all_sizes(g, PivotScaleConfig(ordering="core"))
    print("clique-size distribution (k: count):")
    for k, c in enumerate(dist.all_counts):
        if k >= 2 and c:
            print(f"  {k:2d}: {c:,}")


if __name__ == "__main__":
    fig2_worked_example()
    synthetic_social_network()
