#!/usr/bin/env python3
"""Explore the ordering-phase trade-off space (paper Sec. III).

For one dataset analog, computes all five orderings (exact core,
degree, the parallel core approximation at several eps values, parallel
k-core, eigenvector centrality), and reports for each: quality (max
out-degree), rounds, measured counting work, and modeled 64-thread
phase times — a miniature of the paper's Figs. 5-8.

Run:  python examples/ordering_explorer.py [dataset]
"""

import sys

from repro.bench.harness import Table, fmt_seconds
from repro.counting import count_kcliques
from repro.datasets import dataset_names, get_spec, load
from repro.ordering import (
    approx_core_ordering,
    centrality_ordering,
    core_ordering,
    degree_ordering,
    kcore_ordering,
    max_out_degree,
    select_ordering,
)
from repro.parallel import simulate_counting, simulate_ordering

K = 8
THREADS = 64


def main(name: str) -> None:
    g = load(name)
    spec = get_spec(name)
    scale = spec.effective_num_vertices / g.num_vertices
    print(f"=== ordering explorer: {spec.title} analog, k={K}, "
          f"{THREADS} modeled threads ===\n{g}\n")

    orderings = {
        "core (exact, sequential)": core_ordering(g),
        "approx core eps=-0.5": approx_core_ordering(g, -0.5),
        "approx core eps=0.1": approx_core_ordering(g, 0.1),
        "approx core eps=50000": approx_core_ordering(g, 50_000.0),
        "parallel k-core": kcore_ordering(g),
        "eigenvector centrality": centrality_ordering(g),
        "degree": degree_ordering(g),
    }

    t = Table(
        "ordering trade-offs",
        ["ordering", "max out-deg", "rounds", "order(s)", "count(s)",
         "total(s)", "count work"],
    )
    for label, o in orderings.items():
        maxout = max_out_degree(g, o)
        threads_order = 1 if label.startswith("core") else THREADS
        o_s = simulate_ordering(
            o.cost, threads=threads_order, work_scale=scale
        ).seconds
        r = count_kcliques(g, K, o)
        c_s = simulate_counting(
            r, threads=THREADS,
            effective_num_vertices=spec.effective_num_vertices,
            max_out_degree=maxout, work_scale=scale,
        ).seconds
        t.add(label, maxout, o.cost.num_rounds or "-", fmt_seconds(o_s),
              fmt_seconds(c_s), fmt_seconds(o_s + c_s),
              f"{r.counters.work:.3g}")
    t.show()

    d = select_ordering(g, effective_num_vertices=spec.effective_num_vertices)
    print(f"heuristic would pick: {d.choice.value}  ({d.reason})")
    print(f"paper's Table IV best ordering: {spec.best_ordering}")


if __name__ == "__main__":
    dataset = sys.argv[1] if len(sys.argv) > 1 else "skitter"
    if dataset not in dataset_names():
        raise SystemExit(f"unknown dataset {dataset!r}; pick from "
                         f"{dataset_names()}")
    main(dataset)
