#!/usr/bin/env python3
"""The LiveJournal challenge (paper Sec. VI-H, Table VI, Fig. 13).

LiveJournal is the paper's stress workload: so clique-rich that the
original Pivoter took 5.9 *days* to count 10-cliques, PivotScale cut
that to under 6 hours, and GPU-Pivot loses at every k.  This example
walks the analog through the same story:

1. why the graph is hard (the SCT tree *grows* with the target k,
   unlike every other graph),
2. exact counts exploding over nine orders of magnitude,
3. the modeled PivotScale-vs-GPU comparison, and
4. what the GPU-Pivot-style edge splitting does to CPU load balance.

Run:  python examples/livejournal_challenge.py
"""

from repro.bench.harness import Table, fmt_count, fmt_seconds
from repro.counting import count_kcliques
from repro.datasets import get_spec, load
from repro.ordering import core_ordering, directionalize, max_out_degree
from repro.parallel import DynamicScheduler, GPU_A100, GPU_V100
from repro.parallel.partition import edge_split_tasks, vertex_tasks
from repro.parallel.simulate import simulate_counting, simulate_ordering
from repro.perfmodel.gpu import gpu_pivot_time

KS = (6, 8, 10, 12)


def main() -> None:
    name = "livejournal"
    g = load(name)
    spec = get_spec(name)
    ordering = core_ordering(g)
    dag = directionalize(g, ordering)
    maxout = max_out_degree(g, ordering)
    scale = spec.effective_num_vertices / g.num_vertices
    print(f"=== the LiveJournal analog ===\n{g}\n")

    t = Table(
        "counts and modeled times vs clique size",
        ["k", "count", "SCT calls", "PivotScale(s)", "V100(s)", "A100(s)"],
    )
    results = {}
    for k in KS:
        r = count_kcliques(g, k, ordering)
        results[k] = r
        ps = (
            simulate_ordering(ordering.cost, threads=64,
                              work_scale=scale).seconds
            + simulate_counting(
                r, threads=64,
                effective_num_vertices=spec.effective_num_vertices,
                max_out_degree=maxout, work_scale=scale,
            ).seconds
        )
        frac = float(r.per_root_work.max() / r.counters.work)
        gpu = {
            lbl: gpu_pivot_time(r.counters, spec_gpu, max_out_degree=maxout,
                                work_scale=scale, max_task_fraction=frac)
            for lbl, spec_gpu in (("v", GPU_V100), ("a", GPU_A100))
        }
        t.add(k, fmt_count(r.count), f"{r.counters.function_calls:,}",
              fmt_seconds(ps), fmt_seconds(gpu["v"]), fmt_seconds(gpu["a"]))
    t.show()

    growth = (results[KS[-1]].counters.function_calls
              / results[KS[0]].counters.function_calls)
    print(f"recursion tree grows {growth:.0f}x from k={KS[0]} to "
          f"k={KS[-1]} — the clique-rich signature no other analog has "
          "(the paper measures 942x on the real graph).\n")

    r = results[8]
    sched = DynamicScheduler()
    vt = vertex_tasks(r.per_root_work)
    et = edge_split_tasks(r.per_root_work, dag.degrees)
    mk_v = sched.assign(vt.work, 64).makespan
    mk_e = sched.assign(et.work, 64).makespan
    print("load balance at 64 threads (k=8):")
    print(f"  vertex-parallel: heaviest task holds "
          f"{vt.max_task_fraction:.0%} of all work, makespan "
          f"{mk_v / r.counters.work:.1%} of total")
    print(f"  edge-split (GPU-Pivot style): {et.num_tasks:,} tasks, "
          f"makespan {mk_e / r.counters.work:.1%} of total "
          f"({mk_v / mk_e:.1f}x better)")


if __name__ == "__main__":
    main()
