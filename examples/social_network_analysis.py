#!/usr/bin/env python3
"""Social-network analysis with per-vertex clique counts.

The paper's intro motivates clique counting with community detection
and social-network analysis; this example uses the per-vertex k-clique
extension (paper Sec. VIII) on the Orkut analog to find the vertices
that anchor the most communities, and contrasts clique participation
with plain degree centrality.

Run:  python examples/social_network_analysis.py
"""

import numpy as np

from repro.counting import count_kcliques, per_vertex_counts
from repro.datasets import get_spec, load
from repro.graph.stats import assortativity, heuristic_inputs
from repro.ordering import core_ordering

K = 5  # community seed size


def main() -> None:
    name = "orkut"
    g = load(name)
    spec = get_spec(name)
    print(f"=== {spec.title} analog ({spec.description}) ===")
    print(f"{g}, assortativity r = {assortativity(g):.3f}")

    hi = heuristic_inputs(g)
    print(f"hub vertex {hi.hub} (degree {hi.hub_degree}); its best-connected "
          f"neighbor has degree {hi.a} and shares "
          f"{hi.common_fraction:.0%} of its neighborhood\n")

    ordering = core_ordering(g)
    total = count_kcliques(g, K, ordering).count
    print(f"total {K}-cliques: {total:,}")

    per = per_vertex_counts(g, K, ordering)
    per_arr = np.array([float(c) for c in per])
    # Invariant from the paper's counting identity:
    assert sum(per) == K * total

    top = np.argsort(per_arr)[::-1][:10]
    degs = g.degrees
    print(f"\ntop-10 community anchors by {K}-clique participation:")
    print(f"{'vertex':>8} {'cliques':>12} {'degree':>8} {'deg rank':>9}")
    deg_rank = np.empty(g.num_vertices, dtype=np.int64)
    deg_rank[np.argsort(degs)[::-1]] = np.arange(g.num_vertices)
    for v in top:
        print(f"{v:>8} {per[v]:>12,} {degs[v]:>8} {deg_rank[v]:>9}")

    # How different is clique centrality from degree centrality?
    in_cliques = per_arr > 0
    print(f"\nvertices in at least one {K}-clique: {in_cliques.sum():,} "
          f"of {g.num_vertices:,}")
    top_deg = set(np.argsort(degs)[::-1][:10].tolist())
    overlap = len(top_deg & set(int(v) for v in top))
    print(f"overlap between top-10 by degree and top-10 by cliques: "
          f"{overlap}/10 — degree alone does not find community anchors")


if __name__ == "__main__":
    main()
