#!/usr/bin/env python3
"""Materialized SCT forest: one recursion, every query from arrays.

Builds the pivot tree for a synthetic collaboration network once,
then serves a full k-sweep, per-vertex attribution, uniform clique
samples, and a saved-to-disk reload — all without touching the graph
again.  Compares the amortized query cost against re-running the
direct engine per question.

Run:  python examples/forest_sweep.py
"""

import time

from repro.counting import SCTEngine, get_forest
from repro.graph.generators import chung_lu, power_law_degrees
from repro.ordering import core_ordering


def main() -> None:
    weights = power_law_degrees(2000, exponent=2.3, min_degree=3.0, seed=7)
    g = chung_lu(weights, seed=8)
    ordering = core_ordering(g)
    print(f"graph: {g}")

    # One supervised recursion materializes every leaf.
    t0 = time.perf_counter()
    forest = get_forest(g, ordering)
    build_s = time.perf_counter() - t0
    print(f"forest: {forest.num_leaves:,} leaves, "
          f"{forest.nbytes / 1024:.0f} KiB, built in {build_s:.2f} s")
    print(f"max clique size: {forest.max_clique_size()}")
    print()

    # The k-sweep is now a handful of Pascal-row folds.
    t0 = time.perf_counter()
    sweep = {k: forest.count(k) for k in range(3, forest.max_clique_size() + 1)}
    sweep_s = time.perf_counter() - t0
    print(f"k-sweep from the forest ({sweep_s * 1e3:.2f} ms):")
    for k, c in sweep.items():
        print(f"  {k:2d}: {c:,}")

    # The same sweep on the direct engine re-recurses per k.
    engine = SCTEngine(g, ordering)
    t0 = time.perf_counter()
    direct = {k: engine.count(k).count for k in sweep}
    direct_s = time.perf_counter() - t0
    assert direct == sweep
    print(f"same sweep re-recursing: {direct_s:.2f} s "
          f"({direct_s / sweep_s:,.0f}x slower)")
    print()

    # Attribution and sampling come from the same build.
    per = forest.per_vertex(5)
    top = sorted(range(len(per)), key=per.__getitem__, reverse=True)[:5]
    print("top-5 vertices by 5-clique count:")
    for v in top:
        print(f"  vertex {v}: {per[v]:,}")
    print("three uniform 5-cliques:",
          forest.sample_cliques(5, 3, rng=0))


if __name__ == "__main__":
    main()
