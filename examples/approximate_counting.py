#!/usr/bin/env python3
"""Exact vs approximate vs hybrid counting.

The paper's related work surveys sampling-based approximation as the
escape hatch when exact counting is too expensive.  This example
compares, on the Orkut analog:

* the exact PivotScale count,
* the vertex-sampling and color-sparsification estimators at several
  budgets, with their measured relative errors, and
* the Sec. VI-H hybrid's regime switching across k.

Run:  python examples/approximate_counting.py
"""

from repro.bench.harness import Table, fmt_count
from repro.core.hybrid import count_cliques_hybrid
from repro.counting import (
    count_kcliques,
    sample_count_color,
    sample_count_vertex,
)
from repro.datasets import load
from repro.ordering import core_ordering

K = 5


def main() -> None:
    g = load("orkut")
    print(f"graph: {g}\n")

    exact = count_kcliques(g, K, core_ordering(g)).count
    print(f"exact {K}-clique count: {exact:,}\n")

    t = Table(
        f"approximate {K}-clique counts",
        ["estimator", "budget", "estimate", "std err", "rel. error"],
    )
    for p in (0.8, 0.5, 0.3):
        est = sample_count_vertex(g, K, p, repeats=9, seed=1)
        t.add("vertex sampling", f"p={p}", f"{est.estimate:,.0f}",
              f"{est.std_error:,.0f}",
              f"{abs(est.estimate - exact) / exact:.1%}")
    for colors in (2, 3):
        est = sample_count_color(g, K, colors, repeats=9, seed=2)
        t.add("color sparsify", f"t={colors}", f"{est.estimate:,.0f}",
              f"{est.std_error:,.0f}",
              f"{abs(est.estimate - exact) / exact:.1%}")
    t.show()

    print("hybrid algorithm across clique sizes:")
    t2 = Table("hybrid", ["k", "count", "engine", "model seconds"])
    for k in (3, 4, 6, 8, 10):
        h = count_cliques_hybrid(g, k)
        t2.add(k, fmt_count(h.count), h.algorithm,
               f"{h.model_seconds:.4f}")
    t2.show()
    print("enumeration handles small k; pivoting takes over at the "
          f"paper's k = 8 switch point.")


if __name__ == "__main__":
    main()
