#!/usr/bin/env python3
"""Parallel-scaling study: modeled threads and real processes.

Reproduces the Fig. 11 methodology on one analog: counting work is
measured exactly by the real engine, then the machine model projects
thread scaling for all three subgraph structures — showing the dense
structure's memory-induced plateau and the compact structures' linear
scaling.  Finally runs the *real* multiprocessing backend to show the
honest Python-native parallel path (no speedup on a 1-core container,
but bit-identical counts).

Run:  python examples/scaling_study.py [dataset] [k]
"""

import sys
import time

from repro.bench.harness import Table
from repro.counting import count_kcliques
from repro.datasets import dataset_names, get_spec, load
from repro.ordering import core_ordering, max_out_degree
from repro.parallel import count_kcliques_processes, scaling_curve

THREADS = (1, 2, 4, 8, 16, 32, 64)


def main(name: str, k: int) -> None:
    g = load(name)
    spec = get_spec(name)
    ordering = core_ordering(g)
    maxout = max_out_degree(g, ordering)
    scale = spec.effective_num_vertices / g.num_vertices
    print(f"=== scaling study: {spec.title} analog, k={k} ===\n{g}\n")

    t = Table(
        f"modeled self-relative speedup at paper scale "
        f"(|V| ~ {spec.effective_num_vertices / 1e6:.1f}M)",
        ["structure"] + [f"{x}T" for x in THREADS] + ["bound@64T"],
    )
    count = None
    for structure in ("dense", "sparse", "remap"):
        r = count_kcliques(g, k, ordering, structure=structure)
        count = r.count
        curve = scaling_curve(
            r, list(THREADS),
            effective_num_vertices=spec.effective_num_vertices,
            max_out_degree=maxout, work_scale=scale,
        )
        base = curve[1].seconds
        t.add(structure,
              *(f"{base / curve[x].seconds:.1f}" for x in THREADS),
              curve[64].estimate.bound)
    t.show()
    print(f"exact {k}-clique count: {count:,}\n")

    print("real multiprocessing backend (process-parallel, exact):")
    for procs in (1, 2):
        t0 = time.perf_counter()
        got = count_kcliques_processes(g, k, ordering, processes=procs)
        dt = time.perf_counter() - t0
        assert got == count
        print(f"  {procs} process(es): {dt:.2f}s -> {got:,}")
    print("(this container has one core, so real processes cannot "
          "speed up; the scaling figures use the machine model)")


if __name__ == "__main__":
    dataset = sys.argv[1] if len(sys.argv) > 1 else "webedu"
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    if dataset not in dataset_names():
        raise SystemExit(f"unknown dataset {dataset!r}")
    main(dataset, k)
