"""Exception hierarchy for the :mod:`repro` package.

All errors raised intentionally by this library derive from
:class:`ReproError` so downstream code can catch library failures with a
single ``except`` clause while letting programming errors propagate.

The budget/robustness family (:class:`BudgetExceededError` and its
subclasses, :class:`CheckpointError`, :class:`KernelFaultError`,
:class:`RunInterrupted`) backs the :mod:`repro.runtime` run controller:
engines raise them at root-vertex granularity, harnesses catch
:class:`BudgetExceededError` to render the paper's "> 2h" cells, and
the degradation ladder converts them into explicitly-approximate
results (announced via :class:`DegradedResultWarning`).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphFormatError",
    "OrderingError",
    "CountingError",
    "KernelUnavailableError",
    "ParallelModelError",
    "DatasetError",
    "TraceFormatError",
    "StoreFormatError",
    "BudgetExceededError",
    "DeadlineExceededError",
    "NodeBudgetExceededError",
    "MemoryBudgetExceededError",
    "CheckpointError",
    "ForestFormatError",
    "IOIntegrityError",
    "KernelFaultError",
    "RunInterrupted",
    "WorkerCrashError",
    "ShardError",
    "DegradedResultWarning",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphFormatError(ReproError):
    """Raised when input graph data is malformed or inconsistent."""


class OrderingError(ReproError):
    """Raised when an ordering cannot be computed or is invalid."""


class CountingError(ReproError):
    """Raised for invalid clique-counting requests (e.g. ``k < 1``)."""


class KernelUnavailableError(CountingError):
    """An optional kernel backend cannot run on this interpreter.

    Carries the *reason* (e.g. the underlying ``ImportError`` text for
    the numba backend) so :func:`repro.kernels.resolve_kernel` can
    report why — not just that — a registered backend is unavailable.
    """

    def __init__(self, backend: str, reason: str) -> None:
        super().__init__(f"kernel backend {backend!r} unavailable: {reason}")
        self.backend = backend
        self.reason = reason


class ParallelModelError(ReproError):
    """Raised for invalid machine/scheduler model configurations."""


class DatasetError(ReproError):
    """Raised when a dataset analog is unknown or cannot be built."""


class TraceFormatError(ReproError):
    """Raised when a JSON-lines trace file is malformed.

    Carries the 1-based line number in the message, mirroring
    :class:`GraphFormatError`'s discipline for graph inputs
    (see :func:`repro.obs.parse_trace_lines`).
    """


class StoreFormatError(ReproError):
    """Raised when a benchmark run-store file is malformed.

    Carries the file path and 1-based line number in the message,
    mirroring :class:`GraphFormatError`'s discipline for graph inputs
    (see :mod:`repro.bench.platform.store`).
    """


class BudgetExceededError(ReproError):
    """A run blew one of its :class:`~repro.runtime.Budget` limits.

    ``spent`` carries the :class:`~repro.runtime.BudgetSpent` snapshot
    at the moment of exhaustion (``None`` when the raising site had no
    controller), so harnesses can report *how far* a run got — the
    paper's "> 2h" cells become ``>budget(... nodes)`` cells.
    """

    def __init__(self, message: str, spent=None) -> None:
        super().__init__(message)
        self.spent = spent


class DeadlineExceededError(BudgetExceededError):
    """The wall-clock deadline passed (checked at root granularity)."""


class NodeBudgetExceededError(BudgetExceededError):
    """The recursion-node budget is exhausted.

    Replaces the ad-hoc mutable-list budget the enumeration baseline
    used to carry (``repro.counting.arbcount``).
    """


class MemoryBudgetExceededError(BudgetExceededError):
    """The memory watermark was crossed, or an allocation failed
    (``MemoryError`` raised while processing a root)."""


class CheckpointError(ReproError):
    """A checkpoint file is corrupt, incompatible with the run being
    resumed, or cannot be written."""


class ForestFormatError(CheckpointError):
    """A persisted SCT forest ``.npz`` is truncated or corrupt.

    Subclasses :class:`CheckpointError` so existing callers that treat
    any unloadable forest as a checkpoint failure keep working; carries
    the offending path in the message, and the loader quarantines the
    file (renames it ``<path>.corrupt``) before raising so a rebuild
    can re-save under the original name (see
    :func:`repro.counting.forest.load_or_rebuild_forest`).
    """


class IOIntegrityError(ReproError):
    """A persisted artifact failed checksum verification on read.

    Raised by :mod:`repro.shard.safeio` when a spill file, ledger line
    or checkpoint does not hash to its recorded content checksum —
    a torn write, bit-rot, or injected corruption.  Carries the
    offending path as ``path`` (and the quarantined name as
    ``quarantined`` when the caller moved it aside).
    """

    def __init__(self, message: str, path=None, quarantined=None) -> None:
        super().__init__(message)
        self.path = path
        self.quarantined = quarantined


class KernelFaultError(ReproError):
    """A bitset-kernel backend failed mid-run.

    With degradation enabled the engine falls back to the ``bigint``
    reference backend and re-verifies the active root; without it the
    fault propagates.
    """


class RunInterrupted(ReproError):
    """A run was interrupted between roots (injected or cooperative).

    When checkpointing is enabled the controller saves its state before
    this propagates, so the run can be resumed deterministically.
    """


class WorkerCrashError(ReproError):
    """A parallel worker process failed while counting a chunk.

    The worker-side error is carried in the message (workers report
    failures as data rather than raising through the pool, so the
    parent knows *which* chunk died).  With degradation enabled the
    parallel runtime re-runs the failed chunk in-process on the
    ``bigint`` reference backend instead of raising — the result stays
    exact and is flagged via ``degraded_from`` (see
    :mod:`repro.parallel.runtime`).
    """


class ShardError(ReproError):
    """An out-of-core shard could not be counted.

    Raised by :mod:`repro.shard` after the bounded retry loop (respill,
    re-verify, recount with seeded exponential backoff) is exhausted
    and degradation is not enabled.  With ``degrade=True`` the shard is
    instead recounted exactly from the resident graph and the result is
    flagged ``degraded_from="shard"``.
    """


class DegradedResultWarning(UserWarning):
    """Emitted when a run returns a degraded (approximate or
    backend-downgraded) result instead of failing outright."""
