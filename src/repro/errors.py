"""Exception hierarchy for the :mod:`repro` package.

All errors raised intentionally by this library derive from
:class:`ReproError` so downstream code can catch library failures with a
single ``except`` clause while letting programming errors propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphFormatError",
    "OrderingError",
    "CountingError",
    "ParallelModelError",
    "DatasetError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphFormatError(ReproError):
    """Raised when input graph data is malformed or inconsistent."""


class OrderingError(ReproError):
    """Raised when an ordering cannot be computed or is invalid."""


class CountingError(ReproError):
    """Raised for invalid clique-counting requests (e.g. ``k < 1``)."""


class ParallelModelError(ReproError):
    """Raised for invalid machine/scheduler model configurations."""


class DatasetError(ReproError):
    """Raised when a dataset analog is unknown or cannot be built."""
