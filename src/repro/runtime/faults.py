"""Deterministic fault injection for the counting stack.

Every degradation path the run controller implements must be testable
in CI without flaky timing or real resource exhaustion.  This module
injects the three failure families a traffic-serving deployment
actually sees, each at an exactly-reproducible point:

* **allocation failure** — ``MemoryError`` at the Nth controller
  operation (root boundary), converted by engines into
  :class:`~repro.errors.MemoryBudgetExceededError`;
* **kernel fault** — :class:`~repro.errors.KernelFaultError` either at
  the Nth controller operation or (via :class:`FaultyKernel`) at the
  Nth fused intersect/pivot call inside the hot loop, triggering the
  wordarray→bigint fallback;
* **clock jump** — the injectable clock leaps forward N seconds, so
  deadline handling is testable without sleeping;
* **interrupt** — :class:`~repro.errors.RunInterrupted` between roots,
  simulating an operator kill; with checkpointing enabled the
  controller saves first, so resume tests are deterministic.

Operations are counted by :meth:`FaultPlan.tick`, which the controller
calls once per root vertex — "the Nth operation" therefore means "the
Nth root boundary", a stable, engine-independent index.

The shard runtime (PR 7) adds an **I/O fault family** injected through
the :mod:`repro.shard.safeio` read/write layer rather than at root
boundaries:

* ``io_partial_write`` — a write is silently truncated before the
  atomic rename lands (a torn write the writer believed succeeded);
  detected later by checksum verification on read;
* ``io_corrupt_read`` — checksum verification of a read artifact
  computes a poisoned digest once, simulating bit-rot / a bad sector;
* ``io_enospc`` — the write raises ``OSError(ENOSPC)``, simulating
  disk exhaustion.

I/O faults keep their own per-direction op counters (see
:meth:`FaultPlan.take_io_fault`): ``at_op`` indexes safeio *write*
operations for the write kinds and *read* (verify) operations for
``io_corrupt_read``.  They never fire from :meth:`FaultPlan.tick`.
A spec with ``repeat=True`` keeps firing at every op from ``at_op``
on — the persistent-fault case that exhausts shard retries.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.errors import CountingError, KernelFaultError, RunInterrupted
from repro.kernels.base import BitsetKernel, PivotChoice

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "InjectedClock",
    "ManualClock",
    "FaultyKernel",
    "FAULT_KINDS",
    "IO_KINDS",
    "IO_READ_KINDS",
    "IO_WRITE_KINDS",
]

FAULT_KINDS = (
    "memory",
    "kernel",
    "clock_jump",
    "interrupt",
    "io_partial_write",
    "io_corrupt_read",
    "io_enospc",
)

#: I/O fault kinds scheduled against the safeio *write* op counter.
IO_WRITE_KINDS = ("io_partial_write", "io_enospc")
#: I/O fault kinds scheduled against the safeio *read* op counter.
IO_READ_KINDS = ("io_corrupt_read",)
IO_KINDS = IO_WRITE_KINDS + IO_READ_KINDS


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    at_op:
        1-based controller-operation index (root boundary) at which the
        fault fires.
    jump_seconds:
        For ``clock_jump``: how far the clock leaps forward.
    repeat:
        For the I/O kinds: fire at *every* op from ``at_op`` on instead
        of exactly once (a persistent fault, e.g. a disk that stays
        full).  Ignored for the root-boundary kinds.
    """

    kind: str
    at_op: int
    jump_seconds: float = 0.0
    repeat: bool = False

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise CountingError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.at_op < 1:
            raise CountingError("at_op is 1-based and must be >= 1")
        if self.kind == "clock_jump" and self.jump_seconds <= 0:
            raise CountingError("clock_jump needs jump_seconds > 0")
        if self.repeat and self.kind not in IO_KINDS:
            raise CountingError("repeat=True is only meaningful for I/O faults")


class FaultPlan:
    """A deterministic schedule of :class:`FaultSpec` firings.

    The plan owns the operation counter; each :meth:`tick` advances it
    and fires every spec scheduled for that index.  A spec fires at
    most once, so a resumed run (whose controller starts a fresh op
    counter) re-injects only the faults scheduled for ops it actually
    reaches again — pass a fresh plan per attempt for full control.
    """

    def __init__(self, *specs: FaultSpec) -> None:
        self.specs = tuple(specs)
        self.ops = 0
        self.io_writes = 0
        self.io_reads = 0
        self._fired: set[int] = set()

    def take_io_fault(self, direction: str) -> "FaultSpec | None":
        """Advance an I/O op counter; return the due spec, if any.

        ``direction`` is ``"write"`` (atomic writes / appends) or
        ``"read"`` (checksum verifications).  Called by
        :mod:`repro.shard.safeio` once per operation; unlike
        :meth:`tick` the fault is *returned*, not raised — safeio owns
        the failure semantics (truncate, poison, or raise ``ENOSPC``).
        At most one spec is returned per op; a ``repeat=True`` spec
        stays armed and fires on every subsequent op too.
        """
        if direction == "write":
            kinds = IO_WRITE_KINDS
            self.io_writes += 1
            ops = self.io_writes
        elif direction == "read":
            kinds = IO_READ_KINDS
            self.io_reads += 1
            ops = self.io_reads
        else:  # pragma: no cover - programming error
            raise CountingError(f"unknown I/O direction {direction!r}")
        for i, spec in enumerate(self.specs):
            if spec.kind not in kinds:
                continue
            if spec.repeat:
                if ops >= spec.at_op:
                    self._fired.add(i)
                    return spec
                continue
            if i not in self._fired and spec.at_op == ops:
                self._fired.add(i)
                return spec
        return None

    def tick(self, clock: "InjectedClock | ManualClock | None" = None) -> None:
        """Advance the op counter and fire any due faults."""
        self.ops += 1
        for i, spec in enumerate(self.specs):
            if spec.kind in IO_KINDS:
                continue  # fired via take_io_fault, never at root ticks
            if i in self._fired or spec.at_op != self.ops:
                continue
            self._fired.add(i)
            if spec.kind == "memory":
                raise MemoryError(f"injected allocation failure at op {self.ops}")
            if spec.kind == "kernel":
                raise KernelFaultError(
                    f"injected kernel fault at op {self.ops}"
                )
            if spec.kind == "interrupt":
                raise RunInterrupted(f"injected interrupt at op {self.ops}")
            # clock_jump: silently advance the injectable clock; the
            # controller's next deadline check observes the leap.
            if clock is not None:
                clock.advance(spec.jump_seconds)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FaultPlan ops={self.ops} specs={list(self.specs)!r}>"


class InjectedClock:
    """A monotonic clock with a controllable forward offset.

    The controller reads time exclusively through its clock callable,
    so a ``clock_jump`` fault (or a test calling :meth:`advance`)
    deterministically triggers deadline handling.
    """

    def __init__(self, base=time.monotonic) -> None:
        self._base = base
        self._offset = 0.0

    def advance(self, seconds: float) -> None:
        self._offset += float(seconds)

    def __call__(self) -> float:
        return self._base() + self._offset


class ManualClock:
    """A fully deterministic clock that only moves when told to.

    Used by tests that need exact elapsed-seconds accounting (and by
    checkpoint tests that must not depend on host speed).
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def advance(self, seconds: float) -> None:
        self._now += float(seconds)

    def __call__(self) -> float:
        return self._now


class FaultyKernel(BitsetKernel):
    """Wrap a backend and fail the Nth fused hot-loop call.

    Counts ``intersect_count`` and ``pivot_select`` invocations (the
    two kernels the recursion lives in) and raises
    :class:`~repro.errors.KernelFaultError` when the counter reaches
    ``fail_after``.  By default the fault is transient (fires once) —
    the degradation ladder still permanently downgrades to ``bigint``,
    and the re-verified root proves the fallback path; with
    ``repeat=True`` every subsequent call fails too.
    """

    def __init__(
        self, inner: BitsetKernel, fail_after: int, *, repeat: bool = False
    ) -> None:
        if fail_after < 1:
            raise CountingError("fail_after is 1-based and must be >= 1")
        self.inner = inner
        self.name = inner.name
        self.fail_after = fail_after
        self.repeat = repeat
        self.calls = 0

    def _maybe_fail(self) -> None:
        self.calls += 1
        if self.calls == self.fail_after or (
            self.repeat and self.calls > self.fail_after
        ):
            raise KernelFaultError(
                f"injected kernel fault on fused call {self.calls} "
                f"(backend {self.inner.name!r})"
            )

    @property
    def frontier(self) -> bool:
        return self.inner.frontier

    # ---------------------------------------------------------- storage
    def alloc_rows(self, d: int) -> Any:
        return self.inner.alloc_rows(d)

    def set_row(self, rows: Any, i: int, bits: np.ndarray) -> None:
        self.inner.set_row(rows, i, bits)

    def load_rows(
        self, rows: Any, indptr: np.ndarray, indices: np.ndarray
    ) -> None:
        self.inner.load_rows(rows, indptr, indices)

    def row_int(self, rows: Any, i: int) -> int:
        return self.inner.row_int(rows, i)

    def num_rows(self, rows: Any) -> int:
        return self.inner.num_rows(rows)

    def mask_int(self, rows: Any, mask: Any) -> int:
        return self.inner.mask_int(rows, mask)

    def to_native(self, rows: Any, mask: int) -> Any:
        return self.inner.to_native(rows, mask)

    def sweep_entry(self, rows: Any, batch: Any, j: int, i: int):
        return self.inner.sweep_entry(rows, batch, j, i)

    # ----------------------------------------------------- fused kernels
    def intersect(self, rows: Any, i: int, mask: int) -> int:
        return self.inner.intersect(rows, i, mask)

    def intersect_count(self, rows: Any, i: int, mask: int) -> tuple[int, int]:
        self._maybe_fail()
        return self.inner.intersect_count(rows, i, mask)

    def count_rows(self, rows: Any, mask: int) -> Sequence[int]:
        return self.inner.count_rows(rows, mask)

    def pivot_select(self, rows: Any, P: int, pc: int) -> PivotChoice:
        self._maybe_fail()
        return self.inner.pivot_select(rows, P, pc)

    def pivot_select_sweep(
        self, rows: Any, masks: Sequence[Any], pcs: Sequence[int]
    ):
        # Tick once per swept mask (each replaces one scalar
        # pivot_select), *after* the inner call so a fault never leaves
        # a half-computed batch behind — fail_after indexes stay
        # comparable between the scalar and frontier spines.
        out = self.inner.pivot_select_sweep(rows, masks, pcs)
        for _ in masks:
            self._maybe_fail()
        return out

    def expand_children(self, rows: Any, P: Any, best: int, best_row: Any):
        # Tick once per expanded child (each replaces one scalar
        # intersect_count in the branch loop).
        out = self.inner.expand_children(rows, P, best, best_row)
        for _ in out[0]:
            self._maybe_fail()
        return out

    def row_accessor(self, rows: Any):
        return self.inner.row_accessor(rows)
