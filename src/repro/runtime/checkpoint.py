"""JSON checkpoint format for interruptible counting runs.

A checkpoint freezes an all-k (or target-k) run at a root-vertex
boundary: the roots already counted, their exact partial totals, the
work counters, and enough identity (graph / ordering / engine
fingerprints) to refuse resuming against the wrong inputs.  Roots are
atomic units — a run is always checkpointed *between* roots — so a
resumed run replays the remaining roots in the same order with the
same per-root arithmetic and lands on bit-identical counts and
counters (guarded by ``tests/test_checkpoint.py``).

Format (version 1)::

    {
      "version": 1,
      "complete": false,
      "descriptor": {
        "engine": "sct", "k": 8, "max_k": null,
        "structure": "remap", "kernel": "bigint",
        "graph": {"n": 1234, "m": 5678, "fingerprint": "..."},
        "ordering_fingerprint": "..."
      },
      "spent": {"nodes": ..., "seconds": ..., ...},
      "state": { ... engine-owned: next_root, totals, counters ... }
    }

Counts are stored as native JSON integers (Python's ``json`` handles
arbitrary precision exactly) and work counters as floats (``repr``
round-trip is exact), so nothing is lost across save/load.

Writes go through :mod:`repro.shard.safeio` — temp file + ``fsync`` +
rename + directory fsync — and the payload carries a ``checksum`` over
its canonical JSON encoding; :func:`load_checkpoint` recomputes it and
refuses a mismatch, so a torn or bit-rotted checkpoint is rejected
loudly instead of resuming from silently wrong partial sums.
Checkpoints written before the checksum existed (no ``checksum`` key)
still load.
"""

from __future__ import annotations

import hashlib
import json
import os

import numpy as np

from repro.errors import CheckpointError
from repro.runtime.budget import BudgetSpent

__all__ = [
    "CHECKPOINT_VERSION",
    "graph_fingerprint",
    "array_fingerprint",
    "save_checkpoint",
    "load_checkpoint",
]

CHECKPOINT_VERSION = 1


def graph_fingerprint(g) -> str:
    """Stable identity of a CSR graph (structure, not object).

    Delegates to :meth:`CSRGraph.fingerprint
    <repro.graph.csr.CSRGraph.fingerprint>` when available (memoized
    on the immutable arrays, mutation-safe); the inline fallback keeps
    duck-typed graph stand-ins working.
    """
    fp = getattr(g, "fingerprint", None)
    if fp is not None:
        return fp()
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(g.indptr).tobytes())
    h.update(np.ascontiguousarray(g.indices).tobytes())
    h.update(b"directed" if g.directed else b"undirected")
    return h.hexdigest()[:16]


def array_fingerprint(arr) -> str:
    """Stable identity of an ordering's rank array (or any array)."""
    return hashlib.sha256(
        np.ascontiguousarray(np.asarray(arr)).tobytes()
    ).hexdigest()[:16]


def _payload_checksum(payload: dict) -> str:
    """Checksum over the canonical encoding of a checkpoint payload
    (every key except ``checksum`` itself, sorted)."""
    body = json.dumps(
        {k: v for k, v in payload.items() if k != "checksum"},
        sort_keys=True,
    )
    return hashlib.sha256(body.encode("utf-8")).hexdigest()[:16]


def save_checkpoint(
    path: str | os.PathLike[str],
    descriptor: dict,
    spent: BudgetSpent,
    state: dict,
    *,
    complete: bool = False,
    faults=None,
) -> None:
    """Atomically write a checkpoint (temp + fsync + rename) with a
    content checksum.  ``faults`` threads the run's
    :class:`~repro.runtime.faults.FaultPlan` into the safeio layer so
    injected I/O faults hit checkpoint writes too."""
    from repro.shard import safeio

    payload = {
        "version": CHECKPOINT_VERSION,
        "complete": bool(complete),
        "descriptor": descriptor,
        "spent": spent.as_dict(),
        "state": state,
    }
    payload["checksum"] = _payload_checksum(payload)
    try:
        safeio.atomic_write_text(path, json.dumps(payload), faults=faults)
    except OSError as exc:
        raise CheckpointError(f"cannot write checkpoint {path}: {exc}") from exc


def load_checkpoint(
    path: str | os.PathLike[str], descriptor: dict | None = None
) -> dict:
    """Load a checkpoint, validating version and (optionally) identity.

    ``descriptor`` is the resuming run's descriptor; any mismatch with
    the stored one (different graph, ordering, engine, k, structure or
    kernel) raises :class:`~repro.errors.CheckpointError` — resuming a
    checkpoint against different inputs would silently corrupt counts.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    except ValueError as exc:
        raise CheckpointError(f"corrupt checkpoint {path}: {exc}") from exc
    if not isinstance(payload, dict) or "state" not in payload:
        raise CheckpointError(f"corrupt checkpoint {path}: missing fields")
    stored_sum = payload.get("checksum")
    if stored_sum is not None:
        computed = _payload_checksum(payload)
        if computed != stored_sum:
            raise CheckpointError(
                f"{path}: checksum mismatch (stored {stored_sum}, computed "
                f"{computed}) — checkpoint is torn or corrupt"
            )
    version = payload.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has version {version!r}, "
            f"expected {CHECKPOINT_VERSION}"
        )
    if descriptor is not None:
        stored = payload.get("descriptor") or {}
        for key, want in descriptor.items():
            got = stored.get(key)
            if got != want:
                raise CheckpointError(
                    f"checkpoint {path} was written for {key}={got!r}, "
                    f"this run has {key}={want!r}"
                )
    payload["spent"] = BudgetSpent.from_dict(payload.get("spent", {}))
    return payload
