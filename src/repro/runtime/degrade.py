"""The graceful-degradation ladder.

A traffic-serving deployment cannot answer "the run died" — it answers
with the best result the budget allowed, flagged for what it is.  The
ladder this module (with the engines) implements, from least to most
lossy:

1. **kernel fault → reference backend.**  A fused-kernel failure on
   the ``wordarray`` backend falls back to ``bigint`` mid-run; the
   active root is re-verified from scratch.  Counts and counters are
   backend-invariant, so the result is *still exact and bit-identical*
   — only ``CountResult.degraded_from`` records the downgrade.
2. **budget exhaustion → root sampling** (this module).  When the
   node/deadline/memory budget dies at root ``r``, the exact per-root
   counts for roots ``< r`` are kept and the remaining roots are
   estimated with the unbiased root-sampling estimator
   (:func:`repro.counting.sampling.sample_count_roots`), which
   composes exactly with partial progress because the SCT total is a
   sum over roots.  The folded result is flagged ``approximate``.
3. **hybrid: enumeration → pivoting.**  The hybrid driver retries an
   over-budget enumeration run with the pivoting pipeline (whose tree
   is k-insensitive) before resorting to sampling — see
   :mod:`repro.core.hybrid`.

The sampled remainder intentionally runs *outside* the exhausted
budget: it costs roughly ``p x repeats`` of the remaining exact work
(default ~256 roots per repeat), which is the price of answering at
all.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro import obs
from repro.errors import BudgetExceededError, DegradedResultWarning

__all__ = ["degrade_to_sampling"]


def _join_degraded(prior: str | None, step: str) -> str:
    return step if prior is None else f"{prior},{step}"


def degrade_to_sampling(
    engine,
    *,
    k: int | None,
    max_k: int | None = None,
    state: dict | None,
    cause: BudgetExceededError | None = None,
    p: float | None = None,
    repeats: int = 3,
    seed: int = 0,
):
    """Fold an interrupted exact run into a flagged-approximate result.

    Parameters
    ----------
    engine:
        The :class:`~repro.counting.sct.SCTEngine` whose run blew its
        budget (per-root counting is reused for the sampled roots).
    k / max_k:
        The original request (``k=None`` = all-k).
    state:
        The controller's last engine snapshot (``controller.state()``);
        ``None`` means no root completed — the whole count is
        estimated.
    cause:
        The budget error being degraded away from (for the warning).

    Returns a :class:`~repro.counting.sct.CountResult` with
    ``approximate=True``, ``degraded_from`` extended with ``"exact"``,
    and the already-counted roots folded in exactly.
    """
    from repro.counting.counters import Counters
    from repro.counting.sampling import (
        sample_all_sizes_roots,
        sample_count_roots,
    )
    from repro.counting.sct import CountResult

    n = engine.graph.num_vertices
    state = state or {}
    next_root = int(state.get("next_root", 0))
    counters = Counters.from_dict(state.get("counters", {}))
    per_root_work = np.zeros(n, dtype=np.float64)
    per_root_memory = np.zeros(n, dtype=np.float64)
    if next_root:
        per_root_work[:next_root] = state.get("per_root_work", [])
        per_root_memory[:next_root] = state.get("per_root_memory", [])
    degraded_from = _join_degraded(state.get("degraded_from"), "exact")
    obs.degradation(
        "sampling", engine="sct", next_root=next_root,
        cause=type(cause).__name__ if cause is not None else None,
    )

    if k is not None:
        exact_total = int(state.get("total", 0))
        est = sample_count_roots(
            engine, k, next_root, p=p, repeats=repeats, seed=seed
        )
        count: float = float(exact_total) + est.estimate
        all_counts = None
        std_error = est.std_error
    else:
        length, _cap = engine._allk_shape(max_k)
        stored = state.get("all_counts") or [0] * length
        estimates, std_error = sample_all_sizes_roots(
            engine, next_root, max_k=max_k, p=p, repeats=repeats, seed=seed
        )
        all_counts = [float(e) + float(x) for e, x in zip(stored, estimates)]
        while len(all_counts) > 1 and all_counts[-1] == 0:
            all_counts.pop()
        count = None

    warnings.warn(
        f"budget exhausted after {next_root}/{n} exact roots"
        f"{f' ({cause})' if cause is not None else ''}; returning "
        f"root-sampled approximation (std error ~{std_error:.3g})",
        DegradedResultWarning,
        stacklevel=2,
    )
    return CountResult(
        count=count,
        all_counts=all_counts,
        k=k,
        counters=counters,
        per_root_work=per_root_work,
        per_root_memory=per_root_memory,
        structure=engine.structure.name,
        kernel=engine.kernel.name,
        approximate=True,
        degraded_from=degraded_from,
    )
