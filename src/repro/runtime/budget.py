"""Work budgets for counting runs.

The paper's evaluation is budget-bounded: the enumeration baseline is
cut off at 2 hours wall clock (Table V's "> 2h" cells), and real
deployments — the Arb-Count paper's peeling service, Shi et al.'s
parallel counting — abandon or downgrade runs that blow their work
budget.  :class:`Budget` expresses the three limits every engine
understands, and :class:`BudgetSpent` is the running meter the
:class:`~repro.runtime.controller.RunController` maintains and attaches
to :class:`~repro.errors.BudgetExceededError` / result objects.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CountingError

__all__ = ["Budget", "BudgetSpent"]


@dataclass(frozen=True)
class Budget:
    """Limits for one counting run; ``None`` means unlimited.

    Attributes
    ----------
    deadline_seconds:
        Wall-clock limit, measured on the controller's (injectable)
        monotonic clock from ``begin()``.  Resumed runs count the time
        already spent before the interruption.
    max_nodes:
        Recursion-node limit (the paper's work proxy: SCT/enumeration
        tree nodes, i.e. ``Counters.function_calls``).
    max_memory_bytes:
        Watermark on the modeled per-root subgraph footprint
        (``Counters.peak_subgraph_bytes``).
    """

    deadline_seconds: float | None = None
    max_nodes: int | None = None
    max_memory_bytes: int | None = None

    def __post_init__(self) -> None:
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise CountingError("deadline_seconds must be > 0")
        if self.max_nodes is not None and self.max_nodes < 1:
            raise CountingError("max_nodes must be >= 1")
        if self.max_memory_bytes is not None and self.max_memory_bytes < 1:
            raise CountingError("max_memory_bytes must be >= 1")

    @property
    def unlimited(self) -> bool:
        """True when no limit is set (the controller still checkpoints
        and injects faults, it just never aborts on its own)."""
        return (
            self.deadline_seconds is None
            and self.max_nodes is None
            and self.max_memory_bytes is None
        )


@dataclass
class BudgetSpent:
    """What a run has consumed so far.

    Surfaced on results (``CliqueCountResult.budget_spent``), carried
    by :class:`~repro.errors.BudgetExceededError`, and serialized into
    checkpoints so a resumed run keeps charging against the same
    budget.
    """

    nodes: int = 0
    seconds: float = 0.0
    peak_memory_bytes: int = 0
    roots_done: int = 0

    def as_dict(self) -> dict[str, float]:
        return {
            "nodes": self.nodes,
            "seconds": self.seconds,
            "peak_memory_bytes": self.peak_memory_bytes,
            "roots_done": self.roots_done,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "BudgetSpent":
        return cls(
            nodes=int(d.get("nodes", 0)),
            seconds=float(d.get("seconds", 0.0)),
            peak_memory_bytes=int(d.get("peak_memory_bytes", 0)),
            roots_done=int(d.get("roots_done", 0)),
        )

    def copy(self) -> "BudgetSpent":
        return BudgetSpent(
            nodes=self.nodes,
            seconds=self.seconds,
            peak_memory_bytes=self.peak_memory_bytes,
            roots_done=self.roots_done,
        )
