"""The resilient run controller.

One :class:`RunController` supervises one counting run.  Engines
cooperate with it at **root-vertex granularity** — the natural task
boundary of every engine in this codebase (SCT, enumeration,
per-vertex/per-edge attribution, sampling repeats):

* :meth:`tick` — once per root, before any work: fires injected
  faults, checks the wall-clock deadline;
* :meth:`charge_nodes` / :meth:`note_memory` — after a root's
  recursion, before its counts are folded in: meter the node budget
  and memory watermark.  Raising *before* the fold keeps the
  checkpointed totals consistent (a root is all-in or not-at-all);
* :meth:`complete_root` — after the fold: advances progress and
  autosaves the checkpoint every ``checkpoint_every`` roots;
* :meth:`guard` — wraps the whole root loop: any budget error or
  interrupt saves a checkpoint (when enabled) before propagating, and
  a clean exit writes a final ``complete`` checkpoint.

The controller never aborts mid-root and never mutates engine state:
engines hand it a zero-argument ``snapshot`` provider at
:meth:`begin`, invoked only at actual save points, so the hot loop
pays one method call per root.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Callable

from repro import obs
from repro.errors import (
    BudgetExceededError,
    CountingError,
    DeadlineExceededError,
    MemoryBudgetExceededError,
    NodeBudgetExceededError,
    RunInterrupted,
)
from repro.runtime.budget import Budget, BudgetSpent
from repro.runtime.checkpoint import load_checkpoint, save_checkpoint
from repro.runtime.faults import FaultPlan, InjectedClock

__all__ = ["RunController"]


class RunController:
    """Budgets, checkpoint/resume, fault injection and degradation
    policy for one counting run.

    Parameters
    ----------
    budget:
        Limits to enforce (default: unlimited).
    checkpoint_path:
        JSON checkpoint location; ``None`` disables checkpointing.
    resume:
        Load ``checkpoint_path`` at :meth:`begin` and hand the stored
        engine state back so the run continues where it stopped.
    degrade:
        Enable the graceful-degradation ladder: kernel faults fall
        back to the ``bigint`` backend mid-run, and budget exhaustion
        lets drivers return an explicitly-approximate result instead
        of raising (see :mod:`repro.runtime.degrade`).
    faults:
        A :class:`~repro.runtime.faults.FaultPlan` to inject
        deterministic failures (CI / tests).
    clock:
        Monotonic-clock callable; defaults to an
        :class:`~repro.runtime.faults.InjectedClock` so clock-jump
        faults work out of the box.
    checkpoint_every:
        Autosave period in roots (saves also happen on abort and at
        completion).
    """

    def __init__(
        self,
        budget: Budget | None = None,
        *,
        checkpoint_path: str | os.PathLike[str] | None = None,
        resume: bool = False,
        degrade: bool = False,
        faults: FaultPlan | None = None,
        clock: Callable[[], float] | None = None,
        checkpoint_every: int = 64,
    ) -> None:
        if resume and checkpoint_path is None:
            raise CountingError("resume=True requires a checkpoint_path")
        if checkpoint_every < 1:
            raise CountingError("checkpoint_every must be >= 1")
        self.budget = budget if budget is not None else Budget()
        self.checkpoint_path = checkpoint_path
        self.resume = resume
        self.degrade = degrade
        self.faults = faults
        self.clock = clock if clock is not None else InjectedClock()
        self.checkpoint_every = checkpoint_every
        self.spent = BudgetSpent()
        self._t0: float | None = None
        self._prior_seconds = 0.0
        self._descriptor: dict = {}
        self._snapshot: Callable[[], dict] | None = None
        self._since_save = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def begin(
        self,
        descriptor: dict,
        snapshot: Callable[[], dict] | None = None,
    ) -> dict | None:
        """Start (or resume) a run.

        ``descriptor`` identifies the run (engine, k, structure,
        kernel, graph/ordering fingerprints); ``snapshot`` is the
        engine's zero-argument state provider for checkpoint saves.
        Returns the stored engine state when resuming, else ``None``.
        """
        self._descriptor = dict(descriptor)
        self._snapshot = snapshot
        self._t0 = self.clock()
        self._prior_seconds = 0.0
        if self.resume:
            payload = load_checkpoint(self.checkpoint_path, self._descriptor)
            prior = payload["spent"]
            self.spent = prior.copy()
            self._prior_seconds = prior.seconds
            return payload["state"]
        return None

    @contextmanager
    def guard(self):
        """Wrap the engine's root loop: checkpoint on abort, finalize
        on success."""
        try:
            yield
        except (BudgetExceededError, RunInterrupted):
            self.save()
            self.publish_metrics()
            raise
        else:
            self.save(complete=True)
            self.publish_metrics()

    # ------------------------------------------------------------------
    # per-root cooperation points
    # ------------------------------------------------------------------
    def tick(self) -> None:
        """Root-boundary check: injected faults, then the deadline."""
        if self.faults is not None:
            self.faults.tick(self.clock)
        self.check_deadline()

    def check_deadline(self) -> None:
        limit = self.budget.deadline_seconds
        if limit is not None and self.elapsed_seconds() > limit:
            raise DeadlineExceededError(
                f"deadline of {limit:g}s exceeded "
                f"({self.elapsed_seconds():.3f}s elapsed)",
                spent=self.spent_snapshot(),
            )

    def charge_nodes(self, nodes: int) -> None:
        """Meter ``nodes`` recursion nodes against the node budget."""
        self.spent.nodes += int(nodes)
        limit = self.budget.max_nodes
        if limit is not None and self.spent.nodes > limit:
            raise NodeBudgetExceededError(
                f"recursion-node budget of {limit} exhausted "
                f"({self.spent.nodes} nodes)",
                spent=self.spent_snapshot(),
            )

    def remaining_nodes(self) -> int | None:
        """Nodes left before :meth:`charge_nodes` would raise
        (``None`` = unlimited) — engines with in-recursion budget
        checks seed their local countdown from this."""
        limit = self.budget.max_nodes
        if limit is None:
            return None
        return max(0, limit - self.spent.nodes)

    def note_memory(self, peak_bytes: int) -> None:
        """Record a root's modeled footprint; enforce the watermark."""
        peak = int(peak_bytes)
        if peak > self.spent.peak_memory_bytes:
            self.spent.peak_memory_bytes = peak
        limit = self.budget.max_memory_bytes
        if limit is not None and peak > limit:
            raise MemoryBudgetExceededError(
                f"memory watermark of {limit} bytes crossed "
                f"(root footprint {peak} bytes)",
                spent=self.spent_snapshot(),
            )

    def complete_root(self, v: int) -> None:
        """A root's counts are folded in; autosave periodically."""
        self.complete_roots(1)

    def complete_roots(self, count: int) -> None:
        """A batch of roots' counts are folded in at once — the
        parallel runtime's unit of progress is a *chunk* of roots, not
        a single root, so the meter advances by the chunk size."""
        self.spent.roots_done += int(count)
        self._since_save += int(count)
        if (
            self.checkpoint_path is not None
            and self._since_save >= self.checkpoint_every
        ):
            self.save()

    def publish_metrics(self) -> None:
        """Mirror the budget meter into runtime gauges.

        Budget *state* stays on the controller (checkpoints serialize
        it); the registry only observes it, so enabling metrics cannot
        perturb budget decisions or resume identity.  Called at every
        save point and at guard exit; ``tests/test_obs.py`` pins the
        mirrored values to ``spent`` and to the engines' own
        ``engine_nodes_visited_total``.
        """
        reg = obs.get_registry()
        if not reg.enabled:
            return
        reg.gauge("runtime_nodes_spent").set(self.spent.nodes)
        reg.gauge("runtime_roots_done").set(self.spent.roots_done)
        reg.gauge("runtime_peak_memory_bytes").set(
            self.spent.peak_memory_bytes
        )

    # ------------------------------------------------------------------
    # state access
    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        """Whether :meth:`begin` has run — lets batch entry points
        attach to an already-running controller without re-beginning
        (which would reset the clock and re-trigger resume loads)."""
        return self._t0 is not None

    def elapsed_seconds(self) -> float:
        """Wall-clock spent, including time before an interruption."""
        if self._t0 is None:
            return self._prior_seconds
        return self._prior_seconds + (self.clock() - self._t0)

    def spent_snapshot(self) -> BudgetSpent:
        """Point-in-time copy of the meter with seconds filled in."""
        snap = self.spent.copy()
        snap.seconds = self.elapsed_seconds()
        return snap

    def state(self) -> dict | None:
        """The engine's current checkpointable state (or ``None`` for
        engines that did not register a snapshot provider)."""
        return self._snapshot() if self._snapshot is not None else None

    def save(self, *, complete: bool = False) -> None:
        """Write the checkpoint now (no-op without a path/provider)."""
        if self.checkpoint_path is None or self._snapshot is None:
            return
        save_checkpoint(
            self.checkpoint_path,
            self._descriptor,
            self.spent_snapshot(),
            self._snapshot(),
            complete=complete,
            faults=self.faults,
        )
        self._since_save = 0
        obs.checkpoint_write(complete=complete)
        self.publish_metrics()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<RunController budget={self.budget} "
            f"spent={self.spent.as_dict()} degrade={self.degrade}>"
        )
