"""Resilient run control: budgets, checkpoint/resume, fault injection
and graceful degradation for the counting stack.

Import order matters here: these modules are imported *by* the engines
(``repro.counting.sct`` pulls in the controller), so nothing in this
package may import ``repro.counting`` at module level.
:mod:`repro.runtime.degrade` honours that by lazy-importing the
sampling estimators inside its function body.
"""

from repro.runtime.budget import Budget, BudgetSpent
from repro.runtime.checkpoint import (
    CHECKPOINT_VERSION,
    graph_fingerprint,
    load_checkpoint,
    save_checkpoint,
)
from repro.runtime.controller import RunController
from repro.runtime.degrade import degrade_to_sampling
from repro.runtime.faults import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    FaultyKernel,
    InjectedClock,
    ManualClock,
)

__all__ = [
    "Budget",
    "BudgetSpent",
    "CHECKPOINT_VERSION",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "FaultyKernel",
    "InjectedClock",
    "ManualClock",
    "RunController",
    "degrade_to_sampling",
    "graph_fingerprint",
    "load_checkpoint",
    "save_checkpoint",
]
