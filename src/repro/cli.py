"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``count``     count k-cliques on a dataset analog or an edge-list file
``dist``      print the clique-size distribution
``datasets``  list the built-in dataset analogs (Table I)
``orderings`` compare all orderings on a graph (quality + modeled time)
``report``    regenerate EXPERIMENTS.md
``figures``   render every paper figure as SVG
``validate``  graph health report (invariants, degeneracy, components)
``stream``    apply an edge-edit stream batch-by-batch, serving counts
              from an incrementally patched forest (see docs/dynamic.md)
``bench``     benchmark run store: run, compare, promote baselines
              (see docs/benchmarking.md)

Examples::

    python -m repro count --dataset orkut -k 8
    python -m repro count --dataset orkut -k 8 --kernel wordarray
    python -m repro count --edge-list my.el -k 5 --structure sparse
    python -m repro count --dataset orkut -k 9 --max-nodes 100000 --degrade
    python -m repro dist --dataset dblp --checkpoint run.ckpt
    python -m repro dist --dataset dblp --checkpoint run.ckpt --resume
    python -m repro stream --dataset dblp --edits edits.txt -k 5 --batch-size 16
    python -m repro orderings --dataset skitter

Exit codes: 0 success, 2 usage/input error, 3 budget exhausted without
``--degrade``.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import BudgetExceededError, ReproError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PivotScale reproduction: scalable exact k-clique counting",
    )
    grp = parser.add_argument_group(
        "observability (see docs/observability.md)"
    )
    grp.add_argument("--metrics-out", default=None, metavar="PATH",
                     help="write the run's metrics registry as JSON")
    grp.add_argument("--trace-out", default=None, metavar="PATH",
                     help="stream span/event records as JSON lines")
    grp.add_argument("--profile", action="store_true",
                     help="print a per-phase wall/CPU/memory breakdown")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_graph_source(p: argparse.ArgumentParser) -> None:
        src = p.add_mutually_exclusive_group(required=True)
        src.add_argument("--dataset", help="built-in analog name")
        src.add_argument("--edge-list", help="path to a whitespace edge list")

    def add_forest(p: argparse.ArgumentParser) -> None:
        grp = p.add_argument_group("materialized SCT forest")
        grp.add_argument(
            "--forest", choices=("auto", "build", "use", "off"),
            default="auto",
            help="auto: build one forest when several queries share the "
                 "graph (e.g. count + --per-vertex); build: always "
                 "build (saved to --forest-path when given); use: load "
                 "a saved forest and answer every query from it; off: "
                 "always re-recurse",
        )
        grp.add_argument("--forest-path", default=None, metavar="PATH",
                         help=".npz file to save (--forest build) or "
                              "load (--forest use) the forest")

    def add_parallel(p: argparse.ArgumentParser) -> None:
        grp = p.add_argument_group("process parallelism")
        grp.add_argument("--processes", type=int, default=None,
                         help="worker processes for the counting phase "
                              "(>= 2 enables the shared-memory parallel "
                              "runtime; default/1 = serial)")
        grp.add_argument("--par-chunks", type=int, default=4,
                         metavar="N",
                         help="root chunks per process for the dynamic "
                              "scheduler (default 4)")

    def add_resilience(p: argparse.ArgumentParser) -> None:
        grp = p.add_argument_group("resilience")
        grp.add_argument("--deadline", type=float, default=None,
                         metavar="SECONDS",
                         help="wall-clock budget for the counting phase")
        grp.add_argument("--max-nodes", type=int, default=None,
                         help="recursion-node budget")
        grp.add_argument("--max-memory", type=int, default=None,
                         metavar="BYTES",
                         help="per-root subgraph memory watermark")
        grp.add_argument("--checkpoint", default=None, metavar="PATH",
                         help="write per-root progress to a JSON checkpoint")
        grp.add_argument("--resume", action="store_true",
                         help="resume from --checkpoint, or from the "
                              "shard ledger under --spill-dir when "
                              "--shard-mb is set (bit-identical)")
        grp.add_argument("--degrade", action="store_true",
                         help="on budget exhaustion, return a flagged "
                              "sampling estimate instead of failing")

    def add_sharding(p: argparse.ArgumentParser) -> None:
        grp = p.add_argument_group(
            "out-of-core sharding (see docs/sharding.md)"
        )
        grp.add_argument("--shard-mb", type=float, default=None,
                         metavar="MIB",
                         help="count out-of-core through the crash-safe "
                              "shard runtime, keeping each shard's "
                              "spilled CSR slice under this watermark")
        grp.add_argument("--spill-dir", default=None, metavar="DIR",
                         help="directory for shard spill files and the "
                              "resume ledger (required with --shard-mb)")

    p_count = sub.add_parser("count", help="count k-cliques")
    add_graph_source(p_count)
    p_count.add_argument("-k", type=int, required=True, help="clique size")
    p_count.add_argument(
        "--structure", choices=("dense", "sparse", "remap"), default="remap"
    )
    p_count.add_argument(
        "--kernel", choices=("bigint", "wordarray", "numba"), default="bigint",
        help="bitset-kernel backend for the counting hot path",
    )
    p_count.add_argument(
        "--ordering",
        choices=("heuristic", "core", "degree", "approx_core", "kcore",
                 "centrality"),
        default="heuristic",
    )
    p_count.add_argument("--threads", type=int, default=64,
                         help="modeled thread count")
    p_count.add_argument("--per-vertex", action="store_true",
                         help="also print the top-10 per-vertex counts")
    add_parallel(p_count)
    add_forest(p_count)
    add_resilience(p_count)
    add_sharding(p_count)

    p_dist = sub.add_parser("dist", help="clique-size distribution")
    add_graph_source(p_dist)
    p_dist.add_argument("--max-k", type=int, default=None)
    p_dist.add_argument(
        "--kernel", choices=("bigint", "wordarray", "numba"), default="bigint",
        help="bitset-kernel backend for the counting hot path",
    )
    add_parallel(p_dist)
    add_forest(p_dist)
    add_resilience(p_dist)
    add_sharding(p_dist)

    sub.add_parser("datasets", help="list dataset analogs")

    p_ord = sub.add_parser("orderings", help="compare all orderings")
    add_graph_source(p_ord)
    p_ord.add_argument("-k", type=int, default=8)

    p_rep = sub.add_parser("report", help="regenerate EXPERIMENTS.md")
    p_rep.add_argument("--output", default="EXPERIMENTS.md")

    p_fig = sub.add_parser("figures", help="render all paper figures as SVG")
    p_fig.add_argument("--output-dir", default="figures")

    p_val = sub.add_parser("validate", help="graph health report")
    add_graph_source(p_val)

    p_stream = sub.add_parser(
        "stream",
        help="incremental counts under an edge-edit stream "
             "(see docs/dynamic.md)",
    )
    add_graph_source(p_stream)
    p_stream.add_argument(
        "--edits", required=True, metavar="PATH",
        help="edit file: one '+ u v' (insert) or '- u v' (delete) per "
             "line, applied in order; '#' starts a comment",
    )
    p_stream.add_argument(
        "-k", type=int, default=None,
        help="report this clique size after each batch "
             "(default: the full distribution)",
    )
    p_stream.add_argument("--max-k", type=int, default=None,
                          help="cap the reported distribution")
    p_stream.add_argument(
        "--batch-size", type=int, default=None, metavar="N",
        help="edits applied per batch (default: the whole file as one "
             "batch); counts are emitted after every batch",
    )
    p_stream.add_argument(
        "--policy", choices=("patch", "reorder", "auto"), default="patch",
        help="patch: keep the build-time order, recompute only dirty "
             "roots (default); reorder: full rebuild under a fresh "
             "degeneracy order each batch; auto: patch until cumulative "
             "edits exceed --reorder-ratio x |E|",
    )
    p_stream.add_argument("--reorder-ratio", type=float, default=0.25,
                          metavar="R",
                          help="auto-policy patch budget as a fraction "
                               "of |E| (default 0.25)")
    p_stream.add_argument(
        "--structure", choices=("dense", "sparse", "remap"), default="remap"
    )
    p_stream.add_argument(
        "--kernel", choices=("bigint", "wordarray", "numba"),
        default="bigint",
        help="bitset-kernel backend for the counting hot path",
    )
    add_resilience(p_stream)

    from repro.bench.platform.cli import add_bench_parser

    add_bench_parser(sub)
    return parser


def _load_graph(args):
    from repro.datasets import get_spec, load
    from repro.graph.io import read_edge_list

    if args.dataset:
        spec = get_spec(args.dataset)
        return load(args.dataset), spec.effective_num_vertices
    return read_edge_list(args.edge_list), None


def _resilience_kwargs(args) -> dict:
    return {
        "deadline_seconds": args.deadline,
        "max_nodes": args.max_nodes,
        "max_memory_bytes": args.max_memory,
        "checkpoint_path": args.checkpoint,
        "resume": args.resume,
        "degrade": args.degrade,
        "shard_mb": args.shard_mb,
        "spill_dir": args.spill_dir,
    }


def _print_budget(spent) -> None:
    if spent is not None:
        print(f"budget spent: {spent.nodes:,} nodes, "
              f"{spent.seconds:.3f} s, {spent.roots_done:,} roots")


def _cmd_count(args) -> int:
    from repro.core import PivotScaleConfig, count_cliques

    g, eff = _load_graph(args)
    cfg = PivotScaleConfig(
        structure=args.structure,
        kernel=args.kernel,
        ordering=args.ordering,
        threads=args.threads,
        processes=args.processes,
        par_chunks=args.par_chunks,
        effective_num_vertices=eff,
        forest=args.forest,
        forest_path=args.forest_path,
        **_resilience_kwargs(args),
    )

    if cfg.forest == "use":
        # Serve every query from a previously materialized forest —
        # no recursion at all.  A corrupt .npz is quarantined and the
        # forest rebuilt from the graph (see docs/robustness.md).
        from repro.counting.forest import load_or_rebuild_forest

        forest, rebuilt = load_or_rebuild_forest(
            cfg.forest_path, g, structure=cfg.structure, kernel=cfg.kernel
        )
        origin = ("rebuilt; corrupt file quarantined"
                  if rebuilt else f"loaded from {cfg.forest_path}")
        print(f"graph: {g}")
        print(f"forest: {forest.num_leaves:,} leaves ({origin})")
        print(f"{args.k}-cliques: {forest.count(args.k):,}")
        if args.per_vertex:
            _print_top_per_vertex(forest.per_vertex(args.k))
        return 0

    r = count_cliques(g, args.k, cfg)
    print(f"graph: {g}")
    print(f"ordering: {r.ordering.name} (max out-degree {r.max_out_degree})")
    if r.decision is not None:
        print(f"heuristic: {r.decision.reason}")
    if r.approximate:
        print(f"{args.k}-cliques: ~{r.count:,.0f} "
              f"(approximate; degraded from {r.degraded_from})")
    else:
        print(f"{args.k}-cliques: {r.count:,}")
    _print_budget(r.budget_spent)
    print(f"modeled {args.threads}-thread time: "
          f"{r.total_model_seconds:.6g} s "
          f"(wall: {r.wall_seconds:.3f} s single-core)")

    # "build" always materializes the forest; "auto" does so only when
    # a second query (per-vertex) makes the build pay for itself.
    forest = None
    if cfg.forest == "build" or (cfg.forest == "auto" and args.per_vertex):
        from repro.counting.forest import get_forest

        forest = get_forest(g, r.ordering, cfg.structure, cfg.kernel)
        print(f"forest: {forest.num_leaves:,} leaves "
              f"({forest.nbytes:,} bytes materialized)")
        if cfg.forest == "build" and cfg.forest_path is not None:
            forest.save(cfg.forest_path)
            print(f"forest saved to {cfg.forest_path}")
    if args.per_vertex:
        from repro.counting import per_vertex_counts

        per = per_vertex_counts(g, args.k, r.ordering, forest=forest)
        _print_top_per_vertex(per)
    return 0


def _print_top_per_vertex(per: list) -> None:
    top = sorted(range(len(per)), key=per.__getitem__, reverse=True)[:10]
    print("top per-vertex counts:")
    for v in top:
        if per[v]:
            print(f"  vertex {v}: {per[v]:,}")


def _cmd_dist(args) -> int:
    from repro.core import PivotScaleConfig
    from repro.counting.sct import SCTEngine
    from repro.ordering import core_ordering

    g, _ = _load_graph(args)
    cfg = PivotScaleConfig(kernel=args.kernel, forest=args.forest,
                           forest_path=args.forest_path,
                           processes=args.processes,
                           par_chunks=args.par_chunks,
                           **_resilience_kwargs(args))
    ctl = cfg.make_controller()

    if cfg.forest in ("build", "use"):
        # The whole distribution is one Pascal-row fold over the
        # materialized leaves.
        if cfg.forest == "use":
            from repro.counting.forest import load_or_rebuild_forest

            forest, rebuilt = load_or_rebuild_forest(
                cfg.forest_path, g, kernel=args.kernel, controller=ctl
            )
            origin = ("rebuilt; corrupt file quarantined"
                      if rebuilt else f"loaded from {cfg.forest_path}")
        else:
            from repro.counting.forest import get_forest

            forest = get_forest(g, core_ordering(g), kernel=args.kernel,
                                controller=ctl)
            origin = "built"
            if cfg.forest_path is not None:
                forest.save(cfg.forest_path)
                origin = f"built, saved to {cfg.forest_path}"
        print(f"graph: {g}")
        print(f"forest: {forest.num_leaves:,} leaves ({origin})")
        for k, c in enumerate(forest.count_all(args.max_k)):
            if k >= 1 and c:
                print(f"  k={k:3d}: {c:,}")
        if ctl is not None:
            _print_budget(ctl.spent_snapshot())
        return 0

    procs = cfg.processes or 1
    engine = SCTEngine(g, core_ordering(g), kernel=args.kernel)
    try:
        if cfg.shard_mb is not None:
            from repro.shard import count_sharded

            r = count_sharded(
                g, engine.dag, max_k=args.max_k, kernel=args.kernel,
                shard_mb=cfg.shard_mb, spill_dir=cfg.spill_dir,
                resume=cfg.resume, controller=ctl, degrade=cfg.degrade,
                processes=procs, chunks_per_process=cfg.par_chunks,
                max_retries=cfg.shard_retries,
            )
        elif procs > 1:
            from repro.parallel.pool import count_all_sizes_processes

            r = count_all_sizes_processes(
                g, engine.dag, max_k=args.max_k, processes=procs,
                chunks_per_process=cfg.par_chunks, kernel=args.kernel,
                controller=ctl, degrade=cfg.degrade,
            )
        else:
            r = engine.count_all(max_k=args.max_k, controller=ctl)
    except BudgetExceededError as e:
        if ctl is None or not ctl.degrade:
            raise
        from repro.runtime.degrade import degrade_to_sampling

        r = degrade_to_sampling(
            engine, k=None, max_k=args.max_k,
            state=ctl.state() if procs == 1 else None, cause=e,
        )
    print(f"graph: {g}")
    if r.approximate:
        print(f"(approximate; degraded from {r.degraded_from})")
    for k, c in enumerate(r.all_counts):
        if k >= 1 and c:
            print(f"  k={k:3d}: ~{c:,.0f}" if r.approximate
                  else f"  k={k:3d}: {c:,}")
    if ctl is not None:
        _print_budget(ctl.spent_snapshot())
    return 0


def _cmd_datasets(_args) -> int:
    from repro.datasets import REGISTRY

    print(f"{'name':12s} {'paper graph':12s} {'|V|(paper)':>11s} "
          f"{'k_max':>6s} {'best ordering':>14s}")
    for name, spec in REGISTRY.items():
        kmax = spec.paper_kmax if spec.paper_kmax is not None else "-"
        print(f"{name:12s} {spec.title:12s} {spec.paper_vertices_m:>10.1f}M "
              f"{kmax!s:>6s} {spec.best_ordering:>14s}")
    return 0


def _cmd_orderings(args) -> int:
    from repro.bench.harness import Table, fmt_seconds
    from repro.counting import count_kcliques
    from repro.ordering import (
        approx_core_ordering,
        centrality_ordering,
        core_ordering,
        degree_ordering,
        kcore_ordering,
        max_out_degree,
    )
    from repro.ordering.arborder import (
        barenboim_elkin_ordering,
        goodrich_pszona_ordering,
    )
    from repro.parallel import simulate_counting, simulate_ordering

    g, eff = _load_graph(args)
    scale = (eff / g.num_vertices) if eff else 1.0
    orderings = {
        "core": core_ordering(g),
        "approx_core(-0.5)": approx_core_ordering(g, -0.5),
        "kcore": kcore_ordering(g),
        "barenboim-elkin": barenboim_elkin_ordering(g),
        "goodrich-pszona": goodrich_pszona_ordering(g),
        "centrality": centrality_ordering(g),
        "degree": degree_ordering(g),
    }
    t = Table(
        f"orderings on {g!r} (k={args.k})",
        ["ordering", "max out-deg", "rounds", "order(s)", "count(s)"],
    )
    for label, o in orderings.items():
        maxout = max_out_degree(g, o)
        threads = 1 if label == "core" else 64
        o_s = simulate_ordering(o.cost, threads=threads,
                                work_scale=scale).seconds
        r = count_kcliques(g, args.k, o)
        c_s = simulate_counting(
            r, threads=64,
            effective_num_vertices=eff or g.num_vertices,
            max_out_degree=maxout, work_scale=scale,
        ).seconds
        t.add(label, maxout, o.cost.num_rounds or "-", fmt_seconds(o_s),
              fmt_seconds(c_s))
    t.show()
    return 0


def _cmd_report(args) -> int:
    from repro.bench.report import main as report_main

    return report_main([args.output])


def _cmd_figures(args) -> int:
    from repro.bench.figures import main as figures_main

    return figures_main([args.output_dir])


def _cmd_validate(args) -> int:
    from repro.graph.validate import validate_graph

    g, _ = _load_graph(args)
    print(validate_graph(g).summary())
    return 0


def _cmd_stream(args) -> int:
    from repro.core import PivotScaleConfig
    from repro.counting.dynamic import iter_batches, read_edit_file
    from repro.counting.forest import get_forest
    from repro.ordering import core_ordering

    g, _ = _load_graph(args)
    # Budgets/checkpointing apply per batch: each batch gets a fresh
    # controller on the same checkpoint path, so a killed batch resumes
    # its dirty-root recomputation and later batches start clean.
    cfg = PivotScaleConfig(
        structure=args.structure,
        kernel=args.kernel,
        dynamic=args.policy,
        reorder_ratio=args.reorder_ratio,
        deadline_seconds=args.deadline,
        max_nodes=args.max_nodes,
        max_memory_bytes=args.max_memory,
        checkpoint_path=args.checkpoint,
        resume=args.resume,
        degrade=args.degrade,
    )
    edits = read_edit_file(args.edits)
    forest = get_forest(g, core_ordering(g), cfg.structure, cfg.kernel)
    print(f"graph: {g}")
    print(f"forest: {forest.num_leaves:,} leaves")
    _stream_counts(forest, args)
    for i, batch in enumerate(iter_batches(edits, args.batch_size), 1):
        ctl = cfg.make_controller()
        rep = forest.apply_edits(
            batch, policy=cfg.dynamic, reorder_ratio=cfg.reorder_ratio,
            controller=ctl,
        )
        how = "reordered" if rep.reordered else "patched"
        print(f"batch {i}: +{len(rep.added)} -{len(rep.removed)} edges "
              f"(skipped {rep.skipped}) | {rep.dirty_roots.size} dirty, "
              f"{rep.roots_recomputed} recomputed ({how}) | "
              f"{forest.num_leaves:,} leaves")
        _stream_counts(forest, args)
        if ctl is not None:
            _print_budget(ctl.spent_snapshot())
    return 0


def _stream_counts(forest, args) -> None:
    if args.k is not None:
        print(f"  {args.k}-cliques: {forest.count(args.k):,}")
        return
    for k, c in enumerate(forest.count_all(args.max_k)):
        if k >= 1 and c:
            print(f"  k={k:3d}: {c:,}")


def _cmd_bench(args) -> int:
    from repro.bench.platform.cli import cmd_bench

    return cmd_bench(args)


def _setup_observability(args):
    """Enable the obs layer per the global flags; returns a finisher
    callable that flushes outputs (runs even when the command fails, so
    a budget-aborted run still leaves its metrics/trace behind)."""
    from repro import obs

    wants = args.metrics_out or args.trace_out or args.profile
    if not wants:
        return lambda: None
    sink = open(args.trace_out, "w", encoding="utf-8") \
        if args.trace_out else None
    obs.enable(trace_sink=sink, profile=args.profile)

    def finish() -> None:
        if args.metrics_out:
            obs.get_registry().write_json(args.metrics_out)
            print(f"metrics written to {args.metrics_out}", file=sys.stderr)
        if sink is not None:
            sink.close()
            print(f"trace written to {args.trace_out}", file=sys.stderr)
        if args.profile:
            for line in obs.get_profiler().summary_lines():
                print(line, file=sys.stderr)
        obs.disable()

    return finish


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "count": _cmd_count,
        "dist": _cmd_dist,
        "datasets": _cmd_datasets,
        "orderings": _cmd_orderings,
        "report": _cmd_report,
        "figures": _cmd_figures,
        "validate": _cmd_validate,
        "stream": _cmd_stream,
        "bench": _cmd_bench,
    }
    finish = _setup_observability(args)
    try:
        return handlers[args.command](args)
    except BudgetExceededError as exc:
        print(f"budget exhausted: {exc}", file=sys.stderr)
        if exc.spent is not None:
            print(f"  spent: {exc.spent.as_dict()}", file=sys.stderr)
        print("  (re-run with --degrade for a flagged approximation, or "
              "--checkpoint/--resume to continue later)", file=sys.stderr)
        return 3
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        finish()


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
