"""Simulated execution timelines (per-thread Gantt traces).

The paper's load-balance analysis "measure[s] the time required for
each thread during the entire counting phase" (Sec. IV) and reports a
coefficient of variation of 0.03 at 64 threads.  This module produces
the same artifact from the simulated executor: a deterministic
per-thread timeline of task executions under a given scheduler, from
which per-thread busy times, utilization, and the CV are derived — plus
an SVG Gantt renderer for inspection.

The dynamic scheduler's timeline is the exact greedy list schedule
(tasks start on the earliest-available thread in submission order);
static/cyclic timelines execute each thread's fixed assignment
back-to-back.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.errors import ParallelModelError
from repro.parallel.sched import CyclicScheduler, Scheduler, StaticScheduler

__all__ = ["TaskSpan", "Timeline", "simulate_timeline"]


@dataclass(frozen=True)
class TaskSpan:
    """One chunk execution on one thread (work units as time)."""

    thread: int
    start: float
    end: float
    first_task: int
    last_task: int

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class Timeline:
    """A complete simulated counting-phase execution."""

    spans: tuple[TaskSpan, ...]
    threads: int

    @property
    def makespan(self) -> float:
        return max((s.end for s in self.spans), default=0.0)

    def busy_times(self) -> np.ndarray:
        """Total busy work units per thread (the paper's per-thread
        counting time)."""
        busy = np.zeros(self.threads, dtype=np.float64)
        for s in self.spans:
            busy[s.thread] += s.duration
        return busy

    @property
    def cv(self) -> float:
        busy = self.busy_times()
        mean = busy.mean() if busy.size else 0.0
        return float(busy.std() / mean) if mean else 0.0

    @property
    def utilization(self) -> float:
        """Busy fraction of ``threads x makespan``."""
        total = self.makespan * self.threads
        return float(self.busy_times().sum() / total) if total else 1.0

    # ------------------------------------------------------------------
    def to_spans(self):
        """This timeline as :class:`~repro.obs.SpanNode` trees (one
        root per thread, chunk children) — the adapter that lets the
        simulated machine's Gantt trace render through the same
        :func:`repro.obs.render_spans` report path as a run trace."""
        from repro.obs.adapter import timeline_to_spans

        return timeline_to_spans(self)

    def to_span_records(self) -> list[dict]:
        """JSON-lines-ready span records for this timeline; round-trips
        through :func:`repro.obs.parse_trace_lines`."""
        from repro.obs.adapter import timeline_to_records

        return timeline_to_records(self)

    # ------------------------------------------------------------------
    def to_svg(self, *, width: int = 760, row_height: int = 12) -> str:
        """Render the timeline as a Gantt chart (one row per thread)."""
        from xml.sax.saxutils import escape

        height = 40 + self.threads * row_height
        span = self.makespan or 1.0
        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
            f'height="{height}" viewBox="0 0 {width} {height}">',
            f'<rect width="{width}" height="{height}" fill="white"/>',
            f'<text x="{width / 2}" y="16" text-anchor="middle" '
            'font-family="Helvetica,Arial,sans-serif" font-size="13">'
            f"{escape(f'timeline: {self.threads} threads, CV {self.cv:.3f}')}"
            "</text>",
        ]
        x0, x1 = 40.0, width - 10.0
        for s in self.spans:
            bx = x0 + s.start / span * (x1 - x0)
            bw = max(0.5, s.duration / span * (x1 - x0))
            y = 28 + s.thread * row_height
            shade = 210 - 60 * (s.first_task % 2)
            parts.append(
                f'<rect x="{bx:.1f}" y="{y}" width="{bw:.1f}" '
                f'height="{row_height - 2}" '
                f'fill="rgb({shade - 80},{shade - 40},{shade})"/>'
            )
        for t in range(self.threads):
            parts.append(
                f'<text x="4" y="{28 + t * row_height + row_height - 3}" '
                'font-family="Helvetica,Arial,sans-serif" font-size="8" '
                f'fill="#555">T{t}</text>'
            )
        parts.append("</svg>")
        return "\n".join(parts)


def simulate_timeline(
    work: np.ndarray,
    threads: int,
    scheduler: Scheduler,
) -> Timeline:
    """Execute the task list under ``scheduler`` and return the trace.

    Dynamic scheduling replays the greedy earliest-available-thread
    policy; static/cyclic execute their fixed per-thread chunk lists
    back-to-back.  Conservation: total busy time equals total work.
    """
    work = np.asarray(work, dtype=np.float64)
    if threads < 1:
        raise ParallelModelError("threads must be >= 1")
    if work.ndim != 1:
        raise ParallelModelError("work must be a 1-D array")
    spans: list[TaskSpan] = []
    chunks = scheduler._chunks(work.size)
    if isinstance(scheduler, StaticScheduler):
        bounds = np.linspace(0, work.size, threads + 1).astype(np.int64)
        for t in range(threads):
            clock = 0.0
            lo, hi = int(bounds[t]), int(bounds[t + 1])
            if hi > lo:
                w = float(work[lo:hi].sum())
                spans.append(TaskSpan(t, clock, clock + w, lo, hi - 1))
        return Timeline(spans=tuple(spans), threads=threads)
    if isinstance(scheduler, CyclicScheduler):
        clocks = np.zeros(threads, dtype=np.float64)
        for i, sl in enumerate(chunks):
            t = i % threads
            w = float(work[sl].sum())
            spans.append(
                TaskSpan(t, float(clocks[t]), float(clocks[t]) + w,
                         sl.start, sl.stop - 1)
            )
            clocks[t] += w
        return Timeline(spans=tuple(spans), threads=threads)
    # Dynamic (default): earliest-available thread takes the next chunk.
    heap = [(0.0, t) for t in range(threads)]
    heapq.heapify(heap)
    for sl in chunks:
        w = float(work[sl].sum())
        clock, t = heapq.heappop(heap)
        spans.append(TaskSpan(t, clock, clock + w, sl.start, sl.stop - 1))
        heapq.heappush(heap, (clock + w, t))
    return Timeline(spans=tuple(spans), threads=threads)
