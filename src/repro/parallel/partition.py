"""Task decomposition: vertex-parallel vs edge-parallel splitting.

PivotScale is vertex-parallel (one task per root), which is near-ideal
when work spreads across many roots — but a single pathological root
(e.g. the community-collision pocket of the LiveJournal analog) can
hold a large fraction of the total work and bound the makespan.
GPU-Pivot's answer is to assign "a vertex or an edge" to a warp
(Sec. II-C): a heavy root splits into one task per out-edge, each
covering one first-level branch of its SCT tree.

This module implements that split for the simulated executor: tasks
whose work exceeds a threshold are divided into ``out-degree`` equal
shares (the per-branch costs are not measured individually, so equal
shares are the neutral model).  The result plugs into any scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ParallelModelError

__all__ = ["PartitionedTasks", "vertex_tasks", "edge_split_tasks"]


@dataclass(frozen=True)
class PartitionedTasks:
    """A task list plus provenance (which root each task came from)."""

    work: np.ndarray
    root_of: np.ndarray

    @property
    def num_tasks(self) -> int:
        return int(self.work.size)

    @property
    def max_task_fraction(self) -> float:
        total = float(self.work.sum())
        return float(self.work.max()) / total if total else 0.0


def vertex_tasks(per_root_work: np.ndarray) -> PartitionedTasks:
    """The identity decomposition: one task per root vertex."""
    work = np.asarray(per_root_work, dtype=np.float64)
    return PartitionedTasks(
        work=work, root_of=np.arange(work.size, dtype=np.int64)
    )


def edge_split_tasks(
    per_root_work: np.ndarray,
    out_degrees: np.ndarray,
    *,
    threshold_fraction: float = 0.01,
) -> PartitionedTasks:
    """Split heavy roots into per-edge tasks.

    Parameters
    ----------
    per_root_work:
        Measured work per root (from a counting run).
    out_degrees:
        DAG out-degree per root — the number of first-level branches a
        root can split into.
    threshold_fraction:
        Roots holding more than this fraction of total work are split.
    """
    work = np.asarray(per_root_work, dtype=np.float64)
    degs = np.asarray(out_degrees, dtype=np.int64)
    if work.shape != degs.shape:
        raise ParallelModelError("work and out_degrees must align")
    if not 0.0 < threshold_fraction <= 1.0:
        raise ParallelModelError("threshold_fraction must lie in (0, 1]")
    total = float(work.sum())
    if total == 0.0:
        return vertex_tasks(work)
    limit = threshold_fraction * total
    out_work: list[float] = []
    out_root: list[int] = []
    for v in range(work.size):
        w = float(work[v])
        pieces = int(degs[v]) if (w > limit and degs[v] > 1) else 1
        share = w / pieces
        out_work.extend([share] * pieces)
        out_root.extend([v] * pieces)
    return PartitionedTasks(
        work=np.array(out_work, dtype=np.float64),
        root_of=np.array(out_root, dtype=np.int64),
    )
