"""Simulated parallel execution of the counting and ordering phases.

Ties together the real measurements (per-root work from
:class:`~repro.counting.sct.CountResult`, per-round work from
:class:`~repro.ordering.base.ParallelCost`), a scheduler
(:mod:`repro.parallel.sched`), and the cost model
(:mod:`repro.perfmodel.cost`) into modeled phase times and scaling
curves — the machinery behind Figs. 6-8, 10-13 and Tables III/V/VI.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.counting.sct import CountResult
from repro.ordering.base import ParallelCost
from repro.parallel.machine import EPYC_9554, MachineSpec
from repro.parallel.sched import Assignment, DynamicScheduler, Scheduler
from repro.perfmodel.cost import CostModel, PerfEstimate

__all__ = ["PhaseTime", "simulate_counting", "simulate_ordering", "scaling_curve"]


@dataclass(frozen=True)
class PhaseTime:
    """Modeled execution of one phase.

    ``seconds`` is the headline number; the perf estimate and scheduler
    assignment expose the why (roofline term, MPKI, load balance CV).
    """

    seconds: float
    estimate: PerfEstimate
    assignment: Assignment | None = None

    @property
    def cv(self) -> float:
        """Thread-load coefficient of variation (0 when irrelevant)."""
        return self.assignment.cv if self.assignment is not None else 0.0


def simulate_counting(
    result: CountResult,
    *,
    threads: int,
    machine: MachineSpec = EPYC_9554,
    scheduler: Scheduler | None = None,
    effective_num_vertices: float | None = None,
    max_out_degree: float | None = None,
    serial_fraction: float = 0.0,
    work_scale: float = 1.0,
) -> PhaseTime:
    """Model the counting phase of a completed (real) counting run.

    Parameters
    ----------
    result:
        Exact run with per-root work measurements.
    effective_num_vertices:
        Paper-scale ``|V|`` for the dense-index footprint; defaults to
        the run's own vertex count.
    max_out_degree:
        DAG max out-degree; defaults to the largest per-root subgraph
        inferred from the run.
    serial_fraction:
        Amdahl fraction for naive-parallel baselines (Pivoter).
    work_scale:
        Linear extrapolation factor for scaled-down dataset analogs
        (see :meth:`repro.perfmodel.cost.CostModel.estimate_counting`).
    """
    sched = scheduler or DynamicScheduler()
    assignment = sched.assign(result.per_root_work, threads)
    n = result.per_root_work.size
    eff_nv = float(n if effective_num_vertices is None else effective_num_vertices)
    if max_out_degree is None:
        # Infer d_max from the largest bitset footprint if available.
        max_out_degree = _infer_max_degree(result)
    est = CostModel(machine).estimate_counting(
        result.counters,
        threads=threads,
        structure=result.structure,
        max_out_degree=float(max_out_degree),
        effective_num_vertices=eff_nv,
        makespan_work=assignment.makespan,
        serial_fraction=serial_fraction,
        work_scale=work_scale,
    )
    return PhaseTime(seconds=est.seconds, estimate=est, assignment=assignment)


def _infer_max_degree(result: CountResult) -> float:
    mem = result.per_root_memory
    if mem.size == 0 or mem.max() == 0:
        return 1.0
    # Invert bytes = d * words(d) * 8 (+ index) approximately via sqrt.
    peak = float(mem.max())
    return max(1.0, (peak / 8.0) ** 0.5 * 8.0**0.5)


def simulate_ordering(
    cost: ParallelCost,
    *,
    threads: int,
    machine: MachineSpec = EPYC_9554,
    work_scale: float = 1.0,
) -> PhaseTime:
    """Model an ordering phase from its round/sequential work profile."""
    est = CostModel(machine).estimate_rounds(
        cost.rounds, cost.sequential, threads=threads, work_scale=work_scale
    )
    return PhaseTime(seconds=est.seconds, estimate=est, assignment=None)


def scaling_curve(
    result: CountResult,
    thread_counts: list[int],
    **kwargs,
) -> dict[int, PhaseTime]:
    """Counting-phase model across thread counts (Fig. 11 series)."""
    return {
        t: simulate_counting(result, threads=t, **kwargs) for t in thread_counts
    }
