"""Machine specifications for the performance model.

:data:`EPYC_9554` mirrors the paper's evaluation platform (Sec. VI-A):
a single-socket 64 x 3.1 GHz part with 256 MB of shared L3.  The GPU
specs carry the throughput knobs of the GPU-Pivot model
(:mod:`repro.perfmodel.gpu`); absolute rates are calibration constants,
the *ratios* (A100 vs V100, GPU vs CPU) are what the Fig. 12/13
comparisons exercise.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParallelModelError

__all__ = ["MachineSpec", "GPUSpec", "EPYC_9554", "GPU_V100", "GPU_A100"]


@dataclass(frozen=True)
class MachineSpec:
    """A multicore CPU for the simulated executor.

    Attributes
    ----------
    name:
        Display name.
    cores:
        Physical cores (the paper uses threads == cores).
    freq_ghz:
        Core clock.
    llc_bytes:
        Shared last-level-cache capacity.
    base_cpi:
        Cycles per (modeled) instruction when the working set is
        cache-resident.
    miss_penalty_cycles:
        Extra cycles charged per LLC miss, *after* memory-level
        parallelism: out-of-order cores overlap ~8 outstanding misses,
        so the effective per-miss stall is DRAM latency / MLP.
    dram_bw_bytes:
        Sustained DRAM bandwidth; the roofline ceiling that causes the
        dense structure's scaling plateau once per-thread indexes spill
        out of the LLC.
    instructions_per_work:
        Modeled instructions per abstract work unit (bitset word /
        weighted lookup) of :class:`repro.counting.counters.Counters`.
    barrier_seconds:
        Cost of one parallel-round barrier (synchronization between
        the approx-core ordering's rounds).
    """

    name: str
    cores: int = 64
    freq_ghz: float = 3.1
    llc_bytes: int = 256 * 1024 * 1024
    base_cpi: float = 0.5
    miss_penalty_cycles: float = 20.0
    dram_bw_bytes: float = 400e9
    instructions_per_work: float = 10.0
    barrier_seconds: float = 4.0e-6

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ParallelModelError("cores must be >= 1")
        if self.freq_ghz <= 0 or self.llc_bytes <= 0:
            raise ParallelModelError("freq and LLC must be positive")

    @property
    def cycles_per_second(self) -> float:
        return self.freq_ghz * 1e9

    def seconds_for(self, instructions: float, cpi: float) -> float:
        """Wall seconds for an instruction stream at a given CPI."""
        return instructions * cpi / self.cycles_per_second


@dataclass(frozen=True)
class GPUSpec:
    """A GPU for the GPU-Pivot model (paper reference [20]).

    ``warps`` is the number of concurrently resident warps doing useful
    work; GPU-Pivot builds one subgraph per warp, so warps — not CUDA
    cores — set its effective parallelism.  ``warp_rate_gops`` is one
    warp's set-operation throughput in modeled work units per second.
    """

    name: str
    warps: int
    warp_rate_gops: float
    rebuild_factor: float = 2.4
    launch_overhead_s: float = 0.05

    def __post_init__(self) -> None:
        if self.warps < 1 or self.warp_rate_gops <= 0:
            raise ParallelModelError("invalid GPU spec")


#: The paper's CPU platform (Sec. VI-A).
EPYC_9554 = MachineSpec(name="AMD EPYC 9554 (Genoa)")

#: NVIDIA Volta V100 as used by GPU-Pivot's reported numbers.  ``warps``
#: is the *effectively active* warp count — GPU-Pivot's one-subgraph-
#: per-warp design keeps utilization far below residency (Sec. II-C).
GPU_V100 = GPUSpec(name="NVIDIA V100", warps=40, warp_rate_gops=0.1)

#: NVIDIA Ampere A100: ~1.3x the V100's effective throughput.
GPU_A100 = GPUSpec(name="NVIDIA A100", warps=48, warp_rate_gops=0.115)
