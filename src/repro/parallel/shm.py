"""Shared-memory publication of CSR graph pairs.

The old process pool shipped the whole graph to every worker through
the pickle channel — O(|V| + |E|) bytes *per worker*, twice (graph and
DAG).  Real parallel clique counters share one read-only copy of the
adjacency; this module reproduces that with
:mod:`multiprocessing.shared_memory`:

* :func:`publish_graph_pair` packs the four CSR arrays (graph indptr /
  indices, DAG indptr / indices, all ``int64``) into **one** shared
  segment and returns a handle whose :attr:`~SharedGraphPair.spec` is a
  tiny picklable descriptor (segment name + offsets);
* :func:`attach_graph_pair` rebuilds both :class:`~repro.graph.csr.CSRGraph`
  objects in a worker as zero-copy views over the mapped segment —
  identical under ``fork`` and ``spawn`` start methods, since
  attachment goes by name, not by inheritance.

The parent owns the segment lifetime (:meth:`SharedGraphPair.unlink`
when the run ends); workers only map it.  Python 3.11's resource
tracker registers a segment on *attach* as well as on create, which
would make every worker exit try to unlink the parent's segment — the
attach path therefore unregisters itself, the standard workaround
until the ``track=False`` parameter (3.13) is available.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["SharedGraphSpec", "SharedGraphPair", "publish_graph_pair",
           "attach_graph_pair"]

#: (field, is_directed) layout of the four packed arrays, in order.
_ARRAYS = ("g_indptr", "g_indices", "d_indptr", "d_indices")


@dataclass(frozen=True)
class SharedGraphSpec:
    """Picklable descriptor of one published graph pair.

    ``offsets[i]`` / ``lengths[i]`` locate array ``i`` (order:
    graph indptr, graph indices, DAG indptr, DAG indices) inside the
    segment, in ``int64`` words.  A few dozen bytes on the task wire
    regardless of graph size.
    """

    name: str
    offsets: tuple[int, int, int, int]
    lengths: tuple[int, int, int, int]


class SharedGraphPair:
    """Parent-side handle: the mapped segment plus its spec.

    Context-manager use unlinks on exit::

        with publish_graph_pair(graph, dag) as shared:
            ... dispatch tasks carrying shared.spec ...
    """

    def __init__(self, shm: shared_memory.SharedMemory,
                 spec: SharedGraphSpec) -> None:
        self._shm = shm
        self.spec = spec
        self._closed = False

    def close(self) -> None:
        """Unmap the parent's view (workers' mappings are unaffected)."""
        if not self._closed:
            self._closed = True
            self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment name; existing mappings stay valid until
        their owners unmap, so calling this while stragglers finish is
        safe on POSIX."""
        self.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass

    def __enter__(self) -> "SharedGraphPair":
        return self

    def __exit__(self, *exc) -> None:
        self.unlink()


def publish_graph_pair(graph: CSRGraph, dag: CSRGraph) -> SharedGraphPair:
    """Copy ``(graph, dag)`` into one shared segment, once.

    The single O(|V| + |E|) copy here replaces the per-worker pickle of
    the old pool; every worker after this is zero-copy.
    """
    arrays = [
        np.ascontiguousarray(graph.indptr, dtype=np.int64),
        np.ascontiguousarray(graph.indices, dtype=np.int64),
        np.ascontiguousarray(dag.indptr, dtype=np.int64),
        np.ascontiguousarray(dag.indices, dtype=np.int64),
    ]
    offsets = []
    pos = 0
    for a in arrays:
        offsets.append(pos)
        pos += int(a.size)
    nbytes = max(pos * 8, 1)  # zero-byte segments are rejected
    shm = shared_memory.SharedMemory(create=True, size=nbytes)
    for a, off in zip(arrays, offsets):
        if a.size:
            dst = np.frombuffer(shm.buf, dtype=np.int64, count=a.size,
                                offset=off * 8)
            dst[:] = a
    spec = SharedGraphSpec(
        name=shm.name,
        offsets=tuple(offsets),
        lengths=tuple(int(a.size) for a in arrays),
    )
    return SharedGraphPair(shm, spec)


def attach_graph_pair(
    spec: SharedGraphSpec,
) -> tuple[CSRGraph, CSRGraph, shared_memory.SharedMemory]:
    """Map a published pair in a worker — zero-copy, read-only.

    Returns ``(graph, dag, shm)``; the caller must keep ``shm``
    referenced as long as the graphs are in use (the arrays are views
    over its buffer).  Validation is skipped: the arrays were valid
    CSR when published and the mapping is byte-identical.
    """
    # Python 3.11 registers attached segments with the (shared)
    # resource tracker, which would have any worker's exit unlink the
    # parent's live data and double-unregister at parent unlink time.
    # Suppress registration for the duration of the attach — the
    # parent's own create-time registration stays the single owner.
    # (3.13's ``track=False`` parameter makes this explicit.)
    from multiprocessing import resource_tracker

    orig_register = resource_tracker.register

    def _skip_shm(name, rtype, _orig=orig_register):
        if rtype != "shared_memory":  # pragma: no cover - not hit here
            _orig(name, rtype)

    resource_tracker.register = _skip_shm
    try:
        shm = shared_memory.SharedMemory(name=spec.name)
    finally:
        resource_tracker.register = orig_register
    views = [
        np.frombuffer(shm.buf, dtype=np.int64, count=length, offset=off * 8)
        if length else np.zeros(0, dtype=np.int64)
        for off, length in zip(spec.offsets, spec.lengths)
    ]
    graph = CSRGraph(views[0], views[1], directed=False, validate=False)
    dag = CSRGraph(views[2], views[3], directed=True, validate=False)
    return graph, dag, shm
