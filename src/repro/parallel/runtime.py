"""The process-parallel runtime: shared graphs, dynamic scheduling,
budget/checkpoint/metrics integration.

This is the real (non-simulated) execution backend behind
:func:`repro.parallel.pool.count_kcliques_processes` and friends.  It
reproduces, in ``multiprocessing`` terms, what the paper's OpenMP
``schedule(dynamic)`` loop over Algorithm 1 line 4 does on the 64-core
EPYC:

* **Shared graphs.**  The CSR graph and DAG arrays are published once
  via :mod:`repro.parallel.shm` and attached zero-copy by every worker
  — under both ``fork`` and ``spawn`` — instead of being pickled per
  worker as the old pool did.
* **Size-aware dynamic scheduling.**  :func:`plan_chunks` orders roots
  by descending out-degree and packs them into
  ``processes x chunks_per_process`` chunks by a guided
  self-scheduling rule over the ``d² + d + 1`` per-root cost proxy:
  heavy roots land in small early chunks, the light tail in large late
  ones.  Chunks stream through ``imap_unordered(..., chunksize=1)`` so
  whichever worker frees up first takes the next chunk and stragglers
  never serialize the tail.
* **Subsystem integration.**  A :class:`~repro.runtime.RunController`
  is honored at *chunk* granularity: deadline/node/memory budgets are
  metered as each chunk's result folds in (a chunk is all-in or
  not-at-all, exactly like the serial engines' roots), checkpoints
  record completed-chunk partial sums and resume bit-identically, and
  worker metrics registries are snapshotted per task and merged into
  the parent (:meth:`~repro.obs.registry.MetricsRegistry.merge_snapshot`)
  so ``engine_*``/``kernel_*`` counter totals stay exact.
* **Worker-crash resilience.**  Workers report failures as data
  (never as a raised exception through the pool), so the parent knows
  which chunk died.  A failed chunk is first *resubmitted to the pool*
  up to ``worker_retries`` times with seeded exponential backoff
  (deterministic jitter, so CI runs are reproducible) — a transient
  crash recovers with no loss of exactness and no degradation flag,
  metered by the ``runtime_worker_retries`` registry counter.  Only
  when retries are exhausted does the degradation rung engage: with
  degradation enabled the chunk re-runs in-process on the ``bigint``
  reference backend — the result stays exact, flagged
  ``degraded_from="worker"``; without it a
  :class:`~repro.errors.WorkerCrashError` propagates.  Fault injection
  mirrors both shapes: ``fault_chunks`` accepts a set of chunk ids
  (persistent crashes) or a ``{chunk_id: fail_count}`` mapping
  (transient — the chunk crashes on its first ``fail_count`` attempts
  and then succeeds).

Counts are bit-identical to the serial engines by construction: the
SCT total is a sum over roots, chunk results are exact partial sums
over disjoint root sets, and integer folds are order-independent.
"""

from __future__ import annotations

import math
import os
import random
import time
from collections import OrderedDict
from contextlib import contextmanager, nullcontext
from multiprocessing import get_all_start_methods, get_context

import numpy as np

from repro import obs
from repro.counting.counters import Counters
from repro.errors import (
    CheckpointError,
    CountingError,
    ParallelModelError,
    WorkerCrashError,
)
from repro.graph.csr import CSRGraph
from repro.kernels import KERNELS
from repro.obs.registry import MetricsRegistry
from repro.parallel.shm import attach_graph_pair, publish_graph_pair
from repro.runtime.checkpoint import array_fingerprint, graph_fingerprint
from repro.runtime.controller import RunController

__all__ = [
    "ParallelRuntime",
    "plan_chunks",
    "parallel_count",
    "parallel_per_vertex",
    "parallel_build_forest",
]


# ----------------------------------------------------------------------
# chunk planning (degree-descending guided self-scheduling)
# ----------------------------------------------------------------------
def plan_chunks(
    degrees: np.ndarray,
    processes: int,
    chunks_per_process: int = 4,
    roots: np.ndarray | None = None,
) -> list[np.ndarray]:
    """Partition root vertices into size-aware chunks.

    Roots are sorted by descending DAG out-degree (stable, so ties keep
    vertex order) and packed greedily against the ``d² + d + 1`` cost
    proxy — an upper-bound shape for per-root pivot work (subgraph
    build is O(d²) words, the recursion grows with d).  Each chunk
    takes roots until it reaches its share of the *remaining* weight
    (guided self-scheduling), so the heavy head of the degree
    distribution is spread thinly across early chunks while the light
    tail batches up.  Every chunk is non-empty and every root appears
    exactly once.

    ``roots`` restricts planning to a subset of vertex ids (the shard
    executor schedules one shard's root range at a time); ``degrees``
    stays indexed by vertex id.
    """
    if roots is not None:
        roots = np.asarray(roots, dtype=np.int64)
        sub = plan_chunks(
            np.asarray(degrees, dtype=np.int64)[roots],
            processes,
            chunks_per_process,
        )
        return [roots[c] for c in sub]
    if processes < 1:
        raise ParallelModelError("processes must be >= 1")
    if chunks_per_process < 1:
        raise ParallelModelError("chunks_per_process must be >= 1")
    degrees = np.asarray(degrees, dtype=np.int64)
    n = int(degrees.size)
    if n == 0:
        return []
    order = np.argsort(-degrees, kind="stable").astype(np.int64)
    w = degrees[order].astype(np.float64)
    w = w * w + w + 1.0
    num_chunks = min(n, processes * chunks_per_process)
    remaining = float(w.sum())
    chunks: list[np.ndarray] = []
    pos = 0
    for i in range(num_chunks):
        rc = num_chunks - i
        rem = n - pos
        max_take = rem - (rc - 1)  # leave >= 1 root per later chunk
        target = remaining / rc
        acc = 0.0
        take = 0
        while take < max_take and (take == 0 or acc < target):
            acc += w[pos + take]
            take += 1
        chunks.append(order[pos:pos + take])
        pos += take
        remaining -= acc
    if pos < n:  # float-sum guard: sweep any leftover into the last chunk
        chunks[-1] = np.concatenate([chunks[-1], order[pos:]])
    return chunks


def _chunk_plan_fingerprint(chunks: list[np.ndarray]) -> str:
    """Identity of a chunk plan — resuming a parallel checkpoint
    against a different plan (other process/chunk counts) would mix
    partial sums over different root sets."""
    if not chunks:
        return "empty"
    lengths = np.asarray([c.size for c in chunks], dtype=np.int64)
    return array_fingerprint(np.concatenate([lengths, *chunks]))


def _kernel_name(kernel) -> str:
    if kernel is None:
        return "bigint"
    if isinstance(kernel, str):
        if kernel not in KERNELS:
            raise CountingError(
                f"unknown kernel {kernel!r}; expected one of {sorted(KERNELS)}"
            )
        return kernel
    return kernel.name


def _allk_length(dag: CSRGraph, max_k: int | None) -> int:
    """Length of the all-k counts row (mirrors ``SCTEngine._allk_shape``
    so parent fold rows and worker chunk rows line up elementwise)."""
    size_cap = dag.max_degree + 2
    if max_k is not None:
        size_cap = min(size_cap, max_k + 1)
    return max(size_cap, 2)


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
# Per-process caches, keyed by shared-segment name: attachments keep the
# mapped segment alive (the graphs are views over its buffer), engines
# amortize structure construction across the tasks of one run.  Evicted
# entries are merely dropped — the mapping is released when the last
# array referencing it is collected.
_ATTACHED: "OrderedDict[str, tuple]" = OrderedDict()
_ENGINES: "OrderedDict[tuple, object]" = OrderedDict()
_WORKER_CACHE_MAX = 4


def _attach(spec) -> tuple[CSRGraph, CSRGraph]:
    entry = _ATTACHED.get(spec.name)
    if entry is None:
        graph, dag, shm = attach_graph_pair(spec)
        _ATTACHED[spec.name] = entry = (graph, dag, shm)
        while len(_ATTACHED) > _WORKER_CACHE_MAX:
            stale, _ = _ATTACHED.popitem(last=False)
            for key in [key for key in _ENGINES if key[0] == stale]:
                del _ENGINES[key]
    else:
        _ATTACHED.move_to_end(spec.name)
    return entry[0], entry[1]


def _cached_engine(task: dict, graph: CSRGraph, dag: CSRGraph):
    from repro.counting.sct import SCTEngine

    key = (task["spec"].name, task["structure"], task["kernel"] or "bigint")
    engine = _ENGINES.get(key)
    if engine is None:
        engine = SCTEngine(
            graph, dag, task["structure"], kernel=task["kernel"]
        )
        _ENGINES[key] = engine
        while len(_ENGINES) > _WORKER_CACHE_MAX:
            _ENGINES.popitem(last=False)
    else:
        _ENGINES.move_to_end(key)
    return engine


def _execute_mode(task: dict, engine, graph: CSRGraph) -> dict:
    mode = task["mode"]
    roots = task["roots"]
    if mode == "count":
        res = engine.count_roots(roots, task["k"])
        return {
            "count": res.count,
            "counters": res.counters.as_dict(),
            "per_root_work": res.per_root_work,
            "per_root_memory": res.per_root_memory,
        }
    if mode == "allk":
        res = engine.count_roots(roots, None, max_k=task["max_k"])
        return {
            "all_counts": res.all_counts,
            "counters": res.counters.as_dict(),
            "per_root_work": res.per_root_work,
            "per_root_memory": res.per_root_memory,
        }
    if mode == "pervertex":
        from repro.counting.pervertex import attribute_root

        per = [0] * graph.num_vertices
        ctr = Counters()
        for v in roots:
            attribute_root(engine.structure, v, task["k"], per, ctr)
        return {
            "per": {i: c for i, c in enumerate(per) if c},
            "counters": ctr.as_dict(),
        }
    if mode == "forest":
        from repro.counting.forest import collect_root_leaves

        leaves_per_root = []
        counters_per_root = []
        chunk_totals = Counters()
        for v in roots:
            ctr = Counters()
            leaves = collect_root_leaves(
                engine.structure, v, ctr, record_members=task["members"]
            )
            leaves_per_root.append(leaves)
            counters_per_root.append(ctr.as_dict())
            chunk_totals.merge(ctr)
        obs.record_run(
            chunk_totals, engine="sct-forest",
            structure=engine.structure.name, kernel=engine.kernel.name,
            roots=len(roots),
        )
        return {"leaves": leaves_per_root, "counters": counters_per_root}
    raise ParallelModelError(f"unknown worker mode {mode!r}")


def _run_chunk_impl(task: dict) -> dict:
    if task.get("crash"):
        raise WorkerCrashError(
            f"injected worker fault in chunk {task['chunk_id']}"
        )
    graph, dag = _attach(task["spec"])
    metrics = bool(task.get("metrics"))
    prev_reg = None
    if metrics:
        # A fresh enabled registry per task: kernel instrumentation
        # binds counter objects at engine-construction time, so the
        # engine must be built under the registry it reports to.
        prev_reg = obs.set_registry(MetricsRegistry(enabled=True))
    try:
        if metrics:
            from repro.counting.sct import SCTEngine

            engine = SCTEngine(
                graph, dag, task["structure"], kernel=task["kernel"]
            )
        else:
            engine = _cached_engine(task, graph, dag)
        payload = _execute_mode(task, engine, graph)
        if metrics:
            payload["metrics"] = obs.get_registry().as_dict()
        payload["ok"] = True
        return payload
    finally:
        if prev_reg is not None:
            obs.set_registry(prev_reg)


def _run_chunk(task: dict) -> tuple[int, dict]:
    """The pool task function.  Failures come back as data — raising
    through ``imap_unordered`` would tell the parent *that* something
    died but not *which chunk*, and would poison the result stream."""
    chunk_id = task["chunk_id"]
    try:
        return chunk_id, _run_chunk_impl(task)
    except Exception as exc:  # noqa: BLE001 - errors cross as data
        return chunk_id, {"ok": False, "error": f"{type(exc).__name__}: {exc}"}


# ----------------------------------------------------------------------
# the runtime (pool lifecycle + task streaming)
# ----------------------------------------------------------------------
class ParallelRuntime:
    """A reusable worker pool for the parallel counting entry points.

    The pool is created lazily on first use and reused across runs and
    across graphs (workers cache shared-memory attachments per
    segment), which matters on the ``spawn`` start method where worker
    startup costs a fresh interpreter.  Pass an instance via the
    ``runtime=`` keyword of the :mod:`repro.parallel.pool` functions to
    amortize it; otherwise each call builds and tears down its own.

    Parameters
    ----------
    processes:
        Worker count; defaults to ``os.cpu_count()``.
    start_method:
        ``"fork"`` / ``"spawn"`` / ``"forkserver"``; defaults to
        ``$REPRO_START_METHOD`` if set (how CI sweeps the whole suite
        under each method), else ``fork`` where available (cheap
        workers), else ``spawn``.
    """

    def __init__(
        self, processes: int | None = None, *, start_method: str | None = None
    ) -> None:
        if processes is not None and processes < 1:
            raise ParallelModelError("processes must be >= 1")
        self.processes = processes or os.cpu_count() or 1
        methods = get_all_start_methods()
        if start_method is None:
            start_method = os.environ.get("REPRO_START_METHOD") or None
        if start_method is None:
            start_method = "fork" if "fork" in methods else "spawn"
        elif start_method not in methods:
            raise ParallelModelError(
                f"start method {start_method!r} unavailable on this "
                f"platform; have {methods}"
            )
        self.start_method = start_method
        self._ctx = get_context(start_method)
        self._pool = None

    @property
    def pool(self):
        if self._pool is None:
            self._pool = self._ctx.Pool(self.processes)
        return self._pool

    def map_chunks(self, tasks: list[dict]):
        """Stream ``(chunk_id, payload)`` results as workers finish.

        ``chunksize=1`` is load-bearing: the default ``pool.map``
        heuristic re-batches consecutive tasks into contiguous blocks,
        which would undo the oversubscribed chunk plan and hand one
        worker the whole heavy head of the degree distribution.  One
        task per dispatch keeps scheduling dynamic.
        """
        return self.pool.imap_unordered(_run_chunk, tasks, chunksize=1)

    def close(self) -> None:
        """Tear the pool down (terminate, like ``Pool.__exit__``)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ParallelRuntime":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@contextmanager
def _pool_for(
    runtime: ParallelRuntime | None, processes: int, start_method: str | None
):
    """Borrow the caller's runtime, or own a throwaway one."""
    if runtime is not None:
        yield runtime
    else:
        with ParallelRuntime(processes, start_method=start_method) as rt:
            yield rt


def _normalize_fault_chunks(fault_chunks) -> dict[int, float]:
    """Injected-crash schedule as ``{chunk_id: fail_count}``.

    A bare iterable of chunk ids means "crashes forever" (the PR 5
    shape); a mapping bounds the crashes, so a chunk with
    ``fail_count=1`` dies on its first attempt and succeeds on the
    first retry — the transient-fault case the bounded retry loop
    exists for.
    """
    if isinstance(fault_chunks, dict):
        return {int(c): float(f) for c, f in fault_chunks.items()}
    return {int(c): math.inf for c in fault_chunks}


def _build_tasks(
    chunks: list[np.ndarray],
    pending: list[int],
    spec,
    *,
    mode: str,
    structure: str,
    kernel_name: str | None,
    metrics: bool,
    fault_chunks,
    **extra,
) -> list[dict]:
    fault_counts = _normalize_fault_chunks(fault_chunks)
    tasks = []
    for cid in pending:
        task = {
            "chunk_id": cid,
            "roots": [int(v) for v in chunks[cid]],
            "spec": spec,
            "mode": mode,
            "structure": structure,
            "kernel": kernel_name,
            "metrics": metrics,
        }
        if fault_counts.get(cid, 0) >= 1:
            task["crash"] = True
        task.update(extra)
        tasks.append(task)
    return tasks


def _retry_in_process(
    graph: CSRGraph, dag: CSRGraph, task: dict, error: str
) -> dict:
    """The worker-crash degradation rung: re-run the failed chunk in
    the parent on the ``bigint`` reference backend.  Counts and
    counters are backend-invariant, so the folded result stays exact —
    only ``degraded_from`` records that a worker died."""
    from repro.counting.sct import SCTEngine

    obs.degradation(
        "worker_retry", engine="sct-parallel",
        chunk=task["chunk_id"], error=error,
    )
    retry = dict(task, kernel="bigint", metrics=False)
    retry.pop("crash", None)
    engine = SCTEngine(graph, dag, retry["structure"], kernel="bigint")
    payload = _execute_mode(retry, engine, graph)
    payload["ok"] = True
    payload["degraded"] = True
    return payload


_sleep = time.sleep  # monkeypatch seam for backoff tests


def _retry_delay(rng: random.Random, attempt: int, backoff: float) -> float:
    """Seeded exponential backoff with jitter: ``backoff * 2^(a-1)``
    scaled by a uniform factor in [0.5, 1.5).  The jitter stream is
    advanced even when ``backoff == 0`` so enabling sleeps never
    changes which delays a given (seed, chunk) pair draws."""
    jitter = 0.5 + rng.random()
    return backoff * (2.0 ** (attempt - 1)) * jitter


def _resolve_failure(
    rt: "ParallelRuntime",
    graph: CSRGraph,
    dag: CSRGraph,
    task: dict,
    error: str,
    *,
    fault_counts: dict[int, float],
    worker_retries: int,
    retry_backoff: float,
    retry_seed: int,
    allow_degrade: bool,
) -> dict:
    """Recover a crashed chunk: bounded pool retries, then degrade.

    Resubmits the chunk to the pool up to ``worker_retries`` times with
    seeded exponential backoff.  A retry that succeeds returns its
    payload unflagged — a transient crash costs retries, not exactness.
    On exhaustion the PR 2 degradation ladder takes over: in-process
    ``bigint`` recount (exact, ``degraded`` flagged) when degradation
    is enabled, :class:`~repro.errors.WorkerCrashError` otherwise.
    """
    cid = task["chunk_id"]
    rng = random.Random((int(retry_seed) << 20) ^ cid)
    reg = obs.get_registry()
    for attempt in range(1, worker_retries + 1):
        delay = _retry_delay(rng, attempt, retry_backoff)
        if delay > 0:
            _sleep(delay)
        if reg.enabled:
            reg.counter("runtime_worker_retries").inc()
        retry = dict(task)
        # attempt here is the retry number; the initial dispatch was
        # attempt 1, so this resubmission is overall attempt 1+attempt.
        if 1 + attempt <= fault_counts.get(cid, 0):
            retry["crash"] = True
        else:
            retry.pop("crash", None)
        payload = None
        for _cid, payload in rt.map_chunks([retry]):
            break
        if payload is not None and payload.get("ok"):
            return payload
        error = (payload or {}).get("error", error)
    if not allow_degrade:
        raise WorkerCrashError(
            f"chunk {cid} failed in a worker after {1 + worker_retries} "
            f"attempts: {error}"
        )
    return _retry_in_process(graph, dag, task, error)


# ----------------------------------------------------------------------
# parent-side drivers
# ----------------------------------------------------------------------
def parallel_count(
    graph: CSRGraph,
    dag: CSRGraph,
    *,
    k: int | None,
    max_k: int | None = None,
    structure: str = "remap",
    kernel=None,
    processes: int,
    chunks_per_process: int = 4,
    controller: RunController | None = None,
    collect_metrics: bool | None = None,
    degrade: bool = False,
    runtime: ParallelRuntime | None = None,
    start_method: str | None = None,
    fault_chunks=(),
    worker_retries: int = 2,
    retry_backoff: float = 0.0,
    retry_seed: int = 0,
    roots: np.ndarray | None = None,
):
    """Multi-process exact counting (target-k when ``k`` is set, all-k
    otherwise).  Returns a full
    :class:`~repro.counting.sct.CountResult`, like the serial engines.

    ``collect_metrics=None`` (default) follows the parent registry:
    when metrics are enabled, workers snapshot their per-task
    registries and the parent merges them, keeping counter totals
    exact; when disabled, workers skip collection entirely.

    ``roots`` restricts the run to a subset of root vertices (partial
    sums over the rest are zero) — the shard executor counts one
    shard's root range per call.  ``worker_retries`` /
    ``retry_backoff`` / ``retry_seed`` shape the bounded crash-retry
    loop (see :func:`_resolve_failure`).
    """
    from repro.counting.sct import CountResult

    n = graph.num_vertices
    kernel_name = _kernel_name(kernel)
    chunks = plan_chunks(dag.degrees, processes, chunks_per_process, roots)
    num_chunks = len(chunks)
    length = 0
    all_counts: list[int] | None = None
    if k is None:
        length = _allk_length(dag, max_k)
        all_counts = [0] * length
    totals = Counters()
    per_root_work = np.zeros(n, dtype=np.float64)
    per_root_memory = np.zeros(n, dtype=np.float64)
    total = 0
    done: set[int] = set()
    degraded_from: str | None = None
    ctl = controller
    merge_metrics = (
        obs.get_registry().enabled
        if collect_metrics is None
        else bool(collect_metrics)
    )
    allow_degrade = degrade or (ctl is not None and ctl.degrade)
    fault_counts = _normalize_fault_chunks(fault_chunks)

    if ctl is not None:
        def snapshot() -> dict:
            return {
                "done_chunks": sorted(done),
                "total": total,
                "all_counts": None if all_counts is None else list(all_counts),
                "counters": totals.as_dict(),
                "per_root_work": per_root_work.tolist(),
                "per_root_memory": per_root_memory.tolist(),
                "degraded_from": degraded_from,
            }

        descriptor = {
            "engine": "sct-parallel",
            "k": k,
            "max_k": max_k,
            "structure": structure,
            "kernel": kernel_name,
            "graph_fingerprint": graph_fingerprint(graph),
            "dag_fingerprint": graph_fingerprint(dag),
            "num_chunks": num_chunks,
            "chunk_plan": _chunk_plan_fingerprint(chunks),
        }
        state = ctl.begin(descriptor, snapshot)
        if state is not None:
            done = {int(c) for c in state["done_chunks"]}
            total = int(state["total"])
            if all_counts is not None:
                stored = state.get("all_counts")
                if stored is None or len(stored) != length:
                    raise CheckpointError(
                        "checkpoint all_counts row does not match this "
                        "run's clique-size cap"
                    )
                all_counts = [int(c) for c in stored]
            totals = Counters.from_dict(state["counters"])
            per_root_work[:] = state["per_root_work"]
            per_root_memory[:] = state["per_root_memory"]
            degraded_from = state.get("degraded_from")

    pending = [c for c in range(num_chunks) if c not in done]
    mode = "count" if k is not None else "allk"
    with obs.span(
        "parallel.count" if k is not None else "parallel.count_all",
        engine="sct-parallel", processes=processes, chunks=num_chunks,
        structure=structure, kernel=kernel_name,
    ), obs.phase("counting"), (
        ctl.guard() if ctl is not None else nullcontext()
    ):
        if pending:
            with publish_graph_pair(graph, dag) as shared, _pool_for(
                runtime, processes, start_method
            ) as rt:
                tasks = _build_tasks(
                    chunks, pending, shared.spec, mode=mode,
                    structure=structure, kernel_name=kernel_name,
                    metrics=merge_metrics, fault_chunks=fault_chunks,
                    k=k, max_k=max_k, members=True,
                )
                for chunk_id, payload in rt.map_chunks(tasks):
                    if ctl is not None:
                        ctl.tick()
                    if not payload.get("ok"):
                        payload = _resolve_failure(
                            rt, graph, dag, tasks[pending.index(chunk_id)],
                            payload.get("error", ""),
                            fault_counts=fault_counts,
                            worker_retries=worker_retries,
                            retry_backoff=retry_backoff,
                            retry_seed=retry_seed,
                            allow_degrade=allow_degrade,
                        )
                    ctr = Counters.from_dict(payload["counters"])
                    if ctl is not None:
                        # Meter BEFORE folding: a chunk is all-in or
                        # not-at-all, so checkpoints stay consistent.
                        ctl.charge_nodes(ctr.function_calls)
                        ctl.note_memory(ctr.peak_subgraph_bytes)
                    roots_arr = chunks[chunk_id]
                    if all_counts is not None:
                        row = payload["all_counts"]
                        for s in range(length):
                            if row[s]:
                                all_counts[s] += row[s]
                    else:
                        total += payload["count"]
                    per_root_work[roots_arr] = payload["per_root_work"]
                    per_root_memory[roots_arr] = payload["per_root_memory"]
                    totals.merge(ctr)
                    obs.note_memory(ctr.peak_subgraph_bytes)
                    if payload.get("degraded") and degraded_from is None:
                        degraded_from = "worker"
                    if merge_metrics and payload.get("metrics"):
                        obs.get_registry().merge_snapshot(payload["metrics"])
                    done.add(chunk_id)
                    if ctl is not None:
                        ctl.complete_roots(len(roots_arr))

    if all_counts is not None:
        while len(all_counts) > 1 and all_counts[-1] == 0:
            all_counts.pop()
    return CountResult(
        count=None if k is None else total,
        all_counts=all_counts,
        k=k,
        counters=totals,
        per_root_work=per_root_work,
        per_root_memory=per_root_memory,
        structure=structure,
        kernel=kernel_name,
        degraded_from=degraded_from,
    )


def parallel_per_vertex(
    graph: CSRGraph,
    dag: CSRGraph,
    *,
    k: int,
    structure: str = "remap",
    kernel=None,
    processes: int,
    chunks_per_process: int = 4,
    controller: RunController | None = None,
    collect_metrics: bool | None = None,
    degrade: bool = False,
    runtime: ParallelRuntime | None = None,
    start_method: str | None = None,
    fault_chunks=(),
    worker_retries: int = 2,
    retry_backoff: float = 0.0,
    retry_seed: int = 0,
) -> list[int]:
    """Multi-process per-vertex k-clique counts (exact ints).

    Mirrors the serial :func:`repro.counting.pervertex.per_vertex_counts`
    contract: budgets at task granularity, no checkpoint state (a
    budget abort discards the run).
    """
    n = graph.num_vertices
    kernel_name = _kernel_name(kernel)
    chunks = plan_chunks(dag.degrees, processes, chunks_per_process)
    per: list[int] = [0] * n
    ctl = controller
    merge_metrics = (
        obs.get_registry().enabled
        if collect_metrics is None
        else bool(collect_metrics)
    )
    allow_degrade = degrade or (ctl is not None and ctl.degrade)
    fault_counts = _normalize_fault_chunks(fault_chunks)
    if ctl is not None:
        ctl.begin({
            "engine": "per-vertex-parallel",
            "k": k,
            "structure": structure,
            "kernel": kernel_name,
            "graph": graph_fingerprint(graph),
        })
    with obs.span(
        "parallel.per_vertex", engine="per-vertex-parallel",
        processes=processes, chunks=len(chunks), structure=structure,
        kernel=kernel_name,
    ), obs.phase("counting"), (
        ctl.guard() if ctl is not None else nullcontext()
    ):
        if chunks:
            with publish_graph_pair(graph, dag) as shared, _pool_for(
                runtime, processes, start_method
            ) as rt:
                tasks = _build_tasks(
                    chunks, list(range(len(chunks))), shared.spec,
                    mode="pervertex", structure=structure,
                    kernel_name=kernel_name, metrics=merge_metrics,
                    fault_chunks=fault_chunks, k=k,
                )
                for chunk_id, payload in rt.map_chunks(tasks):
                    if ctl is not None:
                        ctl.tick()
                    if not payload.get("ok"):
                        payload = _resolve_failure(
                            rt, graph, dag, tasks[chunk_id],
                            payload.get("error", ""),
                            fault_counts=fault_counts,
                            worker_retries=worker_retries,
                            retry_backoff=retry_backoff,
                            retry_seed=retry_seed,
                            allow_degrade=allow_degrade,
                        )
                    ctr = Counters.from_dict(payload["counters"])
                    if ctl is not None:
                        ctl.charge_nodes(ctr.function_calls)
                        ctl.note_memory(ctr.peak_subgraph_bytes)
                    for v, c in payload["per"].items():
                        per[int(v)] += c
                    if merge_metrics and payload.get("metrics"):
                        obs.get_registry().merge_snapshot(payload["metrics"])
                    if ctl is not None:
                        ctl.complete_roots(len(chunks[chunk_id]))
    return per


def parallel_build_forest(
    graph: CSRGraph,
    dag: CSRGraph,
    *,
    structure: str = "remap",
    kernel=None,
    processes: int,
    chunks_per_process: int = 4,
    members: bool = True,
    controller: RunController | None = None,
    collect_metrics: bool | None = None,
    degrade: bool = False,
    runtime: ParallelRuntime | None = None,
    start_method: str | None = None,
    fault_chunks=(),
    worker_retries: int = 2,
    retry_backoff: float = 0.0,
    retry_seed: int = 0,
):
    """Multi-process :class:`~repro.counting.forest.SCTForest` build.

    Workers traverse disjoint root sets and ship their leaves back;
    the parent reassembles them in root order (and, within each root,
    in recursion order), so the materialized arrays — and every query
    served from them — are bit-identical to a serial build.  Budgets
    are metered per chunk; the parallel build has no checkpoint state
    and no member-spill rung (use the serial build under a memory
    watermark when spilling matters).
    """
    from repro.counting.forest import SCTForest

    n = graph.num_vertices
    kernel_name = _kernel_name(kernel)
    chunks = plan_chunks(dag.degrees, processes, chunks_per_process)
    leaves_by_root: dict[int, list] = {}
    counters_by_root: dict[int, dict] = {}
    per_root_work = np.zeros(n, dtype=np.float64)
    per_root_memory = np.zeros(n, dtype=np.float64)
    degraded_from: str | None = None
    ctl = controller
    merge_metrics = (
        obs.get_registry().enabled
        if collect_metrics is None
        else bool(collect_metrics)
    )
    allow_degrade = degrade or (ctl is not None and ctl.degrade)
    fault_counts = _normalize_fault_chunks(fault_chunks)
    descriptor = {
        "engine": "sct-forest",
        "structure": structure,
        "kernel": kernel_name,
        "members": bool(members),
        "graph_fingerprint": graph_fingerprint(graph),
        "dag_fingerprint": graph_fingerprint(dag),
    }
    if ctl is not None:
        ctl.begin(dict(descriptor, parallel=processes))
    with obs.span(
        "parallel.forest_build", engine="sct-forest", processes=processes,
        chunks=len(chunks), structure=structure, kernel=kernel_name,
    ), obs.phase("forest_build"), (
        ctl.guard() if ctl is not None else nullcontext()
    ):
        if chunks:
            with publish_graph_pair(graph, dag) as shared, _pool_for(
                runtime, processes, start_method
            ) as rt:
                tasks = _build_tasks(
                    chunks, list(range(len(chunks))), shared.spec,
                    mode="forest", structure=structure,
                    kernel_name=kernel_name, metrics=merge_metrics,
                    fault_chunks=fault_chunks, members=bool(members),
                )
                for chunk_id, payload in rt.map_chunks(tasks):
                    if ctl is not None:
                        ctl.tick()
                    if not payload.get("ok"):
                        payload = _resolve_failure(
                            rt, graph, dag, tasks[chunk_id],
                            payload.get("error", ""),
                            fault_counts=fault_counts,
                            worker_retries=worker_retries,
                            retry_backoff=retry_backoff,
                            retry_seed=retry_seed,
                            allow_degrade=allow_degrade,
                        )
                        if payload.get("degraded") and degraded_from is None:
                            degraded_from = "worker"
                    roots_arr = chunks[chunk_id]
                    chunk_ctr = Counters()
                    for v, leaves, ctr_d in zip(
                        roots_arr, payload["leaves"], payload["counters"]
                    ):
                        v = int(v)
                        leaves_by_root[v] = leaves
                        counters_by_root[v] = ctr_d
                        ctr = Counters.from_dict(ctr_d)
                        per_root_work[v] = ctr.work
                        per_root_memory[v] = ctr.peak_subgraph_bytes
                        chunk_ctr.merge(ctr)
                    if ctl is not None:
                        ctl.charge_nodes(chunk_ctr.function_calls)
                        ctl.note_memory(chunk_ctr.peak_subgraph_bytes)
                        ctl.complete_roots(len(roots_arr))
                    obs.note_memory(chunk_ctr.peak_subgraph_bytes)
                    if merge_metrics and payload.get("metrics"):
                        obs.get_registry().merge_snapshot(payload["metrics"])

    # Reassemble in root order: chunk completion order is
    # nondeterministic, but leaves are keyed by root and each root's
    # leaves arrive in recursion order, so this loop reproduces the
    # serial build's append order exactly.
    held_n: list[int] = []
    pivot_n: list[int] = []
    leaf_roots: list[int] = []
    held_members: list[int] | None = [] if members else None
    pivot_members: list[int] | None = [] if members else None
    totals = Counters()
    for v in range(n):
        for h_count, p_count, h_ids, p_ids in leaves_by_root.get(v, ()):
            held_n.append(h_count)
            pivot_n.append(p_count)
            leaf_roots.append(v)
            if held_members is not None and h_ids is not None:
                held_members.extend(h_ids)
                pivot_members.extend(p_ids)
        totals.merge(Counters.from_dict(counters_by_root[v]))

    reg = obs.get_registry()
    if reg.enabled:
        reg.gauge("forest_leaves").set(len(held_n))

    return SCTForest(
        num_vertices=n,
        held_n=np.asarray(held_n, dtype=np.int32),
        pivot_n=np.asarray(pivot_n, dtype=np.int32),
        roots=np.asarray(leaf_roots, dtype=np.int32),
        held_members=(
            None if held_members is None
            else np.asarray(held_members, dtype=np.int32)
        ),
        pivot_members=(
            None if pivot_members is None
            else np.asarray(pivot_members, dtype=np.int32)
        ),
        per_root_work=per_root_work,
        per_root_memory=per_root_memory,
        counters=totals,
        descriptor=descriptor,
        degraded_from=degraded_from,
    )
