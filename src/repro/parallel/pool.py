"""Real process-based parallel counting — the public entry points.

CPython threads cannot scale CPU-bound clique counting (the GIL), so
the honest Python-native parallel backend uses ``multiprocessing``.
The heavy lifting lives in :mod:`repro.parallel.runtime`: graph and
DAG arrays are published once via shared memory, roots are packed into
size-aware chunks (degree-descending guided self-scheduling) streamed
through ``imap_unordered``, and the run cooperates with the
:class:`~repro.runtime.RunController` / :mod:`repro.obs` subsystems at
chunk granularity.  This module keeps the thin, validated wrappers:

* :func:`count_kcliques_processes` — target-k counting; returns the
  same :class:`~repro.counting.sct.CountResult` as the serial engine
  (the old pool returned a bare int and masked ``None`` counts as 0);
* :func:`count_all_sizes_processes` — the all-k distribution;
* :func:`per_vertex_counts_processes` — per-vertex attribution;
* :func:`build_forest_processes` — parallel
  :class:`~repro.counting.forest.SCTForest` materialization.

``processes=1`` (and the empty graph) delegate to the serial engines
with the same controller, so metadata — ``approximate``,
``degraded_from``, budget errors — propagates identically on every
path.  On this repository's single-core reference environment the pool
runs correctly but cannot show speedups; the scaling *figures*
therefore use the deterministic machine model
(:mod:`repro.parallel.simulate`), and ``benchmarks/bench_parallel.py``
gates the real backend's scheduling overhead instead.
"""

from __future__ import annotations

import os

import numpy as np

from repro.counting.structures import STRUCTURES
from repro.errors import CountingError, ParallelModelError
from repro.graph.csr import CSRGraph
from repro.ordering.base import Ordering
from repro.ordering.directionalize import directionalize
from repro.parallel.runtime import (
    ParallelRuntime,
    parallel_build_forest,
    parallel_count,
    parallel_per_vertex,
)
from repro.runtime.controller import RunController

__all__ = [
    "count_kcliques_processes",
    "count_all_sizes_processes",
    "per_vertex_counts_processes",
    "build_forest_processes",
]


def _validated(
    graph: CSRGraph,
    ordering: Ordering | np.ndarray | CSRGraph,
    structure: str,
    processes: int | None,
    chunks_per_process: int,
) -> tuple[CSRGraph, int]:
    """Shared argument validation; returns ``(dag, resolved procs)``."""
    if processes is not None and processes < 1:
        raise ParallelModelError("processes must be >= 1")
    if chunks_per_process < 1:
        raise ParallelModelError("chunks_per_process must be >= 1")
    if structure not in STRUCTURES:
        raise CountingError(
            f"unknown structure {structure!r}; "
            f"expected one of {sorted(STRUCTURES)}"
        )
    if isinstance(ordering, CSRGraph):
        dag = ordering
    else:
        dag = directionalize(graph, ordering)
    return dag, processes or os.cpu_count() or 1


def count_kcliques_processes(
    graph: CSRGraph,
    k: int,
    ordering: Ordering | np.ndarray | CSRGraph,
    *,
    processes: int | None = None,
    structure: str = "remap",
    chunks_per_process: int = 4,
    kernel=None,
    controller: RunController | None = None,
    collect_metrics: bool | None = None,
    degrade: bool = False,
    runtime: ParallelRuntime | None = None,
    start_method: str | None = None,
    fault_chunks=(),
    worker_retries: int = 2,
    retry_backoff: float = 0.0,
    retry_seed: int = 0,
):
    """Count k-cliques using a pool of worker processes.

    Exact and bit-identical to
    :meth:`SCTEngine.count <repro.counting.sct.SCTEngine.count>` — the
    SCT total is a sum over roots and workers count disjoint root
    chunks.  Returns the full :class:`~repro.counting.sct.CountResult`.

    Parameters
    ----------
    processes:
        Worker count; defaults to ``os.cpu_count()``.  ``1`` runs the
        serial engine in-process (same controller, same result object).
    chunks_per_process:
        Oversubscription factor — more, smaller chunks improve load
        balance on skewed graphs (the paper's dynamic scheduling).
    kernel:
        Bitset-kernel backend name (``"bigint"`` default,
        ``"wordarray"`` for the NumPy fast path).
    controller:
        A :class:`~repro.runtime.RunController`, honored at chunk
        granularity: budgets, checkpoint/resume of completed-chunk
        partial sums, and the worker-crash degradation rung.
    collect_metrics:
        Worker-side metrics collection; ``None`` follows the parent
        registry's enabled flag.
    degrade:
        Allow the worker-crash rung without a controller: a failed
        chunk re-runs in-process on ``bigint`` (exact, flagged
        ``degraded_from="worker"``) instead of raising
        :class:`~repro.errors.WorkerCrashError`.
    runtime:
        A reusable :class:`~repro.parallel.runtime.ParallelRuntime`
        pool; by default each call owns a throwaway one.
    start_method:
        ``"fork"`` / ``"spawn"`` override (ignored when ``runtime`` is
        given; default ``fork`` where available).
    fault_chunks:
        Chunk ids forced to fail in the worker — deterministic fault
        injection for tests/CI, the parallel analog of
        :class:`~repro.runtime.faults.FaultPlan`.  A set/sequence means
        the chunk crashes on every attempt; a ``{chunk_id: fail_count}``
        mapping makes the crash transient (recovered by retries).
    worker_retries:
        Pool resubmissions of a crashed chunk before the degradation
        rung engages (default 2); retries that succeed keep the result
        exact and unflagged, metered by ``runtime_worker_retries``.
    retry_backoff:
        Base seconds for seeded exponential backoff between retries
        (default 0.0: no sleeping, as tests and CI want); the jitter is
        drawn from ``retry_seed`` and the chunk id, so delays are
        deterministic.
    """
    if k < 1:
        raise CountingError(f"clique size k must be >= 1, got {k}")
    dag, procs = _validated(
        graph, ordering, structure, processes, chunks_per_process
    )
    if procs == 1:
        from repro.counting.sct import SCTEngine

        return SCTEngine(graph, dag, structure, kernel=kernel).count(
            k, controller=controller
        )
    return parallel_count(
        graph, dag, k=k, structure=structure, kernel=kernel,
        processes=procs, chunks_per_process=chunks_per_process,
        controller=controller, collect_metrics=collect_metrics,
        degrade=degrade, runtime=runtime, start_method=start_method,
        fault_chunks=fault_chunks, worker_retries=worker_retries,
        retry_backoff=retry_backoff, retry_seed=retry_seed,
    )


def count_all_sizes_processes(
    graph: CSRGraph,
    ordering: Ordering | np.ndarray | CSRGraph,
    *,
    max_k: int | None = None,
    processes: int | None = None,
    structure: str = "remap",
    chunks_per_process: int = 4,
    kernel=None,
    controller: RunController | None = None,
    collect_metrics: bool | None = None,
    degrade: bool = False,
    runtime: ParallelRuntime | None = None,
    start_method: str | None = None,
    fault_chunks=(),
    worker_retries: int = 2,
    retry_backoff: float = 0.0,
    retry_seed: int = 0,
):
    """Count cliques of every size with worker processes (the paper's
    Fig. 1 distribution) — the all-k analog of
    :func:`count_kcliques_processes`; same integration, same
    bit-identical guarantee against
    :meth:`SCTEngine.count_all <repro.counting.sct.SCTEngine.count_all>`.
    """
    dag, procs = _validated(
        graph, ordering, structure, processes, chunks_per_process
    )
    if procs == 1:
        from repro.counting.sct import SCTEngine

        return SCTEngine(graph, dag, structure, kernel=kernel).count_all(
            max_k=max_k, controller=controller
        )
    return parallel_count(
        graph, dag, k=None, max_k=max_k, structure=structure, kernel=kernel,
        processes=procs, chunks_per_process=chunks_per_process,
        controller=controller, collect_metrics=collect_metrics,
        degrade=degrade, runtime=runtime, start_method=start_method,
        fault_chunks=fault_chunks, worker_retries=worker_retries,
        retry_backoff=retry_backoff, retry_seed=retry_seed,
    )


def per_vertex_counts_processes(
    graph: CSRGraph,
    k: int,
    ordering: Ordering | np.ndarray | CSRGraph,
    *,
    processes: int | None = None,
    structure: str = "remap",
    chunks_per_process: int = 4,
    kernel=None,
    controller: RunController | None = None,
    collect_metrics: bool | None = None,
    degrade: bool = False,
    runtime: ParallelRuntime | None = None,
    start_method: str | None = None,
    fault_chunks=(),
    worker_retries: int = 2,
    retry_backoff: float = 0.0,
    retry_seed: int = 0,
) -> list[int]:
    """Per-vertex k-clique counts with worker processes (exact ints,
    identical to :func:`repro.counting.pervertex.per_vertex_counts`)."""
    if k < 1:
        raise CountingError(f"clique size k must be >= 1, got {k}")
    dag, procs = _validated(
        graph, ordering, structure, processes, chunks_per_process
    )
    if procs == 1:
        from repro.counting.pervertex import per_vertex_counts

        return per_vertex_counts(
            graph, k, dag, structure, kernel=kernel, controller=controller
        )
    return parallel_per_vertex(
        graph, dag, k=k, structure=structure, kernel=kernel,
        processes=procs, chunks_per_process=chunks_per_process,
        controller=controller, collect_metrics=collect_metrics,
        degrade=degrade, runtime=runtime, start_method=start_method,
        fault_chunks=fault_chunks, worker_retries=worker_retries,
        retry_backoff=retry_backoff, retry_seed=retry_seed,
    )


def build_forest_processes(
    graph: CSRGraph,
    ordering: Ordering | np.ndarray | CSRGraph,
    *,
    processes: int | None = None,
    structure: str = "remap",
    chunks_per_process: int = 4,
    kernel=None,
    members: bool = True,
    controller: RunController | None = None,
    collect_metrics: bool | None = None,
    degrade: bool = False,
    runtime: ParallelRuntime | None = None,
    start_method: str | None = None,
    fault_chunks=(),
    worker_retries: int = 2,
    retry_backoff: float = 0.0,
    retry_seed: int = 0,
):
    """Materialize an :class:`~repro.counting.forest.SCTForest` with
    worker processes.  The reassembled arrays are bit-identical to a
    serial :meth:`SCTForest.build <repro.counting.forest.SCTForest.build>`,
    so every query served from the forest matches too."""
    dag, procs = _validated(
        graph, ordering, structure, processes, chunks_per_process
    )
    if procs == 1:
        from repro.counting.forest import build_forest

        return build_forest(
            graph, dag, structure, kernel,
            controller=controller, members=members,
        )
    return parallel_build_forest(
        graph, dag, structure=structure, kernel=kernel,
        processes=procs, chunks_per_process=chunks_per_process,
        members=members, controller=controller,
        collect_metrics=collect_metrics, degrade=degrade, runtime=runtime,
        start_method=start_method, fault_chunks=fault_chunks,
        worker_retries=worker_retries, retry_backoff=retry_backoff,
        retry_seed=retry_seed,
    )
