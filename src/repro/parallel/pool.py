"""Real process-based parallel counting.

CPython threads cannot scale CPU-bound clique counting (the GIL), so
the honest Python-native parallel backend uses ``multiprocessing``:
root vertices are split into contiguous chunks, each worker process
counts its chunk with its own engine, and exact per-chunk totals sum at
the parent.  This is the same vertex-parallel decomposition as the
paper's OpenMP loop (Alg. 1 line 4) — the induced subgraphs of distinct
roots are independent.

On this repository's single-core reference environment the pool runs
correctly but cannot show speedups; the scaling *figures* therefore use
the deterministic machine model (:mod:`repro.parallel.simulate`).
"""

from __future__ import annotations

import os
from multiprocessing import get_context

import numpy as np

from repro.counting.structures import STRUCTURES
from repro.errors import CountingError, ParallelModelError
from repro.graph.csr import CSRGraph
from repro.ordering.base import Ordering
from repro.ordering.directionalize import directionalize

__all__ = ["count_kcliques_processes"]

# Worker state installed once per process by the initializer (forked or
# re-pickled once, instead of per task).
_WORKER: dict = {}


def _init_worker(graph: CSRGraph, dag: CSRGraph, k: int, structure: str) -> None:
    from repro.counting.sct import SCTEngine

    _WORKER["engine"] = SCTEngine(graph, dag, structure=structure)
    _WORKER["k"] = k


def _count_chunk(bounds: tuple[int, int]) -> int:
    engine = _WORKER["engine"]
    k = _WORKER["k"]
    lo, hi = bounds
    from repro.counting.counters import Counters

    total = 0
    for v in range(lo, hi):
        total += engine._count_root_k(v, k, Counters())
    return total


def count_kcliques_processes(
    graph: CSRGraph,
    k: int,
    ordering: Ordering | np.ndarray | CSRGraph,
    *,
    processes: int | None = None,
    structure: str = "remap",
    chunks_per_process: int = 4,
) -> int:
    """Count k-cliques using a pool of worker processes.

    Parameters
    ----------
    processes:
        Worker count; defaults to ``os.cpu_count()``.
    chunks_per_process:
        Oversubscription factor — more, smaller chunks improve load
        balance on skewed graphs (the paper's dynamic scheduling).
    """
    if k < 1:
        raise CountingError(f"clique size k must be >= 1, got {k}")
    if processes is not None and processes < 1:
        raise ParallelModelError("processes must be >= 1")
    if chunks_per_process < 1:
        raise ParallelModelError("chunks_per_process must be >= 1")
    procs = processes or os.cpu_count() or 1
    if isinstance(ordering, CSRGraph):
        dag = ordering
    else:
        dag = directionalize(graph, ordering)
    if structure not in STRUCTURES:
        raise CountingError(f"unknown structure {structure!r}")
    n = graph.num_vertices
    if n == 0:
        return 0
    if procs == 1:
        from repro.counting.sct import SCTEngine

        return SCTEngine(graph, dag, structure=structure).count(k).count or 0
    num_chunks = min(n, procs * chunks_per_process)
    bounds = np.linspace(0, n, num_chunks + 1).astype(int)
    tasks = [(int(lo), int(hi)) for lo, hi in zip(bounds[:-1], bounds[1:])]
    ctx = get_context("fork") if hasattr(os, "fork") else get_context("spawn")
    with ctx.Pool(
        procs, initializer=_init_worker, initargs=(graph, dag, k, structure)
    ) as pool:
        return sum(pool.map(_count_chunk, tasks))
