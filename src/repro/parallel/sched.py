"""Task schedulers for the simulated executor.

The counting phase is vertex-parallel: one task per root vertex, with
heavily skewed task sizes (a hub's SCT subtree dwarfs a leaf's).  The
paper sweeps "task granularity (chunk sizes) and scheduler types
(static, dynamic, cyclic)" and finds load balance is a minor factor
(thread-time CV 0.03 at 64 threads); these schedulers let the harness
reproduce that sweep.
"""

from __future__ import annotations

import abc
import heapq
from dataclasses import dataclass

import numpy as np

from repro.errors import ParallelModelError

__all__ = [
    "Assignment",
    "Scheduler",
    "StaticScheduler",
    "CyclicScheduler",
    "DynamicScheduler",
]


@dataclass(frozen=True)
class Assignment:
    """Result of distributing tasks over threads.

    Attributes
    ----------
    loads:
        Per-thread summed work.
    makespan:
        The bottleneck thread's load — what the parallel phase waits on.
    """

    loads: np.ndarray

    @property
    def makespan(self) -> float:
        return float(self.loads.max()) if self.loads.size else 0.0

    @property
    def total(self) -> float:
        return float(self.loads.sum())

    @property
    def cv(self) -> float:
        """Coefficient of variation of thread loads (paper reports
        0.03 for the counting phase at 64 threads)."""
        mean = self.loads.mean() if self.loads.size else 0.0
        if mean == 0:
            return 0.0
        return float(self.loads.std() / mean)

    @property
    def efficiency(self) -> float:
        """Perfect-balance work over makespan x threads."""
        if self.makespan == 0 or self.loads.size == 0:
            return 1.0
        return self.total / (self.makespan * self.loads.size)


class Scheduler(abc.ABC):
    """Distributes an ordered task-work array over ``threads``."""

    name: str = "base"

    def __init__(self, chunk: int = 1) -> None:
        if chunk < 1:
            raise ParallelModelError("chunk size must be >= 1")
        self.chunk = chunk

    @abc.abstractmethod
    def assign(self, work: np.ndarray, threads: int) -> Assignment:
        """Return per-thread loads for the given task sizes."""

    def _check(self, work: np.ndarray, threads: int) -> np.ndarray:
        if threads < 1:
            raise ParallelModelError("threads must be >= 1")
        work = np.asarray(work, dtype=np.float64)
        if work.ndim != 1:
            raise ParallelModelError("work must be a 1-D array")
        if work.size and work.min() < 0:
            raise ParallelModelError("task work must be non-negative")
        return work

    def _chunks(self, n: int) -> list[slice]:
        return [slice(i, min(i + self.chunk, n)) for i in range(0, n, self.chunk)]


class StaticScheduler(Scheduler):
    """OpenMP ``schedule(static)``: contiguous blocks of ~n/T tasks.

    Cheap but skew-sensitive: if the heavy hubs cluster in one block,
    one thread carries them all.
    """

    name = "static"

    def assign(self, work: np.ndarray, threads: int) -> Assignment:
        work = self._check(work, threads)
        loads = np.zeros(threads, dtype=np.float64)
        bounds = np.linspace(0, work.size, threads + 1).astype(np.int64)
        for t in range(threads):
            loads[t] = work[bounds[t] : bounds[t + 1]].sum()
        return Assignment(loads=loads)


class CyclicScheduler(Scheduler):
    """OpenMP ``schedule(static, chunk)``: chunks dealt round-robin.

    De-clusters hubs at the cost of locality; the default chunk of 1
    is pure cyclic.
    """

    name = "cyclic"

    def assign(self, work: np.ndarray, threads: int) -> Assignment:
        work = self._check(work, threads)
        loads = np.zeros(threads, dtype=np.float64)
        for i, sl in enumerate(self._chunks(work.size)):
            loads[i % threads] += work[sl].sum()
        return Assignment(loads=loads)


class DynamicScheduler(Scheduler):
    """OpenMP ``schedule(dynamic, chunk)``: next chunk to the first
    idle thread — greedy list scheduling, modeled with an
    earliest-finishing-thread heap.  PivotScale's default.
    """

    name = "dynamic"

    def assign(self, work: np.ndarray, threads: int) -> Assignment:
        work = self._check(work, threads)
        heap = [(0.0, t) for t in range(threads)]
        heapq.heapify(heap)
        loads = np.zeros(threads, dtype=np.float64)
        for sl in self._chunks(work.size):
            w = float(work[sl].sum())
            load, t = heapq.heappop(heap)
            loads[t] = load + w
            heapq.heappush(heap, (loads[t], t))
        return Assignment(loads=loads)
