"""Parallel substrate: machine models, schedulers, simulated execution,
and a real process-based executor.

The paper's platform is a 64-core AMD EPYC 9554.  CPython's GIL (and
this container's single core) make real thread scaling unreproducible,
so scaling experiments run on a *deterministic machine model*: the real
counting run produces exact per-root work and memory measurements
(:class:`repro.counting.counters.Counters`), a scheduler distributes
those tasks over modeled threads, and :mod:`repro.perfmodel` converts
work + cache pressure into modeled seconds.  A `multiprocessing`-based
executor (:mod:`repro.parallel.pool`) provides honest process
parallelism for real deployments.
"""

from repro.parallel.machine import (
    MachineSpec,
    EPYC_9554,
    GPU_V100,
    GPU_A100,
    GPUSpec,
)
from repro.parallel.sched import (
    Scheduler,
    StaticScheduler,
    DynamicScheduler,
    CyclicScheduler,
    Assignment,
)
from repro.parallel.simulate import (
    PhaseTime,
    simulate_counting,
    simulate_ordering,
    scaling_curve,
)
from repro.parallel.pool import count_kcliques_processes

__all__ = [
    "MachineSpec",
    "EPYC_9554",
    "GPU_V100",
    "GPU_A100",
    "GPUSpec",
    "Scheduler",
    "StaticScheduler",
    "DynamicScheduler",
    "CyclicScheduler",
    "Assignment",
    "PhaseTime",
    "simulate_counting",
    "simulate_ordering",
    "scaling_curve",
    "count_kcliques_processes",
]
