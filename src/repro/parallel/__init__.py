"""Parallel substrate: machine models, schedulers, simulated execution,
and a real process-based executor.

The paper's platform is a 64-core AMD EPYC 9554.  CPython's GIL (and
this container's single core) make real thread scaling unreproducible,
so scaling experiments run on a *deterministic machine model*: the real
counting run produces exact per-root work and memory measurements
(:class:`repro.counting.counters.Counters`), a scheduler distributes
those tasks over modeled threads, and :mod:`repro.perfmodel` converts
work + cache pressure into modeled seconds.  A `multiprocessing`-based
executor (:mod:`repro.parallel.pool`) provides honest process
parallelism for real deployments.
"""

from repro.parallel.machine import (
    MachineSpec,
    EPYC_9554,
    GPU_V100,
    GPU_A100,
    GPUSpec,
)
from repro.parallel.sched import (
    Scheduler,
    StaticScheduler,
    DynamicScheduler,
    CyclicScheduler,
    Assignment,
)
from repro.parallel.simulate import (
    PhaseTime,
    simulate_counting,
    simulate_ordering,
    scaling_curve,
)
from repro.parallel.pool import (
    build_forest_processes,
    count_all_sizes_processes,
    count_kcliques_processes,
    per_vertex_counts_processes,
)
from repro.parallel.runtime import ParallelRuntime, plan_chunks
from repro.parallel.shm import (
    SharedGraphPair,
    SharedGraphSpec,
    attach_graph_pair,
    publish_graph_pair,
)

__all__ = [
    "MachineSpec",
    "EPYC_9554",
    "GPU_V100",
    "GPU_A100",
    "GPUSpec",
    "Scheduler",
    "StaticScheduler",
    "DynamicScheduler",
    "CyclicScheduler",
    "Assignment",
    "PhaseTime",
    "simulate_counting",
    "simulate_ordering",
    "scaling_curve",
    "count_kcliques_processes",
    "count_all_sizes_processes",
    "per_vertex_counts_processes",
    "build_forest_processes",
    "ParallelRuntime",
    "plan_chunks",
    "SharedGraphPair",
    "SharedGraphSpec",
    "publish_graph_pair",
    "attach_graph_pair",
]
