"""Result containers for the end-to-end pipeline."""

from __future__ import annotations

from dataclasses import dataclass

from repro.counting.sct import CountResult
from repro.ordering.base import Ordering
from repro.ordering.heuristic import HeuristicDecision
from repro.parallel.simulate import PhaseTime
from repro.runtime.budget import BudgetSpent

__all__ = ["PhaseBreakdown", "CliqueCountResult"]


@dataclass(frozen=True)
class PhaseBreakdown:
    """Modeled per-phase seconds (the Table III / Table V quantities).

    ``heuristic_seconds`` covers the Sec. III-E measurement pass;
    ``ordering_seconds`` and ``counting_seconds`` model the two main
    phases at the configured thread count.
    """

    heuristic_seconds: float
    ordering_seconds: float
    counting_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.heuristic_seconds + self.ordering_seconds + self.counting_seconds


@dataclass
class CliqueCountResult:
    """Everything a PivotScale run produces.

    Attributes
    ----------
    count / all_counts / k:
        Exact clique counts (see
        :class:`~repro.counting.sct.CountResult`).
    decision:
        The heuristic's measurements and choice (``None`` when an
        ordering was forced).
    ordering:
        The ordering actually used.
    max_out_degree:
        The DAG's maximum out-degree (the ordering-quality metric).
    counting:
        The raw counting run with counters and per-root work.
    counting_phase / phases:
        Machine-model timing detail.
    wall_seconds:
        Real (single-core Python) wall-clock of the counting pass —
        reported honestly alongside the model.
    approximate:
        ``True`` when the graceful-degradation ladder replaced part of
        the run with a sampling estimate — ``count``/``all_counts`` are
        then unbiased floats, not exact ints.
    degraded_from:
        Comma-joined record of what was degraded away from (e.g.
        ``"wordarray"`` after a kernel fallback, ``"exact"`` after
        budget-exhaustion sampling, or both).
    budget_spent:
        The run controller's final meter (nodes, seconds, peak memory,
        roots completed); ``None`` for unsupervised runs.
    """

    count: int | float | None
    all_counts: list[int] | list[float] | None
    k: int | None
    decision: HeuristicDecision | None
    ordering: Ordering
    max_out_degree: int
    counting: CountResult
    counting_phase: PhaseTime
    phases: PhaseBreakdown
    wall_seconds: float
    approximate: bool = False
    degraded_from: str | None = None
    budget_spent: BudgetSpent | None = None

    @property
    def total_model_seconds(self) -> float:
        """Headline modeled end-to-end time (Fig. 12 / Table V cell)."""
        return self.phases.total_seconds
