"""End-to-end configuration for the PivotScale pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CountingError, ParallelModelError
from repro.ordering.heuristic import HeuristicConfig
from repro.parallel.machine import EPYC_9554, MachineSpec
from repro.parallel.sched import DynamicScheduler, Scheduler
from repro.runtime.budget import Budget
from repro.runtime.controller import RunController

__all__ = ["PivotScaleConfig"]

_VALID_ORDERINGS = {
    None,
    "heuristic",
    "core",
    "degree",
    "approx_core",
    "kcore",
    "centrality",
}


@dataclass
class PivotScaleConfig:
    """Knobs of the full pipeline, defaulting to the paper's choices.

    Attributes
    ----------
    structure:
        Subgraph structure; ``"remap"`` is PivotScale's default
        (Sec. IV), ``"dense"``/``"sparse"`` reproduce the ablations.
    kernel:
        Bitset-kernel backend for the counting hot path:
        ``"bigint"`` (default; Python big-int masks) or
        ``"wordarray"`` (NumPy uint64 word arrays with fused
        vectorized intersect/popcount).  Counts and counters are
        backend-invariant (guarded by ``tests/test_differential.py``).
    ordering:
        ``"heuristic"`` (default) runs the Sec. III-E selector; a
        concrete name forces that ordering (``"core"``, ``"degree"``,
        ``"approx_core"``, ``"kcore"``, ``"centrality"``).
    threads:
        Modeled thread count for phase times (the paper uses 64).
    processes:
        Real worker-process count for the counting phase.  ``None``
        (default) and ``1`` run serially in-process; ``>= 2`` routes
        counting through the process-parallel runtime
        (:mod:`repro.parallel.pool`) — exact, bit-identical counts,
        shared-memory graphs, dynamic chunk scheduling.  Orthogonal to
        ``threads``, which only drives the *modeled* phase times.
    par_chunks:
        Chunks per process for the parallel runtime's dynamic
        scheduler (oversubscription factor; more, smaller chunks
        improve load balance on skewed graphs).
    machine:
        Machine model for phase times.
    scheduler:
        Task scheduler for the counting phase model.
    heuristic:
        Thresholds + eps for the selector / core approximation.
    effective_num_vertices:
        Paper-scale ``|V|`` when counting a scaled-down analog
        (see :mod:`repro.datasets`); ``None`` uses the graph's own.
    deadline_seconds / max_nodes / max_memory_bytes:
        Resilience budgets (``None`` = unlimited): wall-clock deadline,
        recursion-node cap, and per-root memory watermark enforced by
        the :class:`~repro.runtime.RunController`.
    checkpoint_path / resume:
        JSON checkpoint location and whether to resume from it; a
        resumed all-k run is bit-identical to an uninterrupted one.
    degrade:
        Enable the graceful-degradation ladder (kernel fallback and
        budget-exhaustion root sampling) instead of hard failure.
    checkpoint_every:
        Autosave period in completed roots.
    forest:
        Materialized-SCT-forest policy: ``"auto"`` (default — build a
        forest only when the workload asks several questions of one
        graph), ``"build"`` (always build, and save to ``forest_path``
        when set), ``"use"`` (load a previously saved forest from
        ``forest_path`` and serve every query from it), or ``"off"``
        (always re-recurse).
    forest_path:
        Where ``forest="build"`` saves / ``forest="use"`` loads the
        ``.npz`` forest (next to checkpoints).
    shard_mb:
        Out-of-core watermark in MiB.  When set, counting runs through
        the crash-safe shard runtime (:mod:`repro.shard`): the root
        range is cut into vertex shards whose estimated CSR-slice
        footprint fits under the watermark, each shard streams from
        mmap-backed spill files under ``spill_dir``, and completed
        shards are recorded in a ledger so a killed run resumes
        bit-identically (``resume=True`` works *without* a
        ``checkpoint_path`` in this mode — the ledger is the resume
        mechanism).  Counts are bit-identical to the in-memory path.
    spill_dir:
        Directory for shard spill files and the ledger; required when
        ``shard_mb`` is set.
    shard_retries:
        Bounded retries per failed shard (respill + recount with
        seeded exponential backoff) before the degradation ladder
        engages (default 3).
    dynamic:
        Edge-stream update policy for materialized forests (see
        :mod:`repro.counting.dynamic`): ``None`` (default — static
        graph, no incremental path), ``"patch"`` (keep the build-time
        order, recompute only dirty roots), ``"reorder"`` (full
        rebuild under a fresh degeneracy order on every batch), or
        ``"auto"`` (patch until cumulative edits exceed
        ``reorder_ratio x |E|``, then reorder).
    reorder_ratio:
        The ``"auto"`` policy's patch budget as a fraction of the
        edited graph's edge count (default 0.25).
    """

    structure: str = "remap"
    kernel: str = "bigint"
    ordering: str | None = "heuristic"
    threads: int = 64
    processes: int | None = None
    par_chunks: int = 4
    machine: MachineSpec = EPYC_9554
    scheduler: Scheduler = field(default_factory=DynamicScheduler)
    heuristic: HeuristicConfig = field(default_factory=HeuristicConfig)
    effective_num_vertices: float | None = None
    deadline_seconds: float | None = None
    max_nodes: int | None = None
    max_memory_bytes: int | None = None
    checkpoint_path: str | None = None
    resume: bool = False
    degrade: bool = False
    checkpoint_every: int = 64
    forest: str = "auto"
    forest_path: str | None = None
    shard_mb: float | None = None
    spill_dir: str | None = None
    shard_retries: int = 3
    dynamic: str | None = None
    reorder_ratio: float = 0.25

    def __post_init__(self) -> None:
        if self.structure not in ("dense", "sparse", "remap"):
            raise CountingError(f"unknown structure {self.structure!r}")
        from repro.kernels import KERNELS

        if self.kernel not in KERNELS:
            raise CountingError(f"unknown kernel {self.kernel!r}")
        if self.ordering not in _VALID_ORDERINGS:
            raise CountingError(f"unknown ordering {self.ordering!r}")
        if self.threads < 1:
            raise ParallelModelError("threads must be >= 1")
        if self.processes is not None and self.processes < 1:
            raise ParallelModelError("processes must be >= 1")
        if self.par_chunks < 1:
            raise ParallelModelError("par_chunks must be >= 1")
        # Budget() validates the limits; build one eagerly so a bad
        # config fails at construction, not mid-run.
        self.budget = Budget(
            deadline_seconds=self.deadline_seconds,
            max_nodes=self.max_nodes,
            max_memory_bytes=self.max_memory_bytes,
        )
        if (
            self.resume
            and self.checkpoint_path is None
            and self.shard_mb is None
        ):
            raise CountingError(
                "resume=True requires a checkpoint_path (or shard_mb, "
                "where the shard ledger is the resume mechanism)"
            )
        if self.shard_mb is not None and self.shard_mb <= 0:
            raise CountingError("shard_mb must be > 0")
        if self.shard_mb is not None and self.spill_dir is None:
            raise CountingError("shard_mb requires a spill_dir")
        if self.shard_retries < 0:
            raise CountingError("shard_retries must be >= 0")
        if self.checkpoint_every < 1:
            raise CountingError("checkpoint_every must be >= 1")
        if self.forest not in ("auto", "build", "use", "off"):
            raise CountingError(
                f"unknown forest policy {self.forest!r}; "
                "expected auto/build/use/off"
            )
        if self.forest == "use" and self.forest_path is None:
            raise CountingError('forest="use" requires a forest_path')
        if self.dynamic is not None:
            from repro.counting.dynamic import POLICIES

            if self.dynamic not in POLICIES:
                raise CountingError(
                    f"unknown dynamic policy {self.dynamic!r}; "
                    f"expected one of {POLICIES} (or None)"
                )
        if self.reorder_ratio <= 0:
            raise CountingError("reorder_ratio must be > 0")

    @property
    def wants_controller(self) -> bool:
        """Whether any resilience knob deviates from the defaults."""
        return (
            not self.budget.unlimited
            or self.checkpoint_path is not None
            or self.resume
            or self.degrade
        )

    def make_controller(self, *, faults=None, clock=None) -> RunController | None:
        """Build the run controller these knobs describe.

        Returns ``None`` when every resilience knob is at its default
        and no faults are injected, so the unsupervised fast path stays
        untouched.
        """
        if not self.wants_controller and faults is None:
            return None
        return RunController(
            self.budget,
            checkpoint_path=self.checkpoint_path,
            # In shard mode resume may be set without a checkpoint_path
            # (the shard ledger is the resume mechanism); the controller
            # itself only resumes from a JSON checkpoint.
            resume=self.resume and self.checkpoint_path is not None,
            degrade=self.degrade,
            faults=faults,
            clock=clock,
            checkpoint_every=self.checkpoint_every,
        )
