"""End-to-end configuration for the PivotScale pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CountingError, ParallelModelError
from repro.ordering.heuristic import HeuristicConfig
from repro.parallel.machine import EPYC_9554, MachineSpec
from repro.parallel.sched import DynamicScheduler, Scheduler

__all__ = ["PivotScaleConfig"]

_VALID_ORDERINGS = {
    None,
    "heuristic",
    "core",
    "degree",
    "approx_core",
    "kcore",
    "centrality",
}


@dataclass
class PivotScaleConfig:
    """Knobs of the full pipeline, defaulting to the paper's choices.

    Attributes
    ----------
    structure:
        Subgraph structure; ``"remap"`` is PivotScale's default
        (Sec. IV), ``"dense"``/``"sparse"`` reproduce the ablations.
    kernel:
        Bitset-kernel backend for the counting hot path:
        ``"bigint"`` (default; Python big-int masks) or
        ``"wordarray"`` (NumPy uint64 word arrays with fused
        vectorized intersect/popcount).  Counts and counters are
        backend-invariant (guarded by ``tests/test_differential.py``).
    ordering:
        ``"heuristic"`` (default) runs the Sec. III-E selector; a
        concrete name forces that ordering (``"core"``, ``"degree"``,
        ``"approx_core"``, ``"kcore"``, ``"centrality"``).
    threads:
        Modeled thread count for phase times (the paper uses 64).
    machine:
        Machine model for phase times.
    scheduler:
        Task scheduler for the counting phase model.
    heuristic:
        Thresholds + eps for the selector / core approximation.
    effective_num_vertices:
        Paper-scale ``|V|`` when counting a scaled-down analog
        (see :mod:`repro.datasets`); ``None`` uses the graph's own.
    """

    structure: str = "remap"
    kernel: str = "bigint"
    ordering: str | None = "heuristic"
    threads: int = 64
    machine: MachineSpec = EPYC_9554
    scheduler: Scheduler = field(default_factory=DynamicScheduler)
    heuristic: HeuristicConfig = field(default_factory=HeuristicConfig)
    effective_num_vertices: float | None = None

    def __post_init__(self) -> None:
        if self.structure not in ("dense", "sparse", "remap"):
            raise CountingError(f"unknown structure {self.structure!r}")
        from repro.kernels import KERNELS

        if self.kernel not in KERNELS:
            raise CountingError(f"unknown kernel {self.kernel!r}")
        if self.ordering not in _VALID_ORDERINGS:
            raise CountingError(f"unknown ordering {self.ordering!r}")
        if self.threads < 1:
            raise ParallelModelError("threads must be >= 1")
