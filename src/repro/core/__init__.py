"""PivotScale's public pipeline: heuristic -> ordering -> counting.

This is the paper's end-to-end system (Secs. III-V): measure the
heuristic inputs, pick the ordering, directionalize, count with the
remapped subgraph structure, and report both exact counts and modeled
phase times on the 64-core reference machine.
"""

from repro.core.config import PivotScaleConfig
from repro.core.result import CliqueCountResult, PhaseBreakdown
from repro.core.pivotscale import count_cliques, count_cliques_all_sizes
from repro.core.hybrid import count_cliques_hybrid, HybridResult

__all__ = [
    "PivotScaleConfig",
    "CliqueCountResult",
    "PhaseBreakdown",
    "count_cliques",
    "count_cliques_all_sizes",
    "count_cliques_hybrid",
    "HybridResult",
]
