"""Hybrid enumeration/pivoting counter (paper Sec. VI-H).

"Pivoting algorithms are more suited for counting large cliques in
graphs and enumeration algorithms perform well for smaller cliques.  A
hybrid algorithm which performs well for all clique sizes can easily be
implemented by switching with a simple heuristic e.g. (k >= 8)."

This module is that hybrid: enumeration (Arb-Count style) below the
switch point, the full PivotScale pipeline at and above it.  The switch
point defaults to the paper's ``k = 8`` crossover, which PivotScale's
parallel scalability moved down from Pivoter's ``k = 10``.

With ``config.degrade`` the hybrid is also the middle rung of the
graceful-degradation ladder: an enumeration run that blows its node
budget is retried with the pivoting pipeline (whose tree size is
k-insensitive) under a *fresh* controller, and if pivoting's budget
dies too, the pipeline itself falls through to root sampling and
returns a flagged-approximate result.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.core.config import PivotScaleConfig
from repro.core.pivotscale import count_cliques
from repro.counting.arbcount import count_kcliques_enumeration
from repro.counting.sct import CountResult
from repro.errors import BudgetExceededError, CountingError
from repro.graph.csr import CSRGraph
from repro.ordering.degree import degree_ordering
from repro.ordering.directionalize import max_out_degree
from repro.parallel.simulate import simulate_counting, simulate_ordering

__all__ = ["HybridResult", "count_cliques_hybrid", "DEFAULT_SWITCH_K"]

#: The paper's crossover: pivoting wins from k = 8 on large graphs.
DEFAULT_SWITCH_K = 8


@dataclass
class HybridResult:
    """Outcome of a hybrid count.

    ``algorithm`` records which engine ran ("enumeration" or
    "pivoting"); ``model_seconds`` is the modeled 64-thread total for
    the chosen path so the two regimes are comparable.
    ``approximate``/``degraded_from`` mirror
    :class:`~repro.core.result.CliqueCountResult` when the degradation
    ladder was exercised.
    """

    count: int | float
    k: int
    algorithm: str
    model_seconds: float
    counting: CountResult
    approximate: bool = False
    degraded_from: str | None = None


def count_cliques_hybrid(
    g: CSRGraph,
    k: int,
    *,
    switch_k: int = DEFAULT_SWITCH_K,
    config: PivotScaleConfig | None = None,
) -> HybridResult:
    """Count k-cliques with enumeration below ``switch_k``, pivoting
    at or above it.

    Enumeration uses the degree ordering (Arb-Count's default regime
    for small k, where ordering time dominates); pivoting runs the
    full PivotScale pipeline including its ordering heuristic.  Each
    attempt gets its own controller from ``config``'s resilience knobs
    so an earlier rung's exhausted budget does not starve the retry.
    """
    if k < 1:
        raise CountingError(f"clique size k must be >= 1, got {k}")
    if switch_k < 1:
        raise CountingError("switch_k must be >= 1")
    cfg = config or PivotScaleConfig()

    def pivoting(degraded_from: str | None = None) -> HybridResult:
        r = count_cliques(g, k, cfg)
        joined = (
            r.degraded_from
            if degraded_from is None
            else ",".join(filter(None, (degraded_from, r.degraded_from)))
            or degraded_from
        )
        return HybridResult(
            count=r.count or 0,
            k=k,
            algorithm="pivoting",
            model_seconds=r.total_model_seconds,
            counting=r.counting,
            approximate=r.approximate,
            degraded_from=joined,
        )

    with obs.span("hybrid.count", k=k, switch_k=switch_k):
        if k >= switch_k:
            return pivoting()
        with obs.phase("ordering"):
            ordering = degree_ordering(g)
        ctl = cfg.make_controller()
        try:
            result = count_kcliques_enumeration(
                g,
                k,
                ordering,
                structure=cfg.structure,
                kernel=cfg.kernel,
                controller=ctl,
            )
        except BudgetExceededError:
            if ctl is None or not ctl.degrade:
                raise
            # Middle rung: the enumeration tree exploded; the pivoting
            # tree for the same k is far smaller — retry before
            # sampling.
            obs.degradation("enumeration_retry", engine="hybrid", k=k)
            return pivoting(degraded_from="enumeration")
    eff_nv = cfg.effective_num_vertices or float(g.num_vertices)
    work_scale = eff_nv / max(1.0, float(g.num_vertices))
    seconds = (
        simulate_ordering(
            ordering.cost, threads=cfg.threads, machine=cfg.machine,
            work_scale=work_scale,
        ).seconds
        + simulate_counting(
            result,
            threads=cfg.threads,
            machine=cfg.machine,
            effective_num_vertices=eff_nv,
            max_out_degree=max_out_degree(g, ordering),
            work_scale=work_scale,
        ).seconds
    )
    return HybridResult(
        count=result.count or 0,
        k=k,
        algorithm="enumeration",
        model_seconds=seconds,
        counting=result,
        approximate=result.approximate,
        degraded_from=result.degraded_from,
    )
