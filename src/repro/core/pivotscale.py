"""The PivotScale end-to-end driver.

``count_cliques(graph, k)`` runs the whole paper pipeline:

1. measure the heuristic inputs and pick the ordering (Sec. III-E) —
   unless the configuration forces one;
2. compute the ordering and directionalize (Sec. III);
3. count with the SCT recursion over the configured subgraph structure
   (Sec. IV-V);
4. attach modeled phase times for the configured machine/thread count.

The counts are exact; the times are machine-model outputs (see
DESIGN.md on the simulation substitution).
"""

from __future__ import annotations

import time

from repro import obs
from repro.core.config import PivotScaleConfig
from repro.core.result import CliqueCountResult, PhaseBreakdown
from repro.counting.sct import SCTEngine
from repro.errors import BudgetExceededError, CountingError
from repro.graph.csr import CSRGraph
from repro.ordering.approx_core import approx_core_ordering
from repro.ordering.base import Ordering
from repro.ordering.centrality import centrality_ordering
from repro.ordering.core import core_ordering
from repro.ordering.degree import degree_ordering
from repro.ordering.directionalize import directionalize
from repro.ordering.heuristic import HeuristicDecision, compute_ordering, select_ordering
from repro.ordering.kcore import kcore_ordering
from repro.parallel.simulate import simulate_counting, simulate_ordering
from repro.perfmodel.cost import CostModel
from repro.runtime.controller import RunController
from repro.runtime.degrade import degrade_to_sampling

__all__ = ["count_cliques", "count_cliques_all_sizes"]


def _materialize_ordering(
    g: CSRGraph, config: PivotScaleConfig
) -> tuple[Ordering, HeuristicDecision | None]:
    name = config.ordering or "heuristic"
    if name == "heuristic":
        decision = select_ordering(
            g,
            config.heuristic,
            effective_num_vertices=config.effective_num_vertices,
        )
        return compute_ordering(g, decision, config.heuristic), decision
    if name == "core":
        return core_ordering(g), None
    if name == "degree":
        return degree_ordering(g), None
    if name == "approx_core":
        return approx_core_ordering(g, eps=config.heuristic.eps), None
    if name == "kcore":
        return kcore_ordering(g), None
    if name == "centrality":
        return centrality_ordering(g), None
    raise CountingError(f"unknown ordering {name!r}")  # pragma: no cover


def _run(
    g: CSRGraph,
    k: int | None,
    config: PivotScaleConfig,
    max_k: int | None = None,
    controller: RunController | None = None,
) -> CliqueCountResult:
    if g.directed:
        raise CountingError("count_cliques expects an undirected graph")
    with obs.span("pivotscale.run", k=k, max_k=max_k,
                  structure=config.structure):
        with obs.span("pivotscale.ordering"), obs.phase("ordering"):
            ordering, decision = _materialize_ordering(g, config)
            dag = directionalize(g, ordering)
        engine = SCTEngine(
            g, dag, structure=config.structure, kernel=config.kernel
        )
        ctl = controller if controller is not None else config.make_controller()
        procs = config.processes or 1
        wall0 = time.perf_counter()
        try:
            if config.shard_mb is not None:
                from repro.shard import count_sharded

                counting = count_sharded(
                    g, dag, k=k, max_k=max_k,
                    structure=config.structure, kernel=config.kernel,
                    shard_mb=config.shard_mb, spill_dir=config.spill_dir,
                    resume=config.resume, controller=ctl,
                    degrade=config.degrade, processes=procs,
                    chunks_per_process=config.par_chunks,
                    max_retries=config.shard_retries,
                )
            elif procs > 1:
                from repro.parallel.pool import (
                    count_all_sizes_processes,
                    count_kcliques_processes,
                )

                counting = (
                    count_kcliques_processes(
                        g, k, dag, processes=procs,
                        structure=config.structure, kernel=config.kernel,
                        chunks_per_process=config.par_chunks,
                        controller=ctl, degrade=config.degrade,
                    )
                    if k is not None
                    else count_all_sizes_processes(
                        g, dag, max_k=max_k, processes=procs,
                        structure=config.structure, kernel=config.kernel,
                        chunks_per_process=config.par_chunks,
                        controller=ctl, degrade=config.degrade,
                    )
                )
            else:
                counting = (
                    engine.count(k, controller=ctl)
                    if k is not None
                    else engine.count_all(max_k=max_k, controller=ctl)
                )
        except BudgetExceededError as e:
            if ctl is None or not ctl.degrade:
                raise
            # Bottom rung of the ladder: keep the exact per-root
            # progress, estimate the uncounted roots, flag the result
            # approximate.  The parallel runtime checkpoints progress
            # at chunk granularity in its own state format, so the
            # sampling estimate falls back to the whole graph there.
            counting = degrade_to_sampling(
                engine, k=k, max_k=max_k,
                state=ctl.state() if procs == 1 else None, cause=e,
            )
        wall = time.perf_counter() - wall0

    eff_nv = config.effective_num_vertices or float(g.num_vertices)
    # Phase times for analogs are extrapolated to paper scale with a
    # common linear factor, so within-graph phase ratios stay measured.
    work_scale = eff_nv / max(1.0, float(g.num_vertices))
    counting_phase = simulate_counting(
        counting,
        threads=config.threads,
        machine=config.machine,
        scheduler=config.scheduler,
        effective_num_vertices=eff_nv,
        max_out_degree=dag.max_degree,
        work_scale=work_scale,
    )
    ordering_phase = simulate_ordering(
        ordering.cost,
        threads=config.threads,
        machine=config.machine,
        work_scale=work_scale,
    )
    # Heuristic pass: one scan of the hub's neighborhood plus the
    # common-neighbor intersection — O(hub degree) work.
    hub_work = float(2 * g.max_degree + g.num_vertices / config.threads)
    heuristic_seconds = (
        CostModel(config.machine)
        .estimate_rounds((hub_work,), 0.0, threads=config.threads)
        .seconds
        if decision is not None
        else 0.0
    )
    phases = PhaseBreakdown(
        heuristic_seconds=heuristic_seconds,
        ordering_seconds=ordering_phase.seconds,
        counting_seconds=counting_phase.seconds,
    )
    return CliqueCountResult(
        count=counting.count,
        all_counts=counting.all_counts,
        k=k,
        decision=decision,
        ordering=ordering,
        max_out_degree=dag.max_degree,
        counting=counting,
        counting_phase=counting_phase,
        phases=phases,
        wall_seconds=wall,
        approximate=counting.approximate,
        degraded_from=counting.degraded_from,
        budget_spent=ctl.spent_snapshot() if ctl is not None else None,
    )


def count_cliques(
    g: CSRGraph,
    k: int,
    config: PivotScaleConfig | None = None,
    controller: RunController | None = None,
) -> CliqueCountResult:
    """Count k-cliques with the full PivotScale pipeline.

    ``controller`` overrides the one the config's resilience knobs
    would build (budgets, checkpoint/resume, degradation, faults).

    >>> from repro.graph.generators import complete_graph
    >>> count_cliques(complete_graph(6), 3).count
    20
    """
    if k < 1:
        raise CountingError(f"clique size k must be >= 1, got {k}")
    return _run(g, k, config or PivotScaleConfig(), controller=controller)


def count_cliques_all_sizes(
    g: CSRGraph,
    config: PivotScaleConfig | None = None,
    max_k: int | None = None,
    controller: RunController | None = None,
) -> CliqueCountResult:
    """Count cliques of every size (the Sec. V-A all-k variant)."""
    return _run(
        g, None, config or PivotScaleConfig(), max_k=max_k, controller=controller
    )
