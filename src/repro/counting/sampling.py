"""Approximate k-clique counting by sampling.

The paper's related work surveys approximation via sampling (Turán
shadow, color-based sampling) as the alternative when exact counting is
too expensive.  Two estimators are provided, both *unbiased* and both
reusing the exact SCT engine on a sparsified graph, so accuracy can be
traded for time without new counting machinery:

* **vertex sampling** — keep each vertex independently with probability
  ``p``; every k-clique survives with probability ``p^k``, so
  ``count(sample) / p^k`` is unbiased.
* **color sparsification** — partition vertices into ``t`` color
  classes uniformly; keep only monochromatic edges and count within
  classes.  A k-clique survives iff all members share a color
  (probability ``t^{1-k}``), giving the color-based estimator of Ye et
  al. [49] in its simplest form.  Denser locally, sparser globally —
  typically lower variance per unit work on clique-rich graphs.

Averaging ``repeats`` independent estimates tightens the estimate as
``1/sqrt(repeats)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.counting.sct import SCTEngine, count_kcliques
from repro.errors import CountingError
from repro.graph.build import from_edge_array, induced_subgraph
from repro.graph.csr import CSRGraph
from repro.ordering.core import core_ordering
from repro.runtime.controller import RunController

__all__ = [
    "ApproxCount",
    "sample_count_vertex",
    "sample_count_color",
    "sample_count_roots",
    "sample_all_sizes_roots",
]


@dataclass(frozen=True)
class ApproxCount:
    """An unbiased estimate with its per-repeat spread.

    ``std_error`` is the standard error of the mean across repeats
    (0 when ``repeats == 1``).
    """

    estimate: float
    std_error: float
    k: int
    repeats: int
    method: str


def _check(k: int, repeats: int) -> None:
    if k < 1:
        raise CountingError(f"clique size k must be >= 1, got {k}")
    if repeats < 1:
        raise CountingError("repeats must be >= 1")


def _summarize(samples: list[float], k: int, method: str) -> ApproxCount:
    arr = np.asarray(samples, dtype=np.float64)
    se = float(arr.std(ddof=1) / np.sqrt(arr.size)) if arr.size > 1 else 0.0
    return ApproxCount(
        estimate=float(arr.mean()),
        std_error=se,
        k=k,
        repeats=arr.size,
        method=method,
    )


def sample_count_vertex(
    g: CSRGraph,
    k: int,
    p: float,
    *,
    repeats: int = 5,
    seed: int = 0,
    controller: RunController | None = None,
) -> ApproxCount:
    """Vertex-sampling estimator: count on a ``p``-fraction induced
    subgraph, scale by ``p^{-k}``.

    ``controller`` is checked at repeat granularity (one repeat = one
    root-equivalent task) for budgets and fault injection.
    """
    _check(k, repeats)
    if not 0.0 < p <= 1.0:
        raise CountingError("sampling probability p must lie in (0, 1]")
    rng = np.random.default_rng(seed)
    samples: list[float] = []
    for i in range(repeats):
        if controller is not None:
            controller.tick()
        keep = np.flatnonzero(rng.random(g.num_vertices) < p)
        sub = induced_subgraph(g, keep)
        r = count_kcliques(sub, k, core_ordering(sub))
        samples.append(float(r.count or 0) / p**k)
        if controller is not None:
            controller.charge_nodes(r.counters.function_calls)
            controller.complete_root(i)
    return _summarize(samples, k, "vertex-sampling")


def sample_count_color(
    g: CSRGraph,
    k: int,
    num_colors: int,
    *,
    repeats: int = 5,
    seed: int = 0,
    controller: RunController | None = None,
) -> ApproxCount:
    """Color-sparsification estimator: keep monochromatic edges only,
    scale by ``t^{k-1}``."""
    _check(k, repeats)
    if num_colors < 1:
        raise CountingError("num_colors must be >= 1")
    rng = np.random.default_rng(seed)
    edges = g.edge_array()
    samples: list[float] = []
    for i in range(repeats):
        if controller is not None:
            controller.tick()
        colors = rng.integers(0, num_colors, size=g.num_vertices)
        mono = edges[colors[edges[:, 0]] == colors[edges[:, 1]]]
        sub = from_edge_array(mono, num_vertices=g.num_vertices)
        r = count_kcliques(sub, k, core_ordering(sub))
        samples.append(float(r.count or 0) * float(num_colors) ** (k - 1))
        if controller is not None:
            controller.charge_nodes(r.counters.function_calls)
            controller.complete_root(i)
    return _summarize(samples, k, "color-sparsification")


def _root_sample_p(remaining: int, p: float | None) -> float:
    """Default sample rate: ~256 roots per repeat, at least 5%."""
    if p is not None:
        if not 0.0 < p <= 1.0:
            raise CountingError("sampling probability p must lie in (0, 1]")
        return p
    return min(1.0, max(0.05, 256.0 / remaining))


def sample_count_roots(
    engine: SCTEngine,
    k: int,
    start_root: int = 0,
    *,
    p: float | None = None,
    repeats: int = 3,
    seed: int = 0,
) -> ApproxCount:
    """Root-sampling estimator over roots ``[start_root, n)``.

    The SCT total decomposes as ``Σ_v c_v`` over per-root counts, so
    keeping each remaining root with probability ``p`` and counting it
    *exactly* gives the unbiased Horvitz-Thompson estimate
    ``Σ_sampled c_v / p``.  This is the estimator the graceful-
    degradation ladder folds in for the roots an exhausted budget left
    uncounted (see :mod:`repro.runtime.degrade`): unlike whole-graph
    vertex sampling it composes exactly with partial exact progress.
    """
    _check(k, repeats)
    n = engine.graph.num_vertices
    remaining = n - start_root
    if remaining <= 0:
        return ApproxCount(0.0, 0.0, k, repeats, "root-sampling")
    p = _root_sample_p(remaining, p)
    rng = np.random.default_rng(seed)
    samples: list[float] = []
    for _ in range(repeats):
        keep = start_root + np.flatnonzero(rng.random(remaining) < p)
        c = sum(engine.count_root(int(v), k) for v in keep)
        samples.append(float(c) / p)
    return _summarize(samples, k, "root-sampling")


def sample_all_sizes_roots(
    engine: SCTEngine,
    start_root: int = 0,
    *,
    max_k: int | None = None,
    p: float | None = None,
    repeats: int = 3,
    seed: int = 0,
) -> tuple[list[float], float]:
    """All-k companion of :func:`sample_count_roots`.

    Returns ``(estimates, total_std_error)`` where ``estimates[s]``
    estimates the s-cliques contributed by roots ``[start_root, n)``
    and ``total_std_error`` is the spread of the summed estimate
    across repeats.
    """
    if repeats < 1:
        raise CountingError("repeats must be >= 1")
    n = engine.graph.num_vertices
    length, _cap = engine._allk_shape(max_k)
    remaining = n - start_root
    if remaining <= 0:
        return [0.0] * length, 0.0
    p = _root_sample_p(remaining, p)
    rng = np.random.default_rng(seed)
    rows: list[list[float]] = []
    for _ in range(repeats):
        keep = start_root + np.flatnonzero(rng.random(remaining) < p)
        row = [0.0] * length
        for v in keep:
            for s, c in enumerate(engine.count_root_all(int(v), max_k)):
                row[s] += c
        rows.append([c / p for c in row])
    arr = np.asarray(rows, dtype=np.float64)
    means = arr.mean(axis=0)
    totals = arr.sum(axis=1)
    se = (
        float(totals.std(ddof=1) / np.sqrt(totals.size))
        if totals.size > 1
        else 0.0
    )
    return [float(c) for c in means], se
