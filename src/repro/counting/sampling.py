"""Approximate k-clique counting by sampling.

The paper's related work surveys approximation via sampling (Turán
shadow, color-based sampling) as the alternative when exact counting is
too expensive.  Two estimators are provided, both *unbiased* and both
reusing the exact SCT engine on a sparsified graph, so accuracy can be
traded for time without new counting machinery:

* **vertex sampling** — keep each vertex independently with probability
  ``p``; every k-clique survives with probability ``p^k``, so
  ``count(sample) / p^k`` is unbiased.
* **color sparsification** — partition vertices into ``t`` color
  classes uniformly; keep only monochromatic edges and count within
  classes.  A k-clique survives iff all members share a color
  (probability ``t^{1-k}``), giving the color-based estimator of Ye et
  al. [49] in its simplest form.  Denser locally, sparser globally —
  typically lower variance per unit work on clique-rich graphs.

Averaging ``repeats`` independent estimates tightens the estimate as
``1/sqrt(repeats)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.counting.sct import count_kcliques
from repro.errors import CountingError
from repro.graph.build import from_edge_array, induced_subgraph
from repro.graph.csr import CSRGraph
from repro.ordering.core import core_ordering

__all__ = ["ApproxCount", "sample_count_vertex", "sample_count_color"]


@dataclass(frozen=True)
class ApproxCount:
    """An unbiased estimate with its per-repeat spread.

    ``std_error`` is the standard error of the mean across repeats
    (0 when ``repeats == 1``).
    """

    estimate: float
    std_error: float
    k: int
    repeats: int
    method: str


def _check(k: int, repeats: int) -> None:
    if k < 1:
        raise CountingError(f"clique size k must be >= 1, got {k}")
    if repeats < 1:
        raise CountingError("repeats must be >= 1")


def _summarize(samples: list[float], k: int, method: str) -> ApproxCount:
    arr = np.asarray(samples, dtype=np.float64)
    se = float(arr.std(ddof=1) / np.sqrt(arr.size)) if arr.size > 1 else 0.0
    return ApproxCount(
        estimate=float(arr.mean()),
        std_error=se,
        k=k,
        repeats=arr.size,
        method=method,
    )


def sample_count_vertex(
    g: CSRGraph,
    k: int,
    p: float,
    *,
    repeats: int = 5,
    seed: int = 0,
) -> ApproxCount:
    """Vertex-sampling estimator: count on a ``p``-fraction induced
    subgraph, scale by ``p^{-k}``."""
    _check(k, repeats)
    if not 0.0 < p <= 1.0:
        raise CountingError("sampling probability p must lie in (0, 1]")
    rng = np.random.default_rng(seed)
    samples: list[float] = []
    for _ in range(repeats):
        keep = np.flatnonzero(rng.random(g.num_vertices) < p)
        sub = induced_subgraph(g, keep)
        c = count_kcliques(sub, k, core_ordering(sub)).count or 0
        samples.append(float(c) / p**k)
    return _summarize(samples, k, "vertex-sampling")


def sample_count_color(
    g: CSRGraph,
    k: int,
    num_colors: int,
    *,
    repeats: int = 5,
    seed: int = 0,
) -> ApproxCount:
    """Color-sparsification estimator: keep monochromatic edges only,
    scale by ``t^{k-1}``."""
    _check(k, repeats)
    if num_colors < 1:
        raise CountingError("num_colors must be >= 1")
    rng = np.random.default_rng(seed)
    edges = g.edge_array()
    samples: list[float] = []
    for _ in range(repeats):
        colors = rng.integers(0, num_colors, size=g.num_vertices)
        mono = edges[colors[edges[:, 0]] == colors[edges[:, 1]]]
        sub = from_edge_array(mono, num_vertices=g.num_vertices)
        c = count_kcliques(sub, k, core_ordering(sub)).count or 0
        samples.append(float(c) * float(num_colors) ** (k - 1))
    return _summarize(samples, k, "color-sparsification")
