"""Per-edge k-clique counts.

The natural companion to the per-vertex extension: for every edge
``(u, v)``, the number of k-cliques containing both endpoints.  Used in
dense-subgraph discovery and k-clique-densest-subgraph peeling (the
paper's community-detection motivation).

Attribution mirrors :mod:`repro.counting.pervertex`: at an SCT leaf
with held set ``H`` and pivot set ``Π`` contributing ``C(|Π|, j)``
k-cliques (``j = k - |H|``):

* a held-held pair appears in every one of them: ``C(|Π|, j)``;
* a held-pivot pair (pivot chosen): ``C(|Π| - 1, j - 1)``;
* a pivot-pivot pair (both chosen): ``C(|Π| - 2, j - 2)``.

Invariant (tested): summing over all edges gives
``C(k, 2) x (total k-cliques)``.
"""

from __future__ import annotations

from contextlib import nullcontext
from itertools import combinations

import numpy as np

from repro.counting.binomial import binomial
from repro.counting.structures import STRUCTURES
from repro.errors import CountingError
from repro.graph.csr import CSRGraph
from repro.kernels import BitsetKernel
from repro.ordering.base import Ordering
from repro.ordering.directionalize import directionalize
from repro.runtime.checkpoint import graph_fingerprint
from repro.runtime.controller import RunController

__all__ = ["per_edge_counts"]


def per_edge_counts(
    graph: CSRGraph,
    k: int,
    ordering: Ordering | np.ndarray | CSRGraph,
    structure: str = "remap",
    kernel: str | BitsetKernel | None = None,
    controller: RunController | None = None,
    forest=None,
) -> dict[tuple[int, int], int]:
    """k-clique count per edge, keyed by ``(min(u,v), max(u,v))``.

    Only edges participating in at least one k-clique appear (other
    edges implicitly count 0).  ``k >= 2``; for ``k == 2`` every edge
    maps to 1.

    ``forest`` may be a pre-built
    :class:`~repro.counting.forest.SCTForest` of this graph; the query
    is then answered from its materialized leaves without re-recursing.
    """
    if k < 2:
        raise CountingError(f"per-edge counts need k >= 2, got {k}")
    if forest is not None:
        return forest.per_edge(k)
    if graph.directed:
        raise CountingError("input graph must be undirected")
    if isinstance(ordering, CSRGraph):
        dag = ordering
        if not dag.directed:
            raise CountingError("pass a DAG or an ordering")
    else:
        dag = directionalize(graph, ordering)
    struct = STRUCTURES[structure](graph, dag, kernel=kernel)
    per: dict[tuple[int, int], int] = {}

    def credit(u: int, v: int, c: int) -> None:
        key = (u, v) if u < v else (v, u)
        per[key] = per.get(key, 0) + c

    if controller is not None:
        controller.begin(
            {
                "engine": "per-edge",
                "k": k,
                "structure": struct.name,
                "kernel": struct.kernel.name,
                "graph": graph_fingerprint(graph),
            }
        )
    with controller.guard() if controller is not None else nullcontext():
        for v in range(graph.num_vertices):
            if controller is not None:
                controller.tick()
            calls, peak = _root(struct, v, k, credit)
            if controller is not None:
                controller.charge_nodes(calls)
                controller.note_memory(peak)
                controller.complete_root(v)
    return per


def _root(struct, v: int, k: int, credit) -> tuple[int, int]:
    """Attribute one root; returns ``(recursion_calls, peak_bytes)``
    so the caller can meter the run controller."""
    ctx = struct.build(v)
    calls = 0
    d = ctx.d
    rows = ctx.rows
    pivot_select = ctx.kernel.pivot_select
    intersect = ctx.kernel.intersect
    out = [int(g) for g in ctx.out]
    full = (1 << d) - 1
    held_ids: list[int] = [v]
    pivot_ids: list[int] = []

    def leaf(pivots: int, held: int) -> None:
        j = k - held
        c_all = binomial(pivots, j)
        if c_all == 0:
            return
        c_hp = binomial(pivots - 1, j - 1)
        c_pp = binomial(pivots - 2, j - 2)
        for a, b in combinations(held_ids, 2):
            credit(a, b, c_all)
        if c_hp:
            for h in held_ids:
                for p in pivot_ids:
                    credit(h, p, c_hp)
        if c_pp:
            for a, b in combinations(pivot_ids, 2):
                credit(a, b, c_pp)

    def rec(P: int, held: int, pivots: int) -> None:
        nonlocal calls
        calls += 1
        pc = P.bit_count()
        if pc == 0 or held == k:
            if held <= k <= held + pivots:
                leaf(pivots, held)
            return
        if held + pivots + pc < k:
            return
        best, best_row, _best_cnt, _edges = pivot_select(rows, P, pc)
        pivot_ids.append(out[best])
        rec(best_row, held, pivots + 1)
        pivot_ids.pop()
        P &= ~(1 << best)
        cand = P & ~best_row
        while cand:
            low = cand & -cand
            w = low.bit_length() - 1
            held_ids.append(out[w])
            rec(intersect(rows, w, P), held + 1, pivots)
            held_ids.pop()
            P ^= low
            cand ^= low

    rec(full, 1, 0)
    return calls, ctx.memory_bytes
