"""Per-vertex k-clique counts — the paper's Sec. VIII extension.

"Simple changes to our code could easily enable per-vertex k-clique
counts": at each SCT leaf with held set ``H`` and pivot set ``Π``, the
leaf's ``C(|Π|, k - |H|)`` k-cliques all contain every held vertex, and
a pivot vertex ``u ∈ Π`` appears in exactly ``C(|Π| - 1, k - |H| - 1)``
of them.  Tracking the actual member ids along the recursion path makes
the attribution exact.

Invariant (tested): per-vertex counts sum to ``k x (total k-cliques)``.
"""

from __future__ import annotations

from contextlib import nullcontext

import numpy as np

from repro.counting.binomial import binomial
from repro.counting.counters import Counters
from repro.counting.structures import STRUCTURES
from repro.errors import CountingError
from repro.graph.csr import CSRGraph
from repro.kernels import BitsetKernel
from repro.ordering.base import Ordering
from repro.ordering.directionalize import directionalize
from repro.runtime.checkpoint import graph_fingerprint
from repro.runtime.controller import RunController

__all__ = ["per_vertex_counts", "attribute_root"]


def per_vertex_counts(
    graph: CSRGraph,
    k: int,
    ordering: Ordering | np.ndarray | CSRGraph,
    structure: str = "remap",
    kernel: str | BitsetKernel | None = None,
    controller: RunController | None = None,
    forest=None,
) -> list[int]:
    """Number of k-cliques containing each vertex (exact ints).

    A ``controller`` is consulted at root granularity for budgets and
    fault injection (attribution has no checkpoint state — a budget
    abort discards the run).

    ``forest`` may be a pre-built
    :class:`~repro.counting.forest.SCTForest` of this graph: the query
    is then served from its materialized leaves (identical counts, no
    re-recursion) — the fast path when several queries share one graph.
    """
    if k < 1:
        raise CountingError(f"clique size k must be >= 1, got {k}")
    if forest is not None:
        return forest.per_vertex(k)
    if graph.directed:
        raise CountingError("input graph must be undirected")
    if isinstance(ordering, CSRGraph):
        dag = ordering
        if not dag.directed:
            raise CountingError("pass a DAG or an ordering")
    else:
        dag = directionalize(graph, ordering)
    struct = STRUCTURES[structure](graph, dag, kernel=kernel)
    n = graph.num_vertices
    per: list[int] = [0] * n
    ctr = Counters()
    if controller is not None:
        controller.begin(
            {
                "engine": "per-vertex",
                "k": k,
                "structure": struct.name,
                "kernel": struct.kernel.name,
                "graph": graph_fingerprint(graph),
            }
        )
    with controller.guard() if controller is not None else nullcontext():
        for v in range(n):
            prev_calls = ctr.function_calls
            if controller is not None:
                controller.tick()
            _root(struct, v, k, per, ctr)
            if controller is not None:
                controller.charge_nodes(ctr.function_calls - prev_calls)
                controller.note_memory(ctr.peak_subgraph_bytes)
                controller.complete_root(v)
    return per


def attribute_root(
    struct, v: int, k: int, per: list[int], ctr: Counters
) -> None:
    """Public per-root attribution step — the parallel per-vertex
    workers' task unit.  Adds root ``v``'s exact contribution to every
    entry of ``per`` it touches, charging ``ctr`` exactly like the
    serial loop, so chunked attributions folded in any order equal the
    serial result."""
    _root(struct, v, k, per, ctr)


def _root(struct, v: int, k: int, per: list[int], ctr: Counters) -> None:
    ctx = struct.build(v)
    ctr.subgraph_builds += 1
    ctr.peak_subgraph_bytes = max(ctr.peak_subgraph_bytes, ctx.memory_bytes)
    d = ctx.d
    rows = ctx.rows
    pivot_select = ctx.kernel.pivot_select
    intersect = ctx.kernel.intersect
    out = [int(g) for g in ctx.out]
    full = (1 << d) - 1
    held_ids: list[int] = [v]
    pivot_ids: list[int] = []

    def leaf(pivots: int, held: int) -> None:
        ctr.leaves += 1
        j = k - held
        c = binomial(pivots, j)
        if c == 0:
            return
        for u in held_ids:
            per[u] += c
        c_in = binomial(pivots - 1, j - 1)
        if c_in:
            for u in pivot_ids:
                per[u] += c_in

    def rec(P: int, held: int, pivots: int) -> None:
        ctr.function_calls += 1
        pc = P.bit_count()
        if pc == 0 or held == k:
            if held <= k <= held + pivots:
                leaf(pivots, held)
            return
        if held + pivots + pc < k:
            ctr.early_terminations += 1
            return
        best, best_row, _best_cnt, _edges = pivot_select(rows, P, pc)
        pivot_ids.append(out[best])
        rec(best_row, held, pivots + 1)
        pivot_ids.pop()
        P &= ~(1 << best)
        cand = P & ~best_row
        while cand:
            low = cand & -cand
            w = low.bit_length() - 1
            held_ids.append(out[w])
            rec(intersect(rows, w, P), held + 1, pivots)
            held_ids.pop()
            P ^= low
            cand ^= low

    rec(full, 1, 0)
