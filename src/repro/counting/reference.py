"""Slow, obviously-correct clique-counting oracles for the test suite.

Nothing here is performance-relevant; these implementations exist so
that every fast path (SCT, enumeration, per-vertex, all-k) can be
cross-checked on small graphs where exhaustive search is feasible.
"""

from __future__ import annotations

from itertools import combinations

from repro.errors import CountingError
from repro.graph.csr import CSRGraph

__all__ = ["brute_force_count", "brute_force_all_sizes", "networkx_count",
           "brute_force_per_vertex"]


def brute_force_count(g: CSRGraph, k: int) -> int:
    """Count k-cliques by testing every k-subset.  ``O(n^k)`` — keep
    ``n`` small (tests use ``n <= 16``)."""
    if k < 1:
        raise CountingError("k must be >= 1")
    n = g.num_vertices
    if k > n:
        return 0
    adj = g.adjacency_sets()
    count = 0
    for subset in combinations(range(n), k):
        if all(v in adj[u] for u, v in combinations(subset, 2)):
            count += 1
    return count


def brute_force_all_sizes(g: CSRGraph) -> list[int]:
    """``result[s]`` = number of s-cliques, for every s (brute force)."""
    n = g.num_vertices
    counts = [0] * (n + 1)
    counts[0] = 1  # the empty clique, by convention excluded below
    for k in range(1, n + 1):
        c = brute_force_count(g, k)
        counts[k] = c
        if c == 0 and k > 1:
            break
    while len(counts) > 1 and counts[-1] == 0:
        counts.pop()
    counts[0] = 0  # match the engine's convention: no empty clique
    return counts


def brute_force_per_vertex(g: CSRGraph, k: int) -> list[int]:
    """Per-vertex k-clique participation counts by exhaustive search."""
    if k < 1:
        raise CountingError("k must be >= 1")
    n = g.num_vertices
    adj = g.adjacency_sets()
    per = [0] * n
    for subset in combinations(range(n), min(k, n) if k <= n else 0):
        if len(subset) == k and all(
            v in adj[u] for u, v in combinations(subset, 2)
        ):
            for u in subset:
                per[u] += 1
    return per


def networkx_count(g: CSRGraph, k: int) -> int:
    """k-clique count via networkx's maximal-clique enumeration.

    Usable on mid-size graphs (thousands of vertices) as an independent
    oracle; requires networkx (a test-only dependency).
    """
    import networkx as nx

    if k < 1:
        raise CountingError("k must be >= 1")
    nxg = nx.Graph()
    nxg.add_nodes_from(range(g.num_vertices))
    nxg.add_edges_from(g.edges())
    # Sum over maximal cliques overcounts shared sub-cliques, so count
    # distinct k-subsets via inclusion in any maximal clique.
    if k <= 2:
        return g.num_vertices if k == 1 else g.num_edges
    seen: set[tuple[int, ...]] = set()
    for maximal in nx.find_cliques(nxg):
        if len(maximal) < k:
            continue
        for sub in combinations(sorted(maximal), k):
            seen.add(sub)
    return len(seen)
