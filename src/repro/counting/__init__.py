"""The counting phase (paper Sec. II-B, IV, V).

The workhorse is the SCT (succinct clique tree) pivot recursion from
Pivoter, implemented over local bitset subgraphs with three index
structures (dense / sparse / remap, paper Fig. 4) and two swappable
bitset-kernel backends (:mod:`repro.kernels`: big-int masks or NumPy
word arrays).  An enumeration baseline (Arb-Count / kClist style) and
brute-force oracles round out the comparison set.  All counts are
exact Python integers — LiveJournal 13-clique counts overflow 64-bit
by nine decimal orders.
"""

from repro.kernels import KERNELS, BitsetKernel, resolve_kernel

from repro.counting.binomial import binomial, binomial_row
from repro.counting.counters import Counters
from repro.counting.sct import (
    count_kcliques,
    count_all_sizes,
    CountResult,
    SCTEngine,
)
from repro.counting.arbcount import count_kcliques_enumeration
from repro.counting.pervertex import per_vertex_counts
from repro.counting.reference import (
    brute_force_count,
    brute_force_all_sizes,
    networkx_count,
)
from repro.counting.structures import (
    STRUCTURES,
    DenseStructure,
    SparseStructure,
    RemapStructure,
)
from repro.counting.maximal import (
    maximal_cliques,
    count_maximal_cliques,
    maximum_clique,
)
from repro.counting.peredge import per_edge_counts
from repro.counting.profiles import per_vertex_profiles
from repro.counting.forest import (
    SCTForest,
    build_forest,
    get_forest,
    load_forest,
)
from repro.counting.dynamic import (
    EditReport,
    apply_edits,
    dirty_roots,
    read_edit_file,
)
from repro.counting.listing import list_kcliques
from repro.counting.sampling import (
    ApproxCount,
    sample_count_vertex,
    sample_count_color,
)

__all__ = [
    "binomial",
    "binomial_row",
    "Counters",
    "count_kcliques",
    "count_all_sizes",
    "CountResult",
    "SCTEngine",
    "count_kcliques_enumeration",
    "per_vertex_counts",
    "brute_force_count",
    "brute_force_all_sizes",
    "networkx_count",
    "KERNELS",
    "BitsetKernel",
    "resolve_kernel",
    "STRUCTURES",
    "DenseStructure",
    "SparseStructure",
    "RemapStructure",
    "maximal_cliques",
    "count_maximal_cliques",
    "maximum_clique",
    "per_edge_counts",
    "per_vertex_profiles",
    "SCTForest",
    "build_forest",
    "get_forest",
    "load_forest",
    "EditReport",
    "apply_edits",
    "dirty_roots",
    "read_edit_file",
    "list_kcliques",
    "ApproxCount",
    "sample_count_vertex",
    "sample_count_color",
]
