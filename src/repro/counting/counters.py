"""Counting-phase instrumentation.

These counters are the bridge between the real Python execution and the
simulated 64-core machine: the recursion increments them with exact
algorithmic quantities (tree nodes, set-intersection words, index
lookups), and :mod:`repro.perfmodel` converts them into modeled
instructions, MPKI, IPC and seconds (Tables II/III/V, Figs. 6-13).

They correspond to what the paper measures with hardware performance
counters — but here they are *exact by construction* rather than
sampled.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Counters"]


@dataclass
class Counters:
    """Work counters for one counting run (or one root-vertex task).

    Attributes
    ----------
    function_calls:
        SCT/enumeration recursion nodes (the paper's "recursive function
        calls", Table II).
    leaves:
        SCT leaves reached (maximal-clique encodings).
    set_op_words:
        Machine words touched by bitset AND/popcount operations — the
        instruction-count proxy.  One unit = one 64-bit word of one
        bitset operation.
    index_lookups:
        Subgraph-index accesses, *weighted* by the structure's lookup
        cost (dense array = 1.0, hash = 1.2; paper Sec. IV).
    subgraph_builds:
        First-level subgraph inductions (one per root vertex).
    build_words:
        Words of work spent building first-level subgraphs (neighbor
        intersection + remap).
    early_terminations:
        Nodes pruned by the Sec. V-A early-exit conditions.
    max_depth:
        Deepest recursion observed (bounded by the largest clique).
    peak_subgraph_bytes:
        Largest per-thread subgraph footprint (drives the cache model).
    """

    function_calls: int = 0
    leaves: int = 0
    set_op_words: float = 0.0
    index_lookups: float = 0.0
    subgraph_builds: int = 0
    build_words: float = 0.0
    early_terminations: int = 0
    max_depth: int = 0
    peak_subgraph_bytes: int = 0

    def merge(self, other: "Counters") -> None:
        """Accumulate another counter set into this one (task -> run)."""
        self.function_calls += other.function_calls
        self.leaves += other.leaves
        self.set_op_words += other.set_op_words
        self.index_lookups += other.index_lookups
        self.subgraph_builds += other.subgraph_builds
        self.build_words += other.build_words
        self.early_terminations += other.early_terminations
        self.max_depth = max(self.max_depth, other.max_depth)
        self.peak_subgraph_bytes = max(
            self.peak_subgraph_bytes, other.peak_subgraph_bytes
        )

    @property
    def work(self) -> float:
        """Scalar work units for scheduling: the instruction proxy."""
        return self.set_op_words + self.index_lookups + self.build_words

    def publish(self, **labels) -> None:
        """Fold this counter set into the process metrics registry.

        The field → metric-name mapping lives in
        :data:`repro.obs.registry.COUNTER_METRICS`; the engines call
        this (via :func:`repro.obs.record_run`) once per run, so the
        hot recursion keeps accumulating into plain fields and the
        registry is the one vocabulary every consumer reads.
        """
        from repro import obs

        obs.record_counters(self, **labels)

    @classmethod
    def from_dict(cls, d: dict) -> "Counters":
        """Exact inverse of :meth:`as_dict` (ignores derived keys) —
        the checkpoint restore path.  Ints stay ints and floats
        round-trip exactly through JSON, so a resumed run's counters
        are bit-identical to an uninterrupted one."""
        return cls(
            function_calls=int(d.get("function_calls", 0)),
            leaves=int(d.get("leaves", 0)),
            set_op_words=float(d.get("set_op_words", 0.0)),
            index_lookups=float(d.get("index_lookups", 0.0)),
            subgraph_builds=int(d.get("subgraph_builds", 0)),
            build_words=float(d.get("build_words", 0.0)),
            early_terminations=int(d.get("early_terminations", 0)),
            max_depth=int(d.get("max_depth", 0)),
            peak_subgraph_bytes=int(d.get("peak_subgraph_bytes", 0)),
        )

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view for report tables."""
        return {
            "function_calls": self.function_calls,
            "leaves": self.leaves,
            "set_op_words": self.set_op_words,
            "index_lookups": self.index_lookups,
            "subgraph_builds": self.subgraph_builds,
            "build_words": self.build_words,
            "early_terminations": self.early_terminations,
            "max_depth": self.max_depth,
            "peak_subgraph_bytes": self.peak_subgraph_bytes,
            "work": self.work,
        }
