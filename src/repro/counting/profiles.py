"""Per-vertex clique *profiles*: counts of every clique size at once.

Generalizes :mod:`repro.counting.pervertex` the way
:meth:`SCTEngine.count_all` generalizes single-k counting: one SCT pass
yields, for every vertex, its participation count in cliques of every
size — the local clique profile used in graph mining as a structural
feature vector (and by the k-clique peeling in
:mod:`repro.apps.cliquecore`).

Leaf rule: at a leaf with held set ``H`` and pivot set ``Π``, for each
size ``s = |H| + j``:

* each held vertex joins ``C(|Π|, j)`` s-cliques,
* each pivot vertex joins ``C(|Π|-1, j-1)`` s-cliques.

Row-level invariant (tested): summing profile column ``s`` over all
vertices gives ``s x (number of s-cliques)``.
"""

from __future__ import annotations

import numpy as np

from repro.counting.binomial import binomial_row
from repro.counting.structures import STRUCTURES
from repro.errors import CountingError
from repro.graph.csr import CSRGraph
from repro.ordering.base import Ordering
from repro.ordering.directionalize import directionalize

__all__ = ["per_vertex_profiles"]


def per_vertex_profiles(
    graph: CSRGraph,
    ordering: Ordering | np.ndarray | CSRGraph,
    structure: str = "remap",
    max_k: int | None = None,
    forest=None,
) -> list[list[int]]:
    """``result[v][s]`` = number of s-cliques containing vertex ``v``.

    All rows share the same length (the graph's max clique size + 1, or
    ``max_k + 1`` when truncated); entries are exact ints.

    ``forest`` may be a pre-built
    :class:`~repro.counting.forest.SCTForest` of this graph; all
    profile columns are then folded from its materialized leaves.
    """
    if graph.directed:
        raise CountingError("input graph must be undirected")
    if forest is not None:
        return forest.profiles(max_k)
    if isinstance(ordering, CSRGraph):
        dag = ordering
        if not dag.directed:
            raise CountingError("pass a DAG or an ordering")
    else:
        dag = directionalize(graph, ordering)
    struct = STRUCTURES[structure](graph, dag)
    n = graph.num_vertices
    cap = dag.max_degree + 2
    if max_k is not None:
        if max_k < 1:
            raise CountingError("max_k must be >= 1")
        cap = min(cap, max_k + 1)
    profiles: list[list[int]] = [[0] * cap for _ in range(n)]
    for v in range(n):
        _root(struct, v, profiles, cap)
    # Trim trailing all-zero columns (keep at least sizes 0..1).
    top = 1
    for v in range(n):
        row = profiles[v]
        for s in range(cap - 1, top, -1):
            if row[s]:
                top = max(top, s)
                break
    width = top + 1
    return [row[:width] for row in profiles]


def _root(struct, v: int, profiles: list[list[int]], cap: int) -> None:
    ctx = struct.build(v)
    d = ctx.d
    row = ctx.row
    out = [int(g) for g in ctx.out]
    full = (1 << d) - 1
    held_ids: list[int] = [v]
    pivot_ids: list[int] = []

    def leaf(pivots: int, held: int) -> None:
        brow = binomial_row(pivots)
        hi = min(held + pivots + 1, cap)
        for s in range(held, hi):
            c = brow[s - held]
            for u in held_ids:
                profiles[u][s] += c
        if pivots:
            brow1 = binomial_row(pivots - 1)
            for s in range(held + 1, hi):
                c_in = brow1[s - held - 1]
                for u in pivot_ids:
                    profiles[u][s] += c_in

    def rec(P: int, held: int, pivots: int) -> None:
        if held >= cap:
            return
        pc = P.bit_count()
        if pc == 0:
            leaf(pivots, held)
            return
        best = -1
        best_cnt = -1
        best_row = 0
        scan = P
        while scan:
            low = scan & -scan
            r = row(low.bit_length() - 1) & P
            c = r.bit_count()
            if c > best_cnt:
                best_cnt = c
                best = low.bit_length() - 1
                best_row = r
                if c == pc - 1:
                    break
            scan ^= low
        pivot_ids.append(out[best])
        rec(best_row, held, pivots + 1)
        pivot_ids.pop()
        P &= ~(1 << best)
        cand = P & ~best_row
        while cand:
            low = cand & -cand
            w = low.bit_length() - 1
            held_ids.append(out[w])
            rec(row(w) & P, held + 1, pivots)
            held_ids.pop()
            P ^= low
            cand ^= low

    rec(full, 1, 0)
