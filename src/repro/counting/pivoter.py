"""The Pivoter baseline (Jain & Seshadhri), as configured in the paper.

Algorithmically Pivoter and PivotScale share the SCT recursion; what
distinguishes the baseline in the paper's comparison (Fig. 12, Table V)
is its *configuration*:

* a sequential exact core ordering (no parallel ordering phase),
* the dense ``|V|``-indexed subgraph structure (Fig. 4A),
* a naive parallelization the authors themselves describe as
  unoptimized — the paper measures < 4x counting-phase speedup on 64
  threads.

This module packages that configuration so benchmark harnesses can run
"Pivoter" and "PivotScale" side by side; the naive-parallel behavior is
expressed as a serialization fraction consumed by the machine model
(:func:`repro.parallel.simulate.simulate_counting`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.counting.sct import CountResult, SCTEngine
from repro.graph.csr import CSRGraph
from repro.ordering.base import Ordering
from repro.ordering.core import core_ordering
from repro.runtime.controller import RunController

__all__ = ["PIVOTER_SERIAL_FRACTION", "PivoterRun", "run_pivoter"]

#: Fraction of counting-phase work the naive parallel implementation
#: serializes (memory-allocator contention and shared-structure effects
#: in the original code).  1/0.27 ~ 3.7x max speedup, matching the
#: "< 4x on 64 threads" the paper measures for Pivoter's counting phase.
PIVOTER_SERIAL_FRACTION = 0.27


@dataclass
class PivoterRun:
    """A Pivoter execution: result + the ordering used (for timing)."""

    result: CountResult
    ordering: Ordering

    @property
    def serial_fraction(self) -> float:
        return PIVOTER_SERIAL_FRACTION


def run_pivoter(
    graph: CSRGraph,
    k: int,
    kernel: str | None = None,
    controller: RunController | None = None,
) -> PivoterRun:
    """Count k-cliques the way the original Pivoter release does.

    ``kernel`` selects the bitset backend (default big-int); the
    baseline's defining choices — sequential core ordering, dense
    structure, naive parallelization — are fixed.  ``controller``
    supervises the counting phase (budgets, checkpoint/resume, fault
    injection) exactly as for the SCT engine.
    """
    with obs.span("pivoter.run", engine="pivoter", k=k):
        with obs.phase("ordering"):
            ordering = core_ordering(graph)
        engine = SCTEngine(graph, ordering, structure="dense", kernel=kernel)
        return PivoterRun(
            result=engine.count(k, controller=controller), ordering=ordering
        )
