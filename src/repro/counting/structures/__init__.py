"""Per-root induced-subgraph structures (paper Fig. 4).

All three store the same local adjacency — bitset rows over the root's
out-neighborhood remapped to ``[0, d)`` — and differ in the *index* used
to reach a row during the recursion, which is exactly the distinction
the paper draws:

* :class:`DenseStructure` — a ``|V|``-sized direct-index array per
  thread (original Pivoter).  Fast access, huge per-thread footprint.
* :class:`SparseStructure` — a hash map keyed by global vertex id.
  Small footprint, ~1.2x lookup cost (the paper's measurement).
* :class:`RemapStructure` — remap global ids to ``[0, d)`` once at the
  first level, then direct-index a ``d``-sized array.  Fast access and
  small footprint; PivotScale's default.

Counts are identical across structures (tested); what differs is the
lookup-cost accounting and the modeled memory footprint that feed the
Fig. 9 / Fig. 11 performance model.
"""

from repro.counting.structures.base import SubgraphStructure, RootContext
from repro.counting.structures.dense import DenseStructure
from repro.counting.structures.sparse import SparseStructure
from repro.counting.structures.remap import RemapStructure

STRUCTURES: dict[str, type[SubgraphStructure]] = {
    "dense": DenseStructure,
    "sparse": SparseStructure,
    "remap": RemapStructure,
}
"""Registry keyed by the names used throughout the paper's figures."""

__all__ = [
    "SubgraphStructure",
    "RootContext",
    "DenseStructure",
    "SparseStructure",
    "RemapStructure",
    "STRUCTURES",
]
