"""Dense subgraph structure — original Pivoter's layout (Fig. 4A).

The index is an array of size ``|V|`` mapping a *global* vertex id to
its adjacency row.  Access is a direct array load (weight 1.0), but the
index alone costs ``8 |V|`` bytes per thread: with 64 threads on a
large graph "these indices alone will consume more memory than the
original graph" (paper Sec. IV) — the cause of the 32-thread scaling
plateau the compact structures fix.

The slot array is allocated once and reused across roots (only the
touched entries are reset), mirroring the paper's allocation-reuse
discipline.  The reset happens *before* any new state is written and
``_touched`` is only reassigned once the new root's rows exist, so an
exception mid-build (e.g. out of memory during induction) leaves the
slot array clean — no stale adjacency can leak into the next root.
"""

from __future__ import annotations

from repro.counting.structures.base import (
    RootContext,
    SubgraphStructure,
    build_local_rows,
)

__all__ = ["DenseStructure"]


class DenseStructure(SubgraphStructure):
    """|V|-sized direct-index subgraph (PivotScale (dense))."""

    name = "dense"
    lookup_weight = 1.0

    def __init__(self, graph, dag, kernel=None):  # noqa: D107 - see base class
        super().__init__(graph, dag, kernel)
        # slot value = local row index + 1; 0 = empty.
        self._slots: list[int] = [0] * graph.num_vertices
        self._touched: list[int] = []

    def estimate(self, v: int) -> tuple[int, float, int]:
        d, words = self._estimate_build_words(v)
        return d, words, 8 * self.graph.num_vertices + self.bitset_bytes(d)

    def build(self, v: int) -> RootContext:
        out = self.dag.neighbors(v)
        d = int(out.size)
        # Reset only previously used slots (cheap reuse, not realloc),
        # and capture the cleared state before anything can raise: if
        # the induction below fails, _touched stays empty and every
        # slot is 0, so the next build starts from a clean index.
        for gid in self._touched:
            self._slots[gid] = 0
        self._touched = []
        rows, build_words = build_local_rows(self.graph, out, self.kernel)
        touched = [int(g) for g in out]
        slots = self._slots
        for pos, gid in enumerate(touched):
            slots[gid] = pos + 1
        self._touched = touched
        kernel = self.kernel

        def row(i: int, _slots=slots, _out=touched, _rows=rows, _k=kernel) -> int:
            return _k.row_int(_rows, _slots[_out[i]] - 1)

        memory = 8 * self.graph.num_vertices + self.bitset_bytes(d)
        return RootContext(
            d=d,
            out=out,
            row=row,
            lookup_weight=self.lookup_weight,
            memory_bytes=memory,
            build_words=build_words,
            kernel=kernel,
            rows=rows,
        )
