"""Dense subgraph structure — original Pivoter's layout (Fig. 4A).

The index is an array of size ``|V|`` mapping a *global* vertex id to
its adjacency row.  Access is a direct array load (weight 1.0), but the
index alone costs ``8 |V|`` bytes per thread: with 64 threads on a
large graph "these indices alone will consume more memory than the
original graph" (paper Sec. IV) — the cause of the 32-thread scaling
plateau the compact structures fix.

The slot array is allocated once and reused across roots (only the
touched entries are reset), mirroring the paper's allocation-reuse
discipline.
"""

from __future__ import annotations

from repro.counting.structures.base import (
    RootContext,
    SubgraphStructure,
    build_local_rows,
)

__all__ = ["DenseStructure"]


class DenseStructure(SubgraphStructure):
    """|V|-sized direct-index subgraph (PivotScale (dense))."""

    name = "dense"
    lookup_weight = 1.0

    def __init__(self, graph, dag):  # noqa: D107 - see base class
        super().__init__(graph, dag)
        self._slots: list[int] = [0] * graph.num_vertices
        self._touched: list[int] = []

    def build(self, v: int) -> RootContext:
        out = self.dag.neighbors(v)
        d = int(out.size)
        # Reset only previously used slots (cheap reuse, not realloc).
        for gid in self._touched:
            self._slots[gid] = 0
        self._touched = [int(g) for g in out]
        rows, build_words = build_local_rows(self.graph, out)
        slots = self._slots
        for gid, mask in zip(self._touched, rows):
            slots[gid] = mask
        out_list = self._touched

        def row(i: int, _slots=slots, _out=out_list) -> int:
            return _slots[_out[i]]

        memory = 8 * self.graph.num_vertices + self.bitset_bytes(d)
        return RootContext(
            d=d,
            out=out,
            row=row,
            lookup_weight=self.lookup_weight,
            memory_bytes=memory,
            build_words=build_words,
        )
