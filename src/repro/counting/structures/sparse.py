"""Sparse subgraph structure — hash-indexed (Fig. 4B).

Only the (at most ``d``) vertices with non-zero subgraph degree are
indexed, via a hash map from global id to row.  The footprint shrinks
from ``O(|V|)`` to ``O(max out-degree)`` — often cache-resident — at
the price of a hash lookup per access, which the paper measures at
~1.2x a direct array load.  "For large graphs like Friendster, this
optimization is able to overcome the scaling plateau from 32 threads to
64 threads" (Sec. IV).
"""

from __future__ import annotations

from repro.counting.structures.base import (
    RootContext,
    SubgraphStructure,
    build_local_rows,
)

__all__ = ["SparseStructure"]

# Modeled bytes per hash-map entry: key + value + bucket overhead.
_HASH_ENTRY_BYTES = 48


class SparseStructure(SubgraphStructure):
    """Hash-map-indexed subgraph (PivotScale (sparse))."""

    name = "sparse"
    lookup_weight = 1.2

    def estimate(self, v: int) -> tuple[int, float, int]:
        d, words = self._estimate_build_words(v)
        return d, words, _HASH_ENTRY_BYTES * d + self.bitset_bytes(d)

    def build(self, v: int) -> RootContext:
        out = self.dag.neighbors(v)
        d = int(out.size)
        kernel = self.kernel
        rows, build_words = build_local_rows(self.graph, out, kernel)
        # hash map: global id -> local row index.
        table = {int(g): i for i, g in enumerate(out)}
        out_list = [int(g) for g in out]

        def row(i: int, _table=table, _out=out_list, _rows=rows, _k=kernel) -> int:
            return _k.row_int(_rows, _table[_out[i]])

        memory = _HASH_ENTRY_BYTES * d + self.bitset_bytes(d)
        return RootContext(
            d=d,
            out=out,
            row=row,
            lookup_weight=self.lookup_weight,
            memory_bytes=memory,
            build_words=build_words,
            kernel=kernel,
            rows=rows,
        )
