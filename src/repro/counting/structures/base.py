"""Shared machinery for the three subgraph structures.

Building the first-level induced subgraph (Alg. 1 line 5) is identical
for every structure: take the root's DAG out-neighborhood ``out`` (the
subgraph's vertex set), and for each member intersect its *undirected*
neighbor list with ``out`` — the paper symmetrizes the first level
(Sec. V-A) — producing one bitset row per member over local ids
``[0, d)``.  Local id ``i`` is the position of ``out[i]`` in the sorted
out-neighbor array.

Rows are stored by a swappable :class:`~repro.kernels.BitsetKernel`
backend (big-int masks or NumPy word arrays); the ``build_words``
charge is representation-independent, so the perf model cannot tell
backends apart.  Structures differ only in :meth:`RootContext.row` —
how a row is reached during the recursion — and in the modeled
per-thread memory footprint.
"""

from __future__ import annotations

import abc
from typing import Any, Callable

import numpy as np

from repro.graph.csr import CSRGraph
from repro.kernels import BitsetKernel, resolve_kernel

__all__ = ["SubgraphStructure", "RootContext", "build_local_rows"]

_POW2 = [1 << i for i in range(64)]


def build_local_rows(
    g: CSRGraph, out: np.ndarray, kernel: BitsetKernel | None = None
) -> tuple[Any, float]:
    """Bitset adjacency rows of the subgraph induced by ``out`` on the
    undirected graph ``g``, in ``kernel``'s native storage (big-int
    list for the default ``bigint`` backend).

    Returns ``(rows, build_words)`` where ``build_words`` charges one
    unit per neighbor-list entry scanned during the intersection — the
    real induction work the paper attributes to lines 5/14.
    """
    if kernel is None:
        kernel = resolve_kernel("bigint")
    d = int(out.size)
    rows = kernel.alloc_rows(d)
    if d == 0:
        return rows, 0.0
    # Gather every member's whole neighbor list in one pass (pure
    # indptr arithmetic — no per-row Python loop), intersect with
    # ``out`` via a single batched searchsorted, then hand the hits to
    # the kernel as one CSR-shaped ``load_rows`` call.
    starts = g.indptr[out]
    lens = g.indptr[out + 1] - starts
    total = int(lens.sum())
    build_words = float(total)
    row_counts = np.zeros(d, dtype=np.int64)
    sel = np.zeros(0, dtype=np.int64)
    if total:
        off = np.cumsum(lens) - lens
        pos = (
            np.arange(total, dtype=np.int64)
            - np.repeat(off, lens)
            + np.repeat(starts, lens)
        )
        nbrs_all = g.indices[pos]
        idx = np.searchsorted(out, nbrs_all)
        idx_clipped = np.minimum(idx, d - 1)
        hit = out[idx_clipped] == nbrs_all
        row_of = np.repeat(np.arange(d, dtype=np.int64), lens)
        sel = idx_clipped[hit]
        row_counts = np.bincount(row_of[hit], minlength=d)
    indptr = np.zeros(d + 1, dtype=np.int64)
    np.cumsum(row_counts, out=indptr[1:])
    kernel.load_rows(rows, indptr, sel)
    return rows, build_words


class RootContext:
    """One root vertex's induced subgraph, ready for the recursion.

    Attributes
    ----------
    d:
        Subgraph size (the root's DAG out-degree).
    out:
        Sorted global ids of the subgraph's vertices; local id ``i``
        names ``out[i]``.
    row:
        Callable ``local id -> big-int bitset row``; the
        structure-specific index path (the compat view every consumer
        can fall back to).
    lookup_weight:
        Cost charged per :attr:`row` access (dense/remap 1.0, hash 1.2).
    memory_bytes:
        Modeled per-thread footprint of this structure while the root
        is being processed (feeds the LLC model).
    build_words:
        Work spent on the first-level induction (plus remap where
        applicable).
    kernel:
        The bitset backend that owns :attr:`rows`.
    rows:
        Backend-native row storage for the fused kernels
        (``intersect_count`` / ``pivot_select``); rows are stored in
        local-id order.  Valid until the owning structure's next
        ``build`` call.
    """

    __slots__ = (
        "d",
        "out",
        "row",
        "lookup_weight",
        "memory_bytes",
        "build_words",
        "kernel",
        "rows",
    )

    def __init__(
        self,
        d: int,
        out: np.ndarray,
        row: Callable[[int], int],
        lookup_weight: float,
        memory_bytes: int,
        build_words: float,
        kernel: BitsetKernel | None = None,
        rows: Any = None,
    ) -> None:
        self.d = d
        self.out = out
        self.row = row
        self.lookup_weight = lookup_weight
        self.memory_bytes = memory_bytes
        self.build_words = build_words
        self.kernel = kernel if kernel is not None else resolve_kernel("bigint")
        self.rows = rows


class SubgraphStructure(abc.ABC):
    """Factory for per-root contexts over a (graph, DAG) pair.

    Instances are meant to be reused across roots — the paper's
    allocation-reuse discipline (Sec. V-B); the dense structure in
    particular allocates its ``|V|``-sized index once, and word-array
    kernels reuse their row buffers the same way.

    Parameters
    ----------
    kernel:
        Bitset backend name or instance (default ``"bigint"``); owns
        the row storage every built context exposes as ``ctx.rows``.
    """

    #: registry name ("dense" / "sparse" / "remap")
    name: str = "base"
    #: cost per index access, relative to a direct array load
    lookup_weight: float = 1.0

    def __init__(
        self,
        graph: CSRGraph,
        dag: CSRGraph,
        kernel: str | BitsetKernel | None = None,
    ) -> None:
        if graph.directed or not dag.directed:
            raise ValueError("expected (undirected graph, DAG) pair")
        if graph.num_vertices != dag.num_vertices:
            raise ValueError("graph and DAG vertex counts differ")
        self.graph = graph
        self.dag = dag
        self.kernel = resolve_kernel(kernel)

    @abc.abstractmethod
    def build(self, v: int) -> RootContext:
        """Induce the first-level subgraph for root ``v``."""

    def estimate(self, v: int) -> tuple[int, float, int] | None:
        """Predict ``(d, build_words, memory_bytes)`` of ``build(v)``
        *without* building.

        Engines use this for degree-based candidate pruning (Lonkar &
        Beamer's communication-reducing trick): a root whose
        out-degree already rules out any k-clique is charged exactly
        the counters a real build would have produced and then skipped
        before ``alloc_rows``.  Returns ``None`` when the structure
        cannot predict its build charge exactly — pruning is then
        disabled so counters stay backend- and path-invariant.
        """
        return None

    def _estimate_build_words(self, v: int) -> tuple[int, float]:
        """Shared ``(d, first-level induction words)`` prediction: the
        sum of undirected degrees over the out-neighborhood — exactly
        what :func:`build_local_rows` charges."""
        out = self.dag.neighbors(v)
        d = int(out.size)
        if d == 0:
            return 0, 0.0
        return d, float(np.sum(self.graph.degrees[out]))

    def bitset_bytes(self, d: int) -> int:
        """Footprint of the ``d x d`` bitset adjacency itself."""
        words = (d + 63) >> 6
        return d * words * 8
