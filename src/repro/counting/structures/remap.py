"""Remapped subgraph structure — PivotScale's default (Fig. 4C).

Global vertex ids are remapped to the compact range ``[0, d(v))`` once,
when the first-level subgraph is built; all deeper recursion levels
reuse the local ids.  The index becomes a ``d``-sized direct array:
dense-structure access speed with sparse-structure memory.  The hash
cost is paid "only once rather than for every graph operation"
(Sec. V-B) — we charge that one remap pass in ``build_words``.
"""

from __future__ import annotations

from repro.counting.structures.base import (
    RootContext,
    SubgraphStructure,
    build_local_rows,
)

__all__ = ["RemapStructure"]


class RemapStructure(SubgraphStructure):
    """First-level-remapped subgraph (PivotScale (remap))."""

    name = "remap"
    lookup_weight = 1.0

    def estimate(self, v: int) -> tuple[int, float, int]:
        d, words = self._estimate_build_words(v)
        return d, words + 1.2 * d, 8 * d + self.bitset_bytes(d)

    def build(self, v: int) -> RootContext:
        out = self.dag.neighbors(v)
        d = int(out.size)
        kernel = self.kernel
        rows, build_words = build_local_rows(self.graph, out, kernel)
        # The one-time remap pass: one (modeled) hash insertion per
        # member; afterwards rows are indexed by local id directly.
        build_words += 1.2 * d

        memory = 8 * d + self.bitset_bytes(d)
        return RootContext(
            d=d,
            out=out,
            row=kernel.row_accessor(rows),
            lookup_weight=self.lookup_weight,
            memory_bytes=memory,
            build_words=build_words,
            kernel=kernel,
            rows=rows,
        )
