"""k-clique *listing* (enumeration of the cliques themselves).

Counting answers "how many"; the applications in the paper's
introduction — community detection, recommender features, gene
grouping — often need the actual cliques.  This is the kClist-style
enumerator over the same local bitset machinery as
:mod:`repro.counting.arbcount`, yielding each k-clique exactly once.

Listing is inherently output-bound (a 24-clique contains 2.7M
12-cliques, Sec. I), which is exactly why the *counting* problem uses
pivoting instead; use :func:`repro.counting.sct.count_kcliques` when
only the number is needed.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.counting.structures import RemapStructure
from repro.errors import CountingError
from repro.graph.csr import CSRGraph
from repro.ordering.base import Ordering
from repro.ordering.core import core_ordering
from repro.ordering.directionalize import directionalize

__all__ = ["list_kcliques"]


def list_kcliques(
    g: CSRGraph,
    k: int,
    ordering: Ordering | np.ndarray | None = None,
    *,
    limit: int | None = None,
) -> Iterator[tuple[int, ...]]:
    """Yield every k-clique of ``g`` once, as a sorted vertex tuple.

    Parameters
    ----------
    ordering:
        Root decomposition order (defaults to the core ordering, the
        best choice for bounding subgraph sizes).
    limit:
        Optional cap on the number of cliques yielded — listing can be
        combinatorially large, so callers may want a guard.
    """
    if k < 1:
        raise CountingError(f"clique size k must be >= 1, got {k}")
    if g.directed:
        raise CountingError("list_kcliques expects an undirected graph")
    if limit is not None and limit < 0:
        raise CountingError("limit must be >= 0")
    produced = 0

    def guard(clique: tuple[int, ...]):
        nonlocal produced
        produced += 1
        return clique

    if k == 1:
        for v in range(g.num_vertices):
            if limit is not None and produced >= limit:
                return
            yield guard((v,))
        return
    ordn = core_ordering(g) if ordering is None else ordering
    dag = directionalize(g, ordn.rank if isinstance(ordn, Ordering) else ordn)
    if k == 2:
        for u in range(g.num_vertices):
            for v in dag.neighbors(u):
                if limit is not None and produced >= limit:
                    return
                yield guard(tuple(sorted((u, int(v)))))
        return

    struct = RemapStructure(g, dag)
    for v in range(g.num_vertices):
        if limit is not None and produced >= limit:
            return
        ctx = struct.build(v)
        d = ctx.d
        if d < k - 1:
            continue
        row = ctx.row
        out = [int(u) for u in ctx.out]
        above = [(~((1 << (i + 1)) - 1)) & ((1 << d) - 1) for i in range(d)]
        stack: list[int] = [v]

        def rec(P: int, depth: int):
            nonlocal produced
            if depth == k - 1:
                scan = P
                while scan:
                    low = scan & -scan
                    i = low.bit_length() - 1
                    if limit is not None and produced >= limit:
                        return
                    produced += 1
                    yield tuple(sorted(stack + [out[i]]))
                    scan ^= low
                return
            scan = P
            while scan:
                low = scan & -scan
                i = low.bit_length() - 1
                nxt = P & row(i) & above[i]
                if nxt.bit_count() >= k - depth - 2:
                    stack.append(out[i])
                    yield from rec(nxt, depth + 1)
                    stack.pop()
                    if limit is not None and produced >= limit:
                        return
                scan ^= low

        yield from rec((1 << d) - 1, 1)
