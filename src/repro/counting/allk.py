"""Clique-size distribution helpers (paper Fig. 1 / Table I).

Thin conveniences over :meth:`repro.counting.sct.SCTEngine.count_all`:
the full size distribution (which peaks near ``k_max / 2`` — the
paper's motivating observation) and the largest clique size ``k_max``.
"""

from __future__ import annotations

from repro.counting.sct import count_all_sizes
from repro.graph.csr import CSRGraph
from repro.ordering.base import Ordering
from repro.ordering.core import core_ordering

__all__ = ["clique_size_distribution", "max_clique_size"]


def clique_size_distribution(
    g: CSRGraph, ordering: Ordering | None = None, forest=None
) -> list[int]:
    """``result[s]`` = number of s-cliques for every s up to ``k_max``.

    A clique of size ``n`` contains ``C(n, k)`` k-cliques, maximized at
    ``k ~ n/2`` — so graphs with one large maximal clique peak in the
    middle of this distribution (Fig. 1).

    ``forest`` may be a pre-built
    :class:`~repro.counting.forest.SCTForest` of ``g``; the whole
    distribution is then a Pascal-row fold over its leaves.
    """
    if forest is not None:
        return forest.count_all()
    ordn = core_ordering(g) if ordering is None else ordering
    return count_all_sizes(g, ordn).all_counts or [0]


def max_clique_size(
    g: CSRGraph, ordering: Ordering | None = None, forest=None
) -> int:
    """The graph's ``k_max`` (Table I column), via the same SCT pass."""
    if forest is not None:
        return forest.max_clique_size()
    dist = clique_size_distribution(g, ordering)
    return len(dist) - 1
