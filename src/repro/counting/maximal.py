"""Maximal-clique enumeration and counting (Bron-Kerbosch with pivoting).

Pivoter "counts maximal cliques using the Bron-Kerbosch algorithm"
(paper Sec. II-B): the SCT is exactly a compressed BK recursion.  This
module exposes the classic BK-with-pivot directly — enumeration of the
maximal cliques themselves, their count, and the maximum clique — using
the same bitset machinery and degeneracy-ordered root decomposition as
the counting engine (Eppstein-Löffler-Strash style).

Complements the SCT counter: SCT answers "how many k-cliques", BK
answers "which maximal cliques".
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.counting.structures import RemapStructure
from repro.errors import CountingError
from repro.graph.csr import CSRGraph
from repro.ordering.base import Ordering
from repro.ordering.core import core_ordering
from repro.ordering.directionalize import directionalize

__all__ = ["maximal_cliques", "count_maximal_cliques", "maximum_clique"]


def maximal_cliques(
    g: CSRGraph, ordering: Ordering | np.ndarray | None = None
) -> Iterator[list[int]]:
    """Yield every maximal clique of ``g`` exactly once (sorted ids).

    Uses the degeneracy-ordered outer loop: root ``v`` enumerates the
    maximal cliques whose minimum-rank member is ``v``, restricted via
    an X set to those not extendable by earlier-ranked vertices.
    """
    if g.directed:
        raise CountingError("maximal_cliques expects an undirected graph")
    ordn = core_ordering(g) if ordering is None else ordering
    rank = ordn.rank if isinstance(ordn, Ordering) else np.asarray(ordn)
    dag = directionalize(g, rank)
    struct = RemapStructure(g, dag)
    n = g.num_vertices
    for v in range(n):
        ctx = struct.build(v)
        d = ctx.d
        out = [int(u) for u in ctx.out]
        row = ctx.row
        if d == 0:
            if g.degree(v) == 0:
                yield [v]
            continue
        # P: candidates after v in rank; X: neighbors of v before v in
        # rank, remapped into... X lives outside the out-neighborhood,
        # so track it as a bitmask over v's *full* neighborhood.
        full = (1 << d) - 1
        # Earlier-ranked neighbors of v (the X seed): a maximal clique
        # rooted at v must not be extendable by any of them.  Represent
        # X by the subset of the out-neighborhood adjacent to each
        # earlier neighbor.
        earlier = [
            int(u) for u in g.neighbors(v) if rank[int(u)] < rank[v]
        ]
        pos = {u: i for i, u in enumerate(out)}
        x_rows = []
        for u in earlier:
            mask = 0
            for w in g.neighbors(u):
                i = pos.get(int(w))
                if i is not None:
                    mask |= 1 << i
            x_rows.append(mask)

        def bk(P: int, X: int, X_alive: list[int], clique: list[int]):
            # P: candidates; X: already-processed subgraph vertices
            # adjacent to the whole clique; X_alive: earlier-ranked
            # (outside-subgraph) vertices adjacent to the whole clique.
            if P == 0:
                # Maximal iff nothing in either X could extend it.
                if X == 0 and not X_alive:
                    yield sorted(clique)
                return
            # Pivot from P u X: the vertex covering most of P.
            best_row = 0
            best_cnt = -1
            scan = P | X
            pc = P.bit_count()
            while scan:
                low = scan & -scan
                r = row(low.bit_length() - 1) & P
                c = r.bit_count()
                if c > best_cnt:
                    best_cnt = c
                    best_row = r
                    if c == pc - 1:
                        break
                scan ^= low
            cand = P & ~best_row
            while cand:
                low = cand & -cand
                i = low.bit_length() - 1
                r = row(i)
                # Earlier-ranked vertices must stay adjacent to survive.
                nx = [j for j in X_alive if (x_rows[j] >> i) & 1]
                clique.append(out[i])
                yield from bk(P & r, X & r, nx, clique)
                clique.pop()
                P ^= low
                X |= low
                cand ^= low

        yield from bk(full, 0, list(range(len(earlier))), [v])


def count_maximal_cliques(
    g: CSRGraph, ordering: Ordering | np.ndarray | None = None
) -> int:
    """Number of maximal cliques in ``g``."""
    return sum(1 for _ in maximal_cliques(g, ordering))


def maximum_clique(
    g: CSRGraph, ordering: Ordering | np.ndarray | None = None
) -> list[int]:
    """One maximum clique (largest cardinality; empty for empty graph)."""
    best: list[int] = []
    for c in maximal_cliques(g, ordering):
        if len(c) > len(best):
            best = c
    return best
