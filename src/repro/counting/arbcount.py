"""Enumeration-based k-clique counting (Arb-Count / kClist style).

The baseline the paper compares against (Shi et al.'s Arb-Count is the
state-of-the-art parallel enumeration algorithm).  Enumeration descends
the DAG intersecting out-neighborhoods ``k - 1`` levels deep, visiting
(a superset of) every k-clique — so its cost grows steeply with ``k``,
which is exactly the Fig. 12 behavior: it wins for small cliques and
explodes for ``k >= 8``-ish, while pivoting stays flat.

Same local-bitset machinery as the SCT engine: per root, the DAG
out-neighborhood is remapped to ``[0, d)``; within the subgraph the
descent uses local-id order as its (second-level) directionalization.

Budgets run through the shared :class:`~repro.runtime.RunController`
protocol.  Because enumeration can explode *inside a single root*, the
recursion keeps a plain-integer countdown cell (seeded from the
controller's remaining node budget, or from ``max_nodes`` when no
controller is supplied) so the hot loop never pays a method call per
node; the controller is consulted only at root boundaries.
"""

from __future__ import annotations

from contextlib import nullcontext

import numpy as np

from repro import obs
from repro.counting.counters import Counters
from repro.counting.sct import CountResult
from repro.counting.structures import STRUCTURES
from repro.errors import (
    CountingError,
    KernelFaultError,
    MemoryBudgetExceededError,
    NodeBudgetExceededError,
)
from repro.graph.csr import CSRGraph
from repro.kernels import BitsetKernel
from repro.ordering.base import Ordering
from repro.ordering.directionalize import directionalize
from repro.runtime.checkpoint import graph_fingerprint
from repro.runtime.controller import RunController

__all__ = ["count_kcliques_enumeration", "EnumerationBudgetExceeded"]

# Historical name for the enumeration budget error, kept as an alias so
# existing harnesses (`except EnumerationBudgetExceeded`) keep working
# now that all budgets share one hierarchy in :mod:`repro.errors`.
EnumerationBudgetExceeded = NodeBudgetExceededError


def count_kcliques_enumeration(
    graph: CSRGraph,
    k: int,
    ordering: Ordering | np.ndarray | CSRGraph,
    structure: str = "remap",
    max_nodes: int | None = None,
    kernel: str | BitsetKernel | None = None,
    controller: RunController | None = None,
) -> CountResult:
    """Count k-cliques by DAG enumeration (the Arb-Count baseline).

    Returns the same :class:`~repro.counting.sct.CountResult` shape as
    the pivoting engine so harnesses can swap algorithms freely.
    ``max_nodes`` bounds recursion nodes; past it,
    :class:`~repro.errors.NodeBudgetExceededError` is raised — the
    combinatorial explosion is the *expected* result at large ``k``
    (Fig. 12).  A ``controller`` adds deadlines, memory watermarks,
    fault injection and the kernel-fallback rung of the degradation
    ladder; its node budget and ``max_nodes`` compose (the tighter one
    wins).
    """
    if k < 1:
        raise CountingError(f"clique size k must be >= 1, got {k}")
    if graph.directed:
        raise CountingError("input graph must be undirected")
    if isinstance(ordering, CSRGraph):
        if not ordering.directed:
            raise CountingError("pass a DAG or an ordering")
        dag = ordering
    else:
        dag = directionalize(graph, ordering)
    struct = STRUCTURES[structure](graph, dag, kernel=kernel)

    n = graph.num_vertices
    totals = Counters()
    per_root_work = np.zeros(n, dtype=np.float64)
    per_root_memory = np.zeros(n, dtype=np.float64)
    total = 0
    done = 0
    degraded_from: str | None = None

    if k == 1:
        total = n
    elif k == 2:
        total = graph.num_edges

    ctl = controller
    if ctl is not None:
        ctl.begin(
            {
                "engine": "enumeration",
                "k": k,
                "structure": struct.name,
                "kernel": struct.kernel.name,
                "graph": graph_fingerprint(graph),
            }
        )

    def seed_budget() -> list[int]:
        # The in-recursion countdown: -1 means unlimited.  Composes the
        # static max_nodes cap with the controller's remaining budget.
        limits = [x for x in (max_nodes, ctl and ctl.remaining_nodes()) if x is not None]
        return [min(limits) if limits else -1]

    span_attrs = {"engine": "enumeration", "structure": struct.name,
                  "kernel": struct.kernel.name, "k": k}
    if obs.get_tracer().enabled:
        span_attrs["graph"] = graph_fingerprint(graph)
    # As in the SCT engine, the `finally` publishes partial totals when
    # a budget abort (the expected Fig. 12 outcome at large k) unwinds.
    try:
        with obs.span("enumeration.count", **span_attrs), obs.phase(
            "counting"
        ), (ctl.guard() if ctl is not None else nullcontext()):
            for v in range(n if k >= 3 else 0):
                ctr = Counters()
                try:
                    if ctl is not None:
                        ctl.tick()
                    delta = _count_root(struct, v, k, ctr, seed_budget())
                except MemoryError:
                    raise MemoryBudgetExceededError(
                        f"out of memory while enumerating root {v}",
                        spent=ctl.spent_snapshot() if ctl is not None else None,
                    )
                except KernelFaultError:
                    if (
                        ctl is None
                        or not ctl.degrade
                        or struct.kernel.name == "bigint"
                    ):
                        raise
                    if degraded_from is None:
                        degraded_from = struct.kernel.name
                    obs.degradation(
                        "kernel_fallback", engine="enumeration", root=v,
                        from_kernel=struct.kernel.name,
                    )
                    struct = STRUCTURES[structure](graph, dag, kernel="bigint")
                    ctr = Counters()
                    delta = _count_root(struct, v, k, ctr, seed_budget())
                except NodeBudgetExceededError as e:
                    if ctl is not None and e.spent is None:
                        ctl.spent.nodes += ctr.function_calls
                        e.spent = ctl.spent_snapshot()
                    raise
                if ctl is not None:
                    ctl.charge_nodes(ctr.function_calls)
                    ctl.note_memory(ctr.peak_subgraph_bytes)
                total += delta
                per_root_work[v] = ctr.work
                per_root_memory[v] = ctr.peak_subgraph_bytes
                totals.merge(ctr)
                obs.note_memory(ctr.peak_subgraph_bytes)
                done = v + 1
                if ctl is not None:
                    ctl.complete_root(v)
    finally:
        obs.record_run(
            totals, engine="enumeration", structure=struct.name,
            kernel=struct.kernel.name, roots=done,
        )
    return CountResult(
        count=total,
        all_counts=None,
        k=k,
        counters=totals,
        per_root_work=per_root_work,
        per_root_memory=per_root_memory,
        structure=struct.name,
        kernel=struct.kernel.name,
        degraded_from=degraded_from,
    )


def _count_root(struct, v: int, k: int, ctr: Counters, budget: list[int]) -> int:
    ctx = struct.build(v)
    ctr.subgraph_builds += 1
    ctr.build_words += ctx.build_words
    ctr.peak_subgraph_bytes = max(ctr.peak_subgraph_bytes, ctx.memory_bytes)
    d = ctx.d
    if d < k - 1:
        return 0
    words = (d + 63) >> 6 or 1
    rows = ctx.rows
    intersect_count = ctx.kernel.intersect_count
    lw = ctx.lookup_weight

    # Second-level direction: only explore local ids above the current
    # one, so each clique inside the subgraph is enumerated once.
    above = [(~((1 << (i + 1)) - 1)) & ((1 << d) - 1) for i in range(d)]
    full = (1 << d) - 1

    def rec(P: int, depth: int) -> int:
        # depth = number of clique members chosen so far (incl. root v).
        ctr.function_calls += 1
        if budget[0] >= 0:
            budget[0] -= 1
            if budget[0] < 0:
                raise NodeBudgetExceededError(
                    "enumeration node budget exhausted"
                )
        if depth > ctr.max_depth:
            ctr.max_depth = depth
        if depth == k - 1:
            ctr.set_op_words += words
            return P.bit_count()
        count = 0
        scan = P
        while scan:
            low = scan & -scan
            i = low.bit_length() - 1
            ctr.index_lookups += lw
            ctr.set_op_words += words
            nxt, nc = intersect_count(rows, i, P & above[i])
            # Degree-based pruning: not enough vertices left to finish.
            if nc >= k - depth - 2:
                count += rec(nxt, depth + 1)
            else:
                ctr.early_terminations += 1
            scan ^= low
        return count

    return rec(full, 1)
