"""The SCT (succinct clique tree) pivot recursion — paper Algorithm 1.

For each root vertex ``v`` of the DAG, the engine builds the induced
subgraph over ``v``'s out-neighborhood (symmetrized, per Sec. V-A) and
explores it with Bron-Kerbosch-style pivoting: at every node it picks
the pivot ``p`` maximizing ``|N(p) ∩ P|``, recurses once on ``N(p) ∩ P``
with ``p`` recorded as *optional* (a pivot), and once per non-neighbor
``w`` of ``p`` with ``w`` recorded as *required* (held).  Each leaf
therefore encodes the clique family ``{H ∪ S : S ⊆ Π}`` exactly once,
and contributes ``C(|Π|, k - |H|)`` k-cliques — the reason Pivoter's
cost is independent of ``k``.

Candidate sets are Python big-int bitsets passed down the recursion
(playing the role of the C++ reversible subgraph mutations, see
DESIGN.md); adjacency rows live in a swappable
:mod:`repro.kernels` backend.  The fused ``pivot_select`` and
``intersect_count`` kernels do the work of the paper's word-parallel
set operations — as big-int ``&`` / ``int.bit_count()`` on the default
``bigint`` backend, as vectorized NumPy word-array passes on the
``wordarray`` backend — with identical counts and identical
:class:`~repro.counting.counters.Counters` either way.

Implementation subtleties carried over from Sec. V-A:

* early exit when the held set alone reaches ``k`` (one k-clique
  remains in the subtree: the held set itself);
* early termination when ``|H| + |Π| + |P| < k`` (target too far);
* the all-k variant reuses the same tree and charges a whole binomial
  row per leaf.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.counting.binomial import binomial, binomial_row
from repro.counting.counters import Counters
from repro.counting.structures import STRUCTURES, SubgraphStructure
from repro.errors import (
    CheckpointError,
    CountingError,
    KernelFaultError,
    MemoryBudgetExceededError,
)
from repro.graph.csr import CSRGraph
from repro.kernels import BitsetKernel
from repro.ordering.base import Ordering
from repro.ordering.directionalize import directionalize
from repro.runtime.checkpoint import graph_fingerprint
from repro.runtime.controller import RunController

__all__ = [
    "SCTEngine",
    "CountResult",
    "RootBatchResult",
    "count_kcliques",
    "count_all_sizes",
]

#: Hybrid-spine cutoff for frontier backends: a subtree whose candidate
#: count ``pc`` drops below this is recursed by the scalar big-int
#: closure instead of the frontier spine.  Recursion work concentrates
#: in the small-``pc`` tail (node count grows far faster with depth
#: than ``pc`` shrinks), where CPython big-int scanning beats the
#: per-node overhead of building/distributing frontier batches; the
#: word-tile sweeps only pay for themselves on the dense upper levels.
#: Both spines charge identical counters, so the cutoff is purely a
#: wall-clock knob (measured crossover on 1-core x86, ~two uint64
#: words — below it the NumPy tile pipeline's fixed per-level cost
#: exceeds the whole subtree's scalar scan time).
_FRONTIER_MIN_PC = 128


@dataclass
class CountResult:
    """Outcome of one counting run.

    Attributes
    ----------
    count:
        Number of k-cliques (exact Python int) for target-k runs;
        ``None`` for all-k runs.
    all_counts:
        For all-k runs, ``all_counts[s]`` is the number of s-cliques,
        ``s = 0 .. max clique size`` (trailing zeros trimmed).
    k:
        The target clique size (``None`` for all-k).
    counters:
        Aggregated instrumentation for the whole run.
    per_root_work:
        Work units per root vertex — the task sizes the parallel
        scheduler model distributes across threads.
    per_root_memory:
        Modeled per-root subgraph footprint in bytes (peak drives the
        cache model).
    structure:
        Name of the subgraph structure used.
    kernel:
        Name of the bitset-kernel backend used (the backend the run
        *finished* on — see ``degraded_from``).
    approximate:
        True when budget exhaustion degraded the run to sampling:
        ``count`` / ``all_counts`` then mix exact per-root counts with
        an unbiased estimate for the remaining roots and are floats.
    degraded_from:
        What the run degraded away from, or ``None`` for a clean run:
        a kernel name (mid-run wordarray→bigint fallback) and/or
        ``"exact"`` (budget exhaustion → sampling), comma-joined when
        both happened.
    """

    count: int | float | None
    all_counts: list[int] | list[float] | None
    k: int | None
    counters: Counters
    per_root_work: np.ndarray
    per_root_memory: np.ndarray
    structure: str
    kernel: str = "bigint"
    approximate: bool = False
    degraded_from: str | None = None

    @property
    def max_clique_size(self) -> int:
        """Largest clique size observed (all-k runs only)."""
        if self.all_counts is None:
            raise CountingError("max_clique_size requires an all-k run")
        return len(self.all_counts) - 1


@dataclass
class RootBatchResult:
    """Outcome of counting one batch of root vertices — the parallel
    runtime's chunk result (see :meth:`SCTEngine.count_roots`).

    ``per_root_work`` / ``per_root_memory`` are aligned with ``roots``
    (entry ``i`` belongs to ``roots[i]``), not indexed by vertex id, so
    a chunk result stays compact regardless of which roots it covers.
    For target-k batches ``count`` holds the partial total and
    ``all_counts`` is ``None``; for all-k batches ``all_counts`` is an
    *untrimmed* row of the caller-specified length (parents fold rows
    from many chunks and trim once at the end), and ``count`` is 0.
    """

    roots: list[int]
    count: int
    all_counts: list[int] | None
    counters: Counters
    per_root_work: list[float]
    per_root_memory: list[float]
    degraded_from: str | None = None


class SCTEngine:
    """Pivoting clique counter over a (graph, ordering-or-DAG) pair.

    Parameters
    ----------
    graph:
        The undirected input graph.
    ordering:
        An :class:`~repro.ordering.base.Ordering`, a rank array, or an
        already-directionalized DAG.
    structure:
        Subgraph structure name (``"remap"`` default) or an instance.
    kernel:
        Bitset-kernel backend name or instance (``"bigint"`` default,
        ``"wordarray"`` for the NumPy fast path).  Ignored when
        ``structure`` is an already-built instance (the instance's
        kernel wins).
    """

    def __init__(
        self,
        graph: CSRGraph,
        ordering: Ordering | np.ndarray | CSRGraph,
        structure: str | SubgraphStructure = "remap",
        kernel: str | BitsetKernel | None = None,
    ) -> None:
        if graph.directed:
            raise CountingError("input graph must be undirected")
        if isinstance(ordering, CSRGraph):
            if not ordering.directed:
                raise CountingError("pass a DAG or an ordering, not a 2nd graph")
            dag = ordering
        else:
            dag = directionalize(graph, ordering)
        self.graph = graph
        self.dag = dag
        if isinstance(structure, SubgraphStructure):
            self.structure = structure
        else:
            try:
                self.structure = STRUCTURES[structure](graph, dag, kernel=kernel)
            except KeyError:
                raise CountingError(
                    f"unknown structure {structure!r}; "
                    f"expected one of {sorted(STRUCTURES)}"
                ) from None
        self.kernel = self.structure.kernel

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def count(
        self,
        k: int,
        *,
        early_termination: bool = True,
        controller: RunController | None = None,
    ) -> CountResult:
        """Count k-cliques exactly.

        ``early_termination`` toggles the Sec. V-A reach prune
        (``|H| + |Π| + |P| < k``); disabling it reproduces the ablation
        in ``benchmarks/bench_ablation.py``.  Counts are identical
        either way — only the tree size changes.

        ``controller`` attaches a :class:`~repro.runtime.RunController`
        for budgets, checkpoint/resume, and fault handling, checked at
        root-vertex granularity.
        """
        if k < 1:
            raise CountingError(f"clique size k must be >= 1, got {k}")
        return self._run(
            k=k, early_termination=early_termination, controller=controller
        )

    def count_all(
        self,
        max_k: int | None = None,
        *,
        controller: RunController | None = None,
    ) -> CountResult:
        """Count cliques of *every* size up to ``max_k`` (default: all).

        This is the "modest amount of additional work" variant the
        paper describes in Sec. V-A: the same tree, with a binomial
        row instead of a single coefficient per leaf.
        """
        return self._run(k=None, max_k=max_k, controller=controller)

    def forest(
        self,
        *,
        controller: RunController | None = None,
        members: bool = True,
        cache: bool = True,
    ):
        """Build (or fetch from the in-process cache) the materialized
        :class:`~repro.counting.forest.SCTForest` for this engine's
        (graph, DAG, structure, kernel).

        One full pivot traversal up front; every subsequent
        ``count(k)`` / ``count_all`` / ``per_vertex`` / ``per_edge`` /
        ``sample_cliques`` query is an array fold over the recorded
        leaves — the fast path when a graph is queried more than once.
        """
        from repro.counting.forest import get_forest

        return get_forest(
            self.graph,
            self.dag,
            self.structure.name,
            self.kernel.name,
            controller=controller,
            members=members,
            cache=cache,
        )

    def count_root(self, v: int, k: int) -> int:
        """Exact k-clique count of the cliques rooted at ``v`` — the
        per-root task unit (used by the root-sampling degradation
        estimator)."""
        return self._count_root_k(v, k, Counters())

    def count_root_all(self, v: int, max_k: int | None = None) -> list[int]:
        """Per-size clique counts rooted at ``v`` (all-k task unit)."""
        length, cap = self._allk_shape(max_k)
        return self._count_root_all(v, cap, length, Counters())

    def count_roots(
        self,
        roots,
        k: int | None = None,
        *,
        max_k: int | None = None,
        controller: RunController | None = None,
        early_termination: bool = True,
    ) -> RootBatchResult:
        """Count the cliques rooted at each vertex in ``roots`` — the
        public batch entry point the parallel workers run per chunk.

        Unlike the throwaway :meth:`count_root`, this path honors the
        full per-root cooperation protocol: obs spans/metrics, budget
        ticks, memory watermarks, and the kernel-fault degradation rung
        (``wordarray`` → ``bigint`` mid-batch when ``controller.degrade``
        is set).  ``k=None`` produces the all-k row (untrimmed, of the
        :meth:`_allk_shape` length for ``max_k``) so chunk rows from
        different workers fold elementwise.

        An already-:meth:`~repro.runtime.RunController.begin`-started
        controller is used as-is (the parent began the run; workers and
        the fold loop just meter against it); a fresh controller is
        begun here with a batch descriptor and no snapshot provider —
        checkpointing a batch is the *caller's* job, since only the
        caller knows how chunks map onto the whole run.
        """
        roots = [int(v) for v in roots]
        if k is not None and k < 1:
            raise CountingError(f"clique size k must be >= 1, got {k}")
        n = self.graph.num_vertices
        for v in roots:
            if not 0 <= v < n:
                raise CountingError(f"root vertex {v} out of range [0, {n})")
        ctl = controller
        totals = Counters()
        per_root_work: list[float] = []
        per_root_memory: list[float] = []
        all_counts: list[int] | None = None
        length = cap = 0
        if k is None:
            length, cap = self._allk_shape(max_k)
            all_counts = [0] * length
        total = 0
        done = 0
        degraded_from: str | None = None

        if ctl is not None and not ctl.started:
            ctl.begin(self._descriptor(k, max_k) | {"batch": True})

        def run_root(v: int) -> tuple[Counters, int, list[int] | None]:
            ctr = Counters()
            if k is None:
                return ctr, 0, self._count_root_all(v, cap, length, ctr)
            return ctr, self._count_root_k(v, k, ctr, early_termination), None

        try:
            with obs.span(
                "sct.count_roots",
                roots=len(roots),
                **self._span_attrs(k, max_k),
            ), obs.phase("counting"):
                for v in roots:
                    if ctl is None:
                        ctr, delta, local = run_root(v)
                    else:
                        try:
                            ctl.tick()
                            ctr, delta, local = run_root(v)
                        except MemoryError as exc:
                            raise MemoryBudgetExceededError(
                                f"allocation failure at root {v}",
                                spent=ctl.spent_snapshot(),
                            ) from exc
                        except KernelFaultError:
                            if (
                                not ctl.degrade
                                or self.kernel.name == "bigint"
                            ):
                                raise
                            fallen = self._fallback_to_bigint()
                            obs.degradation(
                                "kernel_fallback", engine="sct", root=v,
                                from_kernel=fallen,
                            )
                            if degraded_from is None:
                                degraded_from = fallen
                            ctr, delta, local = run_root(v)
                        ctl.charge_nodes(ctr.function_calls)
                        ctl.note_memory(ctr.peak_subgraph_bytes)
                    if local is not None:
                        for s in range(length):
                            if local[s]:
                                all_counts[s] += local[s]
                    else:
                        total += delta
                    per_root_work.append(ctr.work)
                    per_root_memory.append(float(ctr.peak_subgraph_bytes))
                    totals.merge(ctr)
                    obs.note_memory(ctr.peak_subgraph_bytes)
                    done += 1
                    if ctl is not None:
                        ctl.complete_root(v)
        finally:
            obs.record_run(
                totals, engine="sct", structure=self.structure.name,
                kernel=self.kernel.name, roots=done,
            )

        return RootBatchResult(
            roots=roots,
            count=total,
            all_counts=all_counts,
            counters=totals,
            per_root_work=per_root_work,
            per_root_memory=per_root_memory,
            degraded_from=degraded_from,
        )

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------
    def _allk_shape(self, max_k: int | None) -> tuple[int, int]:
        """(length of the counts row, exclusive size cap) for all-k.

        Largest possible clique = max out-degree + 1 (root + subgraph).
        """
        size_cap = self.dag.max_degree + 2
        if max_k is not None:
            size_cap = min(size_cap, max_k + 1)
        length = max(size_cap, 2)
        cap = length if max_k is None else max_k + 1
        return length, cap

    def _descriptor(self, k: int | None, max_k: int | None) -> dict:
        """Checkpoint identity: resuming against anything else fails."""
        return {
            "engine": "sct",
            "k": k,
            "max_k": max_k,
            "structure": self.structure.name,
            "kernel": self.kernel.name,
            "graph_fingerprint": graph_fingerprint(self.graph),
            "dag_fingerprint": graph_fingerprint(self.dag),
        }

    def _span_attrs(self, k: int | None, max_k: int | None) -> dict:
        """Trace attributes for one run span (fingerprint only computed
        when a tracer will actually record it)."""
        attrs = {
            "engine": "sct",
            "structure": self.structure.name,
            "kernel": self.kernel.name,
        }
        if k is not None:
            attrs["k"] = k
        if max_k is not None:
            attrs["max_k"] = max_k
        if obs.get_tracer().enabled:
            attrs["graph"] = graph_fingerprint(self.graph)
        return attrs

    def _fallback_to_bigint(self) -> str:
        """Kernel-fault rung of the degradation ladder: rebuild the
        structure on the ``bigint`` reference backend.  Returns the
        name of the backend abandoned.  Counters are backend-invariant,
        so the re-verified root and every later root are bit-identical
        to an unfaulted run."""
        old = self.kernel.name
        self.structure = type(self.structure)(
            self.graph, self.dag, kernel="bigint"
        )
        self.kernel = self.structure.kernel
        return old

    def _run(
        self,
        k: int | None,
        max_k: int | None = None,
        early_termination: bool = True,
        controller: RunController | None = None,
    ) -> CountResult:
        ctl = controller
        n = self.graph.num_vertices
        totals = Counters()
        per_root_work = np.zeros(n, dtype=np.float64)
        per_root_memory = np.zeros(n, dtype=np.float64)
        all_counts: list[int] | None = None
        length = cap = 0
        if k is None:
            length, cap = self._allk_shape(max_k)
            all_counts = [0] * length
        total = 0
        start = 0
        done = 0
        degraded_from: str | None = None

        if ctl is not None:
            # Zero-argument state provider: invoked only at actual save
            # points, always at a root boundary (roots fold atomically,
            # so the snapshot is consistent by construction).
            def snapshot() -> dict:
                return {
                    "next_root": done,
                    "total": total,
                    "all_counts": (
                        None if all_counts is None else list(all_counts)
                    ),
                    "counters": totals.as_dict(),
                    "per_root_work": per_root_work[:done].tolist(),
                    "per_root_memory": per_root_memory[:done].tolist(),
                    "degraded_from": degraded_from,
                }

            state = ctl.begin(self._descriptor(k, max_k), snapshot)
            if state is not None:
                start = done = int(state["next_root"])
                total = state["total"]
                if all_counts is not None:
                    stored = state.get("all_counts")
                    if stored is None or len(stored) != length:
                        raise CheckpointError(
                            "checkpoint all_counts row does not match "
                            "this run's clique-size cap"
                        )
                    all_counts = [int(c) for c in stored]
                totals = Counters.from_dict(state["counters"])
                per_root_work[:start] = state["per_root_work"]
                per_root_memory[:start] = state["per_root_memory"]
                degraded_from = state.get("degraded_from")

        def run_root(v: int) -> tuple[Counters, int, list[int] | None]:
            ctr = Counters()
            if k is None:
                return ctr, 0, self._count_root_all(v, cap, length, ctr)
            return ctr, self._count_root_k(v, k, ctr, early_termination), None

        # Span + metrics wrap the whole root loop; the `finally` still
        # publishes partial totals when a budget abort unwinds mid-run.
        try:
            with obs.span(
                "sct.count" if k is not None else "sct.count_all",
                **self._span_attrs(k, max_k),
            ), obs.phase("counting"), (
                ctl.guard() if ctl is not None else nullcontext()
            ):
                for v in range(start, n):
                    if ctl is None:
                        ctr, delta, local = run_root(v)
                    else:
                        # Budget/fault checks all happen BEFORE the root
                        # is folded into the totals: a root is all-in or
                        # not-at-all, which keeps checkpoints consistent.
                        try:
                            ctl.tick()
                            ctr, delta, local = run_root(v)
                        except MemoryError as exc:
                            raise MemoryBudgetExceededError(
                                f"allocation failure at root {v}",
                                spent=ctl.spent_snapshot(),
                            ) from exc
                        except KernelFaultError:
                            if (
                                not ctl.degrade
                                or self.kernel.name == "bigint"
                            ):
                                raise
                            fallen = self._fallback_to_bigint()
                            obs.degradation(
                                "kernel_fallback", engine="sct", root=v,
                                from_kernel=fallen,
                            )
                            if degraded_from is None:
                                degraded_from = fallen
                            ctr, delta, local = run_root(v)
                        ctl.charge_nodes(ctr.function_calls)
                        ctl.note_memory(ctr.peak_subgraph_bytes)
                    if local is not None:
                        for s in range(length):
                            if local[s]:
                                all_counts[s] += local[s]
                    else:
                        total += delta
                    per_root_work[v] = ctr.work
                    per_root_memory[v] = ctr.peak_subgraph_bytes
                    totals.merge(ctr)
                    obs.note_memory(ctr.peak_subgraph_bytes)
                    done = v + 1
                    if ctl is not None:
                        ctl.complete_root(v)
        finally:
            obs.record_run(
                totals, engine="sct", structure=self.structure.name,
                kernel=self.kernel.name, roots=done - start,
            )

        if all_counts is not None:
            while len(all_counts) > 1 and all_counts[-1] == 0:
                all_counts.pop()
        return CountResult(
            count=None if k is None else total,
            all_counts=all_counts,
            k=k,
            counters=totals,
            per_root_work=per_root_work,
            per_root_memory=per_root_memory,
            structure=self.structure.name,
            kernel=self.kernel.name,
            degraded_from=degraded_from,
        )

    # ------------------------------------------------------------------
    # per-root recursions
    # ------------------------------------------------------------------
    def _count_root_k(
        self, v: int, k: int, ctr: Counters, early_termination: bool = True
    ) -> int:
        if early_termination and k > 1:
            # Degree-based candidate pruning (Lonkar & Beamer): when the
            # out-degree already caps the largest possible clique below
            # k, skip the build entirely — but charge *exactly* the
            # counters the built-and-immediately-terminated root would
            # have produced, so work totals stay path-invariant.
            est = self.structure.estimate(v)
            if est is not None:
                d_est, est_words, est_bytes = est
                if d_est > 0 and 1 + d_est < k:
                    ctr.subgraph_builds += 1
                    ctr.build_words += est_words
                    ctr.peak_subgraph_bytes = max(
                        ctr.peak_subgraph_bytes, est_bytes
                    )
                    ctr.function_calls += 1
                    ctr.early_terminations += 1
                    return 0
        ctx = self.structure.build(v)
        ctr.subgraph_builds += 1
        ctr.build_words += ctx.build_words
        ctr.peak_subgraph_bytes = max(ctr.peak_subgraph_bytes, ctx.memory_bytes)
        d = ctx.d
        kern = ctx.kernel
        lw = ctx.lookup_weight
        full = (1 << d) - 1
        # Hot-path counters accumulate in a plain list (fast item ops)
        # and fold into the dataclass once per root:
        # [calls, leaves, early, scan vertices, branch vertices,
        #  max_depth, edge work].  Work is charged *edge-granularly*
        #  (one unit per adjacency entry a set operation touches), the
        #  cost the paper's array-based implementation actually pays —
        #  this is what makes counting work sensitive to the ordering's
        #  subgraph sizes (Table II / Table III).
        acc = [0, 0, 0, 0, 0, 0, 0]

        if kern.frontier:
            result = self._rec_k_frontier(ctx, k, acc, early_termination)
            ctr.function_calls += acc[0]
            ctr.leaves += acc[1]
            ctr.early_terminations += acc[2]
            ctr.index_lookups += (acc[3] + acc[4]) * lw
            ctr.set_op_words += acc[6] + acc[3] + acc[4]
            ctr.max_depth = max(ctr.max_depth, acc[5])
            return result

        rec = self._make_rec_k(ctx, k, acc, early_termination)
        result = rec(full, d, 1, 0)
        ctr.function_calls += acc[0]
        ctr.leaves += acc[1]
        ctr.early_terminations += acc[2]
        ctr.index_lookups += (acc[3] + acc[4]) * lw
        ctr.set_op_words += acc[6] + acc[3] + acc[4]
        ctr.max_depth = max(ctr.max_depth, acc[5])
        return result

    def _make_rec_k(self, ctx, k: int, acc: list, early_termination: bool):
        """The scalar (per-node, big-int-mask) target-k recursion.

        Built as a closure over one root's context; both the scalar
        spine and the frontier spine's small-subtree fast path
        (:data:`_FRONTIER_MIN_PC`) run this exact code, so the two
        spines cannot drift apart semantically.
        """
        rows = ctx.rows
        kern = ctx.kernel
        pivot_select = kern.pivot_select
        intersect_count = kern.intersect_count
        binom = binomial

        def rec(P: int, pc: int, held: int, pivots: int) -> int:
            acc[0] += 1
            if held == k:
                # Exactly one k-clique remains below: the held set.
                acc[1] += 1
                depth = held + pivots
                if depth > acc[5]:
                    acc[5] = depth
                return 1
            if pc == 0:
                acc[1] += 1
                depth = held + pivots
                if depth > acc[5]:
                    acc[5] = depth
                return binom(pivots, k - held)
            if early_termination and held + pivots + pc < k:
                acc[2] += 1
                return 0
            # Pivot selection: one fused scan over the candidates' rows.
            acc[3] += pc
            best, best_row, best_cnt, edge_sum = pivot_select(rows, P, pc)
            total = rec(best_row, best_cnt, held, pivots + 1)
            P &= ~(1 << best)
            cand = P & ~best_row
            acc[4] += cand.bit_count()
            held1 = held + 1
            while cand:
                low = cand & -cand
                child, cc = intersect_count(rows, low.bit_length() - 1, P)
                edge_sum += cc
                total += rec(child, cc, held1, pivots)
                P ^= low
                cand ^= low
            acc[6] += edge_sum
            return total

        return rec

    def _rec_k_frontier(
        self, ctx, k: int, acc: list, early_termination: bool
    ) -> int:
        """Frontier-batched recursion spine (tier-2 kernels).

        Visits the exact same tree as the scalar ``rec`` in the same
        depth-first order and charges identical ``acc`` totals, but
        masks stay kernel-native end to end and all of a node's viable
        children get their pivot chosen by *one*
        ``pivot_select_sweep`` call (children that a terminal check
        will absorb are never swept).  The branch loop's per-child
        ``intersect_count`` calls collapse into one
        ``expand_children`` call per node.

        The spine is *hybrid*: recursion work concentrates in the vast
        small-``pc`` tail, where per-node batching overhead costs more
        than vectorization saves, so any subtree whose candidate count
        falls below :data:`_FRONTIER_MIN_PC` is handed whole to the
        scalar big-int recursion (:meth:`_make_rec_k` — the identical
        code the scalar spine runs, charging the identical ``acc``
        totals).  Only the dense upper levels pay for — and profit
        from — the word-tile sweeps.
        """
        rows = ctx.rows
        kern = ctx.kernel
        expand = kern.expand_children
        sweep = kern.pivot_select_sweep
        mask_int = kern.mask_int
        binom = binomial
        cutoff = _FRONTIER_MIN_PC
        srec = self._make_rec_k(ctx, k, acc, early_termination)

        def rec(P, pc: int, held: int, pivots: int, choice) -> int:
            acc[0] += 1
            if held == k:
                acc[1] += 1
                depth = held + pivots
                if depth > acc[5]:
                    acc[5] = depth
                return 1
            if pc == 0:
                acc[1] += 1
                depth = held + pivots
                if depth > acc[5]:
                    acc[5] = depth
                return binom(pivots, k - held)
            if early_termination and held + pivots + pc < k:
                acc[2] += 1
                return 0
            acc[3] += pc
            best, best_row, best_cnt, edge_sum = choice
            ws, children, ccs = expand(rows, P, best, best_row)
            nb = len(ws)
            acc[4] += nb
            edge_sum += sum(ccs)
            acc[6] += edge_sum
            held1 = held + 1
            pivots1 = pivots + 1
            masks = []
            pcs = []
            slots = []
            big_pivot = best_cnt >= cutoff
            if big_pivot and not (
                early_termination and held + pivots1 + best_cnt < k
            ):
                masks.append(best_row)
                pcs.append(best_cnt)
                slots.append(-1)
            if held1 != k:
                for i in range(nb):
                    cc = ccs[i]
                    if cc >= cutoff and not (
                        early_termination and held1 + pivots + cc < k
                    ):
                        masks.append(children[i])
                        pcs.append(cc)
                        slots.append(i)
            pivot_choice = None
            child_choice = [None] * nb
            if masks:
                cb, cr, ccnt, ce = sweep(rows, masks, pcs)
                for t, s in enumerate(slots):
                    if s < 0:
                        pivot_choice = (cb[t], cr[t], ccnt[t], ce[t])
                    else:
                        child_choice[s] = (cb[t], cr[t], ccnt[t], ce[t])
            if big_pivot:
                total = rec(best_row, best_cnt, held, pivots1, pivot_choice)
            else:
                total = srec(
                    mask_int(rows, best_row), best_cnt, held, pivots1
                )
            for i in range(nb):
                cc = ccs[i]
                if cc >= cutoff:
                    total += rec(
                        children[i], cc, held1, pivots, child_choice[i]
                    )
                else:
                    total += srec(
                        mask_int(rows, children[i]), cc, held1, pivots
                    )
            return total

        d = ctx.d
        full = (1 << d) - 1
        if d < cutoff or k == 1 or (early_termination and 1 + d < k):
            return srec(full, d, 1, 0)
        fullN = kern.to_native(rows, full)
        cb, cr, ccnt, ce = sweep(rows, [fullN], [d])
        return rec(fullN, d, 1, 0, (cb[0], cr[0], ccnt[0], ce[0]))

    def _count_root_all(
        self, v: int, cap: int, length: int, ctr: Counters
    ) -> list[int]:
        """Per-size counts for one root, as a fresh ``length``-long row.

        Writing into a local row (folded by the caller *after* budget
        checks pass) keeps the shared distribution consistent if the
        controller aborts the run on this root.
        """
        counts = [0] * length
        ctx = self.structure.build(v)
        ctr.subgraph_builds += 1
        ctr.build_words += ctx.build_words
        ctr.peak_subgraph_bytes = max(ctr.peak_subgraph_bytes, ctx.memory_bytes)
        d = ctx.d
        kern = ctx.kernel
        lw = ctx.lookup_weight
        full = (1 << d) - 1
        acc = [0, 0, 0, 0, 0, 0, 0]

        if kern.frontier:
            self._rec_all_frontier(ctx, cap, counts, acc)
            ctr.function_calls += acc[0]
            ctr.leaves += acc[1]
            ctr.early_terminations += acc[2]
            ctr.index_lookups += (acc[3] + acc[4]) * lw
            ctr.set_op_words += acc[6] + acc[3] + acc[4]
            ctr.max_depth = max(ctr.max_depth, acc[5])
            return counts

        rec = self._make_rec_all(ctx, cap, counts, acc)
        rec(full, d, 1, 0)
        ctr.function_calls += acc[0]
        ctr.leaves += acc[1]
        ctr.early_terminations += acc[2]
        ctr.index_lookups += (acc[3] + acc[4]) * lw
        ctr.set_op_words += acc[6] + acc[3] + acc[4]
        ctr.max_depth = max(ctr.max_depth, acc[5])
        return counts

    def _make_rec_all(self, ctx, cap: int, counts: list, acc: list):
        """The scalar all-k recursion closure — shared verbatim by the
        scalar spine and the frontier spine's small-subtree fast path
        (see :meth:`_make_rec_k`)."""
        rows = ctx.rows
        kern = ctx.kernel
        pivot_select = kern.pivot_select
        intersect_count = kern.intersect_count

        def rec(P: int, pc: int, held: int, pivots: int) -> None:
            acc[0] += 1
            if held >= cap:
                acc[2] += 1
                return
            if pc == 0:
                acc[1] += 1
                depth = held + pivots
                if depth > acc[5]:
                    acc[5] = depth
                brow = binomial_row(pivots)
                hi = min(held + pivots + 1, cap)
                for s in range(held, hi):
                    counts[s] += brow[s - held]
                return
            acc[3] += pc
            best, best_row, best_cnt, edge_sum = pivot_select(rows, P, pc)
            rec(best_row, best_cnt, held, pivots + 1)
            P &= ~(1 << best)
            cand = P & ~best_row
            acc[4] += cand.bit_count()
            held1 = held + 1
            while cand:
                low = cand & -cand
                child, cc = intersect_count(rows, low.bit_length() - 1, P)
                edge_sum += cc
                rec(child, cc, held1, pivots)
                P ^= low
                cand ^= low
            acc[6] += edge_sum

        return rec

    def _rec_all_frontier(
        self, ctx, cap: int, counts: list, acc: list
    ) -> None:
        """Frontier-batched all-k recursion — the counterpart of
        :meth:`_rec_k_frontier` for :meth:`_count_root_all`; same tree,
        same order, same ``acc`` totals as the scalar spine, same
        hybrid small-subtree cutoff."""
        rows = ctx.rows
        kern = ctx.kernel
        expand = kern.expand_children
        sweep = kern.pivot_select_sweep
        mask_int = kern.mask_int
        cutoff = _FRONTIER_MIN_PC
        srec = self._make_rec_all(ctx, cap, counts, acc)

        def rec(P, pc: int, held: int, pivots: int, choice) -> None:
            acc[0] += 1
            if held >= cap:
                acc[2] += 1
                return
            if pc == 0:
                acc[1] += 1
                depth = held + pivots
                if depth > acc[5]:
                    acc[5] = depth
                brow = binomial_row(pivots)
                hi = min(held + pivots + 1, cap)
                for s in range(held, hi):
                    counts[s] += brow[s - held]
                return
            acc[3] += pc
            best, best_row, best_cnt, edge_sum = choice
            ws, children, ccs = expand(rows, P, best, best_row)
            nb = len(ws)
            acc[4] += nb
            edge_sum += sum(ccs)
            acc[6] += edge_sum
            held1 = held + 1
            masks = []
            pcs = []
            slots = []
            big_pivot = best_cnt >= cutoff
            if big_pivot:
                masks.append(best_row)
                pcs.append(best_cnt)
                slots.append(-1)
            if held1 < cap:
                for i in range(nb):
                    if ccs[i] >= cutoff:
                        masks.append(children[i])
                        pcs.append(ccs[i])
                        slots.append(i)
            pivot_choice = None
            child_choice = [None] * nb
            if masks:
                cb, cr, ccnt, ce = sweep(rows, masks, pcs)
                for t, s in enumerate(slots):
                    if s < 0:
                        pivot_choice = (cb[t], cr[t], ccnt[t], ce[t])
                    else:
                        child_choice[s] = (cb[t], cr[t], ccnt[t], ce[t])
            if big_pivot:
                rec(best_row, best_cnt, held, pivots + 1, pivot_choice)
            else:
                srec(mask_int(rows, best_row), best_cnt, held, pivots + 1)
            for i in range(nb):
                cc = ccs[i]
                if cc >= cutoff:
                    rec(children[i], cc, held1, pivots, child_choice[i])
                else:
                    srec(mask_int(rows, children[i]), cc, held1, pivots)

        d = ctx.d
        full = (1 << d) - 1
        if d < cutoff or cap <= 1:
            srec(full, d, 1, 0)
            return
        fullN = kern.to_native(rows, full)
        cb, cr, ccnt, ce = sweep(rows, [fullN], [d])
        rec(fullN, d, 1, 0, (cb[0], cr[0], ccnt[0], ce[0]))


# ----------------------------------------------------------------------
# convenience wrappers
# ----------------------------------------------------------------------
def count_kcliques(
    graph: CSRGraph,
    k: int,
    ordering: Ordering | np.ndarray | CSRGraph,
    structure: str = "remap",
    kernel: str | BitsetKernel | None = None,
    controller: "RunController | None" = None,
) -> CountResult:
    """Count k-cliques of ``graph`` under ``ordering`` — one-shot API."""
    return SCTEngine(graph, ordering, structure, kernel=kernel).count(
        k, controller=controller
    )


def count_all_sizes(
    graph: CSRGraph,
    ordering: Ordering | np.ndarray | CSRGraph,
    structure: str = "remap",
    max_k: int | None = None,
    kernel: str | BitsetKernel | None = None,
    controller: "RunController | None" = None,
) -> CountResult:
    """Count cliques of every size (Fig. 1's distribution) — one-shot."""
    return SCTEngine(graph, ordering, structure, kernel=kernel).count_all(
        max_k=max_k, controller=controller
    )
