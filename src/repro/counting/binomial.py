"""Exact binomial coefficients with a growing cached Pascal triangle.

The SCT leaf rule charges ``C(np, k - |C| + np)`` per leaf (Alg. 1 line
10) and the all-k variant needs a whole row per leaf, so coefficient
lookup is on the counting hot path.  We cache full rows: a leaf with
``np`` pivots reads row ``np`` directly.  Values are Python ints —
clique counts reach 10^23 on the LiveJournal workload (Table VI).
"""

from __future__ import annotations

__all__ = ["binomial", "binomial_row", "BinomialTable"]


class BinomialTable:
    """Pascal's triangle grown on demand; rows are immutable tuples."""

    def __init__(self) -> None:
        self._rows: list[tuple[int, ...]] = [(1,)]

    def row(self, n: int) -> tuple[int, ...]:
        """Row ``n``: ``(C(n,0), ..., C(n,n))``."""
        if n < 0:
            raise ValueError("binomial row index must be >= 0")
        rows = self._rows
        while len(rows) <= n:
            prev = rows[-1]
            nxt = [1] * (len(prev) + 1)
            for i in range(1, len(prev)):
                nxt[i] = prev[i - 1] + prev[i]
            rows.append(tuple(nxt))
        return rows[n]

    def choose(self, n: int, k: int) -> int:
        """``C(n, k)``; 0 outside ``0 <= k <= n``."""
        if k < 0 or k > n or n < 0:
            return 0
        return self.row(n)[k]


_TABLE = BinomialTable()


def binomial(n: int, k: int) -> int:
    """Exact ``C(n, k)`` from the shared cached table (0 out of range)."""
    return _TABLE.choose(n, k)


def binomial_row(n: int) -> tuple[int, ...]:
    """Row ``n`` of Pascal's triangle from the shared cached table."""
    return _TABLE.row(n)
