"""Materialized SCT forest — build the pivot tree once, query forever.

The succinct clique tree's whole value proposition (Pivoter; PivotScale
Sec. V-A) is that *one* pivot recursion encodes every clique of the
graph: each leaf with held set ``H`` and pivot set ``Π`` stands for the
clique family ``{H ∪ S : S ⊆ Π}``, each clique appearing in exactly one
family.  The direct engines throw that tree away and re-run the
recursion for every question asked of it — ``count(k)`` per k,
per-vertex counts, per-edge counts, profiles, and the peeling apps pay
the full traversal again and again.

:class:`SCTForest` runs the recursion **once** per (graph, DAG,
structure, kernel) and records, per leaf, the compact tuple the SCT
needs — ``(|H|, |Π|)`` in flat NumPy arrays, the leaf's root vertex,
and (for attribution queries) the packed held-/pivot-member ids.  Every
counting query then becomes an array fold over the leaves:

* :meth:`count` / :meth:`count_all` — group leaves by their
  ``(|H|, |Π|)`` pair with :func:`np.unique`/``bincount`` once, then
  fold exact binomial coefficients (Pascal rows) over the handful of
  distinct pairs.  Exact Python-int arithmetic, microseconds per query.
* :meth:`per_vertex` / :meth:`per_edge` — the Sec. V-A attribution
  formulas applied to the stored memberships (vectorized
  ``np.add.at`` when the totals provably fit ``int64``, exact big-int
  fallback otherwise).
* :meth:`profiles`, :meth:`max_clique_size`, :attr:`per_root_work` —
  free by-products of the same arrays.
* :meth:`sample_cliques` — uniform k-clique sampling by leaf-weighted
  selection, a workload the materialized tree gives us for free: pick
  a leaf with probability ``C(|Π|, k-|H|) / total``, then ``k - |H|``
  of its pivots uniformly.

Builds cooperate with the :class:`~repro.runtime.RunController` at root
granularity (deadlines, node budgets, checkpoint/resume); the member
arrays are memory-accounted, and a crossed watermark either raises the
standard :class:`~repro.errors.MemoryBudgetExceededError` or — with
degradation enabled — *spills* the memberships and keeps the
counts-only forest (attribution queries then raise, counting queries
stay exact).  Forests are cached in-process keyed by the same
fingerprint machinery checkpoints use, and can be saved to / loaded
from an ``.npz`` file next to a run's checkpoints.

When is re-recursing cheaper?  A single ``count(k)`` on a graph you
will never query again: the forest build costs one full (unpruned)
traversal plus recording, while a lone target-k run enjoys the early
exits.  The forest wins from the second query onward — and the build
is itself cheaper than one all-k run on clique-rich graphs because
leaves are recorded, not expanded into binomial rows.
"""

from __future__ import annotations

import io
import json
import os
import warnings
import zipfile
import zlib
from collections import OrderedDict
from contextlib import nullcontext

import numpy as np

from repro import obs
from repro.counting.binomial import binomial, binomial_row
from repro.counting.counters import Counters
from repro.counting.sct import _FRONTIER_MIN_PC
from repro.counting.structures import STRUCTURES, SubgraphStructure
from repro.errors import (
    CheckpointError,
    CountingError,
    DegradedResultWarning,
    ForestFormatError,
    KernelFaultError,
    MemoryBudgetExceededError,
)
from repro.graph.csr import CSRGraph
from repro.kernels import BitsetKernel
from repro.ordering.base import Ordering
from repro.ordering.directionalize import directionalize
from repro.runtime.checkpoint import graph_fingerprint
from repro.runtime.controller import RunController

__all__ = [
    "SCTForest",
    "build_forest",
    "get_forest",
    "load_forest",
    "load_or_rebuild_forest",
    "forest_cache_key",
    "clear_forest_cache",
    "collect_root_leaves",
]

FOREST_FORMAT_VERSION = 1

#: Vectorized attribution is used only when the query's total clique
#: count provably bounds every intermediate below int64 range.
_INT64_SAFE = 1 << 62

#: Modeled bytes per stored leaf (held_n + pivot_n + root).
_LEAF_BYTES = 12
#: Modeled bytes per stored member id.
_MEMBER_BYTES = 4


class SCTForest:
    """One materialized succinct clique tree, served from flat arrays.

    Build via :meth:`build` (or the module-level :func:`get_forest`,
    which adds fingerprint-keyed caching); the constructor only wraps
    already-finalized arrays.

    Attributes
    ----------
    held_n / pivot_n:
        ``int32[L]`` — per-leaf held-set and pivot-set sizes.
    roots:
        ``int32[L]`` — the root vertex owning each leaf.
    held_members / pivot_members:
        ``int32[·]`` flat member ids (global vertex ids), sliced by
        :attr:`held_off` / :attr:`pivot_off`; ``None`` after a memory
        spill (counts-only forest).
    per_root_work / per_root_memory:
        The same per-root task vectors :class:`~repro.counting.sct.CountResult`
        carries — the scheduler model's inputs.
    counters:
        Build-time instrumentation (one full unpruned SCT traversal).
    descriptor:
        Identity dict (engine/structure/kernel + graph & DAG
        fingerprints) — the cache key and the save/load guard.
    """

    def __init__(
        self,
        *,
        num_vertices: int,
        held_n: np.ndarray,
        pivot_n: np.ndarray,
        roots: np.ndarray,
        held_members: np.ndarray | None,
        pivot_members: np.ndarray | None,
        per_root_work: np.ndarray,
        per_root_memory: np.ndarray,
        counters: Counters,
        descriptor: dict,
        degraded_from: str | None = None,
    ) -> None:
        self.num_vertices = int(num_vertices)
        self.held_n = np.asarray(held_n, dtype=np.int32)
        self.pivot_n = np.asarray(pivot_n, dtype=np.int32)
        self.roots = np.asarray(roots, dtype=np.int32)
        self.held_members = (
            None if held_members is None
            else np.asarray(held_members, dtype=np.int32)
        )
        self.pivot_members = (
            None if pivot_members is None
            else np.asarray(pivot_members, dtype=np.int32)
        )
        self.per_root_work = np.asarray(per_root_work, dtype=np.float64)
        self.per_root_memory = np.asarray(per_root_memory, dtype=np.float64)
        self.counters = counters
        self.descriptor = dict(descriptor)
        self.degraded_from = degraded_from
        # Bound build inputs (see :meth:`bind`) — what `apply_edits`
        # edits against.  Loaded forests start unbound.
        self._graph: CSRGraph | None = None
        self._dag: CSRGraph | None = None
        self._rank: np.ndarray | None = None
        self._edits_since_reorder = 0
        self._finalize()

    # ------------------------------------------------------------------
    # derived indexes
    # ------------------------------------------------------------------
    def _finalize(self) -> None:
        L = int(self.held_n.size)
        self.num_leaves = L
        self.held_off = np.zeros(L + 1, dtype=np.int64)
        self.pivot_off = np.zeros(L + 1, dtype=np.int64)
        np.cumsum(self.held_n, out=self.held_off[1:])
        np.cumsum(self.pivot_n, out=self.pivot_off[1:])
        if L:
            pmax = int(self.pivot_n.max())
            key = self.held_n.astype(np.int64) * (pmax + 1) + self.pivot_n
            uniq, inv, mult = np.unique(
                key, return_inverse=True, return_counts=True
            )
            self._pairs = [
                (int(u) // (pmax + 1), int(u) % (pmax + 1), int(m))
                for u, m in zip(uniq, mult)
            ]
            self._pair_inv = inv.astype(np.int64)
        else:
            self._pairs = []
            self._pair_inv = np.zeros(0, dtype=np.int64)

    @property
    def has_members(self) -> bool:
        """Whether the member arrays survived (no memory spill)."""
        return self.held_members is not None and self.pivot_members is not None

    # ------------------------------------------------------------------
    # bound build inputs (the dynamic-update substrate)
    # ------------------------------------------------------------------
    def bind(
        self,
        *,
        graph: CSRGraph | None = None,
        dag: CSRGraph | None = None,
        rank: np.ndarray | None = None,
    ) -> "SCTForest":
        """Attach the build inputs this forest materializes.

        :meth:`build` / :func:`get_forest` call this automatically;
        forests loaded from ``.npz`` stay unbound (the file stores only
        fingerprints) and need explicit ``graph=`` / ``ordering=``
        arguments to :meth:`apply_edits`.  Only the given fields are
        updated.  Returns ``self``.
        """
        if graph is not None:
            self._graph = graph
        if dag is not None:
            self._dag = dag
        if rank is not None:
            self._rank = np.asarray(rank, dtype=np.int64)
        return self

    @property
    def graph(self) -> CSRGraph | None:
        """The undirected graph this forest was built from (if bound)."""
        return self._graph

    @property
    def dag(self) -> CSRGraph | None:
        """The directionalized DAG the recursion ran over (if bound)."""
        return self._dag

    @property
    def rank(self) -> np.ndarray | None:
        """The rank permutation behind :attr:`dag` (if bound)."""
        return self._rank

    def apply_edits(
        self,
        edits,
        *,
        graph: CSRGraph | None = None,
        ordering=None,
        policy: str = "patch",
        reorder_ratio: float = 0.25,
        controller: RunController | None = None,
    ):
        """Apply a batch of edge insertions/deletions in place.

        ``edits`` is an in-order sequence of ``("+"|"-", u, v)``
        records; the batch's *net* effect against the bound graph is
        applied (duplicates collapse, insert-then-delete cancels,
        already-satisfied records are skipped).  Only the dirty roots —
        those whose closed DAG out-neighborhood contains both endpoints
        of some applied edit, in the old or new graph — are re-run
        through the pivot recursion, and the flat leaf arrays are
        patched in place, bit-identical to a from-scratch rebuild under
        the same vertex order (``tests/test_dynamic.py``).

        ``policy`` is one of ``"patch"`` (keep the build-time order;
        default), ``"reorder"`` (full rebuild under a fresh degeneracy
        order of the edited graph), or ``"auto"`` (patch until
        cumulative edits since the last reorder exceed
        ``reorder_ratio x |E|``).  A ``controller`` is honored at
        dirty-root granularity with the usual budget/checkpoint/
        degradation semantics.  The forest's descriptor fingerprints
        (and its in-process cache slot, if any) are re-keyed to the
        edited graph, so the pre-edit graph can never be served the
        patched forest.  Returns an
        :class:`~repro.counting.dynamic.EditReport`.
        """
        from repro.counting.dynamic import apply_edits as _apply_edits

        return _apply_edits(
            self, edits, graph=graph, ordering=ordering, policy=policy,
            reorder_ratio=reorder_ratio, controller=controller,
        )

    def copy(self) -> "SCTForest":
        """An independent deep copy (arrays, counters, bindings) —
        edit one side freely, e.g. to compare incremental against
        rebuilt, or to keep a pre-edit snapshot."""
        dup = SCTForest(
            num_vertices=self.num_vertices,
            held_n=self.held_n.copy(),
            pivot_n=self.pivot_n.copy(),
            roots=self.roots.copy(),
            held_members=(
                None if self.held_members is None
                else self.held_members.copy()
            ),
            pivot_members=(
                None if self.pivot_members is None
                else self.pivot_members.copy()
            ),
            per_root_work=self.per_root_work.copy(),
            per_root_memory=self.per_root_memory.copy(),
            counters=Counters.from_dict(self.counters.as_dict()),
            descriptor=dict(self.descriptor),
            degraded_from=self.degraded_from,
        )
        dup.bind(graph=self._graph, dag=self._dag, rank=self._rank)
        dup._edits_since_reorder = self._edits_since_reorder
        return dup

    @property
    def nbytes(self) -> int:
        """Actual footprint of the materialized arrays."""
        total = (
            self.held_n.nbytes + self.pivot_n.nbytes + self.roots.nbytes
            + self.held_off.nbytes + self.pivot_off.nbytes
            + self.per_root_work.nbytes + self.per_root_memory.nbytes
        )
        if self.held_members is not None:
            total += self.held_members.nbytes
        if self.pivot_members is not None:
            total += self.pivot_members.nbytes
        return total

    # ------------------------------------------------------------------
    # build
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graph: CSRGraph,
        ordering: Ordering | np.ndarray | CSRGraph,
        structure: str | SubgraphStructure = "remap",
        kernel: str | BitsetKernel | None = None,
        *,
        controller: RunController | None = None,
        members: bool = True,
    ) -> "SCTForest":
        """Run the pivot recursion once and materialize every leaf.

        ``members=False`` skips the held/pivot member id recording —
        counting queries stay exact, attribution queries raise.  A
        ``controller`` is honored at root granularity exactly like the
        direct engines: deadline/node budgets, checkpoint/resume, and
        kernel-fault fallback to ``bigint``; a crossed memory
        watermark raises, or spills the memberships when degradation
        is enabled.
        """
        if graph.directed:
            raise CountingError("input graph must be undirected")
        rank: np.ndarray | None = None
        if isinstance(ordering, CSRGraph):
            if not ordering.directed:
                raise CountingError("pass a DAG or an ordering, not a 2nd graph")
            dag = ordering
        else:
            dag = directionalize(graph, ordering)
            rank = np.asarray(
                ordering.rank if isinstance(ordering, Ordering) else ordering,
                dtype=np.int64,
            )
        if isinstance(structure, SubgraphStructure):
            struct = structure
        else:
            try:
                struct = STRUCTURES[structure](graph, dag, kernel=kernel)
            except KeyError:
                raise CountingError(
                    f"unknown structure {structure!r}; "
                    f"expected one of {sorted(STRUCTURES)}"
                ) from None
        forest = cls._build_impl(
            graph, dag, struct, controller=controller, members=members
        )
        return forest.bind(graph=graph, dag=dag, rank=rank)

    @classmethod
    def _build_impl(
        cls,
        graph: CSRGraph,
        dag: CSRGraph,
        struct: SubgraphStructure,
        *,
        controller: RunController | None,
        members: bool,
    ) -> "SCTForest":
        ctl = controller
        n = graph.num_vertices
        totals = Counters()
        per_root_work = np.zeros(n, dtype=np.float64)
        per_root_memory = np.zeros(n, dtype=np.float64)
        held_n: list[int] = []
        pivot_n: list[int] = []
        roots: list[int] = []
        held_members: list[int] | None = [] if members else None
        pivot_members: list[int] | None = [] if members else None
        start = 0
        done = 0
        degraded_from: str | None = None
        spilled = not members

        descriptor = {
            "engine": "sct-forest",
            "structure": struct.name,
            "kernel": struct.kernel.name,
            "members": bool(members),
            "graph_fingerprint": graph_fingerprint(graph),
            "dag_fingerprint": graph_fingerprint(dag),
        }

        def forest_model_bytes() -> int:
            total = _LEAF_BYTES * len(held_n)
            if held_members is not None and pivot_members is not None:
                total += _MEMBER_BYTES * (
                    len(held_members) + len(pivot_members)
                )
            return total

        if ctl is not None:
            def snapshot() -> dict:
                return {
                    "next_root": done,
                    "held_n": list(held_n),
                    "pivot_n": list(pivot_n),
                    "roots": list(roots),
                    "held_members": (
                        None if held_members is None else list(held_members)
                    ),
                    "pivot_members": (
                        None if pivot_members is None else list(pivot_members)
                    ),
                    "counters": totals.as_dict(),
                    "per_root_work": per_root_work[:done].tolist(),
                    "per_root_memory": per_root_memory[:done].tolist(),
                    "degraded_from": degraded_from,
                    "spilled": spilled,
                }

            state = ctl.begin(descriptor, snapshot)
            if state is not None:
                start = done = int(state["next_root"])
                held_n = [int(x) for x in state["held_n"]]
                pivot_n = [int(x) for x in state["pivot_n"]]
                roots = [int(x) for x in state["roots"]]
                spilled = bool(state.get("spilled"))
                stored_h = state.get("held_members")
                stored_p = state.get("pivot_members")
                if spilled or stored_h is None or stored_p is None:
                    held_members = pivot_members = None
                    spilled = True
                else:
                    held_members = [int(x) for x in stored_h]
                    pivot_members = [int(x) for x in stored_p]
                totals = Counters.from_dict(state["counters"])
                per_root_work[:start] = state["per_root_work"]
                per_root_memory[:start] = state["per_root_memory"]
                degraded_from = state.get("degraded_from")

        def spill() -> None:
            nonlocal held_members, pivot_members, spilled, degraded_from
            held_members = pivot_members = None
            spilled = True
            obs.degradation("member_spill", engine="sct-forest")
            if degraded_from is None:
                degraded_from = "members"

        def run_root(v: int) -> tuple[Counters, list]:
            ctr = Counters()
            leaves = _collect_root(
                struct, v, ctr, record_members=held_members is not None
            )
            return ctr, leaves

        span_attrs = {"engine": "sct-forest", "structure": struct.name,
                      "kernel": struct.kernel.name, "members": bool(members)}
        if obs.get_tracer().enabled:
            span_attrs["graph"] = descriptor["graph_fingerprint"]
        try:
            with obs.span("forest.build", **span_attrs), obs.phase(
                "forest_build"
            ), (ctl.guard() if ctl is not None else nullcontext()):
                for v in range(start, n):
                    if ctl is None:
                        ctr, leaves = run_root(v)
                    else:
                        try:
                            ctl.tick()
                            ctr, leaves = run_root(v)
                        except MemoryError as exc:
                            raise MemoryBudgetExceededError(
                                f"allocation failure at root {v}",
                                spent=ctl.spent_snapshot(),
                            ) from exc
                        except KernelFaultError:
                            if (
                                not ctl.degrade
                                or struct.kernel.name == "bigint"
                            ):
                                raise
                            fallen = struct.kernel.name
                            obs.degradation(
                                "kernel_fallback", engine="sct-forest",
                                root=v, from_kernel=fallen,
                            )
                            struct = type(struct)(graph, dag, kernel="bigint")
                            descriptor["kernel"] = "bigint"
                            if degraded_from is None:
                                degraded_from = fallen
                            ctr, leaves = run_root(v)
                        ctl.charge_nodes(ctr.function_calls)
                    for h_count, p_count, h_ids, p_ids in leaves:
                        held_n.append(h_count)
                        pivot_n.append(p_count)
                        roots.append(v)
                        if held_members is not None and h_ids is not None:
                            held_members.extend(h_ids)
                            pivot_members.extend(p_ids)
                    per_root_work[v] = ctr.work
                    per_root_memory[v] = ctr.peak_subgraph_bytes
                    totals.merge(ctr)
                    obs.note_memory(ctr.peak_subgraph_bytes)
                    done = v + 1
                    if ctl is not None:
                        try:
                            ctl.note_memory(
                                max(ctr.peak_subgraph_bytes,
                                    forest_model_bytes())
                            )
                        except MemoryBudgetExceededError:
                            # The forest itself crossed the watermark.
                            # The degradation rung: spill the member
                            # arrays, keep the exact counts-only forest.
                            if not ctl.degrade or held_members is None:
                                raise
                            spill()
                            ctl.note_memory(
                                max(ctr.peak_subgraph_bytes,
                                    forest_model_bytes())
                            )
                        ctl.complete_root(v)
        finally:
            obs.record_run(
                totals, engine="sct-forest", structure=struct.name,
                kernel=struct.kernel.name, roots=done - start,
            )
            reg = obs.get_registry()
            if reg.enabled:
                reg.gauge("forest_leaves").set(len(held_n))
                reg.gauge("forest_model_bytes").set(forest_model_bytes())

        descriptor["members"] = held_members is not None
        return cls(
            num_vertices=n,
            held_n=np.asarray(held_n, dtype=np.int32),
            pivot_n=np.asarray(pivot_n, dtype=np.int32),
            roots=np.asarray(roots, dtype=np.int32),
            held_members=(
                None if held_members is None
                else np.asarray(held_members, dtype=np.int32)
            ),
            pivot_members=(
                None if pivot_members is None
                else np.asarray(pivot_members, dtype=np.int32)
            ),
            per_root_work=per_root_work,
            per_root_memory=per_root_memory,
            counters=totals,
            descriptor=descriptor,
            degraded_from=degraded_from,
        )

    # ------------------------------------------------------------------
    # counting queries — exact folds over the (|H|, |Π|) pair table
    # ------------------------------------------------------------------
    @staticmethod
    def _record_query(query: str) -> None:
        reg = obs.get_registry()
        if reg.enabled:
            reg.counter("forest_queries_total", query=query).inc()

    def count(self, k: int) -> int:
        """Exact number of k-cliques, identical to
        :meth:`SCTEngine.count(k).count <repro.counting.sct.SCTEngine.count>`."""
        if k < 1:
            raise CountingError(f"clique size k must be >= 1, got {k}")
        self._record_query("count")
        total = 0
        for h, p, m in self._pairs:
            c = binomial(p, k - h)
            if c:
                total += m * c
        return total

    def count_all(self, max_k: int | None = None) -> list[int]:
        """Per-size clique counts, identical to
        :meth:`SCTEngine.count_all(...).all_counts
        <repro.counting.sct.SCTEngine.count_all>` (trailing zeros
        trimmed, at least ``[0]``)."""
        if max_k is not None and max_k < 1:
            raise CountingError("max_k must be >= 1")
        self._record_query("count_all")
        cap = None if max_k is None else max_k + 1
        top = 0
        for h, p, _ in self._pairs:
            top = max(top, h + p)
        length = max(top + 1, 2)
        if cap is not None:
            length = min(length, max(cap, 2))
        counts = [0] * length
        for h, p, m in self._pairs:
            brow = binomial_row(p)
            hi = min(h + p + 1, cap if cap is not None else h + p + 1, length)
            for s in range(h, hi):
                counts[s] += m * brow[s - h]
        while len(counts) > 1 and counts[-1] == 0:
            counts.pop()
        return counts

    def max_clique_size(self) -> int:
        """The graph's ``k_max`` — the deepest ``|H| + |Π|`` leaf."""
        self._record_query("max_clique_size")
        top = 0
        for h, p, _ in self._pairs:
            top = max(top, h + p)
        return top

    # ------------------------------------------------------------------
    # attribution queries — Sec. V-A formulas over stored memberships
    # ------------------------------------------------------------------
    def _require_members(self, what: str) -> None:
        if not self.has_members:
            raise CountingError(
                f"{what} needs leaf memberships, but this forest was built "
                "without them (members=False or memory spill); rebuild with "
                "members enabled or use the direct engine"
            )

    def _leaf_coeffs(self, k: int) -> tuple[np.ndarray, np.ndarray, bool]:
        """Per-leaf ``(C(p, k-h), C(p-1, k-h-1))`` as int64 arrays, plus
        whether the int64 fast path is provably overflow-free."""
        safe = self.count(k) < _INT64_SAFE
        if not safe:
            return np.zeros(0), np.zeros(0), False
        c_held = np.fromiter(
            (binomial(p, k - h) for h, p, _ in self._pairs),
            dtype=np.int64, count=len(self._pairs),
        )
        c_piv = np.fromiter(
            (binomial(p - 1, k - h - 1) for h, p, _ in self._pairs),
            dtype=np.int64, count=len(self._pairs),
        )
        return c_held[self._pair_inv], c_piv[self._pair_inv], True

    def per_vertex(self, k: int) -> list[int]:
        """Number of k-cliques containing each vertex — identical to
        :func:`repro.counting.pervertex.per_vertex_counts`."""
        if k < 1:
            raise CountingError(f"clique size k must be >= 1, got {k}")
        self._record_query("per_vertex")
        self._require_members("per-vertex attribution")
        n = self.num_vertices
        if self.num_leaves == 0:
            return [0] * n
        c_held, c_piv, safe = self._leaf_coeffs(k)
        if safe:
            per = np.zeros(n, dtype=np.int64)
            np.add.at(per, self.held_members,
                      np.repeat(c_held, self.held_n))
            np.add.at(per, self.pivot_members,
                      np.repeat(c_piv, self.pivot_n))
            return per.tolist()
        # Exact big-int fallback for astronomically clique-rich graphs.
        per_list = [0] * n
        hm = self.held_members.tolist()
        pm = self.pivot_members.tolist()
        ho = self.held_off.tolist()
        po = self.pivot_off.tolist()
        for i, (h, p) in enumerate(zip(self.held_n.tolist(),
                                       self.pivot_n.tolist())):
            c = binomial(p, k - h)
            if c == 0:
                continue
            for u in hm[ho[i]:ho[i + 1]]:
                per_list[u] += c
            c_in = binomial(p - 1, k - h - 1)
            if c_in:
                for u in pm[po[i]:po[i + 1]]:
                    per_list[u] += c_in
        return per_list

    def per_edge(self, k: int) -> dict[tuple[int, int], int]:
        """k-clique count per edge — identical to
        :func:`repro.counting.peredge.per_edge_counts`."""
        from itertools import combinations

        if k < 2:
            raise CountingError(f"per-edge counts need k >= 2, got {k}")
        self._record_query("per_edge")
        self._require_members("per-edge attribution")
        per: dict[tuple[int, int], int] = {}
        hm = self.held_members.tolist()
        pm = self.pivot_members.tolist()
        ho = self.held_off.tolist()
        po = self.pivot_off.tolist()
        for i, (h, p) in enumerate(zip(self.held_n.tolist(),
                                       self.pivot_n.tolist())):
            j = k - h
            c_all = binomial(p, j)
            if c_all == 0:
                continue
            held = hm[ho[i]:ho[i + 1]]
            piv = pm[po[i]:po[i + 1]]
            c_hp = binomial(p - 1, j - 1)
            c_pp = binomial(p - 2, j - 2)
            for a, b in combinations(held, 2):
                key = (a, b) if a < b else (b, a)
                per[key] = per.get(key, 0) + c_all
            if c_hp:
                for a in held:
                    for b in piv:
                        key = (a, b) if a < b else (b, a)
                        per[key] = per.get(key, 0) + c_hp
            if c_pp:
                for a, b in combinations(piv, 2):
                    key = (a, b) if a < b else (b, a)
                    per[key] = per.get(key, 0) + c_pp
        return per

    def profiles(self, max_k: int | None = None) -> list[list[int]]:
        """Per-vertex clique profiles — identical to
        :func:`repro.counting.profiles.per_vertex_profiles`
        (``result[v][s]`` = s-cliques containing ``v``)."""
        self._record_query("profiles")
        self._require_members("profile attribution")
        n = self.num_vertices
        if n == 0:
            return []
        dist = self.count_all(max_k)
        width = max(len(dist), 2)
        columns = [[0] * n]
        for s in range(1, width):
            columns.append(self.per_vertex(s))
        return [[columns[s][v] for s in range(width)] for v in range(n)]

    # ------------------------------------------------------------------
    # sampling — uniform k-cliques by leaf-weighted selection
    # ------------------------------------------------------------------
    def sample_cliques(
        self,
        k: int,
        n_samples: int,
        rng: np.random.Generator | int | None = None,
    ) -> list[tuple[int, ...]]:
        """Draw ``n_samples`` uniform k-cliques (with replacement).

        Every k-clique lives in exactly one leaf family, so sampling a
        leaf with probability proportional to its ``C(|Π|, k - |H|)``
        weight and then ``k - |H|`` of its pivots uniformly without
        replacement is an exactly-uniform clique sampler.  Deterministic
        under a seeded ``rng``.
        """
        if k < 1:
            raise CountingError(f"clique size k must be >= 1, got {k}")
        if n_samples < 0:
            raise CountingError("n_samples must be >= 0")
        self._record_query("sample_cliques")
        self._require_members("clique sampling")
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        weights = [0] * len(self._pairs)
        for i, (h, p, _) in enumerate(self._pairs):
            weights[i] = binomial(p, k - h)
        if not any(weights):
            raise CountingError(f"graph has no {k}-cliques to sample")
        # Scale exact int weights into float64 range before normalizing
        # (clique counts can exceed 1e308 on pathological inputs).
        top = max(weights)
        shift = max(0, top.bit_length() - 512)
        per_leaf = np.array(
            [float(weights[i] >> shift) for i in self._pair_inv],
            dtype=np.float64,
        )
        probs = per_leaf / per_leaf.sum()
        chosen = rng.choice(self.num_leaves, size=n_samples, p=probs)
        hm = self.held_members
        pm = self.pivot_members
        ho = self.held_off
        po = self.pivot_off
        out: list[tuple[int, ...]] = []
        for leaf in chosen:
            i = int(leaf)
            held = hm[ho[i]:ho[i + 1]].tolist()
            j = k - len(held)
            if j:
                piv = pm[po[i]:po[i + 1]]
                picked = rng.choice(piv.size, size=j, replace=False)
                held.extend(int(piv[x]) for x in picked)
            out.append(tuple(sorted(held)))
        return out

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path: str | os.PathLike[str], *, faults=None) -> None:
        """Write the forest to ``path`` as a compressed ``.npz``.

        The write goes through :mod:`repro.shard.safeio` (temp file +
        fsync + rename), so a crash mid-save leaves the previous
        artifact intact; ``faults`` threads an I/O
        :class:`~repro.runtime.faults.FaultPlan` into the write for
        fault-injection tests.
        """
        meta = {
            "format_version": FOREST_FORMAT_VERSION,
            "num_vertices": self.num_vertices,
            "descriptor": self.descriptor,
            "counters": self.counters.as_dict(),
            "degraded_from": self.degraded_from,
            "has_members": self.has_members,
        }
        arrays = {
            "held_n": self.held_n,
            "pivot_n": self.pivot_n,
            "roots": self.roots,
            "per_root_work": self.per_root_work,
            "per_root_memory": self.per_root_memory,
            "meta_json": np.frombuffer(
                json.dumps(meta).encode("utf-8"), dtype=np.uint8
            ),
        }
        if self.has_members:
            arrays["held_members"] = self.held_members
            arrays["pivot_members"] = self.pivot_members
        from repro.shard import safeio

        buf = io.BytesIO()
        try:
            np.savez_compressed(buf, **arrays)
            safeio.atomic_write_bytes(path, buf.getvalue(), faults=faults)
        except OSError as exc:
            raise CheckpointError(
                f"cannot write forest {path}: {exc}"
            ) from exc

    @classmethod
    def load(
        cls,
        path: str | os.PathLike[str],
        expect_descriptor: dict | None = None,
    ) -> "SCTForest":
        """Load a saved forest, optionally validating its identity.

        ``expect_descriptor`` entries must match the stored descriptor
        exactly (same graph/DAG fingerprints, structure, kernel) —
        serving queries from the wrong graph's forest would silently
        return wrong counts.

        A truncated or corrupt file (bad zip container, damaged
        deflate stream, unreadable metadata) raises
        :class:`~repro.errors.ForestFormatError` naming the path, after
        quarantining the file as ``<path>.corrupt`` so a rebuild can
        re-save under the original name; a *missing* file or an
        identity/version mismatch raises plain
        :class:`~repro.errors.CheckpointError` and leaves the file
        alone (it is not damaged, just not the artifact this run
        needs).
        """
        try:
            with np.load(path) as data:
                meta = json.loads(bytes(data["meta_json"]).decode("utf-8"))
                if meta.get("format_version") != FOREST_FORMAT_VERSION:
                    raise CheckpointError(
                        f"forest {path} has format version "
                        f"{meta.get('format_version')!r}, expected "
                        f"{FOREST_FORMAT_VERSION}"
                    )
                stored = meta.get("descriptor") or {}
                if expect_descriptor is not None:
                    for key, want in expect_descriptor.items():
                        got = stored.get(key)
                        if got != want:
                            raise CheckpointError(
                                f"forest {path} was built for {key}={got!r}, "
                                f"this query needs {key}={want!r}"
                            )
                has_members = bool(meta.get("has_members"))
                return cls(
                    num_vertices=int(meta["num_vertices"]),
                    held_n=data["held_n"],
                    pivot_n=data["pivot_n"],
                    roots=data["roots"],
                    held_members=(
                        data["held_members"] if has_members else None
                    ),
                    pivot_members=(
                        data["pivot_members"] if has_members else None
                    ),
                    per_root_work=data["per_root_work"],
                    per_root_memory=data["per_root_memory"],
                    counters=Counters.from_dict(meta.get("counters", {})),
                    descriptor=stored,
                    degraded_from=meta.get("degraded_from"),
                )
        except FileNotFoundError as exc:
            raise CheckpointError(f"cannot read forest {path}: {exc}") from exc
        except (
            OSError,
            KeyError,
            ValueError,
            EOFError,
            zipfile.BadZipFile,
            zlib.error,
        ) as exc:
            # np.load on a truncated/bit-rotted .npz surfaces any of
            # these raw container errors; quarantine and raise typed.
            from repro.shard import safeio

            quarantined = safeio.quarantine(path)
            raise ForestFormatError(
                f"corrupt forest {path}: {type(exc).__name__}: {exc} "
                f"(quarantined to {quarantined})"
            ) from exc

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<SCTForest leaves={self.num_leaves} n={self.num_vertices} "
            f"members={self.has_members} bytes={self.nbytes}>"
        )


# ----------------------------------------------------------------------
# per-root leaf collection (the one traversal everything amortizes)
# ----------------------------------------------------------------------
def _collect_root(
    struct: SubgraphStructure, v: int, ctr: Counters, *, record_members: bool
) -> list:
    """Full (unpruned) pivot recursion for one root; returns the leaf
    list as ``(held_ids, pivot_ids)`` tuples (sizes only when
    ``record_members`` is off).  Counter charging mirrors the direct
    engines so :attr:`SCTForest.per_root_work` feeds the same
    scheduler model."""
    ctx = struct.build(v)
    ctr.subgraph_builds += 1
    ctr.build_words += ctx.build_words
    ctr.peak_subgraph_bytes = max(ctr.peak_subgraph_bytes, ctx.memory_bytes)
    d = ctx.d
    rows = ctx.rows
    kern = ctx.kernel
    pivot_select = kern.pivot_select
    intersect_count = kern.intersect_count
    lw = ctx.lookup_weight
    full = (1 << d) - 1
    out = [int(g) for g in ctx.out]
    leaves: list = []
    held_ids: list[int] = [v]
    pivot_ids: list[int] = []
    acc = [0, 0, 0, 0, 0, 0, 0]

    def leaf(held: int, pivots: int) -> None:
        acc[1] += 1
        depth = held + pivots
        if depth > acc[5]:
            acc[5] = depth
        if record_members:
            leaves.append((held, pivots, tuple(held_ids), tuple(pivot_ids)))
        else:
            leaves.append((held, pivots, None, None))

    def rec(P: int, pc: int, held: int, pivots: int) -> None:
        acc[0] += 1
        if pc == 0:
            leaf(held, pivots)
            return
        acc[3] += pc
        best, best_row, best_cnt, edge_sum = pivot_select(rows, P, pc)
        pivot_ids.append(out[best])
        rec(best_row, best_cnt, held, pivots + 1)
        pivot_ids.pop()
        P &= ~(1 << best)
        cand = P & ~best_row
        acc[4] += cand.bit_count()
        held1 = held + 1
        while cand:
            low = cand & -cand
            w = low.bit_length() - 1
            child, cc = intersect_count(rows, w, P)
            edge_sum += cc
            held_ids.append(out[w])
            rec(child, cc, held1, pivots)
            held_ids.pop()
            P ^= low
            cand ^= low
        acc[6] += edge_sum

    cutoff = _FRONTIER_MIN_PC

    def rec_frontier(P, pc: int, held: int, pivots: int, choice) -> None:
        # Tier-2 spine: same depth-first order (so the flat leaf arrays
        # are bit-identical), but the branch loop collapses into one
        # expand_children call and the large children share one
        # pivot_select_sweep; subtrees below the hybrid cutoff are
        # handed whole to the scalar closure (see sct.py).
        acc[0] += 1
        if pc == 0:
            leaf(held, pivots)
            return
        acc[3] += pc
        best, best_row, best_cnt, edge_sum = choice
        ws, children, ccs = expand(rows, P, best, best_row)
        nb = len(ws)
        acc[4] += nb
        edge_sum += sum(ccs)
        acc[6] += edge_sum
        big_pivot = best_cnt >= cutoff
        masks = []
        pcs = []
        slots = []
        if big_pivot:
            masks.append(best_row)
            pcs.append(best_cnt)
            slots.append(-1)
        for i in range(nb):
            if ccs[i] >= cutoff:
                masks.append(children[i])
                pcs.append(ccs[i])
                slots.append(i)
        pivot_choice = None
        child_choice = [None] * nb
        if masks:
            cb, cr, ccnt, ce = sweep(rows, masks, pcs)
            for t, s in enumerate(slots):
                if s < 0:
                    pivot_choice = (cb[t], cr[t], ccnt[t], ce[t])
                else:
                    child_choice[s] = (cb[t], cr[t], ccnt[t], ce[t])
        pivot_ids.append(out[best])
        if big_pivot:
            rec_frontier(best_row, best_cnt, held, pivots + 1, pivot_choice)
        else:
            rec(mask_int(rows, best_row), best_cnt, held, pivots + 1)
        pivot_ids.pop()
        held1 = held + 1
        for i in range(nb):
            held_ids.append(out[ws[i]])
            if ccs[i] >= cutoff:
                rec_frontier(children[i], ccs[i], held1, pivots,
                             child_choice[i])
            else:
                rec(mask_int(rows, children[i]), ccs[i], held1, pivots)
            held_ids.pop()

    if kern.frontier and d >= cutoff:
        expand = kern.expand_children
        sweep = kern.pivot_select_sweep
        mask_int = kern.mask_int
        fullN = kern.to_native(rows, full)
        cb, cr, ccnt, ce = sweep(rows, [fullN], [d])
        rec_frontier(fullN, d, 1, 0, (cb[0], cr[0], ccnt[0], ce[0]))
    else:
        rec(full, d, 1, 0)
    ctr.function_calls += acc[0]
    ctr.leaves += acc[1]
    ctr.index_lookups += (acc[3] + acc[4]) * lw
    ctr.set_op_words += acc[6] + acc[3] + acc[4]
    ctr.max_depth = max(ctr.max_depth, acc[5])
    return leaves


def collect_root_leaves(
    struct: SubgraphStructure, v: int, ctr: Counters, *,
    record_members: bool = True,
) -> list:
    """Public per-root leaf collection — the parallel forest build's
    worker task unit (see :mod:`repro.parallel.runtime`).  Same leaf
    tuples and counter charging as the serial :meth:`SCTForest.build`
    traversal, so leaves gathered by any worker in any order reassemble
    into a bit-identical forest."""
    return _collect_root(struct, v, ctr, record_members=record_members)


# ----------------------------------------------------------------------
# cache + convenience entry points
# ----------------------------------------------------------------------
_CACHE: "OrderedDict[tuple, SCTForest]" = OrderedDict()
_CACHE_MAX = 8


def forest_cache_key(
    graph: CSRGraph,
    dag: CSRGraph,
    structure: str,
    kernel: str,
    members: bool = True,
) -> tuple:
    """The in-process cache key: the descriptor fingerprints."""
    return (
        graph_fingerprint(graph),
        graph_fingerprint(dag),
        structure,
        kernel,
        bool(members),
    )


def clear_forest_cache() -> None:
    """Drop every cached forest (tests / memory pressure)."""
    _CACHE.clear()


def _descriptor_cache_key(descriptor: dict) -> tuple:
    return (
        descriptor.get("graph_fingerprint"),
        descriptor.get("dag_fingerprint"),
        descriptor.get("structure"),
        descriptor.get("kernel"),
        bool(descriptor.get("members")),
    )


def _rekey_cached_forest(forest: SCTForest, old_descriptor: dict) -> None:
    """Move a just-edited forest's cache slot to its new fingerprints.

    ``apply_edits`` patches the forest object *in place*, so if that
    object is sitting in the in-process cache it is now filed under the
    **pre-edit** graph's fingerprints — and the pre-edit graph is
    usually still alive, so a later ``get_forest`` on it would be
    served the edited (wrong) forest.  Pop the old slot (only when it
    holds this exact object) and re-file under the post-edit
    descriptor.  No-op for uncached forests.
    """
    old_key = _descriptor_cache_key(old_descriptor)
    entry = _CACHE.pop(old_key, None)
    if entry is None:
        return
    if entry is not forest:
        _CACHE[old_key] = entry  # someone else's (correct) forest
        return
    _CACHE[_descriptor_cache_key(forest.descriptor)] = forest


def build_forest(
    graph: CSRGraph,
    ordering: Ordering | np.ndarray | CSRGraph,
    structure: str | SubgraphStructure = "remap",
    kernel: str | BitsetKernel | None = None,
    *,
    controller: RunController | None = None,
    members: bool = True,
) -> SCTForest:
    """Uncached one-shot build (see :func:`get_forest` for caching)."""
    return SCTForest.build(
        graph, ordering, structure, kernel,
        controller=controller, members=members,
    )


def get_forest(
    graph: CSRGraph,
    ordering: Ordering | np.ndarray | CSRGraph,
    structure: str = "remap",
    kernel: str | BitsetKernel | None = None,
    *,
    controller: RunController | None = None,
    members: bool = True,
    cache: bool = True,
) -> SCTForest:
    """Build-or-fetch the forest for ``(graph, ordering, structure,
    kernel)``; repeat calls with the same fingerprints are free."""
    if isinstance(ordering, CSRGraph):
        dag = ordering
    else:
        dag = directionalize(graph, ordering)
    from repro.kernels import resolve_kernel

    kern = resolve_kernel(kernel)
    key = forest_cache_key(graph, dag, structure, kern.name, members)
    reg = obs.get_registry()
    if cache and key in _CACHE:
        if reg.enabled:
            reg.counter("forest_cache_hits_total").inc()
        _CACHE.move_to_end(key)
        return _CACHE[key]
    # Every get_forest call is exactly one hit or one miss (cache=False
    # is a miss): hits + misses == calls, pinned by tests/test_obs.py.
    if reg.enabled:
        reg.counter("forest_cache_misses_total").inc()
    forest = SCTForest.build(
        graph, dag, structure, kern, controller=controller, members=members
    )
    if not isinstance(ordering, CSRGraph):
        # build() saw only the DAG; keep the rank so apply_edits can
        # maintain the order without re-deriving it.
        forest.bind(
            rank=np.asarray(
                ordering.rank if isinstance(ordering, Ordering)
                else ordering,
                dtype=np.int64,
            )
        )
    if cache:
        _CACHE[key] = forest
        while len(_CACHE) > _CACHE_MAX:
            _CACHE.popitem(last=False)
    return forest


def load_forest(
    path: str | os.PathLike[str],
    graph: CSRGraph | None = None,
) -> SCTForest:
    """Load a saved forest; with ``graph`` given, refuse a mismatch."""
    expect = None
    if graph is not None:
        expect = {"graph_fingerprint": graph_fingerprint(graph)}
    return SCTForest.load(path, expect_descriptor=expect)


def load_or_rebuild_forest(
    path: str | os.PathLike[str],
    graph: CSRGraph,
    ordering: Ordering | np.ndarray | CSRGraph | None = None,
    structure: str = "remap",
    kernel: str | BitsetKernel | None = None,
    *,
    controller: RunController | None = None,
) -> tuple[SCTForest, bool]:
    """Load ``path``, or rebuild from ``graph`` if the file is corrupt.

    Returns ``(forest, rebuilt)``.  Only the *corrupt-artifact* case
    (:class:`~repro.errors.ForestFormatError` — the load already
    quarantined the file) falls back to a rebuild; a missing file or an
    identity mismatch still raises, since rebuilding would silently
    paper over pointing a run at the wrong artifact.  The rebuilt
    forest is re-saved under the original name (best-effort) to heal
    the artifact for the next run.  ``ordering`` defaults to the
    degeneracy core ordering — the same default the CLI uses to build
    forests in the first place.
    """
    try:
        return load_forest(path, graph), False
    except ForestFormatError as exc:
        warnings.warn(
            f"rebuilding forest: {exc}", DegradedResultWarning, stacklevel=2
        )
        obs.degradation("forest_rebuild", path=os.fspath(path))
        if ordering is None:
            from repro.ordering.core import core_ordering

            ordering = core_ordering(graph)
        forest = get_forest(
            graph, ordering, structure, kernel, controller=controller
        )
        try:
            forest.save(path)
        except CheckpointError:
            pass  # healing is best-effort; the in-memory forest serves
        return forest, True
