"""Incremental SCT forests under edge streams (ROADMAP item 4).

PivotScale's per-root decomposition gives edge edits a *local* blast
radius: every clique lives under exactly one root — its minimum-rank
member — and a root ``r``'s whole record (its leaves *and* its
build-cost model entries) is a deterministic function of its DAG
out-neighborhood ``N⁺(r)``, the induced undirected subgraph on it,
and its members' global degrees.  An edit ``(u, v)`` therefore only
touches the roots holding an endpoint in their out-neighborhood:
every *undirected* neighbor ``r`` of an endpoint ``w`` with
``rank[r] < rank[w]`` — which covers the lower-ranked endpoint itself
(its out-neighborhood gains/loses the other), the common neighbors
ranked below both (their induced rows flip a bit), and the roots
whose build-scan cost shifts with a member's degree — evaluated on
the pre-edit **and** post-edit graphs so a batch's compound
membership changes are all caught (see :func:`dirty_roots`).

:func:`apply_edits` computes that dirty set for a whole batch, re-runs
the pivot recursion for only those roots through the existing
structure/kernel stack, and patches the forest's flat leaf arrays in
place (dirty roots' slices are tombstoned and the arrays compacted
with the replacement leaves, preserving root order) — bit-identical to
a from-scratch rebuild over the same rank, at a fraction of the work.

**Edit model.**  A batch is a sequence of ``("+"|"-", u, v)`` records
applied in order; the batch's *net* effect against the current graph
is what gets applied (duplicate records collapse, insert-then-delete
cancels, inserting a present edge / deleting an absent one is a
skipped no-op).  Vertex ids beyond the current ``|V|`` grow the vertex
set; new vertices are appended at the end of the order.

**Reorder-vs-patch policy.**  The rank permutation is a performance
heuristic, not a correctness requirement — any total order yields
exact counts — so the default ``"patch"`` policy keeps the build-time
ranks (new vertices ranked last) and edits stay local.  Enough edits
eventually erode the degeneracy ordering's quality, so ``"reorder"``
rebuilds from a fresh core ordering of the edited graph, and
``"auto"`` patches until the cumulative net-edit count since the last
full (re)build exceeds ``reorder_ratio x |E|``.

Stale-forest safety: applying edits re-keys the forest's descriptor
fingerprints (and its in-process LRU cache slot) to the *edited*
graph, so neither the cache nor a later ``.npz`` save can ever serve
the patched forest for the pre-edit graph — see
``tests/test_dynamic.py``.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro import obs
from repro.counting.counters import Counters
from repro.counting.structures import STRUCTURES
from repro.errors import (
    CountingError,
    GraphFormatError,
    KernelFaultError,
    MemoryBudgetExceededError,
)
from repro.graph.build import from_edge_array
from repro.graph.csr import CSRGraph
from repro.ordering.directionalize import directionalize
from repro.runtime.checkpoint import graph_fingerprint
from repro.runtime.controller import RunController

__all__ = [
    "Edit",
    "EditReport",
    "POLICIES",
    "normalize_edits",
    "edit_graph",
    "extend_rank",
    "dag_rank",
    "dirty_roots",
    "edits_digest",
    "apply_edits",
    "parse_edit_line",
    "read_edit_file",
    "iter_batches",
]

#: One edit record: ``(op, u, v)`` with op ``"+"`` (insert) or ``"-"``
#: (delete).  Self loops are rejected; ``(u, v)`` is unordered.
Edit = tuple  # ("+"|"-", int, int)

#: Valid reorder-vs-patch policies (see the module docstring).
POLICIES = ("patch", "reorder", "auto")


# ----------------------------------------------------------------------
# edit model: normalization, graph application, rank maintenance
# ----------------------------------------------------------------------
def _check_edit(edit) -> tuple[str, int, int]:
    try:
        op, u, v = edit
    except (TypeError, ValueError):
        raise CountingError(
            f"edit must be an (op, u, v) triple, got {edit!r}"
        ) from None
    if op not in ("+", "-"):
        raise CountingError(f"edit op must be '+' or '-', got {op!r}")
    u, v = int(u), int(v)
    if u < 0 or v < 0:
        raise CountingError(f"negative vertex id in edit {edit!r}")
    if u == v:
        raise CountingError(f"self-loop edit {edit!r} is not a simple edge")
    return op, u, v


def normalize_edits(
    graph: CSRGraph, edits: Iterable[Edit]
) -> tuple[list[tuple[int, int]], list[tuple[int, int]], int]:
    """Net effect of an in-order edit batch against ``graph``.

    Returns ``(adds, dels, skipped)``: the edge pairs (``u < v``,
    sorted) to insert / delete, and how many input records were
    absorbed as no-ops (duplicates, cancelling pairs, inserting a
    present edge, deleting an absent one).  Deleting an edge incident
    to a vertex beyond ``|V|`` is a no-op, not an error — the edge
    cannot exist.
    """
    n = graph.num_vertices
    desired: dict[tuple[int, int], bool] = {}
    total = 0
    for edit in edits:
        op, u, v = _check_edit(edit)
        total += 1
        desired[(u, v) if u < v else (v, u)] = op == "+"
    adds: list[tuple[int, int]] = []
    dels: list[tuple[int, int]] = []
    for (u, v), want in desired.items():
        present = v < n and graph.has_edge(u, v)
        if want and not present:
            adds.append((u, v))
        elif not want and present:
            dels.append((u, v))
    adds.sort()
    dels.sort()
    return adds, dels, total - len(adds) - len(dels)


def edit_graph(
    graph: CSRGraph,
    adds: Sequence[tuple[int, int]],
    dels: Sequence[tuple[int, int]] = (),
    num_vertices: int | None = None,
) -> CSRGraph:
    """A new :class:`CSRGraph` with ``adds`` inserted and ``dels``
    removed (pairs normalized ``u < v``; ``adds`` may grow the vertex
    set).  The input graph is untouched — CSR graphs stay immutable;
    *this* is the sanctioned mutation path.
    """
    if graph.directed:
        raise CountingError("edit_graph expects an undirected graph")
    n = graph.num_vertices
    if adds:
        n = max(n, max(max(u, v) for u, v in adds) + 1)
    if num_vertices is not None:
        if num_vertices < n:
            raise GraphFormatError(
                f"num_vertices={num_vertices} smaller than required {n}"
            )
        n = int(num_vertices)
    pairs = graph.edge_array()
    if dels:
        keys = pairs[:, 0].astype(np.int64) * n + pairs[:, 1]
        drop = np.array([u * n + v for u, v in dels], dtype=np.int64)
        missing = ~np.isin(drop, keys)
        if missing.any():
            bad = [dels[i] for i in np.flatnonzero(missing)]
            raise CountingError(f"cannot delete absent edges {bad}")
        pairs = pairs[~np.isin(keys, drop)]
    if adds:
        extra = np.asarray(adds, dtype=np.int64).reshape(-1, 2)
        pairs = np.concatenate((pairs, extra), axis=0)
    return from_edge_array(pairs, num_vertices=n)


def extend_rank(rank: np.ndarray, num_vertices: int) -> np.ndarray:
    """Extend a rank permutation to a grown vertex set: new vertices
    are appended at the end of the total order in id order (they can
    only root cliques made entirely of new+edited structure)."""
    rank = np.asarray(rank, dtype=np.int64)
    n = rank.size
    if num_vertices < n:
        raise CountingError(
            f"rank covers {n} vertices, cannot shrink to {num_vertices}"
        )
    if num_vertices == n:
        return rank
    return np.concatenate(
        (rank, np.arange(n, num_vertices, dtype=np.int64))
    )


def dag_rank(dag: CSRGraph) -> np.ndarray:
    """A canonical rank permutation consistent with ``dag``.

    Deterministic Kahn peel taking the smallest-id ready vertex first.
    Directionalizing the underlying graph by this rank reproduces
    ``dag`` exactly (every stored edge is oriented consistently with
    any of its topological orders); the canonical choice only decides
    how *future* inserted edges between previously-incomparable
    vertices orient.  Used when a forest was built from a bare DAG and
    never told its rank.
    """
    import heapq

    if not dag.directed:
        raise CountingError("dag_rank expects a DAG")
    n = dag.num_vertices
    indeg = np.zeros(n, dtype=np.int64)
    if dag.indices.size:
        indeg += np.bincount(dag.indices, minlength=n)
    ready = [int(v) for v in np.flatnonzero(indeg == 0)]
    heapq.heapify(ready)
    rank = np.empty(n, dtype=np.int64)
    placed = 0
    while ready:
        v = heapq.heappop(ready)
        rank[v] = placed
        placed += 1
        for w in dag.neighbors(v):
            w = int(w)
            indeg[w] -= 1
            if indeg[w] == 0:
                heapq.heappush(ready, w)
    if placed != n:  # pragma: no cover - CSR DAGs are acyclic by build
        raise CountingError("graph passed as DAG contains a cycle")
    return rank


# ----------------------------------------------------------------------
# the dirty-root rule
# ----------------------------------------------------------------------
def dirty_roots(
    old_graph: CSRGraph,
    new_graph: CSRGraph,
    rank: np.ndarray,
    adds: Sequence[tuple[int, int]],
    dels: Sequence[tuple[int, int]] = (),
) -> np.ndarray:
    """Roots whose SCT subtree the net batch can change, sorted.

    A root ``r``'s whole record — leaves *and* the build-cost model
    ``per_root_work`` — is a function of its member set ``N⁺(r)``, the
    induced undirected subgraph on it, and the members' global degrees
    (the :func:`~repro.counting.structures.base.build_local_rows` scan
    charges every member's full neighbor list).  An edit ``(u, v)``
    perturbs exactly the roots holding an endpoint in their
    out-neighborhood: every undirected neighbor ``r`` of an endpoint
    ``w`` with ``rank[r] < rank[w]`` (this covers the lower endpoint
    itself, the common neighbors whose induced rows change, and the
    members-degree work shifts) — taken in the old *and* new graphs so
    a batch's compound membership changes are all caught.  Vertices
    added by growth are dirty by definition (they have no leaves yet).
    ``rank`` must cover ``new_graph``'s vertex set.
    """
    rank = np.asarray(rank, dtype=np.int64)
    if rank.shape != (new_graph.num_vertices,):
        raise CountingError(
            f"rank has shape {rank.shape}, expected "
            f"({new_graph.num_vertices},)"
        )
    dirty = set(range(old_graph.num_vertices, new_graph.num_vertices))
    for u, v in list(adds) + list(dels):
        for g in (old_graph, new_graph):
            for w in (u, v):
                if w >= g.num_vertices:
                    continue
                nbrs = g.neighbors(w)
                if nbrs.size:
                    below = nbrs[rank[nbrs] < rank[w]]
                    dirty.update(int(r) for r in below)
    return np.array(sorted(dirty), dtype=np.int64)


def edits_digest(
    adds: Sequence[tuple[int, int]], dels: Sequence[tuple[int, int]]
) -> str:
    """Stable identity of a net batch (checkpoint descriptor key)."""
    h = hashlib.sha256()
    for tag, pairs in (("+", adds), ("-", dels)):
        for u, v in pairs:
            h.update(f"{tag}{u},{v};".encode())
    return h.hexdigest()[:16]


# ----------------------------------------------------------------------
# the incremental update
# ----------------------------------------------------------------------
@dataclass
class EditReport:
    """What one :func:`apply_edits` call did.

    Attributes
    ----------
    added / removed:
        Net edge pairs applied to the graph (``u < v``, sorted).
    skipped:
        Input records absorbed as no-ops.
    dirty_roots:
        Sorted root ids whose subtrees were invalidated.
    roots_recomputed:
        Pivot recursions actually re-run (== dirty roots when
        patching, ``|V|`` after a reorder rebuild).
    policy:
        The policy that acted (``"patch"`` or ``"reorder"``; an
        ``"auto"`` call reports whichever side it chose).
    reordered:
        Whether a full rebuild under a fresh core ordering happened.
    graph / dag:
        The post-edit graph and DAG now bound to the forest.
    leaves_before / leaves_after:
        Forest size on both sides of the patch.
    counters:
        Work counters of the incremental recomputation only.
    """

    added: list = field(default_factory=list)
    removed: list = field(default_factory=list)
    skipped: int = 0
    dirty_roots: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.int64)
    )
    roots_recomputed: int = 0
    policy: str = "patch"
    reordered: bool = False
    graph: CSRGraph | None = None
    dag: CSRGraph | None = None
    leaves_before: int = 0
    leaves_after: int = 0
    counters: Counters = field(default_factory=Counters)

    @property
    def applied(self) -> int:
        """Net edge changes actually applied."""
        return len(self.added) + len(self.removed)


def _resolve_inputs(forest, graph, ordering):
    """The (graph, rank) pair the edits apply against: explicit
    arguments win, else whatever the build bound to the forest."""
    if graph is None:
        graph = forest.graph
    if graph is None:
        raise CountingError(
            "this forest is not bound to a graph (loaded from .npz?); "
            "pass apply_edits(..., graph=, ordering=)"
        )
    if ordering is None:
        rank = forest.rank
        if rank is None and forest.dag is not None:
            rank = dag_rank(forest.dag)
    elif isinstance(ordering, np.ndarray):
        rank = np.asarray(ordering, dtype=np.int64)
    elif isinstance(ordering, CSRGraph):
        rank = dag_rank(ordering)
    else:  # an Ordering
        rank = np.asarray(ordering.rank, dtype=np.int64)
    if rank is None:
        raise CountingError(
            "this forest is not bound to an ordering; pass "
            "apply_edits(..., ordering=)"
        )
    if rank.shape != (graph.num_vertices,):
        raise CountingError(
            f"rank has shape {rank.shape}, expected "
            f"({graph.num_vertices},) for the bound graph"
        )
    expect = graph_fingerprint(graph)
    got = forest.descriptor.get("graph_fingerprint")
    if got != expect:
        raise CountingError(
            f"forest was built for graph {got!r}, edits target "
            f"{expect!r} — edits must apply against the forest's own "
            "graph"
        )
    return graph, rank


def _recompute_roots(
    forest,
    graph: CSRGraph,
    dag: CSRGraph,
    dirty: np.ndarray,
    *,
    controller: RunController | None,
    descriptor: dict,
):
    """Re-run the pivot recursion for the dirty roots.

    Returns ``(per_root, totals, kernel_name, degraded_from)`` where
    ``per_root`` maps root id -> ``(leaves, work, memory)``.  Mirrors
    the build loop's controller cooperation — deadline/node budgets,
    checkpoint/resume and kernel-fault fallback — at **dirty-root**
    granularity: a killed ``apply_edits`` resumes recomputation where
    it stopped, and the forest arrays are only patched once every
    dirty root has landed (all-or-nothing).
    """
    from repro.counting.forest import _collect_root

    record_members = forest.has_members
    struct = STRUCTURES[descriptor["structure"]](
        graph, dag, kernel=descriptor["kernel"]
    )
    totals = Counters()
    degraded_from: str | None = None
    per_root: dict[int, tuple[list, float, float]] = {}
    start = 0
    ctl = controller

    if ctl is not None:
        def snapshot() -> dict:
            done = sorted(per_root)
            return {
                "next_index": len(done),
                "roots": done,
                "leaves": [
                    [
                        [h, p,
                         None if h_ids is None else list(h_ids),
                         None if p_ids is None else list(p_ids)]
                        for h, p, h_ids, p_ids in per_root[r][0]
                    ]
                    for r in done
                ],
                "work": [per_root[r][1] for r in done],
                "memory": [per_root[r][2] for r in done],
                "counters": totals.as_dict(),
                "degraded_from": degraded_from,
            }

        if ctl.started:
            state = None
        else:
            state = ctl.begin(descriptor, snapshot)
        if state is not None:
            start = int(state["next_index"])
            for r, leaves, work, memory in zip(
                state["roots"], state["leaves"],
                state["work"], state["memory"],
            ):
                per_root[int(r)] = (
                    [
                        (int(h), int(p),
                         None if h_ids is None else tuple(h_ids),
                         None if p_ids is None else tuple(p_ids))
                        for h, p, h_ids, p_ids in leaves
                    ],
                    float(work), float(memory),
                )
            totals = Counters.from_dict(state["counters"])
            degraded_from = state.get("degraded_from")

    from contextlib import nullcontext

    with (ctl.guard() if ctl is not None else nullcontext()):
        for i in range(start, dirty.size):
            v = int(dirty[i])
            ctr = Counters()
            if ctl is None:
                leaves = _collect_root(
                    struct, v, ctr, record_members=record_members
                )
            else:
                try:
                    ctl.tick()
                    leaves = _collect_root(
                        struct, v, ctr, record_members=record_members
                    )
                except MemoryError as exc:
                    raise MemoryBudgetExceededError(
                        f"allocation failure at root {v}",
                        spent=ctl.spent_snapshot(),
                    ) from exc
                except KernelFaultError:
                    if not ctl.degrade or struct.kernel.name == "bigint":
                        raise
                    fallen = struct.kernel.name
                    obs.degradation(
                        "kernel_fallback", engine="sct-forest-edits",
                        root=v, from_kernel=fallen,
                    )
                    struct = type(struct)(graph, dag, kernel="bigint")
                    descriptor["kernel"] = "bigint"
                    if degraded_from is None:
                        degraded_from = fallen
                    ctr = Counters()
                    leaves = _collect_root(
                        struct, v, ctr, record_members=record_members
                    )
                ctl.charge_nodes(ctr.function_calls)
                ctl.note_memory(ctr.peak_subgraph_bytes)
            per_root[v] = (leaves, ctr.work, ctr.peak_subgraph_bytes)
            totals.merge(ctr)
            obs.note_memory(ctr.peak_subgraph_bytes)
            if ctl is not None:
                ctl.complete_root(v)
    return per_root, totals, struct.kernel.name, degraded_from


def _patch_arrays(forest, dirty: np.ndarray, per_root: dict) -> None:
    """Tombstone the dirty roots' leaf slices and compact the flat
    arrays with the replacement leaves, preserving root order (roots
    are non-decreasing in the arrays, so each root's leaves are one
    contiguous slice and the rebuild-identical layout is a pure
    segment splice)."""
    roots = forest.roots
    members = forest.has_members
    lo = np.searchsorted(roots, dirty, side="left")
    hi = np.searchsorted(roots, dirty, side="right")

    hn_chunks, pn_chunks, root_chunks = [], [], []
    hm_chunks, pm_chunks = [], []
    cursor = 0
    for i, v in enumerate(dirty):
        a, b = int(lo[i]), int(hi[i])
        if a > cursor:  # the clean segment before this dirty root
            hn_chunks.append(forest.held_n[cursor:a])
            pn_chunks.append(forest.pivot_n[cursor:a])
            root_chunks.append(forest.roots[cursor:a])
            if members:
                hm_chunks.append(
                    forest.held_members[
                        forest.held_off[cursor]:forest.held_off[a]
                    ]
                )
                pm_chunks.append(
                    forest.pivot_members[
                        forest.pivot_off[cursor]:forest.pivot_off[a]
                    ]
                )
        leaves = per_root[int(v)][0]
        if leaves:
            hn_chunks.append(
                np.array([h for h, _, _, _ in leaves], dtype=np.int32)
            )
            pn_chunks.append(
                np.array([p for _, p, _, _ in leaves], dtype=np.int32)
            )
            root_chunks.append(
                np.full(len(leaves), int(v), dtype=np.int32)
            )
            if members:
                hm_chunks.append(np.array(
                    [x for _, _, h_ids, _ in leaves for x in h_ids],
                    dtype=np.int32,
                ))
                pm_chunks.append(np.array(
                    [x for _, _, _, p_ids in leaves for x in p_ids],
                    dtype=np.int32,
                ))
        cursor = b
    if cursor < forest.num_leaves:
        hn_chunks.append(forest.held_n[cursor:])
        pn_chunks.append(forest.pivot_n[cursor:])
        root_chunks.append(forest.roots[cursor:])
        if members:
            hm_chunks.append(
                forest.held_members[forest.held_off[cursor]:]
            )
            pm_chunks.append(
                forest.pivot_members[forest.pivot_off[cursor]:]
            )

    forest.held_n = (
        np.concatenate(hn_chunks) if hn_chunks
        else np.zeros(0, dtype=np.int32)
    )
    forest.pivot_n = (
        np.concatenate(pn_chunks) if pn_chunks
        else np.zeros(0, dtype=np.int32)
    )
    forest.roots = (
        np.concatenate(root_chunks) if root_chunks
        else np.zeros(0, dtype=np.int32)
    )
    if members:
        forest.held_members = (
            np.concatenate(hm_chunks) if hm_chunks
            else np.zeros(0, dtype=np.int32)
        )
        forest.pivot_members = (
            np.concatenate(pm_chunks) if pm_chunks
            else np.zeros(0, dtype=np.int32)
        )
    forest._finalize()


def apply_edits(
    forest,
    edits: Iterable[Edit],
    *,
    graph: CSRGraph | None = None,
    ordering=None,
    policy: str = "patch",
    reorder_ratio: float = 0.25,
    controller: RunController | None = None,
) -> EditReport:
    """Apply an edge-edit batch to ``forest`` in place.

    The engine behind :meth:`SCTForest.apply_edits
    <repro.counting.forest.SCTForest.apply_edits>` — see that method
    for the user-facing contract.  Returns an :class:`EditReport`.
    """
    from repro.counting.forest import _rekey_cached_forest

    if policy not in POLICIES:
        raise CountingError(
            f"unknown edit policy {policy!r}; expected one of {POLICIES}"
        )
    if reorder_ratio <= 0:
        raise CountingError("reorder_ratio must be > 0")
    graph, rank = _resolve_inputs(forest, graph, ordering)

    adds, dels, skipped = normalize_edits(graph, edits)
    report = EditReport(
        added=adds, removed=dels, skipped=skipped, policy=policy,
        graph=graph, dag=forest.dag,
        leaves_before=forest.num_leaves,
        leaves_after=forest.num_leaves,
    )
    if not adds and not dels:
        # A pure no-op batch: arrays, counters, cache key untouched.
        forest.bind(graph=graph, rank=rank)
        return report

    new_graph = edit_graph(graph, adds, dels)
    new_rank = extend_rank(rank, new_graph.num_vertices)
    # Committed only on success, so an aborted batch retried later
    # does not double-count toward the auto-reorder budget.
    pending_edits = forest._edits_since_reorder + len(adds) + len(dels)
    if policy == "auto":
        budget = reorder_ratio * max(1, new_graph.num_edges)
        policy = "reorder" if pending_edits > budget else "patch"
    report.policy = policy

    descriptor = dict(forest.descriptor)
    span_attrs = {
        "engine": "sct-forest-edits",
        "structure": descriptor["structure"],
        "kernel": descriptor["kernel"],
        "policy": policy,
    }
    old_key_descriptor = dict(forest.descriptor)

    with obs.span("forest.apply_edits", **span_attrs), obs.phase(
        "forest_edits"
    ):
        if policy == "reorder":
            _apply_reorder(forest, new_graph, descriptor, controller)
            dirty = dirty_roots(graph, new_graph, new_rank, adds, dels)
            report.dirty_roots = dirty
            report.roots_recomputed = new_graph.num_vertices
            report.reordered = True
            report.counters = forest.counters
        else:
            dirty = dirty_roots(graph, new_graph, new_rank, adds, dels)
            report.dirty_roots = dirty
            new_dag = directionalize(new_graph, new_rank)
            descriptor["graph_fingerprint"] = graph_fingerprint(new_graph)
            descriptor["dag_fingerprint"] = graph_fingerprint(new_dag)
            descriptor["edits_digest"] = edits_digest(adds, dels)
            descriptor["base_graph_fingerprint"] = (
                forest.descriptor["graph_fingerprint"]
            )
            per_root, totals, kernel_name, degraded_from = (
                _recompute_roots(
                    forest, new_graph, new_dag, dirty,
                    controller=controller, descriptor=descriptor,
                )
            )
            report.roots_recomputed = int(dirty.size)
            report.counters = totals

            # Commit point: every dirty root recomputed; patch the flat
            # arrays, the per-root vectors, and the identity together.
            n_new = new_graph.num_vertices
            if n_new > forest.num_vertices:
                grow = n_new - forest.num_vertices
                forest.per_root_work = np.concatenate(
                    (forest.per_root_work, np.zeros(grow))
                )
                forest.per_root_memory = np.concatenate(
                    (forest.per_root_memory, np.zeros(grow))
                )
                forest.num_vertices = n_new
            _patch_arrays(forest, dirty, per_root)
            for v, (_, work, memory) in per_root.items():
                forest.per_root_work[v] = work
                forest.per_root_memory[v] = memory
            forest.counters.merge(totals)
            forest.descriptor = {
                k: v for k, v in descriptor.items()
                if k not in ("edits_digest", "base_graph_fingerprint")
            }
            forest.descriptor["kernel"] = kernel_name
            if degraded_from is not None and forest.degraded_from is None:
                forest.degraded_from = degraded_from
            forest.bind(graph=new_graph, dag=new_dag, rank=new_rank)
            forest._edits_since_reorder = pending_edits
            obs.record_run(
                totals, engine="sct-forest-edits",
                structure=descriptor["structure"], kernel=kernel_name,
                roots=int(dirty.size),
            )

        report.graph = forest.graph
        report.dag = forest.dag
        report.leaves_after = forest.num_leaves
        # Re-key the in-process LRU slot: the patched forest must only
        # ever be served for the *edited* graph's fingerprints.
        _rekey_cached_forest(forest, old_key_descriptor)

        reg = obs.get_registry()
        if reg.enabled:
            reg.counter("forest_edits_applied_total").inc(report.applied)
            reg.counter("forest_edits_skipped_total").inc(report.skipped)
            reg.counter("forest_roots_dirty_total").inc(
                int(report.dirty_roots.size)
            )
            reg.counter("forest_roots_recomputed_total").inc(
                report.roots_recomputed
            )
            reg.gauge("forest_leaves").set(forest.num_leaves)
    return report


def _apply_reorder(forest, new_graph, descriptor, controller) -> None:
    """The reorder side of the policy: full rebuild under a fresh core
    ordering of the edited graph, copied into ``forest`` in place so
    every existing reference serves the new state."""
    from repro.counting.forest import SCTForest
    from repro.ordering.core import core_ordering

    ordering = core_ordering(new_graph)
    rebuilt = SCTForest.build(
        new_graph, ordering, descriptor["structure"],
        descriptor["kernel"], controller=controller,
        members=forest.has_members,
    )
    forest.num_vertices = rebuilt.num_vertices
    forest.held_n = rebuilt.held_n
    forest.pivot_n = rebuilt.pivot_n
    forest.roots = rebuilt.roots
    forest.held_members = rebuilt.held_members
    forest.pivot_members = rebuilt.pivot_members
    forest.per_root_work = rebuilt.per_root_work
    forest.per_root_memory = rebuilt.per_root_memory
    forest.counters = rebuilt.counters
    forest.descriptor = rebuilt.descriptor
    forest.degraded_from = rebuilt.degraded_from or forest.degraded_from
    forest._finalize()
    forest.bind(
        graph=new_graph, dag=rebuilt.dag, rank=np.asarray(ordering.rank)
    )
    forest._edits_since_reorder = 0


# ----------------------------------------------------------------------
# edit streams: file format + batching (the CLI `stream` mode)
# ----------------------------------------------------------------------
def parse_edit_line(line: str, lineno: int = 0) -> Edit | None:
    """One edit-file line -> edit record (``None`` for blank/comment).

    Format: ``+ u v`` inserts, ``- u v`` deletes; ``#`` starts a
    comment; whitespace separates.
    """
    text = line.split("#", 1)[0].strip()
    if not text:
        return None
    parts = text.split()
    if len(parts) != 3 or parts[0] not in ("+", "-"):
        raise CountingError(
            f"edit line {lineno}: expected '+ u v' or '- u v', "
            f"got {line.rstrip()!r}"
        )
    try:
        u, v = int(parts[1]), int(parts[2])
    except ValueError:
        raise CountingError(
            f"edit line {lineno}: non-integer vertex id in "
            f"{line.rstrip()!r}"
        ) from None
    return _check_edit((parts[0], u, v))


def read_edit_file(path: str | os.PathLike[str]) -> list[Edit]:
    """Parse a whole edit file (see :func:`parse_edit_line`)."""
    edits: list[Edit] = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            edit = parse_edit_line(line, lineno)
            if edit is not None:
                edits.append(edit)
    return edits


def iter_batches(
    edits: Sequence[Edit], batch_size: int | None = None
) -> Iterator[list[Edit]]:
    """Split an edit sequence into application batches (``None`` =
    one batch holding everything; an empty sequence yields nothing)."""
    if batch_size is not None and batch_size < 1:
        raise CountingError("batch_size must be >= 1")
    if not edits:
        return
    if batch_size is None:
        yield list(edits)
        return
    for i in range(0, len(edits), batch_size):
        yield list(edits[i:i + batch_size])
