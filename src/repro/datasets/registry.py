"""Construction recipes for the eight Table-I analogs.

Each recipe composes a power-law background (Chung-Lu), planted cliques
(the density pockets the heuristic reasons about), and explicit hub
wiring that places the heuristic inputs on the paper's side of its
thresholds.  Analogs are deterministic (fixed seeds) and cached.

Columns carried from the paper for comparison harnesses: |V|, |E|
(millions), average degree delta, k_max, and the Table IV "best
ordering" ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable

import numpy as np

from repro.errors import DatasetError
from repro.graph.csr import CSRGraph
from repro.graph.generators import (
    attach_assortative_hub,
    chung_lu,
    overlay,
    planted_cliques,
    power_law_degrees,
)

__all__ = ["DatasetSpec", "REGISTRY", "dataset_names", "get_spec", "load"]


@dataclass(frozen=True)
class DatasetSpec:
    """Metadata for one analog.

    Attributes
    ----------
    name:
        Registry key (lowercase paper name).
    title:
        The paper's graph name.
    description:
        The Table I description.
    builder:
        Zero-argument constructor for the graph.
    effective_num_vertices:
        The paper graph's ``|V|`` — the scale at which the Sec. III-E
        heuristic judges the analog (see DESIGN.md substitution table).
    paper_vertices_m, paper_edges_m, paper_avg_degree, paper_kmax:
        Table I columns (``paper_kmax`` None where the paper reports
        "-", i.e. LiveJournal).
    best_ordering:
        Table IV's "Best Ordering" ground truth ("core" or "degree").
    clique_rich:
        Whether the paper treats the graph as clique-rich (LiveJournal
        class: steep growth of work with k).
    """

    name: str
    title: str
    description: str
    builder: Callable[[], CSRGraph]
    effective_num_vertices: float
    paper_vertices_m: float
    paper_edges_m: float
    paper_avg_degree: float
    paper_kmax: int | None
    best_ordering: str
    clique_rich: bool = False


def _background(n: int, exponent: float, min_deg: float, seed: int,
                max_degree: float | None = None) -> np.ndarray:
    w = power_law_degrees(n, exponent, min_deg, max_degree, seed=seed)
    return chung_lu(w, seed=seed + 1).edge_array()


def _build_dblp() -> CSRGraph:
    # Citation/co-authorship character: low average degree, many small
    # communities, a surprisingly large maximal clique (k_max 114 -> 38),
    # a hub whose best neighbor shares most of its (small) neighborhood
    # (common fraction 0.72 in Table IV) but low a/|V|.
    n = 2600
    bg = _background(n, 2.9, 1.6, seed=10, max_degree=18)
    comm = planted_cliques(n, [38] + [7] * 40 + [5] * 70, seed=11, overlap=0.05)
    g = overlay(n, bg, comm)
    return attach_assortative_hub(g, assortative=True, common_targets=0.8, seed=12)


def _build_skitter() -> CSRGraph:
    # Internet topology: heavy hubs that interconnect (assortative core),
    # moderate cliques (k_max 67 -> 22).
    n = 4000
    bg = _background(n, 2.15, 1.8, seed=20)
    cliques = planted_cliques(n, [22, 14, 12, 10, 10] + [8] * 12 + [6] * 24,
                              seed=21, overlap=0.25)
    g = overlay(n, bg, cliques)
    return attach_assortative_hub(g, assortative=True, common_targets=0.85, seed=22)


def _build_baidu() -> CSRGraph:
    # Web graph: big hubs surrounded by low-degree pages, essentially no
    # hub overlap (common fraction 0.00), few small cliques (k_max 31 -> 10).
    n = 4400
    bg = _background(n, 2.25, 2.2, seed=30)
    cliques = planted_cliques(n, [10, 8, 7] + [5] * 16, seed=31, overlap=0.0)
    g = overlay(n, bg, cliques)
    return attach_assortative_hub(g, assortative=False, hub_extra=220, seed=32)


def _build_wikitalk() -> CSRGraph:
    # Talk-page network: extreme star skew, thin clique structure
    # (k_max 26 -> 9) but an assortative admin core (common ~ 0.11).
    n = 4800
    bg = _background(n, 2.0, 1.3, seed=40)
    cliques = planted_cliques(n, [9, 8, 7, 7] + [5] * 12, seed=41, overlap=0.2)
    g = overlay(n, bg, cliques)
    return attach_assortative_hub(g, assortative=True, common_targets=0.12, seed=42)


def _build_orkut() -> CSRGraph:
    # Dense social network: highest average degree of the suite, strong
    # assortativity (a/|V| 0.0945), many mid-size cliques (k_max 51 -> 17).
    n = 3000
    bg = _background(n, 2.55, 7.0, seed=50)
    cliques = planted_cliques(n, [17, 13, 12, 11, 10] + [8] * 14 + [6] * 30,
                              seed=51, overlap=0.3)
    g = overlay(n, bg, cliques)
    return attach_assortative_hub(g, assortative=True, common_targets=0.5, seed=52)


def _build_livejournal() -> CSRGraph:
    # The clique-rich stress case (Table VI / Fig. 13).  Two density
    # pockets drive it: heavily overlapping planted cliques supply the
    # astronomical *counts*, and a complete-multipartite "community
    # collision" pocket (14 groups of 3 mutually-exclusive members)
    # supplies the SCT-tree explosion — its tree grows like ~3^k with
    # the target clique size, reproducing the paper's 942x growth in
    # recursive calls from k=6 to k=11.  a/|V| is tiny (0.0004) but the
    # hub core overlaps (common 0.20), so the heuristic picks core.
    n = 2400
    bg = _background(n, 2.6, 3.0, seed=60)
    # The three large (~32) overlapping plants keep the k-clique *count*
    # rising through k = 13 (counts peak near k_max / 2, Fig. 1).
    sizes = [32, 30, 28, 20, 18, 18, 16, 16, 15, 15, 14, 14, 13, 13, 12, 12, 12]
    cliques = planted_cliques(n, sizes, seed=61, overlap=0.55,
                              pool=np.arange(300, dtype=np.int64))
    more = planted_cliques(n, [8] * 20, seed=62, overlap=0.2)
    from repro.graph.generators import complete_multipartite

    pocket = complete_multipartite([3] * 14)
    rng = np.random.default_rng(64)
    pocket_ids = rng.choice(np.arange(300, n), 42, replace=False).astype(np.int64)
    pe = pocket.edge_array()
    pocket_edges = np.column_stack((pocket_ids[pe[:, 0]], pocket_ids[pe[:, 1]]))
    g = overlay(n, bg, cliques, more, pocket_edges)
    return attach_assortative_hub(g, assortative=True, common_targets=0.25, seed=63)


def _build_webedu() -> CSRGraph:
    # .edu web crawl: very low average degree with one enormous clique
    # (k_max 449 -> 150) — the structure that makes Web-Edu's pivoting
    # trivial but enumeration hopeless.
    n = 5200
    bg = _background(n, 2.9, 1.1, seed=70, max_degree=30)
    big = planted_cliques(n, [150], seed=71,
                          pool=np.arange(1000, dtype=np.int64))
    small = planted_cliques(n, [6] * 20, seed=72)
    g = overlay(n, bg, big, small)
    return attach_assortative_hub(g, assortative=True, common_targets=0.95, seed=73)


def _build_friendster() -> CSRGraph:
    # The largest social graph: moderate cliques (k_max 129 -> 43) but a
    # hub embedded among strangers (a/|V| ~ 0, common 0.00) -> degree.
    n = 8000
    bg = _background(n, 2.45, 5.0, seed=80, max_degree=200)
    cliques = planted_cliques(n, [43] + [10] * 8 + [7] * 24, seed=81, overlap=0.1)
    # The hub is a dedicated star vertex: hundreds of private degree-1
    # followers plus a handful of random acquaintances, so its best
    # neighbor has modest degree and shares nothing with it.
    hub = n
    rng = np.random.default_rng(82)
    leaves = np.arange(n + 1, n + 501, dtype=np.int64)
    hub_edges = np.column_stack((np.full(leaves.size, hub, dtype=np.int64), leaves))
    acquaintances = rng.choice(n, size=6, replace=False).astype(np.int64)
    acq_edges = np.column_stack(
        (np.full(acquaintances.size, hub, dtype=np.int64), acquaintances)
    )
    return overlay(n + 501, bg, cliques, hub_edges, acq_edges)


REGISTRY: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        DatasetSpec(
            "dblp", "DBLP", "Citation network", _build_dblp,
            0.3e6, 0.3, 1.1, 3.7, 114, "degree",
        ),
        DatasetSpec(
            "skitter", "As-Skitter", "Internet topology", _build_skitter,
            1.7e6, 1.7, 11.1, 6.5, 67, "core",
        ),
        DatasetSpec(
            "baidu", "Baidu", "Links between web pages", _build_baidu,
            2.2e6, 2.2, 17.8, 8.5, 31, "degree",
        ),
        DatasetSpec(
            "wikitalk", "Wiki-Talk", "Network of Wikipedia users",
            _build_wikitalk, 2.4e6, 2.4, 9.3, 3.9, 26, "core",
        ),
        DatasetSpec(
            "orkut", "Orkut", "Social network", _build_orkut,
            3.1e6, 3.1, 117.2, 37.8, 51, "core",
        ),
        DatasetSpec(
            "livejournal", "LiveJournal", "Social network",
            _build_livejournal, 4.0e6, 4.0, 34.7, 8.1, None, "core",
            clique_rich=True,
        ),
        DatasetSpec(
            "webedu", "Web-Edu", "Links between .edu web pages",
            _build_webedu, 9.9e6, 9.9, 46.2, 2.4, 449, "core",
        ),
        DatasetSpec(
            "friendster", "Friendster", "Social network", _build_friendster,
            65.6e6, 65.6, 1806.1, 27.5, 129, "degree",
        ),
    )
}


def dataset_names() -> list[str]:
    """Registry keys in the paper's Table I order."""
    return list(REGISTRY)


def get_spec(name: str) -> DatasetSpec:
    """Look up a dataset spec by name."""
    try:
        return REGISTRY[name]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {dataset_names()}"
        ) from None


@lru_cache(maxsize=None)
def load(name: str) -> CSRGraph:
    """Build (and cache) the named analog graph."""
    return get_spec(name).builder()
