"""The evaluation graph suite: scaled-down analogs of Table I.

The paper evaluates on eight SNAP/Konect graphs (0.3M-65.6M vertices)
that cannot be downloaded in this offline environment, so the suite is
reproduced as deterministic synthetic analogs a few thousand vertices
each.  Every analog is constructed to match its original's *behavioral
fingerprint* — the properties the paper's analysis actually depends on:

* degree-distribution skew (power-law background),
* clique structure: ``k_max`` scaled to roughly a third of the paper's
  (so SCT trees stay tractable in pure Python) and clique-richness
  (LiveJournal's overlap explosion, Web-Edu's one huge clique),
* the Sec. III-E heuristic signals — hub assortativity (``a/|V|``) and
  hub common-neighbor fraction — placed on the same side of the
  thresholds as in Table IV, judged at each analog's *effective*
  (paper-scale) vertex count.
"""

from repro.datasets.registry import (
    DatasetSpec,
    REGISTRY,
    dataset_names,
    get_spec,
    load,
)

__all__ = ["DatasetSpec", "REGISTRY", "dataset_names", "get_spec", "load"]
