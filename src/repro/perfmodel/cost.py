"""Work counters -> instructions, MPKI, IPC, model-seconds.

One deliberately small model, used everywhere:

* ``instructions = instructions_per_work x work`` — work is the exact
  counted quantity (bitset words + weighted index lookups + build
  scan), so instruction *ratios* between configurations (Table II) are
  algorithmic facts, with a single calibration constant scaling all of
  them.
* misses = cold + capacity.  Cold misses stream the graph during
  first-level builds; capacity misses are index lookups that fall out
  of the shared LLC (:class:`repro.perfmodel.cache.CacheModel`).
* ``CPI = base + miss_penalty x misses/instruction`` and
  ``IPC = 1 / CPI``.
* time is a roofline: ``max(compute seconds, DRAM traffic / bandwidth)``
  with Amdahl treatment of any serialized fraction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.counting.counters import Counters
from repro.errors import ParallelModelError
from repro.parallel.machine import MachineSpec
from repro.perfmodel.cache import CacheModel, structure_index_bytes

__all__ = ["PerfEstimate", "CostModel"]

_LINE_BYTES = 64.0


@dataclass(frozen=True)
class PerfEstimate:
    """Modeled execution of one phase on the modeled machine.

    ``seconds`` is the roofline of ``compute_seconds`` and
    ``memory_seconds``.  ``mpki``/``ipc`` are reported the way the
    paper's Table II reports hardware counters.
    """

    seconds: float
    compute_seconds: float
    memory_seconds: float
    instructions: float
    misses: float
    mpki: float
    ipc: float
    miss_probability: float
    threads: int

    @property
    def bound(self) -> str:
        """Which roofline term dominates ("compute" or "memory")."""
        return "memory" if self.memory_seconds > self.compute_seconds else "compute"


@dataclass(frozen=True)
class CostModel:
    """Performance model bound to one machine spec."""

    machine: MachineSpec

    @property
    def cache(self) -> CacheModel:
        return CacheModel(llc_bytes=float(self.machine.llc_bytes))

    # ------------------------------------------------------------------
    def instructions(self, work: float) -> float:
        """Modeled instruction count for ``work`` abstract units."""
        return self.machine.instructions_per_work * work

    def estimate_counting(
        self,
        counters: Counters,
        *,
        threads: int,
        structure: str,
        max_out_degree: float,
        effective_num_vertices: float,
        makespan_work: float | None = None,
        serial_fraction: float = 0.0,
        work_scale: float = 1.0,
    ) -> PerfEstimate:
        """Model the counting phase.

        Parameters
        ----------
        counters:
            Aggregate counters of the (real) counting run.
        makespan_work:
            Bottleneck-thread work from the scheduler; defaults to a
            perfectly balanced ``total / threads``.
        serial_fraction:
            Amdahl share of work that does not parallelize (used for
            the naive-parallel Pivoter baseline).
        effective_num_vertices:
            Paper-scale ``|V|`` for the per-thread index footprint.
        work_scale:
            Linear extrapolation factor applied to measured work when a
            scaled-down analog stands in for a paper-scale graph
            (``effective |V| / analog |V|``).  Scale-invariant
            quantities (MPKI, IPC, within-graph ratios) are unaffected.
        """
        if threads < 1:
            raise ParallelModelError("threads must be >= 1")
        if not 0.0 <= serial_fraction <= 1.0:
            raise ParallelModelError("serial_fraction must lie in [0, 1]")
        if work_scale <= 0:
            raise ParallelModelError("work_scale must be positive")
        total_work = counters.work * work_scale
        if makespan_work is None:
            makespan_work = total_work / threads
        else:
            makespan_work *= work_scale
        if total_work > 0 and makespan_work * threads < total_work * (1 - 1e-9):
            raise ParallelModelError("makespan below perfect balance")

        ws = structure_index_bytes(
            structure, effective_num_vertices, max_out_degree
        )
        p_miss = self.cache.miss_probability(ws, threads)

        instr_total = self.instructions(total_work)
        cold_misses = counters.build_words * work_scale * 8.0 / _LINE_BYTES
        # Scattered index touches: recursion-time lookups always go
        # through the structure's index; for the dense structure the
        # membership tests during subgraph induction do too (one probe
        # of the |V|-sized array per scanned neighbor) — that is what
        # makes dense builds DRAM-bound once per-thread indexes spill
        # out of the LLC (the paper's 32-thread plateau).
        scattered = counters.index_lookups
        if structure == "dense":
            scattered += counters.build_words
        capacity_misses = scattered * work_scale * p_miss
        misses = cold_misses + capacity_misses
        mpki = misses / (instr_total / 1000.0) if instr_total else 0.0
        cpi = self.machine.base_cpi + self.machine.miss_penalty_cycles * (
            misses / instr_total if instr_total else 0.0
        )
        ipc = 1.0 / cpi if cpi else 0.0

        # Amdahl: serialized share runs on one thread at single-thread
        # CPI; the parallel share finishes when the bottleneck thread
        # does.
        parallel_share = (
            makespan_work / total_work if total_work else 1.0 / threads
        )
        effective_work = total_work * (
            serial_fraction + (1.0 - serial_fraction) * parallel_share
        )
        compute_seconds = self.machine.seconds_for(
            self.instructions(effective_work), cpi
        )
        traffic = misses * _LINE_BYTES
        memory_seconds = traffic / self.machine.dram_bw_bytes
        return PerfEstimate(
            seconds=max(compute_seconds, memory_seconds),
            compute_seconds=compute_seconds,
            memory_seconds=memory_seconds,
            instructions=instr_total,
            misses=misses,
            mpki=mpki,
            ipc=ipc,
            miss_probability=p_miss,
            threads=threads,
        )

    def estimate_rounds(
        self,
        rounds: tuple[float, ...],
        sequential: float,
        *,
        threads: int,
        work_scale: float = 1.0,
    ) -> PerfEstimate:
        """Model a round-synchronous phase (the ordering algorithms).

        Each round's work splits perfectly across threads (the rounds
        are data-parallel scans) followed by one barrier; sequential
        work runs on one thread.  Ordering work units are lighter than
        counting work units, so they share the same
        ``instructions_per_work`` but run at base CPI (orderings are
        streaming passes, bandwidth-friendly).
        """
        if threads < 1:
            raise ParallelModelError("threads must be >= 1")
        if work_scale <= 0:
            raise ParallelModelError("work_scale must be positive")
        cpi = self.machine.base_cpi
        per_thread_work = (
            sum(r / threads for r in rounds) + sequential
        ) * work_scale
        instr = self.instructions(per_thread_work)
        barrier = self.machine.barrier_seconds * len(rounds) if threads > 1 else 0.0
        seconds = self.machine.seconds_for(instr, cpi) + barrier
        total_instr = self.instructions((sum(rounds) + sequential) * work_scale)
        return PerfEstimate(
            seconds=seconds,
            compute_seconds=seconds,
            memory_seconds=0.0,
            instructions=total_instr,
            misses=0.0,
            mpki=0.0,
            ipc=1.0 / cpi,
            miss_probability=0.0,
            threads=threads,
        )
