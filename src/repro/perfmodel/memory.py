"""Process-memory model (paper Sec. VI-D).

The paper measures whole-process maximum RSS with 64 threads: the dense
structure costs 811.67 MB on DBLP up to 265.69 GB on Friendster, and
the compact structures cut that by 6.63-40.24x (geomean 17.39x).

The model decomposes process memory as::

    graph CSR  +  threads x per-thread structure  +  runtime base

where the per-thread footprint follows the Fig. 4 layouts.  The
original Pivoter's dense layout keeps *three* |V|-sized arrays per
thread — the neighbor-list index plus the P/X bookkeeping arrays of the
canonical Bron-Kerbosch formulation (Sec. V-A) — which is what makes
its RSS explode with thread count.
"""

from __future__ import annotations

from repro.errors import ParallelModelError
from repro.perfmodel.cache import structure_index_bytes

__all__ = ["process_memory_bytes", "memory_reduction"]

#: |V|-sized arrays per thread in the dense layout (index + P + X).
_DENSE_ARRAYS = 3
#: Python/C runtime floor.
_BASE_BYTES = 64 * 1024 * 1024


def process_memory_bytes(
    *,
    num_vertices: float,
    num_edges: float,
    structure: str,
    threads: int,
    max_out_degree: float,
) -> float:
    """Modeled peak process RSS in bytes.

    ``num_vertices`` / ``num_edges`` may be paper-scale effective
    values; the graph term is the symmetric CSR (``8(n+1) + 16m``
    bytes with int64 entries).
    """
    if threads < 1:
        raise ParallelModelError("threads must be >= 1")
    graph_bytes = 8.0 * (num_vertices + 1) + 16.0 * num_edges
    per_thread = structure_index_bytes(structure, num_vertices, max_out_degree)
    if structure == "dense":
        per_thread *= _DENSE_ARRAYS
    return _BASE_BYTES + graph_bytes + threads * per_thread


def memory_reduction(
    *,
    num_vertices: float,
    num_edges: float,
    threads: int,
    max_out_degree: float,
    compact: str = "remap",
) -> float:
    """Dense-over-compact process-memory ratio (the Sec. VI-D metric)."""
    dense = process_memory_bytes(
        num_vertices=num_vertices, num_edges=num_edges, structure="dense",
        threads=threads, max_out_degree=max_out_degree,
    )
    small = process_memory_bytes(
        num_vertices=num_vertices, num_edges=num_edges, structure=compact,
        threads=threads, max_out_degree=max_out_degree,
    )
    return dense / small
