"""Analytic performance model.

Converts exact algorithmic measurements (the counting/ordering work
counters) into the hardware-level quantities the paper reports —
instructions, LLC MPKI, IPC, model-seconds — for the paper's machine
(:data:`repro.parallel.machine.EPYC_9554`) and for the GPU-Pivot
comparison points.

The model is deliberately simple and fully documented:

* **instructions** — linear in counted work units;
* **cold misses** — the graph is streamed once per first-level
  subgraph build (``build_words``);
* **capacity misses** — index lookups miss when the per-thread index
  working set cannot co-reside in the shared LLC (this is what
  separates the dense structure from sparse/remap);
* **time** — a roofline: compute time at the modeled CPI vs. DRAM
  traffic over sustained bandwidth.
"""

from repro.perfmodel.cache import CacheModel, structure_index_bytes
from repro.perfmodel.cost import CostModel, PerfEstimate
from repro.perfmodel.gpu import gpu_pivot_time

__all__ = [
    "CacheModel",
    "structure_index_bytes",
    "CostModel",
    "PerfEstimate",
    "gpu_pivot_time",
]
