"""GPU-Pivot performance model (paper reference [20], Figs. 12-13).

The paper compares against GPU-Pivot's *reported* V100/A100 numbers —
there is no GPU code to run in either setting — so this module models
the two properties the paper's analysis attributes to the GPU design:

1. **Per-level rebuilds.**  GPU-Pivot stores binary-encoded adjacency
   and builds a fresh induced subgraph at *every* recursion level
   (no reversible mutations), so its set-operation work is a multiple
   (``rebuild_factor``) of the mutation-reusing CPU engine's.

2. **One subgraph per warp.**  Only pivot selection is parallel within
   a warp; the branch loop and subgraph construction serialize.  We
   charge a per-node serialization cost proportional to the recursion
   tree (``function_calls``); on clique-rich graphs (huge trees, e.g.
   As-Skitter / Orkut / LiveJournal) this term grows with ``k`` much
   faster than PivotScale's modeled time does — reproducing the
   paper's observation that GPU-Pivot's time rises with clique size
   while PivotScale's stays nearly flat.

Inputs are the exact counters from the real CPU counting run at the
same ``(graph, k)``; the GPU spec supplies throughput constants.
"""

from __future__ import annotations

from repro.counting.counters import Counters
from repro.parallel.machine import GPUSpec

__all__ = ["gpu_pivot_time"]

#: Serialized work charged per recursion node, in work units per bitset
#: word (the in-warp sequential subgraph construction).
_NODE_SERIAL_COST = 24.0


def gpu_pivot_time(
    counters: Counters,
    gpu: GPUSpec,
    *,
    max_out_degree: float,
    work_scale: float = 1.0,
    max_task_fraction: float = 0.0,
) -> float:
    """Modeled GPU-Pivot seconds for a counting run.

    Parameters
    ----------
    counters:
        Counters of the real SCT run at the target ``(graph, k)``.
    gpu:
        V100 or A100 spec.
    max_out_degree:
        DAG max out-degree, setting the bitset word count the per-node
        serialization is charged at.
    work_scale:
        Paper-scale extrapolation factor for dataset analogs (applies
        to the work, not the fixed launch overhead).
    max_task_fraction:
        Largest single root's share of the total work.  GPU-Pivot
        assigns "a vertex or an edge" to a warp, so a heavy root splits
        into roughly out-degree edge tasks — but each task is still a
        serial chain at one warp's throughput (only pivot selection is
        lane-parallel).  On clique-rich graphs this chain, not the bulk
        throughput, binds — the utilization wall the paper blames for
        GPU-Pivot's LiveJournal losses (Sec. VI-H).
    """
    words = (int(max_out_degree) + 63) >> 6 or 1
    rebuild_work = gpu.rebuild_factor * (
        counters.set_op_words + counters.build_words
    )
    serial_work = _NODE_SERIAL_COST * counters.function_calls * words
    total_work = (rebuild_work + serial_work) * work_scale
    throughput = gpu.warps * gpu.warp_rate_gops * 1e9
    bulk_seconds = total_work / throughput
    # Edge-parallel decomposition splits the heaviest root over about
    # max_out_degree warps; the residual chain is warp-serial.
    chain_fraction = max_task_fraction / max(1.0, max_out_degree)
    warp_chain_seconds = (
        total_work * chain_fraction / (gpu.warp_rate_gops * 1e9)
    )
    return gpu.launch_overhead_s + max(bulk_seconds, warp_chain_seconds)
