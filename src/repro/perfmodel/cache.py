"""LLC capacity model.

The paper's Sec. IV observation, made quantitative: the subgraph index
is thread-local, so with ``T`` threads the caches must hold ``T`` copies
of it.  The dense structure's ``8 |V|`` bytes per thread overflow the
256 MB LLC somewhere between 8 and 32 threads on multi-million-vertex
graphs — "if the number of threads is greater than the average degree of
the graph, these indices alone will consume more memory than the
original graph" — while the sparse/remap structures' ``O(max
out-degree)`` footprint always fits.  Index accesses that miss go to
DRAM; that traffic is what the roofline in :mod:`repro.perfmodel.cost`
charges.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParallelModelError

__all__ = ["structure_index_bytes", "CacheModel"]

_HASH_ENTRY_BYTES = 48


def structure_index_bytes(
    structure: str, num_vertices: float, max_out_degree: float
) -> float:
    """Per-thread index footprint of a subgraph structure (Fig. 4).

    ``num_vertices`` may be a dataset analog's *effective* (paper-scale)
    vertex count — footprints are analytic so evaluating them at paper
    scale is exact, not extrapolation.
    """
    d = max_out_degree
    words = (int(d) + 63) >> 6 or 1
    bitset = d * words * 8
    if structure == "dense":
        return 8.0 * num_vertices + bitset
    if structure == "sparse":
        return _HASH_ENTRY_BYTES * d + bitset
    if structure == "remap":
        return 8.0 * d + bitset
    raise ParallelModelError(f"unknown structure {structure!r}")


@dataclass(frozen=True)
class CacheModel:
    """Shared-LLC occupancy -> per-access miss probability.

    With ``T`` threads each holding ``ws`` bytes of hot index, the
    fraction of index accesses that miss is the fraction of the
    combined working set that cannot reside in the LLC:

    ``p_miss = max(0, (T * ws - llc) / (T * ws))``

    (0 while everything fits; asymptotically 1).  This is the standard
    working-set/fractal-of-fit approximation; it is exact for a fully
    associative cache with uniform access to the working set.
    """

    llc_bytes: float

    def miss_probability(self, ws_per_thread: float, threads: int) -> float:
        if threads < 1:
            raise ParallelModelError("threads must be >= 1")
        total = ws_per_thread * threads
        if total <= self.llc_bytes or total <= 0:
            return 0.0
        return (total - self.llc_bytes) / total

    def resident_fraction(self, ws_per_thread: float, threads: int) -> float:
        """Complement of :meth:`miss_probability`."""
        return 1.0 - self.miss_probability(ws_per_thread, threads)
