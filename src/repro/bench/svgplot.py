"""Minimal dependency-free SVG plotting.

The reproduction regenerates every paper *figure* as an actual figure
file without matplotlib (offline environment): this module provides the
small chart vocabulary the paper uses — grouped bars (Figs. 5-9),
line series with linear or log axes (Figs. 1, 10, 12, 13), and scaling
curves (Fig. 11) — as hand-rolled SVG.

Deliberately small: one chart per file, categorical x-axes or numeric
x-values, automatic y-ticks, legend, captions.  Everything returns or
writes UTF-8 SVG 1.1 that any browser renders.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from xml.sax.saxutils import escape

__all__ = ["Series", "LineChart", "GroupedBarChart"]

# A colorblind-friendly cycle (Okabe-Ito).
_COLORS = [
    "#0072B2", "#E69F00", "#009E73", "#D55E00",
    "#CC79A7", "#56B4E9", "#F0E442", "#000000",
]

_FONT = 'font-family="Helvetica,Arial,sans-serif"'


@dataclass
class Series:
    """One plotted series: a label and y-values (None = missing)."""

    label: str
    values: list[float | None]

    def finite(self) -> list[float]:
        return [v for v in self.values if v is not None and v > float("-inf")]


def _nice_ticks(lo: float, hi: float, n: int = 5) -> list[float]:
    """Round tick positions covering [lo, hi]."""
    if hi <= lo:
        hi = lo + 1.0
    span = hi - lo
    step = 10 ** math.floor(math.log10(span / max(n, 1)))
    for mult in (1, 2, 5, 10):
        if span / (step * mult) <= n:
            step *= mult
            break
    start = math.floor(lo / step) * step
    ticks = []
    t = start
    while t <= hi + 1e-9 * span:
        if t >= lo - 1e-9 * span:
            ticks.append(round(t, 10))
        t += step
    return ticks or [lo, hi]


def _log_ticks(lo: float, hi: float) -> list[float]:
    lo_exp = math.floor(math.log10(lo))
    hi_exp = math.ceil(math.log10(hi))
    return [10.0**e for e in range(int(lo_exp), int(hi_exp) + 1)]


def _fmt_tick(v: float) -> str:
    if v == 0:
        return "0"
    if abs(v) >= 10000 or abs(v) < 0.01:
        exp = math.floor(math.log10(abs(v)))
        mant = v / 10**exp
        if abs(mant - 1.0) < 1e-9:
            return f"1e{exp:d}"
        return f"{mant:g}e{exp:d}"
    return f"{v:g}"


class _Canvas:
    """Accumulates SVG elements with a margin-based plot area."""

    def __init__(self, width: int, height: int, title: str) -> None:
        self.width = width
        self.height = height
        self.margin = (56, 16, 42, 54)  # top, right, bottom, left
        self.parts: list[str] = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
            f'height="{height}" viewBox="0 0 {width} {height}">',
            f'<rect width="{width}" height="{height}" fill="white"/>',
            f'<text x="{width / 2}" y="24" text-anchor="middle" '
            f'{_FONT} font-size="15" font-weight="bold">'
            f"{escape(title)}</text>",
        ]

    @property
    def plot_box(self) -> tuple[float, float, float, float]:
        t, r, b, l = self.margin
        return (l, t, self.width - r, self.height - b)

    def line(self, x1, y1, x2, y2, color="#888", width=1.0, dash=None):
        d = f' stroke-dasharray="{dash}"' if dash else ""
        self.parts.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" '
            f'y2="{y2:.1f}" stroke="{color}" stroke-width="{width}"{d}/>'
        )

    def text(self, x, y, s, size=11, anchor="middle", color="#222",
             rotate: float | None = None):
        tr = (
            f' transform="rotate({rotate} {x:.1f} {y:.1f})"'
            if rotate is not None else ""
        )
        self.parts.append(
            f'<text x="{x:.1f}" y="{y:.1f}" text-anchor="{anchor}" '
            f'{_FONT} font-size="{size}" fill="{color}"{tr}>'
            f"{escape(str(s))}</text>"
        )

    def circle(self, x, y, r, color):
        self.parts.append(
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{r}" fill="{color}"/>'
        )

    def rect(self, x, y, w, h, color):
        self.parts.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{w:.1f}" '
            f'height="{h:.1f}" fill="{color}"/>'
        )

    def polyline(self, points: list[tuple[float, float]], color, width=2.0):
        pts = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
        self.parts.append(
            f'<polyline points="{pts}" fill="none" stroke="{color}" '
            f'stroke-width="{width}"/>'
        )

    def legend(self, labels: list[str]) -> None:
        x0, y0 = self.margin[3] + 8, 34
        x = x0
        for i, label in enumerate(labels):
            color = _COLORS[i % len(_COLORS)]
            self.rect(x, y0 - 8, 10, 10, color)
            self.text(x + 14, y0 + 1, label, size=10, anchor="start")
            x += 22 + 6.2 * len(label)

    def render(self) -> str:
        return "\n".join(self.parts + ["</svg>"])


@dataclass
class _AxisSpec:
    label: str = ""
    log: bool = False


class LineChart:
    """Line chart over shared x-values (numeric or categorical).

    >>> chart = LineChart("demo", x_values=[1, 2, 4], x_label="threads")
    >>> chart.add(Series("remap", [1.0, 2.0, 3.9]))
    >>> svg = chart.render()
    """

    def __init__(
        self,
        title: str,
        x_values: list,
        *,
        x_label: str = "",
        y_label: str = "",
        y_log: bool = False,
        x_log: bool = False,
        width: int = 560,
        height: int = 360,
    ) -> None:
        self.title = title
        self.x_values = list(x_values)
        self.x_axis = _AxisSpec(x_label, x_log)
        self.y_axis = _AxisSpec(y_label, y_log)
        self.series: list[Series] = []
        self.width = width
        self.height = height

    def add(self, series: Series) -> None:
        if len(series.values) != len(self.x_values):
            raise ValueError(
                f"series {series.label!r} has {len(series.values)} values, "
                f"chart has {len(self.x_values)} x positions"
            )
        self.series.append(series)

    # ------------------------------------------------------------------
    def _x_numeric(self) -> list[float]:
        try:
            return [float(x) for x in self.x_values]
        except (TypeError, ValueError):
            return list(range(len(self.x_values)))

    def render(self) -> str:
        if not self.series:
            raise ValueError("no series to plot")
        canvas = _Canvas(self.width, self.height, self.title)
        x0, y0, x1, y1 = canvas.plot_box
        xs = self._x_numeric()
        finite = [v for s in self.series for v in s.finite()]
        if not finite:
            raise ValueError("all series empty")
        y_lo, y_hi = min(finite), max(finite)
        if self.y_axis.log:
            y_lo = max(min(finite), 1e-12)
            ticks = _log_ticks(y_lo, y_hi)
            y_lo, y_hi = ticks[0], ticks[-1]

            def ty(v):
                return y1 - (math.log10(v) - math.log10(y_lo)) / (
                    math.log10(y_hi) - math.log10(y_lo) or 1.0
                ) * (y1 - y0)
        else:
            ticks = _nice_ticks(min(0.0, y_lo), y_hi)
            y_lo, y_hi = ticks[0], ticks[-1]

            def ty(v):
                return y1 - (v - y_lo) / ((y_hi - y_lo) or 1.0) * (y1 - y0)

        if self.x_axis.log:
            lx = [math.log2(max(x, 1e-12)) for x in xs]
        else:
            lx = xs
        x_lo, x_hi = min(lx), max(lx)

        def tx(i):
            if x_hi == x_lo:
                return (x0 + x1) / 2
            return x0 + (lx[i] - x_lo) / (x_hi - x_lo) * (x1 - x0)

        # Axes, grid, ticks.
        for v in ticks:
            y = ty(v)
            canvas.line(x0, y, x1, y, color="#e0e0e0")
            canvas.text(x0 - 6, y + 4, _fmt_tick(v), size=10, anchor="end")
        for i, x in enumerate(self.x_values):
            canvas.text(tx(i), y1 + 16, x, size=10)
        canvas.line(x0, y1, x1, y1, color="#333", width=1.2)
        canvas.line(x0, y0, x0, y1, color="#333", width=1.2)
        if self.x_axis.label:
            canvas.text((x0 + x1) / 2, self.height - 8, self.x_axis.label,
                        size=11)
        if self.y_axis.label:
            canvas.text(14, (y0 + y1) / 2, self.y_axis.label, size=11,
                        rotate=-90)
        # Series.
        for idx, s in enumerate(self.series):
            color = _COLORS[idx % len(_COLORS)]
            pts = [
                (tx(i), ty(v))
                for i, v in enumerate(s.values)
                if v is not None
            ]
            if len(pts) > 1:
                canvas.polyline(pts, color)
            for px, py in pts:
                canvas.circle(px, py, 2.6, color)
        canvas.legend([s.label for s in self.series])
        return canvas.render()

    def write(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.render())


class GroupedBarChart:
    """Grouped vertical bars: one group per category, one bar per series."""

    def __init__(
        self,
        title: str,
        categories: list[str],
        *,
        y_label: str = "",
        baseline: float | None = None,
        width: int = 640,
        height: int = 360,
    ) -> None:
        self.title = title
        self.categories = list(categories)
        self.y_label = y_label
        self.baseline = baseline
        self.series: list[Series] = []
        self.width = width
        self.height = height

    def add(self, series: Series) -> None:
        if len(series.values) != len(self.categories):
            raise ValueError(
                f"series {series.label!r} has {len(series.values)} values, "
                f"chart has {len(self.categories)} categories"
            )
        self.series.append(series)

    def render(self) -> str:
        if not self.series:
            raise ValueError("no series to plot")
        canvas = _Canvas(self.width, self.height, self.title)
        x0, y0, x1, y1 = canvas.plot_box
        finite = [v for s in self.series for v in s.finite()]
        if not finite:
            raise ValueError("all series empty")
        hi = max(finite + ([self.baseline] if self.baseline else []))
        ticks = _nice_ticks(0.0, hi)
        y_hi = ticks[-1]

        def ty(v):
            return y1 - v / (y_hi or 1.0) * (y1 - y0)

        for v in ticks:
            y = ty(v)
            canvas.line(x0, y, x1, y, color="#e0e0e0")
            canvas.text(x0 - 6, y + 4, _fmt_tick(v), size=10, anchor="end")
        group_w = (x1 - x0) / max(len(self.categories), 1)
        bar_w = group_w * 0.8 / max(len(self.series), 1)
        for ci, cat in enumerate(self.categories):
            gx = x0 + ci * group_w
            canvas.text(gx + group_w / 2, y1 + 16, cat, size=10)
            for si, s in enumerate(self.series):
                v = s.values[ci]
                if v is None:
                    continue
                bx = gx + group_w * 0.1 + si * bar_w
                canvas.rect(bx, ty(v), bar_w * 0.92, y1 - ty(v),
                            _COLORS[si % len(_COLORS)])
        if self.baseline is not None:
            y = ty(self.baseline)
            canvas.line(x0, y, x1, y, color="#444", width=1.2, dash="5,4")
        canvas.line(x0, y1, x1, y1, color="#333", width=1.2)
        canvas.line(x0, y0, x0, y1, color="#333", width=1.2)
        if self.y_label:
            canvas.text(14, (y0 + y1) / 2, self.y_label, size=11, rotate=-90)
        canvas.legend([s.label for s in self.series])
        return canvas.render()

    def write(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.render())
