"""Experiment harness shared by ``benchmarks/`` and ``examples/``.

One canonical function per paper table/figure lives in
:mod:`repro.bench.experiments`; :mod:`repro.bench.paper_data` carries
the paper's published numbers so harness output can print
paper-vs-measured side by side (EXPERIMENTS.md is generated from these
runs).
"""

from repro.bench.harness import (
    Table,
    geometric_mean,
    fmt_seconds,
    fmt_count,
    fmt_rate,
    time_best,
    write_json_artifact,
)
from repro.bench import experiments, paper_data

__all__ = [
    "Table",
    "geometric_mean",
    "fmt_seconds",
    "fmt_count",
    "fmt_rate",
    "time_best",
    "write_json_artifact",
    "experiments",
    "paper_data",
]
