"""Canonical reproductions of every table and figure in the paper.

One function per experiment; each returns an :class:`ExperimentResult`
carrying printable tables, the raw data (for tests and EXPERIMENTS.md),
and a list of *shape checks* — the qualitative claims the paper makes
that this reproduction is expected to preserve (who wins, by roughly
what factor, where crossovers fall).  Absolute seconds are machine-model
outputs, not wall clock (see DESIGN.md).

Benchmark entry points under ``benchmarks/`` call these functions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.bench import paper_data
from repro.bench.harness import (
    Table,
    fmt_count,
    fmt_seconds,
    geometric_mean,
    run_with_metrics,
)
from repro.core import PivotScaleConfig, count_cliques
from repro.counting import count_all_sizes, count_kcliques
from repro.counting.forest import build_forest
from repro.counting.arbcount import count_kcliques_enumeration
from repro.counting.pivoter import PIVOTER_SERIAL_FRACTION
from repro.errors import BudgetExceededError
from repro.runtime import Budget, RunController
from repro.counting.sct import CountResult
from repro.datasets import dataset_names, get_spec, load
from repro.graph.stats import degree_histogram
from repro.ordering import (
    approx_core_ordering,
    centrality_ordering,
    core_ordering,
    degree_ordering,
    directionalize,
    kcore_ordering,
    max_out_degree,
    select_ordering,
)
from repro.parallel import (
    GPU_A100,
    GPU_V100,
    scaling_curve,
    simulate_counting,
    simulate_ordering,
)
from repro.perfmodel.cost import CostModel
from repro.parallel.machine import EPYC_9554
from repro.perfmodel.gpu import gpu_pivot_time

__all__ = [
    "ExperimentResult",
    "table1_graph_suite",
    "fig1_distribution",
    "fig3_degree_distributions",
    "table2_counters",
    "table3_orderings",
    "fig5_ordering_quality",
    "fig6_ordering_time",
    "fig7_counting_time",
    "fig8_total_time",
    "table4_heuristic",
    "fig9_structures",
    "fig10_heuristic_vs_k",
    "fig11_scaling",
    "table5_comparison",
    "table6_livejournal",
    "DEFAULT_SUITE",
]

DEFAULT_SUITE = tuple(dataset_names())
_NON_LJ = tuple(n for n in DEFAULT_SUITE if n != "livejournal")
_ENUM_BUDGET = 3_000_000  # recursion nodes ~ the paper's 2h wall


@dataclass
class ExperimentResult:
    """Output of one table/figure reproduction."""

    name: str
    tables: list[Table]
    data: dict
    shape_checks: list[tuple[str, bool]] = field(default_factory=list)

    def check(self, description: str, ok: bool) -> None:
        self.shape_checks.append((description, bool(ok)))

    @property
    def all_checks_pass(self) -> bool:
        return all(ok for _, ok in self.shape_checks)

    def show(self) -> None:
        for t in self.tables:
            t.show()
        for desc, ok in self.shape_checks:
            print(f"  [{'PASS' if ok else 'FAIL'}] {desc}")
        print()


# ----------------------------------------------------------------- utils
def _ordering_work_scale(name: str) -> float:
    spec = get_spec(name)
    return spec.effective_num_vertices / load(name).num_vertices


def _counting(name: str, k: int, ordering, structure: str = "remap") -> CountResult:
    return count_kcliques(load(name), k, ordering, structure=structure)


def _counting_with_metrics(
    name: str, k: int, ordering, structure: str = "remap"
):
    """Like :func:`_counting` but also returns the metrics registry the
    run was observed through.  The counter-derived report cells (Table
    II call ratios, Table VI "calls") read the registry's canonical
    names rather than the engine's private counter fields; the invariant
    suite holds the two vocabularies exactly equal."""
    return run_with_metrics(
        count_kcliques, load(name), k, ordering, structure=structure
    )


def _model_counting_seconds(
    name: str, result: CountResult, dag_maxout: int, *, threads: int = 64,
    serial_fraction: float = 0.0,
) -> float:
    spec = get_spec(name)
    return simulate_counting(
        result,
        threads=threads,
        effective_num_vertices=spec.effective_num_vertices,
        max_out_degree=dag_maxout,
        serial_fraction=serial_fraction,
        work_scale=_ordering_work_scale(name),
    ).seconds


def _model_ordering_seconds(name: str, cost, *, threads: int = 64) -> float:
    return simulate_ordering(
        cost, threads=threads, work_scale=_ordering_work_scale(name)
    ).seconds


# ------------------------------------------------------------ Table I
def table1_graph_suite(names: tuple[str, ...] = DEFAULT_SUITE) -> ExperimentResult:
    """Table I: the input-graph suite, analog vs paper."""
    t = Table(
        "Table I - input graph suite (analog | paper)",
        ["graph", "|V|", "|E|", "avg deg", "k_max", "paper |V|(M)",
         "paper |E|(M)", "paper deg", "paper k_max"],
    )
    data = {}
    res = ExperimentResult("table1", [t], data)
    for name in names:
        g = load(name)
        spec = get_spec(name)
        if name == "livejournal":
            kmax = count_all_sizes(g, core_ordering(g), max_k=None).max_clique_size
        else:
            kmax = count_all_sizes(g, core_ordering(g)).max_clique_size
        pv, pe, pd, pk = paper_data.TABLE1[name]
        data[name] = {
            "n": g.num_vertices, "m": g.num_edges,
            "avg_degree": g.average_degree, "kmax": kmax,
        }
        t.add(spec.title, g.num_vertices, g.num_edges,
              f"{g.average_degree:.1f}", kmax, pv, pe, pd,
              pk if pk is not None else "-")
        if spec.paper_kmax is not None:
            res.check(
                f"{name}: k_max tracks paper/3 ({kmax} vs {spec.paper_kmax}/3)",
                abs(kmax - spec.paper_kmax / 3) <= max(2, spec.paper_kmax / 12),
            )
    return res


# ------------------------------------------------------------- Fig. 1
def fig1_distribution(
    names: tuple[str, ...] = ("dblp", "skitter", "livejournal", "webedu"),
) -> ExperimentResult:
    """Fig. 1: k-clique frequency distributions peak near k_max / 2.

    The distribution is served from a materialized SCT forest (one
    recursion, Pascal-row folds), cross-checked bit-identical against
    the direct all-k engine; the recount-vs-query speedup is recorded.
    """
    t = Table(
        "Fig. 1 - clique size distribution (forest-served)",
        ["graph", "k_max", "peak k", "peak count", "count@3", "count@k_max",
         "recount/query"],
    )
    data = {}
    res = ExperimentResult("fig1", [t], data)
    for name in names:
        g = load(name)
        ordering = core_ordering(g)
        t0 = time.perf_counter()
        direct = count_all_sizes(g, ordering).all_counts
        recount_s = time.perf_counter() - t0
        forest = build_forest(g, ordering, members=False)
        t0 = time.perf_counter()
        dist = forest.count_all()
        query_s = time.perf_counter() - t0
        speedup = recount_s / query_s if query_s else float("inf")
        kmax = len(dist) - 1
        peak_k = int(np.argmax([float(c) for c in dist]))
        data[name] = {
            "dist": dist, "kmax": kmax, "peak_k": peak_k,
            "forest_query_speedup": speedup,
        }
        t.add(name, kmax, peak_k, fmt_count(dist[peak_k]),
              fmt_count(dist[3] if kmax >= 3 else 0), fmt_count(dist[kmax]),
              f"{speedup:.0f}x")
        res.check(
            f"{name}: forest-served distribution identical to the "
            "direct all-k engine",
            dist == direct,
        )
        res.check(
            f"{name}: distribution peaks near k_max/2 "
            f"(peak {peak_k}, k_max {kmax})",
            kmax // 3 <= peak_k <= 2 * kmax // 3 + 1,
        )
        res.check(
            f"{name}: mid-size cliques outnumber largest "
            f"({fmt_count(dist[peak_k])} > {fmt_count(dist[kmax])})",
            dist[peak_k] > dist[kmax],
        )
    t.note(
        "recount/query: one direct all-k recursion vs answering from "
        "the already-built forest"
    )
    return res


# ------------------------------------------------------------- Fig. 3
def fig3_degree_distributions(name: str = "skitter") -> ExperimentResult:
    """Fig. 3: DAG out-degree distributions, core vs degree ordering."""
    g = load(name)
    rows = {}
    for label, ordering in (
        ("core", core_ordering(g)),
        ("degree", degree_ordering(g)),
    ):
        dag = directionalize(g, ordering)
        rows[label] = degree_histogram(dag)
    t = Table(
        f"Fig. 3 - out-degree distribution after directionalizing ({name})",
        ["bucket", "core ordering", "degree ordering"],
    )
    buckets = [(0, 1), (1, 2), (2, 4), (4, 8), (8, 16), (16, 32), (32, 64),
               (64, 1 << 30)]
    core_h, deg_h = rows["core"], rows["degree"]
    for lo, hi in buckets:
        c = int(core_h[lo:min(hi, core_h.size)].sum())
        d = int(deg_h[lo:min(hi, deg_h.size)].sum())
        t.add(f"[{lo},{hi})" if hi < 1 << 30 else f">={lo}", c, d)
    res = ExperimentResult(
        "fig3", [t],
        {"core": core_h.tolist(), "degree": deg_h.tolist()},
    )
    res.check(
        "degree ordering has a longer out-degree tail (higher max)",
        deg_h.size >= core_h.size,
    )
    res.check(
        "both DAGs keep the same total edge count",
        int(np.arange(core_h.size) @ core_h)
        == int(np.arange(deg_h.size) @ deg_h),
    )
    return res


# ------------------------------------------------------------ Table II
def table2_counters(
    names: tuple[str, ...] = DEFAULT_SUITE, k: int = 8
) -> ExperimentResult:
    """Table II: counting-phase counters, degree normalized to core."""
    t = Table(
        f"Table II - degree ordering normalized to core (k={k})",
        ["graph", "instr", "calls", "MPKI", "IPC",
         "paper instr", "paper calls", "paper MPKI", "paper IPC"],
    )
    data = {}
    res = ExperimentResult("table2", [t], data)
    ratios = []
    for name in names:
        g = load(name)
        spec = get_spec(name)
        model = CostModel(EPYC_9554)
        est = {}
        for label, ordering in (
            ("core", core_ordering(g)),
            ("degree", degree_ordering(g)),
        ):
            dag_maxout = max_out_degree(g, ordering)
            r, reg = _counting_with_metrics(name, k, ordering)
            est[label] = (
                r,
                reg,
                model.estimate_counting(
                    r.counters,
                    threads=64,
                    structure="remap",
                    max_out_degree=dag_maxout,
                    effective_num_vertices=spec.effective_num_vertices,
                    work_scale=_ordering_work_scale(name),
                ),
            )
        rc, mc, ec = est["core"]
        rd, md, ed = est["degree"]
        instr = ed.instructions / ec.instructions
        # The paper's "recursive function calls" column, read through the
        # metrics registry (same exact integers as the engine counters;
        # tests/test_obs.py pins the equality).
        calls = (
            md.total("engine_nodes_visited_total")
            / mc.total("engine_nodes_visited_total")
        )
        res.check(
            f"{name}: registry nodes-visited matches the exact recursion "
            "counters for both orderings",
            mc.total("engine_nodes_visited_total") == rc.counters.function_calls
            and md.total("engine_nodes_visited_total")
            == rd.counters.function_calls,
        )
        mpki = ed.mpki / ec.mpki if ec.mpki else float("nan")
        ipc = ed.ipc / ec.ipc
        p_instr, p_calls, p_mpki, p_ipc = paper_data.TABLE2[name]
        data[name] = {"instr": instr, "calls": calls, "mpki": mpki, "ipc": ipc}
        ratios.append(instr)
        t.add(name, f"{instr:.3f}", f"{calls:.3f}", f"{mpki:.3f}",
              f"{ipc:.3f}", p_instr, p_calls, p_mpki, p_ipc)
        # The counter cells must come from the pruned target-k runs
        # (the forest build cannot early-terminate), but the *counts*
        # they were measured on are cross-checked through the forest.
        forest = build_forest(g, core_ordering(g), members=False)
        res.check(
            f"{name}: forest-served count(k={k}) matches the direct run",
            forest.count(k) == rc.count,
        )
    gm = geometric_mean(ratios)
    t.note(f"geomean instr ratio: measured {gm:.3f} vs paper 1.16")
    t.note(
        "magnitude is compressed: the bitset SCT engine is far less "
        "ordering-sensitive than the paper's directed-subgraph variant "
        "(see EXPERIMENTS.md)"
    )
    t.note(
        "counts behind every cell are cross-checked against a "
        "materialized SCT forest (counter cells stay from the pruned "
        "target-k runs, which a forest build cannot reproduce)"
    )
    res.check(
        "degree ordering never executes less counting work (geomean >= 1)",
        gm >= 0.99,
    )
    res.check(
        "majority of graphs: degree >= core instruction count",
        sum(1 for v in ratios if v >= 0.999) >= len(ratios) - 1,
    )
    return res


# ----------------------------------------------------------- Table III
def table3_orderings(
    names: tuple[str, ...] = DEFAULT_SUITE, k: int = 8
) -> ExperimentResult:
    """Table III: core vs degree ordering end to end (model seconds)."""
    t = Table(
        f"Table III - sequential core vs parallel degree ordering (k={k})",
        ["graph",
         "core: order(s)", "count(s)", "total(s)", "maxout",
         "deg: order(s)", "count(s)", "total(s)", "maxout"],
    )
    data = {}
    res = ExperimentResult("table3", [t], data)
    for name in names:
        g = load(name)
        row = {}
        for label, ordering in (
            ("core", core_ordering(g)),
            ("degree", degree_ordering(g)),
        ):
            maxout = max_out_degree(g, ordering)
            r = _counting(name, k, ordering)
            threads_order = 1 if label == "core" else 64
            o_s = _model_ordering_seconds(name, ordering.cost,
                                          threads=threads_order)
            c_s = _model_counting_seconds(name, r, maxout)
            row[label] = {
                "ordering_s": o_s, "counting_s": c_s,
                "total_s": o_s + c_s, "maxout": maxout,
            }
        data[name] = row
        t.add(
            name,
            fmt_seconds(row["core"]["ordering_s"]),
            fmt_seconds(row["core"]["counting_s"]),
            fmt_seconds(row["core"]["total_s"]),
            row["core"]["maxout"],
            fmt_seconds(row["degree"]["ordering_s"]),
            fmt_seconds(row["degree"]["counting_s"]),
            fmt_seconds(row["degree"]["total_s"]),
            row["degree"]["maxout"],
        )
        res.check(
            f"{name}: core ordering max out-degree <= degree's",
            row["core"]["maxout"] <= row["degree"]["maxout"],
        )
        res.check(
            f"{name}: degree ordering phase is faster than sequential core",
            row["degree"]["ordering_s"] < row["core"]["ordering_s"],
        )
    return res


# ------------------------------------------------------------- Fig. 5
_EPS_SWEEP = (-0.5, 0.1, 50_000.0)


def _all_orderings(g):
    orderings = {"core": core_ordering(g)}
    for eps in _EPS_SWEEP:
        orderings[f"approx(eps={eps:g})"] = approx_core_ordering(g, eps)
    orderings["kcore"] = kcore_ordering(g)
    orderings["EC"] = centrality_ordering(g)
    orderings["degree"] = degree_ordering(g)
    return orderings


def fig5_ordering_quality(
    names: tuple[str, ...] = DEFAULT_SUITE,
) -> ExperimentResult:
    """Fig. 5: max out-degree of every ordering, normalized to core."""
    cols = ["graph", "core", "approx(eps=-0.5)", "approx(eps=0.1)",
            "approx(eps=50000)", "kcore", "EC", "degree"]
    t = Table("Fig. 5 - normalized max out-degree (core = 1.0)", cols)
    data = {}
    res = ExperimentResult("fig5", [t], data)
    for name in names:
        g = load(name)
        orderings = _all_orderings(g)
        quality = {lbl: max_out_degree(g, o) for lbl, o in orderings.items()}
        base = quality["core"] or 1
        data[name] = quality
        t.add(name, *(f"{quality[c] / base:.2f}" for c in cols[1:]))
        res.check(
            f"{name}: eps=-0.5 approximation within 15% of core quality",
            quality["approx(eps=-0.5)"] <= 1.15 * base + 1,
        )
        res.check(
            f"{name}: eps=50000 matches degree ordering quality",
            quality["approx(eps=50000)"] == quality["degree"],
        )
        res.check(
            f"{name}: EC quality between core and degree (+tolerance)",
            base <= quality["EC"] <= max(quality["degree"], quality["EC"])
            and quality["EC"] <= quality["degree"] * 1.3 + 2,
        )
    return res


# ------------------------------------------------------------- Fig. 6
def fig6_ordering_time(
    names: tuple[str, ...] = DEFAULT_SUITE,
) -> ExperimentResult:
    """Fig. 6: ordering-time speedup over the sequential core ordering."""
    cols = ["graph", "approx(eps=-0.5)", "approx(eps=0.1)", "kcore", "EC",
            "degree", "rounds(eps=-0.5)"]
    t = Table("Fig. 6 - ordering time speedup over sequential core (64T)", cols)
    data = {}
    res = ExperimentResult("fig6", [t], data)
    speedups_m05 = []
    for name in names:
        g = load(name)
        orderings = _all_orderings(g)
        base = _model_ordering_seconds(name, orderings["core"].cost, threads=1)
        times = {
            lbl: _model_ordering_seconds(name, o.cost)
            for lbl, o in orderings.items()
            if lbl != "core"
        }
        sp = {lbl: base / s for lbl, s in times.items()}
        data[name] = {"speedups": sp,
                      "rounds": orderings["approx(eps=-0.5)"].cost.num_rounds}
        speedups_m05.append(sp["approx(eps=-0.5)"])
        t.add(name, *(f"{sp[c]:.1f}x" for c in cols[1:-1]),
              data[name]["rounds"])
        res.check(
            f"{name}: degree ordering is the fastest to compute",
            sp["degree"] == max(sp.values()),
        )
    gm = geometric_mean(speedups_m05)
    t.note(f"geomean eps=-0.5 speedup {gm:.2f}x "
           f"(paper: {paper_data.FIG6_SPEEDUP_EPS_M05}x)")
    res.check(
        "eps=-0.5 approximation beats sequential core ordering (geomean > 2x)",
        gm > 2.0,
    )
    return res


# ------------------------------------------------------------- Fig. 7
def fig7_counting_time(
    names: tuple[str, ...] = DEFAULT_SUITE, k: int = 8
) -> ExperimentResult:
    """Fig. 7: counting-time speedup over the core ordering."""
    cols = ["graph", "approx(eps=-0.5)", "approx(eps=0.1)",
            "approx(eps=50000)", "kcore", "EC", "degree"]
    t = Table(f"Fig. 7 - counting time speedup over core ordering (k={k})", cols)
    data = {}
    res = ExperimentResult("fig7", [t], data)
    for name in names:
        g = load(name)
        orderings = _all_orderings(g)
        times = {}
        for lbl, o in orderings.items():
            maxout = max_out_degree(g, o)
            r = _counting(name, k, o)
            times[lbl] = _model_counting_seconds(name, r, maxout)
        base = times["core"]
        sp = {lbl: base / s for lbl, s in times.items() if lbl != "core"}
        data[name] = {"times": times, "speedups": sp}
        t.add(name, *(f"{sp[c]:.2f}" for c in cols[1:]))
        res.check(
            f"{name}: counting times within 2x across orderings "
            "(pivoting tolerates ordering quality)",
            min(sp.values()) > 0.5,
        )
    return res


# ------------------------------------------------------------- Fig. 8
def fig8_total_time(
    names: tuple[str, ...] = DEFAULT_SUITE, k: int = 8
) -> ExperimentResult:
    """Fig. 8: total (ordering + counting) speedup over core ordering."""
    cols = ["graph", "approx(eps=-0.5)", "approx(eps=0.1)",
            "approx(eps=50000)", "kcore", "EC", "degree"]
    t = Table(f"Fig. 8 - total time speedup over core ordering (k={k})", cols)
    data = {}
    res = ExperimentResult("fig8", [t], data)
    for name in names:
        g = load(name)
        orderings = _all_orderings(g)
        totals = {}
        for lbl, o in orderings.items():
            maxout = max_out_degree(g, o)
            r = _counting(name, k, o)
            threads_order = 1 if lbl == "core" else 64
            totals[lbl] = (
                _model_ordering_seconds(name, o.cost, threads=threads_order)
                + _model_counting_seconds(name, r, maxout)
            )
        base = totals["core"]
        sp = {lbl: base / s for lbl, s in totals.items() if lbl != "core"}
        data[name] = {"totals": totals, "speedups": sp}
        t.add(name, *(f"{sp[c]:.2f}" for c in cols[1:]))
        res.check(
            f"{name}: a parallel ordering beats end-to-end sequential core",
            max(sp.values()) > 1.0,
        )
    return res


# ------------------------------------------------------------ Table IV
def table4_heuristic(
    names: tuple[str, ...] = DEFAULT_SUITE,
) -> ExperimentResult:
    """Table IV: heuristic inputs and decisions vs the paper's."""
    t = Table(
        "Table IV - order-selecting heuristic",
        ["graph", "decision", "paper best", "a", "a/|V|(eff)",
         "common frac", "paper common", "match"],
    )
    data = {}
    res = ExperimentResult("table4", [t], data)
    for name in names:
        spec = get_spec(name)
        d = select_ordering(
            load(name), effective_num_vertices=spec.effective_num_vertices
        )
        want = "approx_core" if spec.best_ordering == "core" else "degree"
        ok = d.choice.value == want
        paper_best, _, _, _, paper_common = paper_data.TABLE4[name]
        data[name] = {
            "choice": d.choice.value, "paper": want,
            "a": d.inputs.a, "a_over_v": d.inputs.a_over_v,
            "common": d.inputs.common_fraction, "match": ok,
        }
        t.add(name, d.choice.value, paper_best, d.inputs.a,
              f"{d.inputs.a_over_v:.5f}", f"{d.inputs.common_fraction:.2f}",
              f"{paper_common:.2f}", "yes" if ok else "NO")
        res.check(f"{name}: heuristic matches Table IV ({want})", ok)
    return res


# ------------------------------------------------------------- Fig. 9
def fig9_structures(
    names: tuple[str, ...] = DEFAULT_SUITE, k: int = 8
) -> ExperimentResult:
    """Fig. 9: subgraph-structure performance normalized to dense."""
    t = Table(
        f"Fig. 9 - counting speedup over dense structure (k={k}, 64T)",
        ["graph", "dense", "sparse", "remap", "dense mem(B)", "remap mem(B)"],
    )
    data = {}
    res = ExperimentResult("fig9", [t], data)
    from repro.perfmodel.cache import structure_index_bytes

    for name in names:
        g = load(name)
        spec = get_spec(name)
        ordering = core_ordering(g)
        maxout = max_out_degree(g, ordering)
        times = {}
        for s in ("dense", "sparse", "remap"):
            r = _counting(name, k, ordering, structure=s)
            times[s] = _model_counting_seconds(name, r, maxout)
        base = times["dense"]
        mem_dense = structure_index_bytes(
            "dense", spec.effective_num_vertices, maxout
        )
        mem_remap = structure_index_bytes(
            "remap", spec.effective_num_vertices, maxout
        )
        data[name] = {"times": times, "mem_dense": mem_dense,
                      "mem_remap": mem_remap}
        t.add(name, "1.00", f"{base / times['sparse']:.2f}",
              f"{base / times['remap']:.2f}",
              f"{mem_dense:.3g}", f"{mem_remap:.3g}")
        res.check(
            f"{name}: remap within 5% of dense or faster at 64 threads "
            "(the paper's DBLP-like small graphs are a wash; remap wins "
            "where the dense index overflows the LLC)",
            times["remap"] <= base * 1.05,
        )
        res.check(
            f"{name}: remap memory orders of magnitude below dense",
            mem_remap < mem_dense / 100,
        )
    return res


# ------------------------------------------------------------ Fig. 10
def fig10_heuristic_vs_k(
    names: tuple[str, ...] = ("dblp", "skitter", "baidu", "orkut"),
    ks: tuple[int, ...] = (4, 6, 8, 10, 12),
) -> ExperimentResult:
    """Fig. 10: total time vs k for approx-core / degree / heuristic."""
    t = Table(
        "Fig. 10 - total model seconds vs clique size",
        ["graph", "k", "approx core", "degree", "heuristic", "heuristic pick"],
    )
    data = {}
    res = ExperimentResult("fig10", [t], data)
    for name in names:
        spec = get_spec(name)
        g = load(name)
        per_k = {}
        for k in ks:
            row = {}
            for mode in ("approx_core", "degree", "heuristic"):
                r = count_cliques(
                    g, k,
                    PivotScaleConfig(
                        ordering=mode,
                        effective_num_vertices=spec.effective_num_vertices,
                    ),
                )
                row[mode] = r.total_model_seconds
                if mode == "heuristic":
                    row["pick"] = r.ordering.name
            per_k[k] = row
            t.add(name, k, fmt_seconds(row["approx_core"]),
                  fmt_seconds(row["degree"]), fmt_seconds(row["heuristic"]),
                  row["pick"])
        data[name] = per_k
        picks = {row["pick"] for row in per_k.values()}
        res.check(
            f"{name}: heuristic choice is stable across k (paper: k does "
            "not change the best ordering)",
            len(picks) == 1,
        )
        worst = max(
            per_k[k]["heuristic"] / min(per_k[k]["approx_core"],
                                        per_k[k]["degree"])
            for k in ks
        )
        res.check(
            f"{name}: heuristic within 25% of the better ordering at all k",
            worst < 1.25,
        )
    return res


# ------------------------------------------------------------ Fig. 11
def fig11_scaling(
    names: tuple[str, ...] = ("dblp", "baidu", "webedu", "friendster"),
    ks: tuple[int, ...] = (6, 12),
    threads: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64),
) -> ExperimentResult:
    """Fig. 11: self-relative scaling for the three structures."""
    t = Table(
        "Fig. 11 - self-relative speedup (threads: "
        + ", ".join(map(str, threads)) + ")",
        ["graph", "k", "structure"] + [f"{x}T" for x in threads],
    )
    data = {}
    res = ExperimentResult("fig11", [t], data)
    for name in names:
        spec = get_spec(name)
        g = load(name)
        ordering = core_ordering(g)
        maxout = max_out_degree(g, ordering)
        for k in ks:
            for s in ("dense", "sparse", "remap"):
                r = _counting(name, k, ordering, structure=s)
                curve = scaling_curve(
                    r, list(threads),
                    effective_num_vertices=spec.effective_num_vertices,
                    max_out_degree=maxout,
                    work_scale=_ordering_work_scale(name),
                )
                base = curve[1].seconds
                sp = {x: base / curve[x].seconds for x in threads}
                data[(name, k, s)] = sp
                t.add(name, k, s, *(f"{sp[x]:.1f}" for x in threads))
    top = max(threads)
    for name in names:
        if name == "dblp":
            continue
        for k in ks:
            sp_remap = data[(name, k, "remap")]
            sp_dense = data[(name, k, "dense")]
            if top >= 64:
                res.check(
                    f"{name} k={k}: remap scales near-linearly to 64T (>40x)",
                    sp_remap[64] > 40,
                )
            res.check(
                f"{name} k={k}: dense scales worse than remap at {top}T",
                sp_dense[top] < sp_remap[top] * 1.001,
            )
    if "baidu" in names and 32 in threads and 64 in threads:
        for k in ks:
            sp = data[("baidu", k, "dense")]
            res.check(
                f"baidu k={k}: dense plateaus past 32T "
                f"(64T/32T gain {sp[64] / sp[32]:.2f}x < 1.45x)",
                sp[64] / sp[32] < 1.45,
            )
    return res


# ------------------------------------- Table V / Fig. 12 (comparison)
def table5_comparison(
    names: tuple[str, ...] = _NON_LJ,
    ks: tuple[int, ...] = tuple(paper_data.TABLE5_KS),
) -> ExperimentResult:
    """Table V / Fig. 12: Pivoter, Arb-Count, GPU-Pivot, PivotScale."""
    t = Table(
        "Table V - total model seconds per algorithm",
        ["graph", "algorithm"] + [f"k={k}" for k in ks],
    )
    data = {}
    res = ExperimentResult("table5", [t], data)
    for name in names:
        spec = get_spec(name)
        g = load(name)
        core = core_ordering(g)
        core_maxout = max_out_degree(g, core)
        degree = degree_ordering(g)
        rows: dict[str, list] = {
            "pivoter": [], "arbcount": [], "gpu_v100": [], "gpu_a100": [],
            "pivotscale": [],
        }
        for k in ks:
            # Pivoter: sequential core ordering + dense structure +
            # naive parallelization.
            rp = _counting(name, k, core, structure="dense")
            pivoter_s = (
                _model_ordering_seconds(name, core.cost, threads=1)
                + _model_counting_seconds(
                    name, rp, core_maxout,
                    serial_fraction=PIVOTER_SERIAL_FRACTION,
                )
            )
            rows["pivoter"].append(pivoter_s)
            # Arb-Count: enumeration with degree ordering, node budget
            # metered by a run controller so the over-budget cell can
            # report how much work was actually spent.
            arb_ctl = RunController(Budget(max_nodes=_ENUM_BUDGET))
            try:
                ra = count_kcliques_enumeration(
                    g, k, degree, controller=arb_ctl
                )
                arb_s = (
                    _model_ordering_seconds(name, degree.cost)
                    + _model_counting_seconds(
                        name, ra, max_out_degree(g, degree)
                    )
                )
                rows["arbcount"].append(arb_s)
            except BudgetExceededError as exc:
                rows["arbcount"].append(None)  # the paper's "> 2h"
                spent = exc.spent or arb_ctl.spent_snapshot()
                rows.setdefault("arbcount_spent", {})[k] = spent.as_dict()
            # GPU-Pivot model from the core-ordering counters.
            scale = _ordering_work_scale(name)
            max_frac = (
                float(rp.per_root_work.max() / rp.counters.work)
                if rp.counters.work else 0.0
            )
            for key, spec_gpu in (("gpu_v100", GPU_V100), ("gpu_a100", GPU_A100)):
                rows[key].append(
                    gpu_pivot_time(
                        rp.counters, spec_gpu, max_out_degree=core_maxout,
                        work_scale=scale, max_task_fraction=max_frac,
                    )
                )
            # PivotScale: full pipeline (heuristic ordering, remap).
            rps = count_cliques(
                g, k,
                PivotScaleConfig(
                    effective_num_vertices=spec.effective_num_vertices
                ),
            )
            rows["pivotscale"].append(rps.total_model_seconds)
        data[name] = rows
        spent_by_k = rows.get("arbcount_spent", {})
        for alg in ("pivoter", "arbcount", "gpu_v100", "gpu_a100",
                    "pivotscale"):
            cells = []
            for kk, v in zip(ks, rows[alg]):
                if v is not None:
                    cells.append(fmt_seconds(v))
                else:
                    s = spent_by_k.get(kk)
                    if s:
                        n = s["nodes"]
                        nodes = (
                            f"{n / 1e6:.1f}M" if n >= 10**6 else f"{n:,}"
                        )
                        cells.append(f">budget@{nodes}")
                    else:
                        cells.append(">budget")
            t.add(name, alg, *cells)
        # Shape checks per graph.
        ps, pv = rows["pivotscale"], rows["pivoter"]
        res.check(
            f"{name}: PivotScale beats Pivoter at every k "
            f"(min speedup {min(a / b for a, b in zip(pv, ps)):.1f}x)",
            all(a > b for a, b in zip(pv, ps)),
        )
        arb = rows["arbcount"]
        kmax = get_spec(name).paper_kmax or 99
        if arb[0] is not None and kmax > 40:
            # Clique-bearing graphs: enumeration explodes with k.
            grows = arb[-1] is None or arb[-1] > arb[0]
            res.check(f"{name}: Arb-Count cost grows with k", grows)
        elif arb[0] is not None:
            # Thin-clique graphs (the paper's Baidu / Wiki-Talk rows):
            # enumeration stays cheap and competitive at every k.
            res.check(
                f"{name}: Arb-Count stays competitive on a thin-clique "
                "graph (paper: it wins Baidu/Wiki-Talk outright)",
                all(v is not None and v <= 2.5 * p
                    for v, p in zip(arb, rows["pivotscale"])),
            )
        flat = max(ps) / min(ps)
        res.check(
            f"{name}: PivotScale nearly flat in k (max/min {flat:.2f}x < 4x)",
            flat < 4.0,
        )
        # Crossover: pivoting wins by k=8 wherever enumeration is not
        # trivially cheap (the paper's Baidu stays enumeration-friendly).
        if 8 in ks:
            i8 = ks.index(8)
            if arb[i8] is None or (arb[i8] > ps[i8] and name != "baidu"):
                res.check(f"{name}: PivotScale beats Arb-Count by k=8", True)
    return res


# ------------------------------------ Table VI / Fig. 13 (LiveJournal)
def table6_livejournal(
    ks: tuple[int, ...] = tuple(paper_data.TABLE5_KS),
) -> ExperimentResult:
    """Table VI / Fig. 13: the clique-rich LiveJournal workload."""
    name = "livejournal"
    spec = get_spec(name)
    g = load(name)
    core = core_ordering(g)
    maxout = max_out_degree(g, core)
    t = Table(
        "Table VI - LiveJournal analog: counts and model seconds",
        ["k", "k-clique count", "PivotScale(s)", "GPU V100(s)",
         "GPU A100(s)", "calls"],
    )
    data = {}
    res = ExperimentResult("table6", [t], data)
    scale = _ordering_work_scale(name)
    registry_matches_counters = True
    for k in ks:
        r, reg = _counting_with_metrics(name, k, core)
        ps = (
            _model_ordering_seconds(name, core.cost)
            + _model_counting_seconds(name, r, maxout)
        )
        # Total-work denominator and the "calls" column come from the
        # registry's canonical names; per-root distributions stay on the
        # result (the registry only aggregates totals).
        work = reg.total("engine_work_units_total")
        calls = int(reg.total("engine_nodes_visited_total"))
        registry_matches_counters &= (
            calls == r.counters.function_calls and work == r.counters.work
        )
        max_frac = float(r.per_root_work.max() / work) if work else 0.0
        v100 = gpu_pivot_time(r.counters, GPU_V100, max_out_degree=maxout,
                              work_scale=scale, max_task_fraction=max_frac)
        a100 = gpu_pivot_time(r.counters, GPU_A100, max_out_degree=maxout,
                              work_scale=scale, max_task_fraction=max_frac)
        data[k] = {
            "count": r.count, "pivotscale_s": ps, "v100_s": v100,
            "a100_s": a100, "calls": calls,
        }
        t.add(k, fmt_count(r.count), fmt_seconds(ps), fmt_seconds(v100),
              fmt_seconds(a100), calls)
    res.check(
        "registry work/calls totals match the exact engine counters "
        "at every k",
        registry_matches_counters,
    )
    res.check(
        "counts grow by orders of magnitude with k",
        data[ks[-1]]["count"] > 20 * data[ks[0]]["count"],
    )
    res.check(
        "execution time grows steeply with k (unlike other graphs)",
        data[ks[-1]]["pivotscale_s"] > 4 * data[ks[0]]["pivotscale_s"],
    )
    growth = data[11]["calls"] / data[6]["calls"] if 6 in data and 11 in data else 0
    res.check(
        f"recursive calls explode from k=6 to k=11 ({growth:.0f}x, paper 942x)",
        growth > 5,
    )
    res.check(
        "PivotScale beats both GPU models at every k",
        all(
            d["pivotscale_s"] < d["v100_s"] and d["pivotscale_s"] < d["a100_s"]
            for d in data.values()
        ),
    )
    return res
