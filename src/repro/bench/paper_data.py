"""The paper's published numbers (Tables I-VI, figure summaries).

Used by the benchmark harness to print paper-vs-measured rows and by
EXPERIMENTS.md.  Dataset keys match :mod:`repro.datasets`.  ``None``
means the paper reports "-" (missing / not reported); the string
``">2h"`` is kept verbatim where the paper timed out.
"""

from __future__ import annotations

__all__ = [
    "TABLE1",
    "TABLE2",
    "TABLE3",
    "TABLE4",
    "TABLE5",
    "TABLE6",
    "FIG6_SPEEDUP_EPS_M05",
    "SUITE_ORDER",
    "TABLE5_KS",
]

SUITE_ORDER = [
    "dblp", "skitter", "baidu", "wikitalk",
    "orkut", "livejournal", "webedu", "friendster",
]

#: Table I: |V| (M), |E| (M), average degree, k_max.
TABLE1: dict[str, tuple[float, float, float, int | None]] = {
    "dblp": (0.3, 1.1, 3.7, 114),
    "skitter": (1.7, 11.1, 6.5, 67),
    "baidu": (2.2, 17.8, 8.5, 31),
    "wikitalk": (2.4, 9.3, 3.9, 26),
    "orkut": (3.1, 117.2, 37.8, 51),
    "livejournal": (4.0, 34.7, 8.1, None),
    "webedu": (9.9, 46.2, 2.4, 449),
    "friendster": (65.6, 1806.1, 27.5, 129),
}

#: Table II: counting phase, degree normalized to core:
#: (instructions, function calls, LLC MPKI, IPC).
TABLE2: dict[str, tuple[float, float, float, float]] = {
    "dblp": (1.00, 1.02, 0.92, 1.00),
    "skitter": (1.52, 1.44, 0.66, 1.04),
    "baidu": (1.00, 1.01, 0.92, 1.07),
    "wikitalk": (1.36, 1.35, 0.83, 1.01),
    "orkut": (1.07, 1.08, 0.86, 1.00),
    "livejournal": (1.28, 1.21, 1.09, 0.97),
    "webedu": (1.26, 1.31, 0.74, 1.04),
    "friendster": (1.00, 1.02, 0.88, 1.04),
}

#: Table III: k=8;
#: core:   (ordering s @1T, counting s @64T, total s, max out-degree)
#: degree: (ordering s @64T, counting s @64T, total s, max out-degree)
TABLE3: dict[str, dict[str, tuple[float, float, float, int]]] = {
    "dblp": {"core": (0.03, 0.02, 0.05, 113), "degree": (0.00, 0.02, 0.02, 113)},
    "skitter": {"core": (0.32, 0.53, 0.85, 111), "degree": (0.01, 1.73, 1.74, 231)},
    "baidu": {"core": (0.61, 0.19, 0.80, 78), "degree": (0.02, 0.18, 0.19, 298)},
    "wikitalk": {"core": (0.15, 0.86, 1.01, 131), "degree": (0.01, 2.69, 2.70, 340)},
    "orkut": {"core": (3.11, 19.99, 23.10, 253), "degree": (0.05, 22.93, 22.98, 535)},
    "livejournal": {
        "core": (1.34, 2562.86, 2564.20, 360),
        "degree": (0.02, 3619.24, 3619.26, 524),
    },
    "webedu": {"core": (1.25, 1.04, 2.29, 448), "degree": (0.02, 2.09, 2.11, 448)},
    "friendster": {
        "core": (126.36, 58.26, 184.62, 304),
        "degree": (1.68, 56.24, 57.92, 868),
    },
}

#: Table IV: (best ordering, a, |V| M, a/|V|, common fraction).
TABLE4: dict[str, tuple[str, int, float, float, float]] = {
    "dblp": ("degree", 296, 0.3, 0.0010, 0.72),
    "skitter": ("core", 33_982, 1.7, 0.0200, 0.84),
    "baidu": ("degree", 2_867, 2.2, 0.0013, 0.00),
    "wikitalk": ("core", 10_520, 2.4, 0.0044, 0.11),
    "orkut": ("core", 29_657, 3.1, 0.0945, 0.12),
    "livejournal": ("core", 1_705, 4.0, 0.0004, 0.20),
    "webedu": ("core", 18_293, 9.9, 0.0019, 0.90),
    "friendster": ("degree", 3_117, 65.6, 0.0000, 0.00),
}

TABLE5_KS = list(range(6, 14))

#: Table V: total seconds per (graph, algorithm) across k = 6..13.
#: Values are floats, the string ">2h" where the paper timed out, or
#: None where not reported (GPU-Pivot has no k > 11, no Baidu/Wiki-Talk
#: /Web-Edu rows).
_2H = ">2h"
TABLE5: dict[str, dict[str, list]] = {
    "dblp": {
        "pivoter": [1.50, 1.00, 1.50, 1.00, 1.50, 1.00, 1.50, 1.50],
        "arbcount": [0.13, 2.07, 32.11, 450.86, _2H, _2H, _2H, _2H],
        "gpu_v100": [0.11, 0.11, 0.11, 0.11, 0.11, 0.11, None, None],
        "gpu_a100": [0.11, 0.11, 0.11, 0.11, 0.11, 0.11, None, None],
        "pivotscale": [0.02] * 8,
    },
    "skitter": {
        "pivoter": [16.26, 17.27, 17.77, 17.74, 18.26, 17.69, 17.78, 18.29],
        "arbcount": [0.38, 2.51, 18.34, 125.52, 754.08, 4189.38, _2H, _2H],
        "gpu_v100": [1.01, 1.27, 1.59, 1.84, 1.78, 1.78, None, None],
        "gpu_a100": [0.96, 1.31, 1.73, 1.97, 2.22, 2.15, None, None],
        "pivotscale": [0.46, 0.52, 0.55, 0.56, 0.56, 0.56, 0.55, 0.55],
    },
    "baidu": {
        "pivoter": [19.44, 19.52, 19.11, 20.03, 19.31, 18.85, 18.94, 19.57],
        "arbcount": [0.07, 0.07, 0.07, 0.08, 0.11, 0.22, 0.45, 0.90],
        "pivotscale": [0.20, 0.19, 0.19, 0.19, 0.19, 0.18, 0.18, 0.18],
    },
    "wikitalk": {
        "pivoter": [33.42, 35.91, 36.91, 35.93, 35.91, 35.93, 36.45, 35.95],
        "arbcount": [0.28, 1.32, 4.60, 13.24, 28.60, 51.30, 73.87, 95.76],
        "pivotscale": [0.76, 0.87, 0.91, 0.92, 0.91, 0.91, 0.91, 0.90],
    },
    "orkut": {
        "pivoter": [654.13, 753.08, 812.71, 858.04, 889.39, 904.02, 909.91, 912.99],
        "arbcount": [5.35, 18.58, 69.89, 281.03, 1294.34, _2H, _2H, _2H],
        "gpu_v100": [17.23, 20.33, 26.18, 33.64, 39.96, 48.10, None, None],
        "gpu_a100": [14.05, 17.32, 22.48, 29.82, 38.22, 44.82, None, None],
        "pivotscale": [16.72, 19.48, 21.47, 24.97, 27.91, 29.83, 30.32, 30.20],
    },
    "webedu": {
        "pivoter": [45.29, 46.36, 47.84, 47.82, 47.25, 48.79, 50.47, 53.35],
        "arbcount": [456.47, _2H, _2H, _2H, _2H, _2H, _2H, _2H],
        "pivotscale": [0.85, 1.13, 1.48, 1.73, 1.84, 1.83, 1.84, 1.86],
    },
    "friendster": {
        "pivoter": [3064.48, 3097.26, 3054.73, 3032.45, 3050.13, 3063.23,
                    3070.55, 3080.26],
        "arbcount": [30.77, 44.19, 166.53, 2132.27, _2H, _2H, _2H, _2H],
        "gpu_v100": [63.87, 66.54, 67.06, 71.40, 71.05, 71.45, None, None],
        "gpu_a100": [47.32, 47.41, 47.07, 46.12, 45.22, 44.31, None, None],
        "pivotscale": [58.48, 58.88, 58.69, 58.12, 57.66, 56.87, 56.19, 55.40],
    },
}

#: Table VI: LiveJournal — (k-clique count, PivotScale s, V100 s, A100 s).
TABLE6: dict[int, tuple[int, float, float | None, float | None]] = {
    6: (10_990_740_312_954, 172.92, 379.88, 301.77),
    7: (449_022_426_169_164, 750.00, 1_639.54, 1_396.37),
    8: (16_890_998_195_437_619, 2_650.87, 6_850.99, 5_467.18),
    9: (587_802_675_586_713_160, 7_906.71, None, None),
    10: (18_973_061_151_392_022_301, 21_172.76, None, None),
    11: (568_916_187_227_810_700_115, 49_213.59, None, None),
    12: (15_868_894_086_996_727_006_147, 108_621.55, None, None),
    13: (412_397_238_639_623_631_270_670, 223_130.87, None, None),
}

#: Fig. 6 headline: eps=-0.5 approx core averages 9.58x speedup over the
#: sequential core ordering, with 160-6033 rounds.
FIG6_SPEEDUP_EPS_M05 = 9.58
