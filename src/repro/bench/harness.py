"""Small report-formatting and timing helpers for the experiment harness."""

from __future__ import annotations

import json
import math
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable

__all__ = [
    "Table",
    "geometric_mean",
    "fmt_seconds",
    "fmt_count",
    "fmt_rate",
    "time_best",
    "write_json_artifact",
]


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean, matching the paper's summary statistic."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def fmt_seconds(s: float | None) -> str:
    """Seconds with the paper's precision conventions."""
    if s is None:
        return "-"
    if s >= 1000:
        return f"{s:,.0f}"
    if s >= 10:
        return f"{s:.1f}"
    if s >= 0.01:
        return f"{s:.2f}"
    return f"{s:.4f}"


def fmt_count(c: int | None) -> str:
    """Exact counts with thousands separators (``-`` for missing)."""
    return "-" if c is None else f"{c:,}"


def fmt_rate(per_second: float) -> str:
    """A throughput (ops or words per second) with a metric suffix."""
    for scale, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if per_second >= scale:
            return f"{per_second / scale:.2f}{suffix}/s"
    return f"{per_second:.1f}/s"


def time_best(
    fn: Callable[[], Any], *, number: int = 10, repeats: int = 5
) -> float:
    """Best-of-``repeats`` mean seconds per call of ``fn``.

    The minimum over repeats is the standard microbench estimator: it
    discards scheduler noise and cache-warming effects, which only ever
    inflate a measurement.
    """
    if number < 1 or repeats < 1:
        raise ValueError("number and repeats must be >= 1")
    best = math.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(number):
            fn()
        best = min(best, (time.perf_counter() - t0) / number)
    return best


def write_json_artifact(path: str | Path, payload: dict[str, Any]) -> Path:
    """Write a benchmark result dict as a JSON artifact (with metadata)."""
    out = dict(payload)
    out.setdefault("meta", {}).update(
        python=platform.python_version(),
        machine=platform.machine(),
    )
    path = Path(path)
    path.write_text(json.dumps(out, indent=2, sort_keys=True) + "\n")
    return path


@dataclass
class Table:
    """A printable fixed-width table (the bench harness's output)."""

    title: str
    columns: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, *cells: Any) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(list(cells))

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        cells = [[str(c) for c in row] for row in self.rows]
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in cells)) if cells
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = [f"== {self.title} =="]
        header = "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row in cells:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"  * {note}")
        return "\n".join(lines)

    def show(self) -> None:
        print(self.render())
        print()
