"""Small report-formatting helpers for the experiment harness."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterable

__all__ = ["Table", "geometric_mean", "fmt_seconds", "fmt_count"]


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean, matching the paper's summary statistic."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def fmt_seconds(s: float | None) -> str:
    """Seconds with the paper's precision conventions."""
    if s is None:
        return "-"
    if s >= 1000:
        return f"{s:,.0f}"
    if s >= 10:
        return f"{s:.1f}"
    if s >= 0.01:
        return f"{s:.2f}"
    return f"{s:.4f}"


def fmt_count(c: int | None) -> str:
    """Exact counts with thousands separators (``-`` for missing)."""
    return "-" if c is None else f"{c:,}"


@dataclass
class Table:
    """A printable fixed-width table (the bench harness's output)."""

    title: str
    columns: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, *cells: Any) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(list(cells))

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        cells = [[str(c) for c in row] for row in self.rows]
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in cells)) if cells
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = [f"== {self.title} =="]
        header = "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row in cells:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"  * {note}")
        return "\n".join(lines)

    def show(self) -> None:
        print(self.render())
        print()
