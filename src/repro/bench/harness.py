"""Small report-formatting and timing helpers for the experiment harness."""

from __future__ import annotations

import json
import math
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable

__all__ = [
    "Table",
    "geometric_mean",
    "fmt_seconds",
    "fmt_count",
    "fmt_rate",
    "time_best",
    "time_samples",
    "run_with_metrics",
    "metrics_summary_lines",
    "write_json_artifact",
]


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean, matching the paper's summary statistic."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def fmt_seconds(s: float | None) -> str:
    """Seconds with the paper's precision conventions."""
    if s is None:
        return "-"
    if s >= 1000:
        return f"{s:,.0f}"
    if s >= 10:
        return f"{s:.1f}"
    if s >= 0.01:
        return f"{s:.2f}"
    return f"{s:.4f}"


def fmt_count(c: int | None) -> str:
    """Exact counts with thousands separators (``-`` for missing)."""
    return "-" if c is None else f"{c:,}"


def fmt_rate(per_second: float) -> str:
    """A throughput (ops or words per second) with a metric suffix."""
    for scale, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if per_second >= scale:
            return f"{per_second / scale:.2f}{suffix}/s"
    return f"{per_second:.1f}/s"


def time_samples(
    fn: Callable[[], Any], *, number: int = 10, repeats: int = 5
) -> list[float]:
    """Per-repeat mean seconds per call of ``fn`` (``repeats`` samples).

    The full sample list is what the run store keeps: statistical
    regression detection needs the distribution, not just the min.
    ``min(time_samples(...))`` is exactly :func:`time_best`.
    """
    if number < 1 or repeats < 1:
        raise ValueError("number and repeats must be >= 1")
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(number):
            fn()
        samples.append((time.perf_counter() - t0) / number)
    return samples


def time_best(
    fn: Callable[[], Any], *, number: int = 10, repeats: int = 5
) -> float:
    """Best-of-``repeats`` mean seconds per call of ``fn``.

    The minimum over repeats is the standard microbench estimator: it
    discards scheduler noise and cache-warming effects, which only ever
    inflate a measurement.
    """
    return min(time_samples(fn, number=number, repeats=repeats))


def run_with_metrics(fn: Callable[..., Any], *args: Any, **kwargs: Any):
    """Run ``fn(*args, **kwargs)`` under a fresh, enabled metrics registry.

    Returns ``(result, registry)``.  This is the bench harness's bridge
    to the observability layer: instead of reaching into engines'
    private counter dicts, experiments read exact work totals back
    through the canonical metric names —
    ``registry.total("engine_nodes_visited_total")``,
    ``registry.value("forest_cache_hits_total")`` and friends (catalog
    in ``docs/observability.md``).  The registry is installed only for
    the duration of the call (``obs.collecting``), so parallel
    experiments never mix tallies and the process-global registry is
    left untouched.
    """
    from repro import obs

    with obs.collecting() as registry:
        result = fn(*args, **kwargs)
    return result, registry


def metrics_summary_lines(registry) -> list[str]:
    """Human-readable one-liners for the registry totals a benchmark
    report cares about (exact work, not wall clock)."""
    lines = []
    for label, metric in (
        ("recursion nodes visited", "engine_nodes_visited_total"),
        ("SCT leaves reached", "engine_leaves_total"),
        ("bitset words touched", "engine_set_op_words_total"),
        ("work units (instruction proxy)", "engine_work_units_total"),
        ("kernel calls", "kernel_calls_total"),
        ("counting runs", "engine_runs_total"),
        ("forest cache hits", "forest_cache_hits_total"),
        ("forest cache misses", "forest_cache_misses_total"),
        ("checkpoint writes", "runtime_checkpoint_writes_total"),
        ("degradation events", "runtime_degradations_total"),
    ):
        v = registry.total(metric)
        if v:
            lines.append(f"{label}: {v:,.0f} ({metric})")
    return lines


def write_json_artifact(
    path: str | Path, payload: dict[str, Any], *, registry: Any | None = None
) -> Path:
    """Write a benchmark result dict as a JSON artifact (with metadata).

    Passing ``registry`` embeds its full
    :meth:`~repro.obs.MetricsRegistry.as_dict` snapshot under a
    ``"metrics"`` key, so artifacts carry the exact-work record
    alongside the timings they were measured with.
    """
    out = dict(payload)
    out.setdefault("meta", {}).update(
        python=platform.python_version(),
        machine=platform.machine(),
    )
    if registry is not None:
        out["metrics"] = registry.as_dict()
    path = Path(path)
    path.write_text(json.dumps(out, indent=2, sort_keys=True) + "\n")
    return path


@dataclass
class Table:
    """A printable fixed-width table (the bench harness's output)."""

    title: str
    columns: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, *cells: Any) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(list(cells))

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        cells = [[str(c) for c in row] for row in self.rows]
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in cells)) if cells
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = [f"== {self.title} =="]
        header = "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row in cells:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"  * {note}")
        return "\n".join(lines)

    def show(self) -> None:
        print(self.render())
        print()
