"""Render the paper's figures as SVG files.

``python -m repro.bench.figures [outdir]`` regenerates every figure of
the evaluation from the canonical experiments
(:mod:`repro.bench.experiments`) using the dependency-free SVG plotter.
Each ``render_figN`` function accepts a pre-computed
:class:`~repro.bench.experiments.ExperimentResult` so the expensive
experiment runs once even when both the table harness and the figure
renderer need it.
"""

from __future__ import annotations

import os
import sys

from repro.bench import experiments as E
from repro.bench.svgplot import GroupedBarChart, LineChart, Series

__all__ = ["render_all", "main"]


def _series_from(data: dict, keys: list, label_of, value_of) -> list[Series]:
    return [
        Series(label_of(k), [value_of(k, x) for x in data]) for k in keys
    ]


# ----------------------------------------------------------------- Fig 1
def render_fig1(result, outdir: str) -> list[str]:
    """Clique-size frequency distributions (log-y line chart)."""
    names = list(result.data)
    max_k = max(d["kmax"] for d in result.data.values())
    xs = list(range(1, max_k + 1))
    chart = LineChart(
        "Fig. 1 - frequency of k-cliques", xs,
        x_label="clique size k", y_label="number of k-cliques",
        y_log=True, width=680,
    )
    for name in names:
        dist = result.data[name]["dist"]
        chart.add(Series(name, [
            float(dist[k]) if k < len(dist) and dist[k] else None
            for k in xs
        ]))
    path = os.path.join(outdir, "fig1_distribution.svg")
    chart.write(path)
    return [path]


# ----------------------------------------------------------------- Fig 3
def render_fig3(result, outdir: str) -> list[str]:
    """DAG out-degree distributions, core vs degree ordering."""
    buckets = ["0", "1", "2-3", "4-7", "8-15", "16-31", "32+"]
    edges = [(0, 1), (1, 2), (2, 4), (4, 8), (8, 16), (16, 32), (32, 1 << 30)]

    def histo(h):
        return [float(sum(h[lo:min(hi, len(h))])) for lo, hi in edges]

    chart = GroupedBarChart(
        "Fig. 3 - out-degree distribution after directionalizing (Skitter)",
        buckets, y_label="vertices",
    )
    chart.add(Series("core ordering", histo(result.data["core"])))
    chart.add(Series("degree ordering", histo(result.data["degree"])))
    path = os.path.join(outdir, "fig3_degree_dist.svg")
    chart.write(path)
    return [path]


# ----------------------------------------------------------------- Fig 5
def render_fig5(result, outdir: str) -> list[str]:
    """Normalized maximum out-degree per ordering."""
    names = list(result.data)
    orderings = [k for k in next(iter(result.data.values())) if k != "core"]
    chart = GroupedBarChart(
        "Fig. 5 - max out-degree normalized to core ordering",
        names, y_label="normalized max out-degree", baseline=1.0, width=760,
    )
    for o in orderings:
        chart.add(Series(o, [
            result.data[n][o] / (result.data[n]["core"] or 1) for n in names
        ]))
    path = os.path.join(outdir, "fig5_quality.svg")
    chart.write(path)
    return [path]


# ----------------------------------------------------------------- Fig 6
def render_fig6(result, outdir: str) -> list[str]:
    names = list(result.data)
    orderings = list(next(iter(result.data.values()))["speedups"])
    chart = GroupedBarChart(
        "Fig. 6 - ordering time speedup over sequential core (64T)",
        names, y_label="speedup (x)", baseline=1.0, width=760,
    )
    for o in orderings:
        chart.add(Series(o, [
            result.data[n]["speedups"][o] for n in names
        ]))
    path = os.path.join(outdir, "fig6_ordering_time.svg")
    chart.write(path)
    return [path]


# ------------------------------------------------------------- Figs 7, 8
def _speedup_bars(result, title: str, filename: str, outdir: str) -> str:
    names = list(result.data)
    orderings = list(next(iter(result.data.values()))["speedups"])
    chart = GroupedBarChart(title, names, y_label="speedup over core (x)",
                            baseline=1.0, width=760)
    for o in orderings:
        chart.add(Series(o, [result.data[n]["speedups"][o] for n in names]))
    path = os.path.join(outdir, filename)
    chart.write(path)
    return path


def render_fig7(result, outdir: str) -> list[str]:
    return [_speedup_bars(
        result, "Fig. 7 - counting time speedup over core ordering (k=8)",
        "fig7_counting_time.svg", outdir,
    )]


def render_fig8(result, outdir: str) -> list[str]:
    return [_speedup_bars(
        result, "Fig. 8 - total time speedup over core ordering (k=8)",
        "fig8_total_time.svg", outdir,
    )]


# ----------------------------------------------------------------- Fig 9
def render_fig9(result, outdir: str) -> list[str]:
    names = list(result.data)
    chart = GroupedBarChart(
        "Fig. 9 - structure performance normalized to dense (k=8, 64T)",
        names, y_label="speedup over dense (x)", baseline=1.0, width=760,
    )
    for s in ("sparse", "remap"):
        chart.add(Series(s, [
            result.data[n]["times"]["dense"] / result.data[n]["times"][s]
            for n in names
        ]))
    path = os.path.join(outdir, "fig9_structures.svg")
    chart.write(path)
    return [path]


# ---------------------------------------------------------------- Fig 10
def render_fig10(result, outdir: str) -> list[str]:
    paths = []
    for name, per_k in result.data.items():
        ks = list(per_k)
        chart = LineChart(
            f"Fig. 10 - total time vs clique size ({name})", ks,
            x_label="clique size k", y_label="model seconds", y_log=True,
        )
        for mode in ("approx_core", "degree", "heuristic"):
            chart.add(Series(mode, [per_k[k][mode] for k in ks]))
        path = os.path.join(outdir, f"fig10_{name}.svg")
        chart.write(path)
        paths.append(path)
    return paths


# ---------------------------------------------------------------- Fig 11
def render_fig11(result, outdir: str) -> list[str]:
    by_graph_k: dict[tuple[str, int], dict[str, dict[int, float]]] = {}
    for (name, k, structure), sp in result.data.items():
        by_graph_k.setdefault((name, k), {})[structure] = sp
    paths = []
    for (name, k), per_struct in by_graph_k.items():
        threads = list(next(iter(per_struct.values())))
        chart = LineChart(
            f"Fig. 11 - self-relative speedup ({name}, k={k})", threads,
            x_label="threads", y_label="speedup (x)", x_log=True,
        )
        chart.add(Series("ideal", [float(t) for t in threads]))
        for structure in ("dense", "sparse", "remap"):
            if structure in per_struct:
                chart.add(Series(structure, [
                    per_struct[structure][t] for t in threads
                ]))
        path = os.path.join(outdir, f"fig11_{name}_k{k}.svg")
        chart.write(path)
        paths.append(path)
    return paths


# ------------------------------------------------------- Fig 12 (Table V)
_ALG_LABELS = {
    "pivoter": "Pivoter",
    "arbcount": "Arb-Count",
    "gpu_v100": "GPU-Pivot (V100)",
    "gpu_a100": "GPU-Pivot (A100)",
    "pivotscale": "PivotScale",
}


def render_fig12(result, outdir: str, ks: list[int] | None = None) -> list[str]:
    ks = ks or list(range(6, 14))
    paths = []
    for name, rows in result.data.items():
        chart = LineChart(
            f"Fig. 12 - total time vs clique size ({name})", ks,
            x_label="clique size k", y_label="model seconds", y_log=True,
        )
        for alg, label in _ALG_LABELS.items():
            if alg in rows:
                vals = [v if isinstance(v, (int, float)) else None
                        for v in rows[alg]]
                if any(v is not None for v in vals):
                    chart.add(Series(label, vals))
        path = os.path.join(outdir, f"fig12_{name}.svg")
        chart.write(path)
        paths.append(path)
    return paths


# ------------------------------------------------------ Fig 13 (Table VI)
def render_fig13(result, outdir: str) -> list[str]:
    ks = list(result.data)
    chart = LineChart(
        "Fig. 13 - LiveJournal analog: time vs clique size", ks,
        x_label="clique size k", y_label="model seconds", y_log=True,
    )
    chart.add(Series("PivotScale", [result.data[k]["pivotscale_s"] for k in ks]))
    chart.add(Series("GPU-Pivot (V100)", [result.data[k]["v100_s"] for k in ks]))
    chart.add(Series("GPU-Pivot (A100)", [result.data[k]["a100_s"] for k in ks]))
    path = os.path.join(outdir, "fig13_livejournal.svg")
    chart.write(path)
    return [path]


# ------------------------------------------------------------------ main
def render_all(outdir: str = "figures") -> list[str]:
    """Run every figure experiment and write all SVGs; returns paths."""
    os.makedirs(outdir, exist_ok=True)
    paths: list[str] = []
    paths += render_fig1(E.fig1_distribution(), outdir)
    paths += render_fig3(E.fig3_degree_distributions(), outdir)
    paths += render_fig5(E.fig5_ordering_quality(), outdir)
    paths += render_fig6(E.fig6_ordering_time(), outdir)
    paths += render_fig7(E.fig7_counting_time(), outdir)
    paths += render_fig8(E.fig8_total_time(), outdir)
    paths += render_fig9(E.fig9_structures(), outdir)
    paths += render_fig10(E.fig10_heuristic_vs_k(), outdir)
    paths += render_fig11(E.fig11_scaling(), outdir)
    paths += render_fig12(E.table5_comparison(), outdir)
    paths += render_fig13(E.table6_livejournal(), outdir)
    return paths


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: render all figures into ``argv[0]`` (default
    ``figures/``)."""
    args = sys.argv[1:] if argv is None else argv
    outdir = args[0] if args else "figures"
    paths = render_all(outdir)
    for p in paths:
        print(f"wrote {p}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
