"""Baseline registry: which stored run each bench is gated against.

``benchmarks/runs/baselines.json`` maps bench name -> the promoted
:class:`~repro.bench.platform.store.RunRecord` id (plus the git hash
and machine fingerprint it was measured on, for provenance and for the
cross-machine advisory in the report layer).  Promotion is an explicit
act — ``repro bench baseline promote <bench>`` — so a slow-but-green
run never silently becomes the new normal.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.errors import StoreFormatError

from repro.bench.platform.store import RunRecord, RunStore

__all__ = ["BaselineRegistry"]

_FILENAME = "baselines.json"


class BaselineRegistry:
    """The promoted-baseline map, stored next to the run history."""

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self.path = Path(path)

    @classmethod
    def for_store(cls, store: RunStore) -> "BaselineRegistry":
        return cls(store.root / _FILENAME)

    def load(self) -> dict[str, dict]:
        if not self.path.exists():
            return {}
        try:
            obj = json.loads(self.path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise StoreFormatError(
                f"{self.path}: line {exc.lineno}: invalid JSON ({exc.msg})"
            ) from exc
        if not isinstance(obj, dict):
            raise StoreFormatError(
                f"{self.path}: expected an object mapping bench -> baseline"
            )
        for bench, entry in obj.items():
            if not isinstance(entry, dict) or "run_id" not in entry:
                raise StoreFormatError(
                    f"{self.path}: baseline for {bench!r} has no 'run_id'"
                )
        return obj

    def get(self, bench: str) -> str | None:
        """The promoted run id for ``bench``, or ``None``."""
        entry = self.load().get(bench)
        return entry["run_id"] if entry else None

    def promote(self, record: RunRecord) -> dict:
        """Make ``record`` the baseline for its bench; returns the
        written entry."""
        entries = self.load()
        entry = {
            "run_id": record.run_id,
            "git_hash": record.git_hash,
            "machine": dict(record.machine),
            "promoted_at": time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
            ),
        }
        entries[record.bench] = entry
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(
            json.dumps(entries, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return entry

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<BaselineRegistry {self.path}>"
