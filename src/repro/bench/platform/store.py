"""Schema'd benchmark run store: every bench invocation is a record.

Each gated benchmark (``benchmarks/bench_*.py``) appends one
:class:`RunRecord` per invocation to a JSON-lines history file under
``benchmarks/runs/<bench>.jsonl``.  A record is the full provenance of
one measurement: git hash, machine fingerprint (cpu count, platform,
python/numpy versions), the bench's config **including its RNG seed**,
per-metric wall-time *samples* (one per timing repeat, never just the
min), the exact work counters pulled from the observability
:class:`~repro.obs.MetricsRegistry`, and the legacy gate verdict.

The history is what turns "regression" from *crossed a magic constant*
into *statistically slower than the stored baseline with repeated
samples* (see :mod:`repro.bench.platform.stat_tests` and
:mod:`repro.bench.platform.report`).

Format discipline mirrors :mod:`repro.graph.io`: malformed store lines
raise :class:`~repro.errors.StoreFormatError` naming the file and the
1-based line number, never an uncaught ``KeyError`` deep inside the
report layer.  Records from older schema versions are upgraded on read
(``_UPGRADERS``); records from *newer* schemas are a format error, not
a silent partial parse.
"""

from __future__ import annotations

import json
import math
import os
import platform
import subprocess
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

import numpy as np

from repro.errors import StoreFormatError

__all__ = [
    "SCHEMA_VERSION",
    "RunRecord",
    "RunStore",
    "machine_fingerprint",
    "git_revision",
    "new_run_id",
]

#: Current record schema.  Bump on any incompatible field change and
#: add an upgrader so old histories keep reading.
SCHEMA_VERSION = 1

#: Fields every record must carry (any schema, post-upgrade).
_REQUIRED = ("schema", "bench", "run_id", "timestamp", "config",
             "samples", "machine")


def machine_fingerprint() -> dict:
    """Identify the measuring host: timings are only comparable between
    runs whose fingerprints match (same cpu count, platform, python and
    numpy versions)."""
    return {
        "cpu_count": os.cpu_count() or 1,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": np.__version__,
    }


def git_revision(cwd: str | os.PathLike[str] | None = None) -> str | None:
    """The current git commit hash, or ``None`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    rev = out.stdout.strip()
    return rev or None


def new_run_id(bench: str) -> str:
    """A unique, sortable-enough id: ``<bench>-<epoch_ms>-<uuid8>``."""
    return f"{bench}-{int(time.time() * 1000)}-{uuid.uuid4().hex[:8]}"


def _check_samples(samples: Any, where: str) -> dict[str, list[float]]:
    if not isinstance(samples, dict) or not samples:
        raise StoreFormatError(f"{where}: 'samples' must be a non-empty "
                               f"dict of metric -> list of seconds")
    out: dict[str, list[float]] = {}
    for name, values in samples.items():
        if not isinstance(name, str):
            raise StoreFormatError(f"{where}: sample metric name {name!r} "
                                   f"is not a string")
        if not isinstance(values, (list, tuple)) or not values:
            raise StoreFormatError(f"{where}: samples[{name!r}] must be a "
                                   f"non-empty list")
        vals = []
        for v in values:
            if isinstance(v, bool) or not isinstance(v, (int, float)) \
                    or not math.isfinite(v):
                raise StoreFormatError(
                    f"{where}: samples[{name!r}] contains non-finite or "
                    f"non-numeric value {v!r}"
                )
            vals.append(float(v))
        out[name] = vals
    return out


@dataclass(frozen=True)
class RunRecord:
    """One benchmark invocation, as stored in the history."""

    bench: str
    run_id: str
    timestamp: float  # seconds since the epoch, UTC
    config: dict
    samples: dict[str, list[float]]
    metrics: dict = field(default_factory=dict)
    gate: dict | None = None
    git_hash: str | None = None
    machine: dict = field(default_factory=machine_fingerprint)
    schema: int = SCHEMA_VERSION

    @property
    def seed(self) -> int | None:
        """The RNG seed this record's measurements were taken with."""
        s = self.config.get("seed")
        return int(s) if s is not None else None

    def validate(self, where: str = "record") -> None:
        """Raise :class:`StoreFormatError` unless this record is a
        well-formed, storable measurement."""
        if not self.bench or not isinstance(self.bench, str):
            raise StoreFormatError(f"{where}: missing bench name")
        if not self.run_id or not isinstance(self.run_id, str):
            raise StoreFormatError(f"{where}: missing run_id")
        if not isinstance(self.config, dict):
            raise StoreFormatError(f"{where}: config must be a dict")
        if self.config.get("seed") is None:
            # Determinism contract: every stored measurement names the
            # seed that produced its workload, so any record can be
            # re-run bit-identically.
            raise StoreFormatError(
                f"{where}: config has no 'seed' — refusing to store a "
                f"non-reproducible measurement"
            )
        _check_samples(self.samples, where)

    def to_json(self) -> dict:
        return {
            "schema": self.schema,
            "bench": self.bench,
            "run_id": self.run_id,
            "timestamp": self.timestamp,
            "git_hash": self.git_hash,
            "machine": dict(self.machine),
            "config": dict(self.config),
            "samples": {k: list(v) for k, v in self.samples.items()},
            "metrics": dict(self.metrics),
            "gate": self.gate,
        }

    @classmethod
    def from_json(cls, obj: Any, *, where: str = "record") -> "RunRecord":
        if not isinstance(obj, dict):
            raise StoreFormatError(f"{where}: expected a JSON object, "
                                   f"got {type(obj).__name__}")
        schema = obj.get("schema")
        if not isinstance(schema, int):
            raise StoreFormatError(f"{where}: missing integer 'schema'")
        if schema > SCHEMA_VERSION:
            raise StoreFormatError(
                f"{where}: record schema {schema} is newer than this "
                f"reader (supports <= {SCHEMA_VERSION}); upgrade the code"
            )
        while schema < SCHEMA_VERSION:
            upgrader = _UPGRADERS.get(schema)
            if upgrader is None:
                raise StoreFormatError(
                    f"{where}: no upgrade path from schema {schema}"
                )
            obj = upgrader(dict(obj), where)
            schema = obj["schema"]
        missing = [k for k in _REQUIRED if k not in obj]
        if missing:
            raise StoreFormatError(f"{where}: missing fields {missing}")
        rec = cls(
            bench=obj["bench"],
            run_id=obj["run_id"],
            timestamp=float(obj["timestamp"]),
            config=obj["config"],
            samples=_check_samples(obj["samples"], where),
            metrics=obj.get("metrics") or {},
            gate=obj.get("gate"),
            git_hash=obj.get("git_hash"),
            machine=obj["machine"],
            schema=SCHEMA_VERSION,
        )
        rec.validate(where)
        return rec


def _upgrade_v0(obj: dict, where: str) -> dict:
    """Schema 0 (pre-release) stored per-metric timings under
    ``"timings"`` and had no machine fingerprint."""
    if "timings" in obj and "samples" not in obj:
        obj["samples"] = obj.pop("timings")
    obj.setdefault("machine", {})
    obj["schema"] = 1
    return obj


_UPGRADERS = {0: _upgrade_v0}


class RunStore:
    """Append-only JSON-lines history under one directory.

    One file per bench (``<root>/<bench>.jsonl``), one record per line.
    Reads are strict: a corrupt line is a
    :class:`~repro.errors.StoreFormatError` naming file and line, so a
    truncated write or hand-edit fails loudly at the parse site.
    """

    def __init__(self, root: str | os.PathLike[str]) -> None:
        self.root = Path(root)

    def path_for(self, bench: str) -> Path:
        if not bench or "/" in bench or bench.startswith("."):
            raise StoreFormatError(f"invalid bench name {bench!r}")
        return self.root / f"{bench}.jsonl"

    def benches(self) -> list[str]:
        """Bench names with at least one stored record."""
        if not self.root.is_dir():
            return []
        return sorted(p.stem for p in self.root.glob("*.jsonl"))

    def append(self, record: RunRecord) -> Path:
        """Validate and append one record; returns the history path."""
        record.validate(f"append({record.bench})")
        path = self.path_for(record.bench)
        path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record.to_json(), sort_keys=True,
                          separators=(",", ":"))
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
        return path

    def read(self, bench: str) -> list[RunRecord]:
        """All records for ``bench`` in append order (oldest first)."""
        path = self.path_for(bench)
        if not path.exists():
            return []
        records: list[RunRecord] = []
        with open(path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                where = f"{path}: line {lineno}"
                try:
                    obj = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise StoreFormatError(
                        f"{where}: invalid JSON ({exc.msg})"
                    ) from exc
                records.append(RunRecord.from_json(obj, where=where))
        return records

    def latest(self, bench: str) -> RunRecord | None:
        records = self.read(bench)
        return records[-1] if records else None

    def get(self, bench: str, run_id: str) -> RunRecord | None:
        for rec in self.read(bench):
            if rec.run_id == run_id:
                return rec
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RunStore {self.root} benches={self.benches()}>"
